// Package dscweaver reproduces "Categorization and Optimization of
// Synchronization Dependencies in Business Processes" (Wu, Pu, Sahai,
// Barga — ICDE 2007): a dataflow approach to business-process
// synchronization in which dependencies — data, control, service and
// cooperation — are first-class citizens that are merged, optimized to
// a minimal constraint set, validated through colored Petri nets,
// compiled to BPEL, and executed by a constraint-driven scheduling
// engine.
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); cmd/repro regenerates the paper's tables and
// figures, cmd/dscweaver runs the full pipeline on DSCL or seqlang
// input, and bench_test.go times every regenerated artifact plus the
// scaling and concurrency studies recorded in EXPERIMENTS.md.
package dscweaver
