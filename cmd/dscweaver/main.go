// Command dscweaver runs the full weaver pipeline on a DSCL document:
// merge the declared dependencies into synchronization constraints
// (§4.2), desugar, translate service dependencies (§4.3), compute the
// minimal constraint set (§4.4), validate it through the Petri-net
// stage (§4.1), and optionally emit BPEL and execute the process with
// no-op activities.
//
// The pipeline itself is internal/weave — the same stages the server
// and the other tools run — executed under a signal context, so an
// interrupt (Ctrl-C) aborts the minimizer or the Petri exploration
// mid-flight instead of waiting the run out.
//
// Usage:
//
//	dscweaver [flags] process.dscl
//
//	-seqlang       treat the input as seqlang (sequencing constructs);
//	               data/control dependencies are extracted via PDG
//	-bpel FILE     write the generated BPEL document to FILE
//	-validate      run Petri-net soundness checking (default true)
//	-max-states N  soundness exploration budget (0 = default, 1<<20)
//	-no-reduction  validate on the full state graph (diagnostic)
//	-validate-parallel N
//	               soundness exploration worker count (0/1 = sequential)
//	-parallel N    minimization worker count (0 = GOMAXPROCS)
//	-no-speculation
//	               disable speculative candidate batches (ablation)
//	-run           execute the minimal set with no-op activities and
//	               print the trace
//	-decentral N   partition the minimal set across at most N hosts
//	               (-1 = no cap) and print the placement; with -run,
//	               execute one engine per partition and report measured
//	               vs predicted cross-host message counts
//	-metrics FILE  write Prometheus-style metrics for the run ("-" = stdout)
//	-events FILE   write the JSONL lifecycle event log ("-" = stdout)
//	-v             print every pipeline stage
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"dscweaver/internal/bpel"
	"dscweaver/internal/core"
	"dscweaver/internal/decentral"
	"dscweaver/internal/dscl"
	"dscweaver/internal/enact"
	"dscweaver/internal/obs"
	"dscweaver/internal/schedule"
	"dscweaver/internal/weave"
	"dscweaver/internal/weave/front"
)

func main() {
	seqlang := flag.Bool("seqlang", false, "input is seqlang (sequencing constructs), extract dependencies via PDG")
	bpelOut := flag.String("bpel", "", "write generated BPEL to this file")
	structured := flag.Bool("structured", false, "fold unconditional chains into <sequence> constructs in the BPEL output")
	validate := flag.Bool("validate", true, "run Petri-net soundness validation")
	maxStates := flag.Int("max-states", 0, "soundness exploration budget in states (0 = default, 1<<20)")
	noReduction := flag.Bool("no-reduction", false, "validate on the full state graph instead of the reduced one (diagnostic; verdicts are identical)")
	validateParallel := flag.Int("validate-parallel", 0, "soundness exploration worker count (0 or 1 = sequential)")
	run := flag.Bool("run", false, "execute the minimal set with no-op activities")
	traceOut := flag.String("trace", "", "with -run, write the execution trace as JSON to this file")
	dotOut := flag.String("dot", "", "write the minimal constraint graph as Graphviz to this file")
	decentralize := flag.Int("decentral", 0, "partition the minimal set across at most N hosts and print the placement (0 = off, -1 = natural placement, no cap); with -run, execute one engine per partition and report measured vs predicted message counts")
	explain := flag.String("explain", "", "explain why constraints were removed: 'all' or a substring of the constraint")
	parallel := flag.Int("parallel", 0, "minimization worker count (0 = GOMAXPROCS, 1 = sequential); the minimal set is identical for every value")
	noSpeculation := flag.Bool("no-speculation", false, "disable speculative candidate batches in the parallel minimizer (ablation; the minimal set is identical)")
	metricsOut := flag.String("metrics", "", "write Prometheus-style metrics for the whole run to this file (\"-\" = stdout)")
	eventsOut := flag.String("events", "", "write the JSONL lifecycle event log (minimizer + engine) to this file (\"-\" = stdout)")
	verbose := flag.Bool("v", false, "print every pipeline stage")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dscweaver [flags] process.dscl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	var sink obs.Sink
	var eventLog *obs.JSONLWriter
	if *eventsOut != "" {
		f, err := openOut(*eventsOut)
		if err != nil {
			fail(err)
		}
		eventLog = obs.NewJSONLWriter(f)
		sink = eventLog
	}

	lang := "dscl"
	if *seqlang {
		lang = "seqlang"
	}
	fe, err := front.ByLang(lang)
	if err != nil {
		fail(err)
	}
	res, err := weave.Run(ctx, weave.Input{Source: string(src)}, weave.Options{
		Frontend:             fe,
		Parallelism:          *parallel,
		NoSpeculation:        *noSpeculation,
		Validate:             *validate,
		MaxStates:            *maxStates,
		ValidateReductionOff: *noReduction,
		ValidateParallel:     *validateParallel,
		BPEL:                 *bpelOut != "",
		StructuredBPEL:       *structured,
		Metrics:              reg,
		Events:               sink,
	})
	if err != nil {
		fail(err)
	}
	proc := res.Parsed.Proc
	asc := res.Translated
	min := res.Minimize

	if *seqlang {
		fmt.Printf("extracted %d dependencies from sequencing constructs\n", res.Parsed.Deps.Len())
	} else {
		fmt.Printf("loaded %d dependencies, %d raw constraints\n", res.Parsed.Deps.Len(), res.Parsed.Extra.Len())
	}
	fmt.Printf("merged constraint set: %d constraints\n", res.Merged.Len())
	if *verbose {
		fmt.Println(dscl.PrintConstraints(res.Merged))
		fmt.Println()
	}
	fmt.Printf("after service translation:  %d constraints\n", asc.Len())
	fmt.Printf("minimal constraint set:     %d constraints (%d removed, %d equivalence checks)\n",
		min.Minimal.Len(), len(min.Removed), min.EquivalenceChecks)
	if *verbose {
		fmt.Printf("minimizer engine:           %d workers, %d/%d closure-cache hits/misses, %d equivalence-memo hits\n",
			min.Workers, min.ClosureCacheHits, min.ClosureCacheMisses, min.CondMemoHits)
		fmt.Println(dscl.PrintConstraints(min.Minimal))
		fmt.Println()
		for _, st := range res.Stages {
			fmt.Printf("stage %-10s %v\n", st.Stage, st.Duration.Round(time.Microsecond))
		}
	}

	if rep := res.Soundness; rep != nil {
		if rep.StateSpace.Truncated {
			fmt.Fprintf(os.Stderr, "WARNING: state space truncated at %d states — soundness not certified; raise the exploration budget\n",
				rep.StateSpace.States)
		}
		if !rep.Sound {
			fmt.Fprintf(os.Stderr, "validation FAILED: deadlocks=%v noCompletion=%v\n", rep.Deadlocks, rep.NoCompletion)
			os.Exit(1)
		}
		fmt.Printf("petri-net validation:       sound (%d states, %s kernel)\n", rep.StateSpace.States, rep.Method)
	}

	if *explain != "" {
		removals, err := core.ExplainRemovals(min)
		if err != nil {
			fail(err)
		}
		for _, r := range removals {
			if *explain != "all" && !strings.Contains(r.Constraint.String(), *explain) {
				continue
			}
			fmt.Println(r)
		}
	}

	var execPlan *decentral.Plan
	if *decentralize != 0 {
		cmp, err := decentral.Compare(asc, min.Minimal, decentral.Pin(proc))
		if err != nil {
			fail(err)
		}
		fmt.Printf("decentralized placement (minimal set):\n%s", cmp.Minimal)
		fmt.Printf("cross-host messages: unoptimized=%d minimal=%d saved=%d\n",
			cmp.Unoptimized.CrossEdges, cmp.Minimal.CrossEdges, cmp.MessageSavings())
		// The executable plan: exclusive groups co-located, hosts capped
		// at N (-1 = no cap).
		execPlan = cmp.Minimal
		if execPlan, err = decentral.CoLocate(min.Minimal, execPlan); err != nil {
			fail(err)
		}
		if execPlan, err = decentral.Fold(min.Minimal, execPlan, *decentralize); err != nil {
			fail(err)
		}
		if len(execPlan.Hosts) != len(cmp.Minimal.Hosts) {
			fmt.Printf("normalized to %d hosts:\n%s", len(execPlan.Hosts), execPlan)
		}
	}

	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(core.ConstraintDOT(proc.Name, min.Minimal)), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}

	if *bpelOut != "" {
		if err := os.WriteFile(*bpelOut, res.BPELXML, 0o644); err != nil {
			fail(err)
		}
		stats := bpel.Summarize(res.BPELDoc)
		fmt.Printf("wrote %s: %d activities, %d links (%d conditional)", *bpelOut,
			stats.Activities, stats.Links, stats.Conditional)
		if stats.Sequences > 0 {
			fmt.Printf(", %d sequences (%d implicit orderings)", stats.Sequences, stats.Implicit)
		}
		fmt.Println()
	}

	if *run {
		execs := schedule.NoopExecutors(proc, time.Millisecond, nil)
		var tr *schedule.Trace
		if execPlan != nil {
			out, err := enact.Run(ctx, enact.Options{
				Plan: execPlan, Set: min.Minimal, Guards: res.Guards, Execs: execs,
				Timeout: 30 * time.Second, Metrics: reg, Events: sink,
			})
			if err != nil {
				fail(err)
			}
			tr = out.Trace
			fmt.Printf("decentralized run: %d hosts, %d edge messages (plan predicts %d), %d outcome broadcasts\n",
				len(out.Plan.Hosts), out.Stats.EdgeMessages, out.Plan.CrossEdges, out.Stats.OutcomeMessages)
		} else {
			eng, err := schedule.New(min.Minimal, execs, schedule.Options{Guards: res.Guards, Timeout: 30 * time.Second, Metrics: reg, Events: sink})
			if err != nil {
				fail(err)
			}
			if tr, err = eng.Run(ctx); err != nil {
				fail(err)
			}
		}
		if err := tr.Validate(asc, res.Guards); err != nil {
			fail(err)
		}
		fmt.Printf("executed: %d activities ran, %d skipped, makespan %v, peak parallelism %d\n",
			len(tr.Executed()), len(tr.SkippedActivities()), tr.Makespan().Round(time.Millisecond), tr.MaxParallel)
		if *traceOut != "" {
			data, err := tr.MarshalJSON()
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}
		if *verbose {
			fmt.Print(tr.String())
			fmt.Print(tr.Gantt())
		}
	}

	if eventLog != nil {
		if err := eventLog.Close(); err != nil {
			fail(err)
		}
		if *eventsOut != "-" {
			fmt.Printf("wrote %s\n", *eventsOut)
		}
	}
	if reg != nil {
		f, err := openOut(*metricsOut)
		if err != nil {
			fail(err)
		}
		if err := reg.WritePrometheus(f); err != nil {
			fail(err)
		}
		if *metricsOut != "-" {
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *metricsOut)
		}
	}
}

// openOut resolves an output-flag value: "-" means stdout, anything
// else is created (truncated) on disk.
func openOut(path string) (*os.File, error) {
	if path == "-" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dscweaver:", err)
	os.Exit(1)
}
