// Command dscweaver runs the full weaver pipeline on a DSCL document:
// merge the declared dependencies into synchronization constraints
// (§4.2), desugar, translate service dependencies (§4.3), compute the
// minimal constraint set (§4.4), validate it through the Petri-net
// stage (§4.1), and optionally emit BPEL and execute the process with
// no-op activities.
//
// Usage:
//
//	dscweaver [flags] process.dscl
//
//	-seqlang       treat the input as seqlang (sequencing constructs);
//	               data/control dependencies are extracted via PDG
//	-bpel FILE     write the generated BPEL document to FILE
//	-validate      run Petri-net soundness checking (default true)
//	-parallel N    minimization worker count (0 = GOMAXPROCS)
//	-run           execute the minimal set with no-op activities and
//	               print the trace
//	-metrics FILE  write Prometheus-style metrics for the run ("-" = stdout)
//	-events FILE   write the JSONL lifecycle event log ("-" = stdout)
//	-v             print every pipeline stage
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dscweaver/internal/bpel"
	"dscweaver/internal/core"
	"dscweaver/internal/decentral"
	"dscweaver/internal/dscl"
	"dscweaver/internal/obs"
	"dscweaver/internal/pdg"
	"dscweaver/internal/petri"
	"dscweaver/internal/schedule"
)

func main() {
	seqlang := flag.Bool("seqlang", false, "input is seqlang (sequencing constructs), extract dependencies via PDG")
	bpelOut := flag.String("bpel", "", "write generated BPEL to this file")
	structured := flag.Bool("structured", false, "fold unconditional chains into <sequence> constructs in the BPEL output")
	validate := flag.Bool("validate", true, "run Petri-net soundness validation")
	run := flag.Bool("run", false, "execute the minimal set with no-op activities")
	traceOut := flag.String("trace", "", "with -run, write the execution trace as JSON to this file")
	dotOut := flag.String("dot", "", "write the minimal constraint graph as Graphviz to this file")
	decentralize := flag.Bool("decentral", false, "print a decentralized placement of the minimal set across service hosts")
	explain := flag.String("explain", "", "explain why constraints were removed: 'all' or a substring of the constraint")
	parallel := flag.Int("parallel", 0, "minimization worker count (0 = GOMAXPROCS, 1 = sequential); the minimal set is identical for every value")
	metricsOut := flag.String("metrics", "", "write Prometheus-style metrics for the whole run to this file (\"-\" = stdout)")
	eventsOut := flag.String("events", "", "write the JSONL lifecycle event log (minimizer + engine) to this file (\"-\" = stdout)")
	verbose := flag.Bool("v", false, "print every pipeline stage")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dscweaver [flags] process.dscl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	var sink obs.Sink
	var eventLog *obs.JSONLWriter
	if *eventsOut != "" {
		f, err := openOut(*eventsOut)
		if err != nil {
			fail(err)
		}
		eventLog = obs.NewJSONLWriter(f)
		sink = eventLog
	}

	var proc *core.Process
	var sc *core.ConstraintSet
	if *seqlang {
		ex, err := pdg.Extract(string(src))
		if err != nil {
			fail(err)
		}
		proc = ex.Proc
		sc, err = core.Merge(proc, ex.Deps)
		if err != nil {
			fail(err)
		}
		fmt.Printf("extracted %d dependencies from sequencing constructs\n", ex.Deps.Len())
	} else {
		doc, err := dscl.Load(string(src))
		if err != nil {
			fail(err)
		}
		proc = doc.Proc
		sc, err = doc.ConstraintSet()
		if err != nil {
			fail(err)
		}
		fmt.Printf("loaded %d dependencies, %d raw constraints\n", doc.Deps.Len(), doc.Extra.Len())
	}

	if err := sc.Desugar(); err != nil {
		fail(err)
	}
	fmt.Printf("merged constraint set: %d constraints\n", sc.Len())
	if *verbose {
		fmt.Println(dscl.PrintConstraints(sc))
		fmt.Println()
	}

	guards, err := core.DeriveGuards(sc)
	if err != nil {
		fail(err)
	}

	asc, err := core.TranslateServices(sc)
	if err != nil {
		fail(err)
	}
	fmt.Printf("after service translation:  %d constraints\n", asc.Len())

	res, err := core.MinimizeOpt(asc, core.MinimizeOptions{Parallelism: *parallel, Metrics: reg, Events: sink})
	if err != nil {
		fail(err)
	}
	fmt.Printf("minimal constraint set:     %d constraints (%d removed, %d equivalence checks)\n",
		res.Minimal.Len(), len(res.Removed), res.EquivalenceChecks)
	if *verbose {
		fmt.Printf("minimizer engine:           %d workers, %d/%d closure-cache hits/misses, %d equivalence-memo hits\n",
			res.Workers, res.ClosureCacheHits, res.ClosureCacheMisses, res.CondMemoHits)
	}
	if *verbose {
		fmt.Println(dscl.PrintConstraints(res.Minimal))
		fmt.Println()
	}

	if *validate {
		rep, err := petri.Validate(res.Minimal, guards)
		if err != nil {
			fail(err)
		}
		if !rep.Sound {
			fmt.Fprintf(os.Stderr, "validation FAILED: deadlocks=%v noCompletion=%v\n", rep.Deadlocks, rep.NoCompletion)
			os.Exit(1)
		}
		fmt.Printf("petri-net validation:       sound (%d states)\n", rep.StateSpace.States)
	}

	if *explain != "" {
		removals, err := core.ExplainRemovals(res)
		if err != nil {
			fail(err)
		}
		for _, r := range removals {
			if *explain != "all" && !strings.Contains(r.Constraint.String(), *explain) {
				continue
			}
			fmt.Println(r)
		}
	}

	if *decentralize {
		cmp, err := decentral.Compare(asc, res.Minimal, decentral.Pin(proc))
		if err != nil {
			fail(err)
		}
		fmt.Printf("decentralized placement (minimal set):\n%s", cmp.Minimal)
		fmt.Printf("cross-host messages: unoptimized=%d minimal=%d saved=%d\n",
			cmp.Unoptimized.CrossEdges, cmp.Minimal.CrossEdges, cmp.MessageSavings())
	}

	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(core.ConstraintDOT(proc.Name, res.Minimal)), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}

	if *bpelOut != "" {
		var doc *bpel.Process
		var err error
		if *structured {
			doc, err = bpel.GenerateStructured(res.Minimal, guards)
		} else {
			doc, err = bpel.Generate(res.Minimal)
		}
		if err != nil {
			fail(err)
		}
		if err := bpel.Validate(doc); err != nil {
			fail(err)
		}
		data, err := bpel.Marshal(doc)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*bpelOut, data, 0o644); err != nil {
			fail(err)
		}
		stats := bpel.Summarize(doc)
		fmt.Printf("wrote %s: %d activities, %d links (%d conditional)", *bpelOut,
			stats.Activities, stats.Links, stats.Conditional)
		if stats.Sequences > 0 {
			fmt.Printf(", %d sequences (%d implicit orderings)", stats.Sequences, stats.Implicit)
		}
		fmt.Println()
	}

	if *run {
		execs := schedule.NoopExecutors(proc, time.Millisecond, nil)
		eng, err := schedule.New(res.Minimal, execs, schedule.Options{Guards: guards, Timeout: 30 * time.Second, Metrics: reg, Events: sink})
		if err != nil {
			fail(err)
		}
		tr, err := eng.Run(context.Background())
		if err != nil {
			fail(err)
		}
		if err := tr.Validate(asc, guards); err != nil {
			fail(err)
		}
		fmt.Printf("executed: %d activities ran, %d skipped, makespan %v, peak parallelism %d\n",
			len(tr.Executed()), len(tr.SkippedActivities()), tr.Makespan().Round(time.Millisecond), tr.MaxParallel)
		if *traceOut != "" {
			data, err := tr.MarshalJSON()
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}
		if *verbose {
			fmt.Print(tr.String())
			fmt.Print(tr.Gantt())
		}
	}

	if eventLog != nil {
		if err := eventLog.Close(); err != nil {
			fail(err)
		}
		if *eventsOut != "-" {
			fmt.Printf("wrote %s\n", *eventsOut)
		}
	}
	if reg != nil {
		f, err := openOut(*metricsOut)
		if err != nil {
			fail(err)
		}
		if err := reg.WritePrometheus(f); err != nil {
			fail(err)
		}
		if *metricsOut != "-" {
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *metricsOut)
		}
	}
}

// openOut resolves an output-flag value: "-" means stdout, anything
// else is created (truncated) on disk.
func openOut(path string) (*os.File, error) {
	if path == "-" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dscweaver:", err)
	os.Exit(1)
}
