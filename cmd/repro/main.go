// Command repro regenerates every table and figure of the paper from
// the purchasing fixture and prints them with paper-vs-measured
// headlines.
//
// Usage:
//
//	repro            # print everything
//	repro table2     # print one artifact (table1, figure4, figure5,
//	                 # figure7, figure8, figure9, table2, soundness, bpel)
//	repro -list      # list artifact ids
//	repro -dot DIR   # additionally write Graphviz renderings of the
//	                 # figures into DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dscweaver/internal/core"
	"dscweaver/internal/pdg"
	"dscweaver/internal/purchasing"
	"dscweaver/internal/repro"
)

func main() {
	list := flag.Bool("list", false, "list artifact ids and exit")
	dotDir := flag.String("dot", "", "write Graphviz .dot files for the figures into this directory")
	flag.Parse()

	if *dotDir != "" {
		if err := writeDots(*dotDir); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
	}

	results, err := repro.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}

	if *list {
		for _, r := range results {
			fmt.Printf("%-10s %s\n", r.ID, r.Title)
		}
		return
	}

	want := map[string]bool{}
	for _, arg := range flag.Args() {
		want[strings.ToLower(arg)] = true
	}

	exit := 0
	for _, r := range results {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		status := "MATCH"
		if !r.Match() {
			status = "MISMATCH"
			exit = 1
		}
		fmt.Printf("==== %s ====\n", r.Title)
		fmt.Printf("paper: %s | measured: %s | %s\n\n", r.PaperValue, r.MeasuredValue, status)
		fmt.Println(strings.TrimRight(r.Text, "\n"))
		fmt.Println()
	}
	os.Exit(exit)
}

// writeDots renders Figures 4–5 (dependency graphs) and 7–9
// (constraint sets) as Graphviz documents.
func writeDots(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	toy, err := pdg.Extract(pdg.ToySeqlang)
	if err != nil {
		return err
	}
	fig5, err := pdg.Extract(pdg.PurchasingSeqlang)
	if err != nil {
		return err
	}
	merged, asc, res, err := purchasing.Pipeline()
	if err != nil {
		return err
	}
	files := map[string]string{
		"figure4.dot": core.DependencyDOT("figure4", toy.Deps),
		"figure5.dot": core.DependencyDOT("figure5", fig5.Deps),
		"figure7.dot": core.ConstraintDOT("figure7", merged),
		"figure8.dot": core.ConstraintDOT("figure8", asc),
		"figure9.dot": core.ConstraintDOT("figure9", res.Minimal),
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", filepath.Join(dir, name))
	}
	return nil
}
