// Command dscsim runs analytic what-if studies on a DSCL process: it
// weaves the document to its minimal constraint set and estimates the
// makespan distribution under a sampled latency model, optionally
// comparing against the unoptimized constraint set.
//
// Usage:
//
//	dscsim [flags] process.dscl
//
//	-trials N        Monte-Carlo trials (default 1000)
//	-seed N          RNG seed (default 1)
//	-min/-max DUR    uniform activity latency bounds (default 1ms/5ms)
//	-branch B        force every decision to branch B ("" = uniform)
//	-compare         also estimate the unoptimized (pre-minimization)
//	                 set; equal distributions are the observable form of
//	                 transitive equivalence (Definition 5). To quantify
//	                 the gain over sequencing constructs instead, see
//	                 examples/concurrency.
//	-parallel N      minimization worker count (0 = GOMAXPROCS); the
//	                 minimal set is identical for every value
//	-metrics FILE    write Prometheus-style minimizer metrics ("-" = stdout)
//	-events FILE     write the JSONL minimizer event log ("-" = stdout)
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"dscweaver/internal/core"
	"dscweaver/internal/dscl"
	"dscweaver/internal/obs"
	"dscweaver/internal/sim"
	"dscweaver/internal/weave"
)

func main() {
	trials := flag.Int("trials", 1000, "Monte-Carlo trials")
	seed := flag.Int64("seed", 1, "RNG seed")
	minLat := flag.Duration("min", time.Millisecond, "minimum activity latency")
	maxLat := flag.Duration("max", 5*time.Millisecond, "maximum activity latency")
	branch := flag.String("branch", "", "force every decision to this branch (empty = uniform sampling)")
	compare := flag.Bool("compare", true, "also estimate the unoptimized set (equivalence check: the distributions must match)")
	parallel := flag.Int("parallel", 0, "minimization worker count (0 = GOMAXPROCS, 1 = sequential); the minimal set is identical for every value")
	metricsOut := flag.String("metrics", "", "write Prometheus-style minimizer metrics to this file (\"-\" = stdout)")
	eventsOut := flag.String("events", "", "write the JSONL minimizer event log to this file (\"-\" = stdout)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dscsim [flags] process.dscl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	doc, err := dscl.Load(string(src))
	if err != nil {
		fail(err)
	}

	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	var sink obs.Sink
	var eventLog *obs.JSONLWriter
	if *eventsOut != "" {
		f, err := openOut(*eventsOut)
		if err != nil {
			fail(err)
		}
		eventLog = obs.NewJSONLWriter(f)
		sink = eventLog
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	wres, err := weave.Run(ctx, weave.Input{Parsed: doc.Parsed()}, weave.Options{
		Parallelism: *parallel,
		Metrics:     reg,
		Events:      sink,
	})
	if err != nil {
		fail(err)
	}
	asc, res := wres.Translated, wres.Minimize

	study := sim.Study{
		Trials:  *trials,
		Seed:    *seed,
		Latency: sim.Uniform(*minLat, *maxLat),
		Guards:  res.Guards,
	}
	if *branch != "" {
		b := *branch
		study.Branch = func(_ *rand.Rand, _ *core.Activity) string { return b }
	}

	fmt.Printf("process %s: %d activities, %d → %d constraints\n",
		doc.Proc.Name, len(doc.Proc.Activities()), asc.Len(), res.Minimal.Len())
	fmt.Printf("study: %d trials, latency U[%v, %v], seed %d\n\n", *trials, *minLat, *maxLat, *seed)

	minimal, err := sim.Estimate(res.Minimal, study)
	if err != nil {
		fail(err)
	}
	printSummary("minimal set", minimal)
	if *compare {
		unopt, err := sim.Estimate(asc, study)
		if err != nil {
			fail(err)
		}
		printSummary("unoptimized", unopt)
		if unopt == minimal {
			fmt.Println("\ndistributions identical — minimization preserved the schedule space (Def. 5)")
		} else {
			fmt.Printf("\nWARNING: distributions differ (mean ratio %.2f) — minimal set is not equivalent\n",
				float64(unopt.Mean)/float64(minimal.Mean))
		}
	}

	if eventLog != nil {
		if err := eventLog.Close(); err != nil {
			fail(err)
		}
	}
	if reg != nil {
		f, err := openOut(*metricsOut)
		if err != nil {
			fail(err)
		}
		if err := reg.WritePrometheus(f); err != nil {
			fail(err)
		}
		if *metricsOut != "-" {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}
	}
}

// openOut resolves an output-flag value: "-" means stdout, anything
// else is created (truncated) on disk.
func openOut(path string) (*os.File, error) {
	if path == "-" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

func printSummary(label string, s sim.Summary) {
	fmt.Printf("%-12s mean=%-10v p50=%-10v p95=%-10v min=%-10v max=%v\n",
		label, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.Min.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dscsim:", err)
	os.Exit(1)
}
