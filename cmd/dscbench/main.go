// Command dscbench thrashes a live dscweaverd with a configurable mix
// of weave, simulate and run-history reads, reporting per-op-class
// latency percentiles, throughput, error/shed counts and the daemon's
// RSS as one JSON document — the load-test companion to the in-process
// benchmarks (scripts/bench.sh wires it into BENCH_load.json).
//
// The benchmark generates -procs synthetic processes with the workload
// package (layered DAGs with shortcut and decision fodder, rendered to
// DSCL), then runs -clients concurrent client routines. Each routine
// draws operations from the weighted mix:
//
//	weave     POST /v1/weave      (write: full pipeline)
//	simulate  POST /v1/simulate   (write: pipeline + engine run)
//	enact     POST /v1/enact      (write: pipeline + one engine per
//	          decentral partition over the in-process note fabric)
//	runs      GET  /v1/runs       (read: history listing)
//	events    GET  /v1/runs/{id}/events (read: log replay of an
//	          id observed earlier in the bench)
//
// A run is bounded by -duration, or by -requests when set (whichever
// trips first). 429 sheds are counted separately from errors: under
// deliberate overload, shedding is the server working as designed.
//
// Usage:
//
//	dscbench [flags]
//
//	-addr URL     dscweaverd base URL (default http://127.0.0.1:8421)
//	-clients N    concurrent client routines (default 8)
//	-duration D   run length (default 30s)
//	-requests N   stop after N total requests (0 = duration-bound)
//	-mix NAME     read-heavy | write-heavy | scan | decentral, or
//	              custom weights "weave=2,simulate=1,enact=1,runs=4,events=3"
//	-procs N      distinct generated processes (default 8)
//	-layers/-width/-density  workload shape (default 4x3, 0.3)
//	-seed N       generation and mix-draw seed (default 1)
//	-rss-pid PID  sample VmRSS of this process at the end (0 = skip)
//	-out FILE     output path (default "-" = stdout)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dscweaver/internal/core"
	"dscweaver/internal/dscl"
	"dscweaver/internal/workload"
)

// opClasses in mix order; weights index into this.
var opClasses = []string{"weave", "simulate", "enact", "runs", "events"}

// namedMixes are the canonical workload mixes. Weights are relative
// draw frequencies per op class.
var namedMixes = map[string]map[string]int{
	"read-heavy":  {"weave": 1, "simulate": 1, "runs": 4, "events": 4},
	"write-heavy": {"weave": 4, "simulate": 4, "runs": 1, "events": 1},
	"scan":        {"weave": 1, "simulate": 0, "runs": 6, "events": 3},
	// decentral keeps the decentralized path hot: most writes run the
	// full enactment (partition placement, per-partition engines, note
	// fabric, Def. 5 merge validation).
	"decentral": {"weave": 1, "simulate": 1, "enact": 4, "runs": 2, "events": 2},
}

func parseMix(s string) (map[string]int, error) {
	if m, ok := namedMixes[s]; ok {
		return m, nil
	}
	m := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix element %q (want class=weight)", part)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		known := false
		for _, c := range opClasses {
			if k == c {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown op class %q (want one of %s)", k, strings.Join(opClasses, ", "))
		}
		m[k] = n
	}
	total := 0
	for _, n := range m {
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has zero total weight", s)
	}
	return m, nil
}

// opStats collects one op class's outcomes. Latencies are recorded in
// nanoseconds and reduced to percentiles at the end.
type opStats struct {
	mu        sync.Mutex
	latencies []int64
	errors    int64
	sheds     int64
}

func (s *opStats) record(d time.Duration, code int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err != nil:
		s.errors++
	case code == http.StatusTooManyRequests:
		s.sheds++
	case code >= 400:
		s.errors++
	default:
		s.latencies = append(s.latencies, int64(d))
	}
}

// percentile returns the p-th percentile (0..100) of sorted ns values.
func percentile(sorted []int64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return float64(sorted[idx]) / 1e6 // ms
}

// opReport is the per-class section of the output document.
type opReport struct {
	Count  int     `json:"count"`
	Errors int64   `json:"errors"`
	Sheds  int64   `json:"sheds"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func (s *opStats) report() opReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	lat := append([]int64(nil), s.latencies...)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	r := opReport{Count: len(lat), Errors: s.errors, Sheds: s.sheds}
	if len(lat) > 0 {
		r.P50MS = percentile(lat, 50)
		r.P95MS = percentile(lat, 95)
		r.P99MS = percentile(lat, 99)
		r.MaxMS = float64(lat[len(lat)-1]) / 1e6
	}
	return r
}

// idRing is the shared bounded set of observed run ids the events op
// draws from — clients read back runs the bench itself created.
type idRing struct {
	mu  sync.Mutex
	ids []string
}

const idRingCap = 512

func (r *idRing) add(id string) {
	if id == "" {
		return
	}
	r.mu.Lock()
	r.ids = append(r.ids, id)
	if len(r.ids) > idRingCap {
		r.ids = r.ids[len(r.ids)-idRingCap:]
	}
	r.mu.Unlock()
}

func (r *idRing) pick(rng *rand.Rand) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ids) == 0 {
		return ""
	}
	return r.ids[rng.Intn(len(r.ids))]
}

// genSources renders n deterministic synthetic processes to DSCL.
// services > 0 adds that many pinned service interactions per process,
// which makes the decentral placement genuinely multi-host — the enact
// op class uses these so sustained load exercises cross-partition
// notes, not a single-engine degenerate plan.
func genSources(n, layers, width int, density float64, seed int64, services int) []string {
	out := make([]string, n)
	for i := range out {
		w := workload.Layered(layers, width, density, seed+int64(i)).
			WithShortcuts(width).
			WithDecisions(1)
		if services > 0 {
			w = w.WithServices(services)
		}
		out[i] = dscl.PrintDocument(&dscl.Document{
			Proc: w.Proc, Deps: w.Deps, Extra: core.NewConstraintSet(w.Proc),
		})
	}
	return out
}

// readRSS samples VmRSS from /proc/<pid>/status, in bytes (0 when the
// pid is gone or the platform has no procfs).
func readRSS(pid int) int64 {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			kb, err := strconv.ParseInt(fields[1], 10, 64)
			if err == nil {
				return kb << 10
			}
		}
	}
	return 0
}

// report is the full output document.
type report struct {
	Bench      string              `json:"bench"`
	Addr       string              `json:"addr"`
	Mix        string              `json:"mix"`
	Weights    map[string]int      `json:"weights"`
	Clients    int                 `json:"clients"`
	Procs      int                 `json:"procs"`
	Seed       int64               `json:"seed"`
	DurationS  float64             `json:"duration_s"`
	Requests   int64               `json:"requests"`
	Throughput float64             `json:"throughput_rps"`
	Ops        map[string]opReport `json:"ops"`
	RSSBytes   int64               `json:"rss_bytes,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8421", "dscweaverd base URL")
	clients := flag.Int("clients", 8, "concurrent client routines")
	duration := flag.Duration("duration", 30*time.Second, "run length")
	requests := flag.Int64("requests", 0, "stop after N total requests (0 = duration-bound)")
	mixFlag := flag.String("mix", "read-heavy", `read-heavy | write-heavy | scan | decentral, or "class=weight,..."`)
	procs := flag.Int("procs", 8, "distinct generated processes")
	layers := flag.Int("layers", 4, "workload ranks per process")
	width := flag.Int("width", 3, "activities per rank")
	density := flag.Float64("density", 0.3, "extra data-dependency probability")
	seed := flag.Int64("seed", 1, "generation and mix-draw seed")
	rssPID := flag.Int("rss-pid", 0, "sample VmRSS of this pid at the end (0 = skip)")
	out := flag.String("out", "-", `output path ("-" = stdout)`)
	flag.Parse()
	if flag.NArg() != 0 || *clients < 1 || *procs < 1 {
		fmt.Fprintln(os.Stderr, "usage: dscbench [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	weights, err := parseMix(*mixFlag)
	if err != nil {
		fatal(err)
	}

	sources := genSources(*procs, *layers, *width, *density, *seed, 0)
	enactSources := genSources(*procs, *layers, *width, *density, *seed, 2)
	base := strings.TrimRight(*addr, "/")
	httpc := &http.Client{Timeout: 60 * time.Second}

	// Weighted draw table: class repeated weight times.
	var draw []string
	for _, c := range opClasses {
		for i := 0; i < weights[c]; i++ {
			draw = append(draw, c)
		}
	}

	stats := map[string]*opStats{}
	for _, c := range opClasses {
		stats[c] = &opStats{}
	}
	ring := &idRing{}
	var total atomic.Int64
	deadline := time.Now().Add(*duration)

	do := func(rng *rand.Rand, class string) {
		var (
			code int
			id   string
			err  error
		)
		began := time.Now()
		switch class {
		case "weave":
			src := sources[rng.Intn(len(sources))]
			code, id, err = post(httpc, base+"/v1/weave", map[string]any{"source": src})
		case "simulate":
			src := sources[rng.Intn(len(sources))]
			code, id, err = post(httpc, base+"/v1/simulate", map[string]any{
				"source": src, "timeout_ms": 10000,
			})
		case "enact":
			src := enactSources[rng.Intn(len(enactSources))]
			code, id, err = post(httpc, base+"/v1/enact", map[string]any{
				"source": src, "timeout_ms": 10000,
			})
		case "runs":
			code, err = get(httpc, base+"/v1/runs?limit=50")
		case "events":
			rid := ring.pick(rng)
			if rid == "" {
				code, err = get(httpc, base+"/v1/runs?limit=1")
			} else {
				code, err = get(httpc, base+"/v1/runs/"+rid+"/events")
			}
		}
		stats[class].record(time.Since(began), code, err)
		ring.add(id)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)*7919))
			for time.Now().Before(deadline) {
				if *requests > 0 && total.Load() >= *requests {
					return
				}
				total.Add(1)
				do(rng, draw[rng.Intn(len(draw))])
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := report{
		Bench:     "load",
		Addr:      base,
		Mix:       *mixFlag,
		Weights:   weights,
		Clients:   *clients,
		Procs:     *procs,
		Seed:      *seed,
		DurationS: elapsed.Seconds(),
		Requests:  total.Load(),
		Ops:       map[string]opReport{},
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	}
	for _, c := range opClasses {
		rep.Ops[c] = stats[c].report()
	}
	if *rssPID > 0 {
		rep.RSSBytes = readRSS(*rssPID)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

// post sends a JSON body and extracts run_id from a 200 response (the
// weave/simulate shapes both carry one).
func post(c *http.Client, url string, body any) (code int, runID string, err error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, "", err
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, "", err
	}
	if resp.StatusCode == http.StatusOK {
		var out struct {
			RunID string `json:"run_id"`
		}
		_ = json.Unmarshal(raw, &out)
		runID = out.RunID
	}
	return resp.StatusCode, runID, nil
}

func get(c *http.Client, url string) (int, error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dscbench:", err)
	os.Exit(1)
}
