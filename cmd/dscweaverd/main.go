// Command dscweaverd serves the weaver pipeline over HTTP: a
// long-running hardened service in front of the same §5 pipeline the
// dscweaver CLI runs once per invocation.
//
//	POST /v1/weave             weave DSCL or seqlang source into the
//	                           minimal constraint set (+ Petri verdict,
//	                           optional BPEL)
//	POST /v1/simulate          execute the minimal set on the scheduling
//	                           engine against simulated services
//	GET  /v1/runs              recent run summaries
//	GET  /v1/runs/{id}/events  one run's lifecycle event log as JSONL
//	GET  /metrics              Prometheus text exposition
//	GET  /healthz              liveness (503 while draining)
//	GET  /readyz               readiness (503 when draining or the
//	                           weave pool is saturated with a backlog)
//
// Requests that wait longer than the queue-wait bound for a pool slot
// are shed with 429 and a Retry-After hint.
//
// Usage:
//
//	dscweaverd [flags]
//
//	-addr ADDR       listen address (default :8421)
//	-config FILE     JSON config file (flags override it)
//	-store-dir DIR   persistent run store directory: run history
//	                 survives restarts and outgrows the in-memory ring
//	-store-fsync     fsync the store on every run finish
//	-events FILE     rotating JSONL event log path
//	-parallel N      default minimizer worker count per weave
//	-validate-parallel N
//	                 default soundness-exploration worker count per weave
//	-concurrency N   weave worker pool size (default GOMAXPROCS)
//	-queue-wait D    max wait for a pool slot before shedding (default 2s)
//	-verdict-cache N cross-run minimize verdict cache entries
//	                 (0 = 256 default, negative disables)
//	-fabric-token T  shared bearer secret for the inter-node enactment
//	                 surface (/v1/transport/invoke, /v1/enact/join);
//	                 every member of a multi-process enactment must
//	                 agree on it
//	-chaos-net SPEC  seeded network-fault plan injected into outgoing
//	                 enactment frames (chaos testing), e.g.
//	                 '*>*:partition=1500ms;lose=2'
//	-chaos-net-seed N
//	                 seed for -chaos-net (default 1)
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight weaves finish,
// then the event log closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"dscweaver/internal/chaos"
	"dscweaver/internal/server"
)

func main() {
	addr := flag.String("addr", "", "listen address (default :8421)")
	configPath := flag.String("config", "", "JSON config file (flags override it)")
	storeDir := flag.String("store-dir", "", "persistent run store directory (empty = memory-only run history)")
	storeFsync := flag.Bool("store-fsync", false, "fsync the run store on every run finish")
	events := flag.String("events", "", "rotating JSONL event log path")
	parallel := flag.Int("parallel", 0, "default minimizer worker count per weave (0 = GOMAXPROCS)")
	validateParallel := flag.Int("validate-parallel", 0, "default soundness-exploration worker count per weave (0 or 1 = sequential)")
	concurrency := flag.Int("concurrency", 0, "weave worker pool size (0 = GOMAXPROCS)")
	queueWait := flag.Duration("queue-wait", 0, "max wait for a pool slot before shedding with 429 (0 = 2s default)")
	verdictCache := flag.Int("verdict-cache", 0, "cross-run minimize verdict cache size in entries (0 = 256 default, negative disables)")
	fabricToken := flag.String("fabric-token", "", "shared bearer secret for the inter-node enactment surface")
	chaosNet := flag.String("chaos-net", "", "seeded network-fault plan for outgoing enactment frames, e.g. '*>*:partition=1500ms;lose=2'")
	chaosNetSeed := flag.Int64("chaos-net-seed", 1, "seed for -chaos-net")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: dscweaverd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var cfg server.Config
	if *configPath != "" {
		var err error
		cfg, err = server.LoadConfig(*configPath)
		if err != nil {
			fatal(err)
		}
	}
	if *addr != "" {
		cfg.Addr = *addr
	}
	if *storeDir != "" {
		cfg.StoreDir = *storeDir
	}
	if *storeFsync {
		cfg.StoreFsync = true
	}
	if *events != "" {
		cfg.EventsPath = *events
	}
	if *parallel != 0 {
		cfg.WeaveParallelism = *parallel
	}
	if *validateParallel != 0 {
		cfg.ValidateParallel = *validateParallel
	}
	if *concurrency != 0 {
		cfg.WeaveConcurrency = *concurrency
	}
	if *queueWait != 0 {
		cfg.QueueWait = *queueWait
	}
	if *verdictCache != 0 {
		cfg.VerdictCacheSize = *verdictCache
	}
	if *fabricToken != "" {
		cfg.FabricToken = *fabricToken
	}
	if *chaosNet != "" {
		net, err := chaos.ParseNetSpec(*chaosNet, *chaosNetSeed)
		if err != nil {
			fatal(err)
		}
		cfg.FabricWrap = net.RoundTripper
		fmt.Fprintf(os.Stderr, "dscweaverd: CHAOS fabric plan %s (seed %d)\n", net.Plan(), net.Seed())
	}

	s, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg = cfg.Normalize()
	fmt.Fprintf(os.Stderr, "dscweaverd listening on %s (weave pool %d)\n", cfg.Addr, cfg.WeaveConcurrency)
	if err := s.ListenAndServe(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "dscweaverd drained")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dscweaverd:", err)
	os.Exit(1)
}
