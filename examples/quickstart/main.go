// Quickstart: declare a small process and its dependencies, merge
// them into synchronization constraints, and compute the minimal
// constraint set.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dscweaver/internal/core"
	"dscweaver/internal/dscl"
)

func main() {
	// A three-step pipeline with a business rule: auditing must finish
	// before the report is published, even though no data connects
	// them (a cooperation dependency, §3.2).
	proc := core.NewProcess("Reporting")
	proc.MustAddActivity(&core.Activity{ID: "collect", Kind: core.KindReceive, Writes: []string{"raw"}})
	proc.MustAddActivity(&core.Activity{ID: "aggregate", Kind: core.KindOpaque, Reads: []string{"raw"}, Writes: []string{"report"}})
	proc.MustAddActivity(&core.Activity{ID: "audit", Kind: core.KindOpaque, Reads: []string{"raw"}})
	proc.MustAddActivity(&core.Activity{ID: "publish", Kind: core.KindReply, Reads: []string{"report"}})

	deps := core.NewDependencySet()
	add := func(d core.Dependency) { deps.Add(d) }
	add(core.Dependency{From: core.ActivityNode("collect"), To: core.ActivityNode("aggregate"), Dim: core.Data, Label: "raw"})
	add(core.Dependency{From: core.ActivityNode("collect"), To: core.ActivityNode("audit"), Dim: core.Data, Label: "raw"})
	add(core.Dependency{From: core.ActivityNode("aggregate"), To: core.ActivityNode("publish"), Dim: core.Data, Label: "report"})
	add(core.Dependency{From: core.ActivityNode("audit"), To: core.ActivityNode("publish"), Dim: core.Cooperation, Label: "audit before publishing"})
	// An over-specified constraint someone added "to be safe" — the
	// optimizer will prove it redundant.
	add(core.Dependency{From: core.ActivityNode("collect"), To: core.ActivityNode("publish"), Dim: core.Cooperation, Label: "belt and braces"})

	fmt.Println("== dependency catalog (Table 1 style) ==")
	fmt.Print(deps)

	sc, err := core.Merge(proc, deps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== merged synchronization constraints: %d ==\n", sc.Len())
	fmt.Println(dscl.PrintConstraints(sc))

	res, err := core.Minimize(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== minimal constraint set: %d (%d removed) ==\n", res.Minimal.Len(), len(res.Removed))
	fmt.Println(dscl.PrintConstraints(res.Minimal))
	for _, r := range res.Removed {
		fmt.Printf("removed: %s  (origin %v)\n", r, r.Origins)
	}

	// The removed constraint is provably implied: the sets are
	// transitive equivalent (Definition 5).
	eq, err := core.Equivalent(sc, res.Minimal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransitive equivalent to the original: %v\n", eq)
}
