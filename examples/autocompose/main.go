// Automatic service composition (§1): instead of a programmer coding
// sequencing constructs, every participating service submits its WSCL
// conversation document, the analyst submits the cooperation rules,
// the imperative skeleton contributes data/control dependencies via
// PDG extraction — and the scheduling engine infers the global
// synchronization scheme by merging and minimizing.
//
//	go run ./examples/autocompose
package main

import (
	"fmt"
	"log"

	"dscweaver/internal/core"
	"dscweaver/internal/dscl"
	"dscweaver/internal/pdg"
	"dscweaver/internal/purchasing"
	"dscweaver/internal/wscl"
)

func main() {
	// 1. The process skeleton, written imperatively (Figure 2): the
	// PDG extractor recovers data and control dependencies from it.
	ex, err := pdg.Extract(pdg.PurchasingSeqlang)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PDG extraction from sequencing constructs: %d data/control dependencies\n", ex.Deps.Len())

	// 2. Each remote service submits its conversation document; the
	// service dimension is inferred, not hand-coded.
	convs, err := wscl.PurchasingConversations()
	if err != nil {
		log.Fatal(err)
	}
	svcDeps, err := wscl.DependenciesAll(ex.Proc, convs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WSCL submissions from %d services:         %d service dependencies\n", len(convs), svcDeps.Len())
	for _, c := range convs {
		s := c.Service()
		fmt.Printf("  %-10s ports=%v async=%v sequential=%v\n", s.Name, s.Ports, s.Async, s.SequentialPorts)
	}

	// 3. The process analyst contributes the cooperation rules (§3.2:
	// these cannot be inferred from flowcharts).
	coopDeps := core.NewDependencySet()
	for _, d := range purchasing.Dependencies().ByDimension(core.Cooperation) {
		coopDeps.Add(d)
	}
	fmt.Printf("analyst-supplied cooperation rules:        %d dependencies\n", coopDeps.Len())

	// 4. The scheduling engine merges all submissions and infers the
	// global scheme.
	sc, err := core.MergeSets(ex.Proc, ex.Deps, svcDeps, coopDeps)
	if err != nil {
		log.Fatal(err)
	}
	asc, err := core.TranslateServices(sc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Minimize(asc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nglobal synchronization scheme: %d merged → %d translated → %d minimal\n",
		sc.Len(), asc.Len(), res.Minimal.Len())
	fmt.Println()
	fmt.Println(dscl.PrintConstraints(res.Minimal))

	// The composed scheme matches the paper's hand-derived Figure 9.
	want := map[string]bool{}
	for _, e := range purchasing.MinimalEdges() {
		want[fmt.Sprintf("%s→%s", e.From, e.To)] = true
	}
	got := 0
	for _, c := range res.Minimal.Constraints() {
		if want[fmt.Sprintf("%s→%s", c.From.Node, c.To.Node)] {
			got++
		}
	}
	fmt.Printf("\nmatches Figure 9: %d/%d constraints\n", got, len(want))
}
