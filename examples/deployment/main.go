// The deployment process of the paper's Figure 6: middleware and
// application packages are installed through the same Deploy service,
// with no data or control dependency between the two invocations —
// yet the application package must go in after the middleware has set
// up its directory structure. Only a cooperation dependency can
// express that (§3.2); this example shows the schedule with and
// without it against a Deploy service that checks the precondition.
//
//	go run ./examples/deployment
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dscweaver/internal/core"
	"dscweaver/internal/schedule"
	"dscweaver/internal/services"
)

func buildProcess() (*core.Process, *core.DependencySet) {
	proc := core.NewProcess("Deployment")
	proc.MustAddService(&core.Service{Name: "Deploy", Ports: []string{"1"}})
	proc.MustAddActivity(&core.Activity{ID: "recClient_config", Kind: core.KindReceive, Writes: []string{"config"}})
	proc.MustAddActivity(&core.Activity{ID: "extract_midConfig", Kind: core.KindOpaque, Reads: []string{"config"}, Writes: []string{"midConfig"}})
	proc.MustAddActivity(&core.Activity{ID: "extract_appConfig", Kind: core.KindOpaque, Reads: []string{"config"}, Writes: []string{"appConfig"}})
	proc.MustAddActivity(&core.Activity{ID: "invDeploy_midConfig", Kind: core.KindInvoke, Service: "Deploy", Port: "1", Reads: []string{"midConfig"}})
	proc.MustAddActivity(&core.Activity{ID: "invDeploy_appConfig", Kind: core.KindInvoke, Service: "Deploy", Port: "1", Reads: []string{"appConfig"}})

	deps := core.NewDependencySet()
	for _, to := range []core.ActivityID{"extract_midConfig", "extract_appConfig"} {
		deps.Add(core.Dependency{From: core.ActivityNode("recClient_config"), To: core.ActivityNode(to), Dim: core.Data, Label: "config"})
	}
	deps.Add(core.Dependency{From: core.ActivityNode("extract_midConfig"), To: core.ActivityNode("invDeploy_midConfig"), Dim: core.Data, Label: "midConfig"})
	deps.Add(core.Dependency{From: core.ActivityNode("extract_appConfig"), To: core.ActivityNode("invDeploy_appConfig"), Dim: core.Data, Label: "appConfig"})
	return proc, deps
}

// deployService checks the Figure 6 precondition: installing the
// application package requires the middleware's directory structure
// (a servlet needs $Tomcat/webapp to exist).
func deployService() services.Config {
	return services.Config{
		Name: "Deploy", Ports: []string{"1"},
		Handle: func(c *services.Call) ([]services.Emit, error) {
			pkg := fmt.Sprint(c.Payload)
			switch pkg {
			case "middleware":
				c.State["middleware"] = true
				return nil, nil
			case "application":
				if c.State["middleware"] != true {
					return nil, fmt.Errorf("deploy: application package before middleware: no $Tomcat/webapp directory")
				}
				return nil, nil
			default:
				return nil, fmt.Errorf("deploy: unknown package %q", pkg)
			}
		},
	}
}

func run(withCoop bool) {
	proc, deps := buildProcess()
	if withCoop {
		deps.Add(core.Dependency{
			From: core.ActivityNode("invDeploy_midConfig"),
			To:   core.ActivityNode("invDeploy_appConfig"),
			Dim:  core.Cooperation, Label: "middleware sets up directories for the application package",
		})
	}
	sc, err := core.Merge(proc, deps)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Minimize(sc)
	if err != nil {
		log.Fatal(err)
	}

	// Executors: extracts compute package names; invokes call Deploy.
	// The middleware invocation is deliberately slowed so that without
	// the cooperation dependency the application package reliably
	// overtakes it.
	bus := services.NewBus(0)
	if err := bus.Register(deployService()); err != nil {
		log.Fatal(err)
	}
	execs := map[core.ActivityID]schedule.Executor{
		"extract_midConfig": func(ctx context.Context, a *core.Activity, v *schedule.Vars) (schedule.Outcome, error) {
			v.Set("midConfig", "middleware")
			return schedule.Outcome{}, nil
		},
		"extract_appConfig": func(ctx context.Context, a *core.Activity, v *schedule.Vars) (schedule.Outcome, error) {
			v.Set("appConfig", "application")
			return schedule.Outcome{}, nil
		},
		"invDeploy_midConfig": func(ctx context.Context, a *core.Activity, v *schedule.Vars) (schedule.Outcome, error) {
			time.Sleep(20 * time.Millisecond)
			pkg, _ := v.Get("midConfig")
			return schedule.Outcome{}, bus.Invoke("Deploy", "1", pkg)
		},
		"invDeploy_appConfig": func(ctx context.Context, a *core.Activity, v *schedule.Vars) (schedule.Outcome, error) {
			pkg, _ := v.Get("appConfig")
			return schedule.Outcome{}, bus.Invoke("Deploy", "1", pkg)
		},
	}
	eng, err := schedule.New(res.Minimal, execs, schedule.Options{
		Inputs: map[string]any{"config": "bundle-7"},
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := eng.Run(context.Background())
	if err != nil {
		log.Fatalf("%v\n%s", err, tr)
	}
	bus.Close()
	var fault error
	for cb := range bus.Inbox() {
		if cb.Err != nil {
			fault = cb.Err
		}
	}
	fmt.Printf("cooperation dependency declared: %-5v → constraints=%d, ", withCoop, res.Minimal.Len())
	if fault != nil {
		fmt.Printf("DEPLOYMENT FAILED: %v\n", fault)
	} else {
		fmt.Printf("deployment succeeded\n")
	}
}

func main() {
	fmt.Println("Figure 6 deployment process — the implicit middleware→application ordering")
	fmt.Println()
	run(false) // races: application package may land before middleware
	run(true)  // cooperation dependency enforces the implicit ordering
}
