// Process adaptation (§1): "because of the nested structure and
// scattered code that results from using sequencing constructs, it is
// hard to add or delete additional constraints without over-specifying
// necessary constraints or invalidating existing ones." With explicit
// dependencies this is a local operation: the Adapter keeps the
// minimal constraint view consistent while business rules come and go
// on the live Purchasing process.
//
//	go run ./examples/adaptation
package main

import (
	"fmt"
	"log"

	"dscweaver/internal/core"
	"dscweaver/internal/purchasing"
)

func main() {
	adapter, err := core.NewAdapter(purchasing.Process(), purchasing.Dependencies())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial minimal set: %d constraints (Figure 9)\n\n", adapter.Minimal().Len())

	report := func(what string, res *core.ChangeResult) {
		switch {
		case res.Implied:
			fmt.Printf("%-60s → already implied, nothing to monitor\n", what)
		case res.FullRecompute:
			fmt.Printf("%-60s → load-bearing change, re-optimized\n", what)
		default:
			fmt.Printf("%-60s → +%d constraint(s), pruned %d (%d checks)\n",
				what, len(res.Added), len(res.Pruned), res.EquivalenceChecks)
		}
		fmt.Printf("%-60s   minimal set now %d constraints\n", "", adapter.Minimal().Len())
	}

	// 1. An auditor insists shipping must be booked before production
	// starts. That ordering is genuinely new.
	rule1 := core.Dependency{
		From: core.ActivityNode(purchasing.InvShipPo),
		To:   core.ActivityNode(purchasing.InvProductionPo),
		Dim:  core.Cooperation, Label: "audit: book shipping before production",
	}
	res, err := adapter.Add(rule1)
	if err != nil {
		log.Fatal(err)
	}
	report("add: invShip_po →o invProduction_po (audit rule)", res)

	// 2. A belt-and-braces rule someone proposes: the credit check
	// must precede the invoice reply. Already implied transitively —
	// the adapter proves it and adds no monitoring burden. This is
	// exactly the over-specification that sequencing constructs would
	// have silently baked in.
	rule2 := core.Dependency{
		From: core.ActivityNode(purchasing.InvCreditPo),
		To:   core.ActivityNode(purchasing.ReplyClientOi),
		Dim:  core.Cooperation, Label: "credit before reply",
	}
	res, err = adapter.Add(rule2)
	if err != nil {
		log.Fatal(err)
	}
	report("add: invCredit_po →o replyClient_oi (redundant rule)", res)

	// 3. The audit rule is withdrawn. Its constraint was load-bearing,
	// so the minimal view is re-derived.
	res, err = adapter.Remove(rule1)
	if err != nil {
		log.Fatal(err)
	}
	report("remove: the audit rule", res)

	// 4. The redundant rule is withdrawn too — a no-op on the minimal
	// view, detected without re-optimization.
	res, err = adapter.Remove(rule2)
	if err != nil {
		log.Fatal(err)
	}
	report("remove: the redundant rule", res)

	// Back to Figure 9.
	fmt.Printf("\nfinal minimal set: %d constraints — Figure 9 restored\n", adapter.Minimal().Len())
}
