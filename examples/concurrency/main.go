// The concurrency claim, measured: "the removal of redundant
// dependencies results in a lightweight implementation, enabling …
// opportunities for concurrent execution" (§1). Layered synthetic
// processes are executed twice — once under the schedule a
// sequence-construct implementation imposes (each rank serialized) and
// once under the minimal dependency set — and the makespans and peak
// parallelism are compared.
//
//	go run ./examples/concurrency
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dscweaver/internal/core"
	"dscweaver/internal/schedule"
	"dscweaver/internal/workload"
)

func run(sc *core.ConstraintSet, work time.Duration) (time.Duration, int) {
	execs := schedule.NoopExecutors(sc.Proc, work, nil)
	eng, err := schedule.New(sc, execs, schedule.Options{Timeout: time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := eng.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Validate(sc, nil); err != nil {
		log.Fatal(err)
	}
	return tr.Makespan(), tr.MaxParallel
}

func main() {
	const layers = 6
	const work = 2 * time.Millisecond
	fmt.Printf("layered processes, %d ranks, %v of work per activity\n\n", layers, work)
	fmt.Printf("%-7s %-12s %-12s %-9s %-11s %-11s\n",
		"width", "constructs", "minimal", "speedup", "par(constr)", "par(min)")
	for _, width := range []int{1, 2, 4, 8, 16} {
		w := workload.Layered(layers, width, 0.25, int64(width))
		base, err := w.SequencingBaseline()
		if err != nil {
			log.Fatal(err)
		}
		merged, err := w.Constraints()
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.MinimizeUnconditional(merged)
		if err != nil {
			log.Fatal(err)
		}
		tBase, pBase := run(base, work)
		tMin, pMin := run(res.Minimal, work)
		fmt.Printf("%-7d %-12v %-12v %-9.2f %-11d %-11d\n",
			width, tBase.Round(time.Millisecond), tMin.Round(time.Millisecond),
			float64(tBase)/float64(tMin), pBase, pMin)
	}
	fmt.Println("\nthe construct baseline serializes each rank, so its makespan grows with")
	fmt.Println("width while the minimal dependency set keeps the critical path at the")
	fmt.Println("number of ranks — the dataflow advantage the paper argues for (§1, §5).")
}
