// The paper's running example end to end: the Purchasing process is
// merged, translated, minimized (Figures 7–9, Table 2), validated
// through the Petri-net stage, compiled to BPEL, and finally executed
// against the simulated Credit/Purchase/Ship/Production services on
// both credit outcomes.
//
//	go run ./examples/purchasing
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dscweaver/internal/bpel"
	"dscweaver/internal/core"
	"dscweaver/internal/petri"
	"dscweaver/internal/purchasing"
	"dscweaver/internal/schedule"
	"dscweaver/internal/services"
)

func main() {
	merged, asc, res, err := purchasing.Pipeline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== optimization pipeline ==")
	fmt.Printf("Table 1 dependencies:       %d\n", purchasing.Dependencies().Len())
	fmt.Printf("merged constraints (Fig 7): %d\n", merged.Len())
	fmt.Printf("translated ASC (Fig 8):     %d\n", asc.Len())
	fmt.Printf("minimal set (Fig 9):        %d  (Table 2: %d removed)\n",
		res.Minimal.Len(), purchasing.Dependencies().Len()-res.Minimal.Len())

	guards, err := core.DeriveGuards(asc)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := petri.Validate(context.Background(), res.Minimal, guards)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== petri-net validation ==\nsound=%v over %d reachable states\n", rep.Sound, rep.StateSpace.States)

	doc, err := bpel.Generate(res.Minimal)
	if err != nil {
		log.Fatal(err)
	}
	if err := bpel.Validate(doc); err != nil {
		log.Fatal(err)
	}
	stats := bpel.Summarize(doc)
	fmt.Printf("\n== BPEL generation ==\n%d activities, %d links (%d conditional)\n",
		stats.Activities, stats.Links, stats.Conditional)

	for _, approve := range []bool{true, false} {
		fmt.Printf("\n== execution (credit approved = %v) ==\n", approve)
		bus := services.NewBus(0)
		if err := services.RegisterPurchasing(bus, 2*time.Millisecond, approve); err != nil {
			log.Fatal(err)
		}
		binding := schedule.NewBinding(bus)
		eng, err := schedule.New(res.Minimal, binding.Executors(asc.Proc, time.Millisecond), schedule.Options{
			Guards: guards,
			Inputs: map[string]any{"po": "po-1001"},
		})
		if err != nil {
			log.Fatal(err)
		}
		tr, err := eng.Run(context.Background())
		if err != nil {
			log.Fatalf("%v\n%s", err, tr)
		}
		bus.Close()
		binding.Close()
		if err := tr.Validate(asc, guards); err != nil {
			log.Fatalf("trace violates the ASC: %v", err)
		}
		fmt.Printf("ran %d activities, skipped %v\n", len(tr.Executed()), tr.SkippedActivities())
		fmt.Printf("makespan %v, peak parallelism %d\n", tr.Makespan().Round(time.Millisecond), tr.MaxParallel)
		fmt.Printf("invoice returned to client: %v\n", tr.FinalVars["oi"])
		delivered, faults := bus.Stats()
		fmt.Printf("service callbacks delivered=%d faults=%d\n", delivered, faults)
	}
}
