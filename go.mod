module dscweaver

go 1.22
