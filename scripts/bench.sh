#!/usr/bin/env bash
# Runs the minimizer benchmark sweep and writes BENCH_minimize.json:
# one record per BenchmarkMinimizeParallel row with the workload size,
# worker count, engine configuration (closure cache, speculation,
# verdict cache), ns/op, annotated-closure pair comparisons,
# closure-cache hits and the cross-run verdict-cache hit rate. Also runs the scheduler
# observability-overhead and no-fault retry-overhead benchmarks and
# writes BENCH_schedule.json with the obs=off/obs=on and
# retry=off/retry=on ns/op pairs and their overhead percentages. Finally
# runs the dscweaverd weave-throughput benchmark and writes
# BENCH_server.json with req/sec at minimizer parallelism 1 vs
# GOMAXPROCS, the weave pipeline stage benchmark into
# BENCH_weave.json with the per-stage ns/op breakdown, and the
# soundness-kernel comparison into BENCH_soundness.json with one record
# per kernel/net pair.
#
# Last, unless DSCW_SKIP_LOAD=1, it runs the dscbench load test against
# a live dscweaverd (scripts/load.sh) and writes BENCH_load.json with
# per-op-class latency percentiles, throughput and the daemon's RSS.
#
#   scripts/bench.sh [minimize-output.json] [schedule-output.json] \
#                    [server-output.json] [weave-output.json] \
#                    [soundness-output.json] [load-output.json]
#
# BENCHTIME (default 1x) is passed to -benchtime; set DSCW_BENCH_LARGE=1
# to include the n=4096 stretch rows (the n=1024 rows always run). SCHED_BENCHTIME (default
# 20x) controls the scheduler overhead runs, which need repetitions for
# a stable ratio. WEAVE_BENCHTIME (default 1x) controls the pipeline
# stage runs, whose layered row is seconds per op.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_minimize.json}"
sched_out="${2:-BENCH_schedule.json}"
server_out="${3:-BENCH_server.json}"
weave_out="${4:-BENCH_weave.json}"
soundness_out="${5:-BENCH_soundness.json}"
benchtime="${BENCHTIME:-1x}"
sched_benchtime="${SCHED_BENCHTIME:-20x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkMinimizeParallel' -benchtime "$benchtime" -timeout 0 . | tee "$raw"

awk '
/^BenchmarkMinimizeParallel\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    n = 0; workers = 0; cache = "true"; spec = "true"; vcache = "false"
    split(name, parts, "/")
    for (i in parts) {
        if (parts[i] ~ /^activities=/) { split(parts[i], kv, "="); n = kv[2] }
        if (parts[i] ~ /^workers=/)    { split(parts[i], kv, "="); workers = kv[2] }
        if (parts[i] == "nocache")     { cache = "false" }
        if (parts[i] == "nospec")      { spec = "false" }
        if (parts[i] == "vcache")      { vcache = "true" }
    }
    ns = 0; pairs = 0; hits = 0; vrate = 0
    for (i = 3; i < NF; i += 2) {
        if ($(i+1) == "ns/op")         ns = $i
        if ($(i+1) == "pairs/op")      pairs = $i
        if ($(i+1) == "cachehits/op")  hits = $i
        if ($(i+1) == "vcachehits/op") vrate = $i
    }
    if (ns == 0) next
    rec = sprintf("  {\"name\": \"%s\", \"activities\": %d, \"workers\": %d, \"cache\": %s, \"speculation\": %s, \"verdict_cache\": %s, \"ns_per_op\": %.0f, \"pair_comparisons\": %.0f, \"cache_hits\": %.0f, \"verdict_cache_hit_rate\": %.2f}",
                  name, n, workers, cache, spec, vcache, ns, pairs, hits, vrate)
    recs[++count] = rec
}
END {
    print "["
    for (i = 1; i <= count; i++) printf("%s%s\n", recs[i], i < count ? "," : "")
    print "]"
}
' "$raw" > "$out"

echo "wrote $out ($(grep -c '"name"' "$out") records)"

sched_raw="$(mktemp)"
trap 'rm -f "$raw" "$sched_raw"' EXIT

go test -run '^$' -bench 'BenchmarkSchedulerObsOverhead|BenchmarkRetryOverhead' -benchtime "$sched_benchtime" -timeout 0 . | tee "$sched_raw"

awk '
/^Benchmark(SchedulerObsOverhead|RetryOverhead)\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = 0
    for (i = 3; i < NF; i += 2) {
        if ($(i+1) == "ns/op") ns = $i
    }
    if (name ~ /obs=off/)   obs_off = ns
    if (name ~ /obs=on/)    obs_on = ns
    if (name ~ /retry=off/) retry_off = ns
    if (name ~ /retry=on/)  retry_on = ns
}
END {
    if (obs_off == 0 || obs_on == 0) { print "missing obs benchmark rows" > "/dev/stderr"; exit 1 }
    if (retry_off == 0 || retry_on == 0) { print "missing retry benchmark rows" > "/dev/stderr"; exit 1 }
    obs_pct = (obs_on - obs_off) / obs_off * 100
    retry_pct = (retry_on - retry_off) / retry_off * 100
    printf("{\n  \"benchmark\": \"BenchmarkSchedulerObsOverhead\",\n")
    printf("  \"obs_off_ns_per_op\": %.0f,\n  \"obs_on_ns_per_op\": %.0f,\n", obs_off, obs_on)
    printf("  \"overhead_pct\": %.2f,\n  \"budget_pct\": 5,\n", obs_pct)
    printf("  \"retry_benchmark\": \"BenchmarkRetryOverhead\",\n")
    printf("  \"retry_off_ns_per_op\": %.0f,\n  \"retry_on_ns_per_op\": %.0f,\n", retry_off, retry_on)
    printf("  \"retry_overhead_pct\": %.2f,\n  \"retry_budget_pct\": 5\n}\n", retry_pct)
}
' "$sched_raw" > "$sched_out"

echo "wrote $sched_out (obs overhead $(grep -o '"overhead_pct": [0-9.-]*' "$sched_out" | cut -d' ' -f2)%, retry overhead $(grep -o '"retry_overhead_pct": [0-9.-]*' "$sched_out" | cut -d' ' -f2)%)"

server_raw="$(mktemp)"
trap 'rm -f "$raw" "$sched_raw" "$server_raw"' EXIT
server_benchtime="${SERVER_BENCHTIME:-10x}"

go test -run '^$' -bench 'BenchmarkServerWeave' -benchtime "$server_benchtime" -timeout 0 . | tee "$server_raw"

awk '
/^BenchmarkServerWeave\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    parallel = 0
    split(name, parts, "/")
    for (i in parts) {
        if (parts[i] ~ /^parallel=/) { split(parts[i], kv, "="); parallel = kv[2] }
    }
    ns = 0
    for (i = 3; i < NF; i += 2) {
        if ($(i+1) == "ns/op") ns = $i
    }
    if (ns == 0) next
    recs[++count] = sprintf("  {\"name\": \"%s\", \"parallelism\": %d, \"ns_per_op\": %.0f, \"req_per_sec\": %.1f}",
                            name, parallel, ns, 1e9 / ns)
}
END {
    if (count == 0) { print "missing server benchmark rows" > "/dev/stderr"; exit 1 }
    print "["
    for (i = 1; i <= count; i++) printf("%s%s\n", recs[i], i < count ? "," : "")
    print "]"
}
' "$server_raw" > "$server_out"

echo "wrote $server_out ($(grep -c '"name"' "$server_out") records)"

weave_raw="$(mktemp)"
trap 'rm -f "$raw" "$sched_raw" "$server_raw" "$weave_raw"' EXIT
weave_benchtime="${WEAVE_BENCHTIME:-1x}"

go test -run '^$' -bench 'BenchmarkWeavePipelineStages' -benchtime "$weave_benchtime" -timeout 0 . | tee "$weave_raw"

awk '
/^BenchmarkWeavePipelineStages\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = 0; nstages = 0
    delete stage; delete stagens
    for (i = 3; i < NF; i += 2) {
        if ($(i+1) == "ns/op") { ns = $i; continue }
        if ($(i+1) ~ /-ns\/op$/) {
            st = $(i+1)
            sub(/-ns\/op$/, "", st)
            stage[++nstages] = st
            stagens[st] = $i
        }
    }
    if (ns == 0) next
    rec = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %.0f, \"stages\": {", name, ns)
    for (i = 1; i <= nstages; i++)
        rec = rec sprintf("%s\"%s\": %.0f", i > 1 ? ", " : "", stage[i], stagens[stage[i]])
    rec = rec "}}"
    recs[++count] = rec
}
END {
    if (count == 0) { print "missing weave benchmark rows" > "/dev/stderr"; exit 1 }
    print "["
    for (i = 1; i <= count; i++) printf("%s%s\n", recs[i], i < count ? "," : "")
    print "]"
}
' "$weave_raw" > "$weave_out"

echo "wrote $weave_out ($(grep -c '"name"' "$weave_out") records)"

soundness_raw="$(mktemp)"
trap 'rm -f "$raw" "$sched_raw" "$server_raw" "$weave_raw" "$soundness_raw"' EXIT
soundness_benchtime="${SOUNDNESS_BENCHTIME:-10x}"

go test -run '^$' -bench 'BenchmarkSoundness' -benchtime "$soundness_benchtime" -timeout 0 . | tee "$soundness_raw"

awk '
/^BenchmarkSoundness\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    split(name, parts, "/")
    net = parts[2]; kernel = parts[3]
    ns = 0; bytes = 0; allocs = 0
    for (i = 3; i < NF; i += 2) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == 0) next
    recs[++count] = sprintf("  {\"name\": \"%s\", \"net\": \"%s\", \"kernel\": \"%s\", \"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f}",
                            name, net, kernel, ns, bytes, allocs)
}
END {
    if (count == 0) { print "missing soundness benchmark rows" > "/dev/stderr"; exit 1 }
    print "["
    for (i = 1; i <= count; i++) printf("%s%s\n", recs[i], i < count ? "," : "")
    print "]"
}
' "$soundness_raw" > "$soundness_out"

echo "wrote $soundness_out ($(grep -c '"name"' "$soundness_out") records)"

# The live-daemon load test (dscbench against dscweaverd with a
# persistent run store) writes BENCH_load.json; skip with
# DSCW_SKIP_LOAD=1 when no spare port or time budget exists.
if [ "${DSCW_SKIP_LOAD:-0}" != "1" ]; then
    scripts/load.sh "${6:-BENCH_load.json}"
fi
