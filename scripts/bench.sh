#!/usr/bin/env bash
# Runs the minimizer benchmark sweep and writes BENCH_minimize.json:
# one record per BenchmarkMinimizeParallel row with the workload size,
# worker count, cache configuration, ns/op, annotated-closure pair
# comparisons and closure-cache hits.
#
#   scripts/bench.sh [output.json]
#
# BENCHTIME (default 1x) is passed to -benchtime; set DSCW_BENCH_LARGE=1
# to include the n=1024 rows (minutes per op).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_minimize.json}"
benchtime="${BENCHTIME:-1x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkMinimizeParallel' -benchtime "$benchtime" -timeout 0 . | tee "$raw"

awk '
/^BenchmarkMinimizeParallel\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    n = 0; workers = 0; cache = "true"
    split(name, parts, "/")
    for (i in parts) {
        if (parts[i] ~ /^activities=/) { split(parts[i], kv, "="); n = kv[2] }
        if (parts[i] ~ /^workers=/)    { split(parts[i], kv, "="); workers = kv[2] }
        if (parts[i] == "nocache")     { cache = "false" }
    }
    ns = 0; pairs = 0; hits = 0
    for (i = 3; i < NF; i += 2) {
        if ($(i+1) == "ns/op")        ns = $i
        if ($(i+1) == "pairs/op")     pairs = $i
        if ($(i+1) == "cachehits/op") hits = $i
    }
    if (ns == 0) next
    rec = sprintf("  {\"name\": \"%s\", \"activities\": %d, \"workers\": %d, \"cache\": %s, \"ns_per_op\": %.0f, \"pair_comparisons\": %.0f, \"cache_hits\": %.0f}",
                  name, n, workers, cache, ns, pairs, hits)
    recs[++count] = rec
}
END {
    print "["
    for (i = 1; i <= count; i++) printf("%s%s\n", recs[i], i < count ? "," : "")
    print "]"
}
' "$raw" > "$out"

echo "wrote $out ($(grep -c '"name"' "$out") records)"
