#!/usr/bin/env bash
# End-to-end smoke test for dscweaverd: build the daemon, start it on a
# free port, weave the purchasing example over HTTP, assert the minimal
# set is sound and smaller than the input, scrape /metrics for the
# pipeline's families, then shut the server down gracefully (SIGTERM)
# and check it drained.
#
#   scripts/smoke_server.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

port="${1:-8427}"
base="http://127.0.0.1:${port}"
tmp="$(mktemp -d)"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/dscweaverd" ./cmd/dscweaverd
"$tmp/dscweaverd" -addr "127.0.0.1:${port}" -events "$tmp/events.jsonl" &
pid=$!

for _ in $(seq 1 50); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fsS "$base/healthz" | grep -q '"ok"' || { echo "healthz never came up"; exit 1; }

# Weave the paper's running example through the JSON envelope.
python3 - "$base" <<'PY'
import json, sys, urllib.request

base = sys.argv[1]
body = json.dumps({
    "source": open("internal/dscl/testdata/purchasing.dscl").read(),
    "bpel": True,
}).encode()
req = urllib.request.Request(base + "/v1/weave", data=body,
                             headers={"Content-Type": "application/json"})
resp = json.load(urllib.request.urlopen(req, timeout=30))
assert resp["process"] == "Purchasing", resp
assert resp["sound"] is True, f"minimal set not sound: {resp}"
assert resp["minimal_constraints"] < resp["translated_constraints"], resp
assert "<process" in resp["bpel"], resp
print(f"weave ok: {resp['translated_constraints']} -> "
      f"{resp['minimal_constraints']} constraints, sound={resp['sound']}")

body = json.dumps({
    "source": open("internal/dscl/testdata/purchasing.dscl").read(),
    "branches": {"if_au": "T"},
}).encode()
req = urllib.request.Request(base + "/v1/simulate", data=body,
                             headers={"Content-Type": "application/json"})
resp = json.load(urllib.request.urlopen(req, timeout=30))
assert resp["valid"] is True, f"simulation invalid: {resp}"
assert "replyClient_oi" in resp["executed"], resp
print(f"simulate ok: {len(resp['executed'])} activities, "
      f"max_parallel={resp['max_parallel']}")
PY

metrics="$(curl -fsS "$base/metrics")"
for fam in minimize_runs_total schedule_runs_total bus_invocations_total server_requests_total; do
    grep -q "$fam" <<<"$metrics" || { echo "metrics missing $fam"; exit 1; }
done
echo "metrics ok"

kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then echo "server did not drain"; exit 1; fi
test -s "$tmp/events.jsonl" || { echo "event log empty"; exit 1; }
echo "drain ok, event log $(wc -l < "$tmp/events.jsonl") lines"
echo "dscweaverd smoke passed"
