#!/usr/bin/env bash
# Load-tests a live dscweaverd with dscbench and writes BENCH_load.json:
# per-op-class latency percentiles (weave / simulate / runs / events),
# throughput, error and shed counts, and the daemon's RSS.
#
# The daemon runs with a persistent run store, so the bench also
# exercises the segment append path and the store-backed history reads.
# After the bench the script asserts the run survived sanely: nonzero
# requests, zero hard errors, segments on disk, and a daemon that still
# answers /healthz.
#
#   scripts/load.sh [output.json] [port]
#
# LOAD_DURATION (default 30s), LOAD_CLIENTS (default 8) and LOAD_MIX
# (default read-heavy) tune the run.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_load.json}"
port="${2:-8429}"
base="http://127.0.0.1:${port}"
duration="${LOAD_DURATION:-30s}"
clients="${LOAD_CLIENTS:-8}"
mix="${LOAD_MIX:-read-heavy}"
tmp="$(mktemp -d)"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/dscweaverd" ./cmd/dscweaverd
go build -o "$tmp/dscbench" ./cmd/dscbench

"$tmp/dscweaverd" -addr "127.0.0.1:${port}" -store-dir "$tmp/store" &
pid=$!
for _ in $(seq 1 50); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fsS "$base/healthz" | grep -q '"ok"' || { echo "healthz never came up"; exit 1; }

"$tmp/dscbench" -addr "$base" -clients "$clients" -duration "$duration" \
    -mix "$mix" -rss-pid "$pid" -out "$out"

# The daemon must still be live after the thrash, and the store must
# have taken the writes.
curl -fsS "$base/healthz" | grep -q '"ok"' || { echo "daemon dead after load"; exit 1; }
ls "$tmp"/store/seg-*.jsonl >/dev/null 2>&1 || { echo "store wrote no segments"; exit 1; }

python3 - "$out" <<'PY'
import json, sys

rep = json.load(open(sys.argv[1]))
assert rep["requests"] > 0, rep
errors = {c: op["errors"] for c, op in rep["ops"].items()}
assert sum(errors.values()) == 0, f"hard errors under load: {errors}"
served = sum(op["count"] for op in rep["ops"].values())
assert served > 0, rep
for c, op in rep["ops"].items():
    if op["count"]:
        assert 0 < op["p50_ms"] <= op["p95_ms"] <= op["p99_ms"] <= op["max_ms"], (c, op)
print(f"load ok: {rep['requests']} requests, "
      f"{rep['throughput_rps']:.0f} req/s, "
      f"weave p95 {rep['ops']['weave']['p95_ms']:.1f}ms, "
      f"rss {rep.get('rss_bytes', 0) // (1 << 20)}MiB")
PY

kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then echo "server did not drain"; exit 1; fi
echo "wrote $out"
