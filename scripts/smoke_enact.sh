#!/usr/bin/env bash
# Two-process decentralized enactment smoke test: boot a coordinator
# and a peer dscweaverd, run the purchasing example decentralized
# across them (one engine per partition, notes over
# POST /v1/transport/invoke), and assert the merged trace passes the
# global Definition 5 validation with the live cross-node message
# count matching the plan's prediction.
#
# Phase 2 repeats the run through a chaos coordinator whose outgoing
# fabric is wrapped in a seeded network-fault plan (1.5s partition
# that heals inside the retry budget, plus two lost responses): the
# enactment must still complete with exact edge accounting, proving
# the recovery envelope without root or iptables.
#
#   scripts/smoke_enact.sh [coord_port] [peer_port] [chaos_port]
set -euo pipefail
cd "$(dirname "$0")/.."

coord_port="${1:-8431}"
peer_port="${2:-8432}"
chaos_port="${3:-8433}"
coord="http://127.0.0.1:${coord_port}"
peer="http://127.0.0.1:${peer_port}"
chaos="http://127.0.0.1:${chaos_port}"
tmp="$(mktemp -d)"
trap 'kill "$coord_pid" "$peer_pid" "$chaos_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/dscweaverd" ./cmd/dscweaverd
"$tmp/dscweaverd" -addr "127.0.0.1:${coord_port}" &
coord_pid=$!
"$tmp/dscweaverd" -addr "127.0.0.1:${peer_port}" &
peer_pid=$!
"$tmp/dscweaverd" -addr "127.0.0.1:${chaos_port}" \
    -chaos-net '*>*:partition=1500ms;lose=2' -chaos-net-seed 7 &
chaos_pid=$!

for base in "$coord" "$peer" "$chaos"; do
    for _ in $(seq 1 50); do
        if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
        sleep 0.1
    done
    curl -fsS "$base/healthz" | grep -q '"ok"' || { echo "healthz never came up at $base"; exit 1; }
done

python3 - "$coord" "$peer" <<'PY'
import json, sys, urllib.request

coord, peer = sys.argv[1], sys.argv[2]
body = json.dumps({
    "source": open("internal/dscl/testdata/purchasing.dscl").read(),
    "branches": {"if_au": "T"},
    "peers": [peer],
    "self_url": coord,
}).encode()
req = urllib.request.Request(coord + "/v1/enact", data=body,
                             headers={"Content-Type": "application/json"})
resp = json.load(urllib.request.urlopen(req, timeout=60))

assert not resp.get("error"), f"enactment error: {resp['error']}"
assert resp["valid"] is True, f"merged trace failed Def. 5 validation: {resp}"
assert resp["edge_messages"] == resp["predicted_cross_edges"], (
    f"live edge messages {resp['edge_messages']} != "
    f"predicted {resp['predicted_cross_edges']}")
assert resp["message_savings"] > 0, resp
assert "set_oi" in resp.get("skipped", []), f"T branch did not skip set_oi: {resp}"
assert len(resp["hosts"]) >= 3, f"placement not multi-host: {resp['hosts']}"

runs = json.load(urllib.request.urlopen(peer + "/v1/runs", timeout=10))
joined = [r for r in runs if r["kind"] == "enact_join" and r["status"] == "ok"]
assert joined, f"peer never tracked a successful enact_join run: {runs}"

print(f"enact ok: {len(resp['executed'])} executed across {len(resp['hosts'])} hosts, "
      f"{resp['edge_messages']} edge msgs (= plan), "
      f"{resp['message_savings']} msgs saved vs centralized, valid={resp['valid']}")
PY

# Phase 2: the same decentralized run through the chaos coordinator.
# Its outgoing note frames hit a 1.5s partition (healing well inside
# the retry budget) and lose two responses after delivery, forcing
# retransmits the peer must absorb exactly once.
python3 - "$chaos" "$peer" <<'PY'
import json, sys, urllib.request

chaos, peer = sys.argv[1], sys.argv[2]

def counter_sum(base, name):
    text = urllib.request.urlopen(base + "/metrics", timeout=10).read().decode()
    total = 0.0
    for line in text.splitlines():
        if line.startswith(name):
            total += float(line.rsplit(None, 1)[-1])
    return total

retransmits_before = counter_sum(peer, "transport_retransmit_total")

body = json.dumps({
    "source": open("internal/dscl/testdata/purchasing.dscl").read(),
    "branches": {"if_au": "T"},
    "peers": [peer],
    "self_url": chaos,
}).encode()
req = urllib.request.Request(chaos + "/v1/enact", data=body,
                             headers={"Content-Type": "application/json"})
resp = json.load(urllib.request.urlopen(req, timeout=60))

assert not resp.get("error"), f"chaos enactment error: {resp['error']}"
assert resp["valid"] is True, f"chaos merged trace failed Def. 5 validation: {resp}"
assert resp["edge_messages"] == resp["predicted_cross_edges"], (
    f"chaos run edge messages {resp['edge_messages']} != "
    f"predicted {resp['predicted_cross_edges']}")

retries = counter_sum(chaos, "transport_retries_total")
assert retries > 0, "partition healed but the coordinator never retried a frame"
retransmits = counter_sum(peer, "transport_retransmit_total") - retransmits_before
assert retransmits >= 1, "lost responses forced no retransmit at the peer"

print(f"chaos enact ok: survived a 1.5s partition + 2 lost responses, "
      f"{resp['edge_messages']} edge msgs (= plan), "
      f"{int(retries)} frame retries, {int(retransmits)} retransmits absorbed")
PY

for pid in "$coord_pid" "$peer_pid" "$chaos_pid"; do
    kill -TERM "$pid"
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then echo "a node did not drain"; exit 1; fi
done
echo "two-process enact smoke passed (clean + chaos phases)"
