// Root benchmark suite: one benchmark per regenerated table/figure of
// the paper plus the quantitative studies backing its two claimed
// benefits (concurrency and maintenance cost) and the optimizer's
// scaling behaviour. EXPERIMENTS.md records representative numbers.
package dscweaver_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"dscweaver/internal/bpel"
	"dscweaver/internal/cond"
	"dscweaver/internal/core"
	"dscweaver/internal/decentral"
	"dscweaver/internal/dscl"
	"dscweaver/internal/obs"
	"dscweaver/internal/pdg"
	"dscweaver/internal/petri"
	"dscweaver/internal/purchasing"
	"dscweaver/internal/repro"
	"dscweaver/internal/schedule"
	"dscweaver/internal/server"
	"dscweaver/internal/services"
	"dscweaver/internal/sim"
	"dscweaver/internal/weave"
	"dscweaver/internal/weave/front"
	"dscweaver/internal/workload"
	"dscweaver/internal/wscl"
)

// --- paper artifacts (Tables 1–2, Figures 4–9) ---

func BenchmarkTable1Catalog(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		deps := purchasing.Dependencies()
		if deps.Len() != 40 {
			b.Fatal("catalog size changed")
		}
	}
}

func BenchmarkTable2Pipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, res, err := purchasing.Pipeline()
		if err != nil {
			b.Fatal(err)
		}
		if res.Minimal.Len() != 17 {
			b.Fatal("minimal set size changed")
		}
	}
}

func BenchmarkFigure4ToyExtraction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pdg.Extract(pdg.ToySeqlang); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5PDGExtraction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex, err := pdg.Extract(pdg.PurchasingSeqlang)
		if err != nil {
			b.Fatal(err)
		}
		if ex.Deps.Len() != 19 {
			b.Fatal("extraction changed")
		}
	}
}

func BenchmarkFigure7Merge(b *testing.B) {
	proc := purchasing.Process()
	deps := purchasing.Dependencies()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Merge(proc, deps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8ServiceTranslation(b *testing.B) {
	merged, _, _, err := purchasing.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TranslateServices(merged); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9Minimize(b *testing.B) {
	_, asc, _, err := purchasing.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Minimize(asc)
		if err != nil {
			b.Fatal(err)
		}
		if res.Minimal.Len() != 17 {
			b.Fatal("minimal set size changed")
		}
	}
}

func BenchmarkAllArtifacts(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repro.All(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- DSCWeaver pipeline stages (validation, codegen, front ends) ---

func BenchmarkPetriSoundnessMinimal(b *testing.B) {
	_, asc, res, err := purchasing.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	guards, err := core.DeriveGuards(asc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := petri.Validate(context.Background(), res.Minimal, guards)
		if err != nil || !rep.Sound {
			b.Fatalf("unsound: %v", err)
		}
	}
}

// BenchmarkSoundness compares the validation kernels on the paper's
// running example and on a synthetic wide-parallel net. Purchasing has
// decisions, so its guard variants conflict on wait places and the
// auto kernel picks the stubborn-set-reduced graph; the decision-free
// wide net is conflict-free and is decided by the polynomial fast
// path. The full rows force the unreduced graph for comparison.
func BenchmarkSoundness(b *testing.B) {
	_, asc, res, err := purchasing.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	guards, err := core.DeriveGuards(asc)
	if err != nil {
		b.Fatal(err)
	}
	run := func(name string, sc *core.ConstraintSet, g map[core.Node]cond.Expr, opts petri.ExploreOptions, method string) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := petri.ValidateOpt(context.Background(), sc, g, opts)
				if err != nil || !rep.Sound {
					b.Fatalf("unsound: %v", err)
				}
				if rep.Method != method {
					b.Fatalf("method = %s, want %s", rep.Method, method)
				}
			}
		})
	}
	run("purchasing/auto", res.Minimal, guards, petri.ExploreOptions{}, "reduced")
	run("purchasing/full", res.Minimal, guards, petri.ExploreOptions{ReductionOff: true}, "full")
	run("purchasing/parallel", res.Minimal, guards, petri.ExploreOptions{Parallel: 4}, "parallel+reduced")

	wide, wideGuards := soundnessWorkload(b, 3, 8, 0.3, 11)
	run("wide8/fastpath", wide, wideGuards, petri.ExploreOptions{}, "fastpath")
	run("wide8/full", wide, wideGuards, petri.ExploreOptions{NoFastPath: true, ReductionOff: true}, "full")
	huge, hugeGuards := soundnessWorkload(b, 4, 16, 0.25, 13)
	run("wide16/fastpath", huge, hugeGuards, petri.ExploreOptions{}, "fastpath")
}

// soundnessWorkload builds a decision-free layered workload into an
// activity-level constraint set with derived guards.
func soundnessWorkload(b *testing.B, layers, width int, density float64, seed int64) (*core.ConstraintSet, map[core.Node]cond.Expr) {
	b.Helper()
	sc, err := workload.Layered(layers, width, density, seed).Constraints()
	if err != nil {
		b.Fatal(err)
	}
	if err := sc.Desugar(); err != nil {
		b.Fatal(err)
	}
	asc, err := core.TranslateServices(sc)
	if err != nil {
		b.Fatal(err)
	}
	guards, err := core.DeriveGuards(asc)
	if err != nil {
		b.Fatal(err)
	}
	return asc, guards
}

func BenchmarkBPELGenerate(b *testing.B) {
	_, _, res, err := purchasing.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc, err := bpel.Generate(res.Minimal)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bpel.Marshal(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDSCLLoadPurchasing(b *testing.B) {
	src := mustRead(b, "internal/dscl/testdata/purchasing.dscl")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dscl.Load(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWSCLInference(b *testing.B) {
	proc := purchasing.Process()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		convs, err := wscl.PurchasingConversations()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wscl.DependenciesAll(proc, convs...); err != nil {
			b.Fatal(err)
		}
	}
}

// --- optimizer scaling (Bench C of DESIGN.md) ---

func BenchmarkMinimizeUnconditional(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		layers := n / 8
		w := workload.Layered(layers, 8, 0.3, 42).WithShortcuts(n / 2)
		sc, err := w.Constraints()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("activities=%d/constraints=%d", n, sc.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.MinimizeUnconditional(sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMinimizeExactConditional(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		w := workload.Layered(n/4, 4, 0.3, 42).WithShortcuts(n / 4).WithDecisions(2)
		sc, err := w.Constraints()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("activities=%d/constraints=%d", n, sc.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Minimize(sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMinimizeParallel sweeps the minimization engine across
// workload size, worker count and engine configuration on the Bench C
// exact-conditional shape. The nocache/workers=1 rows replay the seed
// algorithm (every closure re-derived per candidate×source) and are
// the baseline the engine speedup is measured against; the nospec row
// ablates the speculative candidate batches; the vcache row runs
// against a pre-warmed cross-run verdict cache, so each op replays the
// recorded removal sequence instead of re-deciding candidates
// (vcachehits/op counts the hits). Every configuration produces the
// identical minimal set. scripts/bench.sh parses this sweep into
// BENCH_minimize.json. The n=4096 stretch rows only run when
// DSCW_BENCH_LARGE is set; nocache is capped at n=256 (it would run
// for hours above that).
func BenchmarkMinimizeParallel(b *testing.B) {
	type config struct {
		name string
		opts core.MinimizeOptions
	}
	workerSweep := []int{1, 2, 4, 8}
	if mp := runtime.GOMAXPROCS(0); mp != 1 && mp != 2 && mp != 4 && mp != 8 {
		workerSweep = append(workerSweep, mp)
	}
	for _, n := range []int{64, 256, 1024, 4096} {
		if n >= 4096 && os.Getenv("DSCW_BENCH_LARGE") == "" {
			continue // stretch row: set DSCW_BENCH_LARGE=1
		}
		w := workload.Layered(n/4, 4, 0.3, 42).WithShortcuts(n / 4).WithDecisions(2)
		sc, err := w.Constraints()
		if err != nil {
			b.Fatal(err)
		}
		var configs []config
		if n <= 256 {
			// Seed-equivalent baseline; at n=1024 it would run for the
			// better part of an hour per op.
			configs = append(configs, config{"nocache/workers=1",
				core.MinimizeOptions{Parallelism: 1, NoCache: true}})
		}
		for _, workers := range workerSweep {
			configs = append(configs, config{fmt.Sprintf("cache/workers=%d", workers),
				core.MinimizeOptions{Parallelism: workers}})
		}
		configs = append(configs,
			config{"nospec/workers=8", core.MinimizeOptions{Parallelism: 8, NoSpeculation: true}},
			config{"vcache/workers=1", core.MinimizeOptions{Parallelism: 1, VerdictCache: core.NewVerdictCache(0)}})
		for _, cfg := range configs {
			b.Run(fmt.Sprintf("activities=%d/%s", n, cfg.name), func(b *testing.B) {
				if cfg.opts.VerdictCache != nil {
					// Warm the cross-run cache so every timed op is a hit.
					if _, err := core.MinimizeOpt(context.Background(), sc, cfg.opts); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				var pairs, hits, vhits float64
				for i := 0; i < b.N; i++ {
					res, err := core.MinimizeOpt(context.Background(), sc, cfg.opts)
					if err != nil {
						b.Fatal(err)
					}
					pairs = float64(res.PairComparisons)
					hits = float64(res.ClosureCacheHits)
					if res.VerdictCacheHit {
						vhits++
					}
				}
				b.ReportMetric(pairs, "pairs/op")
				b.ReportMetric(hits, "cachehits/op")
				b.ReportMetric(vhits/float64(b.N), "vcachehits/op")
			})
		}
	}
}

// BenchmarkAblationGuardContext compares the paper-faithful
// guard-context equivalence against the strict-annotation ablation —
// same input, different minimal sizes (17 vs 20 on purchasing) and
// costs.
func BenchmarkAblationGuardContext(b *testing.B) {
	_, asc, _, err := purchasing.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name   string
		strict bool
		want   int
	}{
		{"guard-context", false, 17},
		{"strict", true, 20},
	} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.MinimizeOpt(context.Background(), asc, core.MinimizeOptions{StrictAnnotations: variant.strict})
				if err != nil {
					b.Fatal(err)
				}
				if res.Minimal.Len() != variant.want {
					b.Fatalf("minimal = %d, want %d", res.Minimal.Len(), variant.want)
				}
			}
		})
	}
}

// BenchmarkServiceTranslationScaling times TranslateServices (§4.3)
// as the number of attached services grows.
func BenchmarkServiceTranslationScaling(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		w := workload.Layered(16, 8, 0.3, 31).WithServices(n)
		merged, err := w.Constraints()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("services=%d/constraints=%d", n, merged.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.TranslateServices(merged); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAnnotatedClosure(b *testing.B) {
	_, asc, _, err := purchasing.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TransitiveClosure(asc, purchasing.RecClientPo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptationIncrementalVsBatch quantifies §1's adaptation
// claim: adding one cooperation rule to an already-optimized process
// via the incremental Adapter versus re-running the whole pipeline.
func BenchmarkAdaptationIncrementalVsBatch(b *testing.B) {
	w := workload.Layered(16, 8, 0.3, 21)
	newDep := core.Dependency{
		From: core.ActivityNode(w.Layer(2)[0]),
		To:   core.ActivityNode(w.Layer(14)[3]),
		Dim:  core.Cooperation, Label: "late business rule",
	}
	b.Run("incremental", func(b *testing.B) {
		adapter, err := core.NewAdapter(w.Proc, w.Deps)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := adapter.Add(newDep); err != nil {
				b.Fatal(err)
			}
			if _, err := adapter.Remove(newDep); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			deps := core.NewDependencySet()
			deps.AddAll(w.Deps)
			deps.Add(newDep)
			if _, err := core.NewAdapter(w.Proc, deps); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- claimed benefits: concurrency (Bench A) and maintenance cost (Bench B) ---

// BenchmarkSchedulerMinimalVsOverspecified executes the same layered
// workload under the minimal dependency set and under the
// sequence-construct baseline; the realized parallelism is reported as
// a custom metric. Activities carry 200µs of simulated work so the
// makespan difference reflects scheduling freedom, not engine
// overhead.
func BenchmarkSchedulerMinimalVsOverspecified(b *testing.B) {
	const work = 200 * time.Microsecond
	for _, width := range []int{2, 8} {
		w := workload.Layered(4, width, 0.25, int64(width))
		merged, err := w.Constraints()
		if err != nil {
			b.Fatal(err)
		}
		minRes, err := core.MinimizeUnconditional(merged)
		if err != nil {
			b.Fatal(err)
		}
		baseline, err := w.SequencingBaseline()
		if err != nil {
			b.Fatal(err)
		}
		for _, variant := range []struct {
			name string
			sc   *core.ConstraintSet
		}{
			{"minimal", minRes.Minimal},
			{"constructs", baseline},
		} {
			b.Run(fmt.Sprintf("width=%d/%s", width, variant.name), func(b *testing.B) {
				peak := 0
				for i := 0; i < b.N; i++ {
					eng, err := schedule.New(variant.sc, schedule.NoopExecutors(variant.sc.Proc, work, nil), schedule.Options{Timeout: time.Minute})
					if err != nil {
						b.Fatal(err)
					}
					tr, err := eng.Run(context.Background())
					if err != nil {
						b.Fatal(err)
					}
					if tr.MaxParallel > peak {
						peak = tr.MaxParallel
					}
				}
				b.ReportMetric(float64(peak), "peak-parallel")
			})
		}
	}
}

// BenchmarkSchedulerObsOverhead measures the instrumentation tax: the
// same layered workload as BenchmarkSchedulerMinimalVsOverspecified
// executed with observability off and with a live registry plus no-op
// event sink. The obs=on/obs=off ns/op ratio is the overhead bound
// recorded in BENCH_schedule.json (target: <5%).
func BenchmarkSchedulerObsOverhead(b *testing.B) {
	const work = 200 * time.Microsecond
	const width = 8
	w := workload.Layered(4, width, 0.25, int64(width))
	merged, err := w.Constraints()
	if err != nil {
		b.Fatal(err)
	}
	minRes, err := core.MinimizeUnconditional(merged)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		opts func() schedule.Options
	}{
		{"off", func() schedule.Options {
			return schedule.Options{Timeout: time.Minute}
		}},
		{"on", func() schedule.Options {
			return schedule.Options{Timeout: time.Minute, Metrics: obs.NewRegistry(), Events: obs.NopSink{}}
		}},
	} {
		b.Run("obs="+variant.name, func(b *testing.B) {
			opts := variant.opts()
			for i := 0; i < b.N; i++ {
				eng, err := schedule.New(minRes.Minimal, schedule.NoopExecutors(minRes.Minimal.Proc, work, nil), opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRetryOverhead measures the no-fault retry tax: the same
// layered workload as BenchmarkSchedulerObsOverhead executed with no
// retry policies and with a full policy (classified, jittered,
// per-attempt timeout, max-elapsed budget) on every activity. No
// executor ever fails, so the retry=on/retry=off delta is pure
// bookkeeping — the per-attempt context and classification plumbing —
// recorded in BENCH_schedule.json.
func BenchmarkRetryOverhead(b *testing.B) {
	const work = 200 * time.Microsecond
	const width = 8
	w := workload.Layered(4, width, 0.25, int64(width))
	merged, err := w.Constraints()
	if err != nil {
		b.Fatal(err)
	}
	minRes, err := core.MinimizeUnconditional(merged)
	if err != nil {
		b.Fatal(err)
	}
	retries := make(map[core.ActivityID]schedule.RetryPolicy, len(minRes.Minimal.Proc.Activities()))
	for _, act := range minRes.Minimal.Proc.Activities() {
		retries[act.ID] = schedule.RetryPolicy{
			MaxAttempts: 3,
			Backoff:     time.Millisecond,
			Multiplier:  2,
			Jitter:      true,
			PerAttempt:  time.Second,
			MaxElapsed:  time.Second,
		}
	}
	for _, variant := range []struct {
		name string
		opts schedule.Options
	}{
		{"off", schedule.Options{Timeout: time.Minute}},
		{"on", schedule.Options{Timeout: time.Minute, Retry: retries, RetrySeed: 1}},
	} {
		b.Run("retry="+variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := schedule.New(minRes.Minimal, schedule.NoopExecutors(minRes.Minimal.Proc, work, nil), variant.opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConstraintMaintenance measures the engine-side cost of
// carrying redundant constraints: the same chain process executed with
// 0×, 1× and 4× redundant shortcut edges and zero-work activities, so
// ns/op is pure constraint bookkeeping (§4: "redundant constraints
// incur unnecessary maintenance and computation costs").
func BenchmarkConstraintMaintenance(b *testing.B) {
	const n = 64
	for _, extra := range []int{0, 64, 256} {
		w := workload.Layered(n, 1, 0, 7).WithShortcuts(extra)
		sc, err := w.Constraints()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("constraints=%d", sc.Len()), func(b *testing.B) {
			execs := schedule.NoopExecutors(sc.Proc, 0, nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng, err := schedule.New(sc, execs, schedule.Options{Timeout: time.Minute})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimEstimate times the analytic makespan estimator: 1000
// Monte-Carlo trials over the purchasing minimal set.
func BenchmarkSimEstimate(b *testing.B) {
	_, asc, res, err := purchasing.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	guards, err := core.DeriveGuards(asc)
	if err != nil {
		b.Fatal(err)
	}
	study := sim.Study{Trials: 1000, Seed: 3, Guards: guards,
		Latency: sim.Uniform(time.Millisecond, 5*time.Millisecond)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Estimate(res.Minimal, study); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkerSweep executes a wide layered process under
// increasing worker caps: makespan (ns/op) falls until the cap reaches
// the constraint graph's width.
func BenchmarkWorkerSweep(b *testing.B) {
	w := workload.Layered(4, 8, 0.2, 17)
	sc, err := w.Constraints()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			execs := schedule.NoopExecutors(sc.Proc, 100*time.Microsecond, nil)
			for i := 0; i < b.N; i++ {
				eng, err := schedule.New(sc, execs, schedule.Options{Timeout: time.Minute, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecentralPlacement partitions the purchasing process across
// its service hosts and reports the cross-host message counts of the
// unoptimized versus minimal constraint sets (the §5 / [12]
// communication-overhead angle).
func BenchmarkDecentralPlacement(b *testing.B) {
	_, asc, res, err := purchasing.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	pinned := decentral.Pin(asc.Proc)
	var saved int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := decentral.Compare(asc, res.Minimal, pinned)
		if err != nil {
			b.Fatal(err)
		}
		saved = cmp.MessageSavings()
	}
	b.ReportMetric(float64(saved), "messages-saved")
}

// BenchmarkEndToEndPurchasing runs the full runtime stack — scheduler,
// binding, simulated services — on the paper's process.
func BenchmarkEndToEndPurchasing(b *testing.B) {
	_, asc, res, err := purchasing.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	guards, err := core.DeriveGuards(asc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus := services.NewBus(0)
		if err := services.RegisterPurchasing(bus, 0, true); err != nil {
			b.Fatal(err)
		}
		binding := schedule.NewBinding(bus)
		eng, err := schedule.New(res.Minimal, binding.Executors(asc.Proc, 0), schedule.Options{
			Guards: guards, Inputs: map[string]any{"po": "po"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		bus.Close()
		binding.Close()
	}
}

func mustRead(b *testing.B, path string) string {
	b.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	return string(data)
}

// BenchmarkWeavePipelineStages times the canonical internal/weave
// pipeline end to end and attributes the cost per stage through the
// Result's stage ledger: each stage's mean wall-clock lands as a
// <stage>-ns/op metric next to the whole-run ns/op. The purchasing row
// runs every stage (parse through BPEL) on the paper fixture; the
// layered row runs the core path (merge through minimize) on the Bench
// C exact-conditional shape at 256 activities, where minimize is
// expected to dominate the ledger by orders of magnitude.
// scripts/bench.sh parses this into BENCH_weave.json.
func BenchmarkWeavePipelineStages(b *testing.B) {
	report := func(b *testing.B, run func() (*weave.Result, error)) {
		stageNS := map[string]float64{}
		var order []string
		for i := 0; i < b.N; i++ {
			res, err := run()
			if err != nil {
				b.Fatal(err)
			}
			for _, st := range res.Stages {
				if _, seen := stageNS[st.Stage]; !seen {
					order = append(order, st.Stage)
				}
				stageNS[st.Stage] += float64(st.Duration)
			}
		}
		for _, st := range order {
			b.ReportMetric(stageNS[st]/float64(b.N), st+"-ns/op")
		}
	}
	b.Run("purchasing/full", func(b *testing.B) {
		src := mustRead(b, "internal/dscl/testdata/purchasing.dscl")
		opts := weave.Options{Frontend: front.DSCL, Validate: true, BPEL: true}
		report(b, func() (*weave.Result, error) {
			return weave.Run(context.Background(), weave.Input{Source: src}, opts)
		})
	})
	b.Run("layered/activities=256", func(b *testing.B) {
		w := workload.Layered(64, 4, 0.3, 42).WithShortcuts(64).WithDecisions(2)
		parsed := &weave.Parsed{Proc: w.Proc, Deps: w.Deps}
		report(b, func() (*weave.Result, error) {
			return weave.Run(context.Background(), weave.Input{Parsed: parsed}, weave.Options{})
		})
	})
}

// BenchmarkServerWeave measures dscweaverd's weave request throughput
// through the full HTTP stack (decode → pipeline → Petri verdict →
// encode) at minimizer parallelism 1 vs GOMAXPROCS. scripts/bench.sh
// turns the ns/op into req/sec for BENCH_server.json.
func BenchmarkServerWeave(b *testing.B) {
	src := mustRead(b, "internal/dscl/testdata/purchasing.dscl")
	parallels := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		parallels = append(parallels, n)
	}
	for _, parallel := range parallels {
		b.Run(fmt.Sprintf("parallel=%d", parallel), func(b *testing.B) {
			s, err := server.New(server.Config{WeaveParallelism: parallel})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			defer s.Shutdown()
			body, err := json.Marshal(server.WeaveRequest{Source: src})
			if err != nil {
				b.Fatal(err)
			}
			client := ts.Client()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Post(ts.URL+"/v1/weave", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != 200 {
					raw, _ := io.ReadAll(resp.Body)
					b.Fatalf("weave: %d %s", resp.StatusCode, raw)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		})
	}
}
