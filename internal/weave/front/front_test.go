package front

import (
	"context"
	"strings"
	"testing"
)

func TestDSCLFrontend(t *testing.T) {
	parsed, err := DSCL(context.Background(), `process P {
	activity a opaque writes(x)
	activity b opaque reads(x)
	dependencies { data a -> b var(x) }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Proc.Name != "P" || parsed.Deps.Len() != 1 {
		t.Errorf("parsed %s with %d deps, want P with 1", parsed.Proc.Name, parsed.Deps.Len())
	}
	if _, err := DSCL(context.Background(), `process "unterminated`); err == nil {
		t.Error("DSCL accepted malformed source")
	}
}

func TestSeqlangFrontend(t *testing.T) {
	parsed, err := Seqlang(context.Background(), "process P { sequence { assign a writes(x) assign b reads(x) } }")
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Deps.Len() == 0 {
		t.Error("PDG extraction found no dependencies")
	}
	if parsed.Extra != nil {
		t.Error("seqlang frontend declared Extra constraints")
	}
	if _, err := Seqlang(context.Background(), "not a process"); err == nil {
		t.Error("Seqlang accepted malformed source")
	}
}

func TestByLang(t *testing.T) {
	for _, lang := range []string{"", "dscl", "seqlang"} {
		if fe, err := ByLang(lang); err != nil || fe == nil {
			t.Errorf("ByLang(%q) = (%v, %v), want a frontend", lang, fe, err)
		}
	}
	_, err := ByLang("cobol")
	if err == nil || !strings.Contains(err.Error(), "unknown lang") {
		t.Errorf("ByLang(cobol) = %v, want unknown-lang error", err)
	}
}
