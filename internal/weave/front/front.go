// Package front wires the concrete language frontends into the weave
// pipeline. It sits above both internal/weave and the language
// packages (dscl, pdg) so that weave itself stays frontend-agnostic
// and dscl can build its convenience wrappers on the pipeline without
// an import cycle.
package front

import (
	"context"
	"fmt"

	"dscweaver/internal/dscl"
	"dscweaver/internal/pdg"
	"dscweaver/internal/weave"
)

// DSCL parses DSCL source: the explicit-dependency language of §3–4.
func DSCL(ctx context.Context, source string) (*weave.Parsed, error) {
	doc, err := dscl.Load(source)
	if err != nil {
		return nil, err
	}
	return &weave.Parsed{Proc: doc.Proc, Deps: doc.Deps, Extra: doc.Extra}, nil
}

// Seqlang parses sequencing-construct source, extracting its implicit
// dependencies through the program dependence graph (the paper's §2
// "sequencing constructs over-specify" comparison input).
func Seqlang(ctx context.Context, source string) (*weave.Parsed, error) {
	ex, err := pdg.Extract(source)
	if err != nil {
		return nil, err
	}
	return &weave.Parsed{Proc: ex.Proc, Deps: ex.Deps}, nil
}

// ByLang maps a language name to its frontend: "dscl" (also the ""
// default) or "seqlang".
func ByLang(lang string) (weave.Frontend, error) {
	switch lang {
	case "", "dscl":
		return DSCL, nil
	case "seqlang":
		return Seqlang, nil
	default:
		return nil, fmt.Errorf("front: unknown lang %q (want dscl or seqlang)", lang)
	}
}
