// Pipeline tests: the weave package is the one canonical pipeline, so
// these pin (1) bit-identity with the hand-rolled stage sequence the
// purchasing fixture keeps (the fixture sits below weave in the import
// graph and promises the two paths never diverge), (2) the stage
// lifecycle — events, metrics, timings, skip toggles — and (3)
// cancellation semantics end to end.
package weave_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dscweaver/internal/core"
	"dscweaver/internal/obs"
	"dscweaver/internal/purchasing"
	"dscweaver/internal/weave"
	"dscweaver/internal/weave/front"
)

// purchasingParsed rebuilds the fixture as a frontend-shaped input.
func purchasingParsed() *weave.Parsed {
	return &weave.Parsed{Proc: purchasing.Process(), Deps: purchasing.Dependencies()}
}

func purchasingSource(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "dscl", "testdata", "purchasing.dscl"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestPipelineMatchesHandRolledStages is the bit-identity contract
// purchasing.Pipeline documents: running the stages through weave
// produces the same merged set, translated set, minimal set, removal
// order and check count as assembling them by hand.
func TestPipelineMatchesHandRolledStages(t *testing.T) {
	merged, asc, min, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	res, err := weave.Run(context.Background(), weave.Input{Parsed: purchasingParsed()}, weave.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.String() != merged.String() {
		t.Errorf("merged set diverges from purchasing.Pipeline:\nweave:\n%s\nhand:\n%s", res.Merged, merged)
	}
	if res.Translated.String() != asc.String() {
		t.Errorf("translated set diverges from purchasing.Pipeline:\nweave:\n%s\nhand:\n%s", res.Translated, asc)
	}
	if res.Minimize.Minimal.String() != min.Minimal.String() {
		t.Errorf("minimal set diverges from purchasing.Pipeline:\nweave:\n%s\nhand:\n%s", res.Minimize.Minimal, min.Minimal)
	}
	if len(res.Minimize.Removed) != len(min.Removed) {
		t.Fatalf("removals = %d, hand-rolled = %d", len(res.Minimize.Removed), len(min.Removed))
	}
	for i := range min.Removed {
		if res.Minimize.Removed[i].String() != min.Removed[i].String() {
			t.Errorf("removal %d = %s, hand-rolled %s", i, res.Minimize.Removed[i], min.Removed[i])
		}
	}
	if res.Minimize.EquivalenceChecks != min.EquivalenceChecks {
		t.Errorf("EquivalenceChecks = %d, hand-rolled = %d", res.Minimize.EquivalenceChecks, min.EquivalenceChecks)
	}
}

// TestPipelineFullFromSource runs every stage from DSCL source and
// checks the stage ledger and every artifact.
func TestPipelineFullFromSource(t *testing.T) {
	res, err := weave.Run(context.Background(), weave.Input{Source: purchasingSource(t)}, weave.Options{
		Frontend: front.DSCL,
		Validate: true,
		BPEL:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		weave.StageParse, weave.StageMerge, weave.StageDesugar, weave.StageTranslate,
		weave.StageMinimize, weave.StageValidate, weave.StageBPEL,
	}
	if len(res.Stages) != len(want) {
		t.Fatalf("ran %d stages, want %d: %+v", len(res.Stages), len(want), res.Stages)
	}
	for i, stage := range want {
		if res.Stages[i].Stage != stage {
			t.Errorf("stage %d = %s, want %s", i, res.Stages[i].Stage, stage)
		}
		if res.Stages[i].Duration <= 0 {
			t.Errorf("stage %s: non-positive duration %v", stage, res.Stages[i].Duration)
		}
	}
	if res.Parsed == nil || res.Parsed.Proc == nil {
		t.Fatal("no parsed output")
	}
	if res.Minimize.Minimal.Len() != 17 {
		t.Errorf("minimal = %d constraints, want the purchasing 17", res.Minimize.Minimal.Len())
	}
	if res.Soundness == nil || !res.Soundness.Sound {
		t.Errorf("soundness = %+v, want sound", res.Soundness)
	}
	if res.BPELDoc == nil || len(res.BPELXML) == 0 {
		t.Error("BPEL stage produced no document")
	}
	if d := res.StageDuration(weave.StageMinimize); d <= 0 {
		t.Errorf("StageDuration(minimize) = %v", d)
	}
	if d := res.StageDuration("no-such-stage"); d != 0 {
		t.Errorf("StageDuration(no-such-stage) = %v, want 0", d)
	}
}

// TestPipelineSkipsTogglesOff: with the toggles off the optional
// stages neither run nor leave artifacts.
func TestPipelineSkipsTogglesOff(t *testing.T) {
	res, err := weave.Run(context.Background(), weave.Input{Parsed: purchasingParsed()}, weave.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Soundness != nil || res.BPELDoc != nil || res.BPELXML != nil {
		t.Errorf("skipped stages left artifacts: soundness=%v bpel=%v", res.Soundness, res.BPELDoc)
	}
	if d := res.StageDuration(weave.StageValidate); d != 0 {
		t.Errorf("validate ran despite Validate=false: %v", d)
	}
	if len(res.Stages) != 4 {
		t.Errorf("ran %d stages, want 4 (merge..minimize)", len(res.Stages))
	}
}

// TestPipelineTruncatedValidation: a capped exploration surfaces
// Truncated and withholds the soundness certificate — the signal
// /v1/weave and the CLI warn on.
func TestPipelineTruncatedValidation(t *testing.T) {
	res, err := weave.Run(context.Background(), weave.Input{Parsed: purchasingParsed()}, weave.Options{
		Validate:  true,
		MaxStates: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Soundness.StateSpace.Truncated {
		t.Fatal("MaxStates=2 exploration not truncated")
	}
	if res.Soundness.Sound {
		t.Error("truncated exploration certified soundness")
	}
}

func TestPipelineInputErrors(t *testing.T) {
	cases := []struct {
		name string
		in   weave.Input
		opts weave.Options
		want string
	}{
		{"source-without-frontend", weave.Input{Source: "process P { }"}, weave.Options{}, "requires Options.Frontend"},
		{"empty-input", weave.Input{}, weave.Options{Frontend: front.DSCL}, "empty input"},
		{"parsed-missing-deps", weave.Input{Parsed: &weave.Parsed{Proc: purchasing.Process()}}, weave.Options{}, "requires Proc and Deps"},
		{"parse-failure", weave.Input{Source: `process "unterminated`}, weave.Options{Frontend: front.DSCL}, "weave: parse:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := weave.Run(context.Background(), tc.in, tc.opts)
			if res != nil || err == nil {
				t.Fatalf("Run = (%v, %v), want error", res, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %q, want substring %q", err, tc.want)
			}
		})
	}
}

// recordSink collects events; the pipeline and the minimizer emit from
// the Run goroutine, so no locking is needed.
type recordSink struct {
	events []obs.Event
	onCand func()
}

func (s *recordSink) Emit(e obs.Event) {
	s.events = append(s.events, e)
	if s.onCand != nil && (e.Kind == obs.EvCandidateKept || e.Kind == obs.EvCandidateRemoved) {
		s.onCand()
	}
}

func (s *recordSink) kinds(layer string) []string {
	var out []string
	for _, e := range s.events {
		if e.Layer == layer {
			out = append(out, e.Kind)
		}
	}
	return out
}

// TestPipelineEventsAndMetrics pins the observability contract: one
// weave_begin/weave_end envelope, a stage_begin/stage_end pair per
// stage, and the registry counters/histograms the dashboards read.
func TestPipelineEventsAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &recordSink{}
	res, err := weave.Run(context.Background(), weave.Input{Parsed: purchasingParsed()}, weave.Options{
		Metrics: reg,
		Events:  sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{obs.EvWeaveBegin}
	for _, st := range res.Stages {
		_ = st
		want = append(want, obs.EvStageBegin, obs.EvStageEnd)
	}
	want = append(want, obs.EvWeaveEnd)
	got := sink.kinds(obs.LayerWeave)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("weave event kinds = %v, want %v", got, want)
	}
	// The final weave_end names the process and carries no error.
	last := sink.events[len(sink.events)-1]
	if last.Kind != obs.EvWeaveEnd || last.Detail != "Purchasing" || last.Err != "" {
		t.Errorf("last event = %+v, want clean weave_end for Purchasing", last)
	}
	// Minimizer lifecycle events ride the same sink on their own layer.
	if minKinds := sink.kinds(obs.LayerMinimize); len(minKinds) == 0 {
		t.Error("no minimizer events forwarded through the pipeline sink")
	}
	if got := reg.Counter("weave_runs_total").Value(); got != 1 {
		t.Errorf("weave_runs_total = %d, want 1", got)
	}
	if got := reg.Counter("weave_canceled_total").Value(); got != 0 {
		t.Errorf("weave_canceled_total = %d, want 0", got)
	}
	if got := reg.Counter("minimize_runs_total").Value(); got != 1 {
		t.Errorf("minimize_runs_total = %d, want 1 (registry not forwarded to the minimizer)", got)
	}
}

// TestPipelineCancelMidMinimize cancels from inside the minimizer's
// candidate loop (its verdict events are emitted synchronously) and
// checks the abort surfaces through the pipeline: a minimize-stage
// error wrapping context.Canceled, a stage_end and weave_end carrying
// the error, and the weave_canceled_total counter.
func TestPipelineCancelMidMinimize(t *testing.T) {
	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	sink := &recordSink{}
	sink.onCand = func() {
		if seen++; seen == 3 {
			cancel()
		}
	}
	res, err := weave.Run(ctx, weave.Input{Parsed: purchasingParsed()}, weave.Options{
		Metrics: reg,
		Events:  sink,
	})
	if res != nil {
		t.Fatal("canceled run returned a result")
	}
	if !errors.Is(err, context.Canceled) || !core.ErrCanceled(err) {
		t.Fatalf("err = %v, want context.Canceled via the minimize stage", err)
	}
	var ce *core.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *core.CancelError with partial progress", err)
	}
	if !strings.Contains(err.Error(), "weave: minimize:") {
		t.Errorf("err = %q, want the minimize stage named", err)
	}
	if got := reg.Counter("weave_canceled_total").Value(); got != 1 {
		t.Errorf("weave_canceled_total = %d, want 1", got)
	}
	last := sink.events[len(sink.events)-1]
	if last.Kind != obs.EvWeaveEnd || last.Err == "" {
		t.Errorf("last event = %+v, want weave_end carrying the abort", last)
	}
}

// TestPipelinePreCanceled: a context canceled before Run aborts ahead
// of the first stage and still closes the event envelope.
func TestPipelinePreCanceled(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &recordSink{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := weave.Run(ctx, weave.Input{Parsed: purchasingParsed()}, weave.Options{
		Metrics: reg,
		Events:  sink,
	})
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = (%v, %v), want (nil, context.Canceled)", res, err)
	}
	if got := sink.kinds(obs.LayerWeave); fmt.Sprint(got) != fmt.Sprint([]string{obs.EvWeaveBegin, obs.EvWeaveEnd}) {
		t.Errorf("event kinds = %v, want bare begin/end envelope", got)
	}
	if got := reg.Counter("weave_canceled_total").Value(); got != 1 {
		t.Errorf("weave_canceled_total = %d, want 1", got)
	}
}

// TestPipelineReusable: one Pipeline value runs repeatedly and
// concurrently (the race detector guards the claimed safety).
func TestPipelineReusable(t *testing.T) {
	p := weave.New(weave.Options{})
	ref, err := p.Run(context.Background(), weave.Input{Parsed: purchasingParsed()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			res, err := p.Run(context.Background(), weave.Input{Parsed: purchasingParsed()})
			if err == nil && res.Minimize.Minimal.String() != ref.Minimize.Minimal.String() {
				err = errors.New("concurrent run diverged")
			}
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// TestPipelineNilContext mirrors the kernels' nil-ctx tolerance.
func TestPipelineNilContext(t *testing.T) {
	var nilCtx context.Context
	res, err := weave.Run(nilCtx, weave.Input{Parsed: purchasingParsed()}, weave.Options{})
	if err != nil || res.Minimize.Minimal.Len() != 17 {
		t.Fatalf("Run(nil ctx) = (%v, %v), want the purchasing 17", res, err)
	}
}

// TestSeqlangFrontend drives the second frontend through the pipeline
// and the ByLang dispatcher.
func TestSeqlangFrontend(t *testing.T) {
	fe, err := front.ByLang("seqlang")
	if err != nil {
		t.Fatal(err)
	}
	src := "process P { sequence { assign a writes(x) assign b reads(x) } }"
	res, err := weave.Run(context.Background(), weave.Input{Source: src}, weave.Options{Frontend: fe})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parsed.Deps.Len() == 0 {
		t.Error("PDG extraction found no dependencies")
	}
	if _, err := front.ByLang("cobol"); err == nil {
		t.Error("ByLang accepted an unknown language")
	}
	if fe, err := front.ByLang(""); err != nil || fe == nil {
		t.Errorf("ByLang(\"\") = (%v, %v), want the DSCL default", fe, err)
	}
}
