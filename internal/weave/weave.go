// Package weave is the one canonical implementation of the DSCWeaver
// pipeline (§4–5): parse → merge → desugar → translate → minimize →
// validate → bpel, as a first-class Pipeline of named stages. Every
// frontend — cmd/dscweaver, cmd/dscsim, dscweaverd's /v1/weave and
// /v1/simulate, dscl.Document.Weave and the repro harness — builds its
// pipeline here instead of assembling the stages ad hoc.
//
// Each stage takes a context.Context and the two heavy kernels
// (core.MinimizeOpt and petri.CheckSoundness) check it cooperatively,
// so a canceled run — a dropped HTTP client, a drain deadline, a
// Ctrl-C — aborts mid-minimize or mid-exploration instead of running
// to completion. An uncancelled run is bit-identical to the stages run
// by hand.
//
// Observability rides along: with Options.Metrics each stage records a
// duration histogram (weave_stage_seconds{stage=...}) in the shared
// registry, and with Options.Events the pipeline emits
// obs.LayerWeave lifecycle events (weave_begin, stage_begin/stage_end
// per stage, weave_end) into the run's sink alongside the minimizer's
// own candidate-verdict events.
package weave

import (
	"context"
	"fmt"
	"time"

	"dscweaver/internal/bpel"
	"dscweaver/internal/cond"
	"dscweaver/internal/core"
	"dscweaver/internal/decentral"
	"dscweaver/internal/obs"
	"dscweaver/internal/petri"
)

// Stage names, in pipeline order. Parse runs only for source input,
// validate and bpel only when the corresponding Options toggles are
// set.
const (
	StageParse     = "parse"
	StageMerge     = "merge"
	StageDesugar   = "desugar"
	StageTranslate = "translate"
	StageMinimize  = "minimize"
	StagePlace     = "place"
	StageValidate  = "validate"
	StageBPEL      = "bpel"
)

// Parsed is a frontend's output: the process model, its dependency
// catalog and any directly declared constraints (nil when the
// frontend has none, e.g. seqlang/PDG extraction).
type Parsed struct {
	Proc  *core.Process
	Deps  *core.DependencySet
	Extra *core.ConstraintSet
}

// Frontend parses source text into a Parsed. Frontends live above
// this package (internal/weave/front wires dscl and seqlang), so the
// language packages can in turn build their convenience wrappers on
// the pipeline without an import cycle.
type Frontend func(ctx context.Context, source string) (*Parsed, error)

// Options configures one pipeline. It subsumes the engine knobs of
// core.MinimizeOptions plus the validate/BPEL toggles the frontends
// used to wire by hand; the zero value runs parse through minimize
// with the paper-faithful engine and no instrumentation.
type Options struct {
	// Frontend parses Input.Source; required for source input, unused
	// for pre-parsed input.
	Frontend Frontend

	// Guards overrides the execution-guard context handed to the
	// minimizer (nil derives guards from the constraint set, the
	// normal case).
	Guards map[core.Node]cond.Expr
	// Parallelism / NoCache / NoSpeculation / StrictAnnotations tune
	// the minimizer engine exactly as core.MinimizeOptions does; none
	// of them change the minimal set.
	Parallelism       int
	NoCache           bool
	NoSpeculation     bool
	StrictAnnotations bool

	// VerdictCache, when non-nil, lets repeated runs over the same
	// desugared constraint set skip Definition 6 entirely: the minimize
	// stage replays the recorded removal sequence on a content hash
	// match (core.VerdictCache is safe for concurrent pipelines, so one
	// cache is typically shared server-wide).
	VerdictCache *core.VerdictCache

	// Validate enables the Petri-net soundness stage; MaxStates bounds
	// its exploration (0 = the petri default, 1<<20).
	Validate  bool
	MaxStates int
	// ValidateReductionOff forces the validate stage onto the full
	// (unreduced) state graph instead of stubborn-set partial-order
	// reduction — an escape hatch for debugging verdicts; it never
	// changes them.
	ValidateReductionOff bool
	// ValidateParallel sets the validate stage's frontier-exploration
	// worker count (≤ 1 = sequential).
	ValidateParallel int

	// Decentral enables the place stage: partition the process across
	// per-service hosts (decentral.Place) for both the unoptimized and
	// the minimal set, reporting predicted cross-host message counts.
	// The enactment layer executes Result.Decentral.Minimal.
	Decentral bool

	// BPEL enables document generation; StructuredBPEL folds
	// unconditional chains into <sequence> constructs.
	BPEL           bool
	StructuredBPEL bool

	// StageHook, when non-nil, runs before every stage with the stage
	// name; a returned error aborts the run exactly like a stage
	// failure. Chaos and fault-injection harnesses hang latency spikes
	// and injected faults on the pipeline here; production paths leave
	// it nil.
	StageHook func(ctx context.Context, stage string) error

	// Metrics, when non-nil, receives weave_runs_total,
	// weave_canceled_total and the per-stage
	// weave_stage_seconds{stage=...} histograms, plus whatever the
	// minimizer records through the same registry.
	Metrics *obs.Registry
	// Events, when non-nil, receives obs.LayerWeave lifecycle events
	// and is forwarded to the minimizer for its candidate verdicts.
	Events obs.Sink
}

// Input selects the pipeline entry point: Source text (parsed by
// Options.Frontend) or a pre-parsed document. Exactly one must be
// set; Parsed wins when both are.
type Input struct {
	Source string
	Parsed *Parsed
}

// StageTiming is one stage's measured wall-clock duration, in
// pipeline order.
type StageTiming struct {
	Stage    string
	Duration time.Duration
}

// Result carries every pipeline artifact. Stages that did not run
// leave their fields nil.
type Result struct {
	// Parsed is the frontend output (or the caller's pre-parsed input).
	Parsed *Parsed
	// Merged is the desugared synchronization constraint set SC
	// (Definition 1, §4.2).
	Merged *core.ConstraintSet
	// Guards is the execution-guard context derived from Merged —
	// downstream consumers (validation, scheduling) must use these,
	// not guards re-derived from the minimal set.
	Guards map[core.Node]cond.Expr
	// Translated is the activity-level set after service translation
	// (§4.3).
	Translated *core.ConstraintSet
	// Minimize is the Definition 6 minimization outcome.
	Minimize *core.MinimizeResult
	// Decentral compares decentralized placements of the unoptimized
	// and minimal sets (nil unless Options.Decentral).
	Decentral *decentral.Comparison
	// Soundness is the Petri-net verdict (nil unless Options.Validate).
	// Soundness.StateSpace.Truncated means the verdict came from a
	// capped exploration and is inconclusive, not a proof.
	Soundness *petri.SoundnessReport
	// BPELDoc / BPELXML are the generated document and its validated
	// serialization (nil unless Options.BPEL).
	BPELDoc *bpel.Process
	BPELXML []byte
	// Stages records per-stage wall-clock durations in execution order.
	Stages []StageTiming
}

// StageDuration returns the recorded duration of one stage (0 when it
// did not run).
func (r *Result) StageDuration(stage string) time.Duration {
	for _, s := range r.Stages {
		if s.Stage == stage {
			return s.Duration
		}
	}
	return 0
}

// Pipeline is a configured, reusable weave pipeline; Run executes it
// once. A Pipeline is safe for concurrent Runs (the options are read-
// only and all run state is per-call).
type Pipeline struct {
	opts Options
}

// New builds a pipeline from opts.
func New(opts Options) *Pipeline { return &Pipeline{opts: opts} }

// Run is shorthand for New(opts).Run(ctx, in).
func Run(ctx context.Context, in Input, opts Options) (*Result, error) {
	return New(opts).Run(ctx, in)
}

// stage is one named pipeline step.
type stage struct {
	name string
	run  func(ctx context.Context, res *Result) error
}

// stageSeconds buckets: the pipeline spans sub-millisecond parses and
// multi-second minimizations of large workloads.
var stageBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 30}

// Run executes the pipeline on one input. ctx cancellation aborts
// between stages and inside the minimize/validate kernels; the error
// then wraps ctx.Err() (use errors.Is). Every other error is wrapped
// with the failing stage's name.
func (p *Pipeline) Run(ctx context.Context, in Input) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stages, err := p.stages(in)
	if err != nil {
		return nil, err
	}
	res := &Result{Parsed: in.Parsed}
	emit := func(ev obs.Event) {
		if p.opts.Events != nil {
			ev.Layer = obs.LayerWeave
			p.opts.Events.Emit(obs.Stamp(ev))
		}
	}
	began := time.Now()
	emit(obs.Event{Kind: obs.EvWeaveBegin, Value: float64(len(stages))})
	if p.opts.Metrics != nil {
		p.opts.Metrics.Counter("weave_runs_total").Inc()
	}
	finish := func(err error) {
		ev := obs.Event{Kind: obs.EvWeaveEnd, DurNS: int64(time.Since(began))}
		if res.Parsed != nil && res.Parsed.Proc != nil {
			ev.Detail = res.Parsed.Proc.Name
		}
		if err != nil {
			ev.Err = err.Error()
		}
		emit(ev)
		if p.opts.Metrics != nil {
			if core.ErrCanceled(err) {
				p.opts.Metrics.Counter("weave_canceled_total").Inc()
			}
			p.opts.Metrics.Histogram("weave_run_seconds", stageBuckets).ObserveDuration(time.Since(began))
		}
	}
	for _, st := range stages {
		if err := ctx.Err(); err != nil {
			err = fmt.Errorf("weave: %s: %w", st.name, err)
			finish(err)
			return nil, err
		}
		if p.opts.StageHook != nil {
			if err := p.opts.StageHook(ctx, st.name); err != nil {
				err = fmt.Errorf("weave: %s: %w", st.name, err)
				finish(err)
				return nil, err
			}
		}
		stBegan := time.Now()
		emit(obs.Event{Kind: obs.EvStageBegin, Detail: st.name})
		err := st.run(ctx, res)
		dur := time.Since(stBegan)
		ev := obs.Event{Kind: obs.EvStageEnd, Detail: st.name, DurNS: int64(dur)}
		if err != nil {
			ev.Err = err.Error()
		}
		emit(ev)
		if p.opts.Metrics != nil {
			p.opts.Metrics.Histogram("weave_stage_seconds", stageBuckets, "stage", st.name).ObserveDuration(dur)
		}
		res.Stages = append(res.Stages, StageTiming{Stage: st.name, Duration: dur})
		if err != nil {
			err = fmt.Errorf("weave: %s: %w", st.name, err)
			finish(err)
			return nil, err
		}
	}
	finish(nil)
	return res, nil
}

// stages assembles the stage list for one input shape.
func (p *Pipeline) stages(in Input) ([]stage, error) {
	var out []stage
	if in.Parsed == nil {
		if p.opts.Frontend == nil {
			return nil, fmt.Errorf("weave: source input requires Options.Frontend (see internal/weave/front)")
		}
		if in.Source == "" {
			return nil, fmt.Errorf("weave: empty input (set Source or Parsed)")
		}
		out = append(out, stage{StageParse, p.parse(in.Source)})
	} else if in.Parsed.Proc == nil || in.Parsed.Deps == nil {
		return nil, fmt.Errorf("weave: pre-parsed input requires Proc and Deps")
	}
	out = append(out,
		stage{StageMerge, p.merge},
		stage{StageDesugar, p.desugar},
		stage{StageTranslate, p.translate},
		stage{StageMinimize, p.minimize},
	)
	if p.opts.Decentral {
		out = append(out, stage{StagePlace, p.place})
	}
	if p.opts.Validate {
		out = append(out, stage{StageValidate, p.validate})
	}
	if p.opts.BPEL {
		out = append(out, stage{StageBPEL, p.bpel})
	}
	return out, nil
}

func (p *Pipeline) parse(source string) func(ctx context.Context, res *Result) error {
	return func(ctx context.Context, res *Result) error {
		parsed, err := p.opts.Frontend(ctx, source)
		if err != nil {
			return err
		}
		res.Parsed = parsed
		return nil
	}
}

func (p *Pipeline) merge(ctx context.Context, res *Result) error {
	sc, err := core.Merge(res.Parsed.Proc, res.Parsed.Deps)
	if err != nil {
		return err
	}
	if res.Parsed.Extra != nil {
		for _, c := range res.Parsed.Extra.Constraints() {
			sc.Add(c)
		}
	}
	res.Merged = sc
	return nil
}

func (p *Pipeline) desugar(ctx context.Context, res *Result) error {
	if err := res.Merged.Desugar(); err != nil {
		return err
	}
	guards, err := core.DeriveGuards(res.Merged)
	if err != nil {
		return err
	}
	res.Guards = guards
	return nil
}

func (p *Pipeline) translate(ctx context.Context, res *Result) error {
	asc, err := core.TranslateServices(res.Merged)
	if err != nil {
		return err
	}
	res.Translated = asc
	return nil
}

func (p *Pipeline) minimize(ctx context.Context, res *Result) error {
	min, err := core.MinimizeOpt(ctx, res.Translated, core.MinimizeOptions{
		Guards:            p.opts.Guards,
		Parallelism:       p.opts.Parallelism,
		NoCache:           p.opts.NoCache,
		NoSpeculation:     p.opts.NoSpeculation,
		VerdictCache:      p.opts.VerdictCache,
		StrictAnnotations: p.opts.StrictAnnotations,
		Metrics:           p.opts.Metrics,
		Events:            p.opts.Events,
	})
	if err != nil {
		return err
	}
	res.Minimize = min
	return nil
}

func (p *Pipeline) place(ctx context.Context, res *Result) error {
	cmp, err := decentral.Compare(res.Translated, res.Minimize.Minimal,
		decentral.Pin(res.Parsed.Proc))
	if err != nil {
		return err
	}
	res.Decentral = cmp
	return nil
}

func (p *Pipeline) validate(ctx context.Context, res *Result) error {
	rep, err := petri.ValidateOpt(ctx, res.Minimize.Minimal, res.Guards,
		petri.ExploreOptions{
			MaxStates:    p.opts.MaxStates,
			ReductionOff: p.opts.ValidateReductionOff,
			Parallel:     p.opts.ValidateParallel,
			Metrics:      p.opts.Metrics,
		})
	if err != nil {
		return err
	}
	res.Soundness = rep
	return nil
}

func (p *Pipeline) bpel(ctx context.Context, res *Result) error {
	var doc *bpel.Process
	var err error
	if p.opts.StructuredBPEL {
		doc, err = bpel.GenerateStructured(res.Minimize.Minimal, res.Guards)
	} else {
		doc, err = bpel.Generate(res.Minimize.Minimal)
	}
	if err != nil {
		return err
	}
	if err := bpel.Validate(doc); err != nil {
		return err
	}
	data, err := bpel.Marshal(doc)
	if err != nil {
		return err
	}
	res.BPELDoc = doc
	res.BPELXML = data
	return nil
}
