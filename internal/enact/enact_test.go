// The decentralized-enactment property suite — the acceptance check
// of the transport-seam refactor. For a sweep of random layered
// workloads (and the paper's purchasing process, exercised from the
// server e2e suite), executing the minimal set across one engine per
// decentral.Place partition must be observationally equivalent to the
// single-engine run: the merged trace validates against the *global*
// pre-minimization activity-level set (Def. 5), the executed/skipped
// partition and every decision outcome match, and the cross-node
// message count equals the plan's predicted CrossEdges — the
// decentral.Comparison numbers measured live instead of statically.
// Latency-only chaos on the note fabric must not change any of it.
package enact_test

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"testing"
	"time"

	"dscweaver/internal/chaos"
	"dscweaver/internal/core"
	"dscweaver/internal/decentral"
	"dscweaver/internal/enact"
	"dscweaver/internal/schedule"
	"dscweaver/internal/weave"
	"dscweaver/internal/workload"
)

// branchFor resolves every decision deterministically from (seed, id)
// alone — node-independent, so single-engine and decentralized runs
// agree by construction.
func branchFor(proc *core.Process, seed int64) func(core.ActivityID) string {
	return func(id core.ActivityID) string {
		act, ok := proc.Activity(id)
		if !ok || len(act.BranchDomain()) == 0 {
			return ""
		}
		h := fnv.New64a()
		fmt.Fprintf(h, "%d/%s", seed, id)
		dom := act.BranchDomain()
		return dom[h.Sum64()%uint64(len(dom))]
	}
}

func sortedIDs(ids []core.ActivityID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	sort.Strings(out)
	return out
}

func equalIDs(a, b []core.ActivityID) bool {
	as, bs := sortedIDs(a), sortedIDs(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestDecentralEquivalence sweeps 32 random layered workloads of
// varying shape, most with pinned service hosts so the placement is
// genuinely multi-host.
func TestDecentralEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 32; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			w := workload.Layered(3+rng.Intn(3), 3+rng.Intn(3), 0.25+0.2*rng.Float64(), seed).
				WithShortcuts(2 + rng.Intn(4)).
				WithDecisions(rng.Intn(3))
			if seed%8 != 0 { // a few seeds stay single-host on purpose
				w = w.WithServices(2 + rng.Intn(3))
			}
			checkEquivalence(t, w.Proc, &weave.Parsed{Proc: w.Proc, Deps: w.Deps}, seed)
		})
	}
}

// checkEquivalence runs the pipeline, executes the minimal set once on
// a single engine and once decentralized under latency-only transport
// chaos, and asserts the equivalence properties.
func checkEquivalence(t *testing.T, proc *core.Process, parsed *weave.Parsed, seed int64) {
	t.Helper()
	ctx := context.Background()
	res, err := weave.Run(ctx, weave.Input{Parsed: parsed}, weave.Options{})
	if err != nil {
		t.Fatalf("weave: %v", err)
	}
	minimal := res.Minimize.Minimal
	plan, err := decentral.Place(minimal, decentral.Pin(proc))
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	execs := schedule.NoopExecutors(proc, 0, branchFor(proc, seed))

	single, err := schedule.New(minimal, execs, schedule.Options{
		Guards: res.Guards, Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("single engine: %v", err)
	}
	tr1, err := single.Run(ctx)
	if err != nil {
		t.Fatalf("single run: %v", err)
	}
	if err := tr1.Validate(res.Translated, res.Guards); err != nil {
		t.Fatalf("single trace invalid: %v", err)
	}

	inj := chaos.New(chaos.Config{Seed: seed, LatencyP: 0.5, MaxLatency: 2 * time.Millisecond})
	out, err := enact.Run(ctx, enact.Options{
		Plan:          plan,
		Set:           minimal,
		Guards:        res.Guards,
		Execs:         execs,
		Timeout:       30 * time.Second,
		WrapTransport: inj.WrapTransport,
	})
	if err != nil {
		t.Fatalf("enact (seed %d, hosts %v): %v", seed, plan.Hosts, err)
	}
	tr2 := out.Trace
	if tr2 == nil {
		t.Fatal("full enact run returned no merged trace")
	}

	// Def. 5: the merged trace validates against the global
	// pre-minimization activity-level set, like the single-engine one.
	if err := tr2.Validate(res.Translated, res.Guards); err != nil {
		t.Errorf("seed %d: merged trace fails global validation: %v\n%s", seed, err, tr2)
	}
	// Observational equivalence: same executed set, same skipped set,
	// same decision outcomes. (Literal sequence numbers differ between
	// any two runs of a concurrent engine; the S/R/F *orderings* both
	// satisfy the same global constraint set, which Validate pins.)
	if !equalIDs(tr1.Executed(), tr2.Executed()) {
		t.Errorf("seed %d: executed sets differ:\nsingle:     %v\ndecentral: %v",
			seed, sortedIDs(tr1.Executed()), sortedIDs(tr2.Executed()))
	}
	if !equalIDs(tr1.SkippedActivities(), tr2.SkippedActivities()) {
		t.Errorf("seed %d: skipped sets differ:\nsingle:     %v\ndecentral: %v",
			seed, sortedIDs(tr1.SkippedActivities()), sortedIDs(tr2.SkippedActivities()))
	}
	o1, o2 := tr1.Outcomes(), tr2.Outcomes()
	if len(o1) != len(o2) {
		t.Errorf("seed %d: outcome counts differ: %v vs %v", seed, o1, o2)
	}
	for d, b := range o1 {
		if o2[d] != b {
			t.Errorf("seed %d: decision %s: single %q, decentral %q", seed, d, b, o2[d])
		}
	}
	// Message economics: exactly one note per cross-partition edge —
	// the live measurement of the decentral.Comparison prediction.
	if out.Stats.EdgeMessages != out.Plan.CrossEdges {
		t.Errorf("seed %d: sent %d edge messages, plan predicts %d cross edges",
			seed, out.Stats.EdgeMessages, out.Plan.CrossEdges)
	}
}

// TestMergeDeterministic: merging the same notes in any input order
// yields the identical trace — the stamp/host/seq ordering is total.
func TestMergeDeterministic(t *testing.T) {
	w := workload.Layered(4, 4, 0.3, 7).WithServices(2)
	res, err := weave.Run(context.Background(),
		weave.Input{Parsed: &weave.Parsed{Proc: w.Proc, Deps: w.Deps}}, weave.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := decentral.Place(res.Minimize.Minimal, decentral.Pin(w.Proc))
	if err != nil {
		t.Fatal(err)
	}
	out, err := enact.Run(context.Background(), enact.Options{
		Plan: plan, Set: res.Minimize.Minimal, Guards: res.Guards,
		Execs:   schedule.NoopExecutors(w.Proc, 0, nil),
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := enact.Merge(w.Proc, out.Began, out.Ended, out.Notes)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]enact.Note(nil), out.Notes...)
		rng := rand.New(rand.NewSource(int64(trial)))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		again, err := enact.Merge(w.Proc, out.Began, out.Ended, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		b1, _ := base.MarshalJSON()
		b2, _ := again.MarshalJSON()
		if string(b1) != string(b2) {
			t.Fatalf("trial %d: merge is input-order sensitive:\n%s\nvs\n%s", trial, b1, b2)
		}
	}
	// A lost note must be loud, not a silently shorter trace.
	if len(out.Notes) > 0 {
		if _, err := enact.Merge(w.Proc, out.Began, out.Ended, out.Notes[:len(out.Notes)-1]); err == nil {
			t.Error("merge of an incomplete note stream did not error")
		}
	}
}

// TestPartialRunNeedsFabric: a Hosts subset without an external fabric
// is a configuration error, not a silent partial merge.
func TestPartialRunNeedsFabric(t *testing.T) {
	w := workload.Layered(3, 3, 0.3, 5).WithServices(2)
	res, err := weave.Run(context.Background(),
		weave.Input{Parsed: &weave.Parsed{Proc: w.Proc, Deps: w.Deps}}, weave.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := decentral.Place(res.Minimize.Minimal, decentral.Pin(w.Proc))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Hosts) < 2 {
		t.Skip("placement produced one host")
	}
	_, err = enact.Run(context.Background(), enact.Options{
		Plan: plan, Set: res.Minimize.Minimal, Guards: res.Guards,
		Execs: schedule.NoopExecutors(w.Proc, 0, nil),
		Hosts: plan.Hosts[:1],
	})
	if err == nil {
		t.Fatal("partial run without a fabric did not error")
	}
}
