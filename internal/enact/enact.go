// Package enact executes a woven process across several scheduling
// engines — one per partition of a decentral.Plan — realizing the
// paper's §5 decentralized-execution connection as a running system
// rather than a static analysis. Each node owns its partition's
// activities; cross-partition HappenBefore edges become transport
// messages (Notes) carried by a pluggable Fabric: an in-process bus by
// default, HTTP between dscweaverd processes in e2e. Every node's
// board keeps a Lamport clock, and the per-node note streams merge by
// stamp into one global trace that must validate against the global
// pre-minimization constraint set — the same Def. 5 check a single
// engine faces.
//
// Message economics are the point: a successful run sends exactly one
// note per cross-partition HappenBefore edge (a start-gating edge
// rides the start note, a finish-gating edge the finish note, a
// skipped activity one skip note covering all its edges), so the
// measured EdgeMessages equals the plan's CrossEdges — the
// decentral.Comparison prediction, now observed on live runs. Decision
// outcomes are additionally broadcast to every other node (counted
// separately as OutcomeMessages), because minimization removes edges
// whose ordering is implied while guards still need the outcomes for
// dead-path elimination.
//
// Scope: the fabric carries control-flow synchronization only. Data
// flows through services as usual; decision executors must be
// node-independent (the server layer resolves branches identically on
// every node), and each node evaluates guards against the outcomes the
// broadcasts deliver.
package enact

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dscweaver/internal/cond"
	"dscweaver/internal/core"
	"dscweaver/internal/decentral"
	"dscweaver/internal/obs"
	"dscweaver/internal/schedule"
	"dscweaver/internal/services"
)

// PartitionedPeerError is the crisp failure shape for an unreachable
// peer: the fabric's retry budget elapsed on a note send to Host. The
// run fails with this error instead of a generic engine timeout, so an
// operator (and the chaos suite) can tell a partitioned link from a
// slow process.
type PartitionedPeerError struct {
	Host string
	Err  error
}

func (e *PartitionedPeerError) Error() string {
	return fmt.Sprintf("enact: peer %s partitioned: %v", e.Host, e.Err)
}

func (e *PartitionedPeerError) Unwrap() error { return e.Err }

// Note is one activity transition annotated with the node that
// committed it.
type Note struct {
	Host string `json:"host"`
	schedule.Note
}

// Fabric carries notes between nodes. Register binds every local
// node's receiver before any engine starts; Send routes one note to
// the engine owning host, wherever it runs.
type Fabric interface {
	Register(host string, deliver func(Note)) error
	Send(host string, n Note) error
	Close()
}

// Options configures one decentralized enactment.
type Options struct {
	// Plan assigns every activity to a host (decentral.Place output).
	// Run first co-locates exclusive-connected groups — mutexes cannot
	// straddle engines — and the normalized plan is what executes and
	// is reported in the Result.
	Plan *decentral.Plan
	// Set is the executable (minimal) activity-level constraint set.
	Set *core.ConstraintSet
	// Guards are the pre-minimization execution guards (as for a single
	// engine running a minimal set).
	Guards map[core.Node]cond.Expr
	// Execs is the global executor map; each node uses its partition's
	// subset.
	Execs map[core.ActivityID]schedule.Executor
	// Inputs seeds every node's variable store.
	Inputs map[string]any
	// Retry / RetrySeed / Workers / Timeout apply per node, as in
	// schedule.Options.
	Retry     map[core.ActivityID]schedule.RetryPolicy
	RetrySeed int64
	Workers   int
	Timeout   time.Duration
	// Metrics / Events instrument all nodes (shared registry / sink).
	Metrics *obs.Registry
	Events  obs.Sink
	// Hosts restricts this process to a subset of the plan's hosts (a
	// multi-process deployment runs Run once per process). Nil runs all
	// hosts here, and only then does Run merge and return the global
	// trace.
	Hosts []string
	// Fabric carries cross-node notes. Nil (single-process only) uses
	// an in-process bus fabric.
	Fabric Fabric
	// WrapTransport wraps the in-process fabric's transport — the chaos
	// seam for latency injection on the note path. Ignored when Fabric
	// is set.
	WrapTransport func(services.Transport) services.Transport
}

// Stats counts the cross-node messages a run actually sent.
type Stats struct {
	// EdgeMessages are notes sent because a cross-partition constraint
	// edge is gated on them; on a successful run this equals the plan's
	// CrossEdges.
	EdgeMessages int
	// OutcomeMessages are decision outcome broadcasts to other nodes.
	OutcomeMessages int
}

// Result is one enactment's outcome.
type Result struct {
	// Trace is the merged global trace; nil for partial (Hosts ⊂ plan)
	// runs, whose notes the coordinating process merges.
	Trace *schedule.Trace
	// Notes are the transitions committed by this process's nodes.
	Notes []Note
	// Plan is the normalized plan that executed (after exclusive
	// co-location).
	Plan  *decentral.Plan
	Stats Stats
	Began time.Time
	Ended time.Time
}

// crossEdge is one outgoing cross-partition constraint edge of an
// activity: the gating source state and the host gated on it.
type crossEdge struct {
	fromState core.State
	toHost    string
}

// collector accumulates notes across node publishers.
type collector struct {
	mu    sync.Mutex
	notes []Note
}

func (c *collector) add(n Note) {
	c.mu.Lock()
	c.notes = append(c.notes, n)
	c.mu.Unlock()
}

func (c *collector) snapshot() []Note {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Note(nil), c.notes...)
}

// Run executes the plan's partitions owned by this process. With
// Hosts nil it runs every partition and merges the note streams into
// the global trace for the caller to Validate.
func Run(ctx context.Context, opts Options) (*Result, error) {
	if opts.Plan == nil || opts.Set == nil {
		return nil, fmt.Errorf("enact: plan and constraint set are required")
	}
	plan, err := decentral.CoLocate(opts.Set, opts.Plan)
	if err != nil {
		return nil, err
	}
	planHosts := map[string]bool{}
	for _, h := range plan.Hosts {
		planHosts[h] = true
	}
	hosts := opts.Hosts
	full := hosts == nil
	if full {
		hosts = plan.Hosts
	}
	for _, h := range hosts {
		if !planHosts[h] {
			return nil, fmt.Errorf("enact: host %s not in plan", h)
		}
	}

	fab := opts.Fabric
	if fab == nil {
		if !full {
			return nil, fmt.Errorf("enact: a partial run needs an external fabric")
		}
		bf, err := newBusFabric(opts.WrapTransport)
		if err != nil {
			return nil, err
		}
		defer bf.Close()
		fab = bf
	}

	part := plan.Partition
	// Outgoing cross edges per activity, and the decision set for
	// outcome broadcasts.
	edges := map[core.ActivityID][]crossEdge{}
	for _, c := range opts.Set.HappenBefores() {
		fh, th := part[c.From.Node.Activity], part[c.To.Node.Activity]
		if fh == th {
			continue
		}
		edges[c.From.Node.Activity] = append(edges[c.From.Node.Activity],
			crossEdge{fromState: c.From.State, toHost: th})
	}
	isDecision := map[core.ActivityID]bool{}
	for _, a := range opts.Set.Proc.Activities() {
		if a.Kind == core.KindDecision {
			isDecision[a.ID] = true
		}
	}

	res := &Result{Plan: plan, Began: time.Now()}
	col := &collector{}
	var edgeMsgs, outcomeMsgs atomic.Int64
	var sendErrMu sync.Mutex
	var sendErr error

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	failSend := func(err error) {
		sendErrMu.Lock()
		if sendErr == nil {
			sendErr = err
		}
		sendErrMu.Unlock()
		cancel()
	}
	done := make(chan struct{})

	type node struct {
		host  string
		eng   *schedule.Engine
		err   error
		trace *schedule.Trace
	}
	nodes := make([]*node, 0, len(hosts))
	for _, h := range hosts {
		h := h
		remote := make(chan schedule.Note, 1024)
		if err := fab.Register(h, func(n Note) {
			select {
			case remote <- n.Note:
			case <-done:
			}
		}); err != nil {
			close(done)
			return nil, fmt.Errorf("enact: register %s: %w", h, err)
		}
		var others []string
		for _, oh := range plan.Hosts {
			if oh != h {
				others = append(others, oh)
			}
		}
		publish := func(n schedule.Note) {
			hn := Note{Host: h, Note: n}
			col.add(hn)
			for _, e := range edges[n.Activity] {
				var send bool
				switch n.Kind {
				case schedule.NoteSkip:
					send = true
				case schedule.NoteStart:
					send = e.fromState != core.Finish
				case schedule.NoteFinish:
					send = e.fromState == core.Finish
				}
				if !send {
					continue
				}
				edgeMsgs.Add(1)
				if err := fab.Send(e.toHost, hn); err != nil {
					failSend(fmt.Errorf("enact: %s → %s: %w", h, e.toHost, err))
					return
				}
			}
			if isDecision[n.Activity] && n.Kind != schedule.NoteStart {
				for _, oh := range others {
					outcomeMsgs.Add(1)
					if err := fab.Send(oh, hn); err != nil {
						failSend(fmt.Errorf("enact: %s → %s: %w", h, oh, err))
						return
					}
				}
			}
		}
		eng, err := schedule.New(opts.Set, opts.Execs, schedule.Options{
			Timeout:   opts.Timeout,
			Guards:    opts.Guards,
			Inputs:    opts.Inputs,
			Retry:     opts.Retry,
			RetrySeed: opts.RetrySeed,
			Workers:   opts.Workers,
			Metrics:   opts.Metrics,
			Events:    opts.Events,
			Owned:     func(id core.ActivityID) bool { return part[id] == h },
			Publish:   publish,
			Remote:    remote,
		})
		if err != nil {
			close(done)
			return nil, fmt.Errorf("enact: node %s: %w", h, err)
		}
		nodes = append(nodes, &node{host: h, eng: eng})
	}

	var wg sync.WaitGroup
	for _, nd := range nodes {
		wg.Add(1)
		go func(nd *node) {
			defer wg.Done()
			nd.trace, nd.err = nd.eng.Run(runCtx)
			if nd.err != nil {
				cancel() // first failing node aborts the others promptly
			}
		}(nd)
	}
	wg.Wait()
	close(done)

	res.Ended = time.Now()
	res.Notes = col.snapshot()
	res.Stats = Stats{
		EdgeMessages:    int(edgeMsgs.Load()),
		OutcomeMessages: int(outcomeMsgs.Load()),
	}
	// A failed send cancels the run context, so every node "fails" with
	// a canceled engine — the send error is the cause and must win, or
	// a partitioned peer would surface as a generic cancellation.
	sendErrMu.Lock()
	serr := sendErr
	sendErrMu.Unlock()
	if serr != nil {
		var ppe *PartitionedPeerError
		if errors.As(serr, &ppe) {
			if opts.Metrics != nil {
				opts.Metrics.Counter("enact_partition_total", "host", ppe.Host).Inc()
			}
			if opts.Events != nil {
				opts.Events.Emit(obs.Stamp(obs.Event{
					Kind: obs.EvPartition, Layer: obs.LayerTransport,
					Service: ppe.Host, Err: ppe.Err.Error(),
				}))
			}
		}
		return res, serr
	}
	for _, nd := range nodes {
		if nd.err != nil {
			return res, fmt.Errorf("enact: node %s: %w", nd.host, nd.err)
		}
	}
	if full {
		tr, err := Merge(opts.Set.Proc, res.Began, res.Ended, res.Notes)
		if err != nil {
			return res, err
		}
		res.Trace = tr
	}
	return res, nil
}

// busFabric is the in-process default: one bus, one "node:<host>"
// service per registered node, notes passed by value (no
// serialization). The optional transport wrapper is the chaos seam —
// injected latency delays the publishing engine goroutine, modeling
// network delay on the note path.
type busFabric struct {
	bus   *services.Bus
	t     services.Transport
	drain sync.WaitGroup
}

func newBusFabric(wrap func(services.Transport) services.Transport) (*busFabric, error) {
	bus := services.NewBus(0)
	var t services.Transport = bus
	if wrap != nil {
		t = wrap(bus)
	}
	f := &busFabric{bus: bus, t: t}
	f.drain.Add(1)
	go func() {
		defer f.drain.Done()
		for range t.Inbox() {
		}
	}()
	return f, nil
}

func (f *busFabric) Register(host string, deliver func(Note)) error {
	return f.bus.Register(services.Config{
		Name:  "node:" + host,
		Ports: []string{"note"},
		Handle: func(c *services.Call) ([]services.Emit, error) {
			if n, ok := c.Payload.(Note); ok {
				deliver(n)
			}
			return nil, nil
		},
	})
}

func (f *busFabric) Send(host string, n Note) error {
	return f.t.Invoke("node:"+host, "note", n)
}

func (f *busFabric) Close() {
	f.t.Close()
	f.drain.Wait()
}

// Merge orders all nodes' notes by (Lamport stamp, host, node seq) —
// causally ordered transitions always carry strictly increasing
// stamps, so ties are concurrent and any deterministic tiebreak is a
// valid serialization — and rebuilds the global trace with fresh
// global sequence numbers. Incomplete activities (a lost note, a
// partial collection) are an error.
func Merge(proc *core.Process, began, ended time.Time, notes []Note) (*schedule.Trace, error) {
	sorted := append([]Note(nil), notes...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Stamp != b.Stamp {
			return a.Stamp < b.Stamp
		}
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		return a.Seq < b.Seq
	})
	recs := map[core.ActivityID]*schedule.Record{}
	var order []core.ActivityID
	running, maxPar, seq := 0, 0, 0
	for _, n := range sorted {
		seq++
		r := recs[n.Activity]
		if r == nil {
			r = &schedule.Record{Activity: n.Activity}
			recs[n.Activity] = r
			order = append(order, n.Activity)
		}
		switch n.Kind {
		case schedule.NoteStart:
			if r.StartSeq == 0 {
				r.StartSeq = seq
				r.StartAt = n.At
				running++
				if running > maxPar {
					maxPar = running
				}
			}
		case schedule.NoteFinish:
			if r.FinishSeq == 0 {
				r.FinishSeq = seq
				r.FinishAt = n.At
				r.Branch = n.Branch
				running--
			}
		case schedule.NoteSkip:
			r.Skipped = true
			r.StartSeq, r.FinishSeq = seq, seq
		}
	}
	list := make([]schedule.Record, 0, len(order))
	for _, id := range order {
		list = append(list, *recs[id])
	}
	for _, a := range proc.Activities() {
		r := recs[a.ID]
		if r == nil {
			return nil, fmt.Errorf("enact: merge: no transitions for %s", a.ID)
		}
		if !r.Skipped && (r.StartSeq == 0 || r.FinishSeq == 0) {
			return nil, fmt.Errorf("enact: merge: incomplete transitions for %s", a.ID)
		}
	}
	return schedule.NewTraceFromRecords(proc.Name, began, ended, maxPar, list)
}
