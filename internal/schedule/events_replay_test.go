package schedule

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dscweaver/internal/core"
	"dscweaver/internal/obs"
	"dscweaver/internal/workload"
)

// compareTraces asserts that a trace replayed from an event log
// carries exactly the live trace's records: sequence numbers, skips,
// branches and retry counts, plus the run-level peak parallelism.
func compareTraces(t *testing.T, live, replayed *Trace) {
	t.Helper()
	liveRecs := live.Records()
	replayedRecs := replayed.Records()
	if len(liveRecs) != len(replayedRecs) {
		t.Fatalf("replayed %d records, live %d\nlive:\n%s\nreplayed:\n%s",
			len(replayedRecs), len(liveRecs), live, replayed)
	}
	byID := map[core.ActivityID]Record{}
	for _, r := range replayedRecs {
		byID[r.Activity] = r
	}
	for _, want := range liveRecs {
		got, ok := byID[want.Activity]
		if !ok {
			t.Fatalf("activity %s missing from replayed trace", want.Activity)
		}
		if got.StartSeq != want.StartSeq || got.FinishSeq != want.FinishSeq ||
			got.Skipped != want.Skipped || got.Branch != want.Branch || got.Retries != want.Retries {
			t.Errorf("activity %s: replayed %+v, live %+v", want.Activity, got, want)
		}
	}
	if replayed.MaxParallel != live.MaxParallel {
		t.Errorf("replayed MaxParallel = %d, live %d", replayed.MaxParallel, live.MaxParallel)
	}
}

// TestTraceFromEventsRoundTripRandomDAG is the property test for the
// event-log replay path: for randomized layered DAG schedules (up to
// 128 activities, with decisions, shortcuts, retried transient
// failures and a random worker cap), the JSONL-able event stream must
// rebuild the exact live trace and validate against the constraint
// set. Run under -race in CI.
func TestTraceFromEventsRoundTripRandomDAG(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			layers := 3 + r.Intn(5)
			width := 1 + r.Intn(16) // ≤ 8×16 = 128 activities
			w := workload.Layered(layers, width, 0.3, seed).
				WithShortcuts(r.Intn(8)).
				WithDecisions(r.Intn(3))
			sc, err := w.Constraints()
			if err != nil {
				t.Fatal(err)
			}
			if err := sc.Desugar(); err != nil {
				t.Fatal(err)
			}
			guards, err := core.DeriveGuards(sc)
			if err != nil {
				t.Fatal(err)
			}

			branch := func(core.ActivityID) string {
				if r.Intn(2) == 0 {
					return "T"
				}
				return "F"
			}
			execs := NoopExecutors(sc.Proc, 0, branch)
			// A few activities fail transiently once; the retry policy
			// absorbs it, and the retry events must replay too.
			retry := map[core.ActivityID]RetryPolicy{}
			for _, act := range sc.Proc.Activities() {
				if r.Intn(8) != 0 {
					continue
				}
				id := act.ID
				inner := execs[id]
				failed := false // per-run: each engine below runs once
				execs[id] = func(ctx context.Context, a *core.Activity, vars *Vars) (Outcome, error) {
					if !failed {
						failed = true
						return Outcome{}, fmt.Errorf("transient %s", id)
					}
					return inner(ctx, a, vars)
				}
				retry[id] = RetryPolicy{MaxAttempts: 3}
			}

			sink := &obs.MemSink{}
			eng, err := New(sc, execs, Options{
				Guards:  guards,
				Timeout: 20 * time.Second,
				Workers: r.Intn(5), // 0 = unlimited
				Retry:   retry,
				Events:  sink,
			})
			if err != nil {
				t.Fatal(err)
			}
			live, err := eng.Run(context.Background())
			if err != nil {
				t.Fatalf("run: %v\n%s", err, live)
			}

			replayed, err := TraceFromEvents(sink.Events())
			if err != nil {
				t.Fatal(err)
			}
			compareTraces(t, live, replayed)
			if err := replayed.Validate(sc, guards); err != nil {
				t.Errorf("replayed trace does not validate: %v", err)
			}
		})
	}
}

// TestTraceFromEventsFailFastTruncation replays runs cut short by the
// fail-fast cancellation path: a randomly chosen activity fails hard,
// the run context is canceled, and the truncated event log must still
// rebuild exactly the live partial trace (started-but-unfinished
// records included).
func TestTraceFromEventsFailFastTruncation(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			w := workload.Layered(3+r.Intn(4), 1+r.Intn(8), 0.35, seed).WithDecisions(r.Intn(2))
			sc, err := w.Constraints()
			if err != nil {
				t.Fatal(err)
			}
			if err := sc.Desugar(); err != nil {
				t.Fatal(err)
			}
			guards, err := core.DeriveGuards(sc)
			if err != nil {
				t.Fatal(err)
			}

			acts := sc.Proc.Activities()
			victim := acts[r.Intn(len(acts))].ID
			execs := NoopExecutors(sc.Proc, 100*time.Microsecond, func(core.ActivityID) string { return "T" })
			execs[victim] = func(ctx context.Context, a *core.Activity, vars *Vars) (Outcome, error) {
				return Outcome{}, fmt.Errorf("hard failure at %s", victim)
			}

			sink := &obs.MemSink{}
			eng, err := New(sc, execs, Options{Guards: guards, Timeout: 20 * time.Second, Events: sink})
			if err != nil {
				t.Fatal(err)
			}
			live, err := eng.Run(context.Background())
			if err == nil {
				t.Fatalf("run with failing %s succeeded", victim)
			}

			replayed, err := TraceFromEvents(sink.Events())
			if err != nil {
				t.Fatal(err)
			}
			compareTraces(t, live, replayed)

			// The victim started but never finished, in both views.
			lr, ok := live.Record(victim)
			if !ok || lr.FinishSeq != 0 {
				t.Fatalf("live victim record = %+v, ok=%v", lr, ok)
			}
			rr, ok := replayed.Record(victim)
			if !ok || rr.FinishSeq != 0 || rr.StartSeq != lr.StartSeq {
				t.Errorf("replayed victim record = %+v, live %+v", rr, lr)
			}
		})
	}
}
