// Package schedule executes a business process directly from its
// synchronization constraint set — the dataflow scheduling engine the
// paper's dependency-equal-to-scheduling approach calls for (§1). No
// sequencing constructs exist at runtime: one goroutine per activity
// waits until the constraints naming it are released, so the
// concurrency the minimal dependency set exposes is realized
// mechanically.
//
// Semantics (mirrored exactly by the petri package's net builder, so
// validated schemes execute as analyzed):
//
//   - every activity traverses start → run → finish (§4.1's life
//     cycle);
//   - a HappenBefore constraint gates the target point until the
//     source point has occurred or the source activity was skipped;
//   - an activity whose execution guard (from the control
//     dependencies) evaluates false under the resolved decision
//     outcomes is skipped — dead-path elimination — and all its points
//     count as released for its dependents;
//   - Exclusive constraints are enforced at start time with per-pair
//     mutexes, "dynamically checked by a scheduling engine at the time
//     of starting an activity" (§4.2).
package schedule

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dscweaver/internal/cond"
	"dscweaver/internal/core"
	"dscweaver/internal/obs"
)

// Outcome is an executor's result; Branch is consumed for decision
// activities and ignored otherwise.
type Outcome struct {
	Branch string
}

// Executor performs an activity's work: a service invocation, a local
// computation, or a decision evaluation.
type Executor func(ctx context.Context, act *core.Activity, vars *Vars) (Outcome, error)

// Vars is the process's shared variable store.
type Vars struct {
	mu sync.Mutex
	m  map[string]any
}

// NewVars returns a store seeded with the given inputs.
func NewVars(seed map[string]any) *Vars {
	v := &Vars{m: map[string]any{}}
	for k, val := range seed {
		v.m[k] = val
	}
	return v
}

// Get reads a variable.
func (v *Vars) Get(name string) (any, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	val, ok := v.m[name]
	return val, ok
}

// Set writes a variable.
func (v *Vars) Set(name string, val any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.m[name] = val
}

// Snapshot copies the store.
func (v *Vars) Snapshot() map[string]any {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]any, len(v.m))
	for k, val := range v.m {
		out[k] = val
	}
	return out
}

// Options tunes an engine.
type Options struct {
	// Timeout bounds Run (default 30s). A run that exceeds it fails
	// with a diagnostic listing the blocked activities — the runtime
	// face of an unsound constraint set.
	Timeout time.Duration
	// Guards overrides the execution guards. When nil they are derived
	// from the constraint set's control-origin edges; pass the guards
	// of the pre-minimization set when executing a minimal set.
	Guards map[core.Node]cond.Expr
	// Inputs seeds the variable store.
	Inputs map[string]any
	// Retry gives per-activity recovery policies (see RetryPolicy);
	// activities without an entry fail the run on the first executor
	// error.
	Retry map[core.ActivityID]RetryPolicy
	// RetrySeed seeds the jitter randomness (0 = time-seeded). Chaos
	// replays pass a fixed seed so backoff draws are reproducible.
	RetrySeed int64
	// Workers caps the number of concurrently executing activities
	// (0 = unlimited). The constraint graph bounds parallelism from
	// above; Workers models a resource-constrained engine, letting the
	// benches chart makespan against available executors.
	Workers int
	// Metrics, when non-nil, receives scheduler counters and
	// histograms (S/R/F transitions, blocked time, worker-slot wait,
	// retries, dead-path skips, peak parallelism).
	Metrics *obs.Registry
	// Events, when non-nil, receives typed lifecycle events
	// (obs.LayerEngine); a JSONL log of them rebuilds a validatable
	// trace via TraceFromEvents.
	Events obs.Sink
	// Owned restricts the engine to a partition: only activities it
	// reports true for execute locally; the others are expected to run
	// on peer engines, their transitions arriving via Remote. Nil owns
	// every activity — the single-engine default.
	Owned func(core.ActivityID) bool
	// Publish, when set, receives a Note after each local transition
	// commits (start, finish, skip); the decentralized enactment layer
	// forwards them to the peers gated on them.
	Publish func(Note)
	// Remote feeds transitions committed by peer engines onto this
	// engine's board. The engine consumes it until the run ends or the
	// channel closes.
	Remote <-chan Note
}

// Engine executes one process instance per Run call.
type Engine struct {
	sc     *core.ConstraintSet
	proc   *core.Process
	execs  map[core.ActivityID]Executor
	guards map[core.Node]cond.Expr
	opts   Options
	m      *engineMetrics // nil when Options.Metrics is nil
	sink   obs.Sink       // nil when Options.Events is nil
	rnd    *retryRand     // jitter source, seeded by Options.RetrySeed

	// static wiring
	inEdges  map[core.ActivityID][]edgeRef // constraints targeting the activity
	mutexes  map[core.ActivityID][]int     // exclusive constraint ids per activity
	nMutexes int
}

// engineMetrics caches the registry handles the hot path touches so a
// run pays one registry lookup per metric, not per activity.
type engineMetrics struct {
	started     *obs.Counter
	finished    *obs.Counter
	skipped     *obs.Counter
	retries     *obs.Counter
	failures    *obs.Counter
	runs        *obs.Counter
	blocked     *obs.Histogram // gate+mutex wait before start, seconds
	slotWait    *obs.Histogram // wait attributable to the Workers cap
	maxParallel *obs.Gauge
	running     *obs.Gauge
	// remoteDups counts remote notes whose transition was already on
	// the board — broadcast fan-in and fabric retransmits/duplicates,
	// absorbed idempotently.
	remoteDups *obs.Counter
}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	if r == nil {
		return nil
	}
	return &engineMetrics{
		started:     r.Counter("schedule_activities_started_total"),
		finished:    r.Counter("schedule_activities_finished_total"),
		skipped:     r.Counter("schedule_activities_skipped_total"),
		retries:     r.Counter("schedule_retries_total"),
		failures:    r.Counter("schedule_failures_total"),
		runs:        r.Counter("schedule_runs_total"),
		blocked:     r.Histogram("schedule_blocked_seconds", obs.DurationBuckets),
		slotWait:    r.Histogram("schedule_slot_wait_seconds", obs.DurationBuckets),
		maxParallel: r.Gauge("schedule_max_parallel"),
		running:     r.Gauge("schedule_running"),
		remoteDups:  r.Counter("schedule_remote_dup_total"),
	}
}

// emit stamps and delivers one engine event; nil-safe.
func (e *Engine) emit(ev obs.Event) {
	if e.sink == nil {
		return
	}
	ev.Layer = obs.LayerEngine
	e.sink.Emit(obs.Stamp(ev))
}

type edgeRef struct {
	con     core.Constraint
	toState core.State
}

// New validates the constraint set (activity-level nodes only,
// desugared, acyclic) and prepares an engine.
func New(sc *core.ConstraintSet, execs map[core.ActivityID]Executor, opts Options) (*Engine, error) {
	if sc.HasServiceNodes() {
		return nil, fmt.Errorf("schedule: constraint set mentions external nodes; translate first")
	}
	for _, c := range sc.Constraints() {
		if c.Rel == core.HappenTogether {
			return nil, fmt.Errorf("schedule: HappenTogether constraint %s: desugar first", c)
		}
	}
	guards := opts.Guards
	if guards == nil {
		g, err := core.DeriveGuards(sc) // also rejects cyclic sets
		if err != nil {
			return nil, err
		}
		guards = g
	} else if _, err := core.DeriveGuards(sc); err != nil {
		return nil, err // cycle check even with supplied guards
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	e := &Engine{
		sc: sc, proc: sc.Proc, execs: execs, guards: guards, opts: opts,
		m: newEngineMetrics(opts.Metrics), sink: opts.Events,
		rnd:     newRetryRand(opts.RetrySeed),
		inEdges: map[core.ActivityID][]edgeRef{},
		mutexes: map[core.ActivityID][]int{},
	}
	for _, c := range sc.Constraints() {
		switch c.Rel {
		case core.HappenBefore:
			e.inEdges[c.To.Node.Activity] = append(e.inEdges[c.To.Node.Activity], edgeRef{con: c, toState: c.To.State})
		case core.Exclusive:
			id := e.nMutexes
			e.nMutexes++
			e.mutexes[c.From.Node.Activity] = append(e.mutexes[c.From.Node.Activity], id)
			e.mutexes[c.To.Node.Activity] = append(e.mutexes[c.To.Node.Activity], id)
		}
	}
	return e, nil
}

// guardOf returns an activity's execution guard.
func (e *Engine) guardOf(id core.ActivityID) cond.Expr {
	if g, ok := e.guards[core.ActivityNode(id)]; ok {
		return g
	}
	return cond.True()
}

// board is the shared event state; all fields except cancel are
// guarded by mu.
type board struct {
	mu       sync.Mutex
	cond     *sync.Cond
	happened map[core.Point]int // point → event sequence number (0 = not yet)
	skipped  map[core.ActivityID]bool
	outcomes map[string]string // decision → branch or SkippedBranch
	holders  []core.ActivityID // mutex id → holder ("" free)
	seq      int
	// clock is the Lamport time of this board: bumped on every local
	// commit, advanced to the remote stamp on every applied note. Always
	// touched under mu.
	clock uint64
	err   error
	// errGeneric marks err as the watchdog's context diagnostic; the
	// first activity-level failure report (which carries the failing
	// activity and, after cancellation, wraps the same context error)
	// upgrades it.
	errGeneric bool
	running    int
	maxRun     int
	// cancel aborts the run context on the first failure so in-flight
	// executors (service receives, backoff sleeps) return promptly
	// instead of riding out Options.Timeout — the fail-fast path.
	cancel context.CancelFunc
}

// SkippedBranch is the outcome recorded for decisions eliminated by a
// dead path; guard literals over them evaluate false.
const SkippedBranch = "∅"

// fail records the run's first activity-level error, wakes every
// constraint-blocked waiter and cancels the run context so executing
// activities observe the failure through ctx — the fail-fast path. An
// activity error also upgrades the watchdog's generic context
// diagnostic, so the reported error names the activity involved
// regardless of which goroutine won the race to observe ctx.Done.
// Callers hold b.mu.
func (b *board) fail(err error) {
	if b.err == nil || b.errGeneric {
		if b.err == nil && b.cancel != nil {
			b.cancel()
		}
		b.err = err
		b.errGeneric = false
	}
	b.cond.Broadcast()
}

// failCtx records the watchdog's context diagnostic (external cancel
// or Options.Timeout); it never displaces an activity-level error and
// may itself be upgraded by one. Callers hold b.mu.
func (b *board) failCtx(err error) {
	if b.err == nil {
		b.err = err
		b.errGeneric = true
	}
	b.cond.Broadcast()
}

// released reports whether an edge no longer gates its target.
func (b *board) released(e edgeRef) bool {
	src := e.con.From.Node.Activity
	if b.skipped[src] {
		return true
	}
	return b.happened[e.con.From] > 0
}

// guardDecidable reports whether every decision in the guard has an
// outcome.
func (b *board) guardDecidable(g cond.Expr) bool {
	for _, d := range g.Decisions() {
		if _, ok := b.outcomes[d]; !ok {
			return false
		}
	}
	return true
}

// Run executes one instance. It returns the execution trace; on
// executor failure, cancellation or timeout the partial trace
// accompanies the error. The first failure cancels the run context,
// so a failing activity terminates the run promptly — dependents and
// in-flight executors do not wait out Options.Timeout.
func (e *Engine) Run(ctx context.Context) (*Trace, error) {
	ctx, cancel := context.WithTimeout(ctx, e.opts.Timeout)
	defer cancel()

	b := &board{
		happened: map[core.Point]int{},
		skipped:  map[core.ActivityID]bool{},
		outcomes: map[string]string{},
		holders:  make([]core.ActivityID, e.nMutexes),
		cancel:   cancel,
	}
	b.cond = sync.NewCond(&b.mu)
	vars := NewVars(e.opts.Inputs)
	trace := newTrace(e.proc)
	e.emit(obs.Event{Kind: obs.EvRunBegin, Detail: e.proc.Name})
	if e.m != nil {
		e.m.runs.Inc()
	}

	var wg sync.WaitGroup
	for _, act := range e.proc.Activities() {
		if !e.owned(act.ID) {
			continue
		}
		wg.Add(1)
		go func(act *core.Activity) {
			defer wg.Done()
			e.runActivity(ctx, act, b, vars, trace)
		}(act)
	}

	// Watchdog: wake sleepers when the context dies. With the
	// fail-fast cancel in board.fail this only originates errors for
	// external cancellation and the Options.Timeout deadline; failures
	// reach it with b.err already set, making its fail a no-op.
	done := make(chan struct{})
	var remoteWG sync.WaitGroup
	if e.opts.Remote != nil {
		remoteWG.Add(1)
		go func() {
			defer remoteWG.Done()
			for {
				select {
				case n, ok := <-e.opts.Remote:
					if !ok {
						return
					}
					if !e.applyRemote(b, n) && e.m != nil {
						e.m.remoteDups.Inc()
					}
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		select {
		case <-ctx.Done():
			b.mu.Lock()
			b.failCtx(fmt.Errorf("schedule: %w; blocked activities: %v", ctx.Err(), e.blocked(b, trace)))
			b.mu.Unlock()
		case <-done:
		}
	}()

	wg.Wait()
	close(done)
	remoteWG.Wait()

	b.mu.Lock()
	err := b.err
	trace.MaxParallel = b.maxRun
	b.mu.Unlock()
	trace.finish(vars)
	if e.m != nil {
		e.m.maxParallel.SetMax(int64(trace.MaxParallel))
	}
	endEv := obs.Event{Kind: obs.EvRunEnd, Detail: e.proc.Name,
		Value: float64(trace.MaxParallel), DurNS: int64(trace.Makespan())}
	if err != nil {
		endEv.Err = err.Error()
	}
	e.emit(endEv)
	if err != nil {
		return trace, err
	}
	return trace, nil
}

// blocked lists activities that neither finished nor were skipped;
// callers hold b.mu.
func (e *Engine) blocked(b *board, tr *Trace) []core.ActivityID {
	var out []core.ActivityID
	for _, a := range e.proc.Activities() {
		if b.happened[core.PointOf(a.ID, core.Finish)] == 0 && !b.skipped[a.ID] {
			out = append(out, a.ID)
		}
	}
	return out
}

// runActivity is the per-activity goroutine.
func (e *Engine) runActivity(ctx context.Context, act *core.Activity, b *board, vars *Vars, tr *Trace) {
	guard := e.guardOf(act.ID)

	// Partition incoming edges by gating state.
	var startGate, finishGate []edgeRef
	for _, ref := range e.inEdges[act.ID] {
		if ref.toState == core.Finish {
			finishGate = append(finishGate, ref)
		} else {
			startGate = append(startGate, ref)
		}
	}
	allReleased := func(refs []edgeRef) bool {
		for _, r := range refs {
			if !b.released(r) {
				return false
			}
		}
		return true
	}

	// Phase 1: wait until the guard is decidable; skip on false. A
	// skip commits only after every incoming edge has released —
	// dead-path elimination propagates in graph order, so a skipped
	// activity still interposes between its predecessors and its
	// dependents. Minimization relies on this: an edge is removed when
	// a chain subsumes it in the guard context of its *endpoints*, so
	// the chain must keep ordering even when an intermediate activity
	// is dead. (Same waits as a normal start, so no new deadlock.)
	b.mu.Lock()
	for b.err == nil && !b.guardDecidable(guard) {
		b.cond.Wait()
	}
	if b.err == nil && !guard.Eval(b.outcomes) {
		for b.err == nil && !(allReleased(startGate) && allReleased(finishGate)) {
			b.cond.Wait()
		}
	}
	if b.err != nil {
		b.mu.Unlock()
		return
	}
	if !guard.Eval(b.outcomes) {
		b.skipped[act.ID] = true
		if act.Kind == core.KindDecision {
			b.outcomes[string(act.ID)] = SkippedBranch
		}
		b.seq++
		skipSeq := b.seq
		b.clock++
		stamp := b.clock
		tr.recordSkip(act.ID, skipSeq)
		b.cond.Broadcast()
		b.mu.Unlock()
		if e.m != nil {
			e.m.skipped.Inc()
		}
		e.publish(Note{Activity: act.ID, Kind: NoteSkip, Stamp: stamp, Seq: skipSeq, At: time.Now()})
		e.emit(obs.Event{Kind: obs.EvActivitySkip, Activity: string(act.ID), Seq: skipSeq})
		return
	}

	// Phase 2: wait for the start gate and mutexes.
	mutexIDs := e.mutexes[act.ID]
	mutexesFree := func() bool {
		for _, id := range mutexIDs {
			if b.holders[id] != "" {
				return false
			}
		}
		return true
	}
	workerFree := func() bool {
		return e.opts.Workers <= 0 || b.running < e.opts.Workers
	}
	var blockedSince, slotSince time.Time
	if e.m != nil {
		blockedSince = time.Now()
	}
	for b.err == nil && (!allReleased(startGate) || !mutexesFree() || !workerFree()) {
		// Attribute the wait to the worker cap once it is the only
		// thing holding the activity back.
		if e.m != nil && slotSince.IsZero() && allReleased(startGate) && mutexesFree() && !workerFree() {
			slotSince = time.Now()
		}
		b.cond.Wait()
	}
	if b.err != nil {
		b.mu.Unlock()
		return
	}
	for _, id := range mutexIDs {
		b.holders[id] = act.ID
	}
	b.seq++
	startSeq := b.seq
	b.happened[core.PointOf(act.ID, core.Start)] = startSeq
	b.happened[core.PointOf(act.ID, core.Run)] = startSeq
	b.clock++
	startStamp := b.clock
	b.running++
	if b.running > b.maxRun {
		b.maxRun = b.running
	}
	tr.recordStart(act.ID, startSeq)
	b.cond.Broadcast()
	b.mu.Unlock()
	if e.m != nil {
		e.m.started.Inc()
		e.m.running.Add(1)
		e.m.blocked.ObserveDuration(time.Since(blockedSince))
		if !slotSince.IsZero() {
			e.m.slotWait.ObserveDuration(time.Since(slotSince))
		}
	}
	e.publish(Note{Activity: act.ID, Kind: NoteStart, Stamp: startStamp, Seq: startSeq, At: time.Now()})
	e.emit(obs.Event{Kind: obs.EvActivityStart, Activity: string(act.ID), Seq: startSeq})

	// Phase 3: execute outside the lock, retrying per policy.
	var outcome Outcome
	var execErr error
	if ex, ok := e.execs[act.ID]; ok && ex != nil {
		policy := e.opts.Retry[act.ID]
		attempts := policy.MaxAttempts
		if attempts < 1 {
			attempts = 1
		}
		classify := policy.Classify
		if classify == nil {
			classify = DefaultClassify
		}
		retryStart := time.Now()
		for attempt := 1; attempt <= attempts; attempt++ {
			attemptCtx, cancelAttempt := ctx, context.CancelFunc(nil)
			if policy.PerAttempt > 0 {
				attemptCtx, cancelAttempt = context.WithTimeout(ctx, policy.PerAttempt)
			}
			outcome, execErr = ex(attemptCtx, act, vars)
			if cancelAttempt != nil {
				cancelAttempt()
			}
			if execErr == nil {
				break
			}
			if classify(execErr) == FaultPermanent {
				// Deterministically failing request: retrying burns the
				// budget without changing the outcome.
				break
			}
			if attempt < attempts {
				delay := policy.delay(attempt)
				if policy.Jitter {
					delay = e.rnd.jitter(delay)
				}
				if policy.MaxElapsed > 0 && time.Since(retryStart)+delay > policy.MaxElapsed {
					execErr = fmt.Errorf("%w (retry budget %v exhausted after attempt %d/%d)",
						execErr, policy.MaxElapsed, attempt, attempts)
					break
				}
				tr.recordRetry(act.ID)
				if e.m != nil {
					e.m.retries.Inc()
				}
				e.emit(obs.Event{Kind: obs.EvActivityRetry, Activity: string(act.ID),
					Attempt: attempt, Err: execErr.Error(), DurNS: int64(delay)})
				if delay > 0 {
					select {
					case <-time.After(delay):
					case <-ctx.Done():
					}
				}
				if ctxErr := ctx.Err(); ctxErr != nil {
					// The retry budget was cut short by
					// cancellation/timeout mid-backoff: the context
					// error is the run's real cause, not the last
					// attempt's failure.
					execErr = fmt.Errorf("%w (retry abandoned after attempt %d/%d: %v)",
						ctxErr, attempt, attempts, execErr)
					break
				}
			}
		}
		// The symmetric ordering: the context died while the (final)
		// attempt was executing, and the executor surfaced some other
		// error. Report the context error as the cause.
		if execErr != nil && ctx.Err() != nil && !errors.Is(execErr, ctx.Err()) {
			execErr = fmt.Errorf("%w (last attempt: %v)", ctx.Err(), execErr)
		}
	}

	b.mu.Lock()
	b.running--
	b.cond.Broadcast() // a worker slot freed up
	if e.m != nil {
		e.m.running.Add(-1)
	}
	if execErr != nil {
		b.fail(fmt.Errorf("schedule: activity %s: %w", act.ID, execErr))
		b.mu.Unlock()
		if e.m != nil {
			e.m.failures.Inc()
		}
		e.emit(obs.Event{Kind: obs.EvActivityFail, Activity: string(act.ID), Err: execErr.Error()})
		return
	}
	if act.Kind == core.KindDecision {
		branch := outcome.Branch
		if branch == "" {
			branch = act.BranchDomain()[0]
		}
		ok := false
		for _, v := range act.BranchDomain() {
			if v == branch {
				ok = true
			}
		}
		if !ok {
			b.fail(fmt.Errorf("schedule: decision %s returned branch %q outside domain %v", act.ID, branch, act.BranchDomain()))
			b.mu.Unlock()
			return
		}
		outcome.Branch = branch
	}

	// Phase 4: wait for the finish gate, then publish finish, the
	// decision outcome and mutex releases.
	for b.err == nil && !allReleased(finishGate) {
		b.cond.Wait()
	}
	if b.err != nil {
		b.mu.Unlock()
		return
	}
	b.seq++
	finSeq := b.seq
	b.happened[core.PointOf(act.ID, core.Finish)] = finSeq
	b.clock++
	finStamp := b.clock
	if act.Kind == core.KindDecision {
		b.outcomes[string(act.ID)] = outcome.Branch
	}
	for _, id := range mutexIDs {
		b.holders[id] = ""
	}
	tr.recordFinish(act.ID, finSeq, outcome.Branch)
	b.cond.Broadcast()
	b.mu.Unlock()
	if e.m != nil {
		e.m.finished.Inc()
	}
	e.publish(Note{Activity: act.ID, Kind: NoteFinish, Branch: outcome.Branch,
		Stamp: finStamp, Seq: finSeq, At: time.Now()})
	e.emit(obs.Event{Kind: obs.EvActivityFinish, Activity: string(act.ID),
		Seq: finSeq, Branch: outcome.Branch})
}
