// Decentralized hooks: a partitioned engine owns a subset of the
// process's activities and exchanges committed transitions with its
// peers as Notes. The board carries a Lamport clock — incremented on
// every local commit, advanced to max(local, remote) on every applied
// remote note — so the per-node streams merge into one causally
// consistent global order by stamp.
package schedule

import (
	"time"

	"dscweaver/internal/core"
)

// NoteKind is the transition a note reports.
type NoteKind uint8

const (
	// NoteStart: the activity committed its start (and run) points.
	NoteStart NoteKind = iota + 1
	// NoteFinish: the activity committed its finish point; Branch
	// carries the outcome for decisions.
	NoteFinish
	// NoteSkip: dead-path elimination skipped the activity; every point
	// counts as released for dependents.
	NoteSkip
)

func (k NoteKind) String() string {
	switch k {
	case NoteStart:
		return "start"
	case NoteFinish:
		return "finish"
	case NoteSkip:
		return "skip"
	}
	return "?"
}

// Note is one committed activity transition, as exchanged between
// partitioned engines. Stamp is the committing board's Lamport time;
// Seq its node-local sequence number (a deterministic tiebreak for
// equal stamps across nodes).
type Note struct {
	Activity core.ActivityID `json:"activity"`
	Kind     NoteKind        `json:"kind"`
	Branch   string          `json:"branch,omitempty"`
	Stamp    uint64          `json:"stamp"`
	Seq      int             `json:"seq"`
	At       time.Time       `json:"at"`
}

// owned reports whether this engine executes the activity itself.
func (e *Engine) owned(id core.ActivityID) bool {
	return e.opts.Owned == nil || e.opts.Owned(id)
}

// publish hands a committed local transition to the enactment layer;
// nil-safe. Called outside the board lock, from the goroutine that
// committed the transition, so one activity's notes are ordered.
func (e *Engine) publish(n Note) {
	if e.opts.Publish != nil {
		e.opts.Publish(n)
	}
}

// applyRemote commits a peer's transition onto the local board:
// happened points for gating, outcomes for guard evaluation, skips for
// dead-path release. Idempotent — the enactment layer may deliver a
// broadcast note more than once, and a lossy fabric may retransmit or
// duplicate any note. Returns false when the transition had already
// been applied (the duplicate was absorbed), which the engine counts
// so exactly-once application is observable, not just assumed. The
// remote stamp advances the local clock (Lamport receive); remote
// points get local sequence numbers so edge release stays a nonzero
// test.
func (e *Engine) applyRemote(b *board, n Note) (fresh bool) {
	act, ok := e.proc.Activity(n.Activity)
	if !ok {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if n.Stamp > b.clock {
		b.clock = n.Stamp
	}
	switch n.Kind {
	case NoteStart:
		if b.happened[core.PointOf(n.Activity, core.Start)] == 0 {
			b.seq++
			b.happened[core.PointOf(n.Activity, core.Start)] = b.seq
			b.happened[core.PointOf(n.Activity, core.Run)] = b.seq
			fresh = true
		}
	case NoteFinish:
		if b.happened[core.PointOf(n.Activity, core.Finish)] == 0 {
			b.seq++
			b.happened[core.PointOf(n.Activity, core.Finish)] = b.seq
			fresh = true
		}
		if act.Kind == core.KindDecision && n.Branch != "" {
			b.outcomes[string(n.Activity)] = n.Branch
		}
	case NoteSkip:
		fresh = !b.skipped[n.Activity]
		b.skipped[n.Activity] = true
		if act.Kind == core.KindDecision {
			b.outcomes[string(n.Activity)] = SkippedBranch
		}
	}
	b.cond.Broadcast()
	return fresh
}
