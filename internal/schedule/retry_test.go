// Retry-policy tests: classification (permanent = one attempt),
// exponential backoff with full jitter, the per-attempt timeout and
// the max-elapsed budget. Delay assertions read the event log's DurNS
// field — the delay the engine chose — not wall-clock measurements,
// so the tests stay robust on loaded CI machines.
package schedule

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dscweaver/internal/core"
	"dscweaver/internal/obs"
	"dscweaver/internal/services"
)

// singleSet is a process with one opaque activity "a".
func singleSet() *core.ConstraintSet {
	p := core.NewProcess("retry")
	p.MustAddActivity(&core.Activity{ID: "a", Kind: core.KindOpaque})
	return core.NewConstraintSet(p)
}

// retryDelays extracts the chosen backoff (DurNS) of every retry event
// for one activity, in order.
func retryDelays(sink *obs.MemSink, id string) []time.Duration {
	var out []time.Duration
	for _, e := range sink.Events() {
		if e.Kind == obs.EvActivityRetry && e.Activity == id {
			out = append(out, time.Duration(e.DurNS))
		}
	}
	return out
}

func TestRetryPermanentFaultSingleAttempt(t *testing.T) {
	sc := singleSet()
	var calls atomic.Int32
	boom := errors.New("order rejected")
	execs := map[core.ActivityID]Executor{
		"a": func(ctx context.Context, act *core.Activity, vars *Vars) (Outcome, error) {
			calls.Add(1)
			return Outcome{}, services.Permanent(boom)
		},
	}
	sink := &obs.MemSink{}
	e, err := New(sc, execs, Options{
		Timeout: 5 * time.Second,
		Retry:   map[core.ActivityID]RetryPolicy{"a": {MaxAttempts: 5, Backoff: time.Millisecond}},
		Events:  sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(context.Background())
	if !errors.Is(err, boom) || !errors.Is(err, services.ErrPermanent) {
		t.Fatalf("err = %v, want the permanent fault", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("executor called %d times, want exactly 1 for a permanent fault", got)
	}
	if d := retryDelays(sink, "a"); len(d) != 0 {
		t.Errorf("retry events emitted for a permanent fault: %v", d)
	}
}

func TestRetryTransientExponentialJitteredBounded(t *testing.T) {
	sc := singleSet()
	var calls atomic.Int32
	execs := map[core.ActivityID]Executor{
		"a": func(ctx context.Context, act *core.Activity, vars *Vars) (Outcome, error) {
			calls.Add(1)
			return Outcome{}, fmt.Errorf("flaky backend: %w", services.ErrTransient)
		},
	}
	// MaxAttempts is set far above what the budget allows, so the loop
	// provably ends on MaxElapsed rather than the attempt count.
	policy := RetryPolicy{
		MaxAttempts: 40,
		Backoff:     time.Millisecond,
		Multiplier:  2,
		MaxBackoff:  8 * time.Millisecond,
		Jitter:      true,
		MaxElapsed:  25 * time.Millisecond,
	}
	sink := &obs.MemSink{}
	e, err := New(sc, execs, Options{
		Timeout:   5 * time.Second,
		Retry:     map[core.ActivityID]RetryPolicy{"a": policy},
		RetrySeed: 42,
		Events:    sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(context.Background())
	if !errors.Is(err, services.ErrTransient) {
		t.Fatalf("err = %v, want the transient fault surfaced", err)
	}
	delays := retryDelays(sink, "a")
	if len(delays) == 0 {
		t.Fatal("no retry events recorded")
	}
	if int(calls.Load()) != len(delays)+1 {
		t.Errorf("executor called %d times with %d retries recorded", calls.Load(), len(delays))
	}
	var sum time.Duration
	for k, d := range delays {
		// Unjittered envelope for the delay after attempt k+1.
		bound := policy.delay(k + 1)
		if d < 0 || d > bound {
			t.Errorf("retry %d: delay %v outside jitter envelope [0, %v]", k+1, d, bound)
		}
		sum += d
	}
	if sum > policy.MaxElapsed {
		t.Errorf("emitted delays sum to %v, exceeding the %v budget", sum, policy.MaxElapsed)
	}
	// The loop must have ended on the budget, not by exhausting the
	// generous 40-attempt allowance, and the error must say so.
	if len(delays) >= policy.MaxAttempts-1 {
		t.Errorf("all %d attempts ran; budget never engaged", policy.MaxAttempts)
	}
	if !strings.Contains(err.Error(), "retry budget") {
		t.Errorf("err = %v, want a retry-budget diagnostic", err)
	}
}

// TestRetryExponentialDelaysDeterministic pins the unjittered ladder:
// 1, 2, 4, 8, 8, 8 ms under Backoff=1ms, Multiplier=2, MaxBackoff=8ms.
func TestRetryExponentialDelaysDeterministic(t *testing.T) {
	p := RetryPolicy{Backoff: time.Millisecond, Multiplier: 2, MaxBackoff: 8 * time.Millisecond}
	want := []time.Duration{1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := p.delay(i + 1); got != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	fixed := RetryPolicy{Backoff: 3 * time.Millisecond}
	for i := 1; i <= 4; i++ {
		if got := fixed.delay(i); got != 3*time.Millisecond {
			t.Errorf("fixed delay(%d) = %v, want 3ms (back-compat)", i, got)
		}
	}
}

func TestRetryPerAttemptTimeout(t *testing.T) {
	sc := singleSet()
	var calls atomic.Int32
	execs := map[core.ActivityID]Executor{
		"a": func(ctx context.Context, act *core.Activity, vars *Vars) (Outcome, error) {
			calls.Add(1)
			// A hung backend: only the per-attempt deadline frees us.
			<-ctx.Done()
			return Outcome{}, ctx.Err()
		},
	}
	sink := &obs.MemSink{}
	e, err := New(sc, execs, Options{
		Timeout: 10 * time.Second,
		Retry: map[core.ActivityID]RetryPolicy{"a": {
			MaxAttempts: 3, PerAttempt: 10 * time.Millisecond,
		}},
		Events: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = e.Run(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want per-attempt DeadlineExceeded", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("executor called %d times, want 3 (deadline faults are transient)", got)
	}
	if len(retryDelays(sink, "a")) != 2 {
		t.Errorf("retries = %d, want 2", len(retryDelays(sink, "a")))
	}
	// Run must end on per-attempt deadlines (~30ms), not the 10s run
	// timeout — generous bound for slow CI.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("run took %v; per-attempt timeout did not bound attempts", elapsed)
	}
}

// TestRetryClassifierOverride: a custom classifier can declare any
// error permanent.
func TestRetryClassifierOverride(t *testing.T) {
	sc := singleSet()
	var calls atomic.Int32
	boom := errors.New("boom")
	execs := map[core.ActivityID]Executor{
		"a": func(ctx context.Context, act *core.Activity, vars *Vars) (Outcome, error) {
			calls.Add(1)
			return Outcome{}, boom
		},
	}
	e, err := New(sc, execs, Options{
		Timeout: 5 * time.Second,
		Retry: map[core.ActivityID]RetryPolicy{"a": {
			MaxAttempts: 4,
			Classify:    func(error) FaultClass { return FaultPermanent },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = e.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("executor called %d times, want 1", got)
	}
}
