package schedule

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dscweaver/internal/cond"
	"dscweaver/internal/core"
	"dscweaver/internal/purchasing"
	"dscweaver/internal/services"
)

// chainSet builds a0 → a1 → … over opaque activities.
func chainSet(n int) *core.ConstraintSet {
	p := core.NewProcess("chain")
	for i := 0; i < n; i++ {
		p.MustAddActivity(&core.Activity{ID: core.ActivityID(fmt.Sprintf("a%d", i)), Kind: core.KindOpaque})
	}
	s := core.NewConstraintSet(p)
	for i := 0; i+1 < n; i++ {
		s.Before(core.ActivityID(fmt.Sprintf("a%d", i)), core.ActivityID(fmt.Sprintf("a%d", i+1)), core.Data)
	}
	return s
}

func TestChainRunsInOrder(t *testing.T) {
	sc := chainSet(5)
	e, err := New(sc, nil, Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(sc, nil); err != nil {
		t.Fatal(err)
	}
	recs := tr.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i-1].FinishSeq >= recs[i].StartSeq {
			t.Errorf("chain order violated: %v", recs)
		}
	}
	if got := len(tr.Executed()); got != 5 {
		t.Errorf("executed = %d, want 5", got)
	}
}

func TestParallelismRealized(t *testing.T) {
	// Ten unconstrained activities with real work must overlap.
	p := core.NewProcess("par")
	for i := 0; i < 10; i++ {
		p.MustAddActivity(&core.Activity{ID: core.ActivityID(fmt.Sprintf("w%d", i)), Kind: core.KindOpaque})
	}
	sc := core.NewConstraintSet(p)
	e, err := New(sc, NoopExecutors(p, 20*time.Millisecond, nil), Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxParallel < 4 {
		t.Errorf("MaxParallel = %d, want ≥ 4 for unconstrained activities", tr.MaxParallel)
	}
	if tr.Makespan() > 150*time.Millisecond {
		t.Errorf("makespan = %v, want well under 10×20ms sequential time", tr.Makespan())
	}
}

func TestChainLimitsParallelism(t *testing.T) {
	sc := chainSet(6)
	e, err := New(sc, NoopExecutors(sc.Proc, 5*time.Millisecond, nil), Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxParallel != 1 {
		t.Errorf("MaxParallel = %d, want 1 on a chain", tr.MaxParallel)
	}
}

func TestDeadPathElimination(t *testing.T) {
	p := core.NewProcess("dpe")
	p.MustAddActivity(&core.Activity{ID: "dec", Kind: core.KindDecision})
	p.MustAddActivity(&core.Activity{ID: "t1", Kind: core.KindOpaque})
	p.MustAddActivity(&core.Activity{ID: "t2", Kind: core.KindOpaque})
	p.MustAddActivity(&core.Activity{ID: "join", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	sc.Add(core.Constraint{Rel: core.HappenBefore, From: core.PointOf("dec", core.Finish),
		To: core.PointOf("t1", core.Start), Cond: cond.Lit("dec", "T"), Origins: []core.Dimension{core.Control}})
	sc.Before("t1", "t2", core.Data)
	sc.Before("t2", "join", core.Data)
	sc.Before("dec", "join", core.Cooperation)

	// But t2 must also be guarded: its guard derives from control
	// edges only, and it has none — add the control edge so the guard
	// propagates (as merge of a full catalog would).
	sc.Add(core.Constraint{Rel: core.HappenBefore, From: core.PointOf("dec", core.Finish),
		To: core.PointOf("t2", core.Start), Cond: cond.Lit("dec", "T"), Origins: []core.Dimension{core.Control}})

	execs := NoopExecutors(p, 0, func(core.ActivityID) string { return "F" })
	e, err := New(sc, execs, Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(context.Background())
	if err != nil {
		t.Fatalf("%v\n%s", err, tr)
	}
	if err := tr.Validate(sc, nil); err != nil {
		t.Fatal(err)
	}
	skipped := tr.SkippedActivities()
	if len(skipped) != 2 {
		t.Errorf("skipped = %v, want t1 and t2", skipped)
	}
	if r, _ := tr.Record("join"); r.Skipped {
		t.Error("join was skipped despite unconditional guard")
	}
}

func TestExclusiveNeverOverlaps(t *testing.T) {
	p := core.NewProcess("excl")
	p.MustAddActivity(&core.Activity{ID: "a", Kind: core.KindOpaque})
	p.MustAddActivity(&core.Activity{ID: "b", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	sc.Add(core.Constraint{Rel: core.Exclusive, From: core.PointOf("a", core.Run),
		To: core.PointOf("b", core.Run), Cond: cond.True()})

	var mu sync.Mutex
	running := 0
	maxRunning := 0
	execs := map[core.ActivityID]Executor{}
	for _, id := range []core.ActivityID{"a", "b"} {
		execs[id] = func(ctx context.Context, act *core.Activity, vars *Vars) (Outcome, error) {
			mu.Lock()
			running++
			if running > maxRunning {
				maxRunning = running
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			mu.Lock()
			running--
			mu.Unlock()
			return Outcome{}, nil
		}
	}
	for i := 0; i < 20; i++ {
		e, err := New(sc, execs, Options{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(sc, nil); err != nil {
			t.Fatal(err)
		}
	}
	if maxRunning != 1 {
		t.Errorf("exclusive activities overlapped: max running = %d", maxRunning)
	}
}

func TestStateLevelOverlapConstraint(t *testing.T) {
	// S(survey) → F(close): the §3.2 collectSurvey/closeOrder pattern —
	// closeOrder may not finish until collectSurvey has started.
	p := core.NewProcess("overlap")
	p.MustAddActivity(&core.Activity{ID: "close", Kind: core.KindOpaque})
	p.MustAddActivity(&core.Activity{ID: "survey", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	sc.Add(core.Constraint{Rel: core.HappenBefore, From: core.PointOf("survey", core.Start),
		To: core.PointOf("close", core.Finish), Cond: cond.True(), Origins: []core.Dimension{core.Cooperation}})
	for i := 0; i < 10; i++ {
		e, err := New(sc, NoopExecutors(p, time.Millisecond, nil), Options{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(sc, nil); err != nil {
			t.Fatal(err)
		}
		cl, _ := tr.Record("close")
		sv, _ := tr.Record("survey")
		if cl.FinishSeq < sv.StartSeq {
			t.Fatalf("close finished (%d) before survey started (%d)", cl.FinishSeq, sv.StartSeq)
		}
	}
}

func TestTimeoutReportsBlocked(t *testing.T) {
	// A receive-like executor that never completes, to exercise the
	// watchdog path.
	p := core.NewProcess("stuck")
	p.MustAddActivity(&core.Activity{ID: "waiter", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	execs := map[core.ActivityID]Executor{
		"waiter": func(ctx context.Context, act *core.Activity, vars *Vars) (Outcome, error) {
			<-ctx.Done()
			return Outcome{}, ctx.Err()
		},
	}
	e, err := New(sc, execs, Options{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "waiter") {
		t.Errorf("err = %v, want blocked-activity diagnostic", err)
	}
}

func TestRetryPostponesDependents(t *testing.T) {
	// §3.2: an exception at invProduction_ss postpones replyClient_oi
	// until fixed. Modeled as prod → reply with prod failing twice
	// before succeeding under a retry policy.
	p := core.NewProcess("retry")
	p.MustAddActivity(&core.Activity{ID: "prod", Kind: core.KindOpaque})
	p.MustAddActivity(&core.Activity{ID: "reply", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	sc.Before("prod", "reply", core.Cooperation)

	failures := 2
	execs := map[core.ActivityID]Executor{
		"prod": func(ctx context.Context, act *core.Activity, vars *Vars) (Outcome, error) {
			if failures > 0 {
				failures--
				return Outcome{}, errors.New("production exception")
			}
			return Outcome{}, nil
		},
	}
	e, err := New(sc, execs, Options{
		Timeout: 5 * time.Second,
		Retry:   map[core.ActivityID]RetryPolicy{"prod": {MaxAttempts: 3, Backoff: time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(context.Background())
	if err != nil {
		t.Fatalf("run failed despite retry budget: %v", err)
	}
	if err := tr.Validate(sc, nil); err != nil {
		t.Fatal(err)
	}
	prod, _ := tr.Record("prod")
	if prod.Retries != 2 {
		t.Errorf("retries = %d, want 2", prod.Retries)
	}
	reply, _ := tr.Record("reply")
	if reply.StartSeq < prod.FinishSeq {
		t.Error("reply not postponed past the recovered activity")
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	p := core.NewProcess("exhaust")
	p.MustAddActivity(&core.Activity{ID: "a", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	boom := errors.New("permanent")
	execs := map[core.ActivityID]Executor{
		"a": func(ctx context.Context, act *core.Activity, vars *Vars) (Outcome, error) {
			return Outcome{}, boom
		},
	}
	e, err := New(sc, execs, Options{
		Timeout: time.Second,
		Retry:   map[core.ActivityID]RetryPolicy{"a": {MaxAttempts: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err == nil || !errors.Is(err, boom) {
		t.Errorf("err = %v, want the permanent failure after 3 attempts", err)
	}
}

func TestExecutorErrorPropagates(t *testing.T) {
	sc := chainSet(3)
	boom := errors.New("boom")
	execs := map[core.ActivityID]Executor{
		"a1": func(ctx context.Context, act *core.Activity, vars *Vars) (Outcome, error) {
			return Outcome{}, boom
		},
	}
	e, err := New(sc, execs, Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(context.Background())
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestInvalidBranchRejected(t *testing.T) {
	p := core.NewProcess("badbranch")
	p.MustAddActivity(&core.Activity{ID: "dec", Kind: core.KindDecision})
	sc := core.NewConstraintSet(p)
	execs := NoopExecutors(p, 0, func(core.ActivityID) string { return "MAYBE" })
	e, err := New(sc, execs, Options{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "outside domain") {
		t.Errorf("err = %v", err)
	}
}

func TestNewRejectsCycles(t *testing.T) {
	p := core.NewProcess("cycle")
	p.MustAddActivity(&core.Activity{ID: "a", Kind: core.KindOpaque})
	p.MustAddActivity(&core.Activity{ID: "b", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	sc.Before("a", "b", core.Data)
	sc.Before("b", "a", core.Data)
	if _, err := New(sc, nil, Options{}); err == nil {
		t.Error("New accepted a cyclic constraint set")
	}
}

func TestNewRejectsServiceNodesAndHappenTogether(t *testing.T) {
	p := core.NewProcess("bad")
	p.MustAddService(&core.Service{Name: "S", Ports: []string{"1"}})
	p.MustAddActivity(&core.Activity{ID: "a", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	sc.Add(core.Constraint{Rel: core.HappenBefore, From: core.PointOf("a", core.Finish),
		To: core.Point{Node: core.ServiceNode("S", "1"), State: core.Start}, Cond: cond.True()})
	if _, err := New(sc, nil, Options{}); err == nil {
		t.Error("New accepted external nodes")
	}
	sc2 := core.NewConstraintSet(p)
	sc2.Add(core.Constraint{Rel: core.HappenTogether, From: core.PointOf("a", core.Finish),
		To: core.PointOf("a", core.Start), Cond: cond.True()})
	if _, err := New(sc2, nil, Options{}); err == nil {
		t.Error("New accepted HappenTogether")
	}
}

// --- purchasing end-to-end ---

// runPurchasing executes the minimal constraint set against the
// simulated services and returns the trace.
func runPurchasing(t *testing.T, approve bool) *Trace {
	t.Helper()
	_, asc, res, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	guards, err := core.DeriveGuards(asc)
	if err != nil {
		t.Fatal(err)
	}
	bus := services.NewBus(0)
	if err := services.RegisterPurchasing(bus, time.Millisecond, approve); err != nil {
		t.Fatal(err)
	}
	binding := NewBinding(bus)
	// Per-activity work makes the parallel subprocesses overlap
	// reliably, so MaxParallel reflects real concurrency.
	execs := binding.Executors(asc.Proc, 2*time.Millisecond)
	e, err := New(res.Minimal, execs, Options{
		Timeout: 10 * time.Second,
		Guards:  guards,
		Inputs:  map[string]any{"po": "po-42"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(context.Background())
	if err != nil {
		t.Fatalf("%v\n%s", err, tr)
	}
	bus.Close()
	binding.Close()
	if err := tr.Validate(asc, guards); err != nil {
		t.Fatalf("trace violates the full ASC: %v\n%s", err, tr)
	}
	_, faults := bus.Stats()
	if faults != 0 {
		t.Fatalf("bus recorded %d faults", faults)
	}
	return tr
}

func TestPurchasingApprovedEndToEnd(t *testing.T) {
	tr := runPurchasing(t, true)
	if skipped := tr.SkippedActivities(); len(skipped) != 1 || skipped[0] != purchasing.SetOi {
		t.Errorf("skipped = %v, want only set_oi", skipped)
	}
	oi, ok := tr.FinalVars["oi"]
	if !ok || !strings.Contains(fmt.Sprint(oi), "invoice") {
		t.Errorf("final oi = %v", oi)
	}
	// The minimal set still realizes parallelism across subprocesses.
	if tr.MaxParallel < 2 {
		t.Errorf("MaxParallel = %d, want ≥ 2", tr.MaxParallel)
	}
}

func TestPurchasingDeclinedEndToEnd(t *testing.T) {
	tr := runPurchasing(t, false)
	// The entire T branch is dead: 8 activities skipped.
	if skipped := tr.SkippedActivities(); len(skipped) != 8 {
		t.Errorf("skipped = %v, want the 8 T-branch activities", skipped)
	}
	if r, _ := tr.Record(purchasing.SetOi); r == nil || r.Skipped {
		t.Error("set_oi did not run on the F branch")
	}
	if r, _ := tr.Record(purchasing.ReplyClientOi); r == nil || r.Skipped {
		t.Error("replyClient_oi did not run")
	}
}

func TestPurchasingWithoutServiceConstraintViolatesConversation(t *testing.T) {
	// Drop the service-derived invPurchase_po → invPurchase_si
	// constraint (the paper's Purchase₁ →s Purchase₂) and force the
	// scheduler into the bad interleaving by making port-1 invocation
	// slow: the state-aware Purchase service then sees the shipping
	// invoice first and fails the conversation. This is §3.2's
	// motivation for the service dimension, demonstrated end to end.
	_, asc, res, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	guards, err := core.DeriveGuards(asc)
	if err != nil {
		t.Fatal(err)
	}
	broken := core.NewConstraintSet(res.Minimal.Proc)
	for _, c := range res.Minimal.Constraints() {
		if c.From.Node.Activity == purchasing.InvPurchasePo && c.To.Node.Activity == purchasing.InvPurchaseSi {
			continue
		}
		broken.Add(c)
	}

	bus := services.NewBus(0)
	if err := services.RegisterPurchasing(bus, 0, true); err != nil {
		t.Fatal(err)
	}
	binding := NewBinding(bus)
	execs := binding.Executors(asc.Proc, 0)
	// Delay the port-1 invocation so port 2 reliably overtakes it.
	slow := execs[purchasing.InvPurchasePo]
	execs[purchasing.InvPurchasePo] = func(ctx context.Context, a *core.Activity, vars *Vars) (Outcome, error) {
		time.Sleep(30 * time.Millisecond)
		return slow(ctx, a, vars)
	}
	e, err := New(broken, execs, Options{
		Timeout: 5 * time.Second,
		Guards:  guards,
		Inputs:  map[string]any{"po": "po-42"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := e.Run(context.Background())
	bus.Close()
	binding.Close()
	_, faults := bus.Stats()
	if runErr == nil && faults == 0 {
		t.Fatal("dropping the service constraint did not surface a conversation failure")
	}
	if runErr != nil && !errors.Is(runErr, services.ErrOutOfOrder) && faults == 0 {
		t.Errorf("unexpected error kind: %v", runErr)
	}
}
