package schedule

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dscweaver/internal/cond"
	"dscweaver/internal/core"
)

// Record is one activity's execution summary.
type Record struct {
	Activity core.ActivityID
	Skipped  bool
	// Branch is the decision outcome ("" for non-decisions).
	Branch string
	// Retries counts failed attempts that were retried (§3.2's
	// postponed-until-fixed recovery).
	Retries int
	// StartSeq and FinishSeq are global event sequence numbers; the
	// trace validator compares them against the constraints.
	StartSeq  int
	FinishSeq int
	StartAt   time.Time
	FinishAt  time.Time
}

// Trace is the outcome of one engine run.
type Trace struct {
	mu      sync.Mutex
	records map[core.ActivityID]*Record
	order   []core.ActivityID

	// Process names the process the trace belongs to.
	Process string
	Began   time.Time
	Ended   time.Time
	// MaxParallel is the peak number of concurrently executing
	// activities — the realized-concurrency metric of the benches.
	MaxParallel int
	// FinalVars snapshots the variable store at completion.
	FinalVars map[string]any
}

func newTrace(p *core.Process) *Trace {
	return &Trace{records: map[core.ActivityID]*Record{}, Process: p.Name, Began: time.Now()}
}

func (t *Trace) rec(id core.ActivityID) *Record {
	r, ok := t.records[id]
	if !ok {
		r = &Record{Activity: id}
		t.records[id] = r
		t.order = append(t.order, id)
	}
	return r
}

func (t *Trace) recordStart(id core.ActivityID, seq int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.rec(id)
	r.StartSeq = seq
	r.StartAt = time.Now()
}

func (t *Trace) recordFinish(id core.ActivityID, seq int, branch string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.rec(id)
	r.FinishSeq = seq
	r.FinishAt = time.Now()
	r.Branch = branch
}

func (t *Trace) recordRetry(id core.ActivityID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rec(id).Retries++
}

func (t *Trace) recordSkip(id core.ActivityID, seq int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.rec(id)
	r.Skipped = true
	r.StartSeq = seq
	r.FinishSeq = seq
}

func (t *Trace) finish(vars *Vars) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Ended = time.Now()
	t.FinalVars = vars.Snapshot()
}

// Record returns an activity's record.
func (t *Trace) Record(id core.ActivityID) (*Record, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.records[id]
	if !ok {
		return nil, false
	}
	cp := *r
	return &cp, true
}

// Records returns all records sorted by start sequence.
func (t *Trace) Records() []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, 0, len(t.records))
	for _, id := range t.order {
		out = append(out, *t.records[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartSeq < out[j].StartSeq })
	return out
}

// Executed returns the ids of activities that ran (not skipped),
// sorted by start sequence.
func (t *Trace) Executed() []core.ActivityID {
	var out []core.ActivityID
	for _, r := range t.Records() {
		if !r.Skipped && r.StartSeq > 0 {
			out = append(out, r.Activity)
		}
	}
	return out
}

// SkippedActivities returns the ids eliminated by dead paths.
func (t *Trace) SkippedActivities() []core.ActivityID {
	var out []core.ActivityID
	for _, r := range t.Records() {
		if r.Skipped {
			out = append(out, r.Activity)
		}
	}
	return out
}

// Makespan is the wall-clock duration of the run.
func (t *Trace) Makespan() time.Duration { return t.Ended.Sub(t.Began) }

// Outcomes returns the decision outcomes observed in the trace
// (skipped decisions map to SkippedBranch).
func (t *Trace) Outcomes() map[string]string {
	out := map[string]string{}
	for _, r := range t.Records() {
		if r.Branch != "" {
			out[string(r.Activity)] = r.Branch
		}
		if r.Skipped {
			out[string(r.Activity)] = SkippedBranch
		}
	}
	// Only decisions matter; non-decisions never set Branch, and the
	// skip entries for non-decisions are harmless to guard evaluation.
	return out
}

// condHolds evaluates a constraint condition under the observed
// decision outcomes; unresolved decisions make literals false.
func condHolds(c cond.Expr, outcomes map[string]string) bool {
	return c.Eval(outcomes)
}

// Validate checks the trace against a constraint set and guard map:
//
//   - every HappenBefore constraint whose endpoints both executed and
//     whose condition holds under the observed outcomes was respected
//     (source point sequence < target point sequence);
//   - Exclusive activities never overlapped;
//   - an activity was skipped exactly when its guard evaluates false.
//
// A nil guards map derives guards from the set itself.
func (t *Trace) Validate(sc *core.ConstraintSet, guards map[core.Node]cond.Expr) error {
	if guards == nil {
		g, err := core.DeriveGuards(sc)
		if err != nil {
			return err
		}
		guards = g
	}
	outcomes := t.Outcomes()

	seqOf := func(p core.Point) (int, bool) {
		r, ok := t.Record(p.Node.Activity)
		if !ok || r.Skipped || r.StartSeq == 0 {
			return 0, false
		}
		if p.State == core.Finish {
			return r.FinishSeq, r.FinishSeq > 0
		}
		return r.StartSeq, true
	}

	for _, c := range sc.Constraints() {
		switch c.Rel {
		case core.HappenBefore:
			if !condHolds(c.Cond, outcomes) {
				continue
			}
			from, okF := seqOf(c.From)
			to, okT := seqOf(c.To)
			if !okF || !okT {
				continue // a skipped endpoint vacates the constraint
			}
			if from >= to {
				return fmt.Errorf("trace: constraint %s violated (seq %d ≥ %d)", c, from, to)
			}
		case core.Exclusive:
			a, okA := t.Record(c.From.Node.Activity)
			bRec, okB := t.Record(c.To.Node.Activity)
			if !okA || !okB || a.Skipped || bRec.Skipped || a.StartSeq == 0 || bRec.StartSeq == 0 {
				continue
			}
			if a.StartSeq < bRec.FinishSeq && bRec.StartSeq < a.FinishSeq {
				return fmt.Errorf("trace: exclusive activities %s and %s overlapped", a.Activity, bRec.Activity)
			}
		}
	}

	// Life-cycle consistency: an executed activity starts before it
	// finishes.
	for _, r := range t.Records() {
		if !r.Skipped && r.StartSeq > 0 && r.FinishSeq > 0 && r.StartSeq >= r.FinishSeq {
			return fmt.Errorf("trace: activity %s finishes (%d) no later than it starts (%d)",
				r.Activity, r.FinishSeq, r.StartSeq)
		}
	}

	// Skip correctness.
	for _, r := range t.Records() {
		g := cond.True()
		if gg, ok := guards[core.ActivityNode(r.Activity)]; ok {
			g = gg
		}
		decidable := true
		for _, d := range g.Decisions() {
			if _, ok := outcomes[d]; !ok {
				decidable = false
			}
		}
		if !decidable {
			return fmt.Errorf("trace: guard of %s not decidable from outcomes %v", r.Activity, outcomes)
		}
		want := g.Eval(outcomes)
		if want == r.Skipped {
			return fmt.Errorf("trace: activity %s skipped=%v but guard %v evaluates %v under %v",
				r.Activity, r.Skipped, g, want, outcomes)
		}
	}
	return nil
}

// Gantt renders an ASCII timeline of the trace in event-sequence
// units: one row per activity, '#' while running, '·' while waiting
// between start and the global end, 'x' for skipped activities.
func (t *Trace) Gantt() string {
	recs := t.Records()
	maxSeq := 0
	for _, r := range recs {
		if r.FinishSeq > maxSeq {
			maxSeq = r.FinishSeq
		}
	}
	if maxSeq == 0 {
		return ""
	}
	var b strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&b, "%-24s|", r.Activity)
		if r.Skipped {
			for i := 1; i <= maxSeq; i++ {
				if i == r.StartSeq {
					b.WriteByte('x')
				} else {
					b.WriteByte(' ')
				}
			}
		} else {
			for i := 1; i <= maxSeq; i++ {
				switch {
				case i >= r.StartSeq && i <= r.FinishSeq && r.FinishSeq > 0:
					b.WriteByte('#')
				case i >= r.StartSeq && r.FinishSeq == 0:
					b.WriteByte('·')
				default:
					b.WriteByte(' ')
				}
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// String renders the trace for debugging.
func (t *Trace) String() string {
	var out string
	for _, r := range t.Records() {
		status := "ran"
		if r.Skipped {
			status = "skipped"
		}
		out += fmt.Sprintf("%-20s %-7s start=%d finish=%d", r.Activity, status, r.StartSeq, r.FinishSeq)
		if r.Branch != "" {
			out += " branch=" + r.Branch
		}
		out += "\n"
	}
	return out
}
