package schedule

import (
	"fmt"

	"dscweaver/internal/core"
	"dscweaver/internal/obs"
)

// TraceFromEvents reconstructs an execution trace from the engine's
// lifecycle event stream (obs.LayerEngine events as emitted under
// Options.Events, e.g. read back from a JSONL log with
// obs.ReadJSONL). The rebuilt trace carries the same sequence
// numbers, branches, skips and retry counts as the live one, so it
// validates against the constraint set — the event log is a second,
// replayable export format next to Trace.MarshalJSON.
//
// Events from other layers are ignored; the stream may therefore be a
// merged process-wide log. An event stream with no run_begin is
// rejected, as are activity events without a sequence number.
func TraceFromEvents(events []obs.Event) (*Trace, error) {
	t := &Trace{records: map[core.ActivityID]*Record{}}
	sawBegin := false
	for _, e := range events {
		if e.Layer != obs.LayerEngine {
			continue
		}
		id := core.ActivityID(e.Activity)
		switch e.Kind {
		case obs.EvRunBegin:
			sawBegin = true
			t.Process = e.Detail
			t.Began = e.Wall
		case obs.EvRunEnd:
			t.Ended = e.Wall
			t.MaxParallel = int(e.Value)
		case obs.EvActivityStart:
			if e.Seq == 0 {
				return nil, fmt.Errorf("schedule: start event for %s without sequence number", e.Activity)
			}
			r := t.rec(id)
			r.StartSeq = e.Seq
			r.StartAt = e.Wall
		case obs.EvActivityFinish:
			if e.Seq == 0 {
				return nil, fmt.Errorf("schedule: finish event for %s without sequence number", e.Activity)
			}
			r := t.rec(id)
			r.FinishSeq = e.Seq
			r.FinishAt = e.Wall
			r.Branch = e.Branch
		case obs.EvActivitySkip:
			if e.Seq == 0 {
				return nil, fmt.Errorf("schedule: skip event for %s without sequence number", e.Activity)
			}
			r := t.rec(id)
			r.Skipped = true
			r.StartSeq = e.Seq
			r.FinishSeq = e.Seq
		case obs.EvActivityRetry:
			t.rec(id).Retries++
		}
	}
	if !sawBegin {
		return nil, fmt.Errorf("schedule: event stream has no %s event", obs.EvRunBegin)
	}
	return t, nil
}
