package schedule

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"dscweaver/internal/cond"
	"dscweaver/internal/core"
)

func TestWorkersCapParallelism(t *testing.T) {
	p := core.NewProcess("capped")
	for i := 0; i < 8; i++ {
		p.MustAddActivity(&core.Activity{ID: core.ActivityID(fmt.Sprintf("w%d", i)), Kind: core.KindOpaque})
	}
	sc := core.NewConstraintSet(p)
	for _, workers := range []int{1, 2, 4} {
		e, err := New(sc, NoopExecutors(p, 5*time.Millisecond, nil), Options{
			Timeout: 30 * time.Second,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if tr.MaxParallel > workers {
			t.Errorf("workers=%d: MaxParallel = %d", workers, tr.MaxParallel)
		}
		if err := tr.Validate(sc, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWorkersMakespanScales(t *testing.T) {
	// 8 independent 10ms activities: 1 worker ≈ 80ms, 8 workers ≈ 10ms.
	p := core.NewProcess("scal")
	for i := 0; i < 8; i++ {
		p.MustAddActivity(&core.Activity{ID: core.ActivityID(fmt.Sprintf("w%d", i)), Kind: core.KindOpaque})
	}
	sc := core.NewConstraintSet(p)
	run := func(workers int) time.Duration {
		e, err := New(sc, NoopExecutors(p, 10*time.Millisecond, nil), Options{
			Timeout: 30 * time.Second, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return tr.Makespan()
	}
	serial := run(1)
	wide := run(8)
	if serial < 3*wide {
		t.Errorf("1 worker %v vs 8 workers %v: expected ≥ 3× separation", serial, wide)
	}
}

func TestGanttRendering(t *testing.T) {
	sc := chainSet(3)
	e, err := New(sc, nil, Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g := tr.Gantt()
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt rows = %d:\n%s", len(lines), g)
	}
	// Chain: each row's '#' block starts after the previous one ends.
	prevEnd := -1
	for _, line := range lines {
		start := strings.IndexByte(line, '#')
		end := strings.LastIndexByte(line, '#')
		if start < 0 {
			t.Fatalf("row without execution: %q", line)
		}
		if start <= prevEnd {
			t.Errorf("gantt rows overlap on a chain:\n%s", g)
		}
		prevEnd = end
	}
}

func TestGanttMarksSkipped(t *testing.T) {
	p := core.NewProcess("skip")
	p.MustAddActivity(&core.Activity{ID: "dec", Kind: core.KindDecision})
	p.MustAddActivity(&core.Activity{ID: "dead", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	sc.Add(core.Constraint{Rel: core.HappenBefore, From: core.PointOf("dec", core.Finish),
		To: core.PointOf("dead", core.Start), Cond: cond.Lit("dec", "T"), Origins: []core.Dimension{core.Control}})
	e, err := New(sc, NoopExecutors(p, 0, func(core.ActivityID) string { return "F" }), Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Gantt(), "x") {
		t.Errorf("skipped activity not marked:\n%s", tr.Gantt())
	}
}
