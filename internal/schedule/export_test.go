package schedule

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"dscweaver/internal/core"
	"dscweaver/internal/purchasing"
)

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := runPurchasing(t, true)
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"activity":"if_au"`) {
		t.Errorf("serialized trace missing activity records:\n%.300s", data)
	}
	back, err := LoadTraceJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	// The replayed trace still validates against the full ASC.
	_, asc, _, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	guards, err := core.DeriveGuards(asc)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(asc, guards); err != nil {
		t.Fatalf("replayed trace invalid: %v", err)
	}
	if back.MaxParallel != tr.MaxParallel {
		t.Errorf("MaxParallel = %d, want %d", back.MaxParallel, tr.MaxParallel)
	}
	r1, _ := tr.Record(purchasing.IfAu)
	r2, _ := back.Record(purchasing.IfAu)
	if r1.Branch != r2.Branch || r1.StartSeq != r2.StartSeq {
		t.Errorf("record drift: %+v vs %+v", r1, r2)
	}
}

func TestLoadTraceJSONErrors(t *testing.T) {
	if _, err := LoadTraceJSON([]byte("{broken")); err == nil {
		t.Error("malformed JSON accepted")
	}
	dup := `{"records":[{"activity":"a","start_seq":1,"finish_seq":2},{"activity":"a","start_seq":3,"finish_seq":4}]}`
	if _, err := LoadTraceJSON([]byte(dup)); err == nil {
		t.Error("duplicate records accepted")
	}
}

func TestTraceJSONDetectsTamperedOrder(t *testing.T) {
	sc := chainSet(3)
	e, err := New(sc, nil, Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Pull a2's start before a1's finish: the replayed trace must
	// fail validation.
	tampered := strings.Replace(string(data), `"start_seq":5`, `"start_seq":1`, 1)
	back, err := LoadTraceJSON([]byte(tampered))
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(sc, nil); err == nil {
		t.Error("tampered trace passed validation")
	}
}
