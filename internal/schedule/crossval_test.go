package schedule

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dscweaver/internal/cond"
	"dscweaver/internal/core"
	"dscweaver/internal/petri"
	"dscweaver/internal/workload"
)

// TestQuickEngineAgreesWithPetriValidator cross-validates the two
// implementations of the scheduling semantics: for random generated
// workloads (with decisions, shortcuts and random branch outcomes),
// the Petri-net validator must report the constraint set sound, the
// engine must complete without deadlock under every random branch
// assignment tried, and the trace must satisfy the full constraint
// set.
func TestQuickEngineAgreesWithPetriValidator(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		layers := 3 + r.Intn(3)
		width := 1 + r.Intn(3)
		w := workload.Layered(layers, width, 0.4, seed).
			WithShortcuts(r.Intn(6)).
			WithDecisions(r.Intn(2))
		sc, err := w.Constraints()
		if err != nil {
			return false
		}
		res, err := core.Minimize(sc)
		if err != nil {
			return false
		}

		rep, err := petri.Validate(context.Background(), res.Minimal, res.Guards)
		if err != nil || !rep.Sound {
			t.Logf("seed %d: petri validator rejects minimal set: %v %+v", seed, err, rep)
			return false
		}

		branch := func(core.ActivityID) string {
			if r.Intn(2) == 0 {
				return "T"
			}
			return "F"
		}
		for trial := 0; trial < 3; trial++ {
			eng, err := New(res.Minimal, NoopExecutors(sc.Proc, 0, branch), Options{
				Guards:  res.Guards,
				Timeout: 10 * time.Second,
			})
			if err != nil {
				return false
			}
			tr, err := eng.Run(context.Background())
			if err != nil {
				t.Logf("seed %d trial %d: engine failed: %v\n%s", seed, trial, err, tr)
				return false
			}
			if err := tr.Validate(sc, res.Guards); err != nil {
				t.Logf("seed %d trial %d: trace invalid: %v", seed, trial, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestEngineRejectsWhatPetriRejects: a deliberately unsound set (a
// happen-before cycle hidden behind state-level points) is caught by
// both implementations.
func TestEngineRejectsWhatPetriRejects(t *testing.T) {
	p := core.NewProcess("unsound")
	p.MustAddActivity(&core.Activity{ID: "a", Kind: core.KindOpaque})
	p.MustAddActivity(&core.Activity{ID: "b", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	add := func(fs core.State, from core.ActivityID, ts core.State, to core.ActivityID) {
		sc.Add(core.Constraint{Rel: core.HappenBefore,
			From: core.PointOf(from, fs), To: core.PointOf(to, ts),
			Cond: cond.True(), Origins: []core.Dimension{core.Cooperation}})
	}
	add(core.Finish, "a", core.Start, "b")
	add(core.Start, "b", core.Finish, "a")

	// F(a)→S(b) and S(b)→F(a) form a 2-cycle in the point graph; both
	// front ends must reject it at design time.
	if _, err := New(sc, nil, Options{Timeout: time.Second}); err == nil {
		t.Error("engine accepted a cyclic point graph")
	}
	if _, err := core.Minimize(sc); err == nil {
		t.Error("optimizer accepted a cyclic point graph")
	}
}

// TestSchedulerRealizesAntichainWidth checks the concurrency metric
// against graph theory: for a fan workload, the engine's peak
// parallelism equals the DAG's antichain width.
func TestSchedulerRealizesAntichainWidth(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		w := workload.Fan(n, 1)
		sc, err := w.Constraints()
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(sc, NoopExecutors(sc.Proc, 10*time.Millisecond, nil), Options{Timeout: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := eng.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if tr.MaxParallel != n {
			t.Errorf("fan(%d): MaxParallel = %d, want %d", n, tr.MaxParallel, n)
		}
	}
}
