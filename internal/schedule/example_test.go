package schedule_test

import (
	"context"
	"fmt"
	"time"

	"dscweaver/internal/core"
	"dscweaver/internal/schedule"
)

// ExampleEngine runs a fork–join process directly from its constraint
// set: no sequencing constructs, just dependencies.
func ExampleEngine() {
	proc := core.NewProcess("forkjoin")
	for _, id := range []core.ActivityID{"split", "left", "right", "join"} {
		proc.MustAddActivity(&core.Activity{ID: id, Kind: core.KindOpaque})
	}
	sc := core.NewConstraintSet(proc)
	sc.Before("split", "left", core.Data)
	sc.Before("split", "right", core.Data)
	sc.Before("left", "join", core.Data)
	sc.Before("right", "join", core.Data)

	eng, err := schedule.New(sc, schedule.NoopExecutors(proc, time.Millisecond, nil), schedule.Options{})
	if err != nil {
		panic(err)
	}
	tr, err := eng.Run(context.Background())
	if err != nil {
		panic(err)
	}
	if err := tr.Validate(sc, nil); err != nil {
		panic(err)
	}
	first := tr.Records()[0]
	last := tr.Records()[len(tr.Records())-1]
	fmt.Printf("first=%s last=%s executed=%d\n", first.Activity, last.Activity, len(tr.Executed()))
	// Output:
	// first=split last=join executed=4
}
