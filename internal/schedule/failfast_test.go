package schedule

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"dscweaver/internal/chaos/leak"
	"dscweaver/internal/core"
)

// failFastSet builds the fail-fast scenario: "boom" fails immediately,
// "dependent" waits on boom's finish, and "stuck" is unconstrained but
// its executor parks on ctx (a service receive whose callback never
// arrives once the conversation died).
func failFastSet() (*core.ConstraintSet, map[core.ActivityID]Executor) {
	p := core.NewProcess("failfast")
	p.MustAddActivity(&core.Activity{ID: "boom", Kind: core.KindOpaque})
	p.MustAddActivity(&core.Activity{ID: "dependent", Kind: core.KindOpaque})
	p.MustAddActivity(&core.Activity{ID: "stuck", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	sc.Before("boom", "dependent", core.Data)
	execs := map[core.ActivityID]Executor{
		"boom": func(ctx context.Context, _ *core.Activity, _ *Vars) (Outcome, error) {
			return Outcome{}, errors.New("injected failure")
		},
		"dependent": func(ctx context.Context, _ *core.Activity, _ *Vars) (Outcome, error) {
			return Outcome{}, nil
		},
		"stuck": func(ctx context.Context, _ *core.Activity, _ *Vars) (Outcome, error) {
			<-ctx.Done() // a receive that never gets its callback
			return Outcome{}, fmt.Errorf("stuck: %w", ctx.Err())
		},
	}
	return sc, execs
}

// TestFailFastTerminatesWellBeforeTimeout is the regression test for
// the fail-fast path: one failing activity must terminate the run —
// including constraint-blocked waiters and in-flight executors parked
// on ctx — promptly, not after Options.Timeout.
func TestFailFastTerminatesWellBeforeTimeout(t *testing.T) {
	const timeout = 30 * time.Second
	sc, execs := failFastSet()
	e, err := New(sc, execs, Options{Timeout: timeout})
	if err != nil {
		t.Fatal(err)
	}
	began := time.Now()
	tr, err := e.Run(context.Background())
	elapsed := time.Since(began)
	if err == nil {
		t.Fatalf("run succeeded despite failing activity:\n%s", tr)
	}
	if !strings.Contains(err.Error(), "injected failure") {
		t.Errorf("error does not name the root cause: %v", err)
	}
	if elapsed > timeout/10 {
		t.Fatalf("run took %v — not fail-fast against a %v timeout", elapsed, timeout)
	}
	// The dependent never started; the trace stays partial but valid.
	if r, ok := tr.Record("dependent"); ok && r.StartSeq != 0 {
		t.Errorf("dependent started after upstream failure: %+v", r)
	}
}

// TestFailFastKeepsFirstError checks that secondary failures (executors
// unwound by the fail-fast cancel) do not displace the root cause.
func TestFailFastKeepsFirstError(t *testing.T) {
	sc, execs := failFastSet()
	e, err := New(sc, execs, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "activity boom") {
		t.Fatalf("first failure not reported: %v", err)
	}
	if strings.Contains(err.Error(), "activity stuck") {
		t.Errorf("secondary cancellation error displaced the root cause: %v", err)
	}
}

// TestRetryReportsCancelMidBackoff covers the first ordering of the
// retry/context race: the caller cancels while the engine sleeps
// between attempts. The run error must be the context error, with the
// abandoned attempt's failure as context.
func TestRetryReportsCancelMidBackoff(t *testing.T) {
	p := core.NewProcess("retry")
	p.MustAddActivity(&core.Activity{ID: "flaky", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	execs := map[core.ActivityID]Executor{
		"flaky": func(ctx context.Context, _ *core.Activity, _ *Vars) (Outcome, error) {
			return Outcome{}, errors.New("flaky failure")
		},
	}
	e, err := New(sc, execs, Options{
		Timeout: 30 * time.Second,
		Retry:   map[core.ActivityID]RetryPolicy{"flaky": {MaxAttempts: 5, Backoff: 10 * time.Second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	began := time.Now()
	_, err = e.Run(ctx)
	if elapsed := time.Since(began); elapsed > 2*time.Second {
		t.Fatalf("cancel mid-backoff took %v to surface", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled as the cause", err)
	}
	if !strings.Contains(err.Error(), "flaky failure") {
		t.Errorf("abandoned attempt's error lost: %v", err)
	}
}

// TestRetryReportsTimeoutMidBackoff is the same ordering under the
// engine's own deadline: the error must be the timeout, not the last
// executor failure.
func TestRetryReportsTimeoutMidBackoff(t *testing.T) {
	p := core.NewProcess("retry")
	p.MustAddActivity(&core.Activity{ID: "flaky", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	execs := map[core.ActivityID]Executor{
		"flaky": func(ctx context.Context, _ *core.Activity, _ *Vars) (Outcome, error) {
			return Outcome{}, errors.New("flaky failure")
		},
	}
	e, err := New(sc, execs, Options{
		Timeout: 50 * time.Millisecond,
		Retry:   map[core.ActivityID]RetryPolicy{"flaky": {MaxAttempts: 3, Backoff: 10 * time.Second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded as the cause", err)
	}
}

// TestRetryReportsCancelDuringAttempt covers the second ordering: the
// context dies while the attempt itself executes and the executor
// surfaces its own (non-context) error afterwards.
func TestRetryReportsCancelDuringAttempt(t *testing.T) {
	p := core.NewProcess("retry")
	p.MustAddActivity(&core.Activity{ID: "late", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	execs := map[core.ActivityID]Executor{
		"late": func(ctx context.Context, _ *core.Activity, _ *Vars) (Outcome, error) {
			<-ctx.Done()
			return Outcome{}, errors.New("late failure") // hides the real cause
		},
	}
	e, err := New(sc, execs, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, err = e.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled as the cause", err)
	}
	if !strings.Contains(err.Error(), "late failure") {
		t.Errorf("executor error lost from the report: %v", err)
	}
}

// TestRunCancellationPartialTraceNoLeaks checks external cancellation
// mid-run: the partial trace still validates, the error is the context
// error, and no engine goroutines outlive the run.
func TestRunCancellationPartialTraceNoLeaks(t *testing.T) {
	leak.Check(t)

	sc := chainSet(8)
	execs := NoopExecutors(sc.Proc, 20*time.Millisecond, nil)
	e, err := New(sc, execs, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond) // a few links into the chain
		cancel()
	}()
	tr, err := e.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := len(tr.Executed()); got == 0 || got == 8 {
		t.Logf("executed %d of 8 before cancel (timing-dependent)", got)
	}
	if err := tr.Validate(sc, nil); err != nil {
		t.Errorf("partial trace fails validation: %v\n%s", err, tr)
	}
	// leak.Check's cleanup asserts every engine goroutine (activities +
	// watchdog) is gone.
}
