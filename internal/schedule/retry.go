// Retry policy: classified, jittered, budgeted recovery from executor
// failures — the paper's §3.2 exception scenario ("if an exception
// occurs at invProduction_ss, the execution of replyClient_oi is
// postponed until the exception is fixed") hardened for hostile
// backends. Transient faults are retried with exponential backoff and
// full jitter under an elapsed-time budget; permanent faults stop the
// loop after one attempt, because re-sending a deterministically
// rejected request only burns the budget.
package schedule

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"dscweaver/internal/services"
)

// FaultClass partitions executor errors for the retry loop.
type FaultClass int

const (
	// FaultTransient marks an error worth retrying: the same request
	// may succeed later (timeouts, ErrTransient, an open breaker).
	FaultTransient FaultClass = iota
	// FaultPermanent marks an error that will recur on every attempt
	// (a rejected order, a conversation-contract violation); the retry
	// loop stops immediately.
	FaultPermanent
)

// DefaultClassify is the classifier used when RetryPolicy.Classify is
// nil: errors marked with services.ErrPermanent are permanent,
// everything else — including services.ErrTransient, context timeouts
// from a per-attempt deadline, and services.ErrBreakerOpen — is
// transient.
func DefaultClassify(err error) FaultClass {
	if errors.Is(err, services.ErrPermanent) {
		return FaultPermanent
	}
	return FaultTransient
}

// RetryPolicy controls recovery from executor failures. The zero
// value means no retries; {MaxAttempts: n, Backoff: d} preserves the
// historical fixed-delay behavior.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (≥ 1).
	MaxAttempts int
	// Backoff is the delay before the second attempt; with Multiplier
	// ≤ 1 it is the fixed delay between all attempts.
	Backoff time.Duration
	// Multiplier > 1 grows the delay exponentially per attempt
	// (delay_k = Backoff·Multiplier^(k-1)).
	Multiplier float64
	// MaxBackoff caps a single delay (0 = uncapped).
	MaxBackoff time.Duration
	// Jitter draws each delay uniformly from [0, delay] ("full
	// jitter"), decorrelating retry storms across activities.
	Jitter bool
	// PerAttempt bounds one executor attempt with a context deadline
	// (0 = none). An attempt that exceeds it fails with
	// context.DeadlineExceeded — transient under DefaultClassify — and
	// the loop moves on without killing the run.
	PerAttempt time.Duration
	// MaxElapsed is the retry budget: no backoff sleep begins when the
	// time since the first attempt plus the chosen delay would exceed
	// it (0 = none). The emitted delays therefore always sum below the
	// budget — the invariant the event-log tests assert.
	MaxElapsed time.Duration
	// Classify maps an executor error to a fault class; nil means
	// DefaultClassify.
	Classify func(error) FaultClass
}

// delay computes the backoff to sleep after failed attempt `attempt`
// (1-based), before jitter.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.Backoff
	if d <= 0 {
		return 0
	}
	if p.Multiplier > 1 {
		f := float64(d)
		for i := 1; i < attempt; i++ {
			f *= p.Multiplier
			if p.MaxBackoff > 0 && f >= float64(p.MaxBackoff) {
				f = float64(p.MaxBackoff)
				break
			}
		}
		d = time.Duration(f)
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// retryRand is a locked, seeded random source for jitter draws; one
// per engine so replayed chaos runs see a stable stream.
type retryRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newRetryRand(seed int64) *retryRand {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &retryRand{rng: rand.New(rand.NewSource(seed))}
}

// jitter draws uniformly from [0, d].
func (r *retryRand) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.rng.Int63n(int64(d) + 1))
}
