package schedule

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dscweaver/internal/core"
	"dscweaver/internal/services"
)

// Binding wires a process's interaction activities to a transport —
// the in-process services.Bus or any other services.Transport: invoke
// activities send their first read variable to the declared service
// port; receive activities block until the dispatcher routes a
// callback with a matching (service, tag) pair, where the tag is the
// variable the receive writes. A callback carrying an error — an
// injected fault or a sequential-port violation — fails the run.
type Binding struct {
	bus services.Transport

	mu      sync.Mutex
	waiters map[string]chan services.Callback
	failed  chan error
	done    chan struct{}
	once    sync.Once
}

// NewBinding starts a dispatcher over the transport's inbox.
func NewBinding(bus services.Transport) *Binding {
	b := &Binding{
		bus:     bus,
		waiters: map[string]chan services.Callback{},
		failed:  make(chan error, 1),
		done:    make(chan struct{}),
	}
	go b.dispatch()
	return b
}

func key(service, tag string) string { return service + "/" + tag }

func (b *Binding) channel(service, tag string) chan services.Callback {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := key(service, tag)
	ch, ok := b.waiters[k]
	if !ok {
		ch = make(chan services.Callback, 16)
		b.waiters[k] = ch
	}
	return ch
}

func (b *Binding) dispatch() {
	for cb := range b.bus.Inbox() {
		if cb.Err != nil {
			select {
			case b.failed <- cb.Err:
			default:
			}
			continue
		}
		b.channel(cb.Service, cb.Tag) <- cb
	}
	close(b.done)
}

// Close must be called after the bus is closed; it waits for the
// dispatcher to drain.
func (b *Binding) Close() {
	b.once.Do(func() { <-b.done })
}

// Executors builds the executor map for a process:
//
//   - invoke → bus.Invoke(service, port, vars[reads[0]]);
//   - receive with a service endpoint → await the matching callback
//     and store its payload in writes[0];
//   - receive without a service (client request) → read the input
//     variable writes[0] from the store (seeded via Options.Inputs);
//   - decision → branch from the string value of reads[0];
//   - reply/opaque → record into writes (opaque) or leave the reply
//     payload in the store for the caller.
//
// work adds simulated local computation time to every activity.
func (b *Binding) Executors(proc *core.Process, work time.Duration) map[core.ActivityID]Executor {
	out := map[core.ActivityID]Executor{}
	for _, act := range proc.Activities() {
		out[act.ID] = b.executor(act, work)
	}
	return out
}

func (b *Binding) executor(act *core.Activity, work time.Duration) Executor {
	return func(ctx context.Context, a *core.Activity, vars *Vars) (Outcome, error) {
		if work > 0 {
			time.Sleep(work)
		}
		switch a.Kind {
		case core.KindInvoke:
			var payload any
			if len(a.Reads) > 0 {
				payload, _ = vars.Get(a.Reads[0])
			}
			return Outcome{}, b.bus.Invoke(a.Service, a.Port, payload)
		case core.KindReceive:
			if a.Service == "" {
				// Client message: must be seeded as an input.
				if len(a.Writes) > 0 {
					if _, ok := vars.Get(a.Writes[0]); !ok {
						return Outcome{}, fmt.Errorf("no input for client receive %s (variable %s)", a.ID, a.Writes[0])
					}
				}
				return Outcome{}, nil
			}
			tag := ""
			if len(a.Writes) > 0 {
				tag = a.Writes[0]
			}
			ch := b.channel(a.Service, tag)
			select {
			case cb := <-ch:
				if len(a.Writes) > 0 {
					vars.Set(a.Writes[0], cb.Payload)
				}
				return Outcome{}, nil
			case err := <-b.failed:
				// Re-arm for other receives, then fail.
				select {
				case b.failed <- err:
				default:
				}
				return Outcome{}, err
			case <-ctx.Done():
				return Outcome{}, fmt.Errorf("receive %s: %w", a.ID, ctx.Err())
			}
		case core.KindDecision:
			if len(a.Reads) > 0 {
				if v, ok := vars.Get(a.Reads[0]); ok {
					if s, ok := v.(string); ok {
						return Outcome{Branch: s}, nil
					}
				}
			}
			return Outcome{}, fmt.Errorf("decision %s: predicate variable unavailable", a.ID)
		default: // opaque, reply
			for _, w := range a.Writes {
				vars.Set(w, fmt.Sprintf("%s(%s)", a.ID, w))
			}
			return Outcome{}, nil
		}
	}
}

// NoopExecutors builds executors that sleep for work and resolve every
// decision with branch — the synthetic-workload executor of the
// concurrency benches.
func NoopExecutors(proc *core.Process, work time.Duration, branch func(core.ActivityID) string) map[core.ActivityID]Executor {
	out := map[core.ActivityID]Executor{}
	for _, act := range proc.Activities() {
		id := act.ID
		out[id] = func(ctx context.Context, a *core.Activity, vars *Vars) (Outcome, error) {
			if work > 0 {
				time.Sleep(work)
			}
			if a.Kind == core.KindDecision && branch != nil {
				return Outcome{Branch: branch(id)}, nil
			}
			return Outcome{}, nil
		}
	}
	return out
}
