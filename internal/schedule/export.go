package schedule

import (
	"encoding/json"
	"fmt"
	"time"

	"dscweaver/internal/core"
)

// TraceJSON is the serialized form of a Trace: one record per
// activity plus run-level summary fields. The format is stable and
// consumed by external tooling (timeline viewers, CI comparisons).
type TraceJSON struct {
	Process     string            `json:"process"`
	Began       time.Time         `json:"began"`
	Ended       time.Time         `json:"ended"`
	MakespanNS  int64             `json:"makespan_ns"`
	MaxParallel int               `json:"max_parallel"`
	Outcomes    map[string]string `json:"outcomes,omitempty"`
	Records     []RecordJSON      `json:"records"`
}

// RecordJSON is one activity's serialized record.
type RecordJSON struct {
	Activity  string    `json:"activity"`
	Skipped   bool      `json:"skipped,omitempty"`
	Branch    string    `json:"branch,omitempty"`
	Retries   int       `json:"retries,omitempty"`
	StartSeq  int       `json:"start_seq"`
	FinishSeq int       `json:"finish_seq"`
	StartAt   time.Time `json:"start_at,omitempty"`
	FinishAt  time.Time `json:"finish_at,omitempty"`
}

// MarshalJSON serializes the trace.
func (t *Trace) MarshalJSON() ([]byte, error) {
	out := TraceJSON{
		Process:     t.Process,
		Began:       t.Began,
		Ended:       t.Ended,
		MakespanNS:  int64(t.Makespan()),
		MaxParallel: t.MaxParallel,
		Outcomes:    t.Outcomes(),
	}
	for _, r := range t.Records() {
		out.Records = append(out.Records, RecordJSON{
			Activity: string(r.Activity), Skipped: r.Skipped, Branch: r.Branch, Retries: r.Retries,
			StartSeq: r.StartSeq, FinishSeq: r.FinishSeq,
			StartAt: r.StartAt, FinishAt: r.FinishAt,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// LoadTraceJSON parses a serialized trace back into a Trace usable
// with Validate — replayed traces let CI compare schedules across
// engine versions without re-executing.
func LoadTraceJSON(data []byte) (*Trace, error) {
	var in TraceJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("schedule: %w", err)
	}
	t := &Trace{
		records:     map[core.ActivityID]*Record{},
		Process:     in.Process,
		Began:       in.Began,
		Ended:       in.Ended,
		MaxParallel: in.MaxParallel,
	}
	for _, r := range in.Records {
		id := core.ActivityID(r.Activity)
		if _, dup := t.records[id]; dup {
			return nil, fmt.Errorf("schedule: duplicate record for %s", r.Activity)
		}
		t.records[id] = &Record{
			Activity: id, Skipped: r.Skipped, Branch: r.Branch, Retries: r.Retries,
			StartSeq: r.StartSeq, FinishSeq: r.FinishSeq,
			StartAt: r.StartAt, FinishAt: r.FinishAt,
		}
		t.order = append(t.order, id)
	}
	return t, nil
}

// NewTraceFromRecords assembles a Trace from externally produced
// records, in the given order — the decentralized enactment layer
// merges per-node transition streams into one global trace this way.
// The result is validatable like any engine-produced trace.
func NewTraceFromRecords(process string, began, ended time.Time, maxParallel int, recs []Record) (*Trace, error) {
	t := &Trace{
		records:     map[core.ActivityID]*Record{},
		Process:     process,
		Began:       began,
		Ended:       ended,
		MaxParallel: maxParallel,
	}
	for _, r := range recs {
		if _, dup := t.records[r.Activity]; dup {
			return nil, fmt.Errorf("schedule: duplicate record for %s", r.Activity)
		}
		r := r
		t.records[r.Activity] = &r
		t.order = append(t.order, r.Activity)
	}
	return t, nil
}
