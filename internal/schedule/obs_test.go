package schedule

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"dscweaver/internal/cond"
	"dscweaver/internal/core"
	"dscweaver/internal/obs"
	"dscweaver/internal/workload"
)

// TestEngineMetrics runs a small layered workload under a registry and
// checks the scheduler counters agree with the trace.
func TestEngineMetrics(t *testing.T) {
	w := workload.Layered(3, 4, 0.25, 11)
	sc, err := w.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e, err := New(sc, NoopExecutors(sc.Proc, time.Millisecond, nil),
		Options{Timeout: 10 * time.Second, Workers: 2, Metrics: reg, Events: obs.NopSink{}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	started := reg.Counter("schedule_activities_started_total").Value()
	finished := reg.Counter("schedule_activities_finished_total").Value()
	skipped := reg.Counter("schedule_activities_skipped_total").Value()
	if int(started) != len(tr.Executed()) || started != finished {
		t.Errorf("started/finished = %d/%d, trace executed %d", started, finished, len(tr.Executed()))
	}
	if int(skipped) != len(tr.SkippedActivities()) {
		t.Errorf("skipped = %d, trace skipped %d", skipped, len(tr.SkippedActivities()))
	}
	if got := reg.Gauge("schedule_max_parallel").Value(); int(got) != tr.MaxParallel {
		t.Errorf("max_parallel gauge = %d, trace %d", got, tr.MaxParallel)
	}
	if got := reg.Gauge("schedule_running").Value(); got != 0 {
		t.Errorf("running gauge = %d after run end", got)
	}
	if reg.Histogram("schedule_blocked_seconds", obs.DurationBuckets).Count() != started {
		t.Error("blocked-time histogram missing observations")
	}
	// Workers=2 on a width-4 layer must have produced slot waits.
	if reg.Histogram("schedule_slot_wait_seconds", obs.DurationBuckets).Count() == 0 {
		t.Error("no worker-slot waits recorded under a worker cap")
	}
	text := reg.String()
	if !strings.Contains(text, "schedule_runs_total 1") {
		t.Errorf("exposition missing run counter:\n%s", text)
	}
}

// TestEventLogRebuildsValidTrace round-trips the lifecycle event
// stream through JSONL and revalidates the reconstructed trace.
func TestEventLogRebuildsValidTrace(t *testing.T) {
	p := core.NewProcess("evlog")
	p.MustAddActivity(&core.Activity{ID: "dec", Kind: core.KindDecision})
	p.MustAddActivity(&core.Activity{ID: "yes", Kind: core.KindOpaque})
	p.MustAddActivity(&core.Activity{ID: "always", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	sc.Add(core.Constraint{Rel: core.HappenBefore, From: core.PointOf("dec", core.Finish),
		To: core.PointOf("yes", core.Start), Cond: cond.Lit("dec", "T"), Origins: []core.Dimension{core.Control}})
	sc.Before("dec", "always", core.Data)

	var buf bytes.Buffer
	jw := obs.NewJSONLWriter(&buf)
	execs := NoopExecutors(p, 0, func(core.ActivityID) string { return "F" })
	e, err := New(sc, execs, Options{Timeout: 10 * time.Second, Events: jw})
	if err != nil {
		t.Fatal(err)
	}
	live, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := TraceFromEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if err := replayed.Validate(sc, nil); err != nil {
		t.Fatalf("replayed trace fails validation: %v\n%s", err, replayed)
	}
	if replayed.Process != "evlog" {
		t.Errorf("process = %q", replayed.Process)
	}
	for _, want := range live.Records() {
		got, ok := replayed.Record(want.Activity)
		if !ok {
			t.Fatalf("replay lost activity %s", want.Activity)
		}
		if got.StartSeq != want.StartSeq || got.FinishSeq != want.FinishSeq ||
			got.Skipped != want.Skipped || got.Branch != want.Branch {
			t.Errorf("replay diverged for %s: %+v vs %+v", want.Activity, got, want)
		}
	}
	if replayed.MaxParallel != live.MaxParallel {
		t.Errorf("replayed MaxParallel = %d, live %d", replayed.MaxParallel, live.MaxParallel)
	}
}

// TestTraceFromEventsRejectsTruncatedStream: a stream that never saw
// run_begin is not a trace.
func TestTraceFromEventsRejectsTruncatedStream(t *testing.T) {
	_, err := TraceFromEvents([]obs.Event{
		{Layer: obs.LayerEngine, Kind: obs.EvActivityStart, Activity: "a", Seq: 1},
	})
	if err == nil {
		t.Fatal("truncated stream accepted")
	}
}
