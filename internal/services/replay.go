package services

import (
	"fmt"
	"sort"

	"dscweaver/internal/obs"
)

// Conversation is the reconstructed interaction timeline of one
// service, rebuilt purely from bus-layer lifecycle events (a JSONL
// log read back with obs.ReadJSONL, or a MemSink). It groups the
// paper's asynchronous conversation shape — invoke → fault* →
// callback — per port: Invokes and Faults are keyed by the invoked
// port, Callbacks by the reply tag the service emitted.
type Conversation struct {
	Service string
	// Up reports whether the log contains the service's registration.
	Up bool
	// Invokes counts invocations per invoked port.
	Invokes map[string]int
	// Faults counts error callbacks per port (fault callbacks carry
	// the port whose invocation failed).
	Faults map[string]int
	// Callbacks counts successful replies per emit tag.
	Callbacks map[string]int
	// Timeline is the service's bus events ordered by monotonic stamp,
	// ties broken by log order.
	Timeline []obs.Event
}

// TotalInvokes sums the per-port invocation counts.
func (c *Conversation) TotalInvokes() int { return sum(c.Invokes) }

// TotalFaults sums the per-port fault counts.
func (c *Conversation) TotalFaults() int { return sum(c.Faults) }

// TotalCallbacks sums the per-tag success-callback counts.
func (c *Conversation) TotalCallbacks() int { return sum(c.Callbacks) }

func sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Check verifies the invoke → fault* → callback shape the bus
// guarantees: a port can only fault on an invocation that happened,
// and no fault or callback may precede the port's (or service's)
// first invocation in the timeline.
func (c *Conversation) Check() error {
	for port, f := range c.Faults {
		if inv := c.Invokes[port]; f > inv {
			return fmt.Errorf("services: %s.%s: %d faults for %d invocations", c.Service, port, f, inv)
		}
	}
	invoked := map[string]int{}
	for _, e := range c.Timeline {
		switch e.Kind {
		case obs.EvInvoke:
			invoked[e.Port]++
		case obs.EvFault:
			if invoked[e.Port] == 0 {
				return fmt.Errorf("services: %s.%s: fault before any invocation", c.Service, e.Port)
			}
		case obs.EvCallback:
			if len(invoked) == 0 {
				return fmt.Errorf("services: %s: callback %s before any invocation", c.Service, e.Port)
			}
		}
	}
	return nil
}

// ConversationFromEvents reconstructs per-service conversations from a
// lifecycle event stream. Events from other layers are ignored, so the
// stream may be a merged process-wide log (engine + bus + minimizer).
// Timelines are re-sorted by the events' monotonic stamps: merged logs
// interleave concurrent emitters, and the stamp — taken before the
// serializing writer lock — is the bus's causal order.
func ConversationFromEvents(events []obs.Event) []*Conversation {
	byService := map[string]*Conversation{}
	order := []string{}
	get := func(name string) *Conversation {
		c, ok := byService[name]
		if !ok {
			c = &Conversation{
				Service: name,
				Invokes: map[string]int{}, Faults: map[string]int{}, Callbacks: map[string]int{},
			}
			byService[name] = c
			order = append(order, name)
		}
		return c
	}
	for _, e := range events {
		if e.Layer != obs.LayerBus || e.Service == "" {
			continue
		}
		c := get(e.Service)
		switch e.Kind {
		case obs.EvServiceUp:
			c.Up = true
		case obs.EvInvoke:
			c.Invokes[e.Port]++
		case obs.EvFault:
			c.Faults[e.Port]++
		case obs.EvCallback:
			c.Callbacks[e.Port]++
		default:
			continue
		}
		c.Timeline = append(c.Timeline, e)
	}
	out := make([]*Conversation, 0, len(order))
	for _, name := range order {
		c := byService[name]
		sort.SliceStable(c.Timeline, func(i, j int) bool { return c.Timeline[i].Mono < c.Timeline[j].Mono })
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}
