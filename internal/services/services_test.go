package services

import (
	"errors"
	"testing"
	"time"
)

// collect drains n callbacks with a timeout.
func collect(t *testing.T, b *Bus, n int) []Callback {
	t.Helper()
	var out []Callback
	timeout := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case cb, ok := <-b.Inbox():
			if !ok {
				t.Fatalf("inbox closed after %d callbacks, want %d", len(out), n)
			}
			out = append(out, cb)
		case <-timeout:
			t.Fatalf("timeout after %d callbacks, want %d", len(out), n)
		}
	}
	return out
}

func TestEchoService(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	err := b.Register(Config{
		Name: "Echo", Ports: []string{"1"},
		Handle: func(c *Call) ([]Emit, error) {
			return []Emit{{Tag: "out", Payload: c.Payload}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Invoke("Echo", "1", "hello"); err != nil {
		t.Fatal(err)
	}
	cb := collect(t, b, 1)[0]
	if cb.Service != "Echo" || cb.Tag != "out" || cb.Payload != "hello" || cb.Err != nil {
		t.Errorf("callback = %+v", cb)
	}
}

func TestUnknownService(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	if err := b.Invoke("Ghost", "1", nil); err == nil {
		t.Error("Invoke on unknown service succeeded")
	}
}

func TestDuplicateRegistration(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	if err := b.Register(Config{Name: "S"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(Config{Name: "S"}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := b.Register(Config{}); err == nil {
		t.Error("unnamed registration accepted")
	}
}

func TestStatePersistsAcrossCalls(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	err := b.Register(Config{
		Name: "Counter", Ports: []string{"1"},
		Handle: func(c *Call) ([]Emit, error) {
			n, _ := c.State["n"].(int)
			n++
			c.State["n"] = n
			return []Emit{{Tag: "n", Payload: n}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Invoke("Counter", "1", nil); err != nil {
			t.Fatal(err)
		}
	}
	cbs := collect(t, b, 3)
	if cbs[2].Payload != 3 {
		t.Errorf("state not preserved: third callback = %+v", cbs[2])
	}
}

func TestSequentialPortViolation(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	err := b.Register(Config{
		Name: "Seq", Ports: []string{"1", "2"}, Sequential: true,
		Handle: func(c *Call) ([]Emit, error) {
			return []Emit{{Tag: "ok", Payload: c.Port}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Port 2 first: conversation failure.
	if err := b.Invoke("Seq", "2", nil); err != nil {
		t.Fatal(err)
	}
	cb := collect(t, b, 1)[0]
	if cb.Err == nil || !errors.Is(cb.Err, ErrOutOfOrder) {
		t.Fatalf("callback = %+v, want ErrOutOfOrder", cb)
	}
	_, faults := b.Stats()
	if faults != 1 {
		t.Errorf("faults = %d, want 1", faults)
	}
}

func TestSequentialPortsInOrder(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	err := b.Register(Config{
		Name: "Seq", Ports: []string{"1", "2"}, Sequential: true,
		Handle: func(c *Call) ([]Emit, error) {
			return []Emit{{Tag: "ok", Payload: c.Port}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Invoke("Seq", "1", nil)
	b.Invoke("Seq", "2", nil)
	cbs := collect(t, b, 2)
	for _, cb := range cbs {
		if cb.Err != nil {
			t.Errorf("unexpected fault: %v", cb.Err)
		}
	}
}

func TestFaultInjection(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	boom := errors.New("boom")
	err := b.Register(Config{
		Name: "Flaky", Ports: []string{"1"},
		FailOn: map[string]error{"1": boom},
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Invoke("Flaky", "1", nil)
	cb := collect(t, b, 1)[0]
	if cb.Err == nil || !errors.Is(cb.Err, boom) {
		t.Errorf("callback = %+v, want injected fault", cb)
	}
}

func TestFailFirstTransientFaults(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	err := b.Register(Config{
		Name: "Flaky", Ports: []string{"1"},
		FailFirst: map[string]int{"1": 2},
		Handle: func(c *Call) ([]Emit, error) {
			return []Emit{{Tag: "ok", Payload: c.Payload}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b.Invoke("Flaky", "1", i)
	}
	cbs := collect(t, b, 3)
	if !errors.Is(cbs[0].Err, ErrTransient) || !errors.Is(cbs[1].Err, ErrTransient) {
		t.Errorf("first two calls should fail transiently: %+v %+v", cbs[0], cbs[1])
	}
	if cbs[2].Err != nil || cbs[2].Tag != "ok" {
		t.Errorf("third call should succeed: %+v", cbs[2])
	}
}

func TestCloseDrainsAndCloses(t *testing.T) {
	b := NewBus(0)
	err := b.Register(Config{
		Name: "S", Ports: []string{"1"},
		Handle: func(c *Call) ([]Emit, error) {
			return []Emit{{Tag: "x", Payload: nil}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Invoke("S", "1", nil)
	b.Close()
	// Pending callback still delivered, then channel closes.
	n := 0
	for range b.Inbox() {
		n++
	}
	if n != 1 {
		t.Errorf("callbacks after close = %d, want 1", n)
	}
	if err := b.Invoke("S", "1", nil); err == nil {
		t.Error("Invoke after close succeeded")
	}
	b.Close() // idempotent
}

func TestPortLatencyOverride(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	err := b.Register(Config{
		Name: "Slow", Ports: []string{"fast", "slow"},
		Latency:     time.Millisecond,
		PortLatency: map[string]time.Duration{"slow": 30 * time.Millisecond},
		Handle: func(c *Call) ([]Emit, error) {
			return []Emit{{Tag: c.Port, Payload: time.Now()}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	b.Invoke("Slow", "slow", nil)
	cb := collect(t, b, 1)[0]
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("slow port answered in %v, want ≥ 25ms", elapsed)
	}
	if cb.Tag != "slow" {
		t.Errorf("tag = %q", cb.Tag)
	}
}

func TestPurchasingServicesHappyPath(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	if err := RegisterPurchasing(b, 0, true); err != nil {
		t.Fatal(err)
	}
	b.Invoke("Credit", "1", "po1")
	if cb := collect(t, b, 1)[0]; cb.Tag != "au" || cb.Payload != "T" {
		t.Errorf("credit callback = %+v", cb)
	}
	b.Invoke("Ship", "1", "po1")
	cbs := collect(t, b, 2)
	tags := map[string]bool{}
	for _, cb := range cbs {
		tags[cb.Tag] = true
	}
	if !tags["si"] || !tags["ss"] {
		t.Errorf("ship callbacks = %v", cbs)
	}
	b.Invoke("Purchase", "1", "po1")
	b.Invoke("Purchase", "2", "si1")
	if cb := collect(t, b, 1)[0]; cb.Tag != "oi" || cb.Err != nil {
		t.Errorf("purchase callback = %+v", cb)
	}
	b.Invoke("Production", "1", "po1")
	b.Invoke("Production", "2", "ss1")
	delivered, faults := b.Stats()
	if faults != 0 {
		t.Errorf("faults = %d (delivered %d)", faults, delivered)
	}
}

func TestPurchasingDecline(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	if err := RegisterPurchasing(b, 0, false); err != nil {
		t.Fatal(err)
	}
	b.Invoke("Credit", "1", "po1")
	if cb := collect(t, b, 1)[0]; cb.Payload != "F" {
		t.Errorf("credit decline callback = %+v", cb)
	}
}

func TestPurchaseOutOfOrderIsConversationFailure(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	if err := RegisterPurchasing(b, 0, true); err != nil {
		t.Fatal(err)
	}
	// The scenario the Purchase₁ →s Purchase₂ dependency prevents:
	// shipping invoice before purchase order.
	b.Invoke("Purchase", "2", "si1")
	cb := collect(t, b, 1)[0]
	if cb.Err == nil || !errors.Is(cb.Err, ErrOutOfOrder) {
		t.Errorf("callback = %+v, want out-of-order failure", cb)
	}
}
