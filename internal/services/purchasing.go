package services

import (
	"fmt"
	"time"
)

// PurchasingConfigs builds the four services of the paper's running
// example:
//
//   - Credit authorizes purchase orders (port 1 → callback "au");
//     approve controls the authorization outcome, driving the process
//     down if_au's T or F branch.
//   - Purchase is state-aware and sequential: port 1 stores the
//     purchase order, port 2 combines it with the shipping invoice
//     into the order invoice (callback "oi"). Invoking port 2 first is
//     a conversation failure.
//   - Ship computes the shipping invoice and schedule from the
//     purchase order (callbacks "si" and "ss").
//   - Production consumes the purchase order and shipping schedule and
//     replies nothing.
//
// The configs register on a Bus (RegisterPurchasing) or host on any
// other transport — an HTTP node serves them with RegisterLocal.
func PurchasingConfigs(latency time.Duration, approve bool) []Config {
	return []Config{
		{
			Name: "Credit", Ports: []string{"1"}, Latency: latency,
			Handle: func(c *Call) ([]Emit, error) {
				outcome := "F"
				if approve {
					outcome = "T"
				}
				return []Emit{{Tag: "au", Payload: outcome}}, nil
			},
		},
		{
			Name: "Purchase", Ports: []string{"1", "2"}, Sequential: true, Latency: latency,
			Handle: func(c *Call) ([]Emit, error) {
				switch c.Port {
				case "1":
					c.State["po"] = c.Payload
					return nil, nil
				case "2":
					po, ok := c.State["po"]
					if !ok {
						return nil, fmt.Errorf("purchase: shipping invoice without purchase order")
					}
					oi := fmt.Sprintf("invoice(%v+%v)", po, c.Payload)
					return []Emit{{Tag: "oi", Payload: oi}}, nil
				default:
					return nil, fmt.Errorf("purchase: unknown port %s", c.Port)
				}
			},
		},
		{
			Name: "Ship", Ports: []string{"1"}, Latency: latency,
			Handle: func(c *Call) ([]Emit, error) {
				return []Emit{
					{Tag: "si", Payload: fmt.Sprintf("shipInvoice(%v)", c.Payload)},
					{Tag: "ss", Payload: fmt.Sprintf("shipSchedule(%v)", c.Payload)},
				}, nil
			},
		},
		{
			Name: "Production", Ports: []string{"1", "2"}, Latency: latency,
			// Fire-and-forget: no callbacks.
		},
	}
}

// RegisterPurchasing registers the purchasing services on the bus.
func RegisterPurchasing(b *Bus, latency time.Duration, approve bool) error {
	for _, cfg := range PurchasingConfigs(latency, approve) {
		if err := b.Register(cfg); err != nil {
			return err
		}
	}
	return nil
}
