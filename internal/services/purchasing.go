package services

import (
	"fmt"
	"time"
)

// RegisterPurchasing registers the four services of the paper's
// running example on the bus with the given base latency:
//
//   - Credit authorizes purchase orders (port 1 → callback "au");
//     approve controls the authorization outcome, driving the process
//     down if_au's T or F branch.
//   - Purchase is state-aware and sequential: port 1 stores the
//     purchase order, port 2 combines it with the shipping invoice
//     into the order invoice (callback "oi"). Invoking port 2 first is
//     a conversation failure.
//   - Ship computes the shipping invoice and schedule from the
//     purchase order (callbacks "si" and "ss").
//   - Production consumes the purchase order and shipping schedule and
//     replies nothing.
func RegisterPurchasing(b *Bus, latency time.Duration, approve bool) error {
	if err := b.Register(Config{
		Name: "Credit", Ports: []string{"1"}, Latency: latency,
		Handle: func(c *Call) ([]Emit, error) {
			outcome := "F"
			if approve {
				outcome = "T"
			}
			return []Emit{{Tag: "au", Payload: outcome}}, nil
		},
	}); err != nil {
		return err
	}
	if err := b.Register(Config{
		Name: "Purchase", Ports: []string{"1", "2"}, Sequential: true, Latency: latency,
		Handle: func(c *Call) ([]Emit, error) {
			switch c.Port {
			case "1":
				c.State["po"] = c.Payload
				return nil, nil
			case "2":
				po, ok := c.State["po"]
				if !ok {
					return nil, fmt.Errorf("purchase: shipping invoice without purchase order")
				}
				oi := fmt.Sprintf("invoice(%v+%v)", po, c.Payload)
				return []Emit{{Tag: "oi", Payload: oi}}, nil
			default:
				return nil, fmt.Errorf("purchase: unknown port %s", c.Port)
			}
		},
	}); err != nil {
		return err
	}
	if err := b.Register(Config{
		Name: "Ship", Ports: []string{"1"}, Latency: latency,
		Handle: func(c *Call) ([]Emit, error) {
			return []Emit{
				{Tag: "si", Payload: fmt.Sprintf("shipInvoice(%v)", c.Payload)},
				{Tag: "ss", Payload: fmt.Sprintf("shipSchedule(%v)", c.Payload)},
			}, nil
		},
	}); err != nil {
		return err
	}
	return b.Register(Config{
		Name: "Production", Ports: []string{"1", "2"}, Latency: latency,
		// Fire-and-forget: no callbacks.
	})
}
