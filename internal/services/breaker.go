// Per-port circuit breaking for the Bus. A breaker guards one
// (service, port) pair: after Threshold consecutive faulted callbacks
// the port opens and invocations fast-fail without reaching the
// service goroutine; once Cooldown elapses a single probe invocation
// is admitted (half-open), and its outcome either closes the breaker
// or re-opens it for another cooldown. Fast-failed invocations still
// surface as callbacks (wrapping ErrBreakerOpen) so the process-side
// conversation observes the failure like any other fault — the bus
// stays an asynchronous fabric.
package services

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dscweaver/internal/obs"
)

// ErrBreakerOpen is wrapped by the fast-fail callback an open breaker
// delivers. It classifies as transient for retry purposes: the fault
// is the guarded backend's, not the request's, and a later attempt may
// land after the cooldown.
var ErrBreakerOpen = errors.New("circuit breaker open")

// BreakerConfig tunes the per-port circuit breakers.
type BreakerConfig struct {
	// Threshold is the number of consecutive faulted callbacks that
	// opens a port's breaker (default 5 when <= 0).
	Threshold int
	// Cooldown is how long an open breaker rejects invocations before
	// admitting a half-open probe (default 1s when <= 0).
	Cooldown time.Duration
}

func (c BreakerConfig) normalize() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// Breaker states, exported through the bus_breaker_state gauge.
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

// breaker is the state machine for one (service, port) pair. Its own
// mutex decouples invoke-side admission checks from the service
// goroutine recording outcomes.
type breaker struct {
	mu       sync.Mutex
	state    int
	consec   int       // consecutive faults while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // half-open: one probe is in flight
}

// breakerSet owns the per-port breakers of one bus.
type breakerSet struct {
	cfg    BreakerConfig
	mu     sync.Mutex
	byPort map[string]*breaker
}

func newBreakerSet(cfg BreakerConfig) *breakerSet {
	return &breakerSet{cfg: cfg.normalize(), byPort: map[string]*breaker{}}
}

func (bs *breakerSet) get(service, port string) *breaker {
	key := service + "\x00" + port
	bs.mu.Lock()
	defer bs.mu.Unlock()
	br := bs.byPort[key]
	if br == nil {
		br = &breaker{}
		bs.byPort[key] = br
	}
	return br
}

// breakerTransition reports what a state-machine step did, so the
// owning transport can emit its own metrics and events for it. The
// machine itself is transport-agnostic: the Bus and the HTTP transport
// share it and differ only in this instrumentation glue.
type breakerTransition int

const (
	breakerSame     breakerTransition = iota
	breakerWentHalf                   // open → half-open (probe admitted)
	breakerTripped                    // closed/half-open → open
	breakerReclosed                   // half-open/open → closed
)

// admit decides whether one invocation may proceed: true while closed,
// true exactly once per cooldown as the half-open probe, false
// otherwise. A breakerWentHalf transition means this admission moved
// the breaker to half-open.
func (br *breaker) admit(cfg BreakerConfig) (bool, breakerTransition) {
	br.mu.Lock()
	defer br.mu.Unlock()
	switch br.state {
	case breakerClosed:
		return true, breakerSame
	case breakerHalfOpen:
		if br.probing {
			return false, breakerSame
		}
		br.probing = true
		return true, breakerSame
	default: // breakerOpen
		if time.Since(br.openedAt) < cfg.Cooldown {
			return false, breakerSame
		}
		// Cooldown elapsed: half-open, admit this invocation as the probe.
		br.state = breakerHalfOpen
		br.probing = true
		return true, breakerWentHalf
	}
}

// record feeds one invocation's verdict into the machine. The returned
// consec is the consecutive-fault count at a trip, and probeFailed
// marks a trip caused by a failed half-open probe (for event detail).
func (br *breaker) record(faulted bool, cfg BreakerConfig) (tr breakerTransition, consec int, probeFailed bool) {
	br.mu.Lock()
	defer br.mu.Unlock()
	if faulted {
		wasHalfOpen := br.state == breakerHalfOpen
		br.consec++
		if br.state == breakerClosed && br.consec < cfg.Threshold {
			return breakerSame, br.consec, false
		}
		// Trip: threshold reached, or the half-open probe failed.
		br.state = breakerOpen
		br.openedAt = time.Now()
		br.probing = false
		return breakerTripped, br.consec, wasHalfOpen
	}
	wasOpenish := br.state != breakerClosed
	br.state = breakerClosed
	br.consec = 0
	br.probing = false
	if wasOpenish {
		return breakerReclosed, 0, false
	}
	return breakerSame, 0, false
}

// WithBreaker arms per-port circuit breaking. Call before traffic
// flows (like Observe); the configuration applies to every port on
// the bus.
func (b *Bus) WithBreaker(cfg BreakerConfig) *Bus {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.breakers = newBreakerSet(cfg)
	return b
}

// breakerGauge resolves the state gauge for a port; nil when
// uninstrumented.
func (b *Bus) breakerGauge(service, port string) *obs.Gauge {
	if b.reg == nil {
		return nil
	}
	return b.reg.Gauge("bus_breaker_state", "service", service, "port", port)
}

// admitBreaker decides whether an invocation may proceed. It returns
// true to admit (closed, or the single half-open probe) and false to
// fast-fail. Called with b.inflight held by Invoke, so a delivered
// fast-fail callback cannot race Close's inbox teardown.
func (b *Bus) admitBreaker(service, port string) bool {
	bs := b.breakers
	ok, tr := bs.get(service, port).admit(bs.cfg)
	if tr == breakerWentHalf {
		if g := b.breakerGauge(service, port); g != nil {
			g.Set(breakerHalfOpen)
		}
		b.emit(obs.Event{Kind: obs.EvBreakerHalfOpen, Service: service, Port: port})
	}
	return ok
}

// fastFail delivers the breaker-open callback for a rejected
// invocation without involving the service goroutine.
func (b *Bus) fastFail(service, port string) {
	if b.reg != nil {
		b.reg.Counter("bus_breaker_fastfail_total", "service", service, "port", port).Inc()
	}
	b.deliver(Callback{Service: service, Tag: port,
		Err: fmt.Errorf("services: %s.%s: %w", service, port, ErrBreakerOpen)})
}

// recordOutcome feeds a processed invocation's verdict into the port's
// breaker. Runs on the service goroutine, after process delivered the
// callback(s).
func (b *Bus) recordOutcome(service, port string, faulted bool) {
	if b.breakers == nil {
		return
	}
	bs := b.breakers
	switch tr, consec, probeFailed := bs.get(service, port).record(faulted, bs.cfg); tr {
	case breakerTripped:
		if b.reg != nil {
			b.reg.Counter("bus_breaker_trips_total", "service", service, "port", port).Inc()
		}
		if g := b.breakerGauge(service, port); g != nil {
			g.Set(breakerOpen)
		}
		ev := obs.Event{Kind: obs.EvBreakerOpen, Service: service, Port: port, Value: float64(consec)}
		if probeFailed {
			ev.Detail = "probe failed"
		}
		b.emit(ev)
	case breakerReclosed:
		if g := b.breakerGauge(service, port); g != nil {
			g.Set(breakerClosed)
		}
		b.emit(obs.Event{Kind: obs.EvBreakerClose, Service: service, Port: port})
	}
}
