package services

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dscweaver/internal/chaos/leak"
	"dscweaver/internal/obs"
)

// echoBus registers a single echo service that replies once per call.
func echoBus(t *testing.T, inboxCap int) *Bus {
	t.Helper()
	b := NewBus(inboxCap)
	err := b.Register(Config{
		Name: "Echo", Ports: []string{"1"},
		Handle: func(c *Call) ([]Emit, error) {
			return []Emit{{Tag: "r", Payload: c.Payload}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestInvokeOnClosedBusReturnsTypedError: after Close, Invoke and
// Register refuse with ErrBusClosed — no panic, no send.
func TestInvokeOnClosedBusReturnsTypedError(t *testing.T) {
	b := echoBus(t, 0)
	go func() {
		for range b.Inbox() {
		}
	}()
	b.Close()
	if err := b.Invoke("Echo", "1", "x"); !errors.Is(err, ErrBusClosed) {
		t.Fatalf("Invoke after Close = %v, want ErrBusClosed", err)
	}
	if err := b.Register(Config{Name: "Late"}); !errors.Is(err, ErrBusClosed) {
		t.Fatalf("Register after Close = %v, want ErrBusClosed", err)
	}
	b.Close() // idempotent
}

// TestConcurrentCloseInvoke races many invokers against Close (run
// under -race in CI): no send-on-closed-channel panic, every accepted
// invocation's callback is delivered before the inbox closes, and
// refused invocations all carry the typed error.
func TestConcurrentCloseInvoke(t *testing.T) {
	leak.Check(t) // no service or drain goroutine survives Close
	for round := 0; round < 20; round++ {
		b := echoBus(t, 8)

		var delivered atomic.Int64
		consumerDone := make(chan struct{})
		go func() {
			defer close(consumerDone)
			for cb := range b.Inbox() {
				if cb.Err == nil {
					delivered.Add(1)
				}
			}
		}()

		var accepted atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					err := b.Invoke("Echo", "1", i)
					switch {
					case err == nil:
						accepted.Add(1)
					case errors.Is(err, ErrBusClosed):
						return
					default:
						t.Errorf("unexpected invoke error: %v", err)
						return
					}
				}
			}()
		}
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		b.Close()
		wg.Wait()
		<-consumerDone

		if got, want := delivered.Load(), accepted.Load(); got != want {
			t.Fatalf("round %d: %d callbacks delivered for %d accepted invocations", round, got, want)
		}
	}
}

// TestCloseDrainsPendingInvocations: invocations accepted before Close
// — including ones still queued behind a slow handler — produce their
// callbacks before the inbox closes.
func TestCloseDrainsPendingInvocations(t *testing.T) {
	leak.Check(t)
	b := NewBus(64)
	if err := b.Register(Config{
		Name: "Slow", Ports: []string{"1"}, Latency: 2 * time.Millisecond,
		Handle: func(c *Call) ([]Emit, error) {
			return []Emit{{Tag: "r", Payload: c.Payload}}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	var got []Callback
	done := make(chan struct{})
	go func() {
		defer close(done)
		for cb := range b.Inbox() {
			got = append(got, cb)
		}
	}()
	const n = 10
	for i := 0; i < n; i++ {
		if err := b.Invoke("Slow", "1", i); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	<-done
	if len(got) != n {
		t.Fatalf("drained %d callbacks, want %d", len(got), n)
	}
}

// TestBusObservability checks the per-port latency histogram, the
// counters and the event stream against a known traffic pattern.
func TestBusObservability(t *testing.T) {
	reg := obs.NewRegistry()
	var sink obs.MemSink
	b := NewBus(16).Observe(reg, &sink)
	if err := b.Register(Config{
		Name: "Flaky", Ports: []string{"1"}, FailFirst: map[string]int{"1": 2},
		Handle: func(c *Call) ([]Emit, error) {
			return []Emit{{Tag: "r", Payload: c.Payload}}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range b.Inbox() {
		}
	}()
	const n = 5
	for i := 0; i < n; i++ {
		if err := b.Invoke("Flaky", "1", i); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	<-done

	if got := reg.Counter("bus_invocations_total").Value(); got != n {
		t.Errorf("invocations = %d, want %d", got, n)
	}
	// 2 transient faults + 3 successful replies.
	if got := reg.Counter("bus_transient_retries_total").Value(); got != 2 {
		t.Errorf("transient retries = %d, want 2", got)
	}
	if got := reg.Counter("bus_faults_total").Value(); got != 2 {
		t.Errorf("faults = %d, want 2", got)
	}
	if got := reg.Counter("bus_callbacks_total").Value(); got != n {
		t.Errorf("callbacks = %d, want %d", got, n)
	}
	h := reg.Histogram("bus_invocation_seconds", obs.DurationBuckets, "service", "Flaky", "port", "1")
	if h.Count() != n {
		t.Errorf("latency observations = %d, want %d", h.Count(), n)
	}
	if !strings.Contains(reg.String(), `bus_invocation_seconds_count{service="Flaky",port="1"} 5`) {
		t.Errorf("exposition missing per-port histogram:\n%s", reg.String())
	}

	kinds := map[string]int{}
	for _, e := range sink.Events() {
		if e.Layer != obs.LayerBus {
			t.Errorf("wrong layer on bus event: %+v", e)
		}
		kinds[e.Kind]++
	}
	if kinds[obs.EvInvoke] != n || kinds[obs.EvFault] != 2 || kinds[obs.EvCallback] != 3 ||
		kinds[obs.EvServiceUp] != 1 || kinds[obs.EvBusClosed] != 1 {
		t.Errorf("event kinds = %v", kinds)
	}
}
