// Package services simulates the remote web services a business
// process integrates — the substitution for the paper's Credit,
// Purchase, Ship and Production BPEL services (see DESIGN.md).
//
// A Bus hosts named services. Each service runs as a single goroutine
// consuming invocations in arrival order — the state-machine model of
// §3.2's "the execution of a service has a side effect on other
// invocations". Invocations are asynchronous: Invoke returns
// immediately and replies surface later as Callback values on the
// bus's inbox channel, matching the paper's assumption that "all
// service interactions are asynchronous".
//
// Two behaviors make the simulation exercise the paper's code paths:
//
//   - Sequential services (the state-aware Purchase service) verify
//     that their ports are invoked in declaration order and fail the
//     conversation otherwise — exactly the constraint the service
//     dependency Purchase₁ →s Purchase₂ exists to protect.
//   - Fault injection (FailOn, per-port latency) lets tests drive the
//     cooperation-dependency scenarios (§3.2's "if an exception occurs
//     at invProduction_ss, the execution of replyClient_oi is
//     postponed").
package services

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dscweaver/internal/obs"
)

// Call is one invocation as seen by a service handler.
type Call struct {
	// Port is the invoked port.
	Port string
	// Payload is the invocation payload.
	Payload any
	// State is the service's private state, preserved across calls —
	// this is what makes a service "state-aware".
	State map[string]any
	// Seq is the 1-based arrival index of this call at the service.
	Seq int
}

// Emit is one asynchronous reply produced by a handler. Tag routes the
// callback to the process-side receive activity (by convention the
// variable the receive writes, e.g. "si" and "ss" for the Ship
// service's two replies).
type Emit struct {
	Tag     string
	Payload any
}

// Callback is an asynchronous message from a service to the process.
type Callback struct {
	Service string
	Tag     string
	Payload any
	// Err carries a conversation failure: an injected fault or a
	// sequential-port violation.
	Err error
}

// Handler computes a service's reaction to a call.
type Handler func(c *Call) ([]Emit, error)

// Config declares a service.
type Config struct {
	Name string
	// Ports lists the invocable ports in the order a sequential
	// service requires.
	Ports []string
	// Sequential makes the service verify in-order port invocation.
	Sequential bool
	// Latency is simulated processing time per invocation.
	Latency time.Duration
	// PortLatency overrides Latency for specific ports.
	PortLatency map[string]time.Duration
	// Handle computes replies; nil behaves as a sink (no callbacks).
	Handle Handler
	// FailOn injects a fault: invocations of the listed ports fail
	// with the given error.
	FailOn map[string]error
	// FailFirst injects transient faults: the first k invocations of a
	// port fail with ErrTransient, later ones succeed — the "exception
	// … until the exception is fixed" scenario of §3.2.
	FailFirst map[string]int
}

// ErrTransient is the error FailFirst faults wrap.
var ErrTransient = fmt.Errorf("transient service fault")

// ErrPermanent marks a fault as non-retryable: the same invocation
// would fail the same way again (a rejected order, a violated
// conversation contract), so retry loops must stop after one attempt.
// FailOn faults carry it; wrap custom handler errors with Permanent.
var ErrPermanent = errors.New("permanent service fault")

// permanentError brands an error chain with ErrPermanent while keeping
// the original chain visible to errors.Is/As.
type permanentError struct{ err error }

func (e *permanentError) Error() string   { return e.err.Error() }
func (e *permanentError) Unwrap() []error { return []error{ErrPermanent, e.err} }

// Permanent marks err as a permanent (non-retryable) fault:
// errors.Is(Permanent(err), ErrPermanent) holds, and the original
// chain stays matchable. Nil stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// ErrOutOfOrder is wrapped by the conversation failure a sequential
// service raises when its ports are invoked out of order — the
// exception the paper's state-aware Purchase service would produce.
var ErrOutOfOrder = fmt.Errorf("port invoked out of declaration order")

// ErrBusClosed is wrapped by Invoke and Register once Close has begun:
// a closed bus refuses work with a typed error instead of panicking on
// a closed channel.
var ErrBusClosed = errors.New("bus closed")

type invocation struct {
	port    string
	payload any
	at      time.Time // enqueue time, for the invocation-latency histogram
}

type service struct {
	cfg     Config
	in      chan invocation
	portIdx map[string]int
}

// Bus hosts services and delivers their callbacks to the process.
type Bus struct {
	mu       sync.Mutex
	services map[string]*service
	inbox    chan Callback
	wg       sync.WaitGroup
	closed   bool
	// inflight tracks Invoke calls that passed the closed check but
	// have not yet handed their message to a service channel; Close
	// waits for them before closing those channels, so Invoke can
	// never send on a closed channel.
	inflight sync.WaitGroup

	statsMu   sync.Mutex
	delivered int
	faults    int

	reg  *obs.Registry // nil = uninstrumented
	sink obs.Sink      // nil = no events
	bm   *busMetrics

	// breakers is non-nil once WithBreaker armed per-port circuit
	// breaking. Set before traffic, read-only afterwards.
	breakers *breakerSet
}

// busMetrics caches the unlabeled registry handles; per-service/port
// histograms and counters are looked up per call (one registry mutex
// acquisition), which the simulated-latency bus workloads absorb.
type busMetrics struct {
	invocations *obs.Counter
	callbacks   *obs.Counter
	faults      *obs.Counter
	transients  *obs.Counter
	inboxDepth  *obs.Gauge
}

// NewBus returns a bus with the given inbox capacity (default 256 when
// zero or negative).
func NewBus(inboxCap int) *Bus {
	if inboxCap <= 0 {
		inboxCap = 256
	}
	return &Bus{
		services: map[string]*service{},
		inbox:    make(chan Callback, inboxCap),
	}
}

// Observe attaches a metrics registry and/or event sink (either may be
// nil). Call before Register; instrumentation applies to subsequent
// traffic.
func (b *Bus) Observe(reg *obs.Registry, sink obs.Sink) *Bus {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reg = reg
	b.sink = sink
	if reg != nil {
		b.bm = &busMetrics{
			invocations: reg.Counter("bus_invocations_total"),
			callbacks:   reg.Counter("bus_callbacks_total"),
			faults:      reg.Counter("bus_faults_total"),
			transients:  reg.Counter("bus_transient_retries_total"),
			inboxDepth:  reg.Gauge("bus_inbox_depth"),
		}
	}
	return b
}

// emit stamps and delivers one bus event; nil-safe.
func (b *Bus) emit(ev obs.Event) {
	if b.sink == nil {
		return
	}
	ev.Layer = obs.LayerBus
	b.sink.Emit(obs.Stamp(ev))
}

// Register adds a service and starts its goroutine.
func (b *Bus) Register(cfg Config) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("services: register %s: %w", cfg.Name, ErrBusClosed)
	}
	if cfg.Name == "" {
		return fmt.Errorf("services: service without a name")
	}
	if _, dup := b.services[cfg.Name]; dup {
		return fmt.Errorf("services: duplicate service %s", cfg.Name)
	}
	s := &service{
		cfg:     cfg,
		in:      make(chan invocation, 64),
		portIdx: map[string]int{},
	}
	for i, p := range cfg.Ports {
		s.portIdx[p] = i
	}
	b.services[cfg.Name] = s
	b.wg.Add(1)
	go b.run(s)
	b.emit(obs.Event{Kind: obs.EvServiceUp, Service: cfg.Name})
	return nil
}

// run is the service goroutine: a sequential state machine.
func (b *Bus) run(s *service) {
	defer b.wg.Done()
	st := &serviceState{state: map[string]any{}, portCalls: map[string]int{}}
	for inv := range s.in {
		st.seq++
		cbs, faulted := b.process(s, st, inv)
		// Outcome is recorded before the callbacks become visible:
		// whoever observes the fault that tripped a breaker can rely on
		// the next Invoke fast-failing.
		b.recordOutcome(s.cfg.Name, inv.port, faulted)
		for _, cb := range cbs {
			b.deliver(cb)
		}
		if b.reg != nil {
			// End-to-end invocation latency: enqueue → handler done.
			b.reg.Histogram("bus_invocation_seconds", obs.DurationBuckets,
				"service", s.cfg.Name, "port", inv.port).ObserveDuration(time.Since(inv.at))
		}
	}
}

// serviceState is the per-goroutine private state of one service.
type serviceState struct {
	state     map[string]any
	next      int // next expected port index for sequential services
	seq       int
	portCalls map[string]int // per-port invocation counts for FailFirst
}

// process handles one invocation on the service goroutine. It returns
// the callbacks to deliver and whether the invocation faulted, so run
// can feed the port's breaker before the callbacks become visible.
func (b *Bus) process(s *service, st *serviceState, inv invocation) (cbs []Callback, faulted bool) {
	latency := s.cfg.Latency
	if d, ok := s.cfg.PortLatency[inv.port]; ok {
		latency = d
	}
	if latency > 0 {
		time.Sleep(latency)
	}
	if err, ok := s.cfg.FailOn[inv.port]; ok && err != nil {
		// FailOn faults are deterministic — the same invocation fails
		// the same way every time — so they carry the permanent mark.
		return []Callback{{Service: s.cfg.Name, Tag: inv.port,
			Err: Permanent(fmt.Errorf("services: %s.%s: %w", s.cfg.Name, inv.port, err))}}, true
	}
	if k := s.cfg.FailFirst[inv.port]; k > 0 && st.portCalls[inv.port] < k {
		st.portCalls[inv.port]++
		if b.bm != nil {
			b.bm.transients.Inc()
		}
		return []Callback{{Service: s.cfg.Name, Tag: inv.port,
			Err: fmt.Errorf("services: %s.%s attempt %d: %w", s.cfg.Name, inv.port, st.portCalls[inv.port], ErrTransient)}}, true
	}
	st.portCalls[inv.port]++
	if s.cfg.Sequential {
		idx, known := s.portIdx[inv.port]
		if known {
			if idx != st.next {
				// st.next may equal len(Ports): the conversation already
				// completed and any further invocation is out of order.
				expected := "none (conversation complete)"
				if st.next < len(s.cfg.Ports) {
					expected = s.cfg.Ports[st.next]
				}
				return []Callback{{
					Service: s.cfg.Name, Tag: inv.port,
					Err: Permanent(fmt.Errorf("services: %s.%s arrived before port %s: %w",
						s.cfg.Name, inv.port, expected, ErrOutOfOrder)),
				}}, true
			}
			st.next++
		}
	}
	if s.cfg.Handle == nil {
		return nil, false
	}
	emits, err := s.cfg.Handle(&Call{Port: inv.port, Payload: inv.payload, State: st.state, Seq: st.seq})
	if err != nil {
		return []Callback{{Service: s.cfg.Name, Tag: inv.port, Err: err}}, true
	}
	for _, e := range emits {
		cbs = append(cbs, Callback{Service: s.cfg.Name, Tag: e.Tag, Payload: e.Payload})
	}
	return cbs, false
}

func (b *Bus) deliver(cb Callback) {
	b.statsMu.Lock()
	b.delivered++
	if cb.Err != nil {
		b.faults++
	}
	b.statsMu.Unlock()
	if b.bm != nil {
		b.bm.callbacks.Inc()
		if cb.Err != nil {
			b.bm.faults.Inc()
		}
	}
	if cb.Err != nil {
		b.emit(obs.Event{Kind: obs.EvFault, Service: cb.Service, Port: cb.Tag, Err: cb.Err.Error()})
	} else {
		b.emit(obs.Event{Kind: obs.EvCallback, Service: cb.Service, Port: cb.Tag})
	}
	b.inbox <- cb
	if b.bm != nil {
		b.bm.inboxDepth.Set(int64(len(b.inbox)))
	}
}

// Invoke sends an asynchronous message to a service port. It returns
// an error only for unknown services and a closed bus (wrapping
// ErrBusClosed) — delivery problems surface as callbacks, like a real
// asynchronous fabric. Invoke never panics on concurrent Close: an
// invocation that passed the closed check is tracked and Close drains
// it before the service channels go down.
func (b *Bus) Invoke(serviceName, port string, payload any) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return fmt.Errorf("services: invoke %s.%s: %w", serviceName, port, ErrBusClosed)
	}
	s, ok := b.services[serviceName]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("services: unknown service %s", serviceName)
	}
	// Registered under the lock so Close cannot observe closed=true
	// yet miss this invocation.
	b.inflight.Add(1)
	b.mu.Unlock()
	defer b.inflight.Done()
	if b.breakers != nil && !b.admitBreaker(serviceName, port) {
		// Fast-fail while inflight is held: the callback lands on the
		// inbox before Close can tear it down.
		b.fastFail(serviceName, port)
		return nil
	}
	if b.bm != nil {
		b.bm.invocations.Inc()
	}
	b.emit(obs.Event{Kind: obs.EvInvoke, Service: serviceName, Port: port})
	s.in <- invocation{port: port, payload: payload, at: time.Now()}
	return nil
}

// Inbox returns the process-side callback channel.
func (b *Bus) Inbox() <-chan Callback { return b.inbox }

// Stats reports delivered callbacks and faults so far.
func (b *Bus) Stats() (delivered, faults int) {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	return b.delivered, b.faults
}

// Close shuts the bus down: it stops admitting invocations (Invoke
// then returns ErrBusClosed), waits for in-flight Invoke calls to hand
// their messages over, closes the service channels so the service
// goroutines drain every accepted invocation, and finally closes the
// inbox. Callbacks for every accepted invocation are therefore
// delivered before the inbox closes — provided a consumer keeps
// draining the inbox, as in normal operation.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	// New Invokes are refused; wait for the admitted ones to finish
	// their sends before closing the channels they send on.
	b.inflight.Wait()
	b.mu.Lock()
	for _, s := range b.services {
		close(s.in)
	}
	b.mu.Unlock()
	b.wg.Wait()
	b.emit(obs.Event{Kind: obs.EvBusClosed})
	close(b.inbox)
}
