// Package services simulates the remote web services a business
// process integrates — the substitution for the paper's Credit,
// Purchase, Ship and Production BPEL services (see DESIGN.md).
//
// A Bus hosts named services. Each service runs as a single goroutine
// consuming invocations in arrival order — the state-machine model of
// §3.2's "the execution of a service has a side effect on other
// invocations". Invocations are asynchronous: Invoke returns
// immediately and replies surface later as Callback values on the
// bus's inbox channel, matching the paper's assumption that "all
// service interactions are asynchronous".
//
// Two behaviors make the simulation exercise the paper's code paths:
//
//   - Sequential services (the state-aware Purchase service) verify
//     that their ports are invoked in declaration order and fail the
//     conversation otherwise — exactly the constraint the service
//     dependency Purchase₁ →s Purchase₂ exists to protect.
//   - Fault injection (FailOn, per-port latency) lets tests drive the
//     cooperation-dependency scenarios (§3.2's "if an exception occurs
//     at invProduction_ss, the execution of replyClient_oi is
//     postponed").
package services

import (
	"fmt"
	"sync"
	"time"
)

// Call is one invocation as seen by a service handler.
type Call struct {
	// Port is the invoked port.
	Port string
	// Payload is the invocation payload.
	Payload any
	// State is the service's private state, preserved across calls —
	// this is what makes a service "state-aware".
	State map[string]any
	// Seq is the 1-based arrival index of this call at the service.
	Seq int
}

// Emit is one asynchronous reply produced by a handler. Tag routes the
// callback to the process-side receive activity (by convention the
// variable the receive writes, e.g. "si" and "ss" for the Ship
// service's two replies).
type Emit struct {
	Tag     string
	Payload any
}

// Callback is an asynchronous message from a service to the process.
type Callback struct {
	Service string
	Tag     string
	Payload any
	// Err carries a conversation failure: an injected fault or a
	// sequential-port violation.
	Err error
}

// Handler computes a service's reaction to a call.
type Handler func(c *Call) ([]Emit, error)

// Config declares a service.
type Config struct {
	Name string
	// Ports lists the invocable ports in the order a sequential
	// service requires.
	Ports []string
	// Sequential makes the service verify in-order port invocation.
	Sequential bool
	// Latency is simulated processing time per invocation.
	Latency time.Duration
	// PortLatency overrides Latency for specific ports.
	PortLatency map[string]time.Duration
	// Handle computes replies; nil behaves as a sink (no callbacks).
	Handle Handler
	// FailOn injects a fault: invocations of the listed ports fail
	// with the given error.
	FailOn map[string]error
	// FailFirst injects transient faults: the first k invocations of a
	// port fail with ErrTransient, later ones succeed — the "exception
	// … until the exception is fixed" scenario of §3.2.
	FailFirst map[string]int
}

// ErrTransient is the error FailFirst faults wrap.
var ErrTransient = fmt.Errorf("transient service fault")

// ErrOutOfOrder is wrapped by the conversation failure a sequential
// service raises when its ports are invoked out of order — the
// exception the paper's state-aware Purchase service would produce.
var ErrOutOfOrder = fmt.Errorf("port invoked out of declaration order")

type invocation struct {
	port    string
	payload any
}

type service struct {
	cfg     Config
	in      chan invocation
	portIdx map[string]int
}

// Bus hosts services and delivers their callbacks to the process.
type Bus struct {
	mu       sync.Mutex
	services map[string]*service
	inbox    chan Callback
	wg       sync.WaitGroup
	closed   bool

	statsMu   sync.Mutex
	delivered int
	faults    int
}

// NewBus returns a bus with the given inbox capacity (default 256 when
// zero or negative).
func NewBus(inboxCap int) *Bus {
	if inboxCap <= 0 {
		inboxCap = 256
	}
	return &Bus{
		services: map[string]*service{},
		inbox:    make(chan Callback, inboxCap),
	}
}

// Register adds a service and starts its goroutine.
func (b *Bus) Register(cfg Config) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("services: bus closed")
	}
	if cfg.Name == "" {
		return fmt.Errorf("services: service without a name")
	}
	if _, dup := b.services[cfg.Name]; dup {
		return fmt.Errorf("services: duplicate service %s", cfg.Name)
	}
	s := &service{
		cfg:     cfg,
		in:      make(chan invocation, 64),
		portIdx: map[string]int{},
	}
	for i, p := range cfg.Ports {
		s.portIdx[p] = i
	}
	b.services[cfg.Name] = s
	b.wg.Add(1)
	go b.run(s)
	return nil
}

// run is the service goroutine: a sequential state machine.
func (b *Bus) run(s *service) {
	defer b.wg.Done()
	state := map[string]any{}
	next := 0 // next expected port index for sequential services
	seq := 0
	portCalls := map[string]int{} // per-port invocation counts for FailFirst
	for inv := range s.in {
		seq++
		latency := s.cfg.Latency
		if d, ok := s.cfg.PortLatency[inv.port]; ok {
			latency = d
		}
		if latency > 0 {
			time.Sleep(latency)
		}
		if err, ok := s.cfg.FailOn[inv.port]; ok && err != nil {
			b.deliver(Callback{Service: s.cfg.Name, Tag: inv.port, Err: fmt.Errorf("services: %s.%s: %w", s.cfg.Name, inv.port, err)})
			continue
		}
		if k := s.cfg.FailFirst[inv.port]; k > 0 && portCalls[inv.port] < k {
			portCalls[inv.port]++
			b.deliver(Callback{Service: s.cfg.Name, Tag: inv.port,
				Err: fmt.Errorf("services: %s.%s attempt %d: %w", s.cfg.Name, inv.port, portCalls[inv.port], ErrTransient)})
			continue
		}
		portCalls[inv.port]++
		if s.cfg.Sequential {
			idx, known := s.portIdx[inv.port]
			if known {
				if idx != next {
					b.deliver(Callback{
						Service: s.cfg.Name, Tag: inv.port,
						Err: fmt.Errorf("services: %s.%s arrived before port %s: %w",
							s.cfg.Name, inv.port, s.cfg.Ports[next], ErrOutOfOrder),
					})
					continue
				}
				next++
			}
		}
		if s.cfg.Handle == nil {
			continue
		}
		emits, err := s.cfg.Handle(&Call{Port: inv.port, Payload: inv.payload, State: state, Seq: seq})
		if err != nil {
			b.deliver(Callback{Service: s.cfg.Name, Tag: inv.port, Err: err})
			continue
		}
		for _, e := range emits {
			b.deliver(Callback{Service: s.cfg.Name, Tag: e.Tag, Payload: e.Payload})
		}
	}
}

func (b *Bus) deliver(cb Callback) {
	b.statsMu.Lock()
	b.delivered++
	if cb.Err != nil {
		b.faults++
	}
	b.statsMu.Unlock()
	b.inbox <- cb
}

// Invoke sends an asynchronous message to a service port. It returns
// an error only for unknown services — delivery problems surface as
// callbacks, like a real asynchronous fabric.
func (b *Bus) Invoke(serviceName, port string, payload any) error {
	b.mu.Lock()
	s, ok := b.services[serviceName]
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return fmt.Errorf("services: bus closed")
	}
	if !ok {
		return fmt.Errorf("services: unknown service %s", serviceName)
	}
	s.in <- invocation{port: port, payload: payload}
	return nil
}

// Inbox returns the process-side callback channel.
func (b *Bus) Inbox() <-chan Callback { return b.inbox }

// Stats reports delivered callbacks and faults so far.
func (b *Bus) Stats() (delivered, faults int) {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	return b.delivered, b.faults
}

// Close shuts the service goroutines down and closes the inbox after
// all pending work drains.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	for _, s := range b.services {
		close(s.in)
	}
	b.mu.Unlock()
	b.wg.Wait()
	close(b.inbox)
}
