package services

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dscweaver/internal/obs"
)

// busCounters reads the three bus counter families from a registry.
func busCounters(reg *obs.Registry) (invocations, deliveries, faults int64) {
	return reg.Counter("bus_invocations_total").Value(),
		reg.Counter("bus_callbacks_total").Value(),
		reg.Counter("bus_faults_total").Value()
}

// checkAgainstRegistry compares a replayed conversation set with the
// live Bus.Observe counters: the event log and the metrics are two
// independent views of the same traffic and must agree exactly.
func checkAgainstRegistry(t *testing.T, convs []*Conversation, reg *obs.Registry, b *Bus) {
	t.Helper()
	var invokes, callbacks, faults int
	for _, c := range convs {
		if err := c.Check(); err != nil {
			t.Errorf("conversation shape: %v", err)
		}
		invokes += c.TotalInvokes()
		callbacks += c.TotalCallbacks()
		faults += c.TotalFaults()
	}
	wantInv, wantDeliv, wantFaults := busCounters(reg)
	if int64(invokes) != wantInv {
		t.Errorf("replayed invokes = %d, registry bus_invocations_total = %d", invokes, wantInv)
	}
	if int64(callbacks+faults) != wantDeliv {
		t.Errorf("replayed deliveries = %d, registry bus_callbacks_total = %d", callbacks+faults, wantDeliv)
	}
	if int64(faults) != wantFaults {
		t.Errorf("replayed faults = %d, registry bus_faults_total = %d", faults, wantFaults)
	}
	delivered, liveFaults := b.Stats()
	if callbacks+faults != delivered || faults != liveFaults {
		t.Errorf("replayed %d deliveries / %d faults, live Stats %d / %d",
			callbacks+faults, faults, delivered, liveFaults)
	}
}

// TestConversationFromEventsRandomizedBusTraffic drives randomized
// service topologies and invocation mixes (faults, transients,
// out-of-order sequential ports) straight at the bus, then replays the
// event log into conversations and cross-checks every count against
// the metrics registry.
func TestConversationFromEventsRandomizedBusTraffic(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			reg := obs.NewRegistry()
			sink := &obs.MemSink{}
			b := NewBus(4096).Observe(reg, sink)

			nServices := 2 + rng.Intn(4)
			type svc struct {
				name  string
				ports []string
			}
			var svcs []svc
			for i := 0; i < nServices; i++ {
				name := fmt.Sprintf("S%d", i)
				nPorts := 1 + rng.Intn(3)
				var ports []string
				for p := 0; p < nPorts; p++ {
					ports = append(ports, fmt.Sprintf("%d", p+1))
				}
				cfg := Config{
					Name: name, Ports: ports,
					Sequential: rng.Intn(3) == 0,
					Latency:    time.Duration(rng.Intn(300)) * time.Microsecond,
				}
				if rng.Intn(3) == 0 {
					cfg.FailOn = map[string]error{ports[rng.Intn(len(ports))]: fmt.Errorf("injected")}
				}
				if rng.Intn(3) == 0 {
					cfg.FailFirst = map[string]int{ports[rng.Intn(len(ports))]: 1 + rng.Intn(3)}
				}
				if rng.Intn(2) == 0 {
					emits := 1 + rng.Intn(2)
					cfg.Handle = func(c *Call) ([]Emit, error) {
						var out []Emit
						for e := 0; e < emits; e++ {
							out = append(out, Emit{Tag: fmt.Sprintf("t%d", e), Payload: c.Seq})
						}
						return out, nil
					}
				}
				if err := b.Register(cfg); err != nil {
					t.Fatal(err)
				}
				svcs = append(svcs, svc{name: name, ports: ports})
			}

			nCalls := 20 + rng.Intn(60)
			for i := 0; i < nCalls; i++ {
				s := svcs[rng.Intn(len(svcs))]
				port := s.ports[rng.Intn(len(s.ports))] // any order: sequential services may fault
				if err := b.Invoke(s.name, port, i); err != nil {
					t.Fatal(err)
				}
			}
			b.Close() // drains every accepted invocation into the buffered inbox

			convs := ConversationFromEvents(sink.Events())
			if len(convs) != nServices {
				t.Fatalf("replayed %d conversations, want %d", len(convs), nServices)
			}
			for _, c := range convs {
				if !c.Up {
					t.Errorf("service %s missing registration event", c.Service)
				}
			}
			checkAgainstRegistry(t, convs, reg, b)
		})
	}
}

// TestConversationFromEventsPurchasingRun replays a live purchasing
// engine run (randomized approve outcome and latency) from its merged
// engine+bus event log; the bus slice must reconstruct the paper's
// conversations and match the registry exactly.
func TestConversationFromEventsPurchasingRun(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			approve := rng.Intn(2) == 0
			latency := time.Duration(rng.Intn(2)) * time.Millisecond

			reg := obs.NewRegistry()
			sink := &obs.MemSink{}
			b := NewBus(0).Observe(reg, sink)
			if err := RegisterPurchasing(b, latency, approve); err != nil {
				t.Fatal(err)
			}
			tr, err := runPurchasing(t, b, approve)
			if err != nil {
				t.Fatalf("purchasing run (approve=%v): %v\n%v", approve, err, tr)
			}
			b.Close()

			convs := ConversationFromEvents(sink.Events())
			checkAgainstRegistry(t, convs, reg, b)

			byName := map[string]*Conversation{}
			for _, c := range convs {
				byName[c.Service] = c
			}
			credit := byName["Credit"]
			if credit == nil || credit.Invokes["1"] != 1 || credit.Callbacks["au"] != 1 {
				t.Fatalf("credit conversation = %+v", credit)
			}
			if approve {
				ship := byName["Ship"]
				if ship == nil || ship.Invokes["1"] != 1 || ship.Callbacks["si"] != 1 || ship.Callbacks["ss"] != 1 {
					t.Errorf("ship conversation = %+v", ship)
				}
				purchase := byName["Purchase"]
				if purchase == nil || purchase.Invokes["1"] != 1 || purchase.Invokes["2"] != 1 || purchase.Callbacks["oi"] != 1 {
					t.Errorf("purchase conversation = %+v", purchase)
				}
				if got := byName["Production"]; got == nil || got.TotalInvokes() != 2 || got.TotalCallbacks() != 0 {
					t.Errorf("production conversation = %+v", got)
				}
			} else {
				// The F branch never reaches the other services.
				for _, name := range []string{"Purchase", "Ship", "Production"} {
					if c := byName[name]; c != nil && c.TotalInvokes() != 0 {
						t.Errorf("%s invoked on the F branch: %+v", name, c)
					}
				}
			}
		})
	}
}

// runPurchasing executes the purchasing process against the bus using
// the package's own conversation order (no schedule dependency — the
// services package sits below the engine): invoke Credit, read the
// authorization, then on approval walk the T branch exactly as the
// minimal constraint set orders it.
func runPurchasing(t *testing.T, b *Bus, approve bool) (map[string]any, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	vars := map[string]any{"po": "po-9"}

	await := func(service, tag string) (any, error) {
		for {
			select {
			case cb, ok := <-b.Inbox():
				if !ok {
					return nil, fmt.Errorf("inbox closed waiting for %s/%s", service, tag)
				}
				if cb.Err != nil {
					return nil, cb.Err
				}
				if cb.Service == service && cb.Tag == tag {
					return cb.Payload, nil
				}
				vars[cb.Tag] = cb.Payload // stash out-of-order arrivals
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	awaitVar := func(service, tag string) error {
		if _, ok := vars[tag]; ok {
			return nil
		}
		v, err := await(service, tag)
		if err != nil {
			return err
		}
		vars[tag] = v
		return nil
	}

	if err := b.Invoke("Credit", "1", vars["po"]); err != nil {
		return vars, err
	}
	if err := awaitVar("Credit", "au"); err != nil {
		return vars, err
	}
	if !approve {
		return vars, nil
	}
	if err := b.Invoke("Purchase", "1", vars["po"]); err != nil {
		return vars, err
	}
	if err := b.Invoke("Ship", "1", vars["po"]); err != nil {
		return vars, err
	}
	if err := b.Invoke("Production", "1", vars["po"]); err != nil {
		return vars, err
	}
	if err := awaitVar("Ship", "si"); err != nil {
		return vars, err
	}
	if err := awaitVar("Ship", "ss"); err != nil {
		return vars, err
	}
	if err := b.Invoke("Purchase", "2", vars["si"]); err != nil {
		return vars, err
	}
	if err := b.Invoke("Production", "2", vars["ss"]); err != nil {
		return vars, err
	}
	if err := awaitVar("Purchase", "oi"); err != nil {
		return vars, err
	}
	return vars, nil
}
