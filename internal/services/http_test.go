package services

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// serveTransport mounts a transport's Deliver behind an httptest
// server, mapping a run mismatch to 409 (the warm-up signal a sender
// retries through) and unknown services to 404.
func serveTransport(t *testing.T, tr *HTTPTransport) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var f Frame
		if err := json.NewDecoder(r.Body).Decode(&f); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := tr.Deliver(f)
		switch {
		case errors.Is(err, ErrRunMismatch):
			http.Error(w, err.Error(), http.StatusConflict)
		case err != nil:
			http.Error(w, err.Error(), http.StatusNotFound)
		default:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(res)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func fastRetry() HTTPRetry {
	return HTTPRetry{MaxAttempts: 6, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
}

func TestHTTPTransportRoundTrip(t *testing.T) {
	remote := NewHTTPTransport(HTTPConfig{Run: "r1", Node: "b"})
	if err := remote.RegisterLocal("echo", func(c *Call) ([]Emit, error) {
		return []Emit{{Tag: "out", Payload: c.Payload}}, nil
	}); err != nil {
		t.Fatal(err)
	}
	srv := serveTransport(t, remote)

	local := NewHTTPTransport(HTTPConfig{
		Run: "r1", Node: "a",
		Routes: map[string]string{"echo": srv.URL},
		Retry:  fastRetry(),
	})
	if err := local.Invoke("echo", "in", "hello"); err != nil {
		t.Fatal(err)
	}
	cb := <-local.Inbox()
	if cb.Err != nil {
		t.Fatalf("callback error: %v", cb.Err)
	}
	if cb.Service != "echo" || cb.Tag != "out" || cb.Payload != "hello" {
		t.Fatalf("callback = %+v, want echo/out/hello", cb)
	}
	local.Close()
	remote.Close()
	if _, open := <-local.Inbox(); open {
		t.Fatal("inbox not closed after Close")
	}
}

func TestHTTPTransportPreservesPerServiceOrder(t *testing.T) {
	var got []int
	remote := NewHTTPTransport(HTTPConfig{Run: "r1", Node: "b"})
	remote.RegisterLocal("seq", func(c *Call) ([]Emit, error) {
		got = append(got, int(c.Payload.(float64)))
		return nil, nil
	})
	srv := serveTransport(t, remote)
	local := NewHTTPTransport(HTTPConfig{
		Run: "r1", Node: "a", Routes: map[string]string{"seq": srv.URL}, Retry: fastRetry(),
	})
	const n = 50
	for i := 0; i < n; i++ {
		if err := local.Invoke("seq", "p", i); err != nil {
			t.Fatal(err)
		}
	}
	local.Close()
	remote.Close()
	if len(got) != n {
		t.Fatalf("remote saw %d calls, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("call %d arrived as %d: order not preserved (%v)", i, v, got)
		}
	}
}

func TestHTTPDeliverIdempotent(t *testing.T) {
	var calls atomic.Int64
	tr := NewHTTPTransport(HTTPConfig{Run: "r1", Node: "b"})
	tr.RegisterLocal("svc", func(c *Call) ([]Emit, error) {
		calls.Add(1)
		return []Emit{{Tag: "out", Payload: c.Seq}}, nil
	})
	f := Frame{V: 1, Run: "r1", Seq: 7, From: "a", Service: "svc", Port: "p",
		Payload: json.RawMessage(`"x"`)}
	first, err := tr.Deliver(f)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := tr.Deliver(f)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("handler ran %d times for a retransmitted frame, want 1", calls.Load())
	}
	b1, _ := json.Marshal(first)
	b2, _ := json.Marshal(replay)
	if string(b1) != string(b2) {
		t.Fatalf("replayed result differs: %s vs %s", b1, b2)
	}
	// A different sender with the same seq is a distinct invocation.
	f2 := f
	f2.From = "c"
	if _, err := tr.Deliver(f2); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("handler ran %d times across two senders, want 2", calls.Load())
	}
}

func TestHTTPDeliverRunMismatch(t *testing.T) {
	tr := NewHTTPTransport(HTTPConfig{Run: "r1", Node: "b"})
	tr.RegisterLocal("svc", nil)
	_, err := tr.Deliver(Frame{Run: "other", Seq: 1, From: "a", Service: "svc"})
	if !errors.Is(err, ErrRunMismatch) {
		t.Fatalf("err = %v, want ErrRunMismatch", err)
	}
}

func TestHTTPRetryThroughWarmup(t *testing.T) {
	// The peer 404s while "registration is pending", then serves: the
	// sender must retry through the window and still deliver.
	remote := NewHTTPTransport(HTTPConfig{Run: "r1", Node: "b"})
	remote.RegisterLocal("late", func(c *Call) ([]Emit, error) {
		return []Emit{{Tag: "out", Payload: "ok"}}, nil
	})
	var hits atomic.Int64
	inner := serveTransport(t, remote)
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "run not registered", http.StatusNotFound)
			return
		}
		inner.Config.Handler.ServeHTTP(w, r)
	}))
	defer gate.Close()

	local := NewHTTPTransport(HTTPConfig{
		Run: "r1", Node: "a", Routes: map[string]string{"late": gate.URL}, Retry: fastRetry(),
	})
	if err := local.Invoke("late", "p", nil); err != nil {
		t.Fatal(err)
	}
	cb := <-local.Inbox()
	if cb.Err != nil {
		t.Fatalf("callback error after warm-up: %v", cb.Err)
	}
	if local.Retries() < 2 {
		t.Fatalf("Retries() = %d, want >= 2", local.Retries())
	}
	local.Close()
	remote.Close()
}

func TestHTTPPermanentStatusDoesNotRetry(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "malformed frame", http.StatusBadRequest)
	}))
	defer srv.Close()
	local := NewHTTPTransport(HTTPConfig{
		Run: "r1", Node: "a", Routes: map[string]string{"svc": srv.URL}, Retry: fastRetry(),
	})
	if err := local.Invoke("svc", "p", nil); err != nil {
		t.Fatal(err)
	}
	cb := <-local.Inbox()
	if cb.Err == nil || !errors.Is(cb.Err, ErrPermanent) {
		t.Fatalf("callback err = %v, want permanent", cb.Err)
	}
	if hits.Load() != 1 {
		t.Fatalf("a 4xx response was retried: %d attempts", hits.Load())
	}
	local.Close()
}

func TestHTTPBreakerTripsAndFastFails(t *testing.T) {
	remote := NewHTTPTransport(HTTPConfig{Run: "r1", Node: "b"})
	remote.RegisterLocal("flaky", func(c *Call) ([]Emit, error) {
		return nil, fmt.Errorf("backend down")
	})
	srv := serveTransport(t, remote)
	local := NewHTTPTransport(HTTPConfig{
		Run: "r1", Node: "a",
		Routes:  map[string]string{"flaky": srv.URL},
		Retry:   fastRetry(),
		Breaker: &BreakerConfig{Threshold: 3, Cooldown: time.Hour},
	})
	// Trip: three consecutive handler faults.
	for i := 0; i < 3; i++ {
		if err := local.Invoke("flaky", "p", nil); err != nil {
			t.Fatal(err)
		}
		cb := <-local.Inbox()
		if cb.Err == nil {
			t.Fatalf("attempt %d: expected faulted callback", i)
		}
	}
	// Now open: the next invocation fast-fails without touching the wire.
	if err := local.Invoke("flaky", "p", nil); err != nil {
		t.Fatal(err)
	}
	cb := <-local.Inbox()
	if !errors.Is(cb.Err, ErrBreakerOpen) {
		t.Fatalf("callback err = %v, want ErrBreakerOpen", cb.Err)
	}
	local.Close()
	remote.Close()
}

func TestHTTPCallSynchronous(t *testing.T) {
	remote := NewHTTPTransport(HTTPConfig{Run: "r1", Node: "b"})
	var got any
	remote.RegisterLocal("note", func(c *Call) ([]Emit, error) {
		got = c.Payload
		return nil, nil
	})
	remote.RegisterLocal("bad", func(c *Call) ([]Emit, error) {
		return nil, fmt.Errorf("rejected")
	})
	srv := serveTransport(t, remote)
	local := NewHTTPTransport(HTTPConfig{
		Run: "r1", Node: "a",
		Routes: map[string]string{"note": srv.URL, "bad": srv.URL},
		Retry:  fastRetry(),
	})
	if err := local.Call("note", "p", map[string]any{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	m, ok := got.(map[string]any)
	if !ok || m["k"] != "v" {
		t.Fatalf("remote saw %#v, want decoded map", got)
	}
	if err := local.Call("bad", "p", nil); err == nil {
		t.Fatal("Call to a failing handler returned nil")
	}
	local.Close()
	remote.Close()
}

func TestHTTPInvokeStructuralErrors(t *testing.T) {
	tr := NewHTTPTransport(HTTPConfig{Run: "r1", Node: "a"})
	if err := tr.Invoke("nowhere", "p", nil); err == nil {
		t.Error("unroutable service accepted")
	}
	tr.Close()
	if err := tr.Invoke("nowhere", "p", nil); !errors.Is(err, ErrBusClosed) {
		t.Errorf("invoke on closed transport: %v, want ErrBusClosed", err)
	}
	if err := tr.RegisterLocal("x", nil); !errors.Is(err, ErrBusClosed) {
		t.Errorf("register on closed transport: %v, want ErrBusClosed", err)
	}
}

// TestHTTPFlappingLinkTransientToPermanent: a link that flaps from
// transient faults (503) to a permanent refusal (400) mid-send must
// retry through the transient phase and stop dead at the permanent
// answer — exactly one attempt sees the 400, none follow it.
func TestHTTPFlappingLinkTransientToPermanent(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "link down", http.StatusServiceUnavailable)
			return
		}
		http.Error(w, "malformed frame", http.StatusBadRequest)
	}))
	defer srv.Close()
	local := NewHTTPTransport(HTTPConfig{
		Run: "r1", Node: "a", Routes: map[string]string{"svc": srv.URL}, Retry: fastRetry(),
	})
	if err := local.Invoke("svc", "p", nil); err != nil {
		t.Fatal(err)
	}
	cb := <-local.Inbox()
	if !errors.Is(cb.Err, ErrPermanent) {
		t.Fatalf("callback err = %v, want permanent after the flap", cb.Err)
	}
	if errors.Is(cb.Err, ErrBudgetExhausted) {
		t.Fatalf("permanent refusal misclassified as budget exhaustion: %v", cb.Err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d attempts, want exactly 3 (2 transient + 1 permanent)", hits.Load())
	}
	if local.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", local.Retries())
	}
	local.Close()
}

// TestHTTPRetryBudgetExhaustedTyped: both exhaustion paths — the
// attempt cap and the MaxElapsed budget — must wrap
// ErrBudgetExhausted, the typed signal the enactment layer maps to a
// PartitionedPeerError.
func TestHTTPRetryBudgetExhaustedTyped(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "peer down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	byAttempts := NewHTTPTransport(HTTPConfig{
		Run: "r1", Node: "a", Routes: map[string]string{"svc": srv.URL},
		Retry: HTTPRetry{MaxAttempts: 3, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	err := byAttempts.Call("svc", "p", nil)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("attempt-cap exhaustion: err = %v, want ErrBudgetExhausted", err)
	}
	byAttempts.Close()

	byElapsed := NewHTTPTransport(HTTPConfig{
		Run: "r1", Node: "a", Routes: map[string]string{"svc": srv.URL},
		Retry: HTTPRetry{MaxAttempts: 1000, Backoff: 5 * time.Millisecond,
			MaxBackoff: 5 * time.Millisecond, MaxElapsed: 15 * time.Millisecond},
	})
	err = byElapsed.Call("svc", "p", nil)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("elapsed-budget exhaustion: err = %v, want ErrBudgetExhausted", err)
	}
	byElapsed.Close()
}

// TestHTTPBackoffBounds: the attempt'th delay is exponential with
// half-jitter — always within [base/2, base] for base =
// min(Backoff·Multiplier^(attempt−1), MaxBackoff).
func TestHTTPBackoffBounds(t *testing.T) {
	tr := NewHTTPTransport(HTTPConfig{Retry: HTTPRetry{
		Backoff: 10 * time.Millisecond, Multiplier: 2,
		MaxBackoff: 80 * time.Millisecond, Seed: 3,
	}})
	defer tr.Close()
	for attempt := 1; attempt <= 8; attempt++ {
		base := float64(10 * time.Millisecond)
		for i := 1; i < attempt; i++ {
			base *= 2
			if base >= float64(80*time.Millisecond) {
				base = float64(80 * time.Millisecond)
				break
			}
		}
		for trial := 0; trial < 4; trial++ {
			d := tr.backoff(attempt)
			if float64(d) < base/2 || float64(d) > base {
				t.Fatalf("backoff(%d) = %v, want within [%v, %v]",
					attempt, d, time.Duration(base/2), time.Duration(base))
			}
		}
	}
}

// TestHTTPTokenBearerAuth: a configured token rides every frame as a
// bearer header; a peer rejecting it with 401 is a permanent refusal —
// one attempt, no retry storm.
func TestHTTPTokenBearerAuth(t *testing.T) {
	remote := NewHTTPTransport(HTTPConfig{Run: "r1", Node: "b"})
	remote.RegisterLocal("svc", func(c *Call) ([]Emit, error) {
		return []Emit{{Tag: "out", Payload: "ok"}}, nil
	})
	inner := serveTransport(t, remote)
	var hits atomic.Int64
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if r.Header.Get("Authorization") != "Bearer s3cret" {
			http.Error(w, "missing or wrong bearer token", http.StatusUnauthorized)
			return
		}
		inner.Config.Handler.ServeHTTP(w, r)
	}))
	defer gate.Close()

	good := NewHTTPTransport(HTTPConfig{
		Run: "r1", Node: "a", Routes: map[string]string{"svc": gate.URL},
		Retry: fastRetry(), Token: "s3cret",
	})
	if err := good.Call("svc", "p", nil); err != nil {
		t.Fatalf("authorized call failed: %v", err)
	}
	good.Close()

	hits.Store(0)
	bad := NewHTTPTransport(HTTPConfig{
		Run: "r1", Node: "c", Routes: map[string]string{"svc": gate.URL},
		Retry: fastRetry(),
	})
	err := bad.Call("svc", "p", nil)
	if !errors.Is(err, ErrPermanent) {
		t.Fatalf("tokenless call: err = %v, want permanent 401", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("401 was retried: %d attempts, want 1", hits.Load())
	}
	bad.Close()
	remote.Close()
}
