// The transport seam: the scheduling engine's binding talks to an
// abstract Transport rather than to the in-process Bus concretely, so
// the same engine runs unchanged whether its service interactions stay
// in-process (Bus) or cross machine boundaries (HTTPTransport). The
// seam carries the reliability machinery — per-port circuit breakers,
// transient/permanent fault classification, chaos injection — so every
// implementation inherits it rather than reinventing it.
package services

// Transport is the asynchronous fabric a scheduling engine invokes
// services through. Invocations are fire-and-forget; every outcome —
// success emits, faults, breaker fast-fails — comes back as a Callback
// on Inbox. Implementations must preserve per-service invocation order
// (a service declared Sequential sees calls in send order) and must
// never deliver on Inbox after Close returns.
type Transport interface {
	// Invoke sends payload to a service port. It errors only on
	// structural problems (unknown service, closed transport); execution
	// faults surface as callbacks with Err set, classified via
	// ErrTransient / ErrPermanent for the engine's retry loop.
	Invoke(serviceName, port string, payload any) error
	// Inbox is the single ordered stream of callbacks. The channel is
	// closed by Close after every in-flight invocation has resolved.
	Inbox() <-chan Callback
	// Close tears the transport down, draining in-flight work first.
	Close()
}

// The in-process bus is the Local transport.
var _ Transport = (*Bus)(nil)
