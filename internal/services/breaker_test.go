package services

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dscweaver/internal/obs"
)

// flakyHandler fails while the flag is set and succeeds otherwise.
func flakyHandler(failing *atomic.Bool) Handler {
	return func(c *Call) ([]Emit, error) {
		if failing.Load() {
			return nil, fmt.Errorf("backend down: %w", ErrTransient)
		}
		return []Emit{{Tag: "ok", Payload: c.Payload}}, nil
	}
}

// breakerEvents filters the breaker transition kinds out of a sink.
func breakerEvents(sink *obs.MemSink) []string {
	var kinds []string
	for _, e := range sink.Events() {
		switch e.Kind {
		case obs.EvBreakerOpen, obs.EvBreakerHalfOpen, obs.EvBreakerClose:
			kinds = append(kinds, e.Kind)
		}
	}
	return kinds
}

// TestBreakerOpenHalfOpenClosed drives the full state machine end to
// end: N consecutive faults open the port, invocations fast-fail while
// open, the cooldown admits one half-open probe, and a successful
// probe closes the breaker again. Metrics and events are asserted at
// each transition.
func TestBreakerOpenHalfOpenClosed(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &obs.MemSink{}
	var failing atomic.Bool
	failing.Store(true)

	b := NewBus(0).Observe(reg, sink).WithBreaker(BreakerConfig{Threshold: 3, Cooldown: 30 * time.Millisecond})
	defer b.Close()
	if err := b.Register(Config{Name: "S", Ports: []string{"p"}, Handle: flakyHandler(&failing)}); err != nil {
		t.Fatal(err)
	}

	// Three consecutive faults trip the breaker. The outcome is
	// recorded before each callback is delivered, so after collecting
	// the third fault the breaker is observably open.
	for i := 0; i < 3; i++ {
		if err := b.Invoke("S", "p", i); err != nil {
			t.Fatal(err)
		}
		cb := collect(t, b, 1)[0]
		if !errors.Is(cb.Err, ErrTransient) {
			t.Fatalf("invocation %d: err = %v, want transient backend fault", i, cb.Err)
		}
	}
	if got := reg.Counter("bus_breaker_trips_total", "service", "S", "port", "p").Value(); got != 1 {
		t.Errorf("trips = %d, want 1", got)
	}
	if got := reg.Gauge("bus_breaker_state", "service", "S", "port", "p").Value(); got != breakerOpen {
		t.Errorf("state gauge = %d, want %d (open)", got, breakerOpen)
	}

	// Open: the next invocation fast-fails without reaching the service.
	if err := b.Invoke("S", "p", "rejected"); err != nil {
		t.Fatal(err)
	}
	cb := collect(t, b, 1)[0]
	if !errors.Is(cb.Err, ErrBreakerOpen) {
		t.Fatalf("open breaker delivered %v, want ErrBreakerOpen", cb.Err)
	}
	if got := reg.Counter("bus_breaker_fastfail_total", "service", "S", "port", "p").Value(); got != 1 {
		t.Errorf("fastfails = %d, want 1", got)
	}

	// After the cooldown the backend has recovered; the probe succeeds
	// and closes the breaker.
	failing.Store(false)
	time.Sleep(50 * time.Millisecond)
	if err := b.Invoke("S", "p", "probe"); err != nil {
		t.Fatal(err)
	}
	cb = collect(t, b, 1)[0]
	if cb.Err != nil || cb.Tag != "ok" {
		t.Fatalf("probe callback = %+v, want success", cb)
	}
	if got := reg.Gauge("bus_breaker_state", "service", "S", "port", "p").Value(); got != breakerClosed {
		t.Errorf("state gauge = %d, want %d (closed)", got, breakerClosed)
	}

	// Closed again: normal traffic flows.
	if err := b.Invoke("S", "p", "after"); err != nil {
		t.Fatal(err)
	}
	if cb := collect(t, b, 1)[0]; cb.Err != nil {
		t.Fatalf("post-recovery callback = %+v, want success", cb)
	}

	want := []string{obs.EvBreakerOpen, obs.EvBreakerHalfOpen, obs.EvBreakerClose}
	got := breakerEvents(sink)
	if len(got) != len(want) {
		t.Fatalf("breaker events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("breaker events = %v, want %v", got, want)
		}
	}
}

// TestBreakerProbeFailureReopens: a failed half-open probe re-opens
// the breaker for another cooldown instead of closing it.
func TestBreakerProbeFailureReopens(t *testing.T) {
	reg := obs.NewRegistry()
	var failing atomic.Bool
	failing.Store(true)

	b := NewBus(0).Observe(reg, nil).WithBreaker(BreakerConfig{Threshold: 2, Cooldown: 20 * time.Millisecond})
	defer b.Close()
	if err := b.Register(Config{Name: "S", Ports: []string{"p"}, Handle: flakyHandler(&failing)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		b.Invoke("S", "p", i)
		collect(t, b, 1)
	}
	time.Sleep(40 * time.Millisecond)

	// Probe admitted, backend still down: the probe's fault callback
	// re-opens the breaker.
	b.Invoke("S", "p", "probe")
	if cb := collect(t, b, 1)[0]; !errors.Is(cb.Err, ErrTransient) {
		t.Fatalf("probe callback = %+v, want backend fault", cb)
	}
	if got := reg.Counter("bus_breaker_trips_total", "service", "S", "port", "p").Value(); got != 2 {
		t.Errorf("trips = %d, want 2 (initial + failed probe)", got)
	}
	b.Invoke("S", "p", "still rejected")
	if cb := collect(t, b, 1)[0]; !errors.Is(cb.Err, ErrBreakerOpen) {
		t.Fatalf("re-opened breaker delivered %v, want ErrBreakerOpen", cb.Err)
	}
}

// TestBreakerHalfOpenAdmitsSingleProbe: while the probe is in flight,
// further invocations fast-fail instead of piling onto a backend that
// may still be down.
func TestBreakerHalfOpenAdmitsSingleProbe(t *testing.T) {
	release := make(chan struct{})
	var failing atomic.Bool
	failing.Store(true)

	b := NewBus(0).WithBreaker(BreakerConfig{Threshold: 1, Cooldown: 10 * time.Millisecond})
	defer b.Close()
	err := b.Register(Config{Name: "S", Ports: []string{"p"}, Handle: func(c *Call) ([]Emit, error) {
		if failing.Load() {
			return nil, ErrTransient
		}
		<-release
		return []Emit{{Tag: "ok"}}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	b.Invoke("S", "p", nil)
	collect(t, b, 1) // trips at threshold 1
	failing.Store(false)
	time.Sleep(20 * time.Millisecond)

	b.Invoke("S", "p", "probe") // admitted, blocks on release
	b.Invoke("S", "p", "crowd") // half-open with probe in flight: fast-fail
	if cb := collect(t, b, 1)[0]; !errors.Is(cb.Err, ErrBreakerOpen) {
		t.Fatalf("second half-open invocation delivered %v, want ErrBreakerOpen", cb.Err)
	}
	close(release)
	if cb := collect(t, b, 1)[0]; cb.Err != nil || cb.Tag != "ok" {
		t.Fatalf("probe callback = %+v, want success", cb)
	}
}

// TestBreakerPerPortIsolation: one port's faults must not open a
// sibling port's breaker.
func TestBreakerPerPortIsolation(t *testing.T) {
	b := NewBus(0).WithBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Minute})
	defer b.Close()
	boom := errors.New("boom")
	err := b.Register(Config{
		Name: "S", Ports: []string{"bad", "good"},
		FailOn: map[string]error{"bad": boom},
		Handle: func(c *Call) ([]Emit, error) { return []Emit{{Tag: "ok"}}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Invoke("S", "bad", nil)
	if cb := collect(t, b, 1)[0]; !errors.Is(cb.Err, boom) {
		t.Fatalf("bad port callback = %+v", cb)
	}
	b.Invoke("S", "bad", nil)
	if cb := collect(t, b, 1)[0]; !errors.Is(cb.Err, ErrBreakerOpen) {
		t.Fatalf("bad port second call = %+v, want ErrBreakerOpen", cb)
	}
	b.Invoke("S", "good", nil)
	if cb := collect(t, b, 1)[0]; cb.Err != nil || cb.Tag != "ok" {
		t.Fatalf("good port callback = %+v, want success", cb)
	}
}

// TestPermanentMarker pins the fault taxonomy: FailOn and sequential
// violations are permanent (retry loops must stop), FailFirst is
// transient, and Permanent preserves the original chain.
func TestPermanentMarker(t *testing.T) {
	boom := errors.New("boom")
	wrapped := Permanent(fmt.Errorf("ctx: %w", boom))
	if !errors.Is(wrapped, ErrPermanent) || !errors.Is(wrapped, boom) {
		t.Fatalf("Permanent lost part of the chain: %v", wrapped)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}

	b := NewBus(0)
	defer b.Close()
	err := b.Register(Config{
		Name: "S", Ports: []string{"a", "b"}, Sequential: true,
		FailOn:    map[string]error{"b": boom},
		FailFirst: map[string]int{"a": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Invoke("S", "b", nil) // out of order AND FailOn — FailOn wins
	cb := collect(t, b, 1)[0]
	if !errors.Is(cb.Err, ErrPermanent) || !errors.Is(cb.Err, boom) {
		t.Errorf("FailOn fault = %v, want permanent wrapping boom", cb.Err)
	}
	b.Invoke("S", "a", nil) // first call: transient
	cb = collect(t, b, 1)[0]
	if !errors.Is(cb.Err, ErrTransient) || errors.Is(cb.Err, ErrPermanent) {
		t.Errorf("FailFirst fault = %v, want transient and not permanent", cb.Err)
	}
	b.Invoke("S", "a", nil) // in order now, succeeds (no handler → no callback)
	b.Invoke("S", "a", nil) // conversation past "a": out of order → permanent
	cb = collect(t, b, 1)[0]
	if !errors.Is(cb.Err, ErrOutOfOrder) || !errors.Is(cb.Err, ErrPermanent) {
		t.Errorf("sequential violation = %v, want permanent out-of-order", cb.Err)
	}
}
