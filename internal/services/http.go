// The HTTP transport: the same Transport contract as the in-process
// Bus, carried over JSON-framed HTTP POSTs between processes. Each
// frame is correlated by run id (a frame for another run is refused)
// and a per-sender sequence number, which makes retried POSTs
// idempotent: the receiver caches the result of each (from, seq) and
// replays it when a lost response causes a retransmit. Reliability
// machinery sits at this seam, shared with the bus: per-(service,port)
// circuit breakers reuse the bus's state machine, faults classify via
// ErrTransient / ErrPermanent, and retries back off exponentially with
// seeded jitter.
package services

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dscweaver/internal/obs"
)

// DefaultInvokePath is the endpoint peers mount for incoming frames.
const DefaultInvokePath = "/v1/transport/invoke"

// ErrRunMismatch is returned by Deliver for a frame correlated to a
// different run than the transport serves.
var ErrRunMismatch = errors.New("transport: frame for different run")

// ErrBudgetExhausted wraps every send failure caused by running out of
// retries — the attempt cap or the MaxElapsed budget — against a peer
// that never answered successfully. Callers classify it as "the peer
// is unreachable" (the enactment layer maps it to a typed
// PartitionedPeerError), distinct from a permanent refusal.
var ErrBudgetExhausted = errors.New("transport: retry budget exhausted")

// Frame is one invocation on the wire.
type Frame struct {
	V       int             `json:"v"`
	Run     string          `json:"run"`
	Seq     int64           `json:"seq"`
	From    string          `json:"from"`
	Service string          `json:"service"`
	Port    string          `json:"port"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// CallbackFrame is one callback on the wire. Permanent preserves the
// retry classification across the process boundary.
type CallbackFrame struct {
	Service   string          `json:"service"`
	Tag       string          `json:"tag"`
	Payload   json.RawMessage `json:"payload,omitempty"`
	Err       string          `json:"err,omitempty"`
	Permanent bool            `json:"permanent,omitempty"`
}

// DeliverResult is the response body of one delivered frame: the
// callbacks the invocation produced, carried back synchronously so no
// separate reply channel is needed.
type DeliverResult struct {
	Callbacks []CallbackFrame `json:"callbacks,omitempty"`
}

// callback rebuilds the in-memory callback, decoding the payload to
// plain JSON values so engine-side variable reads behave exactly as
// they do over the in-process bus.
func (cf CallbackFrame) callback() Callback {
	cb := Callback{Service: cf.Service, Tag: cf.Tag}
	if len(cf.Payload) > 0 {
		var v any
		if err := json.Unmarshal(cf.Payload, &v); err == nil {
			cb.Payload = v
		} else {
			cb.Payload = cf.Payload
		}
	}
	if cf.Err != "" {
		if cf.Permanent {
			cb.Err = Permanent(errors.New(cf.Err))
		} else {
			cb.Err = errors.New(cf.Err)
		}
	}
	return cb
}

// HTTPRetry tunes the transport's send retries (covering network
// faults, 5xx responses, and the 404/409 warm-up window while a peer
// has not yet registered the run).
type HTTPRetry struct {
	MaxAttempts int           // default 10
	Backoff     time.Duration // first delay, default 25ms
	Multiplier  float64       // default 2
	MaxBackoff  time.Duration // default 1s
	// MaxElapsed caps the total time one frame spends retrying (0 = no
	// cap). Callers racing a deadline — the enactment fabric under the
	// engine timeout — set it below that deadline so an unreachable
	// peer surfaces as a send error instead of a generic timeout.
	MaxElapsed time.Duration
	Seed       int64 // jitter seed
}

func (r HTTPRetry) normalize() HTTPRetry {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 10
	}
	if r.Backoff <= 0 {
		r.Backoff = 25 * time.Millisecond
	}
	if r.Multiplier < 1 {
		r.Multiplier = 2
	}
	if r.MaxBackoff <= 0 {
		r.MaxBackoff = time.Second
	}
	return r
}

// HTTPConfig builds one HTTP transport.
type HTTPConfig struct {
	// Run is the correlation id stamped on every frame; Deliver refuses
	// frames for any other run.
	Run string
	// Node names this process; stamped as Frame.From, it keys the
	// receiver-side idempotency cache.
	Node string
	// Routes maps service names to peer base URLs (scheme://host:port).
	// Services not routed must be registered locally.
	Routes map[string]string
	// Path is the invoke endpoint on peers (DefaultInvokePath when "").
	Path string
	// Client is the HTTP client (http.DefaultClient when nil).
	Client *http.Client
	// Retry tunes send retries.
	Retry HTTPRetry
	// Breaker arms per-(service,port) circuit breaking on the send path,
	// sharing the bus's state machine. Nil leaves it off.
	Breaker *BreakerConfig
	// Token, when set, is sent as a bearer token on every outgoing
	// frame; peers requiring one answer 401 (permanent — a bad secret
	// must not retry-storm).
	Token string
	// Metrics / Events instrument the transport (either may be nil).
	Metrics *obs.Registry
	Events  obs.Sink
}

// localService hosts one handler on this node. Calls are serialized
// per service, with private state and a 1-based arrival index — the
// bus's conversation semantics. Payloads are decoded from the wire to
// plain JSON values before the handler runs, so a handler written for
// the bus behaves identically when hosted over HTTP.
type localService struct {
	name  string
	h     Handler
	mu    sync.Mutex
	state map[string]any
	seq   int
}

// httpSender serializes outgoing frames for one destination service,
// preserving per-service invocation order.
type httpSender struct {
	ch chan Frame
}

// HTTPTransport implements Transport over HTTP.
type HTTPTransport struct {
	cfg      HTTPConfig
	client   *http.Client
	retry    HTTPRetry
	inbox    chan Callback
	breakers *breakerSet

	rngMu sync.Mutex
	rng   *rand.Rand

	mu      sync.Mutex
	closed  bool
	locals  map[string]*localService
	senders map[string]*httpSender
	wg      sync.WaitGroup // sender goroutines
	seq     atomic.Int64

	inflight sync.WaitGroup // accepted invocations not yet resolved

	seenMu sync.Mutex
	seen   map[string]DeliverResult // from\x00seq → replayed result

	retries     atomic.Int64
	retransmits atomic.Int64
}

var _ Transport = (*HTTPTransport)(nil)

// NewHTTPTransport builds a transport. Register local services with
// RegisterLocal before traffic flows; mount Deliver behind the peer's
// invoke endpoint.
func NewHTTPTransport(cfg HTTPConfig) *HTTPTransport {
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.Path == "" {
		cfg.Path = DefaultInvokePath
	}
	t := &HTTPTransport{
		cfg:     cfg,
		client:  client,
		retry:   cfg.Retry.normalize(),
		inbox:   make(chan Callback, 64),
		rng:     rand.New(rand.NewSource(cfg.Retry.Seed + 1)),
		locals:  map[string]*localService{},
		senders: map[string]*httpSender{},
		seen:    map[string]DeliverResult{},
	}
	if cfg.Breaker != nil {
		t.breakers = newBreakerSet(*cfg.Breaker)
	}
	return t
}

// RegisterLocal hosts a handler on this node, reachable both from
// peers (via Deliver) and from this node's own Invoke/Call.
func (t *HTTPTransport) RegisterLocal(name string, h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("transport: register %s: %w", name, ErrBusClosed)
	}
	if _, dup := t.locals[name]; dup {
		return fmt.Errorf("transport: register %s: duplicate service", name)
	}
	t.locals[name] = &localService{name: name, h: h, state: map[string]any{}}
	return nil
}

func (t *HTTPTransport) emit(ev obs.Event) {
	if t.cfg.Events == nil {
		return
	}
	ev.Layer = obs.LayerTransport
	t.cfg.Events.Emit(obs.Stamp(ev))
}

func (t *HTTPTransport) counter(name, service, port string) *obs.Counter {
	if t.cfg.Metrics == nil {
		return nil
	}
	return t.cfg.Metrics.Counter(name, "service", service, "port", port)
}

func (t *HTTPTransport) gauge(service, port string) *obs.Gauge {
	if t.cfg.Metrics == nil {
		return nil
	}
	return t.cfg.Metrics.Gauge("transport_breaker_state", "service", service, "port", port)
}

// Inbox returns the engine-side callback channel.
func (t *HTTPTransport) Inbox() <-chan Callback { return t.inbox }

// Retries reports how many send attempts were retried.
func (t *HTTPTransport) Retries() int64 { return t.retries.Load() }

// Retransmits reports how many incoming frames were absorbed as
// (from, seq) replays instead of re-executed.
func (t *HTTPTransport) Retransmits() int64 { return t.retransmits.Load() }

func (t *HTTPTransport) deliver(cb Callback) {
	if cb.Err != nil {
		t.emit(obs.Event{Kind: obs.EvFault, Service: cb.Service, Port: cb.Tag, Err: cb.Err.Error()})
	} else {
		t.emit(obs.Event{Kind: obs.EvCallback, Service: cb.Service, Port: cb.Tag})
	}
	t.inbox <- cb
}

// Invoke sends payload to a service port asynchronously; the outcome
// arrives on Inbox. Like the bus, it errors only structurally: unknown
// service, closed transport, unmarshalable payload.
func (t *HTTPTransport) Invoke(serviceName, port string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("transport: invoke %s.%s: %w", serviceName, port, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("transport: invoke %s.%s: %w", serviceName, port, ErrBusClosed)
	}
	_, local := t.locals[serviceName]
	url := t.cfg.Routes[serviceName]
	if !local && url == "" {
		t.mu.Unlock()
		return fmt.Errorf("transport: invoke %s.%s: unknown service", serviceName, port)
	}
	snd := t.senders[serviceName]
	if snd == nil {
		snd = &httpSender{ch: make(chan Frame, 1024)}
		t.senders[serviceName] = snd
		t.wg.Add(1)
		go t.send(snd, serviceName, url)
	}
	t.inflight.Add(1)
	t.mu.Unlock()

	if c := t.counter("transport_invoke_total", serviceName, port); c != nil {
		c.Inc()
	}
	t.emit(obs.Event{Kind: obs.EvInvoke, Service: serviceName, Port: port})
	if t.breakers != nil {
		if ok, trn := t.breakers.get(serviceName, port).admit(t.breakers.cfg); !ok {
			t.fastFail(serviceName, port)
			t.inflight.Done()
			return nil
		} else if trn == breakerWentHalf {
			if g := t.gauge(serviceName, port); g != nil {
				g.Set(breakerHalfOpen)
			}
			t.emit(obs.Event{Kind: obs.EvBreakerHalfOpen, Service: serviceName, Port: port})
		}
	}
	snd.ch <- Frame{V: 1, Run: t.cfg.Run, Seq: t.seq.Add(1), From: t.cfg.Node,
		Service: serviceName, Port: port, Payload: raw}
	return nil
}

// fastFail delivers the breaker-open callback for a rejected
// invocation without a network round trip.
func (t *HTTPTransport) fastFail(service, port string) {
	if c := t.counter("transport_breaker_fastfail_total", service, port); c != nil {
		c.Inc()
	}
	t.deliver(Callback{Service: service, Tag: port,
		Err: fmt.Errorf("transport: %s.%s: %w", service, port, ErrBreakerOpen)})
}

// send is the per-destination sender goroutine: frames resolve in
// order, each into callbacks on the inbox plus a breaker verdict.
func (t *HTTPTransport) send(snd *httpSender, service, url string) {
	defer t.wg.Done()
	for f := range snd.ch {
		var res DeliverResult
		var err error
		if url == "" {
			res, err = t.Deliver(f)
		} else {
			res, err = t.post(url, f)
		}
		faulted := err != nil
		if err != nil {
			t.deliver(Callback{Service: service, Tag: f.Port,
				Err: fmt.Errorf("transport: %s.%s: %w", service, f.Port, err)})
		} else {
			for _, cf := range res.Callbacks {
				cb := cf.callback()
				if cb.Err != nil {
					faulted = true
				}
				t.deliver(cb)
			}
		}
		t.recordOutcome(service, f.Port, faulted)
		t.inflight.Done()
	}
}

// recordOutcome feeds one resolved invocation into the port's breaker.
func (t *HTTPTransport) recordOutcome(service, port string, faulted bool) {
	if t.breakers == nil {
		return
	}
	switch trn, consec, probeFailed := t.breakers.get(service, port).record(faulted, t.breakers.cfg); trn {
	case breakerTripped:
		if c := t.counter("transport_breaker_trips_total", service, port); c != nil {
			c.Inc()
		}
		if g := t.gauge(service, port); g != nil {
			g.Set(breakerOpen)
		}
		ev := obs.Event{Kind: obs.EvBreakerOpen, Service: service, Port: port, Value: float64(consec)}
		if probeFailed {
			ev.Detail = "probe failed"
		}
		t.emit(ev)
	case breakerReclosed:
		if g := t.gauge(service, port); g != nil {
			g.Set(breakerClosed)
		}
		t.emit(obs.Event{Kind: obs.EvBreakerClose, Service: service, Port: port})
	}
}

// Call sends one frame synchronously and returns its error — the
// enactment fabric's primitive for cross-node notes, where the caller
// needs completion, not a callback. Retries cover transient faults and
// the peer's registration warm-up; breakers do not apply (a note must
// eventually land or the run fails).
func (t *HTTPTransport) Call(serviceName, port string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("transport: call %s.%s: %w", serviceName, port, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("transport: call %s.%s: %w", serviceName, port, ErrBusClosed)
	}
	_, local := t.locals[serviceName]
	url := t.cfg.Routes[serviceName]
	if !local && url == "" {
		t.mu.Unlock()
		return fmt.Errorf("transport: call %s.%s: unknown service", serviceName, port)
	}
	t.inflight.Add(1)
	t.mu.Unlock()
	defer t.inflight.Done()

	f := Frame{V: 1, Run: t.cfg.Run, Seq: t.seq.Add(1), From: t.cfg.Node,
		Service: serviceName, Port: port, Payload: raw}
	var res DeliverResult
	if url == "" {
		res, err = t.Deliver(f)
	} else {
		res, err = t.post(url, f)
	}
	if err != nil {
		return fmt.Errorf("transport: call %s.%s: %w", serviceName, port, err)
	}
	for _, cf := range res.Callbacks {
		if cf.Err != "" {
			return fmt.Errorf("transport: call %s.%s: %s", serviceName, port, cf.Err)
		}
	}
	return nil
}

// post sends one frame with retries. Network faults, 5xx, and the
// 404/409 registration window classify transient; other 4xx are
// permanent.
func (t *HTTPTransport) post(url string, f Frame) (DeliverResult, error) {
	body, err := json.Marshal(f)
	if err != nil {
		return DeliverResult{}, Permanent(err)
	}
	endpoint := url + t.cfg.Path
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt < t.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := t.backoff(attempt)
			if t.retry.MaxElapsed > 0 && time.Since(start)+delay > t.retry.MaxElapsed {
				return DeliverResult{}, fmt.Errorf("%w: %v elapsed budget after %d attempts: %v",
					ErrBudgetExhausted, t.retry.MaxElapsed, attempt, lastErr)
			}
			t.retries.Add(1)
			if c := t.counter("transport_retries_total", f.Service, f.Port); c != nil {
				c.Inc()
			}
			time.Sleep(delay)
		}
		req, rqerr := http.NewRequest(http.MethodPost, endpoint, bytes.NewReader(body))
		if rqerr != nil {
			return DeliverResult{}, Permanent(rqerr)
		}
		req.Header.Set("Content-Type", "application/json")
		if t.cfg.Token != "" {
			req.Header.Set("Authorization", "Bearer "+t.cfg.Token)
		}
		resp, err := t.client.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("%v: %w", err, ErrTransient)
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			if rerr != nil {
				lastErr = fmt.Errorf("%v: %w", rerr, ErrTransient)
				continue
			}
			var res DeliverResult
			if err := json.Unmarshal(data, &res); err != nil {
				lastErr = fmt.Errorf("%v: %w", err, ErrTransient)
				continue
			}
			return res, nil
		case resp.StatusCode == http.StatusNotFound,
			resp.StatusCode == http.StatusConflict,
			resp.StatusCode >= http.StatusInternalServerError:
			lastErr = fmt.Errorf("peer %s: %w", resp.Status, ErrTransient)
			continue
		default:
			return DeliverResult{}, Permanent(fmt.Errorf("peer %s: %s", resp.Status, bytes.TrimSpace(data)))
		}
	}
	return DeliverResult{}, fmt.Errorf("%w: %d attempts: %v", ErrBudgetExhausted, t.retry.MaxAttempts, lastErr)
}

// backoff computes the delay before the attempt'th retry: exponential,
// capped, with seeded half-jitter.
func (t *HTTPTransport) backoff(attempt int) time.Duration {
	d := float64(t.retry.Backoff)
	for i := 1; i < attempt; i++ {
		d *= t.retry.Multiplier
		if d >= float64(t.retry.MaxBackoff) {
			d = float64(t.retry.MaxBackoff)
			break
		}
	}
	t.rngMu.Lock()
	frac := 0.5 + 0.5*t.rng.Float64()
	t.rngMu.Unlock()
	return time.Duration(d * frac)
}

// Deliver processes one incoming frame against this node's local
// services — the server mounts it behind the invoke endpoint. A
// (from, seq) pair already processed replays its cached result, making
// retransmits after lost responses idempotent.
func (t *HTTPTransport) Deliver(f Frame) (DeliverResult, error) {
	if f.Run != t.cfg.Run {
		return DeliverResult{}, fmt.Errorf("%w: got %q, serving %q", ErrRunMismatch, f.Run, t.cfg.Run)
	}
	t.mu.Lock()
	ls := t.locals[f.Service]
	t.mu.Unlock()
	if ls == nil {
		return DeliverResult{}, fmt.Errorf("transport: deliver %s.%s: unknown service", f.Service, f.Port)
	}
	key := f.From + "\x00" + strconv.FormatInt(f.Seq, 10)
	t.seenMu.Lock()
	if res, ok := t.seen[key]; ok {
		t.seenMu.Unlock()
		// A replayed (from, seq): the sender retransmitted after a lost
		// response, or the network duplicated the frame. Either way the
		// effect already happened — count the absorption and answer the
		// cached result.
		t.retransmits.Add(1)
		if c := t.counter("transport_retransmit_total", f.Service, f.Port); c != nil {
			c.Inc()
		}
		t.emit(obs.Event{Kind: obs.EvRetransmit, Service: f.Service, Port: f.Port, Detail: f.From})
		return res, nil
	}
	t.seenMu.Unlock()

	res := t.runLocal(ls, f)
	t.seenMu.Lock()
	t.seen[key] = res
	t.seenMu.Unlock()
	return res, nil
}

// runLocal executes one call on a hosted service, serialized per
// service with bus conversation semantics.
func (t *HTTPTransport) runLocal(ls *localService, f Frame) DeliverResult {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.seq++
	if ls.h == nil {
		return DeliverResult{}
	}
	var payload any
	if len(f.Payload) > 0 {
		if err := json.Unmarshal(f.Payload, &payload); err != nil {
			payload = f.Payload
		}
	}
	emits, err := ls.h(&Call{Port: f.Port, Payload: payload, State: ls.state, Seq: ls.seq})
	if err != nil {
		return DeliverResult{Callbacks: []CallbackFrame{{
			Service: ls.name, Tag: f.Port, Err: err.Error(),
			Permanent: errors.Is(err, ErrPermanent),
		}}}
	}
	var cbs []CallbackFrame
	for _, e := range emits {
		raw, merr := json.Marshal(e.Payload)
		if merr != nil {
			cbs = append(cbs, CallbackFrame{Service: ls.name, Tag: e.Tag,
				Err: fmt.Sprintf("marshal emit: %v", merr), Permanent: true})
			continue
		}
		cbs = append(cbs, CallbackFrame{Service: ls.name, Tag: e.Tag, Payload: raw})
	}
	return DeliverResult{Callbacks: cbs}
}

// Close tears the transport down: no new invocations are accepted,
// in-flight sends resolve and deliver their callbacks, then the inbox
// closes — the bus's drain contract, so bindings shut down
// identically over either transport.
func (t *HTTPTransport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	senders := make([]*httpSender, 0, len(t.senders))
	for _, s := range t.senders {
		senders = append(senders, s)
	}
	t.mu.Unlock()
	t.inflight.Wait()
	for _, s := range senders {
		close(s.ch)
	}
	t.wg.Wait()
	close(t.inbox)
}
