package store

import (
	"sync"
	"testing"

	"dscweaver/internal/obs"
)

// healFS is a file layer whose writes all fail while broken: the
// "device" dies and later recovers, which is the scenario Reprobe
// exists for.
type healFS struct {
	mu     sync.Mutex
	broken bool
	faults int
}

func (h *healFS) setBroken(b bool) {
	h.mu.Lock()
	h.broken = b
	h.mu.Unlock()
}

func (h *healFS) open(path string) (File, error) {
	f, err := OSOpenFile(path)
	if err != nil {
		return nil, err
	}
	return &healFile{fs: h, f: f}, nil
}

type healFile struct {
	fs *healFS
	f  File
}

func (hf *healFile) Write(p []byte) (int, error) {
	hf.fs.mu.Lock()
	broken := hf.fs.broken
	if broken {
		hf.fs.faults++
	}
	hf.fs.mu.Unlock()
	if broken {
		return 0, errDisk
	}
	return hf.f.Write(p)
}

func (hf *healFile) Sync() error  { return hf.f.Sync() }
func (hf *healFile) Close() error { return hf.f.Close() }

var errDisk = &deviceGone{}

type deviceGone struct{}

func (*deviceGone) Error() string { return "device gone" }

// TestReprobeHealsDegradedStore pins the restartless heal path: a
// write fault latches the store degraded; Reprobe against a
// still-broken disk fails and stays degraded; once the disk recovers,
// Reprobe clears the latch in place, appends flow again, and the
// replayed catalog is exactly what reached the disk.
func TestReprobeHealsDegradedStore(t *testing.T) {
	dir := t.TempDir()
	fs := &healFS{}
	reg := obs.NewRegistry()
	s, err := Open(dir, Options{OpenFile: fs.open, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	id1, want1 := writeRun(t, s, 1, "weave", 3, nil)

	// The device dies: the next run's finish flush faults and the
	// store latches degraded. Its records never reach the disk.
	fs.setBroken(true)
	id2, _ := writeRun(t, s, 2, "weave", 3, nil)
	if !s.Degraded() {
		t.Fatal("store not degraded after write faults")
	}
	if got := reg.Counter("store_reprobe_total").Value(); got != 0 {
		t.Fatalf("store_reprobe_total = %d before any reprobe", got)
	}

	// Probing a still-broken disk must fail, stay degraded, and count.
	if s.Reprobe() {
		t.Fatal("Reprobe healed against a broken disk")
	}
	if !s.Degraded() {
		t.Fatal("failed Reprobe cleared the degrade latch")
	}
	if got := reg.Counter("store_reprobe_total").Value(); got != 1 {
		t.Fatalf("store_reprobe_total = %d after one failed reprobe, want 1", got)
	}
	if fs.faults == 0 {
		t.Fatal("failed reprobe never touched the broken disk")
	}

	// The device recovers.
	fs.setBroken(false)
	if !s.Reprobe() {
		t.Fatal("Reprobe failed against a healed disk")
	}
	if s.Degraded() {
		t.Fatal("store still degraded after successful reprobe")
	}
	if got := reg.Gauge("store_degraded").Value(); got != 0 {
		t.Fatalf("store_degraded = %d after heal, want 0", got)
	}

	// Run 1 survived with its exact bytes; run 2 never hit the disk
	// and must not resurface as a ghost.
	evs, err := s.Events(id1)
	if err != nil {
		t.Fatalf("events %s after heal: %v", id1, err)
	}
	if len(evs) != len(want1) {
		t.Fatalf("run 1 replays %d events after heal, want %d", len(evs), len(want1))
	}
	for i := range evs {
		if string(evs[i]) != want1[i] {
			t.Fatalf("run 1 event %d = %s, want %s", i, evs[i], want1[i])
		}
	}
	if _, ok := s.Get(id2); ok {
		t.Fatalf("run %s (lost to the fault window) ghosts in the healed catalog", id2)
	}

	// Appends flow again without a restart, and survive a real one.
	id3, want3 := writeRun(t, s, 3, "weave", 2, nil)
	if err := s.Close(); err != nil {
		t.Fatalf("close healed store: %v", err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, id := range []string{id1, id3} {
		m, ok := s2.Get(id)
		if !ok || !m.Done {
			t.Fatalf("run %s missing or unfinished after restart: %+v ok=%v", id, m, ok)
		}
	}
	evs, err = s2.Events(id3)
	if err != nil || len(evs) != len(want3) {
		t.Fatalf("run 3 replay after restart: %d events, err %v", len(evs), err)
	}

	// A healthy store reprobes as a cheap no-op.
	if !s2.Reprobe() {
		t.Fatal("healthy Reprobe returned false")
	}
}
