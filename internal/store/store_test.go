package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dscweaver/internal/obs"
)

// writeRun appends one complete run of n events and returns its id
// plus the exact marshaled event bytes the store must replay.
func writeRun(t *testing.T, s *Store, seq int64, kind string, n int, runErr error) (string, []string) {
	t.Helper()
	id := fmt.Sprintf("%s-%06d", kind, seq)
	app := s.Begin(id, seq, kind, time.Unix(1700000000+seq, 0).UTC())
	var want []string
	for i := 0; i < n; i++ {
		e := obs.Event{
			Mono:     time.Duration(i) * time.Millisecond,
			Layer:    obs.LayerEngine,
			Kind:     obs.EvActivityStart,
			Activity: fmt.Sprintf("a_%d_%d", seq, i),
			Seq:      i,
			Detail:   strings.Repeat("x", i%17),
		}
		app.Emit(e)
		raw, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, string(raw))
	}
	app.Finish(fmt.Sprintf("proc_%d", seq), runErr)
	return id, want
}

// assertEvents asserts the store replays id's events byte-identical.
func assertEvents(t *testing.T, s *Store, id string, want []string) {
	t.Helper()
	got, err := s.Events(id)
	if err != nil {
		t.Fatalf("Events(%s): %v", id, err)
	}
	if len(got) != len(want) {
		t.Fatalf("Events(%s): got %d events, want %d", id, len(got), len(want))
	}
	for i := range got {
		if string(got[i]) != want[i] {
			t.Fatalf("Events(%s)[%d]:\n got %s\nwant %s", id, i, got[i], want[i])
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{}
	var ids []string
	for seq := int64(1); seq <= 5; seq++ {
		var runErr error
		if seq == 3 {
			runErr = errors.New("engine: boom")
		}
		id, evs := writeRun(t, s, seq, "weave", int(seq)+1, runErr)
		want[id] = evs
		ids = append(ids, id)
	}
	list := s.List(0)
	if len(list) != 5 {
		t.Fatalf("List: %d runs, want 5", len(list))
	}
	if list[0].ID != ids[4] || list[4].ID != ids[0] {
		t.Fatalf("List order not newest-first: %v", list)
	}
	m, ok := s.Get(ids[2])
	if !ok {
		t.Fatalf("Get(%s) missing", ids[2])
	}
	if !m.Done || m.OK || m.Err != "engine: boom" || m.Proc != "proc_3" {
		t.Fatalf("Get(%s): %+v, want done error run", ids[2], m)
	}
	for id, evs := range want {
		assertEvents(t, s, id, evs)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: everything replays from segments + sidecars.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.MaxSeq(); got != 5 {
		t.Fatalf("MaxSeq after reopen: %d, want 5", got)
	}
	if got := len(s2.List(0)); got != 5 {
		t.Fatalf("List after reopen: %d runs, want 5", got)
	}
	for id, evs := range want {
		assertEvents(t, s2, id, evs)
		m, ok := s2.Get(id)
		if !ok || !m.Done {
			t.Fatalf("Get(%s) after reopen: %+v ok=%v", id, m, ok)
		}
	}
	if got := s2.List(2); len(got) != 2 || got[0].ID != ids[4] {
		t.Fatalf("List(2): %v", got)
	}
}

func TestStoreRotationAndSpanningRun(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// One big run: its events must span several segments.
	id, evs := writeRun(t, s, 1, "weave", 64, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %v", segs)
	}
	s2, err := Open(dir, Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	assertEvents(t, s2, id, evs)
	m, _ := s2.Get(id)
	if m.Events != 64 {
		t.Fatalf("Events count: %d, want 64", m.Events)
	}
}

func TestStoreRetentionCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 1 << 10, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := map[string][]string{}
	for seq := int64(1); seq <= 40; seq++ {
		id, evs := writeRun(t, s, seq, "weave", 4, nil)
		want[id] = evs
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 3 {
		t.Fatalf("retention kept %d segments, want <= 3", len(segs))
	}
	list := s.List(0)
	if len(list) == 0 || len(list) >= 40 {
		t.Fatalf("List after compaction: %d runs", len(list))
	}
	// Newest runs survive and replay; oldest are gone.
	if list[0].ID != "weave-000040" {
		t.Fatalf("newest run missing: %v", list[0])
	}
	assertEvents(t, s, list[0].ID, want[list[0].ID])
	if _, ok := s.Get("weave-000001"); ok {
		t.Fatal("oldest run survived retention")
	}
	if _, err := s.Events("weave-000001"); err == nil {
		t.Fatal("Events for compacted run should error")
	}
}

func TestStoreIndexRebuild(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{}
	for seq := int64(1); seq <= 10; seq++ {
		id, evs := writeRun(t, s, seq, "simulate", 6, nil)
		want[id] = evs
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Delete every sidecar: reopen must rebuild from segment bytes.
	matches, err := filepath.Glob(filepath.Join(dir, "*.idx"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no sidecars found: %v %v", matches, err)
	}
	for _, m := range matches {
		os.Remove(m)
	}
	s2, err := Open(dir, Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.List(0)); got != 10 {
		t.Fatalf("List after rebuild: %d, want 10", got)
	}
	for id, evs := range want {
		assertEvents(t, s2, id, evs)
	}
	// Sidecars were rewritten for the sealed segments.
	matches, _ = filepath.Glob(filepath.Join(dir, "*.idx"))
	if len(matches) == 0 {
		t.Fatal("sidecars not rewritten")
	}
}

// faultFile fails writes after a budget of bytes, modeling ENOSPC.
type faultFile struct {
	f      File
	budget *int64
	mu     *sync.Mutex
}

var errNoSpace = errors.New("no space left on device")

func (ff faultFile) Write(p []byte) (int, error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if *ff.budget <= 0 {
		return 0, errNoSpace
	}
	if int64(len(p)) > *ff.budget {
		// Short write: part of the line lands, then the device is full.
		n, _ := ff.f.Write(p[:*ff.budget])
		*ff.budget = 0
		return n, errNoSpace
	}
	*ff.budget -= int64(len(p))
	return ff.f.Write(p)
}

func (ff faultFile) Sync() error  { return ff.f.Sync() }
func (ff faultFile) Close() error { return ff.f.Close() }

func TestStoreDegradesOnWriteFault(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	budget := int64(4 << 10)
	var mu sync.Mutex
	opts := Options{
		Metrics: reg,
		OpenFile: func(path string) (File, error) {
			f, err := OSOpenFile(path)
			if err != nil {
				return nil, err
			}
			return faultFile{f: f, budget: &budget, mu: &mu}, nil
		},
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var lastGood string
	var lastGoodEvs []string
	degradedAt := -1
	for seq := int64(1); seq <= 200; seq++ {
		id, evs := writeRun(t, s, seq, "weave", 8, nil)
		if s.Degraded() {
			degradedAt = int(seq)
			break
		}
		lastGood, lastGoodEvs = id, evs
	}
	if degradedAt < 0 {
		t.Fatal("store never degraded under write faults")
	}
	if !errors.Is(s.Err(), errNoSpace) {
		t.Fatalf("Err: %v, want errNoSpace", s.Err())
	}
	if g := reg.Gauge("store_degraded").Value(); g != 1 {
		t.Fatalf("store_degraded gauge: %d, want 1", g)
	}
	if reg.Counter("store_write_errors_total").Value() == 0 {
		t.Fatal("store_write_errors_total not incremented")
	}
	// Reads keep serving the persisted prefix.
	assertEvents(t, s, lastGood, lastGoodEvs)
	// Appends after degradation are safe no-ops.
	app := s.Begin("weave-999999", 999999, "weave", time.Now())
	app.Emit(obs.Event{Kind: obs.EvRunBegin})
	app.Finish("p", nil)
	if _, ok := s.Get("weave-999999"); ok {
		t.Fatal("degraded store registered a new run")
	}

	// A reopen after the fault clears recovers everything flushed: the
	// torn half-line the short write left behind is quarantined.
	s.Close()
	budget = 1 << 40
	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Degraded() {
		t.Fatalf("reopened store degraded: %v", s2.Err())
	}
	assertEvents(t, s2, lastGood, lastGoodEvs)
}

func TestStoreListRange(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for seq := int64(1); seq <= 10; seq++ {
		writeRun(t, s, seq, "weave", 1, nil)
	}
	from := time.Unix(1700000003, 0).UTC()
	to := time.Unix(1700000007, 0).UTC()
	got := s.ListRange(from, to, 0)
	if len(got) != 5 {
		t.Fatalf("ListRange: %d runs, want 5: %v", len(got), got)
	}
	for _, m := range got {
		if m.Began.Before(from) || m.Began.After(to) {
			t.Fatalf("run %s began %v outside [%v, %v]", m.ID, m.Began, from, to)
		}
	}
	if got := s.ListRange(from, time.Time{}, 0); len(got) != 8 {
		t.Fatalf("open-ended ListRange: %d, want 8", len(got))
	}
	if got := s.ListRange(from, to, 2); len(got) != 2 {
		t.Fatalf("limited ListRange: %d, want 2", len(got))
	}
}

func TestStoreUnknownRun(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Events("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("Events(nope): %v", err)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get(nope) succeeded")
	}
}

// TestStoreConcurrentAppenders races many runs' appenders against
// concurrent reads; run under -race in CI.
func TestStoreConcurrentAppenders(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const runs = 16
	var wg sync.WaitGroup
	ids := make([]string, runs)
	for i := 0; i < runs; i++ {
		i := i
		ids[i] = fmt.Sprintf("weave-%06d", i+1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			app := s.Begin(ids[i], int64(i+1), "weave", time.Now().UTC())
			for j := 0; j < 50; j++ {
				app.Emit(obs.Event{Kind: obs.EvActivityStart, Activity: fmt.Sprintf("a%d_%d", i, j), Seq: j})
			}
			app.Finish("p", nil)
		}()
	}
	// Concurrent list/read load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 50; k++ {
			for _, m := range s.List(0) {
				s.Events(m.ID)
			}
		}
	}()
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, id := range ids {
		evs, err := s2.Events(id)
		if err != nil {
			t.Fatalf("Events(%s): %v", id, err)
		}
		if len(evs) != 50 {
			t.Fatalf("run %d: %d events, want 50", i, len(evs))
		}
	}
}

// TestOrphanAppendsAfterCompaction: once compaction drops a run (its
// begin segment is gone, so it can never replay completely again),
// later Emit/Finish calls through its appender must be refused rather
// than resurrect a ghost catalog entry with zero Began and empty Kind.
func TestOrphanAppendsAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes 1: every record rotates into its own segment, so
	// retention is exercised record by record.
	s, err := Open(dir, Options{SegmentBytes: 1, MaxSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	began := time.Unix(1700000000, 0).UTC()
	a := s.Begin("weave-000001", 1, "weave", began)             // seg 1
	a.Emit(obs.Event{Kind: obs.EvActivityStart, Activity: "x"}) // seals seg 1, lands in seg 2
	s.Begin("weave-000002", 2, "weave", began.Add(time.Second)) // seals seg 2, compacts seg 1 away
	if _, ok := s.Get("weave-000001"); ok {
		t.Fatal("run 1 still cataloged after its begin segment was compacted")
	}
	// Orphaned appends for the compacted run must not re-create it.
	a.Emit(obs.Event{Kind: obs.EvActivityStart, Activity: "y"})
	a.Finish("proc", nil)
	if _, ok := s.Get("weave-000001"); ok {
		t.Fatal("orphaned event/finish appends resurrected a ghost catalog entry")
	}
	for _, m := range s.List(0) {
		if m.Began.IsZero() || m.Kind == "" {
			t.Fatalf("ghost run in List: %+v", m)
		}
	}
	if s.Degraded() {
		t.Fatalf("refusing an orphan append must not degrade the store: %v", s.Err())
	}
}

// TestReplaySkipsOrphanedSegmentSlices: retained segments can hold
// event records of a run whose begin segment compaction already
// deleted. Replaying the chain must not resurrect such runs as ghost
// catalog entries (zero Began, empty Kind, Seq 0) in List.
func TestReplaySkipsOrphanedSegmentSlices(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 1, MaxSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	began := time.Unix(1700000000, 0).UTC()
	a := s.Begin("weave-000001", 1, "weave", began)             // seg 1: run 1 begin
	a.Emit(obs.Event{Kind: obs.EvActivityStart, Activity: "x"}) // seg 2: run 1 event
	s.Begin("weave-000002", 2, "weave", began.Add(time.Second)) // seg 3; compacts seg 1, drops run 1
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// On disk: seg 2 (run 1's orphaned event slice) and seg 3 (run 2's
	// begin). Reopen with laxer retention so nothing compacts at Open
	// and the orphaned slice is actually replayed.
	s2, err := Open(dir, Options{SegmentBytes: 1, MaxSegments: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get("weave-000001"); ok {
		t.Fatal("replay resurrected a run whose begin segment was compacted")
	}
	list := s2.List(0)
	if len(list) != 1 || list[0].ID != "weave-000002" {
		t.Fatalf("List after reopen: %+v, want run 2 only", list)
	}
	if list[0].Began.IsZero() || list[0].Kind != "weave" || list[0].Seq != 2 {
		t.Fatalf("run 2 metadata lost across reopen: %+v", list[0])
	}
	if got := s2.MaxSeq(); got != 2 {
		t.Fatalf("MaxSeq after reopen: %d, want 2", got)
	}
}
