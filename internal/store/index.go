package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// maxLineBytes bounds one segment line during scans; anything longer
// is treated as corruption (the writer never produces lines near it).
const maxLineBytes = 8 << 20

const indexVersion = 1

// segmentIndex is the sparse sidecar index of one segment: per run,
// the byte range its records span plus enough metadata to answer
// /v1/runs without touching the segment; per segment, the wall-clock
// range of the runs that began in it for time-range pruning.
type segmentIndex struct {
	Version int         `json:"version"`
	Segment string      `json:"segment"`
	Size    int64       `json:"size"` // segment bytes the index covers
	Records int         `json:"records"`
	MinWall time.Time   `json:"min_wall,omitempty"`
	MaxWall time.Time   `json:"max_wall,omitempty"`
	Runs    []*runEntry `json:"runs"`

	byID map[string]*runEntry // writer-side lookup; rebuilt lazily
}

// runEntry is one run's slice of one segment. First/End bound every
// record of the run in this segment (other runs' records interleave
// inside the range; readers filter by run id), so an event replay
// seeks straight to First instead of scanning the segment head.
type runEntry struct {
	ID     string    `json:"id"`
	Seq    int64     `json:"seq,omitempty"`
	Kind   string    `json:"kind,omitempty"`
	Began  time.Time `json:"began,omitempty"`
	First  int64     `json:"first"`
	End    int64     `json:"end"`
	Events int       `json:"events,omitempty"`
	Done   bool      `json:"done,omitempty"`
	OK     bool      `json:"ok,omitempty"`
	Err    string    `json:"err,omitempty"`
	Proc   string    `json:"proc,omitempty"`
}

func newSegmentIndex(segment string) *segmentIndex {
	return &segmentIndex{
		Version: indexVersion,
		Segment: segment,
		byID:    map[string]*runEntry{},
	}
}

// observe folds one record at [off, off+n) into the index.
func (x *segmentIndex) observe(rec record, off, n int64) {
	x.Records++
	re, ok := x.byID[rec.Run]
	if !ok {
		re = &runEntry{ID: rec.Run, First: off}
		x.byID[rec.Run] = re
		x.Runs = append(x.Runs, re)
	}
	re.End = off + n
	switch rec.T {
	case recBegin:
		re.Seq, re.Kind, re.Began = rec.Seq, rec.Kind, rec.Wall
		if x.MinWall.IsZero() || rec.Wall.Before(x.MinWall) {
			x.MinWall = rec.Wall
		}
		if rec.Wall.After(x.MaxWall) {
			x.MaxWall = rec.Wall
		}
	case recEvent:
		re.Events++
	case recFinish:
		re.Done, re.OK, re.Err, re.Proc = true, rec.OK, rec.Err, rec.Proc
	}
}

// buildIndex scans a segment and indexes its longest valid line
// prefix. It returns the index and the prefix size in bytes; a
// malformed or torn line simply ends the prefix (corruption is the
// caller's concern: recovery quarantines it, sealed-segment rebuilds
// serve the prefix).
func buildIndex(path string) (*segmentIndex, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: segment %s: %w", path, err)
	}
	defer f.Close()
	idx := newSegmentIndex(filepath.Base(path))
	br := bufio.NewReaderSize(f, 64<<10)
	var off int64
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// io.EOF with a partial line is a torn tail; any other
			// read error likewise ends the valid prefix.
			break
		}
		var rec record
		if int64(len(line)) > maxLineBytes || json.Unmarshal(line, &rec) != nil || !rec.valid() {
			break
		}
		idx.observe(rec, off, int64(len(line)))
		off += int64(len(line))
	}
	idx.Size = off
	return idx, off, nil
}

// loadOrRebuildIndex returns a sealed segment's sidecar index,
// rebuilding (and best-effort rewriting) it when the sidecar is
// missing, unparseable, from another version, or does not match the
// segment's current size — a sidecar is a cache, never trusted over
// the segment bytes.
func (s *Store) loadOrRebuildIndex(path string) (*segmentIndex, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: %w", path, err)
	}
	if data, err := os.ReadFile(indexPath(path)); err == nil {
		var idx segmentIndex
		if json.Unmarshal(data, &idx) == nil &&
			idx.Version == indexVersion &&
			idx.Segment == filepath.Base(path) &&
			idx.Size == st.Size() &&
			idx.coherent() {
			return &idx, nil
		}
	}
	idx, _, err := buildIndex(path)
	if err != nil {
		return nil, err
	}
	if werr := s.writeIndex(path, idx); werr != nil {
		s.degrade(werr)
	}
	return idx, nil
}

// coherent sanity-checks a loaded sidecar: every run range must lie
// inside the covered size and be well-formed, so a corrupted sidecar
// cannot send readers past the segment or into negative seeks.
func (x *segmentIndex) coherent() bool {
	for _, re := range x.Runs {
		if re == nil || re.ID == "" || re.First < 0 || re.End < re.First || re.End > x.Size || re.Events < 0 {
			return false
		}
	}
	return true
}

// writeIndex atomically replaces a segment's sidecar index (write to
// a temp name through the store's file layer, then rename).
func (s *Store) writeIndex(segPath string, idx *segmentIndex) error {
	data, err := json.Marshal(idx)
	if err != nil {
		return fmt.Errorf("store: index %s: %w", indexPath(segPath), err)
	}
	tmp := indexPath(segPath) + ".tmp"
	os.Remove(tmp)
	f, err := s.opts.OpenFile(tmp)
	if err != nil {
		return fmt.Errorf("store: index %s: %w", tmp, err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: index %s: %w", tmp, err)
	}
	if s.opts.Fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: index %s: %w", tmp, err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: index %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, indexPath(segPath)); err != nil {
		return fmt.Errorf("store: index %s: %w", indexPath(segPath), err)
	}
	return nil
}

// readRunEvents replays one run's event payloads from segment bytes
// [first, end). A malformed line ends the read with the valid prefix
// plus an error naming the segment and offset.
func readRunEvents(path, id string, first, end int64) ([]json.RawMessage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: %w", path, err)
	}
	defer f.Close()
	if _, err := f.Seek(first, io.SeekStart); err != nil {
		return nil, fmt.Errorf("store: segment %s: offset %d: %w", path, first, err)
	}
	br := bufio.NewReaderSize(f, 64<<10)
	var out []json.RawMessage
	off := first
	for off < end {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return out, fmt.Errorf("store: segment %s: offset %d: torn line: %w", path, off, err)
		}
		var rec record
		if int64(len(line)) > maxLineBytes || json.Unmarshal(line, &rec) != nil || !rec.valid() {
			return out, fmt.Errorf("store: segment %s: offset %d: malformed record", path, off)
		}
		if rec.Run == id && rec.T == recEvent {
			out = append(out, rec.Ev)
		}
		off += int64(len(line))
	}
	return out, nil
}
