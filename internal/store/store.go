// Package store is the persistent run/event store behind dscweaverd's
// /v1/runs surface: a segmented append-only log of run lifecycle
// records (begin, event, finish) written as rotating JSONL segments,
// each sealed segment carrying a sparse sidecar index for run-id and
// time-range lookup without rescanning the log.
//
// Durability model: every record is line-framed JSON appended to the
// active segment; a run's records are flushed to the OS when the run
// finishes (and fsynced when Options.Fsync is set). Opening a store
// replays the segment chain: sealed segments load (or rebuild) their
// indexes, and the segment that was active at crash time is recovered
// to its longest valid line prefix — a torn tail (a half-written line,
// or anything after the first malformed line) is quarantined to a
// sidecar file and truncated away, never fatal and never served.
//
// Failure model: the store must not take the process down. Any write
// error (short write, ENOSPC, failed fsync, failed rotation) latches
// the store into degraded mode: appends become no-ops, the
// store_degraded gauge rises, and reads keep serving everything that
// was persisted before the fault. The owning server falls back to its
// in-memory ring — memory-only mode — and stays live.
package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"dscweaver/internal/obs"
)

// record is one line of a segment: a run beginning, one of its
// lifecycle events, or its terminal status. Ev is kept as raw JSON so
// replaying a run's event log returns the exact bytes that were
// appended, not a decode/re-encode round trip.
type record struct {
	T    string          `json:"t"` // "begin", "event" or "finish"
	Run  string          `json:"run"`
	Seq  int64           `json:"seq,omitempty"`  // begin: numeric id suffix
	Kind string          `json:"kind,omitempty"` // begin: "weave" or "simulate"
	Wall time.Time       `json:"wall,omitempty"` // begin: start time
	Proc string          `json:"proc,omitempty"` // finish: process name
	OK   bool            `json:"ok,omitempty"`   // finish: terminal status
	Err  string          `json:"err,omitempty"`  // finish: terminal error
	Ev   json.RawMessage `json:"ev,omitempty"`   // event payload
}

const (
	recBegin  = "begin"
	recEvent  = "event"
	recFinish = "finish"
)

// valid reports whether a decoded record is structurally usable; the
// recovery scan treats an invalid record like a malformed line.
func (r *record) valid() bool {
	if r.Run == "" {
		return false
	}
	switch r.T {
	case recBegin, recEvent, recFinish:
		return true
	}
	return false
}

// File is the slice of *os.File the store writes through. Tests and
// the chaos injector substitute faulting implementations (short
// writes, ENOSPC-style errors, fsync faults) via Options.OpenFile.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSOpenFile is the default Options.OpenFile: create-or-append on the
// real filesystem. Fault-injecting wrappers (tests, the chaos
// injector) delegate to it for the actual bytes.
func OSOpenFile(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Options tunes one store.
type Options struct {
	// SegmentBytes rotates the active segment before an append would
	// push it past this size (default 8 MiB).
	SegmentBytes int64
	// MaxSegments is the retention bound: compaction deletes the oldest
	// segments beyond it, together with every run whose records begin
	// there (default 64).
	MaxSegments int
	// Fsync syncs the active segment on every run finish and on seal.
	// Off by default: the flush-to-OS boundary already survives process
	// crashes, fsync additionally survives power loss.
	Fsync bool
	// OpenFile opens a file for appending (nil = os.OpenFile). The
	// chaos injector hooks the sink here.
	OpenFile func(path string) (File, error)
	// Metrics registers the store gauges/counters when set.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 64
	}
	if o.OpenFile == nil {
		o.OpenFile = OSOpenFile
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// RunMeta is the catalog entry for one run, aggregated across the
// segments its records land in.
type RunMeta struct {
	ID     string    `json:"id"`
	Seq    int64     `json:"seq"`
	Kind   string    `json:"kind"`
	Began  time.Time `json:"began"`
	Proc   string    `json:"proc,omitempty"`
	Done   bool      `json:"done"`
	OK     bool      `json:"ok"`
	Err    string    `json:"err,omitempty"`
	Events int       `json:"events"`
}

// loc names one contiguous byte range of one segment holding records
// of a run.
type loc struct {
	seg        int
	first, end int64
}

type runState struct {
	meta RunMeta
	locs []loc
}

// extend grows the run's newest location (or opens one) to cover a
// record appended at [off, off+n) of segment seg.
func (rs *runState) extend(seg int, off, n int64) {
	if len(rs.locs) > 0 && rs.locs[len(rs.locs)-1].seg == seg {
		rs.locs[len(rs.locs)-1].end = off + n
		return
	}
	rs.locs = append(rs.locs, loc{seg: seg, first: off, end: off + n})
}

// Store is one opened store directory. Safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	runs     map[string]*runState
	order    []string // run ids, oldest first (compaction leaves gaps; List filters)
	maxSeq   int64
	sealed   []*segmentMeta // oldest first
	active   *activeSegment
	degraded bool
	firstErr error

	mDegraded    *obs.Gauge
	mSegments    *obs.Gauge
	mRuns        *obs.Gauge
	mWriteErrs   *obs.Counter
	mQuarantined *obs.Counter
	mCompacted   *obs.Counter
	mRecovered   *obs.Counter
	mReprobes    *obs.Counter
}

// Open opens (creating if needed) the store at dir and replays its
// segment chain: sealed segments load or rebuild their sidecar
// indexes, the newest segment is recovered to its valid prefix with
// the torn tail quarantined, and a fresh active segment begins.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:          dir,
		opts:         opts,
		runs:         map[string]*runState{},
		mDegraded:    opts.Metrics.Gauge("store_degraded"),
		mSegments:    opts.Metrics.Gauge("store_segments"),
		mRuns:        opts.Metrics.Gauge("store_runs"),
		mWriteErrs:   opts.Metrics.Counter("store_write_errors_total"),
		mQuarantined: opts.Metrics.Counter("store_quarantined_bytes_total"),
		mCompacted:   opts.Metrics.Counter("store_compacted_segments_total"),
		mRecovered:   opts.Metrics.Counter("store_recovered_runs_total"),
		mReprobes:    opts.Metrics.Counter("store_reprobe_total"),
	}
	if err := s.replay(); err != nil {
		return nil, err
	}
	next := 1
	if n := len(s.sealed); n > 0 {
		next = s.sealed[n-1].n + 1
	}
	if err := s.openActive(next); err != nil {
		// A store that cannot open its first active segment starts
		// degraded: reads still serve the replayed history.
		s.degrade(err)
	}
	s.compactLocked()
	s.updateGauges()
	return s, nil
}

// replay loads the segment chain into the catalog. Callers own s.mu
// exclusively (Open only).
func (s *Store) replay() error {
	segs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	for i, n := range segs {
		path := s.segPath(n)
		var idx *segmentIndex
		if i == len(segs)-1 {
			// The segment that was active at shutdown or crash time:
			// recover the valid prefix, quarantine the tail.
			idx, err = s.recoverSegment(path)
		} else {
			idx, err = s.loadOrRebuildIndex(path)
		}
		if err != nil {
			return err
		}
		s.sealed = append(s.sealed, &segmentMeta{n: n, path: path, idx: idx})
		s.absorbIndex(n, idx)
	}
	return nil
}

// absorbIndex folds one segment's index into the run catalog.
func (s *Store) absorbIndex(seg int, idx *segmentIndex) {
	for _, re := range idx.Runs {
		rs, ok := s.runs[re.ID]
		if !ok {
			if re.Seq == 0 && re.Kind == "" && re.Began.IsZero() {
				// An orphaned slice: this segment holds only event or
				// finish records of a run whose begin segment was
				// compacted away (segments absorb oldest-first, so a
				// surviving begin would already have an entry). The run
				// can never replay completely — skip it rather than
				// resurrect a ghost with zero Began and empty Kind.
				continue
			}
			rs = &runState{meta: RunMeta{
				ID: re.ID, Seq: re.Seq, Kind: re.Kind, Began: re.Began,
			}}
			s.runs[re.ID] = rs
			s.order = append(s.order, re.ID)
			s.mRecovered.Inc()
		}
		rs.meta.Events += re.Events
		if re.Done {
			rs.meta.Done, rs.meta.OK, rs.meta.Err = true, re.OK, re.Err
		}
		if re.Proc != "" {
			rs.meta.Proc = re.Proc
		}
		rs.locs = append(rs.locs, loc{seg: seg, first: re.First, end: re.End})
		if re.Seq > s.maxSeq {
			s.maxSeq = re.Seq
		}
	}
}

// MaxSeq reports the highest numeric run sequence the store has seen;
// a restarted server resumes its id counter past it so stored and new
// run ids never collide.
func (s *Store) MaxSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxSeq
}

// Degraded reports whether a write fault has latched the store into
// memory-only fallback.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Err returns the first write fault (nil while healthy).
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

// Reprobe attempts to heal a degraded store in place: the segment
// chain is re-replayed from disk — the segment abandoned at degrade
// time recovers to its longest valid line prefix exactly like a crash
// — and a fresh active segment opens past it. On success the degrade
// latch clears and appends flow again, so a transient disk fault no
// longer requires a restart. On failure the store stays degraded; when
// the replay itself succeeded the freshly rebuilt catalog is kept (it
// is disk truth), otherwise the old catalog keeps serving reads. A
// healthy store returns true without touching the disk.
//
// Note the rebuild drops catalog entries whose records never reached
// the disk (they were buffered when the fault hit): the owning server
// re-appends those runs from its in-memory ring after a heal.
func (s *Store) Reprobe() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.degraded {
		return true
	}
	s.mReprobes.Inc()
	runs, order, sealed, maxSeq := s.runs, s.order, s.sealed, s.maxSeq
	s.runs, s.order, s.sealed, s.maxSeq = map[string]*runState{}, nil, nil, 0
	s.active = nil
	// Clear the latch so a fault during the probe re-latches through
	// degrade() instead of being swallowed by its already-degraded
	// short-circuit.
	s.degraded, s.firstErr = false, nil
	if err := s.replay(); err != nil {
		s.runs, s.order, s.sealed, s.maxSeq = runs, order, sealed, maxSeq
		s.degrade(err)
		return false
	}
	next := 1
	if n := len(s.sealed); n > 0 {
		next = s.sealed[n-1].n + 1
	}
	if err := s.openActive(next); err != nil {
		s.degrade(err)
		s.updateGauges()
		return false
	}
	if s.degraded {
		// replay came back read-only degraded (an index rewrite failed):
		// the rebuilt catalog serves, but the disk is not healed.
		s.updateGauges()
		return false
	}
	s.mDegraded.Set(0)
	s.compactLocked()
	s.updateGauges()
	return true
}

// degrade latches the store into memory-only mode; callers hold s.mu.
func (s *Store) degrade(err error) {
	s.mWriteErrs.Inc()
	if s.degraded {
		return
	}
	s.degraded = true
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.mDegraded.Set(1)
	if s.active != nil && s.active.f != nil {
		s.active.f.Close()
		s.active.f = nil
	}
}

func (s *Store) updateGauges() {
	n := len(s.sealed)
	if s.active != nil {
		n++
	}
	s.mSegments.Set(int64(n))
	s.mRuns.Set(int64(len(s.runs)))
}

// Begin registers a run and appends its begin record. The returned
// appender is never nil; in degraded mode it is a no-op shell.
func (s *Store) Begin(id string, seq int64, kind string, began time.Time) *Appender {
	a := &Appender{s: s, id: id}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degraded {
		return a
	}
	if seq > s.maxSeq {
		s.maxSeq = seq
	}
	rec := record{T: recBegin, Run: id, Seq: seq, Kind: kind, Wall: began}
	if !s.appendLocked(rec, false) {
		return a
	}
	// appendLocked created the catalog entry; fill the begin metadata.
	rs := s.runs[id]
	rs.meta.Seq, rs.meta.Kind, rs.meta.Began = seq, kind, began
	s.mRuns.Set(int64(len(s.runs)))
	return a
}

// Appender writes one run's events and terminal status. Emit
// implements obs.Sink so it slots into the server's MultiSink chain.
type Appender struct {
	s  *Store
	id string
}

// Emit appends one event record. Failures degrade the store silently
// (observability and history must not fail the request path).
func (a *Appender) Emit(e obs.Event) {
	raw, err := json.Marshal(e)
	if err != nil {
		return
	}
	a.s.mu.Lock()
	defer a.s.mu.Unlock()
	if a.s.degraded {
		return
	}
	if a.s.appendLocked(record{T: recEvent, Run: a.id, Ev: raw}, false) {
		a.s.runs[a.id].meta.Events++
	}
}

// Finish appends the terminal record and flushes the run to the OS
// (the durability boundary the crash tests pin: a finished run
// survives a process crash).
func (a *Appender) Finish(proc string, runErr error) {
	rec := record{T: recFinish, Run: a.id, Proc: proc, OK: runErr == nil}
	if runErr != nil {
		rec.Err = runErr.Error()
	}
	a.s.mu.Lock()
	defer a.s.mu.Unlock()
	if a.s.degraded {
		return
	}
	if !a.s.appendLocked(rec, true) {
		return
	}
	rs := a.s.runs[a.id]
	rs.meta.Done, rs.meta.OK, rs.meta.Err, rs.meta.Proc = true, rec.OK, rec.Err, proc
}

// appendLocked marshals and appends one record to the active segment,
// rotating first when the append would overflow it, flushing (and
// fsyncing, when configured) on terminal records. It creates the
// run's catalog entry on first sight and extends its newest location.
// Returns false when the append was lost to a write fault (the store
// is then degraded). Callers hold s.mu.
func (s *Store) appendLocked(rec record, flush bool) bool {
	if s.active == nil {
		s.degrade(fmt.Errorf("store: no active segment"))
		return false
	}
	// Only a begin record may open a catalog entry. An event/finish
	// for a run compaction already dropped (its begin segment is gone,
	// so it can never replay completely again) is refused outright:
	// appending it would plant a ghost run — zero Began, empty Kind —
	// in the catalog and on disk.
	if _, ok := s.runs[rec.Run]; !ok && rec.T != recBegin {
		return false
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return false
	}
	line = append(line, '\n')
	if s.active.size > 0 && s.active.size+int64(len(line)) > s.opts.SegmentBytes {
		if err := s.sealActiveLocked(); err != nil {
			s.degrade(err)
			return false
		}
		if err := s.openActive(s.sealed[len(s.sealed)-1].n + 1); err != nil {
			s.degrade(err)
			return false
		}
		s.compactLocked()
		s.updateGauges()
	}
	off := s.active.size
	if err := s.active.append(line); err != nil {
		s.degrade(fmt.Errorf("store: segment %s: offset %d: %w", s.active.path, off, err))
		return false
	}
	if flush {
		if err := s.active.flush(s.opts.Fsync); err != nil {
			s.degrade(fmt.Errorf("store: segment %s: %w", s.active.path, err))
			return false
		}
	}
	rs, ok := s.runs[rec.Run]
	if !ok {
		if rec.T != recBegin {
			// The rotation above compacted this run's begin segment
			// away mid-append. The bytes just written are orphaned;
			// replay skips them for the same reason (absorbIndex), so
			// no ghost entry may be created here either.
			return false
		}
		rs = &runState{meta: RunMeta{ID: rec.Run, Began: rec.Wall}}
		s.runs[rec.Run] = rs
		s.order = append(s.order, rec.Run)
	}
	rs.extend(s.active.n, off, int64(len(line)))
	s.active.observe(rec, off, int64(len(line)))
	return true
}

// Get returns one run's catalog entry.
func (s *Store) Get(id string) (RunMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.runs[id]
	if !ok {
		return RunMeta{}, false
	}
	return rs.meta, true
}

// List returns up to limit runs, newest first (limit <= 0 = all).
func (s *Store) List(limit int) []RunMeta {
	return s.list(limit, func(RunMeta) bool { return true })
}

// ListRange returns up to limit runs that began within [from, to],
// newest first; a zero bound is open. The scan prunes whole segments
// by their index's wall-clock range before touching run entries.
func (s *Store) ListRange(from, to time.Time, limit int) []RunMeta {
	return s.list(limit, func(m RunMeta) bool {
		if !from.IsZero() && m.Began.Before(from) {
			return false
		}
		if !to.IsZero() && m.Began.After(to) {
			return false
		}
		return true
	})
}

func (s *Store) list(limit int, keep func(RunMeta) bool) []RunMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []RunMeta
	for i := len(s.order) - 1; i >= 0; i-- {
		rs, ok := s.runs[s.order[i]]
		if !ok || !keep(rs.meta) {
			continue
		}
		out = append(out, rs.meta)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Events replays one run's event payloads in append order, byte-exact
// as they were emitted. A read that hits a malformed line stops at the
// valid prefix and reports the segment and offset; the prefix is still
// returned (a half-written tail must never masquerade as the full
// log, but it must not hide the flushed prefix either).
func (s *Store) Events(id string) ([]json.RawMessage, error) {
	s.mu.Lock()
	rs, ok := s.runs[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: unknown run %q", id)
	}
	locs := append([]loc(nil), rs.locs...)
	for _, l := range locs {
		if s.active != nil && l.seg == s.active.n {
			if err := s.active.flush(false); err != nil {
				s.degrade(fmt.Errorf("store: segment %s: %w", s.active.path, err))
			}
			break
		}
	}
	s.mu.Unlock()

	var out []json.RawMessage
	for _, l := range locs {
		evs, err := readRunEvents(s.segPath(l.seg), id, l.first, l.end)
		out = append(out, evs...)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Compact applies the retention bound now (it also runs on every
// rotation): the oldest segments beyond MaxSegments are deleted along
// with every run recorded in them.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked()
	s.updateGauges()
}

func (s *Store) compactLocked() {
	total := len(s.sealed)
	if s.active != nil {
		total++
	}
	for total > s.opts.MaxSegments && len(s.sealed) > 0 {
		seg := s.sealed[0]
		s.sealed = s.sealed[1:]
		total--
		// Drop every run the segment holds records for: if any of a
		// run's bytes are this old, its begin record is at most this
		// old, so the run can no longer replay completely.
		for _, re := range seg.idx.Runs {
			delete(s.runs, re.ID)
		}
		os.Remove(seg.path)
		os.Remove(indexPath(seg.path))
		os.Remove(quarantinePath(seg.path))
		s.mCompacted.Inc()
	}
	// Trim compacted ids off the order slice's head eagerly; interior
	// gaps (runs spanning segments) are filtered at List time.
	trim := 0
	for trim < len(s.order) {
		if _, ok := s.runs[s.order[trim]]; ok {
			break
		}
		trim++
	}
	s.order = s.order[trim:]
	s.mRuns.Set(int64(len(s.runs)))
}

// Close seals the active segment (writing its index) and closes the
// store. A degraded store closes without touching the disk again.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degraded || s.active == nil {
		return s.firstErr
	}
	if err := s.sealActiveLocked(); err != nil {
		s.degrade(err)
	}
	s.active = nil
	return s.firstErr
}
