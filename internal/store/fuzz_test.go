package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dscweaver/internal/obs"
)

// corpusSegment builds a small real segment (plus its sidecar index)
// the way the writer does, returning both files' bytes — the fuzz seed
// corpus mutates real shapes, not synthetic ones.
func corpusSegment(t testing.TB) (seg, idx []byte) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 3; seq++ {
		id := fmt.Sprintf("weave-%06d", seq)
		app := s.Begin(id, seq, "weave", time.Unix(1700000000+seq, 0).UTC())
		for j := 0; j < 4; j++ {
			app.Emit(obs.Event{Kind: obs.EvActivityStart, Activity: fmt.Sprintf("a%d", j), Seq: j})
		}
		app.Finish("proc", nil)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg, err = os.ReadFile(filepath.Join(dir, "seg-00000001.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	idx, err = os.ReadFile(filepath.Join(dir, "seg-00000001.idx"))
	if err != nil {
		t.Fatal(err)
	}
	return seg, idx
}

// FuzzSegmentIndex fuzzes the two read paths an on-disk corruption can
// reach: mutated segment bytes (the JSONL recovery scan + the full
// Open replay) and mutated sidecar bytes (the index loader). Neither
// may panic; every surfaced error must carry segment context; and a
// recovered store must replay only clean JSON, whatever the input.
func FuzzSegmentIndex(f *testing.F) {
	seg, idx := corpusSegment(f)
	f.Add(seg, idx)
	// Handcrafted shapes: clean prefix + torn tail, interleaved runs,
	// empty input, a lying sidecar.
	f.Add([]byte(`{"t":"begin","run":"weave-000001","seq":1,"kind":"weave"}`+"\n"+
		`{"t":"event","run":"weave-000001","ev":{"kind":"x"}}`+"\n"+
		`{"t":"event","run":"weave-000001","ev":{"kind":"y"`),
		[]byte(`{"version":1,"segment":"seg-00000001.jsonl","size":57,"runs":[{"id":"weave-000001","first":0,"end":57}]}`))
	f.Add([]byte("\x00\x00\x00garbage\n"), []byte(`{"version":99}`))
	f.Add([]byte(""), []byte(`{"version":1,"segment":"seg-00000001.jsonl","size":0,"runs":[{"id":"a","first":-4,"end":100}]}`))

	f.Fuzz(func(t *testing.T, segData, idxData []byte) {
		dir := t.TempDir()
		segPath := filepath.Join(dir, "seg-00000001.jsonl")
		if err := os.WriteFile(segPath, segData, 0o644); err != nil {
			t.Fatal(err)
		}

		// The raw recovery scan: no panic, prefix bounded by the input,
		// errors name the segment.
		bidx, size, err := buildIndex(segPath)
		if err != nil && !strings.Contains(err.Error(), segPath) {
			t.Fatalf("buildIndex error without segment context: %v", err)
		}
		if size > int64(len(segData)) {
			t.Fatalf("valid prefix %d exceeds input %d", size, len(segData))
		}
		if bidx != nil && !bidx.coherent() {
			t.Fatalf("buildIndex produced incoherent index")
		}

		// The sidecar loader over mutated index bytes, against a second
		// segment chain where the fuzzed segment is sealed (not last).
		if err := os.WriteFile(indexPath(segPath), idxData, 0o644); err != nil {
			t.Fatal(err)
		}
		seg2 := filepath.Join(dir, "seg-00000002.jsonl")
		if err := os.WriteFile(seg2, nil, 0o644); err != nil {
			t.Fatal(err)
		}

		st, err := Open(dir, Options{})
		if err != nil {
			// Open tolerates arbitrary segment bytes: corruption must
			// recover, never fail the boot.
			t.Fatalf("Open over fuzzed segment failed: %v", err)
		}
		defer st.Close()
		for _, m := range st.List(0) {
			evs, err := st.Events(m.ID)
			if err != nil && !strings.Contains(err.Error(), "seg-") {
				t.Fatalf("Events error without segment context: %v", err)
			}
			for _, raw := range evs {
				if len(raw) == 0 {
					continue
				}
				if !json.Valid(raw) {
					t.Fatalf("run %s served invalid JSON: %q", m.ID, raw)
				}
			}
		}
		st.ListRange(time.Unix(0, 0), time.Now(), 10)
	})
}
