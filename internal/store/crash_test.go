package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"
)

// crashSeeds is the replayable seed table for the crash-recovery
// property; a failing seed reproduces with
// go test ./internal/store -run TestCrashRecoveryProperty/seed=N.
var crashSeeds = []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}

// testRecord mirrors the store's line shape just enough for the test
// to decide line validity independently of the implementation's
// scanner.
type testRecord struct {
	T   string `json:"t"`
	Run string `json:"run"`
}

func lineValid(line []byte) bool {
	var r testRecord
	if json.Unmarshal(line, &r) != nil || r.Run == "" {
		return false
	}
	return r.T == "begin" || r.T == "event" || r.T == "finish"
}

// TestCrashRecoveryProperty writes K runs, corrupts the segment that
// was active at "crash" time at a seed-chosen byte offset (truncation,
// a byte flip, or an appended torn half-line), reopens the store and
// asserts: the reopen is never fatal, every run fully flushed before
// the corruption point replays byte-identical, nothing malformed is
// ever served, and leftover tail bytes are quarantined rather than
// kept in the segment.
func TestCrashRecoveryProperty(t *testing.T) {
	for _, seed := range crashSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			// Small segments on some seeds force the corruption to hit
			// a multi-segment chain.
			segBytes := int64(64 << 10)
			if rng.Intn(2) == 0 {
				segBytes = 2 << 10
			}
			s, err := Open(dir, Options{SegmentBytes: segBytes})
			if err != nil {
				t.Fatal(err)
			}
			K := 5 + rng.Intn(16)
			want := map[string][]string{}
			var ids []string
			for seq := int64(1); seq <= int64(K); seq++ {
				id, evs := writeRun(t, s, seq, "weave", 1+rng.Intn(8), nil)
				want[id] = evs
				ids = append(ids, id)
			}
			// Crash: abandon the store without Close. Every run was
			// finished, so its records are flushed to the OS.
			activeSeg := s.active.n
			activePath := s.segPath(activeSeg)
			s.active.flush(false) // the crash point is after the flush boundary

			pre, err := os.ReadFile(activePath)
			if err != nil {
				t.Fatal(err)
			}
			size := int64(len(pre))

			// Seeded corruption of the active segment.
			mode := rng.Intn(3)
			var cut int64 // bytes at offset >= cut are untrustworthy
			switch mode {
			case 0: // truncation (classic torn tail: bytes never made it)
				cut = rng.Int63n(size + 1)
				if err := os.Truncate(activePath, cut); err != nil {
					t.Fatal(err)
				}
			case 1: // bit flip (sector scribble)
				cut = rng.Int63n(size)
				mut := append([]byte(nil), pre...)
				mut[cut] ^= 0x40
				if err := os.WriteFile(activePath, mut, 0o644); err != nil {
					t.Fatal(err)
				}
			case 2: // torn half-line appended (write cut mid-record)
				cut = size
				f, err := os.OpenFile(activePath, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				fmt.Fprintf(f, `{"t":"event","run":"weave-9","ev":{"kind":"trunc`)
				f.Close()
			}

			// Expected: replay the test's own valid-prefix scan over the
			// corrupted file to find which runs finished cleanly before
			// the corruption.
			post, err := os.ReadFile(activePath)
			if err != nil {
				t.Fatal(err)
			}
			var validPrefix int64
			finished := map[string]bool{}
			rest := post
			for {
				nl := bytes.IndexByte(rest, '\n')
				if nl < 0 {
					break
				}
				line := rest[:nl+1]
				if !lineValid(line[:nl]) {
					break
				}
				var r testRecord
				json.Unmarshal(line, &r)
				if r.T == "finish" {
					finished[r.Run] = true
				}
				validPrefix += int64(len(line))
				rest = rest[nl+1:]
			}

			s2, err := Open(dir, Options{SegmentBytes: segBytes})
			if err != nil {
				t.Fatalf("reopen after crash (mode %d, cut %d): %v", mode, cut, err)
			}
			defer s2.Close()
			if s2.Degraded() {
				t.Fatalf("reopened store degraded: %v", s2.Err())
			}

			// Every run whose bytes sit entirely before the corruption
			// point replays byte-identical. A run finished in an earlier
			// (sealed) segment is untouched by construction; a run
			// finished in the active segment must have its finish inside
			// the untouched valid prefix.
			checked := 0
			for _, id := range ids {
				m, ok := s2.Get(id)
				safeEnd := cut
				if validPrefix < safeEnd {
					safeEnd = validPrefix
				}
				fullyBefore := m.Done && allRecordsBefore(t, s2, id, activeSeg, safeEnd)
				if ok && fullyBefore {
					assertEvents(t, s2, id, want[id])
					if !m.Done {
						t.Fatalf("run %s lost its terminal status", id)
					}
					checked++
					continue
				}
				// Runs at or past the corruption: whatever survives must
				// be a clean prefix of what was written — never garbage.
				if !ok {
					continue
				}
				got, _ := s2.Events(id)
				for i, raw := range got {
					if !json.Valid(raw) {
						t.Fatalf("run %s served invalid JSON event %d: %q", id, i, raw)
					}
					if i < len(want[id]) && string(raw) != want[id][i] && cut >= size {
						t.Fatalf("run %s event %d diverged without overlapping the corruption", id, i)
					}
				}
			}
			if mode == 2 && checked != K {
				t.Fatalf("append-mode corruption lost finished runs: %d/%d", checked, K)
			}

			// Quarantine: any untrusted bytes left in the file were moved
			// aside, and the segment now ends exactly at the valid prefix.
			st, err := os.Stat(activePath)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != validPrefix {
				t.Fatalf("segment not truncated to valid prefix: size %d, want %d", st.Size(), validPrefix)
			}
			if tail := int64(len(post)) - validPrefix; tail > 0 {
				q, err := os.ReadFile(quarantinePath(activePath))
				if err != nil {
					t.Fatalf("torn tail not quarantined: %v", err)
				}
				if !bytes.Equal(q, post[validPrefix:]) {
					t.Fatalf("quarantine bytes differ from torn tail")
				}
			} else if _, err := os.Stat(quarantinePath(activePath)); err == nil {
				t.Fatal("quarantine file written with no torn tail")
			}

			// The store stays writable after recovery and the id
			// sequence continues past every surviving run.
			nid := fmt.Sprintf("weave-%06d", s2.MaxSeq()+1)
			app := s2.Begin(nid, s2.MaxSeq()+1, "weave", time.Now().UTC())
			app.Finish("post-crash", nil)
			if m, ok := s2.Get(nid); !ok || !m.Done {
				t.Fatalf("post-recovery run not recorded: %+v ok=%v", m, ok)
			}
		})
	}
}

// allRecordsBefore reports whether every byte of id's records in the
// corrupted segment lies strictly before off (runs without records in
// that segment trivially qualify).
func allRecordsBefore(t *testing.T, s *Store, id string, seg int, off int64) bool {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.runs[id]
	if !ok {
		return false
	}
	for _, l := range rs.locs {
		if l.seg == seg && l.end > off {
			return false
		}
	}
	return true
}
