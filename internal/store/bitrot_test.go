package store

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"dscweaver/internal/obs"
)

// seedBitrotStore writes enough finished runs through small segments
// that the sealed chain spans several files, then closes the store so
// every segment is sealed with a sidecar index on disk.
func seedBitrotStore(t *testing.T) (dir string, ids []string, wants map[string][]string) {
	t.Helper()
	dir = t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	wants = map[string][]string{}
	for seq := int64(1); seq <= 8; seq++ {
		id, w := writeRun(t, s, seq, "weave", 6, nil)
		ids = append(ids, id)
		wants[id] = w
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("seed produced only %d segments; bit-rot needs a sealed chain", len(segs))
	}
	return dir, ids, wants
}

// corruptEventLine flips the first byte of the first event line of a
// segment — structural corruption at rest. The file size is unchanged,
// so a cached sidecar index still passes its coherence checks and the
// rot is only discoverable by reading the bytes.
func corruptEventLine(t *testing.T, path string) (runID string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cur := int64(0)
	for _, line := range bytes.SplitAfter(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec record
		if json.Unmarshal(line, &rec) == nil && rec.T == recEvent {
			data[cur] = '#'
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			return rec.Run, cur
		}
		cur += int64(len(line))
	}
	t.Fatalf("no event line in %s", path)
	return "", 0
}

// touchesSegment reports whether a run has records in segment n.
func touchesSegment(s *Store, id string, n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.runs[id]
	if !ok {
		return false
	}
	for _, l := range rs.locs {
		if l.seg == n {
			return true
		}
	}
	return false
}

// TestBitRotCachedIndex flips bytes inside a sealed mid-chain segment
// without changing its size: the sidecar index still loads, so the rot
// surfaces at read time — the affected run serves only the valid whole
// lines before the corruption, with an error naming the segment, while
// runs in other segments replay byte-exact.
func TestBitRotCachedIndex(t *testing.T) {
	dir, ids, wants := seedBitrotStore(t)
	segs, _ := listSegments(dir)
	segN := segs[0]
	s0 := &Store{dir: dir}
	victim, _ := corruptEventLine(t, s0.segPath(segN))

	s, err := Open(dir, Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("bit rot in a sealed segment must not fail Open: %v", err)
	}
	defer s.Close()

	// The cached index still answers the catalog: the victim is listed.
	if _, ok := s.Get(victim); !ok {
		t.Fatalf("victim run %s missing from catalog under a loaded sidecar", victim)
	}
	evs, err := s.Events(victim)
	if err == nil {
		t.Fatalf("reading through rot returned no error (%d events)", len(evs))
	}
	if !strings.Contains(err.Error(), "malformed record") {
		t.Errorf("rot error %q does not say 'malformed record'", err)
	}
	if !strings.Contains(err.Error(), "seg-") {
		t.Errorf("rot error %q does not name the segment", err)
	}
	want := wants[victim]
	if len(evs) >= len(want) {
		t.Fatalf("rot replay served %d events, want a strict prefix of %d", len(evs), len(want))
	}
	for i := range evs {
		if string(evs[i]) != want[i] {
			t.Fatalf("prefix event %d = %s, want %s (only valid whole lines may serve)", i, evs[i], want[i])
		}
	}

	// Runs with no records in the rotted segment replay byte-exact.
	clean := 0
	for _, id := range ids {
		if touchesSegment(s, id, segN) {
			continue
		}
		clean++
		evs, err := s.Events(id)
		if err != nil {
			t.Fatalf("clean run %s: %v", id, err)
		}
		w := wants[id]
		if len(evs) != len(w) {
			t.Fatalf("clean run %s replays %d events, want %d", id, len(evs), len(w))
		}
		for i := range evs {
			if string(evs[i]) != w[i] {
				t.Fatalf("clean run %s event %d = %s, want %s", id, i, evs[i], w[i])
			}
		}
	}
	if clean == 0 {
		t.Fatal("no run untouched by the rotted segment; seed spread too thin to prove isolation")
	}
}

// TestBitRotRebuiltIndex is the same rot with the sidecar deleted: the
// rebuild scans the segment, indexes only the valid line prefix, and
// the store serves exactly the surviving whole lines — never the
// rotted bytes — without failing Open.
func TestBitRotRebuiltIndex(t *testing.T) {
	dir, ids, wants := seedBitrotStore(t)
	segs, _ := listSegments(dir)
	segN := segs[0]
	s0 := &Store{dir: dir}
	victim, _ := corruptEventLine(t, s0.segPath(segN))
	if err := os.Remove(indexPath(s0.segPath(segN))); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("index rebuild over rot must not fail Open: %v", err)
	}
	defer s.Close()

	// The rebuilt index covers only the prefix before the rot, so a
	// replay of the victim serves a clean in-order subsequence of its
	// events (the segment's post-rot lines are unindexed) — and no
	// error, because every indexed byte range is valid.
	if _, ok := s.Get(victim); !ok {
		t.Fatalf("victim run %s absent after rebuild (begin precedes the rot)", victim)
	}
	evs, err := s.Events(victim)
	if err != nil {
		t.Fatalf("rebuilt-index replay must serve only indexed valid lines, got %v", err)
	}
	want := wants[victim]
	if len(evs) >= len(want) {
		t.Fatalf("rot replay served %d events, want fewer than %d", len(evs), len(want))
	}
	j := 0
	for _, ev := range evs {
		for j < len(want) && want[j] != string(ev) {
			j++
		}
		if j == len(want) {
			t.Fatalf("replayed event %s is not an in-order subsequence of the written events", ev)
		}
		j++
	}

	// The last-written run lives entirely past the rotted segment and
	// must be untouched.
	last := ids[len(ids)-1]
	evs, err = s.Events(last)
	if err != nil || len(evs) != len(wants[last]) {
		t.Fatalf("last run %s after rebuild: %d events, err %v", last, len(evs), err)
	}
}

// TestBitRotLastSegment rots the newest segment: reopening treats it
// as the crash-active segment, so recovery truncates to the valid
// prefix and quarantines the rotted tail — surfaced by the quarantine
// sidecar and the store_quarantined_bytes_total counter.
func TestBitRotLastSegment(t *testing.T) {
	dir, _, wants := seedBitrotStore(t)
	segs, _ := listSegments(dir)
	segN := segs[len(segs)-1]
	s0 := &Store{dir: dir}
	path := s0.segPath(segN)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	victim, off := corruptEventLine(t, path)
	tail := st.Size() - off

	reg := obs.NewRegistry()
	s, err := Open(dir, Options{SegmentBytes: 1 << 10, Metrics: reg})
	if err != nil {
		t.Fatalf("rot in the newest segment must not fail Open: %v", err)
	}
	defer s.Close()

	if got := reg.Counter("store_quarantined_bytes_total").Value(); got != tail {
		t.Errorf("store_quarantined_bytes_total = %d, want %d", got, tail)
	}
	q, err := os.ReadFile(quarantinePath(path))
	if err != nil {
		t.Fatalf("no quarantine sidecar for the rotted tail: %v", err)
	}
	if int64(len(q)) != tail {
		t.Errorf("quarantined %d bytes, want %d", len(q), tail)
	}
	if st, err := os.Stat(path); err != nil || st.Size() != off {
		t.Errorf("segment not truncated to the valid prefix: size %d, want %d", st.Size(), off)
	}

	// The victim replays its surviving prefix with no error — recovery
	// already cut the log at the rot, so every served line is whole.
	evs, err := s.Events(victim)
	if err != nil {
		t.Fatalf("recovered replay must be clean, got %v", err)
	}
	want := wants[victim]
	if len(evs) >= len(want) {
		t.Fatalf("recovered replay served %d events, want fewer than %d", len(evs), len(want))
	}
	for i := range evs {
		if string(evs[i]) != want[i] {
			t.Fatalf("recovered event %d = %s, want %s", i, evs[i], want[i])
		}
	}
	if m, _ := s.Get(victim); m.Done {
		t.Errorf("victim %s reads as finished although its finish record was quarantined: %+v", victim, m)
	}
}
