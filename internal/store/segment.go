package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment naming: the log lives as seg-00000001.jsonl … seg-N.jsonl,
// each sealed segment with a seg-N.idx sidecar; a quarantined torn
// tail (crash recovery) lands next to its segment as
// seg-N.jsonl.quarantine.

const (
	segPrefix = "seg-"
	segSuffix = ".jsonl"
)

func (s *Store) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix))
}

func indexPath(segPath string) string {
	return strings.TrimSuffix(segPath, segSuffix) + ".idx"
}

func quarantinePath(segPath string) string { return segPath + ".quarantine" }

// segNumber parses a segment file name back to its number.
func segNumber(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment numbers present in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var segs []int
	for _, e := range entries {
		if n, ok := segNumber(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// segmentMeta is one sealed segment with its loaded index.
type segmentMeta struct {
	n    int
	path string
	idx  *segmentIndex
}

// activeSegment is the segment currently being appended to. Its index
// is built incrementally so sealing never rescans the file.
type activeSegment struct {
	n    int
	path string
	f    File
	w    *bufio.Writer
	size int64
	idx  *segmentIndex
}

// openActive starts a fresh active segment numbered n; callers hold
// s.mu (or are Open).
func (s *Store) openActive(n int) error {
	path := s.segPath(n)
	f, err := s.opts.OpenFile(path)
	if err != nil {
		return fmt.Errorf("store: segment %s: %w", path, err)
	}
	s.active = &activeSegment{
		n: n, path: path, f: f,
		w:   bufio.NewWriterSize(f, 64<<10),
		idx: newSegmentIndex(filepath.Base(path)),
	}
	return nil
}

// append buffers one framed line.
func (a *activeSegment) append(line []byte) error {
	n, err := a.w.Write(line)
	a.size += int64(n)
	if err != nil {
		return err
	}
	return nil
}

// observe folds one appended record into the incremental index.
func (a *activeSegment) observe(rec record, off, n int64) {
	a.idx.observe(rec, off, n)
}

// flush pushes buffered lines to the OS, optionally fsyncing.
func (a *activeSegment) flush(sync bool) error {
	if a.f == nil {
		return fmt.Errorf("segment closed")
	}
	if err := a.w.Flush(); err != nil {
		return err
	}
	if sync {
		if err := a.f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// sealActiveLocked flushes, fsyncs (when configured), writes the
// sidecar index and closes the active segment, moving it onto the
// sealed chain. Callers hold s.mu.
func (s *Store) sealActiveLocked() error {
	a := s.active
	if err := a.flush(s.opts.Fsync); err != nil {
		return fmt.Errorf("store: segment %s: %w", a.path, err)
	}
	if err := a.f.Close(); err != nil {
		return fmt.Errorf("store: segment %s: %w", a.path, err)
	}
	a.f = nil
	a.idx.Size = a.size
	if err := s.writeIndex(a.path, a.idx); err != nil {
		return err
	}
	s.sealed = append(s.sealed, &segmentMeta{n: a.n, path: a.path, idx: a.idx})
	s.active = nil
	return nil
}

// recoverSegment recovers the segment that was active at crash time:
// it scans for the longest valid line prefix, quarantines everything
// past it (torn tail, half-written line, or post-corruption bytes)
// into the .quarantine sidecar, truncates the segment to the valid
// prefix and seals it with a freshly built index. The recovered
// segment is never appended to again.
func (s *Store) recoverSegment(path string) (*segmentIndex, error) {
	idx, validSize, err := buildIndex(path)
	if err != nil {
		return nil, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: %w", path, err)
	}
	if tail := st.Size() - validSize; tail > 0 {
		if err := s.quarantineTail(path, validSize, tail); err != nil {
			return nil, err
		}
		s.mQuarantined.Add(tail)
	}
	idx.Size = validSize
	if err := s.writeIndex(path, idx); err != nil {
		// The index is a cache: a store that can replay but not write
		// starts up read-only-degraded rather than failing Open.
		s.degrade(err)
	}
	return idx, nil
}

// quarantineTail copies segment bytes [off, off+n) to the quarantine
// sidecar and truncates the segment to off.
func (s *Store) quarantineTail(path string, off, n int64) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: quarantine %s: %w", path, err)
	}
	defer f.Close()
	tail := make([]byte, n)
	if _, err := f.ReadAt(tail, off); err != nil {
		return fmt.Errorf("store: quarantine %s: offset %d: %w", path, off, err)
	}
	if err := os.WriteFile(quarantinePath(path), tail, 0o644); err != nil {
		return fmt.Errorf("store: quarantine %s: %w", path, err)
	}
	if err := os.Truncate(path, off); err != nil {
		return fmt.Errorf("store: quarantine %s: truncate to %d: %w", path, off, err)
	}
	return nil
}
