package dscl

import (
	"fmt"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a DSCL document.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	p.skipSeps()
	proc, err := p.parseProcess()
	if err != nil {
		return nil, err
	}
	p.skipSeps()
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after process declaration", p.peek().kind)
	}
	return &File{Process: proc}, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.peek().kind != k {
		return token{}, p.errf("expected %s, found %s %q", k, p.peek().kind, p.peek().text)
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	t, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if t.text != kw {
		return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf("expected %q, found %q", kw, t.text)}
	}
	return nil
}

// skipSeps consumes any run of statement separators.
func (p *parser) skipSeps() {
	for p.peek().kind == tokSemi {
		p.advance()
	}
}

func (p *parser) parseProcess() (*ProcessDecl, error) {
	line := p.peek().line
	if err := p.expectKeyword("process"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	proc := &ProcessDecl{Name: name.text, Line: line}
	for {
		p.skipSeps()
		if p.peek().kind == tokRBrace {
			p.advance()
			return proc, nil
		}
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.errf("expected declaration, found %s %q", t.kind, t.text)
		}
		switch t.text {
		case "service":
			d, err := p.parseService()
			if err != nil {
				return nil, err
			}
			proc.Services = append(proc.Services, d)
		case "activity":
			d, err := p.parseActivity()
			if err != nil {
				return nil, err
			}
			proc.Activities = append(proc.Activities, d)
		case "dependencies":
			ds, err := p.parseDependencies()
			if err != nil {
				return nil, err
			}
			proc.Dependencies = append(proc.Dependencies, ds...)
		case "constraints":
			cs, err := p.parseConstraints()
			if err != nil {
				return nil, err
			}
			proc.Constraints = append(proc.Constraints, cs...)
		default:
			return nil, p.errf("unknown declaration %q (want service, activity, dependencies or constraints)", t.text)
		}
	}
}

func (p *parser) parseService() (*ServiceDecl, error) {
	line := p.peek().line
	p.advance() // "service"
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	d := &ServiceDecl{Name: name.text, Line: line}
	for {
		p.skipSeps()
		if p.peek().kind == tokRBrace {
			p.advance()
			return d, nil
		}
		prop, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch prop.text {
		case "ports":
			for {
				port, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				d.Ports = append(d.Ports, port.text)
				if p.peek().kind != tokComma {
					break
				}
				p.advance()
			}
		case "async":
			d.Async = true
		case "sequential":
			d.Sequential = true
		default:
			return nil, &Error{Line: prop.line, Col: prop.col,
				Msg: fmt.Sprintf("unknown service property %q (want ports, async or sequential)", prop.text)}
		}
	}
}

func (p *parser) parseActivity() (*ActivityDecl, error) {
	line := p.peek().line
	p.advance() // "activity"
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	kind, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	d := &ActivityDecl{Name: name.text, Kind: kind.text, Line: line}
	switch kind.text {
	case "receive", "invoke", "reply", "opaque", "decision":
	default:
		return nil, &Error{Line: kind.line, Col: kind.col,
			Msg: fmt.Sprintf("unknown activity kind %q", kind.text)}
	}
	// Optional service endpoint: Ident '.' Ident — only meaningful for
	// invoke/receive; the builder validates semantics.
	if (kind.text == "invoke" || kind.text == "receive") && p.peek().kind == tokIdent &&
		p.peekAt(1).kind == tokDot {
		svc := p.advance()
		p.advance() // '.'
		port, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		d.Service, d.Port = svc.text, port.text
	}
	// Optional reads(...)/writes(...)/branches(...) clauses.
	for p.peek().kind == tokIdent {
		clause := p.peek().text
		if clause != "reads" && clause != "writes" && clause != "branches" {
			break
		}
		p.advance()
		items, err := p.parseParenList()
		if err != nil {
			return nil, err
		}
		switch clause {
		case "reads":
			d.Reads = append(d.Reads, items...)
		case "writes":
			d.Writes = append(d.Writes, items...)
		case "branches":
			d.Branches = append(d.Branches, items...)
		}
	}
	if p.peek().kind != tokSemi && p.peek().kind != tokRBrace && p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s %q after activity declaration", p.peek().kind, p.peek().text)
	}
	return d, nil
}

func (p *parser) peekAt(off int) token {
	if p.pos+off >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+off]
}

func (p *parser) parseParenList() ([]string, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var items []string
	for {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		items = append(items, t.text)
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return items, nil
}

func (p *parser) parseNodeRef() (NodeRef, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return NodeRef{}, err
	}
	ref := NodeRef{Name: t.text, Line: t.line}
	if p.peek().kind == tokDot {
		p.advance()
		port, err := p.expect(tokIdent)
		if err != nil {
			return NodeRef{}, err
		}
		ref.Port = port.text
	}
	return ref, nil
}

func (p *parser) parseDependencies() ([]*DependencyDecl, error) {
	p.advance() // "dependencies"
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var out []*DependencyDecl
	for {
		p.skipSeps()
		if p.peek().kind == tokRBrace {
			p.advance()
			return out, nil
		}
		dim, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch dim.text {
		case "data", "control", "service", "cooperation":
		default:
			return nil, &Error{Line: dim.line, Col: dim.col,
				Msg: fmt.Sprintf("unknown dependency dimension %q", dim.text)}
		}
		d := &DependencyDecl{Dim: dim.text, Line: dim.line}
		if d.From, err = p.parseNodeRef(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokArrow); err != nil {
			return nil, err
		}
		if p.peek().kind == tokLBrack {
			p.advance()
			br, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			d.Branch = br.text
			if _, err := p.expect(tokRBrack); err != nil {
				return nil, err
			}
		}
		if d.To, err = p.parseNodeRef(); err != nil {
			return nil, err
		}
		// Optional metadata clauses.
		for p.peek().kind == tokIdent {
			switch p.peek().text {
			case "var":
				p.advance()
				items, err := p.parseParenList()
				if err != nil {
					return nil, err
				}
				if len(items) != 1 {
					return nil, p.errf("var(...) takes exactly one variable")
				}
				d.Var = items[0]
			case "why":
				p.advance()
				if _, err := p.expect(tokLParen); err != nil {
					return nil, err
				}
				s, err := p.expect(tokString)
				if err != nil {
					return nil, err
				}
				d.Why = s.text
				if _, err := p.expect(tokRParen); err != nil {
					return nil, err
				}
			default:
				return nil, p.errf("unknown dependency clause %q", p.peek().text)
			}
		}
		out = append(out, d)
	}
}

func (p *parser) parsePointRef() (PointRef, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return PointRef{}, err
	}
	// Explicit state: S(x), R(x), F(x).
	if (t.text == "S" || t.text == "R" || t.text == "F") && p.peek().kind == tokLParen {
		p.advance()
		node, err := p.parseNodeRef()
		if err != nil {
			return PointRef{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return PointRef{}, err
		}
		return PointRef{State: t.text, Node: node, Line: t.line}, nil
	}
	ref := NodeRef{Name: t.text, Line: t.line}
	if p.peek().kind == tokDot {
		p.advance()
		port, err := p.expect(tokIdent)
		if err != nil {
			return PointRef{}, err
		}
		ref.Port = port.text
	}
	return PointRef{Node: ref, Line: t.line}, nil
}

func (p *parser) parseConstraints() ([]*ConstraintDecl, error) {
	p.advance() // "constraints"
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var out []*ConstraintDecl
	for {
		p.skipSeps()
		if p.peek().kind == tokRBrace {
			p.advance()
			return out, nil
		}
		from, err := p.parsePointRef()
		if err != nil {
			return nil, err
		}
		c := &ConstraintDecl{From: from, Line: from.Line}
		switch p.peek().kind {
		case tokArrow:
			p.advance()
			c.Rel = "->"
			if p.peek().kind == tokLBrack {
				p.advance()
				first, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				if p.peek().kind == tokEq {
					// Compound condition: decision=value pairs.
					p.advance()
					val, err := p.expect(tokIdent)
					if err != nil {
						return nil, err
					}
					c.Literals = append(c.Literals, CondLiteral{Decision: first.text, Value: val.text})
					for p.peek().kind == tokComma {
						p.advance()
						dec, err := p.expect(tokIdent)
						if err != nil {
							return nil, err
						}
						if _, err := p.expect(tokEq); err != nil {
							return nil, err
						}
						val, err := p.expect(tokIdent)
						if err != nil {
							return nil, err
						}
						c.Literals = append(c.Literals, CondLiteral{Decision: dec.text, Value: val.text})
					}
				} else {
					c.Branch = first.text
				}
				if _, err := p.expect(tokRBrack); err != nil {
					return nil, err
				}
			}
		case tokBiArrow:
			p.advance()
			c.Rel = "<->"
		case tokExcl:
			p.advance()
			c.Rel = "><"
		default:
			return nil, p.errf("expected '->', '<->' or '><', found %s %q", p.peek().kind, p.peek().text)
		}
		if c.To, err = p.parsePointRef(); err != nil {
			return nil, err
		}
		out = append(out, c)
	}
}
