package dscl

// File is a parsed DSCL document: exactly one process declaration.
type File struct {
	Process *ProcessDecl
}

// ProcessDecl is the top-level process block.
type ProcessDecl struct {
	Name         string
	Services     []*ServiceDecl
	Activities   []*ActivityDecl
	Dependencies []*DependencyDecl
	Constraints  []*ConstraintDecl
	Line         int
}

// ServiceDecl declares a remote service.
type ServiceDecl struct {
	Name       string
	Ports      []string
	Async      bool
	Sequential bool
	Line       int
}

// ActivityDecl declares one activity.
type ActivityDecl struct {
	Name     string
	Kind     string // receive | invoke | reply | opaque | decision
	Service  string // for invoke/receive with a service endpoint
	Port     string
	Reads    []string
	Writes   []string
	Branches []string // decision only
	Line     int
}

// NodeRef references an activity ("invPurchase_po") or a service port
// ("Purchase.1").
type NodeRef struct {
	Name string
	Port string // nonempty for service ports
	Line int
}

// DependencyDecl is one entry of a dependencies{} block.
type DependencyDecl struct {
	Dim    string // data | control | service | cooperation
	From   NodeRef
	To     NodeRef
	Branch string // control: the ->[T] annotation
	Var    string // data: var(x)
	Why    string // cooperation: why("…")
	Line   int
}

// PointRef references an activity state: explicit "S(a)"/"R(a)"/"F(a)"
// or a bare activity name whose state depends on position (F on the
// left of an arrow, S on the right — the paper's default F_i → S_j
// reading of activity-level dependencies).
type PointRef struct {
	State string // "S", "R", "F", or "" for positional default
	Node  NodeRef
	Line  int
}

// CondLiteral is one decision=value pair of a compound condition.
type CondLiteral struct {
	Decision string
	Value    string
}

// ConstraintDecl is one entry of a constraints{} block.
type ConstraintDecl struct {
	Rel    string // "->" | "<->" | "><"
	From   PointRef
	To     PointRef
	Branch string // ->[T] — shorthand: branch of the From decision
	// Literals carries a compound condition ->[x=T, y=F]; mutually
	// exclusive with Branch.
	Literals []CondLiteral
	Line     int
}
