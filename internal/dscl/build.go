package dscl

import (
	"context"
	"fmt"

	"dscweaver/internal/cond"
	"dscweaver/internal/core"
	"dscweaver/internal/weave"
)

// Document is the semantic result of loading a DSCL file: the process
// model, its dependency catalog, and any raw DSCL constraints that
// were declared directly (state-level synchronization, HappenTogether,
// Exclusive).
type Document struct {
	Proc  *core.Process
	Deps  *core.DependencySet
	Extra *core.ConstraintSet
}

// Load parses and builds a DSCL document in one step.
func Load(src string) (*Document, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Build(f)
}

// Build lowers a parsed AST to core types, validating references as it
// goes.
func Build(f *File) (*Document, error) {
	pd := f.Process
	proc := core.NewProcess(pd.Name)

	for _, s := range pd.Services {
		svc := &core.Service{
			Name:            s.Name,
			Ports:           append([]string(nil), s.Ports...),
			Async:           s.Async,
			SequentialPorts: s.Sequential,
		}
		if err := proc.AddService(svc); err != nil {
			return nil, declErr(s.Line, err)
		}
	}

	for _, a := range pd.Activities {
		act := &core.Activity{
			ID:       core.ActivityID(a.Name),
			Service:  a.Service,
			Port:     a.Port,
			Reads:    append([]string(nil), a.Reads...),
			Writes:   append([]string(nil), a.Writes...),
			Branches: append([]string(nil), a.Branches...),
		}
		switch a.Kind {
		case "receive":
			act.Kind = core.KindReceive
		case "invoke":
			act.Kind = core.KindInvoke
		case "reply":
			act.Kind = core.KindReply
		case "opaque":
			act.Kind = core.KindOpaque
		case "decision":
			act.Kind = core.KindDecision
		default:
			return nil, &Error{Line: a.Line, Msg: fmt.Sprintf("unknown activity kind %q", a.Kind)}
		}
		if err := proc.AddActivity(act); err != nil {
			return nil, declErr(a.Line, err)
		}
	}
	if err := proc.Validate(); err != nil {
		return nil, fmt.Errorf("dscl: %w", err)
	}

	doc := &Document{Proc: proc, Deps: core.NewDependencySet(), Extra: core.NewConstraintSet(proc)}

	resolveNode := func(ref NodeRef) (core.Node, error) {
		if ref.Port != "" {
			if _, ok := proc.Service(ref.Name); !ok {
				return core.Node{}, &Error{Line: ref.Line, Msg: fmt.Sprintf("undeclared service %q", ref.Name)}
			}
			return core.ServiceNode(ref.Name, ref.Port), nil
		}
		if _, ok := proc.Activity(core.ActivityID(ref.Name)); !ok {
			return core.Node{}, &Error{Line: ref.Line, Msg: fmt.Sprintf("undeclared activity %q", ref.Name)}
		}
		return core.ActivityNode(core.ActivityID(ref.Name)), nil
	}

	for _, d := range pd.Dependencies {
		from, err := resolveNode(d.From)
		if err != nil {
			return nil, err
		}
		to, err := resolveNode(d.To)
		if err != nil {
			return nil, err
		}
		dep := core.Dependency{From: from, To: to, Branch: d.Branch}
		switch d.Dim {
		case "data":
			dep.Dim = core.Data
			dep.Label = d.Var
		case "control":
			dep.Dim = core.Control
		case "service":
			dep.Dim = core.ServiceDim
		case "cooperation":
			dep.Dim = core.Cooperation
			dep.Label = d.Why
		}
		if d.Branch != "" && d.Dim != "control" {
			return nil, &Error{Line: d.Line, Msg: fmt.Sprintf("branch annotation on %s dependency", d.Dim)}
		}
		doc.Deps.Add(dep)
	}
	if err := doc.Deps.Validate(proc); err != nil {
		return nil, fmt.Errorf("dscl: %w", err)
	}

	for _, c := range pd.Constraints {
		// Positional defaults for bare activity references: F → S for
		// ordering relations (the paper's F_i → S_j reading), R >< R
		// for exclusion.
		defaultFrom, defaultTo := core.Finish, core.Start
		if c.Rel == "><" {
			defaultFrom, defaultTo = core.Run, core.Run
		}
		from, err := resolvePoint(c.From, resolveNode, defaultFrom)
		if err != nil {
			return nil, err
		}
		to, err := resolvePoint(c.To, resolveNode, defaultTo)
		if err != nil {
			return nil, err
		}
		con := core.Constraint{From: from, To: to, Cond: cond.True(), Origins: []core.Dimension{core.Cooperation}}
		switch c.Rel {
		case "->":
			con.Rel = core.HappenBefore
			if len(c.Literals) > 0 {
				// Compound condition: a conjunction of decision
				// literals. The constraint is conditional ordering
				// (cooperation origin) — it vacates when the condition
				// fails but does not guard the target's execution.
				expr := cond.True()
				for _, l := range c.Literals {
					dec, ok := proc.Activity(core.ActivityID(l.Decision))
					if !ok || dec.Kind != core.KindDecision {
						return nil, &Error{Line: c.Line, Msg: fmt.Sprintf("condition references non-decision %q", l.Decision)}
					}
					found := false
					for _, b := range dec.BranchDomain() {
						if b == l.Value {
							found = true
						}
					}
					if !found {
						return nil, &Error{Line: c.Line, Msg: fmt.Sprintf("branch %q not in domain of %q", l.Value, dec.ID)}
					}
					expr = cond.And(expr, cond.Lit(l.Decision, l.Value))
				}
				if expr.IsFalse() {
					return nil, &Error{Line: c.Line, Msg: "contradictory condition"}
				}
				con.Cond = expr
			} else if c.Branch != "" {
				dec, ok := proc.Activity(core.ActivityID(c.From.Node.Name))
				if !ok || dec.Kind != core.KindDecision {
					return nil, &Error{Line: c.Line, Msg: fmt.Sprintf("conditional constraint from non-decision %q", c.From.Node.Name)}
				}
				found := false
				for _, b := range dec.BranchDomain() {
					if b == c.Branch {
						found = true
					}
				}
				if !found {
					return nil, &Error{Line: c.Line, Msg: fmt.Sprintf("branch %q not in domain of %q", c.Branch, dec.ID)}
				}
				con.Cond = cond.Lit(c.From.Node.Name, c.Branch)
				con.Origins = []core.Dimension{core.Control}
			}
		case "<->":
			con.Rel = core.HappenTogether
		case "><":
			con.Rel = core.Exclusive
		default:
			return nil, &Error{Line: c.Line, Msg: fmt.Sprintf("unknown relation %q", c.Rel)}
		}
		doc.Extra.Add(con)
	}

	return doc, nil
}

func resolvePoint(ref PointRef, resolveNode func(NodeRef) (core.Node, error), def core.State) (core.Point, error) {
	n, err := resolveNode(ref.Node)
	if err != nil {
		return core.Point{}, err
	}
	st := def
	switch ref.State {
	case "S":
		st = core.Start
	case "R":
		st = core.Run
	case "F":
		st = core.Finish
	case "":
	default:
		return core.Point{}, &Error{Line: ref.Line, Msg: fmt.Sprintf("unknown state %q", ref.State)}
	}
	if n.IsService() && st == core.Run {
		return core.Point{}, &Error{Line: ref.Line, Msg: "external nodes have no run state"}
	}
	return core.Point{Node: n, State: st}, nil
}

func declErr(line int, err error) error {
	return &Error{Line: line, Msg: err.Error()}
}

// ConstraintSet merges the document's dependency catalog (§4.2) and
// folds in the raw DSCL constraints, producing the full
// pre-translation synchronization constraint set.
func (d *Document) ConstraintSet() (*core.ConstraintSet, error) {
	sc, err := core.Merge(d.Proc, d.Deps)
	if err != nil {
		return nil, err
	}
	for _, c := range d.Extra.Constraints() {
		sc.Add(c)
	}
	return sc, nil
}

// Parsed adapts the document to the weave pipeline's pre-parsed input
// shape.
func (d *Document) Parsed() *weave.Parsed {
	return &weave.Parsed{Proc: d.Proc, Deps: d.Deps, Extra: d.Extra}
}

// Weave runs the document through the full optimization pipeline:
// merge, desugar, service translation, minimization. It returns the
// translated ASC and the minimization result. Both Weave and WeaveOpt
// are thin wrappers over internal/weave — the one canonical pipeline.
func (d *Document) Weave() (*core.ConstraintSet, *core.MinimizeResult, error) {
	return d.WeaveOpt(core.MinimizeOptions{})
}

// WeaveOpt is Weave with explicit minimization options (parallelism,
// cache configuration, observability); the minimal set is identical
// for every engine configuration.
func (d *Document) WeaveOpt(opts core.MinimizeOptions) (*core.ConstraintSet, *core.MinimizeResult, error) {
	res, err := weave.Run(context.Background(), weave.Input{Parsed: d.Parsed()}, weave.Options{
		Guards:            opts.Guards,
		Parallelism:       opts.Parallelism,
		NoCache:           opts.NoCache,
		StrictAnnotations: opts.StrictAnnotations,
		Metrics:           opts.Metrics,
		Events:            opts.Events,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Translated, res.Minimize, nil
}
