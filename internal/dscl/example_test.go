package dscl_test

import (
	"fmt"

	"dscweaver/internal/dscl"
)

// ExampleLoad parses a DSCL document and runs the weaver pipeline.
func ExampleLoad() {
	doc, err := dscl.Load(`
process Handover {
    activity prepare opaque writes(pkg)
    activity check decision reads(pkg) branches(T, F)
    activity ship opaque reads(pkg)
    activity refuse opaque

    dependencies {
        data prepare -> check var(pkg)
        control check ->[T] ship
        control check ->[F] refuse
        cooperation prepare -> ship why("packed before shipping")
    }
}
`)
	if err != nil {
		panic(err)
	}
	asc, res, err := doc.Weave()
	if err != nil {
		panic(err)
	}
	fmt.Printf("merged %d constraints, minimal %d\n", asc.Len(), res.Minimal.Len())
	fmt.Println(dscl.PrintConstraints(res.Minimal))
	// Output:
	// merged 4 constraints, minimal 3
	// check ->[F] refuse
	// check ->[T] ship
	// prepare -> check
}
