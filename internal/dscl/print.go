package dscl

import (
	"fmt"
	"sort"
	"strings"

	"dscweaver/internal/cond"
	"dscweaver/internal/core"
)

// PrintDocument renders a Document back to canonical DSCL source.
// Parse(PrintDocument(d)) builds a document equivalent to d; the round
// trip is covered by tests.
func PrintDocument(d *Document) string {
	var b strings.Builder
	fmt.Fprintf(&b, "process %s {\n", d.Proc.Name)

	for _, s := range d.Proc.Services() {
		fmt.Fprintf(&b, "    service %s { ports %s", s.Name, strings.Join(s.Ports, ", "))
		if s.Async {
			b.WriteString("; async")
		}
		if s.SequentialPorts {
			b.WriteString("; sequential")
		}
		b.WriteString(" }\n")
	}
	if len(d.Proc.Services()) > 0 {
		b.WriteString("\n")
	}

	for _, a := range d.Proc.Activities() {
		fmt.Fprintf(&b, "    activity %s %s", a.ID, kindKeyword(a.Kind))
		if a.Service != "" {
			fmt.Fprintf(&b, " %s.%s", a.Service, a.Port)
		}
		if len(a.Reads) > 0 {
			fmt.Fprintf(&b, " reads(%s)", strings.Join(a.Reads, ", "))
		}
		if len(a.Writes) > 0 {
			fmt.Fprintf(&b, " writes(%s)", strings.Join(a.Writes, ", "))
		}
		if a.Kind == core.KindDecision && len(a.Branches) > 0 {
			fmt.Fprintf(&b, " branches(%s)", strings.Join(a.Branches, ", "))
		}
		b.WriteString("\n")
	}

	if d.Deps.Len() > 0 {
		b.WriteString("\n    dependencies {\n")
		for _, dim := range core.Dimensions {
			for _, dep := range d.Deps.ByDimension(dim) {
				fmt.Fprintf(&b, "        %s %s ->", dimKeyword(dim), nodeRef(dep.From))
				if dep.Branch != "" {
					fmt.Fprintf(&b, "[%s]", dep.Branch)
				}
				fmt.Fprintf(&b, " %s", nodeRef(dep.To))
				switch {
				case dim == core.Data && dep.Label != "":
					fmt.Fprintf(&b, " var(%s)", dep.Label)
				case dim == core.Cooperation && dep.Label != "":
					fmt.Fprintf(&b, " why(%q)", dep.Label)
				}
				b.WriteString("\n")
			}
		}
		b.WriteString("    }\n")
	}

	if extra := d.Extra.Constraints(); len(extra) > 0 {
		b.WriteString("\n    constraints {\n")
		for _, c := range extra {
			fmt.Fprintf(&b, "        %s\n", FormatConstraint(c))
		}
		b.WriteString("    }\n")
	}

	b.WriteString("}\n")
	return b.String()
}

// PrintConstraints renders a constraint set as the body of a
// constraints{} block, one canonical line per constraint, sorted.
// Useful for reporting optimizer output (Figures 7–9) in DSCL syntax.
func PrintConstraints(sc *core.ConstraintSet) string {
	lines := make([]string, 0, sc.Len())
	for _, c := range sc.Constraints() {
		lines = append(lines, FormatConstraint(c))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// FormatConstraint renders one constraint in concrete DSCL syntax.
// Activity-level F→S constraints use the bare shorthand; anything else
// spells the states out.
func FormatConstraint(c core.Constraint) string {
	switch c.Rel {
	case core.HappenBefore:
		arrow := "->"
		if !c.Cond.IsTrue() {
			arrow = "->" + condSuffix(c.Cond)
		}
		if c.From.State == core.Finish && c.To.State == core.Start {
			return fmt.Sprintf("%s %s %s", nodeRef(c.From.Node), arrow, nodeRef(c.To.Node))
		}
		return fmt.Sprintf("%s(%s) %s %s(%s)", c.From.State, nodeRef(c.From.Node), arrow, c.To.State, nodeRef(c.To.Node))
	case core.HappenTogether:
		return fmt.Sprintf("%s <-> %s", nodeRef(c.From.Node), nodeRef(c.To.Node))
	case core.Exclusive:
		return fmt.Sprintf("%s >< %s", nodeRef(c.From.Node), nodeRef(c.To.Node))
	default:
		return c.String()
	}
}

// condSuffix renders single-literal conditions as the [branch]
// annotation and single-term conjunctions as [x=T, y=F] (both forms
// Parse re-reads); disjunctions — possible after merging — fall back
// to the bracketed expression form, which is printed for reporting
// only.
func condSuffix(e cond.Expr) string {
	ts := e.Terms()
	if len(ts) == 1 {
		if len(ts[0]) == 1 {
			return "[" + ts[0][0].Value + "]"
		}
		parts := make([]string, len(ts[0]))
		for i, l := range ts[0] {
			parts[i] = l.Decision + "=" + l.Value
		}
		return "[" + strings.Join(parts, ", ") + "]"
	}
	return "[" + e.String() + "]"
}

func nodeRef(n core.Node) string { return n.String() }

func kindKeyword(k core.ActivityKind) string {
	switch k {
	case core.KindReceive:
		return "receive"
	case core.KindInvoke:
		return "invoke"
	case core.KindReply:
		return "reply"
	case core.KindDecision:
		return "decision"
	default:
		return "opaque"
	}
}

func dimKeyword(d core.Dimension) string {
	switch d {
	case core.Data:
		return "data"
	case core.Control:
		return "control"
	case core.ServiceDim:
		return "service"
	default:
		return "cooperation"
	}
}
