package dscl

import (
	"dscweaver/internal/cond"
	"os"
	"strings"
	"testing"

	"dscweaver/internal/core"
)

const tinyDoc = `
process Tiny {
    service W { ports 1, 2; async; sequential }

    activity a receive writes(x)
    activity b invoke W.1 reads(x)
    activity c receive W.d writes(y)
    activity dec decision reads(y) branches(T, F)
    activity d opaque

    dependencies {
        data a -> b var(x)
        control dec ->[T] d
        service b -> W.1
        service W.1 -> W.d
        service W.d -> c
        cooperation a -> d why("business rule")
    }

    constraints {
        S(d) -> F(c)
        b <-> c
        b >< d
    }
}
`

func TestLoadTiny(t *testing.T) {
	doc, err := Load(tinyDoc)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Proc.Name != "Tiny" {
		t.Errorf("name = %q", doc.Proc.Name)
	}
	if got := len(doc.Proc.Activities()); got != 5 {
		t.Errorf("activities = %d, want 5", got)
	}
	svc, ok := doc.Proc.Service("W")
	if !ok || !svc.Async || !svc.SequentialPorts || len(svc.Ports) != 2 {
		t.Errorf("service W = %+v", svc)
	}
	if doc.Deps.Len() != 6 {
		t.Errorf("deps = %d, want 6", doc.Deps.Len())
	}
	if doc.Extra.Len() != 3 {
		t.Errorf("extra constraints = %d, want 3", doc.Extra.Len())
	}
}

func TestLoadTinySemantics(t *testing.T) {
	doc, err := Load(tinyDoc)
	if err != nil {
		t.Fatal(err)
	}
	// data a -> b captured with variable label.
	data := doc.Deps.ByDimension(core.Data)
	if len(data) != 1 || data[0].Label != "x" {
		t.Errorf("data deps = %v", data)
	}
	ctl := doc.Deps.ByDimension(core.Control)
	if len(ctl) != 1 || ctl[0].Branch != "T" {
		t.Errorf("control deps = %v", ctl)
	}
	coop := doc.Deps.ByDimension(core.Cooperation)
	if len(coop) != 1 || coop[0].Label != "business rule" {
		t.Errorf("cooperation deps = %v", coop)
	}
	// Raw constraints: state-level, happen-together, exclusive.
	cons := doc.Extra.Constraints()
	if cons[0].From.State != core.Start || cons[0].To.State != core.Finish {
		t.Errorf("state-level constraint = %v", cons[0])
	}
	if cons[1].Rel != core.HappenTogether {
		t.Errorf("rel = %v, want HappenTogether", cons[1].Rel)
	}
	if cons[2].Rel != core.Exclusive {
		t.Errorf("rel = %v, want Exclusive", cons[2].Rel)
	}
	if cons[2].From.State != core.Run || cons[2].To.State != core.Run {
		t.Errorf("exclusive default states = %v", cons[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no process", `service X {}`, `expected "process"`},
		{"unknown decl", `process P { banana }`, "unknown declaration"},
		{"unknown kind", `process P { activity a dances }`, "unknown activity kind"},
		{"unknown dim", "process P {\nactivity a opaque\ndependencies { temporal a -> a }\n}", "unknown dependency dimension"},
		{"unterminated string", "process P {\ndependencies { }\nconstraints { }\n} \"oops", "unterminated string"},
		{"unterminated comment", "process P { /* hmm", "unterminated block comment"},
		{"bad arrow", "process P {\nactivity a opaque\nconstraints { a - a }\n}", "did you mean '->'"},
		{"dup activity", "process P {\nactivity a opaque\nactivity a opaque\n}", "duplicate activity"},
		{"undeclared activity in dep", "process P {\nactivity a opaque\ndependencies { data a -> ghost }\n}", `undeclared activity "ghost"`},
		{"undeclared service node", "process P {\nactivity a opaque\ndependencies { service a -> Nope.1 }\n}", `undeclared service "Nope"`},
		{"branch on data dep", "process P {\nactivity a opaque\nactivity b opaque\ndependencies { data a ->[T] b }\n}", "branch annotation"},
		{"conditional from non-decision", "process P {\nactivity a opaque\nactivity b opaque\nconstraints { a ->[T] b }\n}", "non-decision"},
		{"branch outside domain", "process P {\nactivity d decision branches(A, B)\nactivity b opaque\nconstraints { d ->[Z] b }\n}", "not in domain"},
		{"run state on external", "process P {\nservice W { ports 1 }\nactivity a opaque\nconstraints { R(W.1) -> a }\n}", "no run state"},
		{"trailing garbage", "process P { }\nprocess Q { }", "unexpected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Load error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Load("process P {\n  banana\n}")
	var perr *Error
	if !asError(err, &perr) {
		t.Fatalf("error type = %T", err)
	}
	if perr.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Line)
	}
}

func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestSemicolonAndNewlineSeparators(t *testing.T) {
	oneLine := `process P { activity a opaque; activity b opaque; dependencies { data a -> b } }`
	doc, err := Load(oneLine)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Proc.Activities()) != 2 || doc.Deps.Len() != 1 {
		t.Error("semicolon-separated document mis-parsed")
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := `
// leading comment
process P { /* inline */
    activity a opaque // trailing
    /* block
       spanning lines */
    activity b opaque
}
`
	doc, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Proc.Activities()) != 2 {
		t.Error("comments broke parsing")
	}
}

func TestPurchasingDocumentMatchesFixture(t *testing.T) {
	src, err := os.ReadFile("testdata/purchasing.dscl")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Load(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Deps.Len() != 40 {
		t.Errorf("deps = %d, want 40", doc.Deps.Len())
	}
	counts := doc.Deps.CountByDimension()
	if counts[core.Data] != 9 || counts[core.Control] != 10 ||
		counts[core.Cooperation] != 6 || counts[core.ServiceDim] != 15 {
		t.Errorf("dimension counts = %v", counts)
	}
}

func TestPurchasingWeaveReproducesFigure9(t *testing.T) {
	src, err := os.ReadFile("testdata/purchasing.dscl")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Load(string(src))
	if err != nil {
		t.Fatal(err)
	}
	asc, res, err := doc.Weave()
	if err != nil {
		t.Fatal(err)
	}
	if asc.Len() != 30 {
		t.Errorf("ASC = %d constraints, want 30", asc.Len())
	}
	if res.Minimal.Len() != 17 {
		t.Errorf("minimal = %d constraints, want 17\n%s", res.Minimal.Len(), res.Minimal)
	}
	if len(res.Removed) != 13 {
		t.Errorf("removed from ASC = %d, want 13", len(res.Removed))
	}
}

func TestRoundTripTiny(t *testing.T) {
	doc, err := Load(tinyDoc)
	if err != nil {
		t.Fatal(err)
	}
	printed := PrintDocument(doc)
	doc2, err := Load(printed)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\nsource:\n%s", err, printed)
	}
	if PrintDocument(doc2) != printed {
		t.Errorf("print not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, PrintDocument(doc2))
	}
	if doc2.Deps.Len() != doc.Deps.Len() || doc2.Extra.Len() != doc.Extra.Len() {
		t.Error("round trip lost declarations")
	}
}

func TestRoundTripPurchasing(t *testing.T) {
	src, err := os.ReadFile("testdata/purchasing.dscl")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Load(string(src))
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := Load(PrintDocument(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := doc.Deps.SortedKeys()
	got := doc2.Deps.SortedKeys()
	if len(want) != len(got) {
		t.Fatalf("round trip: %d deps vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("dep %d: %q vs %q", i, got[i], want[i])
		}
	}
}

func TestPrintConstraintsSorted(t *testing.T) {
	doc, err := Load(tinyDoc)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := doc.ConstraintSet()
	if err != nil {
		t.Fatal(err)
	}
	out := PrintConstraints(sc)
	lines := strings.Split(out, "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Errorf("PrintConstraints not sorted at line %d:\n%s", i, out)
		}
	}
	if !strings.Contains(out, "dec ->[T] d") {
		t.Errorf("conditional shorthand missing:\n%s", out)
	}
	if !strings.Contains(out, "S(d) -> F(c)") {
		t.Errorf("state-level constraint missing:\n%s", out)
	}
}

func TestPointRefWithServiceNode(t *testing.T) {
	src := `
process P {
    service W { ports 1; async }
    activity a invoke W.1
    activity b receive W.d
    constraints {
        F(W.1) -> S(b)
        a -> W.1
    }
}
`
	doc, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	cons := doc.Extra.Constraints()
	if len(cons) != 2 {
		t.Fatalf("constraints = %d", len(cons))
	}
	if !cons[0].From.Node.IsService() || cons[0].From.Node.Port != "1" {
		t.Errorf("explicit service point = %v", cons[0].From)
	}
	if !cons[1].To.Node.IsService() {
		t.Errorf("bare service ref = %v", cons[1].To)
	}
}

func TestDependencyMetadataErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"var arity", "process P {\nactivity a opaque\nactivity b opaque\ndependencies { data a -> b var(x, y) }\n}", "exactly one variable"},
		{"unknown clause", "process P {\nactivity a opaque\nactivity b opaque\ndependencies { data a -> b because(reasons) }\n}", "unknown dependency clause"},
		{"why not string", "process P {\nactivity a opaque\nactivity b opaque\ndependencies { cooperation a -> b why(bare) }\n}", "expected string"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestCompoundConditions(t *testing.T) {
	src := `
process Compound {
    activity d1 decision
    activity d2 decision branches(A, B, C)
    activity x opaque
    activity y opaque

    constraints {
        d1 -> x
        d2 -> x
        x ->[d1=T, d2=A] y
    }
}
`
	doc, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	var compound *core.Constraint
	for _, c := range doc.Extra.Constraints() {
		if c.From.Node.Activity == "x" {
			cc := c
			compound = &cc
		}
	}
	if compound == nil {
		t.Fatal("compound constraint missing")
	}
	eq, err := cond.Equal(compound.Cond,
		cond.And(cond.Lit("d1", "T"), cond.Lit("d2", "A")), doc.Proc.Domains())
	if err != nil || !eq {
		t.Errorf("compound cond = %v", compound.Cond)
	}
	// It is conditional ordering, not a guard-defining control edge.
	if compound.HasOrigin(core.Control) {
		t.Error("compound condition marked as control origin")
	}
	// Round trip.
	doc2, err := Load(PrintDocument(doc))
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, PrintDocument(doc))
	}
	if doc2.Extra.Len() != doc.Extra.Len() {
		t.Error("round trip lost constraints")
	}
}

func TestCompoundConditionErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"non-decision", "process P {\nactivity a opaque\nactivity b opaque\nconstraints { a ->[a=T] b }\n}", "non-decision"},
		{"bad value", "process P {\nactivity d decision\nactivity b opaque\nconstraints { d ->[d=MAYBE] b }\n}", "not in domain"},
		{"contradiction", "process P {\nactivity d decision\nactivity b opaque\nactivity c opaque\nconstraints { b ->[d=T, d=F] c }\n}", "contradictory"},
		{"missing value", "process P {\nactivity d decision\nactivity b opaque\nconstraints { d ->[d=] b }\n}", "expected identifier"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestCompoundConditionInPipeline(t *testing.T) {
	// The compound constraint is vacated when the condition fails and
	// enforced when it holds; the optimizer and validator accept it.
	src := `
process P {
    activity start opaque
    activity d1 decision
    activity x opaque
    activity y opaque
    dependencies {
        data start -> d1
        data start -> x
        data start -> y
        control d1 ->[T] x
    }
    constraints {
        x ->[d1=T] y
    }
}
`
	doc, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	asc, res, err := doc.Weave()
	if err != nil {
		t.Fatal(err)
	}
	if asc.Len() == 0 || res.Minimal.Len() == 0 {
		t.Fatal("pipeline lost constraints")
	}
}

func TestWeaveRejectsCyclicDocument(t *testing.T) {
	src := `
process Cyclic {
    activity a opaque
    activity b opaque
    dependencies {
        data a -> b
        cooperation b -> a
    }
}
`
	doc, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := doc.Weave(); err == nil {
		t.Error("Weave accepted a cyclic catalog")
	}
}

func TestWeaveDesugarsHappenTogether(t *testing.T) {
	src := `
process HT {
    activity a opaque
    activity b opaque
    constraints { a <-> b }
}
`
	doc, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	asc, res, err := doc.Weave()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range asc.Constraints() {
		if c.Rel == core.HappenTogether {
			t.Error("HappenTogether survived Weave")
		}
	}
	if res.Minimal.Len() == 0 {
		t.Error("desugared constraints vanished")
	}
}

func TestFormatConstraintShorthand(t *testing.T) {
	doc, err := Load(tinyDoc)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := doc.ConstraintSet()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sc.Constraints() {
		s := FormatConstraint(c)
		if c.Rel == core.HappenBefore && c.From.State == core.Finish && c.To.State == core.Start {
			if strings.Contains(s, "F(") || strings.Contains(s, "S(") {
				t.Errorf("activity-level constraint not shortened: %q", s)
			}
		}
	}
}
