// Package dscl implements a concrete syntax for the DAG
// Synchronization Constraint Language (§4.1, [21]) together with the
// surrounding process and dependency declarations a DSCWeaver input
// document needs. A .dscl document declares a process (activities and
// services), its four-dimension dependency catalog, and — optionally —
// raw DSCL constraints at activity-state granularity:
//
//	process Purchasing {
//	    service Purchase { ports 1, 2; async; sequential }
//
//	    activity recClient_po receive writes(po)
//	    activity invPurchase_po invoke Purchase.1 reads(po)
//	    activity if_au decision reads(au) branches(T, F)
//
//	    dependencies {
//	        data recClient_po -> invPurchase_po var(po)
//	        control if_au ->[T] invPurchase_po
//	        service invPurchase_po -> Purchase.1
//	        cooperation invShip_po -> replyClient_oi why("invoice last")
//	    }
//
//	    constraints {
//	        S(collectSurvey) -> F(closeOrder)
//	        a <-> b        // happen-together
//	        a >< b         // exclusive
//	    }
//	}
//
// Parse yields an AST; Build lowers it to core.Process,
// core.DependencySet and core.ConstraintSet; Print renders core
// objects back to canonical DSCL, and the round-trip is tested.
package dscl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString  // "…"
	tokLBrace  // {
	tokRBrace  // }
	tokLParen  // (
	tokRParen  // )
	tokLBrack  // [
	tokRBrack  // ]
	tokComma   // ,
	tokSemi    // ; or newline (statement separator)
	tokDot     // .
	tokArrow   // ->
	tokBiArrow // <->
	tokExcl    // ><
	tokEq      // =
)

var tokenNames = map[tokenKind]string{
	tokEOF: "end of input", tokIdent: "identifier", tokString: "string",
	tokLBrace: "'{'", tokRBrace: "'}'", tokLParen: "'('", tokRParen: "')'",
	tokLBrack: "'['", tokRBrack: "']'", tokComma: "','", tokSemi: "';'",
	tokDot: "'.'", tokArrow: "'->'", tokBiArrow: "'<->'", tokExcl: "'><'",
	tokEq: "'='",
}

func (k tokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexeme with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexer scans DSCL source into tokens. Newlines become statement
// separators (tokSemi) so declarations need no trailing semicolons;
// consecutive separators collapse in the parser.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a positioned syntax error.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("dscl:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	b := l.src[l.pos]
	l.pos++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

func isIdentStart(b byte) bool {
	return b == '_' || unicode.IsLetter(rune(b)) || unicode.IsDigit(rune(b))
}

func isIdentPart(b byte) bool { return isIdentStart(b) }

// next returns the next token.
func (l *lexer) next() (token, error) {
	for {
		// Skip horizontal whitespace; newlines are significant.
		for l.pos < len(l.src) {
			b := l.peekByte()
			if b == ' ' || b == '\t' || b == '\r' {
				l.advance()
				continue
			}
			break
		}
		if l.pos >= len(l.src) {
			return token{kind: tokEOF, line: l.line, col: l.col}, nil
		}
		line, col := l.line, l.col
		b := l.peekByte()
		switch {
		case b == '\n':
			l.advance()
			return token{kind: tokSemi, text: "\\n", line: line, col: col}, nil
		case b == '/':
			if strings.HasPrefix(l.src[l.pos:], "//") {
				for l.pos < len(l.src) && l.peekByte() != '\n' {
					l.advance()
				}
				continue
			}
			if strings.HasPrefix(l.src[l.pos:], "/*") {
				l.advance()
				l.advance()
				closed := false
				for l.pos < len(l.src) {
					if strings.HasPrefix(l.src[l.pos:], "*/") {
						l.advance()
						l.advance()
						closed = true
						break
					}
					l.advance()
				}
				if !closed {
					return token{}, l.errf("unterminated block comment")
				}
				continue
			}
			return token{}, l.errf("unexpected character %q", b)
		case b == '"':
			l.advance()
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return token{}, l.errf("unterminated string")
				}
				c := l.advance()
				if c == '"' {
					break
				}
				if c == '\n' {
					return token{}, l.errf("newline in string")
				}
				if c == '\\' && l.pos < len(l.src) {
					c = l.advance()
					switch c {
					case 'n':
						c = '\n'
					case 't':
						c = '\t'
					}
				}
				sb.WriteByte(c)
			}
			return token{kind: tokString, text: sb.String(), line: line, col: col}, nil
		case b == '-':
			if strings.HasPrefix(l.src[l.pos:], "->") {
				l.advance()
				l.advance()
				return token{kind: tokArrow, text: "->", line: line, col: col}, nil
			}
			return token{}, l.errf("unexpected character %q (did you mean '->'?)", b)
		case b == '<':
			if strings.HasPrefix(l.src[l.pos:], "<->") {
				l.advance()
				l.advance()
				l.advance()
				return token{kind: tokBiArrow, text: "<->", line: line, col: col}, nil
			}
			return token{}, l.errf("unexpected character %q (did you mean '<->'?)", b)
		case b == '>':
			if strings.HasPrefix(l.src[l.pos:], "><") {
				l.advance()
				l.advance()
				return token{kind: tokExcl, text: "><", line: line, col: col}, nil
			}
			return token{}, l.errf("unexpected character %q (did you mean '><'?)", b)
		case b == '{':
			l.advance()
			return token{kind: tokLBrace, text: "{", line: line, col: col}, nil
		case b == '}':
			l.advance()
			return token{kind: tokRBrace, text: "}", line: line, col: col}, nil
		case b == '(':
			l.advance()
			return token{kind: tokLParen, text: "(", line: line, col: col}, nil
		case b == ')':
			l.advance()
			return token{kind: tokRParen, text: ")", line: line, col: col}, nil
		case b == '[':
			l.advance()
			return token{kind: tokLBrack, text: "[", line: line, col: col}, nil
		case b == ']':
			l.advance()
			return token{kind: tokRBrack, text: "]", line: line, col: col}, nil
		case b == ',':
			l.advance()
			return token{kind: tokComma, text: ",", line: line, col: col}, nil
		case b == ';':
			l.advance()
			return token{kind: tokSemi, text: ";", line: line, col: col}, nil
		case b == '.':
			l.advance()
			return token{kind: tokDot, text: ".", line: line, col: col}, nil
		case b == '=':
			l.advance()
			return token{kind: tokEq, text: "=", line: line, col: col}, nil
		case isIdentStart(b):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
				l.advance()
			}
			return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
		default:
			return token{}, l.errf("unexpected character %q", b)
		}
	}
}

// lexAll scans the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
