package dscl

import (
	"os"
	"testing"
)

// FuzzLoad asserts the DSCL front end never panics and that any
// successfully loaded document survives a print/parse round trip.
func FuzzLoad(f *testing.F) {
	f.Add(tinyDoc)
	if src, err := os.ReadFile("testdata/purchasing.dscl"); err == nil {
		f.Add(string(src))
	}
	f.Add(`process P { }`)
	f.Add(`process P { activity a opaque }`)
	f.Add(`process P { service S { ports 1, 2; async } activity a invoke S.1 }`)
	f.Add(`process P { dependencies { } constraints { } }`)
	f.Add("process P {\n activity d decision branches(X, Y)\n activity a opaque\n constraints { d ->[X] a } }")
	f.Add(`process "unterminated`)
	f.Add(`process P { /* unterminated`)
	f.Add(`process P { activity a opaque; activity a opaque }`)

	f.Fuzz(func(t *testing.T, src string) {
		doc, err := Load(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		printed := PrintDocument(doc)
		doc2, err := Load(printed)
		if err != nil {
			t.Fatalf("round trip failed: %v\nprinted:\n%s", err, printed)
		}
		if doc2.Deps.Len() != doc.Deps.Len() {
			t.Fatalf("round trip changed dependency count: %d vs %d", doc2.Deps.Len(), doc.Deps.Len())
		}
	})
}
