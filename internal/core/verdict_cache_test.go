// Tests for the cross-run verdict cache: a hit replays the recorded
// removal sequence bit-identically and skips every equivalence check,
// the content key separates problems that differ in guards or
// comparison mode, eviction is oldest-first, and the obs counters
// mirror the cache's own accounting.
package core_test

import (
	"context"
	"testing"

	"dscweaver/internal/cond"
	"dscweaver/internal/core"
	"dscweaver/internal/obs"
	"dscweaver/internal/purchasing"
)

func TestVerdictCacheHitBitIdentical(t *testing.T) {
	_, asc, _, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	vc := core.NewVerdictCache(0)
	reg := obs.NewRegistry()
	cold, err := core.MinimizeOpt(context.Background(), asc, core.MinimizeOptions{VerdictCache: vc, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if cold.VerdictCacheHit {
		t.Fatal("first run reported a verdict cache hit")
	}
	warm, err := core.MinimizeOpt(context.Background(), asc, core.MinimizeOptions{VerdictCache: vc, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.VerdictCacheHit {
		t.Fatal("second run missed the verdict cache")
	}
	if warm.EquivalenceChecks != 0 {
		t.Errorf("replayed run performed %d equivalence checks, want 0", warm.EquivalenceChecks)
	}
	if warm.Minimal.String() != cold.Minimal.String() {
		t.Errorf("replayed minimal set differs:\ncold:\n%s\nwarm:\n%s", cold.Minimal, warm.Minimal)
	}
	if removedString(warm) != removedString(cold) {
		t.Errorf("replayed removal order differs:\ncold:\n%s\nwarm:\n%s", removedString(cold), removedString(warm))
	}
	if vc.Hits() != 1 || vc.Misses() != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", vc.Hits(), vc.Misses())
	}
	if got := reg.Counter("minimize_verdict_cache_hits_total").Value(); got != 1 {
		t.Errorf("minimize_verdict_cache_hits_total = %d, want 1", got)
	}
	if got := reg.Counter("minimize_verdict_cache_misses_total").Value(); got != 1 {
		t.Errorf("minimize_verdict_cache_misses_total = %d, want 1", got)
	}
}

// TestVerdictCacheKeySensitivity: anything a verdict depends on is part
// of the key — the comparison mode and the guard context must not share
// entries with the default run.
func TestVerdictCacheKeySensitivity(t *testing.T) {
	_, asc, _, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	vc := core.NewVerdictCache(0)
	if _, err := core.MinimizeOpt(context.Background(), asc, core.MinimizeOptions{VerdictCache: vc}); err != nil {
		t.Fatal(err)
	}
	strict, err := core.MinimizeOpt(context.Background(), asc, core.MinimizeOptions{VerdictCache: vc, StrictAnnotations: true})
	if err != nil {
		t.Fatal(err)
	}
	if strict.VerdictCacheHit {
		t.Error("StrictAnnotations run replayed the guard-context entry")
	}
	guards := map[core.Node]cond.Expr{
		core.ActivityNode("recClient_po"): cond.Lit("if_au", "T"),
	}
	guarded, err := core.MinimizeOpt(context.Background(), asc, core.MinimizeOptions{VerdictCache: vc, Guards: guards})
	if err != nil {
		t.Fatal(err)
	}
	if guarded.VerdictCacheHit {
		t.Error("run with an overridden guard context replayed the default entry")
	}
	if vc.Misses() != 3 || vc.Hits() != 0 {
		t.Errorf("cache hits/misses = %d/%d, want 0/3", vc.Hits(), vc.Misses())
	}
	if vc.Len() != 3 {
		t.Errorf("cache holds %d entries, want 3 distinct keys", vc.Len())
	}
}

// TestVerdictCacheEviction: capacity bounds entries oldest-first, so a
// one-entry cache alternating between two problems never hits.
func TestVerdictCacheEviction(t *testing.T) {
	a := conditionalWorkload(t, 16)
	_, b, _, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	vc := core.NewVerdictCache(1)
	for i := 0; i < 2; i++ {
		for _, sc := range []*core.ConstraintSet{a, b} {
			res, err := core.MinimizeOpt(context.Background(), sc, core.MinimizeOptions{VerdictCache: vc})
			if err != nil {
				t.Fatal(err)
			}
			if res.VerdictCacheHit {
				t.Error("hit on a one-entry cache under an alternating working set")
			}
		}
	}
	if vc.Len() != 1 {
		t.Errorf("cache holds %d entries, capacity is 1", vc.Len())
	}
	if vc.Misses() != 4 || vc.Hits() != 0 {
		t.Errorf("cache hits/misses = %d/%d, want 0/4", vc.Hits(), vc.Misses())
	}
}
