// Property tests for the parallel, closure-caching minimization
// engine: for any worker count and cache configuration the minimal
// set, the removal order and the equivalence-check count must be
// bit-identical to the sequential naive path, and the result must stay
// transitive-equivalent to the input. Run with -race to exercise the
// worker pool under the race detector (CI does).
package core_test

import (
	"context"
	"fmt"
	"testing"

	"dscweaver/internal/core"
	"dscweaver/internal/purchasing"
	"dscweaver/internal/workload"
)

// conditionalWorkload is the Bench C exact-conditional shape: a
// layered DAG with branch structure (decisions guard next-rank
// activities) and transitively redundant shortcut edges.
func conditionalWorkload(t testing.TB, n int) *core.ConstraintSet {
	t.Helper()
	w := workload.Layered(n/4, 4, 0.3, int64(n)).WithShortcuts(n / 4).WithDecisions(2)
	sc, err := w.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// removedString renders a removal list for comparison.
func removedString(res *core.MinimizeResult) string {
	s := ""
	for _, c := range res.Removed {
		s += c.String() + "\n"
	}
	return s
}

func requireIdentical(t *testing.T, what string, seq, got *core.MinimizeResult) {
	t.Helper()
	if seq.Minimal.String() != got.Minimal.String() {
		t.Errorf("%s: minimal set differs from sequential run:\nseq:\n%s\ngot:\n%s",
			what, seq.Minimal, got.Minimal)
	}
	if removedString(seq) != removedString(got) {
		t.Errorf("%s: removal order differs from sequential run:\nseq:\n%s\ngot:\n%s",
			what, removedString(seq), removedString(got))
	}
	if seq.EquivalenceChecks != got.EquivalenceChecks {
		t.Errorf("%s: EquivalenceChecks = %d, sequential = %d",
			what, got.EquivalenceChecks, seq.EquivalenceChecks)
	}
}

func TestMinimizeParallelMatchesSequential(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		n := n
		t.Run(fmt.Sprintf("activities=%d", n), func(t *testing.T) {
			if n > 64 && testing.Short() {
				t.Skip("large workload skipped in -short mode")
			}
			sc := conditionalWorkload(t, n)

			// Cached sequential run is the reference; the naive
			// (seed-algorithm) cross-check runs only on the smaller
			// sizes — it re-derives every closure per candidate and
			// dominates wall-clock at n=256.
			ref, err := core.MinimizeOpt(context.Background(), sc, core.MinimizeOptions{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			// The local pair test settles most candidates from a single
			// sweep without consulting the closure cache, so cache hits
			// are no longer guaranteed; the condition-equality memo is
			// exercised by every covering test and must be warm from
			// n=64 up.
			if n >= 64 && ref.CondMemoHits == 0 {
				t.Error("reference run: condition-equality memo never hit")
			}
			variants := []struct {
				name string
				opts core.MinimizeOptions
			}{
				{"cached-parallel-8", core.MinimizeOptions{Parallelism: 8}},
			}
			if n <= 64 {
				variants = append(variants,
					struct {
						name string
						opts core.MinimizeOptions
					}{"naive-sequential", core.MinimizeOptions{Parallelism: 1, NoCache: true}},
					struct {
						name string
						opts core.MinimizeOptions
					}{"nocache-parallel-8", core.MinimizeOptions{Parallelism: 8, NoCache: true}})
			}
			results := map[string]*core.MinimizeResult{"cached-sequential": ref}
			for _, variant := range variants {
				res, err := core.MinimizeOpt(context.Background(), sc, variant.opts)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, variant.name, ref, res)
				if variant.opts.NoCache && (res.ClosureCacheHits != 0 || res.CondMemoHits != 0) {
					t.Errorf("%s: cache counters nonzero with NoCache: %+v", variant.name, res)
				}
				results[variant.name] = res
			}

			// Both engines' results must stay transitive-equivalent to
			// the input (Definition 5).
			for _, name := range []string{"cached-sequential", "cached-parallel-8"} {
				eq, err := core.Equivalent(sc, results[name].Minimal)
				if err != nil {
					t.Fatalf("%s: Equivalent: %v", name, err)
				}
				if !eq {
					t.Errorf("%s: minimal set not equivalent to input", name)
				}
			}
		})
	}
}

// TestMinimizeParallelPurchasing pins the acceptance fixture: the
// paper's purchasing process minimizes to the same 17 constraints and
// the same removal order (23 removals from the merged catalog's view)
// for every engine configuration.
func TestMinimizeParallelPurchasing(t *testing.T) {
	_, asc, seqRes, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Minimal.Len() != 17 {
		t.Fatalf("purchasing minimal = %d constraints, want 17", seqRes.Minimal.Len())
	}
	naive, err := core.MinimizeOpt(context.Background(), asc, core.MinimizeOptions{Parallelism: 1, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 8} {
		res, err := core.MinimizeOpt(context.Background(), asc, core.MinimizeOptions{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("workers=%d", workers), naive, res)
		if res.Minimal.Len() != 17 {
			t.Errorf("workers=%d: minimal = %d constraints, want 17", workers, res.Minimal.Len())
		}
	}
}

// TestAdapterParallelMatchesSequential checks that the adapter's
// incremental updates are engine-configuration-independent too.
func TestAdapterParallelMatchesSequential(t *testing.T) {
	w := workload.Layered(8, 4, 0.3, 5).WithShortcuts(8).WithDecisions(1)
	dep := core.Dependency{
		From: core.ActivityNode(w.Layer(1)[0]),
		To:   core.ActivityNode(w.Layer(6)[2]),
		Dim:  core.Cooperation, Label: "late rule",
	}
	minimals := map[string]string{}
	for _, cfg := range []struct {
		name string
		opts core.MinimizeOptions
	}{
		{"sequential-nocache", core.MinimizeOptions{Parallelism: 1, NoCache: true}},
		{"parallel-cached", core.MinimizeOptions{Parallelism: 8}},
	} {
		a, err := core.NewAdapterOpt(w.Proc, w.Deps, cfg.opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Add(dep); err != nil {
			t.Fatal(err)
		}
		minimals[cfg.name] = a.Minimal().String()
	}
	if minimals["sequential-nocache"] != minimals["parallel-cached"] {
		t.Errorf("adapter minimal views diverge:\nseq:\n%s\npar:\n%s",
			minimals["sequential-nocache"], minimals["parallel-cached"])
	}
}
