package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dscweaver/internal/cond"
)

// linProcess builds a process of n opaque activities a0…a(n-1).
func linProcess(n int) *Process {
	p := NewProcess("lin")
	for i := 0; i < n; i++ {
		p.MustAddActivity(&Activity{ID: ActivityID(fmt.Sprintf("a%d", i)), Kind: KindOpaque})
	}
	return p
}

func TestMinimizeRemovesShortcut(t *testing.T) {
	p := linProcess(3)
	s := NewConstraintSet(p)
	s.Before("a0", "a1", Data)
	s.Before("a1", "a2", Data)
	s.Before("a0", "a2", Cooperation) // redundant shortcut
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 || res.Removed[0].From.Node.Activity != "a0" || res.Removed[0].To.Node.Activity != "a2" {
		t.Errorf("Removed = %v, want the a0→a2 shortcut", res.Removed)
	}
	if res.Minimal.Len() != 2 {
		t.Errorf("minimal Len = %d, want 2", res.Minimal.Len())
	}
}

func TestMinimizeKeepsEssentialChain(t *testing.T) {
	p := linProcess(4)
	s := NewConstraintSet(p)
	s.Before("a0", "a1", Data)
	s.Before("a1", "a2", Data)
	s.Before("a2", "a3", Data)
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 0 {
		t.Errorf("chain edges removed: %v", res.Removed)
	}
}

// guardedSet builds the canonical guard-subsumption scenario:
// a0 → dec, dec →[T] a2, plus a direct unconditional a0 → a2 that is
// only exercised when a2 runs (i.e. when dec=T), so it is redundant.
func guardedSet() (*Process, *ConstraintSet) {
	p := NewProcess("guarded")
	p.MustAddActivity(&Activity{ID: "a0", Kind: KindOpaque})
	p.MustAddActivity(&Activity{ID: "dec", Kind: KindDecision})
	p.MustAddActivity(&Activity{ID: "a2", Kind: KindOpaque})
	s := NewConstraintSet(p)
	s.Before("a0", "dec", Data)
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("dec", Finish), To: PointOf("a2", Start),
		Cond: cond.Lit("dec", "T"), Origins: []Dimension{Control}})
	s.Before("a0", "a2", Data)
	return p, s
}

func TestMinimizeGuardSubsumption(t *testing.T) {
	_, s := guardedSet()
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 {
		t.Fatalf("Removed = %v, want exactly the unconditional a0→a2", res.Removed)
	}
	r := res.Removed[0]
	if r.From.Node.Activity != "a0" || r.To.Node.Activity != "a2" || !r.Cond.IsTrue() {
		t.Errorf("Removed = %v", r)
	}
}

func TestMinimizeControlEdgeNotSubsumedByData(t *testing.T) {
	// The reverse of guard subsumption: the conditional dec→[T]a2 edge
	// must survive even though a0→a2 exists, because without it a2
	// would not be ordered after the decision at all.
	_, s := guardedSet()
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Minimal.Constraints() {
		if c.From.Node.Activity == "dec" && c.To.Node.Activity == "a2" {
			return
		}
	}
	t.Error("conditional control edge was removed")
}

func TestMinimizeBranchDisjunctionFolds(t *testing.T) {
	// dec →[T] x → z, dec →[F] y → z, plus direct dec → z: the direct
	// edge is covered by T∨F ≡ ⊤ (the if_au → replyClient_oi case).
	p := NewProcess("fold")
	p.MustAddActivity(&Activity{ID: "dec", Kind: KindDecision})
	for _, id := range []ActivityID{"x", "y", "z"} {
		p.MustAddActivity(&Activity{ID: id, Kind: KindOpaque})
	}
	s := NewConstraintSet(p)
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("dec", Finish), To: PointOf("x", Start),
		Cond: cond.Lit("dec", "T"), Origins: []Dimension{Control}})
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("dec", Finish), To: PointOf("y", Start),
		Cond: cond.Lit("dec", "F"), Origins: []Dimension{Control}})
	s.Before("x", "z", Data)
	s.Before("y", "z", Data)
	s.Before("dec", "z", Cooperation) // redundant: reached on both branches
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 {
		t.Fatalf("Removed = %v, want just dec→z", res.Removed)
	}
	if res.Removed[0].To.Node.Activity != "z" || res.Removed[0].From.Node.Activity != "dec" {
		t.Errorf("Removed = %v", res.Removed[0])
	}
}

func TestMinimizePartialBranchCoverageKept(t *testing.T) {
	// Ternary switch covering only two of three branches: the direct
	// edge is NOT redundant.
	p := NewProcess("partial")
	p.MustAddActivity(&Activity{ID: "sw", Kind: KindDecision, Branches: []string{"A", "B", "C"}})
	for _, id := range []ActivityID{"x", "y", "z"} {
		p.MustAddActivity(&Activity{ID: id, Kind: KindOpaque})
	}
	s := NewConstraintSet(p)
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("sw", Finish), To: PointOf("x", Start),
		Cond: cond.Lit("sw", "A"), Origins: []Dimension{Control}})
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("sw", Finish), To: PointOf("y", Start),
		Cond: cond.Lit("sw", "B"), Origins: []Dimension{Control}})
	s.Before("x", "z", Data)
	s.Before("y", "z", Data)
	s.Before("sw", "z", Cooperation) // NOT redundant: branch C reaches z only directly
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 0 {
		t.Errorf("Removed = %v, want none", res.Removed)
	}
}

func TestMinimizeCrossBranchConstraintDropped(t *testing.T) {
	// x runs on dec=T, y on dec=F: a happen-before between them can
	// never be exercised, so it is vacuous and removable.
	p := NewProcess("crossbranch")
	p.MustAddActivity(&Activity{ID: "dec", Kind: KindDecision})
	p.MustAddActivity(&Activity{ID: "x", Kind: KindOpaque})
	p.MustAddActivity(&Activity{ID: "y", Kind: KindOpaque})
	s := NewConstraintSet(p)
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("dec", Finish), To: PointOf("x", Start),
		Cond: cond.Lit("dec", "T"), Origins: []Dimension{Control}})
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("dec", Finish), To: PointOf("y", Start),
		Cond: cond.Lit("dec", "F"), Origins: []Dimension{Control}})
	s.Before("x", "y", Cooperation)
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 || res.Removed[0].From.Node.Activity != "x" {
		t.Errorf("Removed = %v, want the cross-branch x→y", res.Removed)
	}
}

func TestMinimizeCycleError(t *testing.T) {
	p := linProcess(2)
	s := NewConstraintSet(p)
	s.Before("a0", "a1", Data)
	s.Before("a1", "a0", Data)
	if _, err := Minimize(s); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("Minimize on cycle = %v, want cyclic error", err)
	}
}

func TestMinimizeRejectsHappenTogether(t *testing.T) {
	p := linProcess(2)
	s := NewConstraintSet(p)
	s.Add(Constraint{Rel: HappenTogether, From: PointOf("a0", Finish), To: PointOf("a1", Start), Cond: cond.True()})
	if _, err := Minimize(s); err == nil || !strings.Contains(err.Error(), "Desugar") {
		t.Errorf("err = %v, want desugar hint", err)
	}
}

func TestMinimizePreservesExclusive(t *testing.T) {
	p := linProcess(3)
	s := NewConstraintSet(p)
	s.Before("a0", "a1", Data)
	s.Add(Constraint{Rel: Exclusive, From: PointOf("a1", Run), To: PointOf("a2", Run), Cond: cond.True()})
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Minimal.Constraints() {
		if c.Rel == Exclusive {
			found = true
		}
	}
	if !found {
		t.Error("Exclusive constraint dropped by Minimize")
	}
}

func TestMinimizeStateLevelConstraints(t *testing.T) {
	// S(a1) → F(a0): overlapping life spans (the collectSurvey /
	// closeOrder example of §3.2). The start-before-finish edge is not
	// implied by anything and must survive; a redundant F(a0) → S(a2)
	// shortcut over a0→a1→a2 must not be confused by it.
	p := linProcess(3)
	s := NewConstraintSet(p)
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("a1", Start), To: PointOf("a0", Finish),
		Cond: cond.True(), Origins: []Dimension{Cooperation}})
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 0 {
		t.Errorf("state-level constraint removed: %v", res.Removed)
	}
	c := res.Minimal.Constraints()[0]
	if c.From.State != Start || c.To.State != Finish {
		t.Errorf("constraint mangled: %v", c)
	}
}

func TestMinimizeUnconditionalMatchesExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(8)
		p := linProcess(n)
		s := NewConstraintSet(p)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.4 {
					s.Before(ActivityID(fmt.Sprintf("a%d", u)), ActivityID(fmt.Sprintf("a%d", v)), Data)
				}
			}
		}
		exact, err := Minimize(s)
		if err != nil {
			return false
		}
		fast, err := MinimizeUnconditional(s)
		if err != nil {
			return false
		}
		return exact.Minimal.String() == fast.Minimal.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMinimizeUnconditionalRejectsConditional(t *testing.T) {
	_, s := guardedSet()
	if _, err := MinimizeUnconditional(s); err == nil {
		t.Error("MinimizeUnconditional accepted a conditional set")
	}
}

// Property: on random conditional sets, Minimize yields an equivalent
// set from which no further constraint is removable.
func TestQuickMinimizeEquivalentAndMinimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(5)
		p := NewProcess("rand")
		ids := make([]ActivityID, n)
		for i := range ids {
			ids[i] = ActivityID(fmt.Sprintf("a%d", i))
			kind := KindOpaque
			if i > 0 && i < n-1 && r.Intn(4) == 0 {
				kind = KindDecision
			}
			p.MustAddActivity(&Activity{ID: ids[i], Kind: kind})
		}
		s := NewConstraintSet(p)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() > 0.45 {
					continue
				}
				c := cond.True()
				a, _ := p.Activity(ids[u])
				origin := Data
				if a.Kind == KindDecision && r.Intn(2) == 0 {
					branch := a.BranchDomain()[r.Intn(2)]
					c = cond.Lit(string(ids[u]), branch)
					origin = Control
				}
				s.Add(Constraint{Rel: HappenBefore, From: PointOf(ids[u], Finish),
					To: PointOf(ids[v], Start), Cond: c, Origins: []Dimension{origin}})
			}
		}
		res, err := Minimize(s)
		if err != nil {
			return false
		}
		eq, err := Equivalent(s, res.Minimal)
		if err != nil || !eq {
			return false
		}
		// No further removal possible — judged under the original
		// guards, since the minimal set may have shed control edges
		// (guards do not survive DeriveGuards on a minimized set).
		res2, err := MinimizeWithGuards(res.Minimal, res.Guards)
		if err != nil {
			return false
		}
		return len(res2.Removed) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCoversAsymmetry(t *testing.T) {
	p := linProcess(3)
	withShortcut := NewConstraintSet(p)
	withShortcut.Before("a0", "a1", Data)
	withShortcut.Before("a1", "a2", Data)
	withShortcut.Before("a0", "a2", Data)
	chainOnly := NewConstraintSet(p)
	chainOnly.Before("a0", "a1", Data)
	chainOnly.Before("a1", "a2", Data)
	partial := NewConstraintSet(p)
	partial.Before("a0", "a1", Data)

	if ok, err := Covers(withShortcut, chainOnly); err != nil || !ok {
		t.Errorf("withShortcut covers chainOnly = %v, %v", ok, err)
	}
	if ok, err := Covers(chainOnly, withShortcut); err != nil || !ok {
		t.Errorf("chainOnly covers withShortcut = %v, %v (transitivity)", ok, err)
	}
	if ok, err := Covers(partial, chainOnly); err != nil || ok {
		t.Errorf("partial covers chainOnly = %v, %v, want false", ok, err)
	}
	if eq, err := Equivalent(withShortcut, chainOnly); err != nil || !eq {
		t.Errorf("Equivalent = %v, %v", eq, err)
	}
	if eq, err := Equivalent(partial, chainOnly); err != nil || eq {
		t.Errorf("Equivalent(partial, chain) = %v, %v, want false", eq, err)
	}
}

func TestTransitiveClosureDefinition3Example(t *testing.T) {
	// Paper example: a1→a2→[T]a3→a4 gives a1+ = {a2, a3(T), a4(T)}.
	p := NewProcess("def3")
	p.MustAddActivity(&Activity{ID: "a1", Kind: KindOpaque})
	p.MustAddActivity(&Activity{ID: "a2", Kind: KindDecision})
	p.MustAddActivity(&Activity{ID: "a3", Kind: KindOpaque})
	p.MustAddActivity(&Activity{ID: "a4", Kind: KindOpaque})
	s := NewConstraintSet(p)
	s.Before("a1", "a2", Data)
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("a2", Finish), To: PointOf("a3", Start),
		Cond: cond.Lit("a2", "T"), Origins: []Dimension{Control}})
	s.Before("a3", "a4", Data)
	members, err := TransitiveClosure(s, "a1")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, m := range members {
		got[m.Node.String()] = m.Cond.String()
	}
	want := map[string]string{"a2": "⊤", "a3": "a2=T", "a4": "a2=T"}
	if len(got) != len(want) {
		t.Fatalf("closure = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("a1+[%s] = %s, want %s", k, got[k], v)
		}
	}
}

func TestTransitiveClosureUnknownActivity(t *testing.T) {
	p := linProcess(2)
	s := NewConstraintSet(p)
	if _, err := TransitiveClosure(s, "nope"); err == nil {
		t.Error("closure of unknown activity succeeded")
	}
}

func TestMinimizeCountsReported(t *testing.T) {
	_, s := guardedSet()
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.EquivalenceChecks != 3 {
		t.Errorf("EquivalenceChecks = %d, want 3", res.EquivalenceChecks)
	}
	if res.PairComparisons == 0 {
		t.Error("PairComparisons = 0")
	}
}
