package core

import (
	"fmt"
	"sort"
	"strings"

	"dscweaver/internal/cond"
)

// Removal explains why one constraint was redundant: the witness paths
// through the minimal set whose composed conditions cover the removed
// constraint in its guard context. A guard-subsumed edge has one
// conditional path; a branch-folded edge (the if_au → replyClient_oi
// case) needs one path per branch; a vacuous cross-branch edge has no
// path at all — it can never be exercised.
type Removal struct {
	Constraint Constraint
	// Paths lists the covering paths, each a sequence of surviving
	// constraints from the removed constraint's source to its target.
	Paths [][]Constraint
	// Vacuous is true when the constraint's endpoints cannot co-occur
	// (their guards are incompatible), so no path is needed.
	Vacuous bool
}

// String renders the explanation.
func (r Removal) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "removed %s", r.Constraint)
	if r.Vacuous {
		b.WriteString("  (vacuous: endpoints never co-occur)")
		return b.String()
	}
	for _, path := range r.Paths {
		parts := make([]string, len(path))
		for i, c := range path {
			parts[i] = c.String()
		}
		fmt.Fprintf(&b, "\n  covered by: %s", strings.Join(parts, " ; "))
	}
	return b.String()
}

// ExplainRemovals justifies every removal of a minimization result:
// for each removed constraint it finds paths through the minimal set
// whose disjoined conditions imply the removed condition under the
// endpoints' guard context. It returns one Removal per removed
// constraint, in removal order.
func ExplainRemovals(res *MinimizeResult) ([]Removal, error) {
	pg, err := buildPointGraph(res.Minimal)
	if err != nil {
		return nil, err
	}
	for n, g := range res.Guards {
		pg.guards[n] = g
	}
	doms := res.Minimal.Proc.Domains()

	var out []Removal
	for _, removed := range res.Removed {
		rem := Removal{Constraint: removed}
		u := pg.pointID(removed.From)
		v := pg.pointID(removed.To)
		g := cond.And(pg.guardOf(removed.From.Node), pg.guardOf(removed.To.Node))
		target := cond.And(removed.Cond, g)
		if target.IsFalse() {
			rem.Vacuous = true
			out = append(out, rem)
			continue
		}
		if taut, err := cond.Equal(target, cond.False(), doms); err == nil && taut {
			rem.Vacuous = true
			out = append(out, rem)
			continue
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("explain: removed constraint %s has unknown endpoints", removed)
		}
		paths := pg.pathsBetween(u, v, 16)
		// Accumulate paths until their disjoined conditions cover the
		// removed constraint in guard context.
		acc := cond.False()
		for _, path := range paths {
			pathCond := cond.True()
			var rendered []Constraint
			for _, e := range path {
				pathCond = cond.And(pathCond, pg.conds[e])
				if ci, ok := pg.conIndex[e]; ok {
					rendered = append(rendered, res.Minimal.Constraints()[ci])
				}
			}
			// Skip paths that cannot fire alongside the target or add
			// no coverage beyond the paths already cited.
			if cond.And(pathCond, g).IsFalse() {
				continue
			}
			next := cond.Or(acc, pathCond)
			if gained, err := cond.Implies(cond.And(next, g), cond.And(acc, g), doms); err != nil {
				return nil, err
			} else if gained {
				continue // next ⊆ acc in guard context: nothing new
			}
			rem.Paths = append(rem.Paths, rendered)
			acc = next
			ok, err := cond.Implies(target, cond.And(acc, g), doms)
			if err != nil {
				return nil, err
			}
			if ok {
				break
			}
		}
		ok, err := cond.Implies(target, cond.And(acc, g), doms)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("explain: no covering paths found for %s (minimal set inconsistent?)", removed)
		}
		out = append(out, rem)
	}
	return out, nil
}

// pathsBetween enumerates up to limit simple paths u⇒v (DFS,
// deterministic order, shortest-ish first by exploring successors in
// ascending id order).
func (pg *pointGraph) pathsBetween(u, v int, limit int) [][][2]int {
	var out [][][2]int
	var path [][2]int
	visited := make([]bool, len(pg.points))
	var dfs func(x int)
	dfs = func(x int) {
		if len(out) >= limit {
			return
		}
		if x == v {
			cp := make([][2]int, len(path))
			copy(cp, path)
			out = append(out, cp)
			return
		}
		visited[x] = true
		succs := append([]int(nil), pg.g.Succ(x)...)
		sort.Ints(succs)
		for _, y := range succs {
			if visited[y] {
				continue
			}
			path = append(path, [2]int{x, y})
			dfs(y)
			path = path[:len(path)-1]
			if len(out) >= limit {
				break
			}
		}
		visited[x] = false
	}
	dfs(u)
	return out
}
