package core

import "testing"

func TestMeasureChain(t *testing.T) {
	p := linProcess(4)
	s := NewConstraintSet(p)
	s.Before("a0", "a1", Data)
	s.Before("a1", "a2", Data)
	s.Before("a2", "a3", Data)
	m, err := Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.CriticalPath != 4 || m.Width != 1 || m.Constraints != 3 || m.Activities != 4 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestMeasureFan(t *testing.T) {
	p := linProcess(5) // a0 source, a1..a3 parallel, a4 sink
	s := NewConstraintSet(p)
	for _, mid := range []ActivityID{"a1", "a2", "a3"} {
		s.Before("a0", mid, Data)
		s.Before(mid, "a4", Data)
	}
	m, err := Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.CriticalPath != 3 {
		t.Errorf("critical path = %d, want 3", m.CriticalPath)
	}
	if m.Width != 3 {
		t.Errorf("width = %d, want 3", m.Width)
	}
}

func TestMeasureMinimizationPreservesCriticalPath(t *testing.T) {
	// Minimization removes redundant edges but never changes the
	// critical path or the width of the reachability relation.
	p := linProcess(4)
	s := NewConstraintSet(p)
	s.Before("a0", "a1", Data)
	s.Before("a1", "a2", Data)
	s.Before("a2", "a3", Data)
	s.Before("a0", "a3", Cooperation)
	s.Before("a0", "a2", Cooperation)
	before, err := Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Measure(res.Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if before.CriticalPath != after.CriticalPath {
		t.Errorf("critical path changed: %d → %d", before.CriticalPath, after.CriticalPath)
	}
	if after.Constraints != 3 {
		t.Errorf("constraints after = %d, want 3", after.Constraints)
	}
}

func TestMeasureEmptySet(t *testing.T) {
	p := linProcess(3)
	s := NewConstraintSet(p)
	m, err := Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.CriticalPath != 1 || m.Width != 3 {
		t.Errorf("metrics = %+v, want path 1, width 3", m)
	}
}
