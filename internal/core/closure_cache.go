package core

import (
	"sync"
	"sync/atomic"

	"dscweaver/internal/cond"
)

// closureCache memoizes the baseline (skip-free) single-source
// annotated closures of a point graph across the candidate loop of a
// minimization run. The paper's Definition 6 algorithm re-derives
// annotatedFrom(s, nil) for every source of every candidate edge —
// O(candidates · sources) sweeps — so with the cache each baseline
// costs one sweep for the whole run, halving the sweep count (the
// per-candidate skip closures remain, by construction, uncacheable).
//
// In the default guard-context mode entries stay valid across
// removals: see removeConstraintEdge for why a kept removal cannot
// change any later verdict derived from a cached closure. The
// strict-annotations ablation invalidates by reachability instead.
//
// Entries are generation-stamped: gen counts invalidations, staleAt[s]
// records the generation at which source s was last invalidated, and an
// entry is valid iff it was computed at or after that point. Stamping
// (rather than plain deletion) also makes stores safe against the
// worker pool of edgeRedundantN: a worker that began its sweep before an
// invalidation cannot install a stale closure afterwards, because its
// compute-time generation predates the source's staleAt.
type closureCache struct {
	mu       sync.RWMutex
	gen      uint64
	staleAt  map[int]uint64
	entries  map[int]closureEntry
	flight   map[int]*closureFlight
	disabled bool

	hits   atomic.Int64
	misses atomic.Int64
}

type closureEntry struct {
	gen uint64
	ann []cond.Expr
}

// closureFlight coalesces concurrent misses on one cold source: the
// first goroutine to miss becomes the leader and runs the sweep, every
// other one parks on done and shares the leader's result. Without it N
// pool workers racing on an uncached source each ran the full annotated
// sweep, the losers' results were discarded, and ClosureCacheMisses
// over-reported the sweep count.
type closureFlight struct {
	done chan struct{}
	ann  []cond.Expr // set by the leader before done is closed
}

func newClosureCache() *closureCache {
	return &closureCache{
		staleAt: map[int]uint64{},
		entries: map[int]closureEntry{},
		flight:  map[int]*closureFlight{},
	}
}

// get returns the cached closure for point p, computing and installing
// it via compute on a miss. Concurrent misses on the same point are
// coalesced into one compute (singleflight): followers block until the
// leader's sweep lands and count as hits, so misses equals the number
// of sweeps actually run. The returned slice is shared: callers must
// not mutate it.
func (c *closureCache) get(p int, compute func() []cond.Expr) []cond.Expr {
	if c == nil || c.disabled {
		return compute()
	}
	c.mu.RLock()
	e, ok := c.entries[p]
	stale := c.staleAt[p]
	c.mu.RUnlock()
	if ok && e.gen >= stale {
		c.hits.Add(1)
		return e.ann
	}
	c.mu.Lock()
	// Re-check under the write lock: the entry or a flight may have
	// appeared since the read.
	if e, ok := c.entries[p]; ok && e.gen >= c.staleAt[p] {
		c.mu.Unlock()
		c.hits.Add(1)
		return e.ann
	}
	if f, ok := c.flight[p]; ok {
		c.mu.Unlock()
		<-f.done
		c.hits.Add(1) // coalesced: served by the leader's sweep
		return f.ann
	}
	f := &closureFlight{done: make(chan struct{})}
	c.flight[p] = f
	gen := c.gen
	c.mu.Unlock()

	c.misses.Add(1)
	ann := compute()
	f.ann = ann
	c.mu.Lock()
	// The generation stamp keeps a leader that started before an
	// invalidation from installing a stale closure afterwards; followers
	// of that flight still get the (then-current) result they coalesced
	// on, exactly as if they had computed it themselves at claim time.
	if gen >= c.staleAt[p] {
		c.entries[p] = closureEntry{gen: gen, ann: ann}
	}
	delete(c.flight, p)
	c.mu.Unlock()
	close(f.done)
	return ann
}

// fullFrom returns the baseline condition-annotated forward closure
// from source s, served from the cache when valid.
func (pg *pointGraph) fullFrom(s int) []cond.Expr {
	return pg.cache.get(s, func() []cond.Expr { return pg.annotatedFrom(s, nil) })
}

// fullTo returns the baseline condition-annotated backward closure
// toward target t, served from the backward cache when valid. Like
// fullFrom it never takes a cancel flag: a partial sweep must never
// become a cached baseline.
func (pg *pointGraph) fullTo(t int) []cond.Expr {
	return pg.cacheTo.get(t, func() []cond.Expr { return pg.annotatedToInto(nil, t, nil, nil, nil) })
}

// invalidateClosuresThrough marks stale every cached baseline closure
// whose source reaches point u — exactly the closures a removal of an
// edge out of u can change. Closures from other sources never route
// through the removed edge and stay valid.
func (pg *pointGraph) invalidateClosuresThrough(u int) {
	c := pg.cache
	if c == nil || c.disabled {
		return
	}
	c.mu.Lock()
	c.gen++
	c.staleAt[u] = c.gen
	for _, s := range pg.ancestorsOf(u) {
		c.staleAt[s] = c.gen
	}
	c.mu.Unlock()
}

// removeConstraintEdge deletes a constraint edge from the working
// graph and keeps the closure cache coherent. All removals during
// minimization and adaptation must go through here.
//
// In the default guard-context mode the cache is NOT invalidated, and
// that is sound: a removal is only ever kept when, for every source s
// reaching u and every target t reachable from v, the closure
// annotations with and without the edge are semantically equal under
// the guard context g(s,t) — and targets outside descendants(v) cannot
// change at all. Guards are fixed for the lifetime of the point graph
// and every later verdict is decided by equalCond, a semantic test, so
// a cached pre-removal closure yields bit-identical verdicts to a
// recomputed one (only the Same/IsFalse fast-path hit rates — and
// hence the PairComparisons tally — can differ). Invalidating here
// would wipe exactly the ancestor set the next candidates re-query and
// forfeits nearly the entire cache on removal-heavy sets.
//
// The strict-annotations ablation compares closures outside any guard
// context, so its kept removals certify equivalence under a different
// relation than the one later verdicts use at g(s,t); there the
// conservative reach-based invalidation stays on.
func (pg *pointGraph) removeConstraintEdge(u, v int) {
	if pg.strict {
		pg.invalidateClosuresThrough(u)
	}
	pg.g.RemoveEdge(u, v)
	delete(pg.conds, [2]int{u, v})
}

// equalMemo caches the verdicts of semantic equivalence checks keyed
// on the canonical DNF encodings of both operands. The bounded
// enumeration inside cond.Equal dominates the minimizer's inner loop,
// and the same (closure annotation, guard) expression pairs recur
// across candidates and sources; the memo answers repeats in a map
// lookup. Keys are order-normalized so Equal(a,b) and Equal(b,a) share
// an entry. Safe for concurrent use by the edgeRedundantN worker pool.
type equalMemo struct {
	mu       sync.Mutex
	verdicts map[string]bool
	disabled bool

	hits atomic.Int64
}

func newEqualMemo() *equalMemo {
	return &equalMemo{verdicts: map[string]bool{}}
}

// equalCond is cond.Equal over the graph's branch domains, with a
// structural fast path (cond.Expr.Same) and the memo table in front of
// the enumeration.
func (pg *pointGraph) equalCond(a, b cond.Expr) (bool, error) {
	if a.Same(b) {
		return true, nil
	}
	m := pg.memo
	if m == nil || m.disabled {
		return cond.Equal(a, b, pg.doms)
	}
	ka := a.AppendKey(make([]byte, 0, 64))
	kb := b.AppendKey(make([]byte, 0, 64))
	if string(kb) < string(ka) {
		ka, kb = kb, ka
	}
	key := string(append(append(ka, 0), kb...))
	m.mu.Lock()
	verdict, ok := m.verdicts[key]
	m.mu.Unlock()
	if ok {
		m.hits.Add(1)
		return verdict, nil
	}
	eq, err := cond.Equal(a, b, pg.doms)
	if err != nil {
		return false, err
	}
	m.mu.Lock()
	m.verdicts[key] = eq
	m.mu.Unlock()
	return eq, nil
}
