package core

import (
	"strings"
	"testing"
)

func TestDependencySetDedup(t *testing.T) {
	s := NewDependencySet()
	d := Dependency{From: ActivityNode("a"), To: ActivityNode("b"), Dim: Data, Label: "x"}
	if !s.Add(d) {
		t.Error("first Add = false")
	}
	if s.Add(d) {
		t.Error("duplicate Add = true")
	}
	// Same pair in a different dimension is a distinct dependency.
	d2 := d
	d2.Dim = Cooperation
	if !s.Add(d2) {
		t.Error("same pair, different dimension rejected")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestDependencyString(t *testing.T) {
	d := Dependency{From: ActivityNode("if_au"), To: ActivityNode("set_oi"), Dim: Control, Branch: "F"}
	if got := d.String(); got != "if_au →c[F] set_oi" {
		t.Errorf("String = %q", got)
	}
	d2 := Dependency{From: ActivityNode("a"), To: ActivityNode("b"), Dim: Data}
	if got := d2.String(); got != "a →d b" {
		t.Errorf("String = %q", got)
	}
	d3 := Dependency{From: ActivityNode("a"), To: ServiceNode("S", "1"), Dim: ServiceDim}
	if got := d3.String(); got != "a →s S.1" {
		t.Errorf("String = %q", got)
	}
}

func TestDimensionArrows(t *testing.T) {
	for dim, want := range map[Dimension]string{
		Data: "→d", Control: "→c", ServiceDim: "→s", Cooperation: "→o",
	} {
		if dim.Arrow() != want {
			t.Errorf("%v.Arrow() = %q, want %q", dim, dim.Arrow(), want)
		}
	}
}

func TestDependencyValidateErrors(t *testing.T) {
	p := testProcess(t)
	cases := []struct {
		name string
		dep  Dependency
		want string
	}{
		{
			"reflexive",
			Dependency{From: ActivityNode("a"), To: ActivityNode("a"), Dim: Data},
			"reflexive",
		},
		{
			"unknown activity",
			Dependency{From: ActivityNode("a"), To: ActivityNode("nope"), Dim: Data},
			"undeclared activity",
		},
		{
			"service node outside service dimension",
			Dependency{From: ActivityNode("a"), To: ServiceNode("Svc", "1"), Dim: Data},
			"outside the service dimension",
		},
		{
			"unknown service",
			Dependency{From: ActivityNode("a"), To: ServiceNode("Nope", "1"), Dim: ServiceDim},
			"undeclared service",
		},
		{
			"unknown port",
			Dependency{From: ActivityNode("a"), To: ServiceNode("Svc", "7"), Dim: ServiceDim},
			"undeclared port",
		},
		{
			"control from non-decision",
			Dependency{From: ActivityNode("a"), To: ActivityNode("b"), Dim: Control, Branch: "T"},
			"non-decision",
		},
		{
			"control branch outside domain",
			Dependency{From: ActivityNode("c"), To: ActivityNode("d"), Dim: Control, Branch: "MAYBE"},
			"not in domain",
		},
		{
			"branch on data dependency",
			Dependency{From: ActivityNode("a"), To: ActivityNode("b"), Dim: Data, Branch: "T"},
			"outside the control dimension",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewDependencySet()
			s.Add(tc.dep)
			err := s.Validate(p)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestDependencyValidateOK(t *testing.T) {
	p := testProcess(t)
	s := NewDependencySet()
	s.Add(Dependency{From: ActivityNode("a"), To: ActivityNode("b"), Dim: Data, Label: "x"})
	s.Add(Dependency{From: ActivityNode("c"), To: ActivityNode("d"), Dim: Control, Branch: "T"})
	s.Add(Dependency{From: ActivityNode("c"), To: ActivityNode("b"), Dim: Control}) // NONE branch
	s.Add(Dependency{From: ActivityNode("b"), To: ServiceNode("Svc", "1"), Dim: ServiceDim})
	s.Add(Dependency{From: ServiceNode("Svc", "d"), To: ActivityNode("d"), Dim: ServiceDim})
	s.Add(Dependency{From: ActivityNode("a"), To: ActivityNode("d"), Dim: Cooperation, Label: "biz"})
	if err := s.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestByDimensionAndCounts(t *testing.T) {
	s := NewDependencySet()
	s.Add(Dependency{From: ActivityNode("a"), To: ActivityNode("b"), Dim: Data})
	s.Add(Dependency{From: ActivityNode("b"), To: ActivityNode("c"), Dim: Data})
	s.Add(Dependency{From: ActivityNode("a"), To: ActivityNode("c"), Dim: Cooperation})
	if got := len(s.ByDimension(Data)); got != 2 {
		t.Errorf("data deps = %d, want 2", got)
	}
	counts := s.CountByDimension()
	if counts[Data] != 2 || counts[Cooperation] != 1 || counts[Control] != 0 {
		t.Errorf("counts = %v", counts)
	}
}

func TestDependencySetNodesSorted(t *testing.T) {
	s := NewDependencySet()
	s.Add(Dependency{From: ActivityNode("z"), To: ActivityNode("a"), Dim: Data})
	s.Add(Dependency{From: ActivityNode("m"), To: ServiceNode("S", "1"), Dim: ServiceDim})
	nodes := s.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("nodes = %v", nodes)
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].String() > nodes[i].String() {
			t.Errorf("nodes not sorted: %v", nodes)
		}
	}
}

func TestDependencySetString(t *testing.T) {
	s := NewDependencySet()
	s.Add(Dependency{From: ActivityNode("a"), To: ActivityNode("b"), Dim: Data})
	s.Add(Dependency{From: ActivityNode("c"), To: ActivityNode("b"), Dim: Control, Branch: "T"})
	out := s.String()
	for _, want := range []string{"data {→d}: 1", "control {→c}: 1", "a →d b", "c →c[T] b"} {
		if !strings.Contains(out, want) {
			t.Errorf("String output missing %q:\n%s", want, out)
		}
	}
}

func TestAddAll(t *testing.T) {
	a := NewDependencySet()
	a.Add(Dependency{From: ActivityNode("a"), To: ActivityNode("b"), Dim: Data})
	b := NewDependencySet()
	b.Add(Dependency{From: ActivityNode("a"), To: ActivityNode("b"), Dim: Data}) // dup
	b.Add(Dependency{From: ActivityNode("b"), To: ActivityNode("c"), Dim: Data})
	a.AddAll(b)
	if a.Len() != 2 {
		t.Errorf("Len after AddAll = %d, want 2", a.Len())
	}
}
