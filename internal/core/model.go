// Package core implements the paper's primary contribution: the
// four-dimension categorization of synchronization dependencies in
// business processes (data, control, service, cooperation — §3), their
// uniform representation as DSCL synchronization constraints (§4.1–4.2),
// service-dependency translation (§4.3) and the minimal synchronization
// constraint set computation (§4.4, Definitions 1–6).
//
// The package is deliberately independent of any concrete syntax: the
// dscl, wscl and pdg packages parse their respective notations into the
// types defined here, and the petri, bpel and schedule packages consume
// the optimized constraint sets this package produces.
package core

import (
	"fmt"
	"sort"

	"dscweaver/internal/cond"
)

// ActivityID names an internal activity of a process, e.g.
// "invPurchase_po".
type ActivityID string

// ActivityKind classifies an activity by its interaction role.
type ActivityKind int

const (
	// KindOpaque is a local computation with no service interaction
	// (the paper's action_parameter form, e.g. set_oi).
	KindOpaque ActivityKind = iota
	// KindReceive consumes a message from a client or a service
	// callback port (recClient_po, recShip_si).
	KindReceive
	// KindInvoke sends an asynchronous message to a service port
	// (invCredit_po).
	KindInvoke
	// KindReply sends a response back to the process client
	// (replyClient_oi).
	KindReply
	// KindDecision evaluates a predicate and selects a branch (if_au).
	// Its branch labels define a cond domain.
	KindDecision
)

var kindNames = map[ActivityKind]string{
	KindOpaque:   "opaque",
	KindReceive:  "receive",
	KindInvoke:   "invoke",
	KindReply:    "reply",
	KindDecision: "decision",
}

func (k ActivityKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("ActivityKind(%d)", int(k))
}

// BoolBranches is the default branch domain of a decision activity.
var BoolBranches = []string{"T", "F"}

// Activity is one unit of work inside a process.
type Activity struct {
	ID   ActivityID
	Kind ActivityKind

	// Service and Port identify the remote endpoint for
	// KindInvoke/KindReceive interactions with services. Receive
	// activities listening for a client message leave Service empty.
	Service string
	Port    string

	// Reads and Writes list process variables, feeding data-dependency
	// extraction and the runtime engine's variable store.
	Reads  []string
	Writes []string

	// Branches enumerates the possible outcomes of a KindDecision
	// activity; defaults to BoolBranches when empty.
	Branches []string
}

// BranchDomain returns the decision's branch labels.
func (a *Activity) BranchDomain() []string {
	if len(a.Branches) > 0 {
		return a.Branches
	}
	return BoolBranches
}

// Service describes a remote service the process interacts with.
type Service struct {
	Name string
	// Ports lists the invocable ports in declaration order, e.g.
	// ["1", "2"]. Port names are free-form strings.
	Ports []string
	// Async marks services that call back asynchronously through a
	// dummy port named DummyPort (the paper's s_d).
	Async bool
	// SequentialPorts marks state-aware services that require their
	// ports be invoked in declaration order (the Purchase service).
	SequentialPorts bool
}

// DummyPort is the name of the callback port of asynchronous services
// (the paper's s_d).
const DummyPort = "d"

// Process is a business process: a named set of activities plus the
// remote services they interact with. Activities and services keep
// insertion order for deterministic output.
type Process struct {
	Name string

	activities []*Activity
	byID       map[ActivityID]*Activity
	services   []*Service
	byName     map[string]*Service
}

// NewProcess returns an empty process.
func NewProcess(name string) *Process {
	return &Process{
		Name:   name,
		byID:   map[ActivityID]*Activity{},
		byName: map[string]*Service{},
	}
}

// AddActivity registers an activity. It returns an error on duplicate
// ids or empty names.
func (p *Process) AddActivity(a *Activity) error {
	if a.ID == "" {
		return fmt.Errorf("process %s: activity with empty id", p.Name)
	}
	if _, dup := p.byID[a.ID]; dup {
		return fmt.Errorf("process %s: duplicate activity %s", p.Name, a.ID)
	}
	p.activities = append(p.activities, a)
	p.byID[a.ID] = a
	return nil
}

// MustAddActivity is AddActivity that panics on error; used by fixtures
// and generators whose input is static.
func (p *Process) MustAddActivity(a *Activity) {
	if err := p.AddActivity(a); err != nil {
		panic(err)
	}
}

// AddService registers a remote service.
func (p *Process) AddService(s *Service) error {
	if s.Name == "" {
		return fmt.Errorf("process %s: service with empty name", p.Name)
	}
	if _, dup := p.byName[s.Name]; dup {
		return fmt.Errorf("process %s: duplicate service %s", p.Name, s.Name)
	}
	p.services = append(p.services, s)
	p.byName[s.Name] = s
	return nil
}

// MustAddService is AddService that panics on error.
func (p *Process) MustAddService(s *Service) {
	if err := p.AddService(s); err != nil {
		panic(err)
	}
}

// Activity looks up an activity by id.
func (p *Process) Activity(id ActivityID) (*Activity, bool) {
	a, ok := p.byID[id]
	return a, ok
}

// Service looks up a service by name.
func (p *Process) Service(name string) (*Service, bool) {
	s, ok := p.byName[name]
	return s, ok
}

// Activities returns the activities in insertion order (shared slice;
// callers must not mutate).
func (p *Process) Activities() []*Activity { return p.activities }

// Services returns the services in insertion order.
func (p *Process) Services() []*Service { return p.services }

// ActivityIDs returns all activity ids in insertion order.
func (p *Process) ActivityIDs() []ActivityID {
	out := make([]ActivityID, len(p.activities))
	for i, a := range p.activities {
		out[i] = a.ID
	}
	return out
}

// Decisions returns the decision activities in insertion order.
func (p *Process) Decisions() []*Activity {
	var out []*Activity
	for _, a := range p.activities {
		if a.Kind == KindDecision {
			out = append(out, a)
		}
	}
	return out
}

// Domains builds the cond.Domains map from the process's decision
// activities, for semantic condition comparisons.
func (p *Process) Domains() cond.Domains {
	d := cond.Domains{}
	for _, a := range p.activities {
		if a.Kind == KindDecision {
			d[string(a.ID)] = a.BranchDomain()
		}
	}
	return d
}

// Node identifies a vertex of the dependency/constraint graph: either
// an internal activity or an external service port (the paper's
// s_1…s_n and s_d nodes).
type Node struct {
	// Activity is set for internal nodes.
	Activity ActivityID
	// Service and Port are set for external nodes.
	Service string
	Port    string
}

// ActivityNode returns the internal node for an activity.
func ActivityNode(id ActivityID) Node { return Node{Activity: id} }

// ServiceNode returns the external node for a service port.
func ServiceNode(service, port string) Node {
	return Node{Service: service, Port: port}
}

// IsService reports whether the node is external.
func (n Node) IsService() bool { return n.Service != "" }

// String renders internal nodes as their activity id and external
// nodes as "Service.port" (e.g. "Purchase.1", "Credit.d").
func (n Node) String() string {
	if n.IsService() {
		return n.Service + "." + n.Port
	}
	return string(n.Activity)
}

func compareNodes(a, b Node) int {
	as, bs := a.String(), b.String()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

// SortNodes orders nodes by their string form, internal and external
// alike; used for deterministic reporting.
func SortNodes(ns []Node) {
	sort.Slice(ns, func(i, j int) bool { return compareNodes(ns[i], ns[j]) < 0 })
}

// Validate performs structural checks on the process: interaction
// activities must reference declared services and ports, decision
// branch labels must be unique, and sequential-port services must have
// at least two ports.
func (p *Process) Validate() error {
	for _, a := range p.activities {
		switch a.Kind {
		case KindInvoke, KindReceive:
			if a.Service == "" {
				continue // client-facing receive
			}
			s, ok := p.byName[a.Service]
			if !ok {
				return fmt.Errorf("activity %s references undeclared service %s", a.ID, a.Service)
			}
			if a.Port != DummyPort && !contains(s.Ports, a.Port) {
				return fmt.Errorf("activity %s references undeclared port %s.%s", a.ID, a.Service, a.Port)
			}
			if a.Port == DummyPort && !s.Async {
				return fmt.Errorf("activity %s receives on dummy port of synchronous service %s", a.ID, a.Service)
			}
		case KindDecision:
			seen := map[string]bool{}
			for _, b := range a.BranchDomain() {
				if seen[b] {
					return fmt.Errorf("decision %s: duplicate branch %q", a.ID, b)
				}
				seen[b] = true
			}
			if len(a.BranchDomain()) < 2 {
				return fmt.Errorf("decision %s: needs at least two branches", a.ID)
			}
		}
	}
	for _, s := range p.services {
		if s.SequentialPorts && len(s.Ports) < 2 {
			return fmt.Errorf("service %s: sequential ports require >=2 ports", s.Name)
		}
		seen := map[string]bool{}
		for _, port := range s.Ports {
			if port == DummyPort {
				return fmt.Errorf("service %s: port name %q is reserved", s.Name, DummyPort)
			}
			if seen[port] {
				return fmt.Errorf("service %s: duplicate port %q", s.Name, port)
			}
			seen[port] = true
		}
	}
	return nil
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
