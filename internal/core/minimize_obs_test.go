package core

import (
	"context"
	"testing"

	"dscweaver/internal/obs"
)

// TestMinimizeObservability checks the minimizer's registry counters
// and event stream against the MinimizeResult tallies they mirror.
func TestMinimizeObservability(t *testing.T) {
	p := linProcess(4)
	s := NewConstraintSet(p)
	s.Before("a0", "a1", Data)
	s.Before("a1", "a2", Data)
	s.Before("a2", "a3", Data)
	s.Before("a0", "a2", Cooperation) // redundant shortcut
	s.Before("a1", "a3", Cooperation) // redundant shortcut

	reg := obs.NewRegistry()
	var sink obs.MemSink
	res, err := MinimizeOpt(context.Background(), s, MinimizeOptions{Metrics: reg, Events: &sink})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 2 {
		t.Fatalf("removed %d, want 2", len(res.Removed))
	}
	if got := reg.Counter("minimize_equivalence_checks_total").Value(); int(got) != res.EquivalenceChecks {
		t.Errorf("checks counter = %d, result %d", got, res.EquivalenceChecks)
	}
	if got := reg.Counter("minimize_removed_total").Value(); got != 2 {
		t.Errorf("removed counter = %d, want 2", got)
	}
	if got := reg.Counter("minimize_pair_comparisons_total").Value(); int(got) != res.PairComparisons {
		t.Errorf("pairs counter = %d, result %d", got, res.PairComparisons)
	}
	if got := reg.Counter("minimize_closure_cache_hits_total").Value(); int(got) != res.ClosureCacheHits {
		t.Errorf("cache-hit counter = %d, result %d", got, res.ClosureCacheHits)
	}
	if got := reg.Gauge("minimize_workers").Value(); int(got) != res.Workers {
		t.Errorf("workers gauge = %d, result %d", got, res.Workers)
	}

	var begins, ends, kept, removed int
	for _, e := range sink.Events() {
		if e.Layer != obs.LayerMinimize {
			t.Errorf("wrong layer: %+v", e)
		}
		switch e.Kind {
		case obs.EvMinimizeBegin:
			begins++
		case obs.EvMinimizeEnd:
			ends++
		case obs.EvCandidateKept:
			kept++
		case obs.EvCandidateRemoved:
			removed++
		}
	}
	if begins != 1 || ends != 1 {
		t.Errorf("begin/end events = %d/%d", begins, ends)
	}
	if removed != 2 || kept+removed != res.EquivalenceChecks {
		t.Errorf("candidate events kept=%d removed=%d vs %d checks", kept, removed, res.EquivalenceChecks)
	}

	// The instrumented run must stay bit-identical to the plain one.
	plain, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Minimal.Len() != res.Minimal.Len() || len(plain.Removed) != len(res.Removed) {
		t.Errorf("instrumentation changed the result: %d/%d vs %d/%d",
			res.Minimal.Len(), len(res.Removed), plain.Minimal.Len(), len(plain.Removed))
	}
}
