package core

import (
	"strings"
	"testing"
)

func testProcess(t *testing.T) *Process {
	t.Helper()
	p := NewProcess("test")
	p.MustAddService(&Service{Name: "Svc", Ports: []string{"1", "2"}, Async: true, SequentialPorts: true})
	p.MustAddActivity(&Activity{ID: "a", Kind: KindReceive, Writes: []string{"x"}})
	p.MustAddActivity(&Activity{ID: "b", Kind: KindInvoke, Service: "Svc", Port: "1", Reads: []string{"x"}})
	p.MustAddActivity(&Activity{ID: "c", Kind: KindDecision, Reads: []string{"x"}})
	p.MustAddActivity(&Activity{ID: "d", Kind: KindOpaque})
	return p
}

func TestProcessDuplicateActivity(t *testing.T) {
	p := NewProcess("p")
	if err := p.AddActivity(&Activity{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddActivity(&Activity{ID: "a"}); err == nil {
		t.Error("duplicate activity accepted")
	}
	if err := p.AddActivity(&Activity{}); err == nil {
		t.Error("empty activity id accepted")
	}
}

func TestProcessDuplicateService(t *testing.T) {
	p := NewProcess("p")
	if err := p.AddService(&Service{Name: "S"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddService(&Service{Name: "S"}); err == nil {
		t.Error("duplicate service accepted")
	}
	if err := p.AddService(&Service{}); err == nil {
		t.Error("empty service name accepted")
	}
}

func TestProcessValidateUndeclaredService(t *testing.T) {
	p := NewProcess("p")
	p.MustAddActivity(&Activity{ID: "inv", Kind: KindInvoke, Service: "Nope", Port: "1"})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "undeclared service") {
		t.Errorf("Validate = %v, want undeclared service error", err)
	}
}

func TestProcessValidateUndeclaredPort(t *testing.T) {
	p := NewProcess("p")
	p.MustAddService(&Service{Name: "S", Ports: []string{"1"}})
	p.MustAddActivity(&Activity{ID: "inv", Kind: KindInvoke, Service: "S", Port: "9"})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "undeclared port") {
		t.Errorf("Validate = %v, want undeclared port error", err)
	}
}

func TestProcessValidateDummyOnSyncService(t *testing.T) {
	p := NewProcess("p")
	p.MustAddService(&Service{Name: "S", Ports: []string{"1"}})
	p.MustAddActivity(&Activity{ID: "rec", Kind: KindReceive, Service: "S", Port: DummyPort})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "dummy port") {
		t.Errorf("Validate = %v, want dummy-port error", err)
	}
}

func TestProcessValidateSequentialNeedsTwoPorts(t *testing.T) {
	p := NewProcess("p")
	p.MustAddService(&Service{Name: "S", Ports: []string{"1"}, SequentialPorts: true})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "sequential ports") {
		t.Errorf("Validate = %v, want sequential-ports error", err)
	}
}

func TestProcessValidateReservedPortName(t *testing.T) {
	p := NewProcess("p")
	p.MustAddService(&Service{Name: "S", Ports: []string{"d"}})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Errorf("Validate = %v, want reserved-port error", err)
	}
}

func TestProcessValidateDecisionBranches(t *testing.T) {
	p := NewProcess("p")
	p.MustAddActivity(&Activity{ID: "sw", Kind: KindDecision, Branches: []string{"A", "A"}})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate branch") {
		t.Errorf("Validate = %v, want duplicate-branch error", err)
	}
	p2 := NewProcess("p2")
	p2.MustAddActivity(&Activity{ID: "sw", Kind: KindDecision, Branches: []string{"only"}})
	if err := p2.Validate(); err == nil || !strings.Contains(err.Error(), "two branches") {
		t.Errorf("Validate = %v, want two-branches error", err)
	}
}

func TestDomains(t *testing.T) {
	p := testProcess(t)
	doms := p.Domains()
	vals, ok := doms["c"]
	if !ok {
		t.Fatal("decision c missing from Domains")
	}
	if len(vals) != 2 || vals[0] != "T" || vals[1] != "F" {
		t.Errorf("domain of c = %v, want [T F]", vals)
	}
}

func TestNodeString(t *testing.T) {
	if got := ActivityNode("a").String(); got != "a" {
		t.Errorf("activity node string = %q", got)
	}
	if got := ServiceNode("Purchase", "2").String(); got != "Purchase.2" {
		t.Errorf("service node string = %q", got)
	}
	if ActivityNode("a").IsService() {
		t.Error("activity node reports IsService")
	}
	if !ServiceNode("S", "1").IsService() {
		t.Error("service node does not report IsService")
	}
}

func TestActivityKindString(t *testing.T) {
	for k, want := range map[ActivityKind]string{
		KindOpaque: "opaque", KindReceive: "receive", KindInvoke: "invoke",
		KindReply: "reply", KindDecision: "decision",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k, want)
		}
	}
	if !strings.Contains(ActivityKind(99).String(), "99") {
		t.Error("unknown kind string should include the value")
	}
}

func TestBranchDomainDefault(t *testing.T) {
	a := &Activity{ID: "x", Kind: KindDecision}
	if got := a.BranchDomain(); len(got) != 2 || got[0] != "T" {
		t.Errorf("default branch domain = %v", got)
	}
	b := &Activity{ID: "y", Kind: KindDecision, Branches: []string{"lo", "hi", "mid"}}
	if got := b.BranchDomain(); len(got) != 3 {
		t.Errorf("explicit branch domain = %v", got)
	}
}

func TestActivityAccessors(t *testing.T) {
	p := testProcess(t)
	if _, ok := p.Activity("a"); !ok {
		t.Error("Activity(a) not found")
	}
	if _, ok := p.Activity("zz"); ok {
		t.Error("Activity(zz) found")
	}
	if _, ok := p.Service("Svc"); !ok {
		t.Error("Service(Svc) not found")
	}
	if got := len(p.ActivityIDs()); got != 4 {
		t.Errorf("ActivityIDs len = %d", got)
	}
	if got := len(p.Decisions()); got != 1 {
		t.Errorf("Decisions len = %d", got)
	}
}
