package core

import (
	"fmt"

	"dscweaver/internal/cond"
)

// TranslateServices rewrites a constraint set so that it mentions only
// internal activities — the paper's service dependency translation
// (§4.3, Definition 2, Figure 8). The result is the Activity
// Synchronization Constraint set ASC = {A, P}.
//
// Two rewrite rules are applied, then every constraint touching an
// external node is dropped:
//
//  1. Path projection. For every transitive path a → e₁ → … → eₖ → b
//     whose interior nodes are all external, a constraint
//     F(a) → S(b) is added (the paper's closest-internal-ancestor /
//     closest-internal-offspring rule). Paths that never return to an
//     internal activity are discarded: external events with no
//     internal offspring cannot affect activity scheduling
//     (Production₁ and Production₂ in the running example).
//
//  2. Port-order anchoring. An external→external constraint e₁ → e₂
//     where both ports are invoked from inside the process (both have
//     internal invokers) is a port-ordering requirement the process
//     must realize by sequencing the invocations themselves:
//     F(invoker(e₁)) → S(invoker(e₂)) is added. This is how
//     Purchase₁ →s Purchase₂ becomes
//     invPurchase_po → invPurchase_si in Figure 8.
//
// Conditions accumulate conjunctively along projected paths. The
// translated constraints carry the ServiceDim origin.
func TranslateServices(sc *ConstraintSet) (*ConstraintSet, error) {
	for _, c := range sc.Constraints() {
		if c.Rel == HappenTogether && (c.From.Node.IsService() || c.To.Node.IsService()) {
			return nil, fmt.Errorf("translate: HappenTogether on external node %s: desugar first", c)
		}
	}

	// Node-level adjacency over HappenBefore constraints.
	type edge struct {
		to   Node
		cond cond.Expr
	}
	succ := map[Node][]edge{}
	invokers := map[Node][]invokerEdge{} // external node -> internal activities invoking it
	for _, c := range sc.HappenBefores() {
		succ[c.From.Node] = append(succ[c.From.Node], edge{to: c.To.Node, cond: c.Cond})
		if !c.From.Node.IsService() && c.To.Node.IsService() {
			invokers[c.To.Node] = append(invokers[c.To.Node], invokerEdge{act: c.From.Node.Activity, cond: c.Cond})
		}
	}

	out := NewConstraintSet(sc.Proc)
	// Keep internal-only constraints verbatim (preserving point
	// states, so DSCL state-level constraints survive translation).
	for _, c := range sc.Constraints() {
		if !c.From.Node.IsService() && !c.To.Node.IsService() {
			out.Add(c)
		}
	}

	// Rule 1: path projection from each internal node through
	// external-only interiors.
	for _, c := range sc.HappenBefores() {
		if c.From.Node.IsService() || !c.To.Node.IsService() {
			continue
		}
		src := c.From.Node.Activity
		// DFS through external nodes, accumulating conditions.
		type frame struct {
			node Node
			cond cond.Expr
		}
		// Visited is keyed by (node, accumulated condition) so a port
		// reached under distinct conditions is explored once per
		// condition; external subgraphs are small, so this cannot
		// blow up in practice.
		seen := map[string]bool{}
		stack := []frame{{node: c.To.Node, cond: c.Cond}}
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			key := f.node.String() + "\x00" + f.cond.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			for _, e := range succ[f.node] {
				acc := cond.And(f.cond, e.cond)
				if acc.IsFalse() {
					continue
				}
				if e.to.IsService() {
					stack = append(stack, frame{node: e.to, cond: acc})
					continue
				}
				out.Add(Constraint{
					Rel:     HappenBefore,
					From:    PointOf(src, Finish),
					To:      Point{Node: e.to, State: Start},
					Cond:    acc,
					Origins: []Dimension{ServiceDim},
					Labels:  []string{fmt.Sprintf("via %s", f.node)},
				})
			}
		}
	}

	// Rule 2: port-order anchoring for external→external constraints
	// whose both endpoints are process-invoked.
	for _, c := range sc.HappenBefores() {
		if !c.From.Node.IsService() || !c.To.Node.IsService() {
			continue
		}
		for _, i1 := range invokers[c.From.Node] {
			for _, i2 := range invokers[c.To.Node] {
				if i1.act == i2.act {
					continue
				}
				acc := cond.And(i1.cond, c.Cond, i2.cond)
				if acc.IsFalse() {
					continue
				}
				out.Add(Constraint{
					Rel:     HappenBefore,
					From:    PointOf(i1.act, Finish),
					To:      PointOf(i2.act, Start),
					Cond:    acc,
					Origins: []Dimension{ServiceDim},
					Labels:  []string{fmt.Sprintf("port order %s → %s", c.From.Node, c.To.Node)},
				})
			}
		}
	}

	return out, nil
}

type invokerEdge struct {
	act  ActivityID
	cond cond.Expr
}
