// Cancellation property tests for MinimizeOpt: a canceled run aborts
// promptly with a *CancelError carrying the partial progress, leaks no
// worker goroutines, and an uncancelled run under a live (but unfired)
// cancelable context stays bit-identical to Minimize. Run with -race:
// the mid-run cancellation races the worker pool's abort path by
// construction.
package core_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"dscweaver/internal/core"
	"dscweaver/internal/obs"
	"dscweaver/internal/purchasing"
)

// cancelAfterSink cancels a context after n candidate verdicts. The
// minimizer emits EvCandidateKept/EvCandidateRemoved synchronously in
// its candidate loop, so firing cancel from Emit gives a deterministic
// mid-run abort: the very next ctx.Err() check sees it.
type cancelAfterSink struct {
	n      int
	cancel context.CancelFunc
	seen   int
}

func (s *cancelAfterSink) Emit(e obs.Event) {
	if e.Kind != obs.EvCandidateKept && e.Kind != obs.EvCandidateRemoved {
		return
	}
	s.seen++
	if s.seen == s.n {
		s.cancel()
	}
}

func TestMinimizeCancelMidRun(t *testing.T) {
	_, asc, full, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		for _, after := range []int{1, 5} {
			ctx, cancel := context.WithCancel(context.Background())
			sink := &cancelAfterSink{n: after, cancel: cancel}
			res, err := core.MinimizeOpt(ctx, asc, core.MinimizeOptions{
				Parallelism: workers, Events: sink,
			})
			cancel()
			if res != nil {
				t.Fatalf("workers=%d after=%d: canceled run returned a result", workers, after)
			}
			var ce *core.CancelError
			if !errors.As(err, &ce) {
				t.Fatalf("workers=%d after=%d: err = %v, want *core.CancelError", workers, after, err)
			}
			if !errors.Is(err, context.Canceled) || !core.ErrCanceled(err) {
				t.Errorf("workers=%d after=%d: CancelError does not unwrap to context.Canceled: %v", workers, after, err)
			}
			// The abort lands at the next candidate boundary (or inside
			// the aborted check, which is then uncounted), so progress is
			// a strict prefix of the full run.
			if ce.Checked < after || ce.Checked >= full.EquivalenceChecks {
				t.Errorf("workers=%d after=%d: Checked = %d, want in [%d, %d)",
					workers, after, ce.Checked, after, full.EquivalenceChecks)
			}
			if ce.Removed > len(full.Removed) {
				t.Errorf("workers=%d after=%d: Removed = %d > full run's %d",
					workers, after, ce.Removed, len(full.Removed))
			}
		}
	}
}

func TestMinimizePreCanceled(t *testing.T) {
	_, asc, _, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := core.MinimizeOpt(ctx, asc, core.MinimizeOptions{})
	if res != nil {
		t.Fatal("pre-canceled run returned a result")
	}
	var ce *core.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *core.CancelError", err)
	}
	if ce.Checked != 0 || ce.Removed != 0 {
		t.Errorf("pre-canceled run reported progress: checked=%d removed=%d", ce.Checked, ce.Removed)
	}
}

func TestMinimizeDeadlineExceeded(t *testing.T) {
	sc := conditionalWorkload(t, 64)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := core.MinimizeOpt(ctx, sc, core.MinimizeOptions{Parallelism: 4})
	if err == nil {
		t.Skip("workload finished inside the deadline on this machine")
	}
	if !errors.Is(err, context.DeadlineExceeded) || !core.ErrCanceled(err) {
		t.Fatalf("err = %v, want DeadlineExceeded via CancelError", err)
	}
}

// TestMinimizeUncanceledBitIdentical: a live cancelable context that
// never fires must not perturb the run — the contract every pipeline
// caller now relies on after the context threading.
func TestMinimizeUncanceledBitIdentical(t *testing.T) {
	_, asc, _, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	fixtures := []struct {
		name string
		sc   *core.ConstraintSet
	}{
		{"purchasing", asc},
		{"layered-64", conditionalWorkload(t, 64)},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			ref, err := core.Minimize(fx.sc)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			for _, workers := range []int{1, 8} {
				res, err := core.MinimizeOpt(ctx, fx.sc, core.MinimizeOptions{Parallelism: workers})
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, "uncanceled", ref, res)
			}
		})
	}
}

// removalRecorder records the committed removal order and cancels the
// run after n verdicts — a deterministic mid-speculation abort, since
// verdicts are emitted synchronously from the canonical commit loop.
type removalRecorder struct {
	n       int
	cancel  context.CancelFunc
	seen    int
	removed []string
}

func (s *removalRecorder) Emit(e obs.Event) {
	switch e.Kind {
	case obs.EvCandidateRemoved:
		s.removed = append(s.removed, e.Detail)
	case obs.EvCandidateKept:
	default:
		return
	}
	s.seen++
	if s.seen == s.n {
		s.cancel()
	}
}

// TestMinimizeCancelMidSpeculationPrefix: a cancel landing while
// speculative batches are in flight must abort at a commit boundary
// with the removals applied so far an exact prefix of the uncancelled
// run's deterministic removal sequence — never a verdict from a
// partial scan, never a removal out of order. Twelve seeded cancel
// points spread the abort across speculation windows.
func TestMinimizeCancelMidSpeculationPrefix(t *testing.T) {
	sc := conditionalWorkload(t, 128)
	full, err := core.MinimizeOpt(context.Background(), sc, core.MinimizeOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	fullRemoved := make([]string, len(full.Removed))
	for i, c := range full.Removed {
		fullRemoved[i] = c.String()
	}
	if full.EquivalenceChecks < 13 {
		t.Fatalf("workload decides only %d candidates — too few cancel points", full.EquivalenceChecks)
	}
	for seed := int64(1); seed <= 12; seed++ {
		target := 1 + int(seed*7919)%(full.EquivalenceChecks-1)
		ctx, cancel := context.WithCancel(context.Background())
		rec := &removalRecorder{n: target, cancel: cancel}
		res, err := core.MinimizeOpt(ctx, sc, core.MinimizeOptions{Parallelism: 8, Events: rec})
		cancel()
		if res != nil {
			t.Fatalf("seed %d: canceled run returned a result", seed)
		}
		var ce *core.CancelError
		if !errors.As(err, &ce) {
			t.Fatalf("seed %d: err = %v, want *core.CancelError", seed, err)
		}
		if ce.Checked < target || ce.Checked >= full.EquivalenceChecks {
			t.Errorf("seed %d: Checked = %d, want in [%d, %d)", seed, ce.Checked, target, full.EquivalenceChecks)
		}
		if ce.Removed != len(rec.removed) {
			t.Errorf("seed %d: CancelError.Removed = %d, but %d removal events were committed",
				seed, ce.Removed, len(rec.removed))
		}
		if len(rec.removed) > len(fullRemoved) {
			t.Fatalf("seed %d: canceled run removed %d constraints, full run only %d",
				seed, len(rec.removed), len(fullRemoved))
		}
		for i, got := range rec.removed {
			if got != fullRemoved[i] {
				t.Fatalf("seed %d: removal %d = %s, full run's sequence has %s — not a prefix",
					seed, i, got, fullRemoved[i])
			}
		}
	}
}

// TestMinimizeCancelNoGoroutineLeak aborts a parallel run mid-flight
// and checks the worker pool drains: the goroutine count must return
// to its baseline.
func TestMinimizeCancelNoGoroutineLeak(t *testing.T) {
	sc := conditionalWorkload(t, 64)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		sink := &cancelAfterSink{n: 3, cancel: cancel}
		_, err := core.MinimizeOpt(ctx, sc, core.MinimizeOptions{Parallelism: 8, Events: sink})
		cancel()
		if !core.ErrCanceled(err) {
			t.Fatalf("run %d: err = %v, want cancellation", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMinimizeCancelMetrics pins the cancel counter: observability
// callers alert on minimize_canceled_total.
func TestMinimizeCancelMetrics(t *testing.T) {
	_, asc, _, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.MinimizeOpt(ctx, asc, core.MinimizeOptions{Metrics: reg}); !core.ErrCanceled(err) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if got := reg.Counter("minimize_canceled_total").Value(); got != 1 {
		t.Errorf("minimize_canceled_total = %d, want 1", got)
	}
}
