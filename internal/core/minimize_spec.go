package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// specBatchFactor scales the speculation window: each round considers
// the next workers×specBatchFactor candidates, speculatively evaluates
// the provably independent ones among them concurrently against the
// frozen graph, and commits every verdict in canonical order. A larger
// window finds more independent candidates on sparse graphs but makes
// the greedy O(window²) interference scan and the frontier precompute
// proportionally larger; 4 gives every worker a queue without
// measurable selection overhead.
const specBatchFactor = 4

// specCandidate is one HappenBefore constraint in the canonical
// (insertion) candidate order, with its edge resolved up front: points
// never change during a run and no two constraints share an edge
// (buildPointGraph rejects duplicates), so the resolution done at
// collection time is identical to the sequential loop's per-iteration
// one.
type specCandidate struct {
	idx  int // position in sc.Constraints(), the verdict-cache value
	c    Constraint
	u, v int
}

// specState carries one candidate through a speculation window.
type specState struct {
	fr        *candFrontier
	member    bool // selected for speculative evaluation
	removable bool
	pairs     int
	began     time.Time
	err       error
}

// runSpeculative is the coarse-grained parallel candidate engine:
// per window of workers×specBatchFactor candidates it
//
//  1. computes every candidate's affected-pair frontier on the current
//     graph (one reverse + one forward bitset DFS each),
//  2. selects the speculation set greedily in canonical order — a
//     candidate joins when its frontier interferes with NO earlier
//     window candidate's (members and non-members alike), so no removal
//     that can land before its commit slot is able to change its
//     verdict,
//  3. evaluates the selected candidates concurrently against the frozen
//     graph (workers claim candidates off a shared index; the graph is
//     only read during this phase, and the closure caches are
//     internally synchronized),
//  4. commits all verdicts strictly in canonical order: selected
//     candidates land their precomputed verdict — after an interference
//     re-check against the removals committed earlier in the window,
//     which by construction of step 2 cannot fire and exists as a
//     safety net — while unselected candidates (the ones an earlier
//     potential removal could invalidate) are evaluated inline at their
//     commit slot against the now-current graph with the full
//     per-candidate sweep pool.
//
// Selecting for independence up front instead of speculating everything
// and invalidating afterwards matters on dense graphs: when most
// candidates' ancestor×descendant cones overlap (the layered
// workloads), blind speculation evaluates nearly every candidate twice,
// while the greedy set degrades gracefully to the sequential engine
// with only the (cheap) frontier precompute as overhead.
//
// Inline evaluations reuse the frontier computed in step 1 even though
// removals may have landed since: a stale frontier is a superset of the
// current one (removals only shrink reachability), and every extra
// (source, target) pair it adds to the comparison is provably
// equivalent — a source that no longer reaches u never routes through
// the candidate edge, and a target no longer reachable from v cannot be
// reached through it — so the verdict on the current graph is exact and
// only the PairComparisons tally (documented as configuration-
// dependent) can differ.
//
// Minimal, Removed and the removal order are therefore bit-identical to
// the sequential run for every worker count.
//
// Cancellation: ctx aborts are observed before every commit (so the
// committed removals are always a prefix of the uncancelled run's
// sequence and no partial-scan verdict can land — checkFrontier poisons
// those with the ctx error) and by the evaluation workers through the
// shared cancel flag. commit is called exactly once per decided
// candidate, in canonical order, and performs the removal, counters and
// event emission; hook (when non-nil) runs before every evaluation
// attempt.
//
// Returns the maximum worker fan-out actually exercised, the number of
// candidates that could not be speculated (plus any safety-net
// re-evaluations), and the first error in canonical order.
func (pg *pointGraph) runSpeculative(
	ctx context.Context,
	cands []specCandidate,
	workers int,
	hook CandidateHook,
	commit func(cand specCandidate, removable bool, pairs int, began time.Time),
) (effective, respeculated int, err error) {
	effective = 1
	window := workers * specBatchFactor
	var cancel atomic.Bool
	stop := context.AfterFunc(ctx, func() { cancel.Store(true) })
	defer stop()

	states := make([]specState, window)
	for pos := 0; pos < len(cands); pos += window {
		end := pos + window
		if end > len(cands) {
			end = len(cands)
		}
		items := cands[pos:end]
		sts := states[:len(items)]
		for i := range sts {
			sts[i] = specState{}
		}

		// Frontiers on the current graph, then the greedy independent
		// speculation set. members holds indices into items.
		var members []int
		for i := range items {
			sts[i].fr = pg.frontierOf(items[i].u, items[i].v)
			independent := true
			for j := 0; j < i; j++ {
				if sts[i].fr.interferes(sts[j].fr) {
					independent = false
					break
				}
			}
			if independent {
				sts[i].member = true
				members = append(members, i)
			}
		}

		// Speculative evaluation of the members. With fewer than two
		// there is nothing to overlap: fall through and evaluate at the
		// commit slot with the full per-candidate pool instead.
		if len(members) >= 2 {
			n := workers
			if n > len(members) {
				n = len(members)
			}
			if n > effective {
				effective = n
			}
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < n; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						k := int(next.Add(1)) - 1
						if k >= len(members) || cancel.Load() {
							return
						}
						st := &sts[members[k]]
						st.began = time.Now()
						if hook != nil {
							if herr := hook(ctx, items[members[k]].c); herr != nil {
								st.err = herr
								continue
							}
						}
						st.removable, st.pairs, _, st.err = pg.checkFrontier(ctx, st.fr, 1)
					}
				}()
			}
			wg.Wait()
		} else {
			for _, i := range members {
				sts[i].member = false
			}
			members = members[:0]
		}

		// Ordered commit. committed collects the frontiers of this
		// window's landed removals; prior windows' removals are already
		// reflected in the graph every frontier above saw.
		var committed []*candFrontier
		for i := range items {
			if cerr := ctx.Err(); cerr != nil {
				return effective, respeculated, cerr
			}
			st := &sts[i]
			if st.member && st.err != nil {
				if ErrCanceled(st.err) {
					// A casualty of the context abort; report the abort,
					// not the per-candidate symptom.
					if cerr := ctx.Err(); cerr != nil {
						return effective, respeculated, cerr
					}
				}
				return effective, respeculated, st.err
			}
			evaluated := st.member && !st.began.IsZero()
			if evaluated {
				// Safety net: by construction no removal committed in
				// this window interferes with a member, but verify
				// before letting a speculative verdict land.
				for _, cf := range committed {
					if st.fr.interferes(cf) {
						evaluated = false
						respeculated++
						break
					}
				}
			} else if st.member {
				// The eval workers stopped claiming after the shared
				// cancel flag fired; the flag is only ever set by the
				// ctx AfterFunc, and the ctx check above catches that on
				// the next pass. Evaluate inline if somehow still live.
				evaluated = false
			}
			if !evaluated {
				if !st.member {
					respeculated++
				}
				if hook != nil {
					if herr := hook(ctx, items[i].c); herr != nil {
						return effective, respeculated, herr
					}
				}
				st.began = time.Now()
				removable, pairs, used, rerr := pg.checkFrontier(ctx, st.fr, workers)
				if used > effective {
					effective = used
				}
				if rerr != nil {
					return effective, respeculated, rerr
				}
				st.removable, st.pairs = removable, pairs
			}
			commit(items[i], st.removable, st.pairs, st.began)
			if st.removable {
				committed = append(committed, st.fr)
			}
		}
	}
	return effective, respeculated, nil
}
