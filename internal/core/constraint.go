package core

import (
	"fmt"
	"sort"
	"strings"

	"dscweaver/internal/cond"
)

// State is a stage of the DSCL activity life cycle (§4.1): every
// activity passes through start → run → finish.
type State int

const (
	// Start (S) — the activity has been scheduled and may begin.
	Start State = iota
	// Run (R) — the activity is executing.
	Run
	// Finish (F) — the activity has completed (or was skipped by
	// dead-path elimination).
	Finish
)

func (s State) String() string {
	switch s {
	case Start:
		return "S"
	case Run:
		return "R"
	case Finish:
		return "F"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Point is an (node, state) pair — the granularity at which DSCL
// synchronizes (e.g. S(collectSurvey), F(closeOrder)).
type Point struct {
	Node  Node
	State State
}

// PointOf is shorthand for a point on an internal activity.
func PointOf(id ActivityID, s State) Point {
	return Point{Node: ActivityNode(id), State: s}
}

// String renders "S(recClient_po)" style.
func (p Point) String() string {
	return fmt.Sprintf("%s(%s)", p.State, p.Node)
}

func comparePoints(a, b Point) int {
	if c := compareNodes(a.Node, b.Node); c != 0 {
		return c
	}
	switch {
	case a.State < b.State:
		return -1
	case a.State > b.State:
		return 1
	default:
		return 0
	}
}

// Relation is one of DSCL's three synchronization relations (§4.1).
type Relation int

const (
	// HappenBefore (→c) orders two points, optionally under a branch
	// condition.
	HappenBefore Relation = iota
	// HappenTogether (↔c) requires two points be reached together. It
	// is syntactic sugar: Desugar rewrites it with a coordinating
	// activity and HappenBefore edges ([21], §4.2).
	HappenTogether
	// Exclusive (O) forbids two run states from overlapping. It is
	// enforced dynamically by the scheduling engine and does not
	// participate in static optimization (§4.2).
	Exclusive
)

func (r Relation) String() string {
	switch r {
	case HappenBefore:
		return "→"
	case HappenTogether:
		return "↔"
	case Exclusive:
		return "⊘"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Constraint is one DSCL synchronization constraint.
type Constraint struct {
	Rel      Relation
	From, To Point
	// Cond guards the constraint; cond.True() for unconditional
	// relations. Control dependencies contribute a single literal;
	// merged or translated constraints may carry disjunctions.
	Cond cond.Expr
	// Origins records which dependency dimensions contributed the
	// constraint (multiple when Merge deduplicates, e.g. the
	// recPurchase_oi→replyClient_oi data+cooperation pair).
	Origins []Dimension
	// Labels carries the provenance labels of the contributing
	// dependencies.
	Labels []string
}

// String renders e.g. "F(if_au) →[if_au=T] S(invPurchase_po)".
func (c Constraint) String() string {
	arrow := c.Rel.String()
	if c.Rel == HappenBefore && !c.Cond.IsTrue() {
		arrow = fmt.Sprintf("→[%s]", c.Cond)
	}
	return fmt.Sprintf("%s %s %s", c.From, arrow, c.To)
}

// PairKey identifies the (relation, endpoints) of a constraint,
// ignoring conditions; Merge uses it to fold duplicate pairs.
func (c Constraint) PairKey() string {
	return fmt.Sprint(int(c.Rel)) + "\x00" + c.From.String() + "\x00" + c.To.String()
}

// HasOrigin reports whether dim contributed to the constraint.
func (c Constraint) HasOrigin(dim Dimension) bool {
	for _, d := range c.Origins {
		if d == dim {
			return true
		}
	}
	return false
}

// ConstraintSet is the paper's synchronization constraint set
// SC = {A, S, P} (Definition 1): the internal activities A and
// external service nodes S are implied by the process plus the
// constraints' nodes; P is the constraint list itself.
type ConstraintSet struct {
	Proc *Process

	constraints []Constraint
	byPair      map[string]int
}

// NewConstraintSet returns an empty set bound to the process.
func NewConstraintSet(p *Process) *ConstraintSet {
	return &ConstraintSet{Proc: p, byPair: map[string]int{}}
}

// Add inserts a constraint. A HappenBefore constraint over an existing
// (from,to) pair is folded in by OR-ing the conditions and merging
// provenance — the set semantics of the paper's P. Other relations are
// deduplicated exactly.
func (s *ConstraintSet) Add(c Constraint) {
	if c.Cond.IsFalse() && c.Rel == HappenBefore {
		return // vacuous
	}
	key := c.PairKey()
	if i, ok := s.byPair[key]; ok {
		prev := &s.constraints[i]
		prev.Cond = cond.Or(prev.Cond, c.Cond)
		prev.Origins = mergeDims(prev.Origins, c.Origins)
		prev.Labels = mergeStrings(prev.Labels, c.Labels)
		return
	}
	s.byPair[key] = len(s.constraints)
	s.constraints = append(s.constraints, c)
}

// Before is shorthand for adding an unconditional activity-level
// HappenBefore F(from) → S(to).
func (s *ConstraintSet) Before(from, to ActivityID, origin Dimension) {
	s.Add(Constraint{
		Rel:     HappenBefore,
		From:    PointOf(from, Finish),
		To:      PointOf(to, Start),
		Cond:    cond.True(),
		Origins: []Dimension{origin},
	})
}

// Constraints returns the constraints in insertion order (copy).
func (s *ConstraintSet) Constraints() []Constraint {
	return append([]Constraint(nil), s.constraints...)
}

// HappenBefores returns only the HappenBefore constraints, which are
// the ones static optimization manipulates (§4.2 discusses why ⊘ is
// excluded and ↔ desugared).
func (s *ConstraintSet) HappenBefores() []Constraint {
	var out []Constraint
	for _, c := range s.constraints {
		if c.Rel == HappenBefore {
			out = append(out, c)
		}
	}
	return out
}

// Len returns the number of constraints.
func (s *ConstraintSet) Len() int { return len(s.constraints) }

// Nodes returns every node referenced by the constraints, sorted.
func (s *ConstraintSet) Nodes() []Node {
	seen := map[string]bool{}
	var out []Node
	for _, c := range s.constraints {
		for _, n := range []Node{c.From.Node, c.To.Node} {
			if k := n.String(); !seen[k] {
				seen[k] = true
				out = append(out, n)
			}
		}
	}
	SortNodes(out)
	return out
}

// ActivityNodes returns the internal activities mentioned (the A of
// SC = {A, S, P}), sorted.
func (s *ConstraintSet) ActivityNodes() []Node {
	var out []Node
	for _, n := range s.Nodes() {
		if !n.IsService() {
			out = append(out, n)
		}
	}
	return out
}

// ServiceNodes returns the external service nodes mentioned (the S of
// SC = {A, S, P}), sorted.
func (s *ConstraintSet) ServiceNodes() []Node {
	var out []Node
	for _, n := range s.Nodes() {
		if n.IsService() {
			out = append(out, n)
		}
	}
	return out
}

// HasServiceNodes reports whether any constraint touches an external
// node (i.e. the set has not yet been service-translated).
func (s *ConstraintSet) HasServiceNodes() bool {
	return len(s.ServiceNodes()) > 0
}

// Clone returns a deep copy sharing the process reference.
func (s *ConstraintSet) Clone() *ConstraintSet {
	c := NewConstraintSet(s.Proc)
	for _, con := range s.constraints {
		cc := con
		cc.Origins = append([]Dimension(nil), con.Origins...)
		cc.Labels = append([]string(nil), con.Labels...)
		c.byPair[cc.PairKey()] = len(c.constraints)
		c.constraints = append(c.constraints, cc)
	}
	return c
}

// remove deletes the constraint at index i, keeping order.
func (s *ConstraintSet) remove(i int) {
	delete(s.byPair, s.constraints[i].PairKey())
	s.constraints = append(s.constraints[:i], s.constraints[i+1:]...)
	for k := i; k < len(s.constraints); k++ {
		s.byPair[s.constraints[k].PairKey()] = k
	}
}

// String renders the constraints sorted for stable output.
func (s *ConstraintSet) String() string {
	keys := make([]string, len(s.constraints))
	for i, c := range s.constraints {
		keys[i] = c.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// Validate checks the constraint set's structural health: referenced
// activities must be declared, the HappenBefore relation must be
// acyclic over the point graph (no "infinite synchronization
// sequence", §4.1), and guard derivation must succeed. It does not
// require desugaring — HappenTogether constraints are checked for
// internal endpoints only.
func (s *ConstraintSet) Validate() error {
	for _, c := range s.constraints {
		for _, pt := range []Point{c.From, c.To} {
			if pt.Node.IsService() {
				if _, ok := s.Proc.Service(pt.Node.Service); !ok {
					return fmt.Errorf("constraint %s references undeclared service %s", c, pt.Node.Service)
				}
				continue
			}
			if _, ok := s.Proc.Activity(pt.Node.Activity); !ok {
				return fmt.Errorf("constraint %s references undeclared activity %s", c, pt.Node.Activity)
			}
		}
	}
	// buildPointGraph performs the cycle and guard checks over the
	// HappenBefore relation (HappenTogether and Exclusive constraints
	// contribute nodes but no ordering edges).
	if _, err := buildPointGraph(s); err != nil {
		return err
	}
	return nil
}

// Desugar rewrites every HappenTogether constraint using a fresh
// coordinating activity and two HappenBefore edges, as licensed by
// [21] ("↔c is syntax sugar"): A ↔c B becomes A →c coord and
// B →c coord plus coord →c A' successor edges are not needed because
// the rendezvous is modeled by both points preceding the coordinator
// and the coordinator preceding both points' successors via the
// scheduler; statically, A ↔ B is replaced by coord → A and
// coord → B with F(coord) as the common release point.
// The coordinator is registered on the process as an opaque activity.
func (s *ConstraintSet) Desugar() error {
	n := 0
	for i := 0; i < len(s.constraints); i++ {
		c := s.constraints[i]
		if c.Rel != HappenTogether {
			continue
		}
		if c.From.Node.IsService() || c.To.Node.IsService() {
			return fmt.Errorf("cannot desugar HappenTogether on external node: %s", c)
		}
		coord := ActivityID(fmt.Sprintf("coord_%s_%s_%d", c.From.Node.Activity, c.To.Node.Activity, n))
		n++
		if err := s.Proc.AddActivity(&Activity{ID: coord, Kind: KindOpaque}); err != nil {
			return err
		}
		s.remove(i)
		i--
		// Both synchronized points wait for the coordinator's finish;
		// the coordinator starts only when both activities' preceding
		// states are reachable, which the surrounding constraint set
		// already encodes. Release edges:
		s.Add(Constraint{Rel: HappenBefore, From: PointOf(coord, Finish), To: c.From, Cond: c.Cond, Origins: c.Origins, Labels: c.Labels})
		s.Add(Constraint{Rel: HappenBefore, From: PointOf(coord, Finish), To: c.To, Cond: c.Cond, Origins: c.Origins, Labels: c.Labels})
	}
	return nil
}

func mergeDims(a, b []Dimension) []Dimension {
	out := append([]Dimension(nil), a...)
	for _, d := range b {
		found := false
		for _, e := range out {
			if e == d {
				found = true
				break
			}
		}
		if !found {
			out = append(out, d)
		}
	}
	return out
}

func mergeStrings(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, s := range b {
		if s == "" {
			continue
		}
		found := false
		for _, e := range out {
			if e == s {
				found = true
				break
			}
		}
		if !found {
			out = append(out, s)
		}
	}
	return out
}
