package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dscweaver/internal/cond"
	"dscweaver/internal/graph"
	"dscweaver/internal/obs"
)

// CancelError is the error MinimizeOpt returns when its context is
// canceled mid-run: a partial-progress report alongside the context's
// own error. errors.Is(err, context.Canceled) (or DeadlineExceeded)
// sees through it via Unwrap.
type CancelError struct {
	// Cause is the context's error.
	Cause error
	// Checked counts candidate equivalence checks completed before the
	// abort; Removed counts the removals among them that landed. The
	// removals applied so far are always a prefix of the removal
	// sequence an uncancelled run would perform (the candidate loop is
	// deterministic).
	Checked int
	Removed int
	// Elapsed is the run time up to the abort.
	Elapsed time.Duration
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("minimize: canceled after %d equivalence checks (%d removals, %v): %v",
		e.Checked, e.Removed, e.Elapsed.Round(time.Microsecond), e.Cause)
}

// Unwrap exposes the context error.
func (e *CancelError) Unwrap() error { return e.Cause }

// MinimizeResult reports the outcome of a minimization run.
type MinimizeResult struct {
	// Minimal is the minimal synchronization constraint set P*
	// (Definition 6). Exclusive constraints, which are enforced
	// dynamically (§4.2), pass through untouched.
	Minimal *ConstraintSet
	// Removed lists the redundant constraints in removal order.
	Removed []Constraint
	// EquivalenceChecks counts the candidate-removal tests performed
	// (one per HappenBefore constraint, per the paper's algorithm).
	EquivalenceChecks int
	// PairComparisons counts the annotated-closure pair comparisons
	// evaluated across all checks — the maintenance-cost metric of the
	// optimizer benches. The tally depends on the engine configuration:
	// with Parallelism > 1 workers cancel early on the first
	// inequivalent pair and how far the others got is
	// scheduling-dependent, and with the closure cache the structural
	// fast paths hit at different points than with freshly recomputed
	// closures. The verdicts themselves — and hence Minimal, Removed
	// and EquivalenceChecks — are identical for every configuration.
	PairComparisons int
	// Workers is the resolved worker-pool size the run used
	// (MinimizeOptions.Parallelism after the GOMAXPROCS default).
	Workers int
	// ClosureCacheHits and ClosureCacheMisses count baseline-closure
	// lookups served from / computed into the per-source closure
	// cache. Without the cache every (candidate, source) pair costs a
	// full annotated sweep; the hit count is the number of sweeps the
	// cache avoided.
	ClosureCacheHits   int
	ClosureCacheMisses int
	// CondMemoHits counts semantic-equivalence checks answered by the
	// canonical-DNF memo table instead of domain enumeration.
	CondMemoHits int
	// Guards records the execution guards the minimization judged
	// redundancy under. Guards are a property of the process's control
	// structure, and minimization may remove redundant control edges,
	// so deriving guards from the minimal set is lossy: downstream
	// consumers (the scheduler, the Petri validator, any further
	// minimization) must use these guards, not DeriveGuards(Minimal).
	Guards map[Node]cond.Expr
}

// Minimize computes a minimal synchronization constraint set
// (Definition 6) with the paper's algorithm: every HappenBefore
// constraint is tentatively removed and the removal is kept when the
// remaining set is transitive-equivalent to the original.
//
// Equivalence is tested under condition-annotated closure
// (Definition 3) in the guard context of each point pair: two
// annotations count as equal when they agree on every branch
// assignment under which both endpoints execute. This is the semantics
// that reproduces the paper's Figure 9 — an unconditional data edge
// into a guarded activity (recClient_po → invPurchase_po) is
// subsumed by the conditional path through the decision, and a
// disjunction over all branches (if_au → replyClient_oi via the T and
// F paths) is subsumed as unconditional.
//
// The test is localized: removing edge u→v can only change closures
// from points that reach u toward points reachable from v, so only
// those pairs are re-compared. Minimality of the result — no further
// constraint is removable — follows from the algorithm visiting every
// constraint once against the evolving set; the property tests verify
// it independently.
//
// The input set must be desugared (no HappenTogether) and acyclic.
// The input is not mutated. Guards are derived from the input set's
// control-origin constraints; when minimizing a set whose control
// structure lives elsewhere (e.g. re-minimizing an already-minimal
// set), use MinimizeWithGuards with the original guards.
func Minimize(sc *ConstraintSet) (*MinimizeResult, error) {
	return MinimizeWithGuards(sc, nil)
}

// ErrCanceled reports whether err is a cancellation (a *CancelError or
// a bare context error), so call sites can distinguish an aborted run
// from a malformed input.
func ErrCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// MinimizeOptions tunes the minimization algorithm; the zero value is
// the paper-faithful configuration (the engine options — Parallelism,
// NoCache — never change the result, only how fast it is computed).
type MinimizeOptions struct {
	// Guards overrides the execution-guard context (nil derives from
	// the set's control-origin constraints).
	Guards map[Node]cond.Expr
	// Parallelism sets the worker-pool size for the per-source
	// equivalence checks of each candidate removal: 0 means
	// GOMAXPROCS, 1 runs inline with no goroutines, larger values are
	// taken literally. The candidate loop itself stays sequential, so
	// the removal order — and therefore the resulting minimal set — is
	// bit-identical across worker counts.
	Parallelism int
	// NoCache disables the per-source closure cache and the
	// equivalence memo, restoring the naive re-derivation of every
	// closure per (candidate, source). It exists as the baseline for
	// the optimizer benches; results are identical either way.
	NoCache bool
	// StrictAnnotations disables guard-context equivalence: closure
	// annotations are compared verbatim (an unconditional edge into a
	// guarded activity then differs from the conditional path through
	// its decision). This is the ablation of DESIGN.md's
	// "condition-annotated closure" design choice — under it the
	// paper's own example stops at 20 constraints instead of
	// Figure 9's 17.
	StrictAnnotations bool
	// Metrics, when non-nil, receives the run's counters (equivalence
	// checks, pair comparisons, closure-cache hits/misses, memo hits)
	// — the same tallies MinimizeResult reports, surfaced through the
	// shared registry so a process exposes engine, bus and minimizer
	// signals on one endpoint.
	Metrics *obs.Registry
	// Events, when non-nil, receives obs.LayerMinimize lifecycle
	// events: one per candidate verdict plus begin/end markers.
	Events obs.Sink
}

// MinimizeWithGuards is Minimize with an explicit guard context. A nil
// guards map derives guards from the set itself.
func MinimizeWithGuards(sc *ConstraintSet, guards map[Node]cond.Expr) (*MinimizeResult, error) {
	return MinimizeOpt(context.Background(), sc, MinimizeOptions{Guards: guards})
}

// MinimizeOpt is Minimize with full options and cooperative
// cancellation: ctx is checked once per candidate in the outer loop
// and inside every candidate's closure-sweep worker pool, so a
// canceled run aborts within one per-source sweep. On cancellation the
// returned error is a *CancelError carrying the partial progress (the
// removals applied so far are a prefix of the uncancelled run's
// deterministic removal sequence). An uncancelled run is bit-identical
// to Minimize for every engine configuration. A nil ctx behaves as
// context.Background().
func MinimizeOpt(ctx context.Context, sc *ConstraintSet, opts MinimizeOptions) (*MinimizeResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, c := range sc.Constraints() {
		if c.Rel == HappenTogether {
			return nil, fmt.Errorf("minimize: HappenTogether constraint %s: call Desugar first", c)
		}
	}
	work := sc.Clone()
	pg, err := buildPointGraph(work)
	if err != nil {
		return nil, err
	}
	if opts.Guards != nil {
		for n, g := range opts.Guards {
			pg.guards[n] = g
		}
	}
	pg.strict = opts.StrictAnnotations
	pg.cache.disabled = opts.NoCache
	pg.cacheTo.disabled = opts.NoCache
	pg.memo.disabled = opts.NoCache
	workers := resolveWorkers(opts.Parallelism)
	res := &MinimizeResult{Guards: pg.guards, Workers: workers}
	emit := func(ev obs.Event) {
		if opts.Events != nil {
			ev.Layer = obs.LayerMinimize
			opts.Events.Emit(obs.Stamp(ev))
		}
	}
	began := time.Now()
	emit(obs.Event{Kind: obs.EvMinimizeBegin, Detail: sc.Proc.Name, Value: float64(sc.Len())})

	// Iterate over a snapshot of the constraints; work shrinks as
	// removals land. The paper's algorithm is order-dependent in
	// general (minimal sets are not unique); insertion order makes
	// runs deterministic.
	cancelErr := func(cause error) error {
		if opts.Metrics != nil {
			opts.Metrics.Counter("minimize_canceled_total").Inc()
		}
		emit(obs.Event{Kind: obs.EvMinimizeEnd, Detail: sc.Proc.Name,
			Err: cause.Error(), Value: float64(len(res.Removed)), DurNS: int64(time.Since(began))})
		return &CancelError{Cause: cause, Checked: res.EquivalenceChecks,
			Removed: len(res.Removed), Elapsed: time.Since(began)}
	}
	for _, c := range sc.Constraints() {
		if c.Rel != HappenBefore {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, cancelErr(err)
		}
		u := pg.pointID(c.From)
		v := pg.pointID(c.To)
		if u < 0 || v < 0 || !pg.g.HasEdge(u, v) {
			continue // already removed alongside a folded pair
		}
		res.EquivalenceChecks++
		checkBegan := time.Now()
		removable, pairs, err := pg.edgeRedundantN(ctx, u, v, workers)
		res.PairComparisons += pairs
		if err != nil {
			if ErrCanceled(err) {
				res.EquivalenceChecks-- // the aborted check did not complete
				return nil, cancelErr(err)
			}
			return nil, err
		}
		verdict := obs.EvCandidateKept
		if removable {
			pg.removeConstraintEdge(u, v)
			res.Removed = append(res.Removed, c)
			verdict = obs.EvCandidateRemoved
		}
		emit(obs.Event{Kind: verdict, Detail: c.String(),
			Value: float64(pairs), DurNS: int64(time.Since(checkBegan))})
	}
	res.ClosureCacheHits = int(pg.cache.hits.Load() + pg.cacheTo.hits.Load())
	res.ClosureCacheMisses = int(pg.cache.misses.Load() + pg.cacheTo.misses.Load())
	res.CondMemoHits = int(pg.memo.hits.Load())
	emit(obs.Event{Kind: obs.EvMinimizeEnd, Detail: sc.Proc.Name,
		Value: float64(len(res.Removed)), DurNS: int64(time.Since(began))})
	if r := opts.Metrics; r != nil {
		r.Counter("minimize_runs_total").Inc()
		r.Counter("minimize_equivalence_checks_total").Add(int64(res.EquivalenceChecks))
		r.Counter("minimize_removed_total").Add(int64(len(res.Removed)))
		r.Counter("minimize_pair_comparisons_total").Add(int64(res.PairComparisons))
		r.Counter("minimize_closure_cache_hits_total").Add(int64(res.ClosureCacheHits))
		r.Counter("minimize_closure_cache_misses_total").Add(int64(res.ClosureCacheMisses))
		r.Counter("minimize_memo_hits_total").Add(int64(res.CondMemoHits))
		r.Gauge("minimize_workers").Set(int64(workers))
		r.Histogram("minimize_run_seconds", obs.DurationBuckets).ObserveDuration(time.Since(began))
	}

	// Rebuild the minimal set from the surviving edges.
	minimal := NewConstraintSet(sc.Proc)
	for _, c := range work.Constraints() {
		switch c.Rel {
		case HappenBefore:
			u, v := pg.pointID(c.From), pg.pointID(c.To)
			if pg.g.HasEdge(u, v) {
				minimal.Add(c)
			}
		default:
			minimal.Add(c)
		}
	}
	res.Minimal = minimal
	return res, nil
}

// edgeRedundant tests whether removing edge u→v leaves the set
// transitive-equivalent to the current one. Only closures from points
// that reach u (including u) toward points reachable from v (including
// v) can change. It returns the number of pair comparisons made. This
// is the inline single-worker form of edgeRedundantN (see
// minimize_parallel.go).
func (pg *pointGraph) edgeRedundant(u, v int) (bool, int, error) {
	return pg.edgeRedundantN(context.Background(), u, v, 1)
}

// ancestorsOf returns all points that reach x by a nonempty path.
func (pg *pointGraph) ancestorsOf(x int) []int {
	seen := graph.NewBitset(len(pg.points))
	var out []int
	stack := []int{x}
	for len(stack) > 0 {
		y := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range pg.g.Pred(y) {
			if !seen.Has(p) {
				seen.Set(p)
				out = append(out, p)
				stack = append(stack, p)
			}
		}
	}
	return out
}

// MinimizeUnconditional is the fast path for constraint sets with no
// conditional constraints: the minimal set of a DAG of unconditional
// HappenBefore edges is its unique transitive reduction. It returns an
// error if any constraint carries a condition. Used by the large-scale
// optimizer benches.
func MinimizeUnconditional(sc *ConstraintSet) (*MinimizeResult, error) {
	for _, c := range sc.Constraints() {
		if c.Rel == HappenBefore && !c.Cond.IsTrue() {
			return nil, fmt.Errorf("minimize: constraint %s is conditional; use Minimize", c)
		}
		if c.Rel == HappenTogether {
			return nil, fmt.Errorf("minimize: HappenTogether constraint %s: call Desugar first", c)
		}
	}
	pg, err := buildPointGraph(sc)
	if err != nil {
		return nil, err
	}
	_, removedEdges, err := pg.g.TransitiveReduction()
	if err != nil {
		return nil, err
	}
	removedSet := map[[2]int]bool{}
	for _, e := range removedEdges {
		// Life-cycle edges are never redundant (each is the only edge
		// between its endpoints once constraints go activity-level),
		// but guard against them anyway: only constraint edges may be
		// dropped.
		if _, ok := pg.conIndex[e]; ok {
			removedSet[e] = true
		}
	}
	res := &MinimizeResult{Minimal: NewConstraintSet(sc.Proc), Guards: pg.guards}
	for _, c := range sc.Constraints() {
		if c.Rel == HappenBefore {
			e := [2]int{pg.pointID(c.From), pg.pointID(c.To)}
			if removedSet[e] {
				res.Removed = append(res.Removed, c)
				continue
			}
		}
		res.Minimal.Add(c)
	}
	res.EquivalenceChecks = len(pg.conIndex)
	return res, nil
}
