package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dscweaver/internal/cond"
	"dscweaver/internal/graph"
	"dscweaver/internal/obs"
)

// CancelError is the error MinimizeOpt returns when its context is
// canceled mid-run: a partial-progress report alongside the context's
// own error. errors.Is(err, context.Canceled) (or DeadlineExceeded)
// sees through it via Unwrap.
type CancelError struct {
	// Cause is the context's error.
	Cause error
	// Checked counts candidate equivalence checks completed before the
	// abort; Removed counts the removals among them that landed. The
	// removals applied so far are always a prefix of the removal
	// sequence an uncancelled run would perform (the candidate loop is
	// deterministic).
	Checked int
	Removed int
	// Elapsed is the run time up to the abort.
	Elapsed time.Duration
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("minimize: canceled after %d equivalence checks (%d removals, %v): %v",
		e.Checked, e.Removed, e.Elapsed.Round(time.Microsecond), e.Cause)
}

// Unwrap exposes the context error.
func (e *CancelError) Unwrap() error { return e.Cause }

// MinimizeResult reports the outcome of a minimization run.
type MinimizeResult struct {
	// Minimal is the minimal synchronization constraint set P*
	// (Definition 6). Exclusive constraints, which are enforced
	// dynamically (§4.2), pass through untouched.
	Minimal *ConstraintSet
	// Removed lists the redundant constraints in removal order.
	Removed []Constraint
	// EquivalenceChecks counts the candidate-removal tests performed
	// (one per HappenBefore constraint, per the paper's algorithm).
	EquivalenceChecks int
	// PairComparisons counts the annotated-closure pair comparisons
	// evaluated across all checks — the maintenance-cost metric of the
	// optimizer benches. The tally depends on the engine configuration:
	// with Parallelism > 1 workers cancel early on the first
	// inequivalent pair and how far the others got is
	// scheduling-dependent, the closure cache changes where the
	// structural fast paths hit, and the quick-keep prefilter settles
	// most kept candidates at a single comparison. The verdicts
	// themselves — and hence Minimal, Removed and EquivalenceChecks —
	// are identical for every configuration.
	PairComparisons int
	// Workers is the maximum worker-pool fan-out the run actually
	// exercised — not the configured size: a 3-point process checked
	// with Parallelism=8 reports the couple of workers that ever had an
	// item to claim. 1 when every check ran inline (and on a verdict
	// cache hit, which runs no checks at all).
	Workers int
	// Respeculated counts candidates whose speculative verdict was
	// invalidated by an earlier removal committing in the same batch
	// (affected-pair interference) and had to be re-evaluated against
	// the updated graph. Zero in sequential and NoSpeculation runs. The
	// tally is scheduling-independent (invalidation is decided by the
	// deterministic commit order), but depends on batch geometry and
	// hence on Parallelism.
	Respeculated int
	// VerdictCacheHit reports that the whole run was served by
	// replaying a recorded removal sequence from
	// MinimizeOptions.VerdictCache — no equivalence checks ran
	// (EquivalenceChecks is 0).
	VerdictCacheHit bool
	// ClosureCacheHits and ClosureCacheMisses count baseline-closure
	// lookups served from / computed into the per-source closure
	// cache. Without the cache every (candidate, source) pair costs a
	// full annotated sweep; the hit count is the number of sweeps the
	// cache avoided.
	ClosureCacheHits   int
	ClosureCacheMisses int
	// CondMemoHits counts semantic-equivalence checks answered by the
	// canonical-DNF memo table instead of domain enumeration.
	CondMemoHits int
	// Guards records the execution guards the minimization judged
	// redundancy under. Guards are a property of the process's control
	// structure, and minimization may remove redundant control edges,
	// so deriving guards from the minimal set is lossy: downstream
	// consumers (the scheduler, the Petri validator, any further
	// minimization) must use these guards, not DeriveGuards(Minimal).
	Guards map[Node]cond.Expr
}

// Minimize computes a minimal synchronization constraint set
// (Definition 6) with the paper's algorithm: every HappenBefore
// constraint is tentatively removed and the removal is kept when the
// remaining set is transitive-equivalent to the original.
//
// Equivalence is tested under condition-annotated closure
// (Definition 3) in the guard context of each point pair: two
// annotations count as equal when they agree on every branch
// assignment under which both endpoints execute. This is the semantics
// that reproduces the paper's Figure 9 — an unconditional data edge
// into a guarded activity (recClient_po → invPurchase_po) is
// subsumed by the conditional path through the decision, and a
// disjunction over all branches (if_au → replyClient_oi via the T and
// F paths) is subsumed as unconditional.
//
// The test is localized: removing edge u→v can only change closures
// from points that reach u toward points reachable from v, so only
// those pairs are re-compared. Minimality of the result — no further
// constraint is removable — follows from the algorithm visiting every
// constraint once against the evolving set; the property tests verify
// it independently.
//
// The input set must be desugared (no HappenTogether) and acyclic.
// The input is not mutated. Guards are derived from the input set's
// control-origin constraints; when minimizing a set whose control
// structure lives elsewhere (e.g. re-minimizing an already-minimal
// set), use MinimizeWithGuards with the original guards.
func Minimize(sc *ConstraintSet) (*MinimizeResult, error) {
	return MinimizeWithGuards(sc, nil)
}

// ErrCanceled reports whether err is a cancellation (a *CancelError or
// a bare context error), so call sites can distinguish an aborted run
// from a malformed input.
func ErrCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// MinimizeOptions tunes the minimization algorithm; the zero value is
// the paper-faithful configuration (the engine options — Parallelism,
// NoCache — never change the result, only how fast it is computed).
type MinimizeOptions struct {
	// Guards overrides the execution-guard context (nil derives from
	// the set's control-origin constraints).
	Guards map[Node]cond.Expr
	// Parallelism sets the worker-pool size of the candidate engine: 0
	// means GOMAXPROCS, 1 runs inline with no goroutines, larger values
	// are taken literally. With more than one worker, candidates are
	// evaluated speculatively in parallel batches and their verdicts
	// committed strictly in canonical order (see minimize_spec.go), so
	// the removal order — and therefore the resulting minimal set — is
	// bit-identical across worker counts.
	Parallelism int
	// NoSpeculation disables the speculative candidate engine: with
	// Parallelism > 1 the candidate loop then stays sequential and only
	// the per-candidate closure sweeps fan out (the PR-1 engine).
	// Results are identical; it exists as the scaling baseline and
	// ablation for the optimizer benches.
	NoSpeculation bool
	// VerdictCache, when non-nil, consults (and on a miss, fills) a
	// cross-run content-addressed cache of removal sequences keyed on
	// the constraint set, guards, domains and comparison mode. On a hit
	// the recorded removals are replayed and every Definition 6
	// equivalence check is skipped; see VerdictCacheHit. A long-lived
	// server shares one instance across requests.
	VerdictCache *VerdictCache
	// CandidateHook, when non-nil, runs before every candidate
	// evaluation attempt — sequential, speculative, and re-evaluations
	// after an invalidation alike. A returned error aborts the run with
	// that error. The chaos suite injects latency and faults here.
	CandidateHook CandidateHook
	// NoCache disables the per-source closure cache and the
	// equivalence memo, restoring the naive re-derivation of every
	// closure per (candidate, source). It exists as the baseline for
	// the optimizer benches; results are identical either way.
	NoCache bool
	// StrictAnnotations disables guard-context equivalence: closure
	// annotations are compared verbatim (an unconditional edge into a
	// guarded activity then differs from the conditional path through
	// its decision). This is the ablation of DESIGN.md's
	// "condition-annotated closure" design choice — under it the
	// paper's own example stops at 20 constraints instead of
	// Figure 9's 17.
	StrictAnnotations bool
	// Metrics, when non-nil, receives the run's counters (equivalence
	// checks, pair comparisons, closure-cache hits/misses, memo hits)
	// — the same tallies MinimizeResult reports, surfaced through the
	// shared registry so a process exposes engine, bus and minimizer
	// signals on one endpoint.
	Metrics *obs.Registry
	// Events, when non-nil, receives obs.LayerMinimize lifecycle
	// events: one per candidate verdict plus begin/end markers.
	Events obs.Sink
}

// CandidateHook observes (and may veto) every candidate evaluation
// attempt; see MinimizeOptions.CandidateHook.
type CandidateHook func(ctx context.Context, c Constraint) error

// MinimizeWithGuards is Minimize with an explicit guard context. A nil
// guards map derives guards from the set itself.
func MinimizeWithGuards(sc *ConstraintSet, guards map[Node]cond.Expr) (*MinimizeResult, error) {
	return MinimizeOpt(context.Background(), sc, MinimizeOptions{Guards: guards})
}

// MinimizeOpt is Minimize with full options and cooperative
// cancellation: ctx is checked before every committed verdict and
// inside every closure-sweep worker pool, so a canceled run aborts
// within one per-source sweep and a speculative verdict computed from
// a partial scan can never land as a committed removal. On
// cancellation the returned error is a *CancelError carrying the
// partial progress (the removals applied so far are a prefix of the
// uncancelled run's deterministic removal sequence). An uncancelled
// run is bit-identical to Minimize for every engine configuration. A
// nil ctx behaves as context.Background().
func MinimizeOpt(ctx context.Context, sc *ConstraintSet, opts MinimizeOptions) (*MinimizeResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, c := range sc.Constraints() {
		if c.Rel == HappenTogether {
			return nil, fmt.Errorf("minimize: HappenTogether constraint %s: call Desugar first", c)
		}
	}
	work := sc.Clone()
	pg, err := buildPointGraph(work)
	if err != nil {
		return nil, err
	}
	if opts.Guards != nil {
		for n, g := range opts.Guards {
			pg.guards[n] = g
		}
	}
	pg.strict = opts.StrictAnnotations
	pg.cache.disabled = opts.NoCache
	pg.cacheTo.disabled = opts.NoCache
	pg.memo.disabled = opts.NoCache
	workers := resolveWorkers(opts.Parallelism)
	res := &MinimizeResult{Guards: pg.guards, Workers: 1}
	emit := func(ev obs.Event) {
		if opts.Events != nil {
			ev.Layer = obs.LayerMinimize
			opts.Events.Emit(obs.Stamp(ev))
		}
	}
	began := time.Now()
	emit(obs.Event{Kind: obs.EvMinimizeBegin, Detail: sc.Proc.Name, Value: float64(sc.Len())})

	cancelErr := func(cause error) error {
		if opts.Metrics != nil {
			opts.Metrics.Counter("minimize_canceled_total").Inc()
		}
		emit(obs.Event{Kind: obs.EvMinimizeEnd, Detail: sc.Proc.Name,
			Err: cause.Error(), Value: float64(len(res.Removed)), DurNS: int64(time.Since(began))})
		return &CancelError{Cause: cause, Checked: res.EquivalenceChecks,
			Removed: len(res.Removed), Elapsed: time.Since(began)}
	}

	// Collect the candidates up front in canonical (insertion) order.
	// The paper's algorithm is order-dependent in general (minimal sets
	// are not unique); insertion order makes runs deterministic. Edge
	// resolution at collection time matches the sequential loop's
	// per-iteration one: points are fixed for the run and no two
	// constraints share an edge, so no candidate's edge can disappear
	// before its turn.
	var cands []specCandidate
	for i, c := range sc.Constraints() {
		if c.Rel != HappenBefore {
			continue
		}
		u := pg.pointID(c.From)
		v := pg.pointID(c.To)
		if u < 0 || v < 0 || !pg.g.HasEdge(u, v) {
			continue // folded away during desugaring
		}
		cands = append(cands, specCandidate{idx: i, c: c, u: u, v: v})
	}

	var vcKey [32]byte
	replayed := false
	if opts.VerdictCache != nil {
		vcKey = verdictCacheKey(sc, pg.guards, pg.doms, opts.StrictAnnotations)
		if err := ctx.Err(); err != nil {
			return nil, cancelErr(err)
		}
		if removedIdx, ok := opts.VerdictCache.lookup(vcKey); ok {
			replayed = pg.replayRemovals(cands, removedIdx, res)
		}
		if replayed {
			res.VerdictCacheHit = true
			opts.VerdictCache.hits.Add(1)
		} else {
			opts.VerdictCache.misses.Add(1)
		}
		if r := opts.Metrics; r != nil {
			if replayed {
				r.Counter("minimize_verdict_cache_hits_total").Inc()
			} else {
				r.Counter("minimize_verdict_cache_misses_total").Inc()
			}
		}
	}

	if !replayed {
		var removedIdx []int
		commit := func(cand specCandidate, removable bool, pairs int, checkBegan time.Time) {
			res.EquivalenceChecks++
			res.PairComparisons += pairs
			verdict := obs.EvCandidateKept
			if removable {
				pg.removeConstraintEdge(cand.u, cand.v)
				res.Removed = append(res.Removed, cand.c)
				removedIdx = append(removedIdx, cand.idx)
				verdict = obs.EvCandidateRemoved
			}
			emit(obs.Event{Kind: verdict, Detail: cand.c.String(),
				Value: float64(pairs), DurNS: int64(time.Since(checkBegan))})
		}

		var err error
		if workers > 1 && !opts.NoSpeculation {
			var effective, respeculated int
			effective, respeculated, err = pg.runSpeculative(ctx, cands, workers, opts.CandidateHook, commit)
			if effective > res.Workers {
				res.Workers = effective
			}
			res.Respeculated = respeculated
		} else {
			err = pg.runSequential(ctx, cands, workers, opts.CandidateHook, commit, res)
		}
		if err != nil {
			if ErrCanceled(err) {
				return nil, cancelErr(err)
			}
			return nil, err
		}
		if opts.VerdictCache != nil {
			opts.VerdictCache.store(vcKey, removedIdx)
		}
		res.ClosureCacheHits = int(pg.cache.hits.Load() + pg.cacheTo.hits.Load())
		res.ClosureCacheMisses = int(pg.cache.misses.Load() + pg.cacheTo.misses.Load())
		res.CondMemoHits = int(pg.memo.hits.Load())
	}

	emit(obs.Event{Kind: obs.EvMinimizeEnd, Detail: sc.Proc.Name,
		Value: float64(len(res.Removed)), DurNS: int64(time.Since(began))})
	if r := opts.Metrics; r != nil {
		r.Counter("minimize_runs_total").Inc()
		r.Counter("minimize_equivalence_checks_total").Add(int64(res.EquivalenceChecks))
		r.Counter("minimize_removed_total").Add(int64(len(res.Removed)))
		r.Counter("minimize_pair_comparisons_total").Add(int64(res.PairComparisons))
		r.Counter("minimize_closure_cache_hits_total").Add(int64(res.ClosureCacheHits))
		r.Counter("minimize_closure_cache_misses_total").Add(int64(res.ClosureCacheMisses))
		r.Counter("minimize_memo_hits_total").Add(int64(res.CondMemoHits))
		r.Counter("minimize_respeculated_total").Add(int64(res.Respeculated))
		r.Gauge("minimize_workers").Set(int64(res.Workers))
		r.Histogram("minimize_run_seconds", obs.DurationBuckets).ObserveDuration(time.Since(began))
	}

	// Rebuild the minimal set from the surviving edges.
	minimal := NewConstraintSet(sc.Proc)
	for _, c := range work.Constraints() {
		switch c.Rel {
		case HappenBefore:
			u, v := pg.pointID(c.From), pg.pointID(c.To)
			if pg.g.HasEdge(u, v) {
				minimal.Add(c)
			}
		default:
			minimal.Add(c)
		}
	}
	res.Minimal = minimal
	return res, nil
}

// runSequential is the candidate engine with the loop itself kept
// sequential: one candidate at a time, with only the per-candidate
// closure sweeps fanned out over workers (the pre-speculation engine,
// retained as the NoSpeculation ablation and the workers=1 fast path).
// commit runs once per decided candidate in canonical order.
func (pg *pointGraph) runSequential(ctx context.Context, cands []specCandidate, workers int, hook CandidateHook, commit func(cand specCandidate, removable bool, pairs int, began time.Time), res *MinimizeResult) error {
	for _, cand := range cands {
		if err := ctx.Err(); err != nil {
			return err
		}
		if hook != nil {
			if err := hook(ctx, cand.c); err != nil {
				return err
			}
		}
		began := time.Now()
		removable, pairs, used, err := pg.checkFrontier(ctx, pg.frontierOf(cand.u, cand.v), workers)
		if used > res.Workers {
			res.Workers = used
		}
		if err != nil {
			return err
		}
		commit(cand, removable, pairs, began)
	}
	return nil
}

// replayRemovals applies a verdict-cache removal sequence to the fresh
// point graph. It validates the whole sequence before touching the
// graph — every index must name a distinct live candidate edge — and
// reports false on any mismatch (a hash collision or a cross-version
// entry), in which case the caller falls back to the full run against
// an unmodified graph.
func (pg *pointGraph) replayRemovals(cands []specCandidate, removedIdx []int, res *MinimizeResult) bool {
	byIdx := make(map[int]specCandidate, len(cands))
	for _, cand := range cands {
		byIdx[cand.idx] = cand
	}
	seen := make(map[int]bool, len(removedIdx))
	picked := make([]specCandidate, 0, len(removedIdx))
	for _, idx := range removedIdx {
		cand, ok := byIdx[idx]
		if !ok || seen[idx] || !pg.g.HasEdge(cand.u, cand.v) {
			return false
		}
		seen[idx] = true
		picked = append(picked, cand)
	}
	for _, cand := range picked {
		pg.removeConstraintEdge(cand.u, cand.v)
		res.Removed = append(res.Removed, cand.c)
	}
	return true
}

// edgeRedundant tests whether removing edge u→v leaves the set
// transitive-equivalent to the current one. Only closures from points
// that reach u (including u) toward points reachable from v (including
// v) can change. It returns the number of pair comparisons made. This
// is the inline single-worker form of edgeRedundantN (see
// minimize_parallel.go).
func (pg *pointGraph) edgeRedundant(u, v int) (bool, int, error) {
	return pg.edgeRedundantN(context.Background(), u, v, 1)
}

// ancestorsOf returns all points that reach x by a nonempty path.
func (pg *pointGraph) ancestorsOf(x int) []int {
	seen := graph.NewBitset(len(pg.points))
	var out []int
	stack := []int{x}
	for len(stack) > 0 {
		y := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range pg.g.Pred(y) {
			if !seen.Has(p) {
				seen.Set(p)
				out = append(out, p)
				stack = append(stack, p)
			}
		}
	}
	return out
}

// MinimizeUnconditional is the fast path for constraint sets with no
// conditional constraints: the minimal set of a DAG of unconditional
// HappenBefore edges is its unique transitive reduction. It returns an
// error if any constraint carries a condition. Used by the large-scale
// optimizer benches.
func MinimizeUnconditional(sc *ConstraintSet) (*MinimizeResult, error) {
	for _, c := range sc.Constraints() {
		if c.Rel == HappenBefore && !c.Cond.IsTrue() {
			return nil, fmt.Errorf("minimize: constraint %s is conditional; use Minimize", c)
		}
		if c.Rel == HappenTogether {
			return nil, fmt.Errorf("minimize: HappenTogether constraint %s: call Desugar first", c)
		}
	}
	pg, err := buildPointGraph(sc)
	if err != nil {
		return nil, err
	}
	_, removedEdges, err := pg.g.TransitiveReduction()
	if err != nil {
		return nil, err
	}
	removedSet := map[[2]int]bool{}
	for _, e := range removedEdges {
		// Life-cycle edges are never redundant (each is the only edge
		// between its endpoints once constraints go activity-level),
		// but guard against them anyway: only constraint edges may be
		// dropped.
		if _, ok := pg.conIndex[e]; ok {
			removedSet[e] = true
		}
	}
	res := &MinimizeResult{Minimal: NewConstraintSet(sc.Proc), Guards: pg.guards}
	for _, c := range sc.Constraints() {
		if c.Rel == HappenBefore {
			e := [2]int{pg.pointID(c.From), pg.pointID(c.To)}
			if removedSet[e] {
				res.Removed = append(res.Removed, c)
				continue
			}
		}
		res.Minimal.Add(c)
	}
	res.EquivalenceChecks = len(pg.conIndex)
	return res, nil
}
