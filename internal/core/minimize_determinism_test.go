// Determinism property tests for the speculative candidate engine: the
// minimal set, the removal order and the equivalence-check count must
// be bit-identical across every engine configuration — worker count,
// speculation on/off, closure cache on/off, verdict cache cold/warm —
// and the Workers field must report the fan-out a run actually used,
// not the configured pool size.
package core_test

import (
	"context"
	"fmt"
	"testing"

	"dscweaver/internal/core"
)

// TestMinimizeDeterminismMatrix sweeps the full engine matrix on the
// layered conditional workload. The n=512 sweep covers workers ∈
// {1, 2, 8} × speculation on/off × verdict cache off/shared; the
// closure-cache-off axis runs on the n=64 sweep only, because the
// naive engine re-derives every closure per candidate and takes
// minutes at n=512 (it is the baseline this engine exists to beat —
// see BENCH_minimize.json).
func TestMinimizeDeterminismMatrix(t *testing.T) {
	for _, n := range []int{64, 512} {
		n := n
		t.Run(fmt.Sprintf("activities=%d", n), func(t *testing.T) {
			if n > 64 && testing.Short() {
				t.Skip("large workload skipped in -short mode")
			}
			sc := conditionalWorkload(t, n)
			ref, err := core.MinimizeOpt(context.Background(), sc, core.MinimizeOptions{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(ref.Removed) == 0 {
				t.Fatal("workload has no redundancy — the matrix would compare empty removal sequences")
			}

			vc := core.NewVerdictCache(0)
			vcRuns := 0
			for _, workers := range []int{1, 2, 8} {
				for _, spec := range []bool{true, false} {
					for _, cache := range []*core.VerdictCache{nil, vc} {
						opts := core.MinimizeOptions{
							Parallelism:   workers,
							NoSpeculation: !spec,
							VerdictCache:  cache,
						}
						name := fmt.Sprintf("workers=%d/spec=%v/vcache=%v", workers, spec, cache != nil)
						res, err := core.MinimizeOpt(context.Background(), sc, opts)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						if res.VerdictCacheHit {
							// A replay runs no equivalence checks, so compare
							// the outcome, not the work counters.
							if res.Minimal.String() != ref.Minimal.String() || removedString(res) != removedString(ref) {
								t.Errorf("%s: replayed result differs from sequential run", name)
							}
							if res.EquivalenceChecks != 0 {
								t.Errorf("%s: replayed run reports %d equivalence checks, want 0", name, res.EquivalenceChecks)
							}
						} else {
							requireIdentical(t, name, ref, res)
						}
						if cache != nil {
							vcRuns++
							if wantHit := vcRuns > 1; res.VerdictCacheHit != wantHit {
								t.Errorf("%s: VerdictCacheHit = %v, want %v", name, res.VerdictCacheHit, wantHit)
							}
						}
					}
					if n <= 64 {
						// Closure-cache-off axis (the naive Def. 6 engine).
						opts := core.MinimizeOptions{Parallelism: workers, NoSpeculation: !spec, NoCache: true}
						name := fmt.Sprintf("workers=%d/spec=%v/nocache", workers, spec)
						res, err := core.MinimizeOpt(context.Background(), sc, opts)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						requireIdentical(t, name, ref, res)
					}
				}
			}
			if hits, misses := vc.Hits(), vc.Misses(); hits != int64(vcRuns-1) || misses != 1 {
				t.Errorf("verdict cache hits/misses = %d/%d, want %d/1", hits, misses, vcRuns-1)
			}
		})
	}
}

// TestMinimizeWorkersEffective: Workers reports the maximum fan-out the
// run actually exercised, not the configured pool size. A three-activity
// chain with one redundant shortcut has at most two sweep sources per
// candidate, so a Parallelism=8 run must not claim 8 workers.
func TestMinimizeWorkersEffective(t *testing.T) {
	proc := core.NewProcess("tiny")
	proc.MustAddActivity(&core.Activity{ID: "a", Kind: core.KindOpaque, Writes: []string{"x"}})
	proc.MustAddActivity(&core.Activity{ID: "b", Kind: core.KindOpaque, Reads: []string{"x"}, Writes: []string{"y"}})
	proc.MustAddActivity(&core.Activity{ID: "c", Kind: core.KindOpaque, Reads: []string{"y"}})
	deps := core.NewDependencySet()
	deps.Add(core.Dependency{From: core.ActivityNode("a"), To: core.ActivityNode("b"), Dim: core.Data, Label: "x"})
	deps.Add(core.Dependency{From: core.ActivityNode("b"), To: core.ActivityNode("c"), Dim: core.Data, Label: "y"})
	deps.Add(core.Dependency{From: core.ActivityNode("a"), To: core.ActivityNode("c"), Dim: core.Cooperation, Label: "shortcut"})
	sc, err := core.Merge(proc, deps)
	if err != nil {
		t.Fatal(err)
	}

	res, err := core.MinimizeOpt(context.Background(), sc, core.MinimizeOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 {
		t.Fatalf("removed %d constraints, want the shortcut only: %+v", len(res.Removed), res.Removed)
	}
	if res.Workers < 1 || res.Workers > 2 {
		t.Errorf("Workers = %d, want the effective fan-out in [1, 2] — not the configured 8", res.Workers)
	}

	// A verdict-cache replay runs no checks at all and must say so.
	vc := core.NewVerdictCache(0)
	for i := 0; i < 2; i++ {
		if res, err = core.MinimizeOpt(context.Background(), sc, core.MinimizeOptions{Parallelism: 8, VerdictCache: vc}); err != nil {
			t.Fatal(err)
		}
	}
	if !res.VerdictCacheHit {
		t.Fatal("second run with a shared verdict cache did not replay")
	}
	if res.Workers != 1 {
		t.Errorf("replayed run Workers = %d, want 1", res.Workers)
	}
}
