// Mid-sweep cancellation of the closure sweeps: a single equivalence
// check on a pathological candidate used to run its sweep to
// completion no matter what (the ROADMAP's "unbounded single-candidate
// latency" gap). These tests pin the new behavior: a fired cancel flag
// stops a sweep after at most sweepCheckInterval further frontier
// expansions, in both directions, and the sequential minimizer path
// arms the flag from its context.
package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// chainGraph builds a pointGraph over a pure chain a0 → a1 → … of n
// activities — every point reachable from S(a0), so an uncancelled
// sweep must expand ~3n frontier nodes.
func chainGraph(t *testing.T, n int) *pointGraph {
	t.Helper()
	p := NewProcess("pathological")
	for i := 0; i < n; i++ {
		p.MustAddActivity(&Activity{ID: ActivityID(fmt.Sprintf("a%d", i)), Kind: KindOpaque})
	}
	sc := NewConstraintSet(p)
	for i := 0; i+1 < n; i++ {
		sc.Before(ActivityID(fmt.Sprintf("a%d", i)), ActivityID(fmt.Sprintf("a%d", i+1)), Data)
	}
	pg, err := buildPointGraph(sc)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestClosureSweepAbortsMidSweep(t *testing.T) {
	const n = 600 // ~1800 points, dozens of poll intervals
	pg := chainGraph(t, n)
	src := pg.pointID(PointOf("a0", Start))
	dst := pg.pointID(PointOf(ActivityID(fmt.Sprintf("a%d", n-1)), Finish))
	if src < 0 || dst < 0 {
		t.Fatal("chain endpoints missing from point graph")
	}

	full := pg.annotatedFrom(src, nil)
	fullReached := 0
	for _, c := range full {
		if !c.IsFalse() {
			fullReached++
		}
	}
	if fullReached < 3*n-3 {
		t.Fatalf("uncancelled sweep reached %d points, want ~%d", fullReached, 3*n)
	}

	// A pre-fired cancel flag must stop the forward sweep at its first
	// poll: at most sweepCheckInterval expansions plus their immediate
	// successors get annotated.
	fired := &atomic.Bool{}
	fired.Store(true)
	partial := pg.annotatedFromInto(nil, src, nil, fired, nil)
	partialReached := 0
	for _, c := range partial {
		if !c.IsFalse() {
			partialReached++
		}
	}
	if partialReached > 2*sweepCheckInterval {
		t.Errorf("cancelled forward sweep reached %d points, want ≤ %d (abort at first poll)",
			partialReached, 2*sweepCheckInterval)
	}

	// Backward mirror.
	partialBack := pg.annotatedToInto(nil, dst, nil, fired, nil)
	backReached := 0
	for _, c := range partialBack {
		if !c.IsFalse() {
			backReached++
		}
	}
	if backReached > 2*sweepCheckInterval {
		t.Errorf("cancelled backward sweep reached %d points, want ≤ %d", backReached, 2*sweepCheckInterval)
	}
}

// TestEdgeRedundantSequentialCancelMidSweep: the sequential check path
// arms the sweep cancel flag from its context, so a pre-cancelled
// context aborts the very first sweep mid-scan instead of riding out a
// full pass over the chain — and never returns a verdict from the
// partial data.
func TestEdgeRedundantSequentialCancelMidSweep(t *testing.T) {
	pg := chainGraph(t, 400)
	// Candidate: the edge S(a0)→R(a0)? Lifecycle edges are not
	// constraints; use the first constraint edge F(a0)→S(a1).
	u := pg.pointID(PointOf("a0", Finish))
	v := pg.pointID(PointOf("a1", Start))
	if u < 0 || v < 0 {
		t.Fatal("candidate edge endpoints missing")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	ok, _, err := pg.edgeRedundantN(ctx, u, v, 1)
	if err == nil || ok {
		t.Fatalf("cancelled sequential check returned ok=%v err=%v, want context error", ok, err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled check took %v; sweep did not abort promptly", elapsed)
	}
}
