package core

import (
	"fmt"
	"sort"
	"strings"
)

// DependencyDOT renders a dependency catalog as a Graphviz digraph in
// the style of the paper's Figures 4–5: data dependencies dashed,
// control dependencies solid with their branch annotation, service
// dependencies gray with boxed external nodes, cooperation
// dependencies dotted. Output is deterministic.
func DependencyDOT(name string, deps *DependencySet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n")

	for _, n := range deps.Nodes() {
		if n.IsService() {
			fmt.Fprintf(&b, "  %q [shape=box, style=filled, fillcolor=lightgray];\n", n.String())
		}
	}

	var lines []string
	for _, d := range deps.All() {
		attrs := map[string]string{}
		switch d.Dim {
		case Data:
			attrs["style"] = "dashed"
			if d.Label != "" {
				attrs["label"] = d.Label
			}
		case Control:
			attrs["style"] = "solid"
			if d.Branch != "" {
				attrs["label"] = d.Branch
			} else {
				attrs["label"] = "NONE"
			}
		case ServiceDim:
			attrs["color"] = "gray40"
		case Cooperation:
			attrs["style"] = "dotted"
		}
		lines = append(lines, edgeLine(d.From.String(), d.To.String(), attrs))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
	}
	b.WriteString("}\n")
	return b.String()
}

// ConstraintDOT renders a constraint set as a Graphviz digraph in the
// style of Figures 7–9: one edge per HappenBefore constraint (labeled
// with its condition when conditional, bold when service-derived),
// Exclusive constraints as red undirected-looking double arrows.
// Points other than the default F→S render their states on the label.
func ConstraintDOT(name string, sc *ConstraintSet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n")

	for _, n := range sc.ServiceNodes() {
		fmt.Fprintf(&b, "  %q [shape=box, style=filled, fillcolor=lightgray];\n", n.String())
	}

	var lines []string
	for _, c := range sc.Constraints() {
		attrs := map[string]string{}
		var labels []string
		switch c.Rel {
		case HappenBefore:
			if !c.Cond.IsTrue() {
				labels = append(labels, c.Cond.String())
			}
			if c.From.State != Finish || c.To.State != Start {
				labels = append(labels, fmt.Sprintf("%s→%s", c.From.State, c.To.State))
			}
			if c.HasOrigin(ServiceDim) {
				attrs["style"] = "bold"
			}
		case HappenTogether:
			attrs["dir"] = "both"
			attrs["color"] = "blue"
		case Exclusive:
			attrs["dir"] = "both"
			attrs["color"] = "red"
			labels = append(labels, "excl")
		}
		if len(labels) > 0 {
			attrs["label"] = strings.Join(labels, ", ")
		}
		lines = append(lines, edgeLine(c.From.Node.String(), c.To.Node.String(), attrs))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
	}
	b.WriteString("}\n")
	return b.String()
}

func edgeLine(from, to string, attrs map[string]string) string {
	if len(attrs) == 0 {
		return fmt.Sprintf("  %q -> %q;\n", from, to)
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, attrs[k])
	}
	return fmt.Sprintf("  %q -> %q [%s];\n", from, to, strings.Join(parts, ", "))
}
