package core

import (
	"context"
	"fmt"

	"dscweaver/internal/cond"
)

// Adapter maintains a dependency catalog together with its minimal
// synchronization constraint view under incremental change — the
// paper's §1 motivation: with sequencing constructs "there is no easy
// way to add or delete a constraint in a process without
// over-specifying necessary constraints or invalidating existing
// ones", whereas with explicit dependencies adaptation is a local
// operation on the constraint set.
//
// Add inserts one dependency: if the merged/translated constraint is
// already implied by the current minimal set it is reported as implied
// and nothing changes; otherwise the constraint is added and only the
// constraints it could have made redundant are re-examined. Remove
// deletes one dependency: if its constraint was redundant the minimal
// set is untouched; only a load-bearing deletion triggers a full
// re-minimization (previously removed constraints may need to come
// back).
type Adapter struct {
	proc    *Process
	deps    *DependencySet
	full    *ConstraintSet // merged + translated catalog
	minimal *ConstraintSet
	guards  map[Node]cond.Expr
	// opts carries the minimization engine options (Parallelism,
	// NoCache) into every re-minimization and incremental redundancy
	// check. The Guards field is ignored: the adapter always derives
	// guards from its own catalog.
	opts MinimizeOptions
}

// ChangeResult reports what one adaptation did.
type ChangeResult struct {
	// Implied is set by Add when the new dependency imposed no new
	// ordering (it was already covered — the "over-specifying
	// necessary constraints" case detected automatically).
	Implied bool
	// Added and Pruned list the minimal-set constraints inserted and
	// removed by this change.
	Added  []Constraint
	Pruned []Constraint
	// FullRecompute is true when the change could not be handled
	// locally (control-dimension changes alter guards; load-bearing
	// deletions can resurrect previously pruned constraints).
	FullRecompute bool
	// EquivalenceChecks counts redundancy tests performed.
	EquivalenceChecks int
}

// NewAdapter builds the initial minimal view of the catalog.
func NewAdapter(proc *Process, deps *DependencySet) (*Adapter, error) {
	return NewAdapterOpt(proc, deps, MinimizeOptions{})
}

// NewAdapterOpt is NewAdapter with explicit minimization engine
// options. Parallelism and NoCache apply to the initial minimization
// and to every subsequent Add/Remove; the Guards override is ignored
// (the adapter derives guards from its catalog, which changes under
// adaptation).
func NewAdapterOpt(proc *Process, deps *DependencySet, opts MinimizeOptions) (*Adapter, error) {
	opts.Guards = nil
	a := &Adapter{proc: proc, deps: NewDependencySet(), opts: opts}
	a.deps.AddAll(deps)
	if err := a.recompute(); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Adapter) recompute() error {
	merged, err := Merge(a.proc, a.deps)
	if err != nil {
		return err
	}
	full, err := TranslateServices(merged)
	if err != nil {
		return err
	}
	res, err := MinimizeOpt(context.Background(), full, a.opts)
	if err != nil {
		return err
	}
	a.full = full
	a.minimal = res.Minimal
	a.guards = res.Guards
	return nil
}

// Minimal returns the current minimal constraint set (shared; do not
// mutate).
func (a *Adapter) Minimal() *ConstraintSet { return a.minimal }

// Guards returns the current execution guards.
func (a *Adapter) Guards() map[Node]cond.Expr { return a.guards }

// Dependencies returns a copy of the current catalog.
func (a *Adapter) Dependencies() *DependencySet {
	out := NewDependencySet()
	out.AddAll(a.deps)
	return out
}

// Add inserts a dependency into the catalog and updates the minimal
// view incrementally where possible.
func (a *Adapter) Add(dep Dependency) (*ChangeResult, error) {
	probe := NewDependencySet()
	probe.AddAll(a.deps)
	if !probe.Add(dep) {
		return &ChangeResult{Implied: true}, nil // exact duplicate
	}
	if err := probe.Validate(a.proc); err != nil {
		return nil, err
	}

	// Control-dimension changes alter guards, which can flip
	// redundancy judgments anywhere: recompute.
	if dep.Dim == Control {
		a.deps = probe
		if err := a.recompute(); err != nil {
			return nil, err
		}
		return &ChangeResult{FullRecompute: true}, nil
	}

	// Rebuild the merged+translated full set and diff it pair-wise
	// against the previous one.
	merged, err := Merge(a.proc, probe)
	if err != nil {
		return nil, err
	}
	fullNew, err := TranslateServices(merged)
	if err != nil {
		return nil, err
	}
	added, stable := diffConstraints(a.full, fullNew)
	if !stable {
		// A pair disappeared or changed condition — translation
		// interacted non-monotonically; fall back.
		a.deps = probe
		if err := a.recompute(); err != nil {
			return nil, err
		}
		return &ChangeResult{FullRecompute: true}, nil
	}
	if len(added) == 0 {
		a.deps = probe
		a.full = fullNew
		return &ChangeResult{Implied: true}, nil
	}

	// Candidate view: current minimal plus the new constraints.
	candidate := a.minimal.Clone()
	for _, c := range added {
		candidate.Add(c)
	}
	pg, err := buildPointGraph(candidate)
	if err != nil {
		return nil, err
	}
	pg.cache.disabled = a.opts.NoCache
	pg.cacheTo.disabled = a.opts.NoCache
	pg.memo.disabled = a.opts.NoCache
	for n, g := range a.guards {
		pg.guards[n] = g
	}

	res := &ChangeResult{}
	newEdges := map[string]bool{}
	for _, c := range added {
		newEdges[c.PairKey()] = true
	}
	impliedAll := true
	// Test the new edges first (a new edge may be implied, possibly by
	// a sibling new edge), then the old edges whose redundancy the
	// insertion could have changed.
	for _, c := range candidate.Constraints() {
		if c.Rel != HappenBefore {
			continue
		}
		u, v := pg.pointID(c.From), pg.pointID(c.To)
		if u < 0 || v < 0 || !pg.g.HasEdge(u, v) {
			continue
		}
		isNew := newEdges[c.PairKey()]
		if !isNew && !a.affectedBy(pg, u, v, added) {
			continue
		}
		res.EquivalenceChecks++
		removable, _, err := pg.edgeRedundantN(context.Background(), u, v, resolveWorkers(a.opts.Parallelism))
		if err != nil {
			return nil, err
		}
		if removable {
			pg.removeConstraintEdge(u, v)
			if !isNew {
				res.Pruned = append(res.Pruned, c)
			}
		} else if isNew {
			impliedAll = false
			res.Added = append(res.Added, c)
		}
	}
	res.Implied = impliedAll

	rebuilt := NewConstraintSet(a.proc)
	for _, c := range candidate.Constraints() {
		if c.Rel != HappenBefore {
			rebuilt.Add(c)
			continue
		}
		u, v := pg.pointID(c.From), pg.pointID(c.To)
		if pg.g.HasEdge(u, v) {
			rebuilt.Add(c)
		}
	}
	a.deps = probe
	a.full = fullNew
	a.minimal = rebuilt
	return res, nil
}

// affectedBy reports whether edge u→v could have become redundant due
// to the inserted constraints: some new edge lies on a potential
// alternative path, i.e. u reaches its source and its target reaches v.
func (a *Adapter) affectedBy(pg *pointGraph, u, v int, added []Constraint) bool {
	for _, c := range added {
		nu, nv := pg.pointID(c.From), pg.pointID(c.To)
		if nu < 0 || nv < 0 {
			continue
		}
		if (u == nu || pg.g.Reachable(u, nu)) && (nv == v || pg.g.Reachable(nv, v)) {
			return true
		}
	}
	return false
}

// Remove deletes a dependency from the catalog. If the dependency's
// constraint was redundant in the full set, the minimal view is
// already correct; otherwise the catalog is re-minimized (a pruned
// constraint may have to come back).
func (a *Adapter) Remove(dep Dependency) (*ChangeResult, error) {
	probe := NewDependencySet()
	found := false
	for _, d := range a.deps.All() {
		if d == dep {
			found = true
			continue
		}
		probe.Add(d)
	}
	if !found {
		return nil, fmt.Errorf("adapt: dependency %s not in catalog", dep)
	}

	// Merge and translate the reduced catalog; if the full constraint
	// sets are pair-wise identical, the dependency was folded into a
	// surviving pair (e.g. a duplicate across dimensions) and nothing
	// changes structurally.
	merged, err := Merge(a.proc, probe)
	if err != nil {
		return nil, err
	}
	fullNew, err := TranslateServices(merged)
	if err != nil {
		return nil, err
	}
	gone, stable := diffConstraints(fullNew, a.full)
	if !stable {
		// A surviving pair changed condition (the removed dependency
		// was folded into it) or a new pair appeared: recompute.
		a.deps = probe
		if err := a.recompute(); err != nil {
			return nil, err
		}
		return &ChangeResult{FullRecompute: true}, nil
	}
	if len(gone) == 0 {
		a.deps = probe
		a.full = fullNew
		return &ChangeResult{Implied: true}, nil
	}

	// If every disappeared pair was redundant in the old full set, the
	// closure is unchanged and the minimal view still applies.
	pg, err := buildPointGraph(a.full)
	if err != nil {
		return nil, err
	}
	pg.cache.disabled = a.opts.NoCache
	pg.cacheTo.disabled = a.opts.NoCache
	pg.memo.disabled = a.opts.NoCache
	res := &ChangeResult{}
	allRedundant := true
	for _, c := range gone {
		if c.Rel != HappenBefore {
			continue
		}
		u, v := pg.pointID(c.From), pg.pointID(c.To)
		res.EquivalenceChecks++
		removable, _, err := pg.edgeRedundantN(context.Background(), u, v, resolveWorkers(a.opts.Parallelism))
		if err != nil {
			return nil, err
		}
		if !removable {
			allRedundant = false
			break
		}
		pg.removeConstraintEdge(u, v)
	}
	a.deps = probe
	if allRedundant && dep.Dim != Control {
		a.full = fullNew
		return res, nil
	}
	if err := a.recompute(); err != nil {
		return nil, err
	}
	res.FullRecompute = true
	return res, nil
}

// diffConstraints returns the HappenBefore constraints of b absent
// from a (by pair), and reports whether a's pairs all survive into b
// with unchanged conditions (stable=true).
func diffConstraints(a, b *ConstraintSet) (added []Constraint, stable bool) {
	aPairs := map[string]Constraint{}
	for _, c := range a.Constraints() {
		aPairs[c.PairKey()] = c
	}
	bPairs := map[string]bool{}
	for _, c := range b.Constraints() {
		bPairs[c.PairKey()] = true
		if prev, ok := aPairs[c.PairKey()]; ok {
			if prev.Cond.String() != c.Cond.String() {
				return nil, false
			}
			continue
		}
		added = append(added, c)
	}
	for key := range aPairs {
		if !bPairs[key] {
			return nil, false
		}
	}
	return added, true
}
