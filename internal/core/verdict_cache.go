package core

import (
	"crypto/sha256"
	"sort"
	"sync"
	"sync/atomic"

	"dscweaver/internal/cond"
)

// DefaultVerdictCacheEntries is the VerdictCache capacity used when a
// non-positive one is requested.
const DefaultVerdictCacheEntries = 256

// VerdictCache is a cross-run, content-addressed cache of minimization
// outcomes. The key is a canonical hash of everything a run's verdicts
// depend on — the desugared constraint set in insertion order, the
// guard context, the branch domains and the comparison mode — and the
// value is the deterministic removal sequence as indices into the
// constraint list. Two requests that weave the same process therefore
// share one Definition 6 run: the second replays the recorded removals
// and skips every equivalence check. Safe for concurrent use; a
// long-lived server shares one instance across requests.
//
// Keying on content rather than identity means the cache survives
// re-parsing: any route to the same constraint set — the same DSCL
// source, a structurally identical JSON request — lands on the same
// entry. Engine knobs (Parallelism, NoCache, NoSpeculation) are
// deliberately excluded from the key: they never change the removal
// sequence, only how fast it is computed, so all configurations share
// entries. StrictAnnotations changes the equivalence relation and is
// part of the key.
type VerdictCache struct {
	mu      sync.Mutex
	cap     int
	entries map[[32]byte][]int
	order   [][32]byte // insertion order, evicted oldest-first

	hits   atomic.Int64
	misses atomic.Int64
}

// NewVerdictCache returns a verdict cache holding up to capacity
// constraint-set entries (DefaultVerdictCacheEntries when capacity is
// not positive). Entries are small — a hash and a handful of ints — so
// capacity bounds bookkeeping, not memory pressure.
func NewVerdictCache(capacity int) *VerdictCache {
	if capacity <= 0 {
		capacity = DefaultVerdictCacheEntries
	}
	return &VerdictCache{cap: capacity, entries: map[[32]byte][]int{}}
}

// lookup returns the recorded removal sequence for key, if any. Hit and
// miss accounting is done by MinimizeOpt, which alone can tell a usable
// hit from an entry that fails replay validation.
func (vc *VerdictCache) lookup(key [32]byte) ([]int, bool) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	removed, ok := vc.entries[key]
	return removed, ok
}

// store records the removal sequence for key, evicting oldest-first
// beyond capacity. Storing an existing key refreshes its value without
// changing its eviction position.
func (vc *VerdictCache) store(key [32]byte, removed []int) {
	cp := make([]int, len(removed))
	copy(cp, removed)
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if _, ok := vc.entries[key]; ok {
		vc.entries[key] = cp
		return
	}
	vc.entries[key] = cp
	vc.order = append(vc.order, key)
	for len(vc.order) > vc.cap {
		delete(vc.entries, vc.order[0])
		vc.order = vc.order[1:]
	}
}

// Hits returns the number of runs served by replaying a cached verdict
// sequence.
func (vc *VerdictCache) Hits() int64 { return vc.hits.Load() }

// Misses returns the number of runs that had to perform the Def. 6
// work (including the vanishing case of an entry failing replay
// validation).
func (vc *VerdictCache) Misses() int64 { return vc.misses.Load() }

// Len returns the number of cached entries.
func (vc *VerdictCache) Len() int {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return len(vc.entries)
}

// verdictCacheKey derives the canonical content hash of one
// minimization problem. Nodes are encoded field-by-field (activity,
// service, port, each NUL-terminated) rather than via Node.String(),
// whose "Service.port" rendering could collide with an activity id
// containing a dot; conditions and guards use cond.Expr.AppendKey, the
// canonical DNF encoding. The guard map and domain map are serialized
// in sorted order so the hash is independent of map iteration. A
// version prefix keeps entries from ever being replayed across an
// encoding change.
func verdictCacheKey(sc *ConstraintSet, guards map[Node]cond.Expr, doms cond.Domains, strict bool) [32]byte {
	h := sha256.New()
	buf := make([]byte, 0, 256)
	buf = append(buf, "dscweaver/minimize/v1\x00"...)
	if strict {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	h.Write(buf)
	for _, c := range sc.Constraints() {
		buf = buf[:0]
		buf = append(buf, byte(c.Rel))
		buf = appendPointKey(buf, c.From)
		buf = appendPointKey(buf, c.To)
		buf = c.Cond.AppendKey(buf)
		buf = append(buf, '\n')
		h.Write(buf)
	}
	h.Write([]byte{0xfe})
	nodes := make([]Node, 0, len(guards))
	for n := range guards {
		nodes = append(nodes, n)
	}
	SortNodes(nodes)
	for _, n := range nodes {
		buf = buf[:0]
		buf = appendNodeKey(buf, n)
		buf = guards[n].AppendKey(buf)
		buf = append(buf, '\n')
		h.Write(buf)
	}
	h.Write([]byte{0xfd})
	decisions := make([]string, 0, len(doms))
	for d := range doms {
		decisions = append(decisions, d)
	}
	sort.Strings(decisions)
	for _, d := range decisions {
		buf = buf[:0]
		buf = append(buf, d...)
		buf = append(buf, 0)
		for _, val := range doms[d] {
			buf = append(buf, val...)
			buf = append(buf, 0)
		}
		buf = append(buf, '\n')
		h.Write(buf)
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}

func appendNodeKey(buf []byte, n Node) []byte {
	buf = append(buf, n.Activity...)
	buf = append(buf, 0)
	buf = append(buf, n.Service...)
	buf = append(buf, 0)
	buf = append(buf, n.Port...)
	buf = append(buf, 0)
	return buf
}

func appendPointKey(buf []byte, p Point) []byte {
	buf = appendNodeKey(buf, p.Node)
	buf = append(buf, byte(p.State))
	return buf
}
