package core

import (
	"strings"
	"testing"

	"dscweaver/internal/cond"
)

func TestExplainSimpleShortcut(t *testing.T) {
	p := linProcess(3)
	s := NewConstraintSet(p)
	s.Before("a0", "a1", Data)
	s.Before("a1", "a2", Data)
	s.Before("a0", "a2", Cooperation)
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	removals, err := ExplainRemovals(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(removals) != 1 {
		t.Fatalf("removals = %d", len(removals))
	}
	r := removals[0]
	if r.Vacuous || len(r.Paths) != 1 || len(r.Paths[0]) != 2 {
		t.Fatalf("explanation = %s", r)
	}
	if r.Paths[0][0].To.Node.Activity != "a1" {
		t.Errorf("witness path = %v", r.Paths[0])
	}
	if !strings.Contains(r.String(), "covered by") {
		t.Errorf("rendering = %q", r.String())
	}
}

func TestExplainGuardSubsumption(t *testing.T) {
	_, s := guardedSet()
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	removals, err := ExplainRemovals(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(removals) != 1 {
		t.Fatalf("removals = %d", len(removals))
	}
	r := removals[0]
	// The unconditional a0→a2 is covered by the conditional path
	// through the decision.
	if len(r.Paths) != 1 {
		t.Fatalf("paths = %d: %s", len(r.Paths), r)
	}
	foundConditional := false
	for _, c := range r.Paths[0] {
		if !c.Cond.IsTrue() {
			foundConditional = true
		}
	}
	if !foundConditional {
		t.Errorf("witness path has no conditional edge: %s", r)
	}
}

func TestExplainBranchFoldNeedsTwoPaths(t *testing.T) {
	// dec →[T] x → z, dec →[F] y → z, direct dec → z removed: the
	// explanation must cite both branch paths.
	p := NewProcess("fold")
	p.MustAddActivity(&Activity{ID: "dec", Kind: KindDecision})
	for _, id := range []ActivityID{"x", "y", "z"} {
		p.MustAddActivity(&Activity{ID: id, Kind: KindOpaque})
	}
	s := NewConstraintSet(p)
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("dec", Finish), To: PointOf("x", Start),
		Cond: cond.Lit("dec", "T"), Origins: []Dimension{Control}})
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("dec", Finish), To: PointOf("y", Start),
		Cond: cond.Lit("dec", "F"), Origins: []Dimension{Control}})
	s.Before("x", "z", Data)
	s.Before("y", "z", Data)
	s.Before("dec", "z", Cooperation)
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	removals, err := ExplainRemovals(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(removals) != 1 {
		t.Fatalf("removals = %d", len(removals))
	}
	if got := len(removals[0].Paths); got != 2 {
		t.Errorf("paths = %d, want 2 (one per branch):\n%s", got, removals[0])
	}
}

func TestExplainVacuousCrossBranch(t *testing.T) {
	p := NewProcess("vac")
	p.MustAddActivity(&Activity{ID: "dec", Kind: KindDecision})
	p.MustAddActivity(&Activity{ID: "x", Kind: KindOpaque})
	p.MustAddActivity(&Activity{ID: "y", Kind: KindOpaque})
	s := NewConstraintSet(p)
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("dec", Finish), To: PointOf("x", Start),
		Cond: cond.Lit("dec", "T"), Origins: []Dimension{Control}})
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("dec", Finish), To: PointOf("y", Start),
		Cond: cond.Lit("dec", "F"), Origins: []Dimension{Control}})
	s.Before("x", "y", Cooperation)
	res, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	removals, err := ExplainRemovals(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(removals) != 1 || !removals[0].Vacuous {
		t.Fatalf("expected one vacuous removal: %v", removals)
	}
	if !strings.Contains(removals[0].String(), "vacuous") {
		t.Errorf("rendering = %q", removals[0].String())
	}
}

func TestExplainAllPurchasingRemovals(t *testing.T) {
	// Every removal of the purchasing-shaped set must be justified.
	procDeps := purchasingLikeSet(t)
	res, err := Minimize(procDeps)
	if err != nil {
		t.Fatal(err)
	}
	removals, err := ExplainRemovals(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(removals) != len(res.Removed) {
		t.Errorf("explained %d of %d removals", len(removals), len(res.Removed))
	}
	for _, r := range removals {
		if !r.Vacuous && len(r.Paths) == 0 {
			t.Errorf("removal without justification: %s", r)
		}
	}
}

// purchasingLikeSet builds a miniature of the purchasing shape (chain
// into decision, two branches, join) without importing the fixture
// package (core cannot import purchasing).
func purchasingLikeSet(t *testing.T) *ConstraintSet {
	t.Helper()
	p := NewProcess("mini")
	p.MustAddActivity(&Activity{ID: "rec", Kind: KindReceive, Writes: []string{"po"}})
	p.MustAddActivity(&Activity{ID: "dec", Kind: KindDecision})
	p.MustAddActivity(&Activity{ID: "work1", Kind: KindOpaque})
	p.MustAddActivity(&Activity{ID: "work2", Kind: KindOpaque})
	p.MustAddActivity(&Activity{ID: "fallback", Kind: KindOpaque})
	p.MustAddActivity(&Activity{ID: "reply", Kind: KindReply})
	s := NewConstraintSet(p)
	s.Before("rec", "dec", Data)
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("dec", Finish), To: PointOf("work1", Start),
		Cond: cond.Lit("dec", "T"), Origins: []Dimension{Control}})
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("dec", Finish), To: PointOf("work2", Start),
		Cond: cond.Lit("dec", "T"), Origins: []Dimension{Control}})
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("dec", Finish), To: PointOf("fallback", Start),
		Cond: cond.Lit("dec", "F"), Origins: []Dimension{Control}})
	s.Before("rec", "work1", Data)   // guard-subsumed
	s.Before("work1", "work2", Data) // makes dec→work2 redundant
	s.Before("work2", "reply", Data)
	s.Before("fallback", "reply", Data)
	s.Before("dec", "reply", Cooperation) // T∨F fold
	return s
}
