package core

import (
	"strings"
	"testing"

	"dscweaver/internal/cond"
)

// controlEdge builds a conditional control constraint.
func controlEdge(from, to ActivityID, branch string) Constraint {
	c := cond.True()
	if branch != "" {
		c = cond.Lit(string(from), branch)
	}
	return Constraint{Rel: HappenBefore, From: PointOf(from, Finish), To: PointOf(to, Start),
		Cond: c, Origins: []Dimension{Control}}
}

func TestDeriveGuardsNestedConjunction(t *testing.T) {
	// outer →[T] inner →[F] leaf: guard(leaf) = outer=T ∧ inner=F.
	p := NewProcess("nested")
	p.MustAddActivity(&Activity{ID: "outer", Kind: KindDecision})
	p.MustAddActivity(&Activity{ID: "inner", Kind: KindDecision})
	p.MustAddActivity(&Activity{ID: "leaf", Kind: KindOpaque})
	sc := NewConstraintSet(p)
	sc.Add(controlEdge("outer", "inner", "T"))
	sc.Add(controlEdge("inner", "leaf", "F"))
	guards, err := DeriveGuards(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := cond.And(cond.Lit("outer", "T"), cond.Lit("inner", "F"))
	eq, err := cond.Equal(guards[ActivityNode("leaf")], want, p.Domains())
	if err != nil || !eq {
		t.Errorf("guard(leaf) = %v, want %v", guards[ActivityNode("leaf")], want)
	}
	if !guards[ActivityNode("outer")].IsTrue() {
		t.Errorf("guard(outer) = %v, want ⊤", guards[ActivityNode("outer")])
	}
}

func TestDeriveGuardsMultiParentDisjunction(t *testing.T) {
	// Two decisions both routing to join on T: guard(join) =
	// d1=T ∨ d2=T (unstructured merge).
	p := NewProcess("merge")
	p.MustAddActivity(&Activity{ID: "d1", Kind: KindDecision})
	p.MustAddActivity(&Activity{ID: "d2", Kind: KindDecision})
	p.MustAddActivity(&Activity{ID: "join", Kind: KindOpaque})
	sc := NewConstraintSet(p)
	sc.Add(controlEdge("d1", "join", "T"))
	sc.Add(controlEdge("d2", "join", "T"))
	guards, err := DeriveGuards(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := cond.Or(cond.Lit("d1", "T"), cond.Lit("d2", "T"))
	eq, err := cond.Equal(guards[ActivityNode("join")], want, p.Domains())
	if err != nil || !eq {
		t.Errorf("guard(join) = %v, want %v", guards[ActivityNode("join")], want)
	}
}

func TestDeriveGuardsFullCoverageFolds(t *testing.T) {
	// The same decision routes on both branches: the guard folds to ⊤.
	p := NewProcess("full")
	p.MustAddActivity(&Activity{ID: "d", Kind: KindDecision})
	p.MustAddActivity(&Activity{ID: "x", Kind: KindOpaque})
	sc := NewConstraintSet(p)
	// Add twice with different branches — the pair folds via Or in
	// the constraint set, so guard derivation sees one edge with
	// condition T ∨ F.
	sc.Add(controlEdge("d", "x", "T"))
	sc.Add(controlEdge("d", "x", "F"))
	guards, err := DeriveGuards(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !guards[ActivityNode("x")].IsTrue() {
		t.Errorf("guard(x) = %v, want ⊤ after full-domain fold", guards[ActivityNode("x")])
	}
}

func TestDeriveGuardsIgnoresNonControl(t *testing.T) {
	p := NewProcess("plain")
	p.MustAddActivity(&Activity{ID: "d", Kind: KindDecision})
	p.MustAddActivity(&Activity{ID: "x", Kind: KindOpaque})
	sc := NewConstraintSet(p)
	// A conditional ordering constraint with cooperation origin must
	// not guard x.
	sc.Add(Constraint{Rel: HappenBefore, From: PointOf("d", Finish), To: PointOf("x", Start),
		Cond: cond.Lit("d", "T"), Origins: []Dimension{Cooperation}})
	guards, err := DeriveGuards(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !guards[ActivityNode("x")].IsTrue() {
		t.Errorf("cooperation condition leaked into guard: %v", guards[ActivityNode("x")])
	}
}

func TestDeriveGuardsCyclicControlRejected(t *testing.T) {
	p := NewProcess("cycctl")
	p.MustAddActivity(&Activity{ID: "d1", Kind: KindDecision})
	p.MustAddActivity(&Activity{ID: "d2", Kind: KindDecision})
	sc := NewConstraintSet(p)
	sc.Add(controlEdge("d1", "d2", "T"))
	sc.Add(controlEdge("d2", "d1", "T"))
	_, err := DeriveGuards(sc)
	if err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("err = %v, want cyclic rejection", err)
	}
}
