package core_test

import (
	"fmt"

	"dscweaver/internal/core"
)

// ExampleMinimize shows the paper's optimization on a three-activity
// pipeline with one redundant cooperation rule.
func ExampleMinimize() {
	proc := core.NewProcess("pipeline")
	for _, id := range []core.ActivityID{"extract", "transform", "load"} {
		proc.MustAddActivity(&core.Activity{ID: id, Kind: core.KindOpaque})
	}
	deps := core.NewDependencySet()
	deps.Add(core.Dependency{From: core.ActivityNode("extract"), To: core.ActivityNode("transform"), Dim: core.Data, Label: "rows"})
	deps.Add(core.Dependency{From: core.ActivityNode("transform"), To: core.ActivityNode("load"), Dim: core.Data, Label: "clean"})
	// A redundant business rule: extract before load (already implied).
	deps.Add(core.Dependency{From: core.ActivityNode("extract"), To: core.ActivityNode("load"), Dim: core.Cooperation})

	sc, err := core.Merge(proc, deps)
	if err != nil {
		panic(err)
	}
	res, err := core.Minimize(sc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("constraints: %d → %d\n", sc.Len(), res.Minimal.Len())
	for _, c := range res.Removed {
		fmt.Printf("removed %s → %s (%v)\n", c.From.Node, c.To.Node, c.Origins)
	}
	// Output:
	// constraints: 3 → 2
	// removed extract → load ([cooperation])
}

// ExampleTransitiveClosure reproduces Definition 3's annotated closure
// for the paper's a1→a2→[T]a3→a4 example.
func ExampleTransitiveClosure() {
	proc := core.NewProcess("def3")
	proc.MustAddActivity(&core.Activity{ID: "a1", Kind: core.KindOpaque})
	proc.MustAddActivity(&core.Activity{ID: "a2", Kind: core.KindDecision})
	proc.MustAddActivity(&core.Activity{ID: "a3", Kind: core.KindOpaque})
	proc.MustAddActivity(&core.Activity{ID: "a4", Kind: core.KindOpaque})
	deps := core.NewDependencySet()
	deps.Add(core.Dependency{From: core.ActivityNode("a1"), To: core.ActivityNode("a2"), Dim: core.Data})
	deps.Add(core.Dependency{From: core.ActivityNode("a2"), To: core.ActivityNode("a3"), Dim: core.Control, Branch: "T"})
	deps.Add(core.Dependency{From: core.ActivityNode("a3"), To: core.ActivityNode("a4"), Dim: core.Data})
	sc, err := core.Merge(proc, deps)
	if err != nil {
		panic(err)
	}
	members, err := core.TransitiveClosure(sc, "a1")
	if err != nil {
		panic(err)
	}
	for _, m := range members {
		fmt.Printf("%s under %s\n", m.Node, m.Cond)
	}
	// Output:
	// a2 under ⊤
	// a3 under a2=T
	// a4 under a2=T
}

// ExampleAdapter demonstrates §1's adaptation scenario: a rule that is
// already implied adds no monitoring burden.
func ExampleAdapter() {
	proc := core.NewProcess("adapt")
	for _, id := range []core.ActivityID{"a", "b", "c"} {
		proc.MustAddActivity(&core.Activity{ID: id, Kind: core.KindOpaque})
	}
	deps := core.NewDependencySet()
	deps.Add(core.Dependency{From: core.ActivityNode("a"), To: core.ActivityNode("b"), Dim: core.Data})
	deps.Add(core.Dependency{From: core.ActivityNode("b"), To: core.ActivityNode("c"), Dim: core.Data})
	adapter, err := core.NewAdapter(proc, deps)
	if err != nil {
		panic(err)
	}
	res, err := adapter.Add(core.Dependency{From: core.ActivityNode("a"), To: core.ActivityNode("c"), Dim: core.Cooperation})
	if err != nil {
		panic(err)
	}
	fmt.Printf("implied: %v, minimal size: %d\n", res.Implied, adapter.Minimal().Len())
	// Output:
	// implied: true, minimal size: 2
}
