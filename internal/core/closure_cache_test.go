// White-box tests for the closure cache's singleflight miss path: the
// whole point of the coalescing is that N pool workers racing on one
// cold source cost one annotated sweep, not N.
package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dscweaver/internal/cond"
)

// TestClosureCacheSingleflightColdMiss: M concurrent gets of one cold
// source must perform exactly one compute — the first goroutine to miss
// leads, everyone else parks on the flight and shares its result. Run
// with -race (CI does): the flight handoff is the racy part.
func TestClosureCacheSingleflightColdMiss(t *testing.T) {
	const M = 16
	c := newClosureCache()
	var computes atomic.Int32
	gate := make(chan struct{})
	results := make([][]cond.Expr, M)
	var wg sync.WaitGroup
	for i := 0; i < M; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			results[i] = c.get(7, func() []cond.Expr {
				computes.Add(1)
				// Hold the flight open long enough that every sibling's
				// lookup lands while the sweep is "running".
				time.Sleep(20 * time.Millisecond)
				return []cond.Expr{cond.True(), cond.False()}
			})
		}()
	}
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("%d concurrent gets of a cold source ran %d computes, want exactly 1", M, got)
	}
	if got := c.misses.Load(); got != 1 {
		t.Errorf("misses = %d, want 1 (one sweep actually ran)", got)
	}
	if got := c.hits.Load(); got != M-1 {
		t.Errorf("hits = %d, want %d (every non-leader counts as a hit)", got, M-1)
	}
	for i := 1; i < M; i++ {
		if len(results[i]) != len(results[0]) || &results[i][0] != &results[0][0] {
			t.Fatalf("goroutine %d got a different closure slice than the leader", i)
		}
	}

	// A subsequent get is an ordinary entry hit: no flight, no compute.
	c.get(7, func() []cond.Expr {
		t.Error("warm get ran compute")
		return nil
	})
	if got := c.hits.Load(); got != M {
		t.Errorf("hits after warm get = %d, want %d", got, M)
	}
}

// TestClosureCacheSingleflightStaleLeader: an invalidation that lands
// while the leader's sweep is in flight must keep the (now stale)
// result out of the cache — followers of that flight still share it,
// exactly as if they had computed it themselves at claim time, but the
// next get re-sweeps.
func TestClosureCacheSingleflightStaleLeader(t *testing.T) {
	c := newClosureCache()
	var computes atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan []cond.Expr)
	go func() {
		done <- c.get(3, func() []cond.Expr {
			computes.Add(1)
			close(started)
			<-release
			return []cond.Expr{cond.True()}
		})
	}()
	<-started
	// Invalidate source 3 mid-flight, the way removeConstraintEdge's
	// strict-mode path does.
	c.mu.Lock()
	c.gen++
	c.staleAt[3] = c.gen
	c.mu.Unlock()
	close(release)
	if got := <-done; len(got) != 1 {
		t.Fatalf("leader returned %d annotations, want its own sweep's 1", len(got))
	}

	// The stale result must not have been installed: the next get runs a
	// fresh compute.
	c.get(3, func() []cond.Expr {
		computes.Add(1)
		return []cond.Expr{cond.False()}
	})
	if got := computes.Load(); got != 2 {
		t.Errorf("computes = %d, want 2 (stale leader result must not be cached)", got)
	}
}
