package core

import (
	"dscweaver/internal/graph"
)

// Metrics summarizes the scheduling shape of a constraint set at
// activity granularity: the critical-path length bounds the makespan
// from below (in units of activity executions) and the width bounds
// the achievable parallelism from above. The concurrency benches
// compare the engine's measured makespan and peak parallelism against
// these structural numbers.
type Metrics struct {
	// Activities counts internal activities.
	Activities int
	// Constraints counts HappenBefore constraints.
	Constraints int
	// CriticalPath is the number of activities on the longest
	// happen-before chain (≥ 1 for a nonempty process).
	CriticalPath int
	// Width is the size of the largest set of pairwise-unordered
	// activities (layer-based estimate; exact on layered DAGs).
	Width int
}

// Measure computes the metrics of a translated (activity-level)
// constraint set, ignoring conditions: the critical path of the
// all-branches-taken relaxation.
func Measure(sc *ConstraintSet) (Metrics, error) {
	acts := sc.Proc.Activities()
	idx := make(map[ActivityID]int, len(acts))
	g := graph.New(len(acts))
	for i, a := range acts {
		idx[a.ID] = i
		g.AddNode()
	}
	m := Metrics{Activities: len(acts)}
	for _, c := range sc.HappenBefores() {
		m.Constraints++
		if c.From.Node.IsService() || c.To.Node.IsService() {
			continue
		}
		u, v := idx[c.From.Node.Activity], idx[c.To.Node.Activity]
		if u != v {
			g.AddEdge(u, v)
		}
	}
	depth, err := g.LongestPathLengths()
	if err != nil {
		return Metrics{}, err
	}
	for _, d := range depth {
		if d+1 > m.CriticalPath {
			m.CriticalPath = d + 1
		}
	}
	w, err := g.AntichainWidth()
	if err != nil {
		return Metrics{}, err
	}
	m.Width = w
	return m, nil
}
