package core

import (
	"fmt"
	"sort"
	"strings"
)

// Dimension is one of the paper's four dependency categories (§3).
type Dimension int

const (
	// Data marks definition-use dependencies between a producer and a
	// consumer of a process variable (§3.1).
	Data Dimension = iota
	// Control marks branch dependencies from a decision activity to
	// the activities on its descendant branches (§3.1).
	Control
	// ServiceDim marks interaction constraints between the process and
	// a remote service, or within a remote service (§3.2).
	ServiceDim
	// Cooperation marks application-level constraints superimposed by
	// analysts or domain experts that no other dimension captures
	// (§3.2).
	Cooperation
)

var dimensionNames = map[Dimension]string{
	Data:        "data",
	Control:     "control",
	ServiceDim:  "service",
	Cooperation: "cooperation",
}

func (d Dimension) String() string {
	if s, ok := dimensionNames[d]; ok {
		return s
	}
	return fmt.Sprintf("Dimension(%d)", int(d))
}

// Arrow returns the paper's arrow notation for the dimension
// (→d, →c, →s, →o).
func (d Dimension) Arrow() string {
	switch d {
	case Data:
		return "→d"
	case Control:
		return "→c"
	case ServiceDim:
		return "→s"
	case Cooperation:
		return "→o"
	default:
		return "→?"
	}
}

// Dimensions lists all four categories in the paper's presentation
// order.
var Dimensions = []Dimension{Data, Control, ServiceDim, Cooperation}

// Dependency is one entry of a dependency catalog (one row of the
// paper's Table 1).
type Dependency struct {
	From, To Node
	Dim      Dimension
	// Branch carries the control condition ("T", "F", or a switch
	// label). Empty means unconditional — the paper's NONE annotation,
	// which also applies to all non-control dimensions.
	Branch string
	// Label records provenance: the variable name for data
	// dependencies, the business reason for cooperation dependencies,
	// the conversation document for service dependencies.
	Label string
}

// String renders the dependency in the paper's notation, e.g.
// "if_au →c[T] invPurchase_po" or "recShip_si →d invPurchase_si".
func (d Dependency) String() string {
	arrow := d.Dim.Arrow()
	if d.Dim == Control && d.Branch != "" {
		arrow = "→c[" + d.Branch + "]"
	}
	return fmt.Sprintf("%s %s %s", d.From, arrow, d.To)
}

// key identifies a dependency for deduplication.
func (d Dependency) key() string {
	return d.From.String() + "\x00" + d.To.String() + "\x00" + fmt.Sprint(int(d.Dim)) + "\x00" + d.Branch
}

// DependencySet is an ordered, duplicate-free collection of
// dependencies across all four dimensions.
type DependencySet struct {
	deps []Dependency
	seen map[string]bool
}

// NewDependencySet returns an empty set.
func NewDependencySet() *DependencySet {
	return &DependencySet{seen: map[string]bool{}}
}

// Add inserts a dependency, ignoring exact duplicates. It reports
// whether the dependency was new.
func (s *DependencySet) Add(d Dependency) bool {
	k := d.key()
	if s.seen[k] {
		return false
	}
	s.seen[k] = true
	s.deps = append(s.deps, d)
	return true
}

// AddAll inserts every dependency of other.
func (s *DependencySet) AddAll(other *DependencySet) {
	for _, d := range other.deps {
		s.Add(d)
	}
}

// All returns the dependencies in insertion order (copy).
func (s *DependencySet) All() []Dependency {
	return append([]Dependency(nil), s.deps...)
}

// ByDimension returns the dependencies of one dimension in insertion
// order.
func (s *DependencySet) ByDimension(dim Dimension) []Dependency {
	var out []Dependency
	for _, d := range s.deps {
		if d.Dim == dim {
			out = append(out, d)
		}
	}
	return out
}

// Len returns the total number of dependencies.
func (s *DependencySet) Len() int { return len(s.deps) }

// CountByDimension returns the per-dimension tally — the row counts of
// Table 1.
func (s *DependencySet) CountByDimension() map[Dimension]int {
	out := map[Dimension]int{}
	for _, d := range s.deps {
		out[d.Dim]++
	}
	return out
}

// Nodes returns every node mentioned by the set, sorted.
func (s *DependencySet) Nodes() []Node {
	seen := map[string]bool{}
	var out []Node
	for _, d := range s.deps {
		for _, n := range []Node{d.From, d.To} {
			if k := n.String(); !seen[k] {
				seen[k] = true
				out = append(out, n)
			}
		}
	}
	SortNodes(out)
	return out
}

// String renders the set grouped by dimension in the paper's Table 1
// layout.
func (s *DependencySet) String() string {
	var b strings.Builder
	for _, dim := range Dimensions {
		deps := s.ByDimension(dim)
		if len(deps) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s {%s}: %d\n", dim, dim.Arrow(), len(deps))
		for _, d := range deps {
			fmt.Fprintf(&b, "  %s\n", d)
		}
	}
	return b.String()
}

// Validate checks every dependency against the process: internal nodes
// must name declared activities, external nodes declared service
// ports, control dependencies must originate at decisions with a
// declared branch label, and no dependency may be reflexive.
func (s *DependencySet) Validate(p *Process) error {
	for _, d := range s.deps {
		if d.From == d.To {
			return fmt.Errorf("reflexive dependency %s", d)
		}
		for _, n := range []Node{d.From, d.To} {
			if n.IsService() {
				if d.Dim != ServiceDim {
					return fmt.Errorf("dependency %s: external node %s outside the service dimension", d, n)
				}
				svc, ok := p.Service(n.Service)
				if !ok {
					return fmt.Errorf("dependency %s: undeclared service %s", d, n.Service)
				}
				if n.Port == DummyPort {
					if !svc.Async {
						return fmt.Errorf("dependency %s: dummy port on synchronous service %s", d, n.Service)
					}
				} else if n.Port != "" && !contains(svc.Ports, n.Port) {
					return fmt.Errorf("dependency %s: undeclared port %s", d, n)
				}
			} else if _, ok := p.Activity(n.Activity); !ok {
				return fmt.Errorf("dependency %s: undeclared activity %s", d, n.Activity)
			}
		}
		if d.Dim == Control {
			if d.From.IsService() {
				return fmt.Errorf("control dependency %s from external node", d)
			}
			a, _ := p.Activity(d.From.Activity)
			if a.Kind != KindDecision {
				return fmt.Errorf("control dependency %s from non-decision %s", d, a.ID)
			}
			if d.Branch != "" && !contains(a.BranchDomain(), d.Branch) {
				return fmt.Errorf("control dependency %s: branch %q not in domain %v", d, d.Branch, a.BranchDomain())
			}
		} else if d.Branch != "" {
			return fmt.Errorf("dependency %s: branch annotation outside the control dimension", d)
		}
	}
	return nil
}

// SortedKeys renders each dependency and sorts the strings; useful for
// golden comparisons in tests.
func (s *DependencySet) SortedKeys() []string {
	out := make([]string, len(s.deps))
	for i, d := range s.deps {
		out[i] = d.String()
	}
	sort.Strings(out)
	return out
}
