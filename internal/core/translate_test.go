package core

import (
	"strings"
	"testing"

	"dscweaver/internal/cond"
)

// svcProcess builds a process with one async two-port service and the
// internal activities to drive it.
func svcProcess() *Process {
	p := NewProcess("svc")
	p.MustAddService(&Service{Name: "W", Ports: []string{"1", "2"}, Async: true})
	p.MustAddActivity(&Activity{ID: "inv1", Kind: KindInvoke, Service: "W", Port: "1"})
	p.MustAddActivity(&Activity{ID: "inv2", Kind: KindInvoke, Service: "W", Port: "2"})
	p.MustAddActivity(&Activity{ID: "rec", Kind: KindReceive, Service: "W", Port: DummyPort})
	p.MustAddActivity(&Activity{ID: "dec", Kind: KindDecision})
	return p
}

func svcCon(from, to Node, c cond.Expr) Constraint {
	return Constraint{Rel: HappenBefore, From: Point{Node: from, State: Finish},
		To: Point{Node: to, State: Start}, Cond: c, Origins: []Dimension{ServiceDim}}
}

func TestTranslatePathProjection(t *testing.T) {
	p := svcProcess()
	s := NewConstraintSet(p)
	// inv1 → W.1 → W.d → rec  should project to inv1 → rec.
	s.Add(svcCon(ActivityNode("inv1"), ServiceNode("W", "1"), cond.True()))
	s.Add(svcCon(ServiceNode("W", "1"), ServiceNode("W", DummyPort), cond.True()))
	s.Add(svcCon(ServiceNode("W", DummyPort), ActivityNode("rec"), cond.True()))
	asc, err := TranslateServices(s)
	if err != nil {
		t.Fatal(err)
	}
	if asc.Len() != 1 {
		t.Fatalf("ASC = %v, want 1 constraint", asc.String())
	}
	c := asc.Constraints()[0]
	if c.From.Node.Activity != "inv1" || c.To.Node.Activity != "rec" {
		t.Errorf("projected constraint = %v", c)
	}
	if !c.HasOrigin(ServiceDim) {
		t.Errorf("origins = %v", c.Origins)
	}
}

func TestTranslateDropsDeadEndExternals(t *testing.T) {
	p := svcProcess()
	s := NewConstraintSet(p)
	// inv1 → W.1 with no internal offspring: everything external is
	// dropped (the Production case).
	s.Add(svcCon(ActivityNode("inv1"), ServiceNode("W", "1"), cond.True()))
	asc, err := TranslateServices(s)
	if err != nil {
		t.Fatal(err)
	}
	if asc.Len() != 0 {
		t.Errorf("ASC = %v, want empty", asc.String())
	}
}

func TestTranslatePortOrderAnchoring(t *testing.T) {
	p := svcProcess()
	s := NewConstraintSet(p)
	s.Add(svcCon(ActivityNode("inv1"), ServiceNode("W", "1"), cond.True()))
	s.Add(svcCon(ActivityNode("inv2"), ServiceNode("W", "2"), cond.True()))
	s.Add(svcCon(ServiceNode("W", "1"), ServiceNode("W", "2"), cond.True()))
	asc, err := TranslateServices(s)
	if err != nil {
		t.Fatal(err)
	}
	if asc.Len() != 1 {
		t.Fatalf("ASC:\n%s", asc.String())
	}
	c := asc.Constraints()[0]
	if c.From.Node.Activity != "inv1" || c.To.Node.Activity != "inv2" {
		t.Errorf("anchored constraint = %v, want inv1 → inv2", c)
	}
}

func TestTranslatePortOrderSkipsSelfAnchor(t *testing.T) {
	// One activity invoking both ports cannot be ordered against
	// itself; the port-order rule must skip it rather than emit a
	// reflexive constraint.
	p := NewProcess("self")
	p.MustAddService(&Service{Name: "W", Ports: []string{"1", "2"}})
	p.MustAddActivity(&Activity{ID: "inv", Kind: KindInvoke, Service: "W", Port: "1"})
	s := NewConstraintSet(p)
	s.Add(svcCon(ActivityNode("inv"), ServiceNode("W", "1"), cond.True()))
	s.Add(svcCon(ActivityNode("inv"), ServiceNode("W", "2"), cond.True()))
	s.Add(svcCon(ServiceNode("W", "1"), ServiceNode("W", "2"), cond.True()))
	asc, err := TranslateServices(s)
	if err != nil {
		t.Fatal(err)
	}
	if asc.Len() != 0 {
		t.Errorf("ASC:\n%s", asc.String())
	}
}

func TestTranslateAccumulatesConditions(t *testing.T) {
	p := svcProcess()
	s := NewConstraintSet(p)
	// A conditional invocation: the projected edge inherits the
	// condition.
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("inv1", Finish),
		To:   Point{Node: ServiceNode("W", "1"), State: Start},
		Cond: cond.Lit("dec", "T"), Origins: []Dimension{ServiceDim}})
	s.Add(svcCon(ServiceNode("W", "1"), ServiceNode("W", DummyPort), cond.True()))
	s.Add(svcCon(ServiceNode("W", DummyPort), ActivityNode("rec"), cond.True()))
	asc, err := TranslateServices(s)
	if err != nil {
		t.Fatal(err)
	}
	if asc.Len() != 1 {
		t.Fatalf("ASC:\n%s", asc.String())
	}
	c := asc.Constraints()[0]
	eq, err := cond.Equal(c.Cond, cond.Lit("dec", "T"), p.Domains())
	if err != nil || !eq {
		t.Errorf("projected cond = %v, want dec=T", c.Cond)
	}
}

func TestTranslateKeepsInternalConstraintsVerbatim(t *testing.T) {
	p := svcProcess()
	s := NewConstraintSet(p)
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("inv1", Start), To: PointOf("inv2", Finish),
		Cond: cond.True(), Origins: []Dimension{Cooperation}})
	s.Add(Constraint{Rel: Exclusive, From: PointOf("inv1", Run), To: PointOf("rec", Run),
		Cond: cond.True(), Origins: []Dimension{Cooperation}})
	asc, err := TranslateServices(s)
	if err != nil {
		t.Fatal(err)
	}
	if asc.Len() != 2 {
		t.Fatalf("ASC:\n%s", asc.String())
	}
	if asc.Constraints()[0].From.State != Start {
		t.Error("state-level constraint mangled")
	}
	if asc.Constraints()[1].Rel != Exclusive {
		t.Error("exclusive constraint dropped")
	}
}

func TestTranslateRejectsExternalHappenTogether(t *testing.T) {
	p := svcProcess()
	s := NewConstraintSet(p)
	s.Add(Constraint{Rel: HappenTogether, From: PointOf("inv1", Finish),
		To: Point{Node: ServiceNode("W", "1"), State: Start}, Cond: cond.True()})
	if _, err := TranslateServices(s); err == nil || !strings.Contains(err.Error(), "desugar") {
		t.Errorf("err = %v, want desugar error", err)
	}
}

func TestMergeRejectsInvalidDeps(t *testing.T) {
	p := svcProcess()
	deps := NewDependencySet()
	deps.Add(Dependency{From: ActivityNode("inv1"), To: ActivityNode("ghost"), Dim: Data})
	if _, err := Merge(p, deps); err == nil {
		t.Error("Merge accepted invalid dependency set")
	}
}

func TestMergeControlNoneBranchUnconditional(t *testing.T) {
	p := svcProcess()
	deps := NewDependencySet()
	deps.Add(Dependency{From: ActivityNode("dec"), To: ActivityNode("rec"), Dim: Control})
	sc, err := Merge(p, deps)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Constraints()[0].Cond.IsTrue() {
		t.Errorf("NONE-branch control dependency should merge unconditionally, got %v", sc.Constraints()[0].Cond)
	}
}

func TestMergeSetsCombines(t *testing.T) {
	p := svcProcess()
	a := NewDependencySet()
	a.Add(Dependency{From: ActivityNode("inv1"), To: ActivityNode("inv2"), Dim: Data, Label: "x"})
	b := NewDependencySet()
	b.Add(Dependency{From: ActivityNode("inv2"), To: ActivityNode("rec"), Dim: Cooperation})
	b.Add(Dependency{From: ActivityNode("inv1"), To: ActivityNode("inv2"), Dim: Data, Label: "x"}) // dup
	sc, err := MergeSets(p, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 2 {
		t.Errorf("merged Len = %d, want 2", sc.Len())
	}
}
