package core

import (
	"fmt"
	"sync/atomic"

	"dscweaver/internal/cond"
	"dscweaver/internal/graph"
)

// pointGraph is the working representation of a constraint set for
// closure and minimization: one vertex per (node, state) point, the
// implicit life-cycle edges S→R→F of every internal activity (S→F for
// external nodes, which have no run phase visible to the process), and
// one edge per HappenBefore constraint carrying its condition.
type pointGraph struct {
	sc     *ConstraintSet
	doms   cond.Domains
	points []Point
	index  map[Point]int
	g      *graph.Digraph
	conds  map[[2]int]cond.Expr
	// conIndex maps a constraint edge back to its position in
	// sc.constraints; life-cycle edges are absent.
	conIndex map[[2]int]int
	guards   map[Node]cond.Expr
	topo     []int
	// strict disables guard-context equivalence in edgeRedundant (the
	// MinimizeOptions.StrictAnnotations ablation).
	strict bool
	// cache and cacheTo memoize baseline single-source forward and
	// single-target backward closures across the minimizer's candidate
	// loop; memo caches semantic-equivalence verdicts. All are shared
	// by the edgeRedundantN worker pool.
	cache   *closureCache
	cacheTo *closureCache
	memo    *equalMemo
}

// buildPointGraph constructs the point graph. It returns an error if
// the HappenBefore relation is cyclic (a "conflict dependency" /
// infinite synchronization sequence, which §4.1 requires be detected
// at design time) or if guard derivation hits a control cycle.
func buildPointGraph(sc *ConstraintSet) (*pointGraph, error) {
	pg := &pointGraph{
		sc:       sc,
		doms:     sc.Proc.Domains(),
		index:    map[Point]int{},
		conds:    map[[2]int]cond.Expr{},
		conIndex: map[[2]int]int{},
		guards:   map[Node]cond.Expr{},
		cache:    newClosureCache(),
		cacheTo:  newClosureCache(),
		memo:     newEqualMemo(),
	}
	pg.g = graph.New(0)

	add := func(p Point) int {
		if i, ok := pg.index[p]; ok {
			return i
		}
		i := pg.g.AddNode()
		pg.index[p] = i
		pg.points = append(pg.points, p)
		return i
	}
	seen := map[Node]bool{}
	lifecycle := func(n Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if n.IsService() {
			s := add(Point{Node: n, State: Start})
			f := add(Point{Node: n, State: Finish})
			if pg.g.AddEdge(s, f) {
				pg.conds[[2]int{s, f}] = cond.True()
			}
			return
		}
		s := add(Point{Node: n, State: Start})
		r := add(Point{Node: n, State: Run})
		f := add(Point{Node: n, State: Finish})
		if pg.g.AddEdge(s, r) {
			pg.conds[[2]int{s, r}] = cond.True()
		}
		if pg.g.AddEdge(r, f) {
			pg.conds[[2]int{r, f}] = cond.True()
		}
	}

	// Every process activity participates (Definition 1's A), plus
	// any external nodes the constraints mention. sc.Nodes() re-lists
	// the activities the first loop already added; the `seen` guard in
	// lifecycle makes point construction a single pass per node.
	for _, a := range sc.Proc.Activities() {
		lifecycle(ActivityNode(a.ID))
	}
	for _, n := range sc.Nodes() {
		lifecycle(n)
	}

	for i, c := range sc.Constraints() {
		if c.Rel != HappenBefore {
			continue
		}
		u, v := add(c.From), add(c.To)
		if u == v {
			return nil, fmt.Errorf("closure: constraint %s relates a point to itself", c)
		}
		if !pg.g.AddEdge(u, v) {
			return nil, fmt.Errorf("closure: duplicate constraint edge %s", c)
		}
		pg.conds[[2]int{u, v}] = c.Cond
		pg.conIndex[[2]int{u, v}] = i
	}

	order, err := pg.g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("closure: synchronization constraints are cyclic (conflict dependency): %w", err)
	}
	pg.topo = order

	if err := pg.deriveGuards(); err != nil {
		return nil, err
	}
	return pg, nil
}

// deriveGuards computes, for every node, the condition under which it
// executes, from the control-origin constraints: an activity with
// incoming control edges runs when any of them is enabled
// (cond ∧ guard(decision)); an activity with none is unguarded.
// External nodes inherit True — their execution is the remote
// service's business.
//
// Guards are a property of the process's control structure, not of
// whichever constraints happen to survive optimization: DeriveGuards
// on a pre-minimization set is the authoritative source, and Covers
// derives guards from the union of both sets it compares so that a
// minimized set (which may have shed redundant control edges) is
// judged in the same execution context as its original.
func (pg *pointGraph) deriveGuards() error {
	return pg.deriveGuardsFrom(pg.sc.Constraints())
}

func (pg *pointGraph) deriveGuardsFrom(constraints []Constraint) error {
	type ctlEdge struct {
		from Node
		cond cond.Expr
	}
	incoming := map[Node][]ctlEdge{}
	for _, c := range constraints {
		if c.Rel != HappenBefore || !c.HasOrigin(Control) {
			continue
		}
		incoming[c.To.Node] = append(incoming[c.To.Node], ctlEdge{from: c.From.Node, cond: c.Cond})
	}

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[Node]int{}
	var visit func(n Node) (cond.Expr, error)
	visit = func(n Node) (cond.Expr, error) {
		if g, ok := pg.guards[n]; ok && state[n] == done {
			return g, nil
		}
		if state[n] == visiting {
			return cond.Expr{}, fmt.Errorf("closure: cyclic control dependencies at %s", n)
		}
		state[n] = visiting
		edges := incoming[n]
		var g cond.Expr
		if len(edges) == 0 || n.IsService() {
			g = cond.True()
		} else {
			g = cond.False()
			for _, e := range edges {
				pg_, err := visit(e.from)
				if err != nil {
					return cond.Expr{}, err
				}
				g = cond.Or(g, cond.And(e.cond, pg_))
			}
			g = cond.Simplify(g, pg.doms)
		}
		pg.guards[n] = g
		state[n] = done
		return g, nil
	}
	for _, n := range pg.allNodes() {
		if _, err := visit(n); err != nil {
			return err
		}
	}
	return nil
}

func (pg *pointGraph) allNodes() []Node {
	seen := map[string]bool{}
	var out []Node
	for _, p := range pg.points {
		if k := p.Node.String(); !seen[k] {
			seen[k] = true
			out = append(out, p.Node)
		}
	}
	SortNodes(out)
	return out
}

// guardOf returns the execution guard of a node (True when unknown).
func (pg *pointGraph) guardOf(n Node) cond.Expr {
	if g, ok := pg.guards[n]; ok {
		return g
	}
	return cond.True()
}

// annotatedFrom computes the single-source condition-annotated closure
// (Definition 3): for every point q, the disjunction over all paths
// src⇒q of the conjunction of edge conditions along the path.
// ann[src] = True; unreachable points carry False. The skip parameter,
// when non-nil, excludes one edge — used by the minimizer to evaluate
// candidate removals without mutating the graph.
func (pg *pointGraph) annotatedFrom(src int, skip *[2]int) []cond.Expr {
	return pg.annotatedFromInto(nil, src, skip, nil, nil)
}

// sweepCheckInterval is how many frontier expansions a closure sweep
// processes between polls of its cancel flag. Each expansion can cost
// several Simplify calls on wide condition DNFs, so checking every
// node would be noise while checking only at sweep boundaries leaves
// a single pathological sweep uncancellable (the ROADMAP gap this
// closes). 64 keeps the poll overhead unmeasurable and the abort
// latency at a few dozen Simplify calls.
const sweepCheckInterval = 64

// annotatedFromInto is annotatedFrom computing into buf when it has
// the right capacity, so the minimizer's per-candidate skip sweeps can
// reuse one scratch slice per worker instead of allocating one per
// (candidate, source). The returned slice aliases buf when reused.
//
// A non-nil cancel is polled every sweepCheckInterval frontier
// expansions; once it fires the sweep returns its partial annotations
// immediately. Callers that pass cancel MUST NOT use the result as a
// closure (or cache it) without re-checking the flag — the minimizer's
// equivalence checks discard the scan on abort.
//
// A non-nil within bitset restricts the sweep to a cone: only nodes in
// the mask are expanded and only mask nodes receive annotations. The
// caller must guarantee the mask is predecessor-closed over the nodes
// it reads (every predecessor of a mask node that src can reach is
// itself in the mask — e.g. the union of ancestors of a target set);
// then the annotations at mask nodes are structurally identical to an
// unrestricted sweep's, because every contributing edge relaxation runs
// between mask nodes in the same topo order with the same Simplify
// sequence. The minimizer uses this to skip the subgraph that cannot
// influence a candidate's verdict.
func (pg *pointGraph) annotatedFromInto(buf []cond.Expr, src int, skip *[2]int, cancel *atomic.Bool, within graph.Bitset) []cond.Expr {
	var ann []cond.Expr
	if cap(buf) >= len(pg.points) {
		ann = buf[:len(pg.points)]
	} else {
		ann = make([]cond.Expr, len(pg.points))
	}
	for i := range ann {
		ann[i] = cond.False()
	}
	ann[src] = cond.True()
	expanded := 0
	for _, u := range pg.topo {
		if within != nil && !within.Has(u) {
			continue
		}
		if ann[u].IsFalse() {
			continue
		}
		expanded++
		if cancel != nil && expanded%sweepCheckInterval == 0 && cancel.Load() {
			return ann // partial — caller re-checks cancel before use
		}
		for _, v := range pg.g.Succ(u) {
			if within != nil && !within.Has(v) {
				continue
			}
			e := [2]int{u, v}
			if skip != nil && e == *skip {
				continue
			}
			step := cond.And(ann[u], pg.conds[e])
			if step.IsFalse() {
				continue
			}
			ann[v] = cond.Simplify(cond.Or(ann[v], step), pg.doms)
		}
	}
	return ann
}

// annotatedToInto is the backward counterpart of annotatedFromInto:
// for every point q it computes the disjunction over all paths q⇒dst
// of the conjunction of edge conditions along the path, by sweeping
// the reverse graph in reverse topological order. ann[dst] = True;
// points that do not reach dst carry False. For any pair (s, t),
// annotatedTo(t)[s] and annotatedFrom(s)[t] denote the same path
// disjunction (the intermediate Simplify steps can canonicalize the
// two differently, but the expressions are semantically equal) — the
// minimizer exploits this to sweep along whichever side of a candidate
// edge has the smaller frontier. Cancellation and the within cone mask
// mirror annotatedFromInto: a fired cancel yields a partial result the
// caller must discard, and a non-nil mask must be successor-closed over
// the nodes read (e.g. the union of descendants of a source set).
func (pg *pointGraph) annotatedToInto(buf []cond.Expr, dst int, skip *[2]int, cancel *atomic.Bool, within graph.Bitset) []cond.Expr {
	var ann []cond.Expr
	if cap(buf) >= len(pg.points) {
		ann = buf[:len(pg.points)]
	} else {
		ann = make([]cond.Expr, len(pg.points))
	}
	for i := range ann {
		ann[i] = cond.False()
	}
	ann[dst] = cond.True()
	expanded := 0
	for i := len(pg.topo) - 1; i >= 0; i-- {
		v := pg.topo[i]
		if within != nil && !within.Has(v) {
			continue
		}
		if ann[v].IsFalse() {
			continue
		}
		expanded++
		if cancel != nil && expanded%sweepCheckInterval == 0 && cancel.Load() {
			return ann // partial — caller re-checks cancel before use
		}
		for _, u := range pg.g.Pred(v) {
			if within != nil && !within.Has(u) {
				continue
			}
			e := [2]int{u, v}
			if skip != nil && e == *skip {
				continue
			}
			step := cond.And(pg.conds[e], ann[v])
			if step.IsFalse() {
				continue
			}
			ann[u] = cond.Simplify(cond.Or(ann[u], step), pg.doms)
		}
	}
	return ann
}

// pointID returns the graph id of a point, or -1.
func (pg *pointGraph) pointID(p Point) int {
	if i, ok := pg.index[p]; ok {
		return i
	}
	return -1
}

// DeriveGuards returns the execution guard of every node of the
// constraint set: the condition over branch decisions under which the
// node executes, per the control-origin constraints. Downstream
// consumers (the scheduling engine's dead-path elimination, the BPEL
// generator's transition conditions) must derive guards from the
// pre-minimization set, since minimization may shed redundant control
// edges without changing the process's control structure.
func DeriveGuards(sc *ConstraintSet) (map[Node]cond.Expr, error) {
	pg, err := buildPointGraph(sc)
	if err != nil {
		return nil, err
	}
	out := make(map[Node]cond.Expr, len(pg.guards))
	for n, g := range pg.guards {
		out[n] = g
	}
	return out, nil
}

// AnnotatedMember is one element of a transitive closure a⁺: a node
// together with the condition annotation under which it is reached
// (Definition 3's a₃(T₂)-style entries).
type AnnotatedMember struct {
	Node Node
	Cond cond.Expr
}

// TransitiveClosure returns the condition-annotated transitive closure
// of an activity under the constraint set — Definition 3. Members are
// reported at activity granularity: b ∈ a⁺ when any point of b is
// reachable from S(a), with the annotation of its earliest reachable
// state. The result is sorted by node name.
func TransitiveClosure(sc *ConstraintSet, a ActivityID) ([]AnnotatedMember, error) {
	pg, err := buildPointGraph(sc)
	if err != nil {
		return nil, err
	}
	src := pg.pointID(PointOf(a, Start))
	if src < 0 {
		return nil, fmt.Errorf("closure: unknown activity %s", a)
	}
	ann := pg.annotatedFrom(src, nil)
	best := map[Node]cond.Expr{}
	for i, p := range pg.points {
		if p.Node == ActivityNode(a) {
			continue
		}
		if ann[i].IsFalse() {
			continue
		}
		if prev, ok := best[p.Node]; ok {
			best[p.Node] = cond.Simplify(cond.Or(prev, ann[i]), pg.doms)
		} else {
			best[p.Node] = ann[i]
		}
	}
	var out []AnnotatedMember
	for n, c := range best {
		out = append(out, AnnotatedMember{Node: n, Cond: c})
	}
	SortNodes2(out)
	return out, nil
}

// SortNodes2 orders annotated members by node name.
func SortNodes2(ms []AnnotatedMember) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && compareNodes(ms[j].Node, ms[j-1].Node) < 0; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// Covers reports whether constraint set p covers q (Definition 4):
// for every pair of points (a, b), reachability under q implies
// reachability under p with at least as weak a condition, compared in
// the guard context of the endpoints. Both sets must be over the same
// process.
func Covers(p, q *ConstraintSet) (bool, error) {
	return CoversWithGuards(p, q, nil)
}

// CoversWithGuards is Covers under an explicit guard context; a nil
// map derives guards from the union of both sets' control-origin
// constraints (see deriveGuards on why the union).
func CoversWithGuards(p, q *ConstraintSet, guards map[Node]cond.Expr) (bool, error) {
	if p.Proc != q.Proc {
		return false, fmt.Errorf("covers: constraint sets over different processes")
	}
	pgP, err := buildPointGraph(p)
	if err != nil {
		return false, err
	}
	pgQ, err := buildPointGraph(q)
	if err != nil {
		return false, err
	}
	if guards == nil {
		union := append(p.Constraints(), q.Constraints()...)
		if err := pgP.deriveGuardsFrom(union); err != nil {
			return false, err
		}
		if err := pgQ.deriveGuardsFrom(union); err != nil {
			return false, err
		}
	} else {
		for n, g := range guards {
			pgP.guards[n] = g
			pgQ.guards[n] = g
		}
	}
	doms := p.Proc.Domains()
	for _, a := range q.Proc.Activities() {
		srcQ := pgQ.pointID(PointOf(a.ID, Start))
		srcP := pgP.pointID(PointOf(a.ID, Start))
		if srcQ < 0 || srcP < 0 {
			continue
		}
		annQ := pgQ.annotatedFrom(srcQ, nil)
		annP := pgP.annotatedFrom(srcP, nil)
		for j, pt := range pgQ.points {
			if annQ[j].IsFalse() {
				continue
			}
			i := pgP.pointID(pt)
			var inP cond.Expr
			if i >= 0 {
				inP = annP[i]
			} else {
				inP = cond.False()
			}
			g := cond.And(pgQ.guardOf(ActivityNode(a.ID)), pgQ.guardOf(pt.Node))
			ok, err := cond.Implies(cond.And(annQ[j], g), cond.And(inP, g), doms)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
	}
	return true, nil
}

// Equivalent reports transitive equivalence of two constraint sets
// (Definition 5): each covers the other.
func Equivalent(p, q *ConstraintSet) (bool, error) {
	return EquivalentWithGuards(p, q, nil)
}

// EquivalentWithGuards is Equivalent under an explicit guard context.
func EquivalentWithGuards(p, q *ConstraintSet, guards map[Node]cond.Expr) (bool, error) {
	ok, err := CoversWithGuards(p, q, guards)
	if err != nil || !ok {
		return ok, err
	}
	return CoversWithGuards(q, p, guards)
}
