package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"dscweaver/internal/cond"
	"dscweaver/internal/graph"
)

// resolveWorkers maps a MinimizeOptions.Parallelism value to a worker
// count: 0 (and negatives) mean GOMAXPROCS, 1 means run inline with no
// goroutines, larger values are taken literally.
func resolveWorkers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// edgeRedundantN is edgeRedundant with the independent per-endpoint
// equivalence checks fanned out over a pool of `workers` goroutines.
// The removal verdict is a conjunction over all (source, target) pairs
// (every pair's closure annotations must stay equivalent), so the
// verdict — and therefore the sequence of removals the candidate loop
// performs — is identical for every worker count; only the wall-clock
// and the PairComparisons tally (workers cancel early on the first
// inequivalent pair, and who gets how far is scheduling-dependent)
// vary.
//
// The closure pair for (s, t) can be derived by sweeping forward from
// s or backward from t over the reverse graph — the same disjunction
// over paths either way — so the check walks whichever frontier is
// smaller: one sweep per source when the candidate has few ancestors,
// one sweep per target when it has few descendants. The seed-faithful
// NoCache baseline and the strict-annotations ablation always sweep
// forward, like the paper's algorithm.
//
// Cancellation: ctx aborts the check between items (sequential path)
// or through the pool's shared early-cancel flag (parallel path, via
// context.AfterFunc, so workers pay no per-item ctx lookup). A
// context-aborted check returns ctx.Err() — never a verdict computed
// from an incomplete scan.
func (pg *pointGraph) edgeRedundantN(ctx context.Context, u, v, workers int) (bool, int, error) {
	skip := [2]int{u, v}

	// Points that reach u, found on the reverse graph by DFS, plus u.
	sources := pg.ancestorsOf(u)
	sources = append(sources, u)

	// Points reachable from v, plus v itself.
	targetSet := graph.NewBitset(len(pg.points))
	targetSet.Set(v)
	targets := []int{v}
	stack := []int{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range pg.g.Succ(x) {
			if !targetSet.Has(y) {
				targetSet.Set(y)
				targets = append(targets, y)
				stack = append(stack, y)
			}
		}
	}

	backward := !pg.strict && !pg.cache.disabled && len(targets) < len(sources)
	items := sources
	check := func(item int, scratch []cond.Expr, cancel *atomic.Bool) (bool, int, []cond.Expr, error) {
		return pg.sourceEquivalent(item, skip, targetSet, scratch, cancel)
	}
	if backward {
		items = targets
		check = func(item int, scratch []cond.Expr, cancel *atomic.Bool) (bool, int, []cond.Expr, error) {
			return pg.targetEquivalent(item, skip, sources, scratch, cancel)
		}
	}

	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		pairs := 0
		// The same early-cancel flag the pool uses, so a single
		// pathological sweep aborts mid-scan in sequential mode too.
		var cancel atomic.Bool
		stop := context.AfterFunc(ctx, func() { cancel.Store(true) })
		defer stop()
		var scratch []cond.Expr
		for _, it := range items {
			if err := ctx.Err(); err != nil {
				return false, pairs, err
			}
			ok, p, buf, err := check(it, scratch, &cancel)
			scratch = buf
			pairs += p
			if err != nil || !ok {
				if cerr := ctx.Err(); cerr != nil {
					return false, pairs, cerr
				}
				return false, pairs, err
			}
		}
		// An abort during the final item's sweep yields a vacuous "ok"
		// from a partial scan; the ctx error must win over that verdict.
		if err := ctx.Err(); err != nil {
			return false, pairs, err
		}
		return true, pairs, nil
	}

	var (
		next     atomic.Int64 // index of the next unclaimed item
		pairs    atomic.Int64
		cancel   atomic.Bool // set on first inequivalent pair or error
		inequiv  atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	// Context cancellation flips the same flag workers already poll
	// between targets, so an external abort stops the pool exactly as
	// promptly as an inequivalent pair does.
	stop := context.AfterFunc(ctx, func() { cancel.Store(true) })
	defer stop()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []cond.Expr
			for !cancel.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				ok, p, buf, err := check(items[i], scratch, &cancel)
				scratch = buf
				pairs.Add(int64(p))
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					cancel.Store(true)
					return
				}
				if !ok {
					inequiv.Store(true)
					cancel.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	// A context abort poisons the verdict: workers may have bailed
	// mid-scan, so neither "equivalent" nor "inequivalent" is
	// trustworthy. The ctx error wins over a worker error, which may
	// itself be a casualty of the abort.
	if err := ctx.Err(); err != nil {
		return false, int(pairs.Load()), err
	}
	if firstErr != nil {
		return false, int(pairs.Load()), firstErr
	}
	return !inequiv.Load(), int(pairs.Load()), nil
}

// sourceEquivalent checks one source's contribution to a candidate
// removal: whether the closures from s with and without the skipped
// edge agree on every target, compared in guard context. The baseline
// closure comes from the closure cache; the skip closure is recomputed
// into scratch, which is returned for reuse by the caller's next
// source. A non-nil cancel is polled between targets so workers stop
// promptly once a sibling has refuted the candidate (the early return
// reports equivalent=true, which the cancelling caller ignores).
func (pg *pointGraph) sourceEquivalent(s int, skip [2]int, targetSet graph.Bitset, scratch []cond.Expr, cancel *atomic.Bool) (bool, int, []cond.Expr, error) {
	full := pg.fullFrom(s)
	without := pg.annotatedFromInto(scratch, s, &skip, cancel)
	gs := pg.guardOf(pg.points[s].Node)
	pairs := 0
	for t := range pg.points {
		if !targetSet.Has(t) {
			continue
		}
		if cancel != nil && cancel.Load() {
			return true, pairs, without, nil
		}
		if full[t].IsFalse() && without[t].IsFalse() {
			continue
		}
		pairs++
		// Fast path: canonical DNFs structurally identical.
		if full[t].Same(without[t]) {
			continue
		}
		g := cond.And(gs, pg.guardOf(pg.points[t].Node))
		if pg.strict {
			g = cond.True() // ablation: compare annotations out of guard context
		}
		eq, err := pg.equalCond(cond.And(full[t], g), cond.And(without[t], g))
		if err != nil {
			return false, pairs, without, err
		}
		if !eq {
			return false, pairs, without, nil
		}
	}
	return true, pairs, without, nil
}

// targetEquivalent is sourceEquivalent mirrored: one backward sweep
// from target t over the reverse graph yields the closure annotations
// of every source at once, compared against the cached baseline
// backward closure. Semantically ann_s[t] computed forward and
// ann_t[s] computed backward are the same disjunction over the paths
// s⇒t, so the verdict is identical to the forward direction's; only
// the intermediate Simplify steps (and hence the structural fast-path
// hit rate) differ.
func (pg *pointGraph) targetEquivalent(t int, skip [2]int, sources []int, scratch []cond.Expr, cancel *atomic.Bool) (bool, int, []cond.Expr, error) {
	full := pg.fullTo(t)
	without := pg.annotatedToInto(scratch, t, &skip, cancel)
	gt := pg.guardOf(pg.points[t].Node)
	pairs := 0
	for _, s := range sources {
		if cancel != nil && cancel.Load() {
			return true, pairs, without, nil
		}
		if full[s].IsFalse() && without[s].IsFalse() {
			continue
		}
		pairs++
		if full[s].Same(without[s]) {
			continue
		}
		g := cond.And(pg.guardOf(pg.points[s].Node), gt)
		eq, err := pg.equalCond(cond.And(full[s], g), cond.And(without[s], g))
		if err != nil {
			return false, pairs, without, err
		}
		if !eq {
			return false, pairs, without, nil
		}
	}
	return true, pairs, without, nil
}
