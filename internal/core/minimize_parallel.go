package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"dscweaver/internal/cond"
	"dscweaver/internal/graph"
)

// resolveWorkers maps a MinimizeOptions.Parallelism value to a worker
// count: 0 (and negatives) mean GOMAXPROCS, 1 means run inline with no
// goroutines, larger values are taken literally.
func resolveWorkers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// candFrontier is the affected-pair frontier of one candidate removal
// u→v: the only closure pairs its removal can perturb run from srcSet
// (points that reach u, plus u) to tgtSet (points reachable from v,
// plus v) — any path that routes through the edge starts in srcSet and
// ends in tgtSet. The bitsets double as the speculative-commit
// interference test (see interferes) and as membership filters for the
// equivalence sweeps; the slices preserve a deterministic iteration
// order with u (resp. v) first, so the pair (u, v) — the pair most
// likely to refute a kept candidate — is compared before any other.
type candFrontier struct {
	u, v    int
	sources []int // u first, then its ancestors in reverse-DFS order
	srcSet  graph.Bitset
	targets []int // v first, then its descendants in DFS order
	tgtSet  graph.Bitset
}

// frontierOf computes a candidate's affected-pair frontier on the
// current graph by one reverse DFS from u and one forward DFS from v.
func (pg *pointGraph) frontierOf(u, v int) *candFrontier {
	fr := &candFrontier{
		u: u, v: v,
		srcSet: graph.NewBitset(len(pg.points)),
		tgtSet: graph.NewBitset(len(pg.points)),
	}
	fr.srcSet.Set(u)
	fr.sources = append(fr.sources, u)
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range pg.g.Pred(x) {
			if !fr.srcSet.Has(p) {
				fr.srcSet.Set(p)
				fr.sources = append(fr.sources, p)
				stack = append(stack, p)
			}
		}
	}
	fr.tgtSet.Set(v)
	fr.targets = append(fr.targets, v)
	stack = append(stack[:0], v)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range pg.g.Succ(x) {
			if !fr.tgtSet.Has(y) {
				fr.tgtSet.Set(y)
				fr.targets = append(fr.targets, y)
				stack = append(stack, y)
			}
		}
	}
	return fr
}

// interferes reports whether a committed removal with frontier other
// can change this candidate's verdict. A removal of e₁ = (u₁, v₁)
// structurally changes only closures from srcSet₁ to tgtSet₁ (every
// path through e₁ starts in the former and ends in the latter), and
// this candidate's verdict reads only closure values from its own
// srcSet at its own tgtSet — so the verdict is invariant unless both
// source sets and both target sets intersect. Frontiers taken on an
// older graph are supersets of the current ones (removals only shrink
// reachability), so testing snapshot frontiers is conservative: it can
// force a redundant re-evaluation, never miss a real dependency.
func (fr *candFrontier) interferes(other *candFrontier) bool {
	return fr.srcSet.Intersects(other.srcSet) && fr.tgtSet.Intersects(other.tgtSet)
}

// pairMask returns the cone a skip sweep from u needs to decide the
// single pair (u, v): the ancestors of v plus v itself. The set is
// predecessor-closed (a predecessor of an ancestor of v is an ancestor
// of v), which annotatedFromInto requires for the restricted sweep to
// stay structurally identical at v; intersected with the sweep's own
// reach from u it confines the walk to the between-cone
// desc(u) ∩ anc(v).
func (pg *pointGraph) pairMask(v int) graph.Bitset {
	mask := graph.NewBitset(len(pg.points))
	mask.Set(v)
	stack := []int{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range pg.g.Pred(x) {
			if !mask.Has(p) {
				mask.Set(p)
				stack = append(stack, p)
			}
		}
	}
	return mask
}

// forwardMask returns the cone a forward skip sweep may visit: the
// union over the candidate's targets of their ancestors, plus the
// targets themselves. The mask is predecessor-closed over the nodes the
// verdict reads (a predecessor of an ancestor of t is an ancestor of
// t), which annotatedFromInto requires for the restricted sweep to stay
// structurally identical at every target.
func (pg *pointGraph) forwardMask(fr *candFrontier) graph.Bitset {
	mask := fr.tgtSet.Clone()
	stack := append([]int(nil), fr.targets...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range pg.g.Pred(x) {
			if !mask.Has(p) {
				mask.Set(p)
				stack = append(stack, p)
			}
		}
	}
	return mask
}

// backwardMask is forwardMask mirrored for backward sweeps: the union
// over the candidate's sources of their descendants, plus the sources.
func (pg *pointGraph) backwardMask(fr *candFrontier) graph.Bitset {
	mask := fr.srcSet.Clone()
	stack := append([]int(nil), fr.sources...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range pg.g.Succ(x) {
			if !mask.Has(y) {
				mask.Set(y)
				stack = append(stack, y)
			}
		}
	}
	return mask
}

// checkFrontier decides one candidate removal — Definition 6's
// transitive-equivalence test over the candidate's affected-pair
// frontier — and returns (removable, pairComparisons, workersUsed,
// error). The removal verdict is a conjunction over all (source,
// target) frontier pairs (every pair's closure annotations must stay
// equivalent in guard context), so the verdict — and therefore the
// removal sequence the candidate loop performs — is identical for every
// worker count and engine configuration; only the wall-clock and the
// PairComparisons tally (workers cancel early on the first
// inequivalent pair, and who gets how far is scheduling-dependent)
// vary.
//
// The engine decides nearly every candidate from the single pair
// (u, v) — one skip sweep from u confined to the between-cone — via the
// transitivity of the annotated closure (gated off under NoCache, which
// stays the paper-faithful naive baseline). In a DAG a path uses the
// edge at most once, so for every frontier pair
//
//	full(s,t) = without(s,t) ∨ (without(s,u) ∧ cond(u,v) ∧ without(v,t))
//
// and path concatenation gives without(s,t) ⊒ without(s,m) ∧
// without(m,t) for any midpoint m. Therefore:
//
//   - if cond(u,v) ⊑ without(u,v) absolutely, the through-edge term of
//     every pair is absorbed (chain u, then v, as midpoints), so every
//     pair is absolutely — hence also in guard context — equivalent:
//     REMOVE, exactly as the full scan would conclude.
//   - if the pair (u, v) itself is inequivalent in its own guard
//     context, the full scan refutes at that very pair (it is compared
//     first): KEEP.
//   - only the middle case — equivalent in guard context but not
//     absolutely — falls back to the full frontier scan, because
//     guard-context-only coverage at (u, v) does not propagate through
//     other pairs' contexts. In the strict ablation guard context is
//     True, the first two cases are exhaustive and no fallback exists.
//
// The quick-keep special case (no alternate u⇒v path) falls out for
// free: without(u,v) is False, so a non-vacuous edge refutes at cost of
// a near-empty sweep. Fallback skip sweeps are confined to the nodes
// that can lie on a path into the target cone
// (forwardMask/backwardMask); annotations at the compared pairs are
// structurally identical to an unrestricted sweep's, so verdicts and
// per-scan tallies are unchanged while the sweep skips the untouched
// subgraph.
//
// The closure pair for (s, t) can be derived by sweeping forward from
// s or backward from t over the reverse graph — the same disjunction
// over paths either way — so the check walks whichever frontier is
// smaller. The NoCache baseline and the strict-annotations ablation
// always sweep forward, like the paper's algorithm.
//
// Cancellation: ctx aborts the check between items (sequential path)
// or through the pool's shared early-cancel flag (parallel path, via
// context.AfterFunc, so workers pay no per-item ctx lookup). A
// context-aborted check returns ctx.Err() — never a verdict computed
// from an incomplete scan.
func (pg *pointGraph) checkFrontier(ctx context.Context, fr *candFrontier, workers int) (bool, int, int, error) {
	skip := [2]int{fr.u, fr.v}

	// An already-aborted context never yields a verdict — not even the
	// local pair test's.
	if err := ctx.Err(); err != nil {
		return false, 0, 1, err
	}

	if !pg.cache.disabled {
		// Local pair test: one skip sweep from u restricted to anc(v)∪{v},
		// read at v. The cached baseline closure is deliberately not used
		// here: prior guard-mode removals preserve closures only in guard
		// context, while the absolute test needs the current graph's exact
		// full(u,v) — which is just without(u,v) ∨ cond(u,v).
		var cancelFlag atomic.Bool
		stop := context.AfterFunc(ctx, func() { cancelFlag.Store(true) })
		without := pg.annotatedFromInto(nil, fr.u, &skip, &cancelFlag, pg.pairMask(fr.v))
		stop()
		if err := ctx.Err(); err != nil {
			// The sweep may have aborted mid-scan; its result is not a
			// closure and must not yield a verdict.
			return false, 0, 1, err
		}
		full := cond.Or(without[fr.v], pg.conds[skip])
		eqAbs, err := pg.equalCond(full, without[fr.v])
		if err != nil {
			return false, 1, 1, err
		}
		if eqAbs {
			return true, 1, 1, nil
		}
		if pg.strict {
			return false, 1, 1, nil
		}
		g := cond.And(pg.guardOf(pg.points[fr.u].Node), pg.guardOf(pg.points[fr.v].Node))
		eqCtx, err := pg.equalCond(cond.And(full, g), cond.And(without[fr.v], g))
		if err != nil {
			return false, 1, 1, err
		}
		if !eqCtx {
			return false, 1, 1, nil // the pair (u, v) itself refutes
		}
		// Middle case: covered in guard context only — decide by the full
		// frontier scan below.
	}

	backward := !pg.strict && !pg.cache.disabled && len(fr.targets) < len(fr.sources)
	var within graph.Bitset
	if !pg.cache.disabled {
		if backward {
			within = pg.backwardMask(fr)
		} else {
			within = pg.forwardMask(fr)
		}
	}
	items := fr.sources
	check := func(item int, scratch []cond.Expr, cancel *atomic.Bool) (bool, int, []cond.Expr, error) {
		return pg.sourceEquivalent(item, skip, fr.targets, within, scratch, cancel)
	}
	if backward {
		items = fr.targets
		check = func(item int, scratch []cond.Expr, cancel *atomic.Bool) (bool, int, []cond.Expr, error) {
			return pg.targetEquivalent(item, skip, fr.sources, within, scratch, cancel)
		}
	}

	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		pairs := 0
		// The same early-cancel flag the pool uses, so a single
		// pathological sweep aborts mid-scan in sequential mode too.
		var cancel atomic.Bool
		stop := context.AfterFunc(ctx, func() { cancel.Store(true) })
		defer stop()
		var scratch []cond.Expr
		for _, it := range items {
			if err := ctx.Err(); err != nil {
				return false, pairs, 1, err
			}
			ok, p, buf, err := check(it, scratch, &cancel)
			scratch = buf
			pairs += p
			if err != nil || !ok {
				if cerr := ctx.Err(); cerr != nil {
					return false, pairs, 1, cerr
				}
				return false, pairs, 1, err
			}
		}
		// An abort during the final item's sweep yields a vacuous "ok"
		// from a partial scan; the ctx error must win over that verdict.
		if err := ctx.Err(); err != nil {
			return false, pairs, 1, err
		}
		return true, pairs, 1, nil
	}

	var (
		next     atomic.Int64 // index of the next unclaimed item
		pairs    atomic.Int64
		cancel   atomic.Bool // set on first inequivalent pair or error
		inequiv  atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	// Context cancellation flips the same flag workers already poll
	// between targets, so an external abort stops the pool exactly as
	// promptly as an inequivalent pair does.
	stop := context.AfterFunc(ctx, func() { cancel.Store(true) })
	defer stop()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []cond.Expr
			for !cancel.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				ok, p, buf, err := check(items[i], scratch, &cancel)
				scratch = buf
				pairs.Add(int64(p))
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					cancel.Store(true)
					return
				}
				if !ok {
					inequiv.Store(true)
					cancel.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	// A context abort poisons the verdict: workers may have bailed
	// mid-scan, so neither "equivalent" nor "inequivalent" is
	// trustworthy. The ctx error wins over a worker error, which may
	// itself be a casualty of the abort.
	if err := ctx.Err(); err != nil {
		return false, int(pairs.Load()), workers, err
	}
	if firstErr != nil {
		return false, int(pairs.Load()), workers, firstErr
	}
	return !inequiv.Load(), int(pairs.Load()), workers, nil
}

// edgeRedundantN is the frontier-oblivious entry point retained for the
// Adapter's incremental checks: compute the candidate's frontier on the
// current graph, then run the full equivalence check over it.
func (pg *pointGraph) edgeRedundantN(ctx context.Context, u, v, workers int) (bool, int, error) {
	removable, pairs, _, err := pg.checkFrontier(ctx, pg.frontierOf(u, v), workers)
	return removable, pairs, err
}

// sourceEquivalent checks one source's contribution to a candidate
// removal: whether the closures from s with and without the skipped
// edge agree on every target, compared in guard context. The baseline
// closure comes from the closure cache; the skip closure is recomputed
// into scratch — restricted to the within cone when non-nil — and
// scratch is returned for reuse by the caller's next source. A non-nil
// cancel is polled between targets so workers stop promptly once a
// sibling has refuted the candidate (the early return reports
// equivalent=true, which the cancelling caller ignores). Targets are
// compared in frontier order, v first, so a kept candidate is usually
// refuted by its own pair before any other comparison runs.
func (pg *pointGraph) sourceEquivalent(s int, skip [2]int, targets []int, within graph.Bitset, scratch []cond.Expr, cancel *atomic.Bool) (bool, int, []cond.Expr, error) {
	full := pg.fullFrom(s)
	without := pg.annotatedFromInto(scratch, s, &skip, cancel, within)
	gs := pg.guardOf(pg.points[s].Node)
	pairs := 0
	for _, t := range targets {
		if cancel != nil && cancel.Load() {
			return true, pairs, without, nil
		}
		if full[t].IsFalse() && without[t].IsFalse() {
			continue
		}
		pairs++
		// Fast path: canonical DNFs structurally identical.
		if full[t].Same(without[t]) {
			continue
		}
		g := cond.And(gs, pg.guardOf(pg.points[t].Node))
		if pg.strict {
			g = cond.True() // ablation: compare annotations out of guard context
		}
		eq, err := pg.equalCond(cond.And(full[t], g), cond.And(without[t], g))
		if err != nil {
			return false, pairs, without, err
		}
		if !eq {
			return false, pairs, without, nil
		}
	}
	return true, pairs, without, nil
}

// targetEquivalent is sourceEquivalent mirrored: one backward sweep
// from target t over the reverse graph yields the closure annotations
// of every source at once, compared against the cached baseline
// backward closure. Semantically ann_s[t] computed forward and
// ann_t[s] computed backward are the same disjunction over the paths
// s⇒t, so the verdict is identical to the forward direction's; only
// the intermediate Simplify steps (and hence the structural fast-path
// hit rate) differ. Sources are compared in frontier order, u first.
func (pg *pointGraph) targetEquivalent(t int, skip [2]int, sources []int, within graph.Bitset, scratch []cond.Expr, cancel *atomic.Bool) (bool, int, []cond.Expr, error) {
	full := pg.fullTo(t)
	without := pg.annotatedToInto(scratch, t, &skip, cancel, within)
	gt := pg.guardOf(pg.points[t].Node)
	pairs := 0
	for _, s := range sources {
		if cancel != nil && cancel.Load() {
			return true, pairs, without, nil
		}
		if full[s].IsFalse() && without[s].IsFalse() {
			continue
		}
		pairs++
		if full[s].Same(without[s]) {
			continue
		}
		g := cond.And(pg.guardOf(pg.points[s].Node), gt)
		eq, err := pg.equalCond(cond.And(full[s], g), cond.And(without[s], g))
		if err != nil {
			return false, pairs, without, err
		}
		if !eq {
			return false, pairs, without, nil
		}
	}
	return true, pairs, without, nil
}
