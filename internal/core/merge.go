package core

import (
	"fmt"

	"dscweaver/internal/cond"
)

// Merge builds the synchronization constraint set P of Definition 1
// from a four-dimension dependency catalog (§4.2):
//
//   - data, cooperation and service dependencies become unconditional
//     HappenBefore constraints F(from) → S(to);
//   - control dependencies become conditional HappenBefore constraints
//     F(decision) →[decision=branch] S(target); a control dependency
//     with the NONE annotation (empty branch) is unconditional.
//
// Dependencies that impose the same (from, to) pair are folded into a
// single constraint whose condition is the disjunction of the
// contributors and whose Origins record every dimension involved —
// this is how the duplicate recPurchase_oi → replyClient_oi data and
// cooperation rows of Table 1 become one entry of Figure 7.
func Merge(p *Process, deps *DependencySet) (*ConstraintSet, error) {
	if err := deps.Validate(p); err != nil {
		return nil, fmt.Errorf("merge: %w", err)
	}
	sc := NewConstraintSet(p)
	for _, d := range deps.All() {
		c := Constraint{
			Rel:     HappenBefore,
			From:    Point{Node: d.From, State: Finish},
			To:      Point{Node: d.To, State: Start},
			Cond:    cond.True(),
			Origins: []Dimension{d.Dim},
		}
		if d.Label != "" {
			c.Labels = []string{d.Label}
		}
		if d.Dim == Control && d.Branch != "" {
			c.Cond = cond.Lit(string(d.From.Activity), d.Branch)
		}
		sc.Add(c)
	}
	return sc, nil
}

// MergeSets merges multiple dependency catalogs (e.g. one per
// participating service, as in automatic service composition — §1's
// scheduling-engine scenario) into a single constraint set.
func MergeSets(p *Process, sets ...*DependencySet) (*ConstraintSet, error) {
	all := NewDependencySet()
	for _, s := range sets {
		all.AddAll(s)
	}
	return Merge(p, all)
}
