package core

import (
	"strings"
	"testing"

	"dscweaver/internal/cond"
)

func TestDependencyDOT(t *testing.T) {
	_ = testProcess(t)
	deps := NewDependencySet()
	deps.Add(Dependency{From: ActivityNode("a"), To: ActivityNode("b"), Dim: Data, Label: "x"})
	deps.Add(Dependency{From: ActivityNode("c"), To: ActivityNode("d"), Dim: Control, Branch: "T"})
	deps.Add(Dependency{From: ActivityNode("c"), To: ActivityNode("b"), Dim: Control})
	deps.Add(Dependency{From: ActivityNode("b"), To: ServiceNode("Svc", "1"), Dim: ServiceDim})
	deps.Add(Dependency{From: ActivityNode("a"), To: ActivityNode("d"), Dim: Cooperation})
	out := DependencyDOT("test", deps)
	for _, want := range []string{
		`digraph "test"`,
		`"a" -> "b" [label="x", style="dashed"]`,
		`"c" -> "d" [label="T", style="solid"]`,
		`"c" -> "b" [label="NONE", style="solid"]`,
		`"b" -> "Svc.1" [color="gray40"]`,
		`"a" -> "d" [style="dotted"]`,
		`"Svc.1" [shape=box`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestConstraintDOT(t *testing.T) {
	p := testProcess(t)
	s := NewConstraintSet(p)
	s.Before("a", "b", Data)
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("c", Finish), To: PointOf("d", Start),
		Cond: cond.Lit("c", "T"), Origins: []Dimension{Control}})
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("a", Finish), To: PointOf("d", Start),
		Cond: cond.True(), Origins: []Dimension{ServiceDim}})
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("b", Start), To: PointOf("d", Finish),
		Cond: cond.True(), Origins: []Dimension{Cooperation}})
	s.Add(Constraint{Rel: Exclusive, From: PointOf("b", Run), To: PointOf("d", Run), Cond: cond.True()})
	out := ConstraintDOT("cs", s)
	for _, want := range []string{
		`"a" -> "b";`,
		`"c" -> "d" [label="c=T"]`,
		`"a" -> "d" [style="bold"]`, // service-derived
		`label="S→F"`,               // state-level annotation
		`"b" -> "d" [color="red", dir="both", label="excl"]`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestDOTDeterministic(t *testing.T) {
	p := testProcess(t)
	s := NewConstraintSet(p)
	s.Before("b", "d", Data)
	s.Before("a", "b", Data)
	if ConstraintDOT("x", s) != ConstraintDOT("x", s) {
		t.Error("ConstraintDOT not deterministic")
	}
}
