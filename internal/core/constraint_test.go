package core

import (
	"strings"
	"testing"

	"dscweaver/internal/cond"
)

func TestConstraintString(t *testing.T) {
	c := Constraint{
		Rel:  HappenBefore,
		From: PointOf("if_au", Finish),
		To:   PointOf("set_oi", Start),
		Cond: cond.Lit("if_au", "F"),
	}
	if got := c.String(); got != "F(if_au) →[if_au=F] S(set_oi)" {
		t.Errorf("String = %q", got)
	}
	u := Constraint{Rel: HappenBefore, From: PointOf("a", Finish), To: PointOf("b", Start), Cond: cond.True()}
	if got := u.String(); got != "F(a) → S(b)" {
		t.Errorf("String = %q", got)
	}
	x := Constraint{Rel: Exclusive, From: PointOf("a", Run), To: PointOf("b", Run), Cond: cond.True()}
	if !strings.Contains(x.String(), "⊘") {
		t.Errorf("Exclusive String = %q", x.String())
	}
}

func TestConstraintSetFoldsPairs(t *testing.T) {
	p := testProcess(t)
	s := NewConstraintSet(p)
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("a", Finish), To: PointOf("b", Start),
		Cond: cond.Lit("c", "T"), Origins: []Dimension{Control}})
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("a", Finish), To: PointOf("b", Start),
		Cond: cond.Lit("c", "F"), Origins: []Dimension{Data}, Labels: []string{"x"}})
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (folded)", s.Len())
	}
	c := s.Constraints()[0]
	if len(c.Origins) != 2 {
		t.Errorf("Origins = %v, want both", c.Origins)
	}
	eq, err := cond.Equal(c.Cond, cond.Or(cond.Lit("c", "T"), cond.Lit("c", "F")), nil)
	if err != nil || !eq {
		t.Errorf("folded cond = %v", c.Cond)
	}
	if len(c.Labels) != 1 || c.Labels[0] != "x" {
		t.Errorf("Labels = %v", c.Labels)
	}
}

func TestConstraintSetIgnoresVacuous(t *testing.T) {
	p := testProcess(t)
	s := NewConstraintSet(p)
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("a", Finish), To: PointOf("b", Start), Cond: cond.False()})
	if s.Len() != 0 {
		t.Errorf("vacuous constraint stored, Len = %d", s.Len())
	}
}

func TestBeforeHelper(t *testing.T) {
	p := testProcess(t)
	s := NewConstraintSet(p)
	s.Before("a", "b", Data)
	c := s.Constraints()[0]
	if c.From.State != Finish || c.To.State != Start || !c.Cond.IsTrue() {
		t.Errorf("Before produced %v", c)
	}
}

func TestNodePartition(t *testing.T) {
	p := testProcess(t)
	s := NewConstraintSet(p)
	s.Before("a", "b", Data)
	s.Add(Constraint{Rel: HappenBefore, From: PointOf("b", Finish),
		To: Point{Node: ServiceNode("Svc", "1"), State: Start}, Cond: cond.True(), Origins: []Dimension{ServiceDim}})
	if got := len(s.ActivityNodes()); got != 2 {
		t.Errorf("ActivityNodes = %d, want 2", got)
	}
	if got := len(s.ServiceNodes()); got != 1 {
		t.Errorf("ServiceNodes = %d, want 1", got)
	}
	if !s.HasServiceNodes() {
		t.Error("HasServiceNodes = false")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := testProcess(t)
	s := NewConstraintSet(p)
	s.Before("a", "b", Data)
	c := s.Clone()
	c.Before("b", "d", Data)
	if s.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone aliasing: orig %d, clone %d", s.Len(), c.Len())
	}
}

func TestDesugarHappenTogether(t *testing.T) {
	p := testProcess(t)
	s := NewConstraintSet(p)
	s.Add(Constraint{Rel: HappenTogether, From: PointOf("a", Finish), To: PointOf("b", Start), Cond: cond.True()})
	before := len(p.Activities())
	if err := s.Desugar(); err != nil {
		t.Fatal(err)
	}
	if len(p.Activities()) != before+1 {
		t.Errorf("coordinator activity not registered")
	}
	for _, c := range s.Constraints() {
		if c.Rel == HappenTogether {
			t.Errorf("HappenTogether survived desugaring: %v", c)
		}
	}
	if s.Len() != 2 {
		t.Errorf("desugared Len = %d, want 2", s.Len())
	}
}

func TestDesugarRejectsServiceNodes(t *testing.T) {
	p := testProcess(t)
	s := NewConstraintSet(p)
	s.Add(Constraint{Rel: HappenTogether, From: PointOf("a", Finish),
		To: Point{Node: ServiceNode("Svc", "1"), State: Start}, Cond: cond.True()})
	if err := s.Desugar(); err == nil {
		t.Error("Desugar accepted external HappenTogether")
	}
}

func TestConstraintSetValidate(t *testing.T) {
	p := testProcess(t)
	good := NewConstraintSet(p)
	good.Before("a", "b", Data)
	good.Add(Constraint{Rel: HappenTogether, From: PointOf("a", Start), To: PointOf("d", Start), Cond: cond.True()})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}

	ghost := NewConstraintSet(p)
	ghost.Before("a", "nope", Data)
	if err := ghost.Validate(); err == nil || !strings.Contains(err.Error(), "undeclared activity") {
		t.Errorf("err = %v, want undeclared activity", err)
	}

	ghostSvc := NewConstraintSet(p)
	ghostSvc.Add(Constraint{Rel: HappenBefore, From: PointOf("a", Finish),
		To: Point{Node: ServiceNode("Nope", "1"), State: Start}, Cond: cond.True()})
	if err := ghostSvc.Validate(); err == nil || !strings.Contains(err.Error(), "undeclared service") {
		t.Errorf("err = %v, want undeclared service", err)
	}

	cyc := NewConstraintSet(p)
	cyc.Before("a", "b", Data)
	cyc.Before("b", "a", Data)
	if err := cyc.Validate(); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("err = %v, want cycle detection", err)
	}
}

func TestStateAndPointStrings(t *testing.T) {
	if Start.String() != "S" || Run.String() != "R" || Finish.String() != "F" {
		t.Error("state strings wrong")
	}
	if got := PointOf("x", Run).String(); got != "R(x)" {
		t.Errorf("point string = %q", got)
	}
}

func TestConstraintSetStringSorted(t *testing.T) {
	p := testProcess(t)
	s := NewConstraintSet(p)
	s.Before("b", "d", Data)
	s.Before("a", "b", Data)
	out := s.String()
	lines := strings.Split(out, "\n")
	if len(lines) != 2 || lines[0] > lines[1] {
		t.Errorf("String not sorted:\n%s", out)
	}
}
