package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// adapterFixture builds a 4-chain catalog a0→a1→a2→a3.
func adapterFixture(t *testing.T) *Adapter {
	t.Helper()
	p := linProcess(4)
	deps := NewDependencySet()
	for i := 0; i+1 < 4; i++ {
		deps.Add(Dependency{
			From: ActivityNode(ActivityID(fmt.Sprintf("a%d", i))),
			To:   ActivityNode(ActivityID(fmt.Sprintf("a%d", i+1))),
			Dim:  Data, Label: "x",
		})
	}
	a, err := NewAdapter(p, deps)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAdapterAddImplied(t *testing.T) {
	a := adapterFixture(t)
	before := a.Minimal().String()
	res, err := a.Add(Dependency{From: ActivityNode("a0"), To: ActivityNode("a3"), Dim: Cooperation, Label: "redundant"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Implied {
		t.Errorf("shortcut over a chain not reported implied: %+v", res)
	}
	if a.Minimal().String() != before {
		t.Error("minimal set changed by an implied addition")
	}
	// The catalog still records the dependency.
	if a.Dependencies().Len() != 4 {
		t.Errorf("catalog = %d deps, want 4", a.Dependencies().Len())
	}
}

func TestAdapterAddNewConstraint(t *testing.T) {
	p := linProcess(4)
	deps := NewDependencySet()
	deps.Add(Dependency{From: ActivityNode("a0"), To: ActivityNode("a1"), Dim: Data})
	deps.Add(Dependency{From: ActivityNode("a2"), To: ActivityNode("a3"), Dim: Data})
	a, err := NewAdapter(p, deps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Add(Dependency{From: ActivityNode("a1"), To: ActivityNode("a2"), Dim: Cooperation})
	if err != nil {
		t.Fatal(err)
	}
	if res.Implied || len(res.Added) != 1 {
		t.Errorf("result = %+v, want one added constraint", res)
	}
	if a.Minimal().Len() != 3 {
		t.Errorf("minimal = %d, want 3", a.Minimal().Len())
	}
}

func TestAdapterAddPrunesNowRedundant(t *testing.T) {
	// Catalog: a0→a2 direct. Adding a0→a1 and a1→a2 makes the direct
	// edge redundant; the second addition must prune it.
	p := linProcess(3)
	deps := NewDependencySet()
	deps.Add(Dependency{From: ActivityNode("a0"), To: ActivityNode("a2"), Dim: Data})
	a, err := NewAdapter(p, deps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Add(Dependency{From: ActivityNode("a0"), To: ActivityNode("a1"), Dim: Data}); err != nil {
		t.Fatal(err)
	}
	res, err := a.Add(Dependency{From: ActivityNode("a1"), To: ActivityNode("a2"), Dim: Data})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pruned) != 1 {
		t.Fatalf("pruned = %v, want the direct a0→a2", res.Pruned)
	}
	if res.Pruned[0].From.Node.Activity != "a0" || res.Pruned[0].To.Node.Activity != "a2" {
		t.Errorf("pruned = %v", res.Pruned[0])
	}
	if a.Minimal().Len() != 2 {
		t.Errorf("minimal = %d, want 2\n%s", a.Minimal().Len(), a.Minimal())
	}
}

func TestAdapterControlAddRecomputes(t *testing.T) {
	p := NewProcess("ctl")
	p.MustAddActivity(&Activity{ID: "dec", Kind: KindDecision})
	p.MustAddActivity(&Activity{ID: "x", Kind: KindOpaque})
	deps := NewDependencySet()
	deps.Add(Dependency{From: ActivityNode("dec"), To: ActivityNode("x"), Dim: Data})
	a, err := NewAdapter(p, deps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Add(Dependency{From: ActivityNode("dec"), To: ActivityNode("x"), Dim: Control, Branch: "T"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullRecompute {
		t.Error("control addition did not trigger recomputation")
	}
}

func TestAdapterRemoveRedundant(t *testing.T) {
	a := adapterFixture(t)
	if _, err := a.Add(Dependency{From: ActivityNode("a0"), To: ActivityNode("a3"), Dim: Cooperation, Label: "redundant"}); err != nil {
		t.Fatal(err)
	}
	before := a.Minimal().String()
	res, err := a.Remove(Dependency{From: ActivityNode("a0"), To: ActivityNode("a3"), Dim: Cooperation, Label: "redundant"})
	if err != nil {
		t.Fatal(err)
	}
	if res.FullRecompute {
		t.Error("removing a redundant dependency triggered recomputation")
	}
	if a.Minimal().String() != before {
		t.Error("minimal set changed by removing a redundant dependency")
	}
	if a.Dependencies().Len() != 3 {
		t.Errorf("catalog = %d, want 3 after the removal", a.Dependencies().Len())
	}
}

func TestAdapterRemoveLoadBearing(t *testing.T) {
	a := adapterFixture(t)
	res, err := a.Remove(Dependency{From: ActivityNode("a1"), To: ActivityNode("a2"), Dim: Data, Label: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullRecompute {
		t.Error("load-bearing removal did not recompute")
	}
	if a.Minimal().Len() != 2 {
		t.Errorf("minimal = %d, want 2 after cutting the chain", a.Minimal().Len())
	}
}

func TestAdapterRemoveResurrectsPruned(t *testing.T) {
	// Catalog: chain a0→a1→a2 plus direct a0→a2 (pruned). Removing
	// a0→a1 must bring the direct constraint back.
	p := linProcess(3)
	deps := NewDependencySet()
	deps.Add(Dependency{From: ActivityNode("a0"), To: ActivityNode("a1"), Dim: Data})
	deps.Add(Dependency{From: ActivityNode("a1"), To: ActivityNode("a2"), Dim: Data})
	deps.Add(Dependency{From: ActivityNode("a0"), To: ActivityNode("a2"), Dim: Cooperation})
	a, err := NewAdapter(p, deps)
	if err != nil {
		t.Fatal(err)
	}
	if a.Minimal().Len() != 2 {
		t.Fatalf("initial minimal = %d, want 2", a.Minimal().Len())
	}
	if _, err := a.Remove(Dependency{From: ActivityNode("a1"), To: ActivityNode("a2"), Dim: Data}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range a.Minimal().Constraints() {
		if c.From.Node.Activity == "a0" && c.To.Node.Activity == "a2" {
			found = true
		}
	}
	if !found {
		t.Errorf("pruned cooperation constraint did not come back:\n%s", a.Minimal())
	}
}

func TestAdapterRemoveUnknown(t *testing.T) {
	a := adapterFixture(t)
	if _, err := a.Remove(Dependency{From: ActivityNode("a0"), To: ActivityNode("a3"), Dim: Data}); err == nil {
		t.Error("removing an unknown dependency succeeded")
	}
}

func TestAdapterAddInvalid(t *testing.T) {
	a := adapterFixture(t)
	if _, err := a.Add(Dependency{From: ActivityNode("a0"), To: ActivityNode("ghost"), Dim: Data}); err == nil {
		t.Error("invalid dependency accepted")
	}
}

// Property: a random sequence of adds keeps the adapter's minimal view
// equivalent to a from-scratch pipeline over the same catalog.
func TestQuickAdapterMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(4)
		p := linProcess(n)
		ids := make([]ActivityID, n)
		for i := range ids {
			ids[i] = ActivityID(fmt.Sprintf("a%d", i))
		}
		// Start with a spanning chain so the process is connected.
		deps := NewDependencySet()
		for i := 0; i+1 < n; i++ {
			deps.Add(Dependency{From: ActivityNode(ids[i]), To: ActivityNode(ids[i+1]), Dim: Data})
		}
		a, err := NewAdapter(p, deps)
		if err != nil {
			return false
		}
		for k := 0; k < 6; k++ {
			u := r.Intn(n - 1)
			v := u + 1 + r.Intn(n-u-1)
			dep := Dependency{From: ActivityNode(ids[u]), To: ActivityNode(ids[v]), Dim: Cooperation, Label: fmt.Sprint(k)}
			if _, err := a.Add(dep); err != nil {
				return false
			}
		}
		// From-scratch pipeline over the same catalog.
		batch, err := NewAdapter(p, a.Dependencies())
		if err != nil {
			return false
		}
		eq, err := Equivalent(a.Minimal(), batch.Minimal())
		if err != nil || !eq {
			return false
		}
		// Incremental result is itself minimal.
		res, err := MinimizeWithGuards(a.Minimal(), a.Guards())
		if err != nil {
			return false
		}
		return len(res.Removed) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAdapterOnPurchasingCatalog(t *testing.T) {
	// Build the purchasing catalog incrementally through the adapter
	// (duplicating the fixture here to avoid an import cycle with
	// internal/purchasing); the final minimal view must reach
	// Figure 9's 17 constraints regardless of insertion order.
	// The catalog is small, so insert service deps last — the worst
	// case for the translator diff.
	p := NewProcess("Purchasing")
	p.MustAddService(&Service{Name: "Credit", Ports: []string{"1"}, Async: true})
	p.MustAddService(&Service{Name: "Purchase", Ports: []string{"1", "2"}, Async: true, SequentialPorts: true})
	p.MustAddActivity(&Activity{ID: "recClient_po", Kind: KindReceive, Writes: []string{"po"}})
	p.MustAddActivity(&Activity{ID: "invCredit_po", Kind: KindInvoke, Service: "Credit", Port: "1", Reads: []string{"po"}})
	p.MustAddActivity(&Activity{ID: "recCredit_au", Kind: KindReceive, Service: "Credit", Port: DummyPort, Writes: []string{"au"}})
	deps := NewDependencySet()
	deps.Add(Dependency{From: ActivityNode("recClient_po"), To: ActivityNode("invCredit_po"), Dim: Data, Label: "po"})
	a, err := NewAdapter(p, deps)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Dependency{
		{From: ActivityNode("invCredit_po"), To: ServiceNode("Credit", "1"), Dim: ServiceDim},
		{From: ServiceNode("Credit", "1"), To: ServiceNode("Credit", DummyPort), Dim: ServiceDim},
		{From: ServiceNode("Credit", DummyPort), To: ActivityNode("recCredit_au"), Dim: ServiceDim},
	} {
		if _, err := a.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	// The three service rows translate to one internal constraint.
	want := []string{"invCredit_po", "recCredit_au"}
	found := false
	for _, c := range a.Minimal().Constraints() {
		if string(c.From.Node.Activity) == want[0] && string(c.To.Node.Activity) == want[1] {
			found = true
		}
	}
	if !found {
		t.Errorf("translated service constraint missing:\n%s", a.Minimal())
	}
	if a.Minimal().Len() != 2 {
		t.Errorf("minimal = %d, want 2", a.Minimal().Len())
	}
}
