// Package graph provides the directed-graph machinery shared by the
// dependency optimizer: topological ordering, cycle detection, bitset
// reachability and transitive closure/reduction over DAGs.
//
// Nodes are dense integer ids handed out by AddNode; callers keep their
// own mapping to domain objects (activity names, Petri-net places, …).
// The unconditional transitive reduction implemented here is the fast
// path of the paper's minimal-dependency-set algorithm (Definition 6):
// for a DAG without conditional constraints the minimal set is exactly
// the unique transitive reduction.
package graph

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

// Digraph is a mutable directed graph over dense integer nodes.
type Digraph struct {
	n    int
	succ [][]int
	pred [][]int
	// edgeSet deduplicates edges: key = u*stride + v once n is known is
	// not stable while growing, so use a map keyed by the pair.
	edges map[[2]int]bool
}

// New returns an empty graph with capacity hint n.
func New(n int) *Digraph {
	return &Digraph{
		succ:  make([][]int, 0, n),
		pred:  make([][]int, 0, n),
		edges: make(map[[2]int]bool, 4*n),
	}
}

// AddNode appends a fresh node and returns its id.
func (g *Digraph) AddNode() int {
	id := g.n
	g.n++
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// Len returns the number of nodes.
func (g *Digraph) Len() int { return g.n }

// AddEdge inserts the edge u→v if absent. It reports whether the edge
// was newly added. Self-loops are rejected with a panic: the dependency
// sets this package serves are irreflexive by construction, so a
// self-loop is always a caller bug.
func (g *Digraph) AddEdge(u, v int) bool {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on node %d", u))
	}
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	key := [2]int{u, v}
	if g.edges[key] {
		return false
	}
	g.edges[key] = true
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
	return true
}

// RemoveEdge deletes u→v if present and reports whether it existed.
func (g *Digraph) RemoveEdge(u, v int) bool {
	key := [2]int{u, v}
	if !g.edges[key] {
		return false
	}
	delete(g.edges, key)
	g.succ[u] = removeOne(g.succ[u], v)
	g.pred[v] = removeOne(g.pred[v], u)
	return true
}

func removeOne(s []int, x int) []int {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// HasEdge reports whether u→v is present.
func (g *Digraph) HasEdge(u, v int) bool { return g.edges[[2]int{u, v}] }

// Succ returns the successor list of u (not a copy; do not mutate).
func (g *Digraph) Succ(u int) []int { return g.succ[u] }

// Pred returns the predecessor list of u (not a copy; do not mutate).
func (g *Digraph) Pred(u int) []int { return g.pred[u] }

// Edges returns all edges in deterministic (u, then v) order.
func (g *Digraph) Edges() [][2]int {
	out := make([][2]int, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// NumEdges returns the edge count.
func (g *Digraph) NumEdges() int { return len(g.edges) }

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := New(g.n)
	for i := 0; i < g.n; i++ {
		c.AddNode()
	}
	for e := range g.edges {
		c.AddEdge(e[0], e[1])
	}
	return c
}

// ErrCycle is wrapped by TopoSort when the graph is cyclic.
var ErrCycle = errors.New("graph: cycle detected")

// TopoSort returns a topological order of the nodes, or an error
// wrapping ErrCycle (with one witness cycle rendered) if the graph is
// cyclic. Ties are broken by node id so the order is deterministic.
func (g *Digraph) TopoSort() ([]int, error) {
	indeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = len(g.pred[v])
	}
	// Min-heap by id for determinism; sizes are modest, a sorted slice
	// scan is fine.
	var ready []int
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(ready) > 0 {
		min := 0
		for i := range ready {
			if ready[i] < ready[min] {
				min = i
			}
		}
		u := ready[min]
		ready = append(ready[:min], ready[min+1:]...)
		order = append(order, u)
		for _, v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if len(order) != g.n {
		return nil, fmt.Errorf("%w: %v", ErrCycle, g.FindCycle())
	}
	return order, nil
}

// FindCycle returns one directed cycle as a node sequence (first node
// repeated at the end), or nil if the graph is acyclic.
func (g *Digraph) FindCycle() []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, g.n)
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range g.succ[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a back edge u→v: unwind u..v.
				cycle = []int{v}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				cycle = append(cycle, v)
				// Reverse to path order v…u v.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < g.n; u++ {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}

// SCCs returns the strongly connected components of the graph in
// reverse topological order (Tarjan's algorithm, iterative). Singleton
// components without a self-edge are trivial; the others are exactly
// the cycles a diagnostic should report.
func (g *Digraph) SCCs() [][]int {
	const undef = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = undef
	}
	var stack []int
	var out [][]int
	next := 0

	type frame struct {
		v  int
		ci int // next child index
	}
	for root := 0; root < g.n; root++ {
		if index[root] != undef {
			continue
		}
		work := []frame{{v: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.ci == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ci < len(g.succ[v]) {
				w := g.succ[v][f.ci]
				f.ci++
				if index[w] == undef {
					work = append(work, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v finished.
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				out = append(out, comp)
			}
		}
	}
	return out
}

// NontrivialSCCs returns only components that contain a cycle: size
// greater than one (self-loops are rejected at AddEdge).
func (g *Digraph) NontrivialSCCs() [][]int {
	var out [][]int
	for _, c := range g.SCCs() {
		if len(c) > 1 {
			out = append(out, c)
		}
	}
	return out
}

// Bitset is a fixed-size set of node ids.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set marks bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear unmarks bit i.
func (b Bitset) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether bit i is set.
func (b Bitset) Has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// UnionWith ors other into b.
func (b Bitset) UnionWith(other Bitset) {
	for i := range b {
		b[i] |= other[i]
	}
}

// Intersects reports whether b and other share any set bit. The
// minimizer's speculative-commit protocol uses it as the affected-pair
// interference test: two candidate frontiers interfere only when both
// their source sets and their target sets intersect.
func (b Bitset) Intersects(other Bitset) bool {
	n := len(b)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if b[i]&other[i] != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone copies the bitset.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// Closure computes the transitive closure of a DAG as one bitset of
// reachable nodes per source (excluding the source itself unless it is
// on a cycle, which TopoSort has already ruled out). It returns an
// error if the graph is cyclic.
func (g *Digraph) Closure() ([]Bitset, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	reach := make([]Bitset, g.n)
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		r := NewBitset(g.n)
		for _, v := range g.succ[u] {
			r.Set(v)
			r.UnionWith(reach[v])
		}
		reach[u] = r
	}
	return reach, nil
}

// TransitiveReduction returns the unique transitive reduction of the
// DAG as a new graph plus the list of removed (redundant) edges in
// deterministic order. An edge u→v is redundant iff v is reachable
// from some other successor of u.
func (g *Digraph) TransitiveReduction() (*Digraph, [][2]int, error) {
	reach, err := g.Closure()
	if err != nil {
		return nil, nil, err
	}
	red := New(g.n)
	for i := 0; i < g.n; i++ {
		red.AddNode()
	}
	var removed [][2]int
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		redundant := false
		for _, w := range g.succ[u] {
			if w != v && reach[w].Has(v) {
				redundant = true
				break
			}
		}
		if redundant {
			removed = append(removed, e)
		} else {
			red.AddEdge(u, v)
		}
	}
	return red, removed, nil
}

// Reachable reports whether dst is reachable from src by a nonempty
// path, using a plain DFS (no closure precomputation). Useful for
// one-off queries on mutable graphs.
func (g *Digraph) Reachable(src, dst int) bool {
	seen := NewBitset(g.n)
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.succ[u] {
			if v == dst {
				return true
			}
			if !seen.Has(v) {
				seen.Set(v)
				stack = append(stack, v)
			}
		}
	}
	return false
}

// Sources returns all nodes with no predecessors, ascending.
func (g *Digraph) Sources() []int {
	var out []int
	for v := 0; v < g.n; v++ {
		if len(g.pred[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Sinks returns all nodes with no successors, ascending.
func (g *Digraph) Sinks() []int {
	var out []int
	for v := 0; v < g.n; v++ {
		if len(g.succ[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// LongestPathLengths returns, for a DAG, the length (in edges) of the
// longest path ending at each node. This is the critical-path metric
// used by the scheduling benches: the makespan lower bound of a
// constraint set under unit-cost activities is 1+max(LongestPath).
func (g *Digraph) LongestPathLengths() ([]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	depth := make([]int, g.n)
	for _, u := range order {
		for _, v := range g.succ[u] {
			if depth[u]+1 > depth[v] {
				depth[v] = depth[u] + 1
			}
		}
	}
	return depth, nil
}

// AntichainWidth returns the size of the largest set of pairwise
// incomparable nodes under reachability, computed greedily by layer
// (exact for layered DAGs produced by the workload generators, a lower
// bound in general). It is the peak-parallelism metric reported by the
// concurrency benches.
func (g *Digraph) AntichainWidth() (int, error) {
	depth, err := g.LongestPathLengths()
	if err != nil {
		return 0, err
	}
	counts := map[int]int{}
	best := 0
	for _, d := range depth {
		counts[d]++
		if counts[d] > best {
			best = counts[d]
		}
	}
	return best, nil
}
