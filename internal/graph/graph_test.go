package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// chain builds 0→1→…→n-1.
func chain(n int) *Digraph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// randomDAG builds a DAG where every edge goes from a lower to a
// higher id, with the given edge probability.
func randomDAG(r *rand.Rand, n int, p float64) *Digraph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestAddEdgeDedup(t *testing.T) {
	g := chain(3)
	if g.AddEdge(0, 1) {
		t.Error("duplicate edge reported as new")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := chain(3)
	if !g.RemoveEdge(0, 1) {
		t.Error("RemoveEdge(0,1) = false")
	}
	if g.RemoveEdge(0, 1) {
		t.Error("double remove reported true")
	}
	if g.HasEdge(0, 1) {
		t.Error("edge still present after removal")
	}
	if len(g.Succ(0)) != 0 || len(g.Pred(1)) != 0 {
		t.Error("adjacency lists not updated")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on self-loop")
		}
	}()
	g := chain(2)
	g.AddEdge(1, 1)
}

func TestTopoSortChain(t *testing.T) {
	g := chain(5)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want identity", order)
		}
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode()
	}
	g.AddEdge(3, 1)
	g.AddEdge(2, 1)
	a, _ := g.TopoSort()
	b, _ := g.TopoSort()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic topo order: %v vs %v", a, b)
		}
	}
	// 0 has no deps and lowest id: must come first.
	if a[0] != 0 {
		t.Errorf("order = %v, want node 0 first", a)
	}
}

func TestCycleDetection(t *testing.T) {
	g := chain(4)
	g.AddEdge(3, 1)
	if _, err := g.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Fatalf("TopoSort err = %v, want ErrCycle", err)
	}
	cyc := g.FindCycle()
	if len(cyc) < 3 {
		t.Fatalf("FindCycle = %v", cyc)
	}
	if cyc[0] != cyc[len(cyc)-1] {
		t.Errorf("cycle not closed: %v", cyc)
	}
	// Each consecutive pair must be an edge.
	for i := 0; i+1 < len(cyc); i++ {
		if !g.HasEdge(cyc[i], cyc[i+1]) {
			t.Errorf("cycle step %d→%d is not an edge", cyc[i], cyc[i+1])
		}
	}
}

func TestFindCycleNilOnDAG(t *testing.T) {
	if c := chain(10).FindCycle(); c != nil {
		t.Errorf("FindCycle on DAG = %v", c)
	}
}

func TestClosureChain(t *testing.T) {
	g := chain(4)
	reach, err := g.Closure()
	if err != nil {
		t.Fatal(err)
	}
	if !reach[0].Has(3) || !reach[0].Has(1) {
		t.Error("closure of head misses tail")
	}
	if reach[3].Count() != 0 {
		t.Error("sink has nonempty closure")
	}
	if reach[0].Count() != 3 {
		t.Errorf("closure(0) size = %d, want 3", reach[0].Count())
	}
}

func TestClosureDiamond(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode()
	}
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	reach, err := g.Closure()
	if err != nil {
		t.Fatal(err)
	}
	if reach[0].Count() != 3 {
		t.Errorf("closure(0) = %d nodes, want 3", reach[0].Count())
	}
}

func TestTransitiveReductionDiamondPlusShortcut(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode()
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 3) // redundant
	g.AddEdge(0, 2) // redundant
	red, removed, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if red.NumEdges() != 3 {
		t.Errorf("reduced edges = %d, want 3", red.NumEdges())
	}
	if len(removed) != 2 {
		t.Errorf("removed = %v, want 2 edges", removed)
	}
}

func TestReachable(t *testing.T) {
	g := chain(5)
	if !g.Reachable(0, 4) {
		t.Error("0 should reach 4")
	}
	if g.Reachable(4, 0) {
		t.Error("4 should not reach 0")
	}
	if g.Reachable(2, 2) {
		t.Error("node should not reach itself on a chain (nonempty path)")
	}
}

func TestSourcesSinks(t *testing.T) {
	g := New(5)
	for i := 0; i < 5; i++ {
		g.AddNode()
	}
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(2, 4)
	if got := g.Sources(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("Sinks = %v", got)
	}
}

func TestLongestPathLengths(t *testing.T) {
	g := New(5)
	for i := 0; i < 5; i++ {
		g.AddNode()
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	g.AddEdge(2, 4)
	depth, err := g.LongestPathLengths()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 1, 3}
	for i := range want {
		if depth[i] != want[i] {
			t.Errorf("depth[%d] = %d, want %d", i, depth[i], want[i])
		}
	}
}

func TestAntichainWidth(t *testing.T) {
	// Two parallel chains of length 3 → width 2.
	g := New(6)
	for i := 0; i < 6; i++ {
		g.AddNode()
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	w, err := g.AntichainWidth()
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Errorf("width = %d, want 2", w)
	}
}

func TestSCCsOnDAGAllTrivial(t *testing.T) {
	g := chain(5)
	comps := g.SCCs()
	if len(comps) != 5 {
		t.Fatalf("components = %d, want 5", len(comps))
	}
	if nt := g.NontrivialSCCs(); len(nt) != 0 {
		t.Errorf("nontrivial components on a DAG: %v", nt)
	}
}

func TestSCCsFindCycles(t *testing.T) {
	// Two disjoint cycles plus a bridge node.
	g := New(7)
	for i := 0; i < 7; i++ {
		g.AddNode()
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0) // cycle {0,1,2}
	g.AddEdge(2, 3) // bridge
	g.AddEdge(4, 5)
	g.AddEdge(5, 4) // cycle {4,5}
	g.AddEdge(3, 6)
	nt := g.NontrivialSCCs()
	if len(nt) != 2 {
		t.Fatalf("nontrivial = %v, want 2 components", nt)
	}
	found3, found2 := false, false
	for _, c := range nt {
		switch len(c) {
		case 3:
			if c[0] == 0 && c[1] == 1 && c[2] == 2 {
				found3 = true
			}
		case 2:
			if c[0] == 4 && c[1] == 5 {
				found2 = true
			}
		}
	}
	if !found3 || !found2 {
		t.Errorf("components = %v", nt)
	}
}

func TestQuickSCCsAgreeWithFindCycle(t *testing.T) {
	// A graph has a nontrivial SCC iff FindCycle finds a cycle.
	cfg := &quick.Config{MaxCount: 80}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddNode()
		}
		for e := 0; e < n*2; e++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		hasCycle := g.FindCycle() != nil
		hasSCC := len(g.NontrivialSCCs()) > 0
		return hasCycle == hasSCC
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBitsetOps(t *testing.T) {
	b := NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Errorf("Count = %d, want 3", b.Count())
	}
	if !b.Has(64) || b.Has(63) {
		t.Error("Has wrong")
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 2 {
		t.Error("Clear failed")
	}
	c := b.Clone()
	c.Set(5)
	if b.Has(5) {
		t.Error("Clone aliases storage")
	}
	other := NewBitset(130)
	other.Set(70)
	b.UnionWith(other)
	if !b.Has(70) {
		t.Error("UnionWith missed bit")
	}
}

func TestBitsetIntersects(t *testing.T) {
	a := NewBitset(200)
	b := NewBitset(200)
	if a.Intersects(b) {
		t.Error("two empty bitsets intersect")
	}
	a.Set(3)
	a.Set(130)
	b.Set(131)
	if a.Intersects(b) {
		t.Error("disjoint bitsets intersect")
	}
	if !a.Intersects(a) {
		t.Error("nonempty bitset does not intersect itself")
	}
	b.Set(130)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("shared bit 130 not detected (word 2)")
	}
	// Different lengths: only the common prefix of words is compared.
	short := NewBitset(64)
	short.Set(3)
	if !a.Intersects(short) || !short.Intersects(a) {
		t.Error("shared bit 3 not detected across lengths")
	}
	short.Clear(3)
	if a.Intersects(short) || short.Intersects(a) {
		t.Error("length mismatch fabricated an intersection")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := chain(4)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("Clone shares edge state")
	}
	c.AddNode()
	if g.Len() != 4 {
		t.Error("Clone shares node count")
	}
}

// Property: transitive reduction preserves the closure and is minimal
// (removing any kept edge changes reachability).
func TestQuickReductionCorrectAndMinimal(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(14)
		g := randomDAG(r, n, 0.35)
		origReach, err := g.Closure()
		if err != nil {
			return false
		}
		red, removed, err := g.TransitiveReduction()
		if err != nil {
			return false
		}
		if red.NumEdges()+len(removed) != g.NumEdges() {
			return false
		}
		newReach, err := red.Closure()
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			for i := range origReach[v] {
				if origReach[v][i] != newReach[v][i] {
					return false
				}
			}
		}
		// Minimality: dropping any kept edge must lose reachability.
		for _, e := range red.Edges() {
			red.RemoveEdge(e[0], e[1])
			if red.Reachable(e[0], e[1]) {
				return false
			}
			red.AddEdge(e[0], e[1])
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: topo order respects every edge.
func TestQuickTopoRespectsEdges(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(20), 0.3)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make([]int, g.Len())
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e[0]] >= pos[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkClosure256(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	g := randomDAG(r, 256, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Closure(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransitiveReduction256(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	g := randomDAG(r, 256, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.TransitiveReduction(); err != nil {
			b.Fatal(err)
		}
	}
}
