// Seed-replayable chaos property suite. Each test sweeps a set of
// seeds (default 12); a failing seed is replayed in isolation with
//
//	go test ./internal/chaos -run TestChaos -chaos.seed=<N>
//
// The properties are invariants, not golden outputs: whatever faults a
// seed injects, the engine must yield a Def.-5-valid partial trace and
// leak no goroutines, the minimizer must produce a bit-identical
// minimal set when uncancelled, the bus must deliver exactly one
// callback per invocation and drain cleanly through a fault storm, and
// dscweaverd must stay live and drain cleanly mid-storm.
package chaos_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dscweaver/internal/chaos"
	"dscweaver/internal/chaos/leak"
	"dscweaver/internal/core"
	"dscweaver/internal/obs"
	"dscweaver/internal/petri"
	"dscweaver/internal/schedule"
	"dscweaver/internal/server"
	"dscweaver/internal/services"
	"dscweaver/internal/weave"
	"dscweaver/internal/workload"
)

var chaosSeed = flag.Int64("chaos.seed", 0, "replay a single chaos seed (0 = sweep the default seeds)")

// seeds returns the sweep: twelve distinct seeds, or just the one
// passed via -chaos.seed for replaying a failure.
func seeds() []int64 {
	if *chaosSeed != 0 {
		return []int64{*chaosSeed}
	}
	out := make([]int64, 12)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

func forEachSeed(t *testing.T, f func(t *testing.T, seed int64)) {
	for _, seed := range seeds() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { f(t, seed) })
	}
}

// TestInjectorDeterministicBySeed: the injection pattern is a pure
// function of (seed, key, attempt) — two injectors with the same seed
// agree on every decision, and the probabilities are actually honored
// (all three fault classes fire somewhere across keys).
func TestInjectorDeterministicBySeed(t *testing.T) {
	cfg := chaos.Config{Seed: 7, PermanentP: 0.1, TransientP: 0.3, LatencyP: 0.2, MaxLatency: time.Microsecond}
	a, b := chaos.New(cfg), chaos.New(cfg)
	execsFor := func(in *chaos.Injector) map[core.ActivityID]schedule.Executor {
		execs := map[core.ActivityID]schedule.Executor{}
		for i := 0; i < 40; i++ {
			execs[core.ActivityID(fmt.Sprintf("a%d", i))] = func(context.Context, *core.Activity, *schedule.Vars) (schedule.Outcome, error) {
				return schedule.Outcome{}, nil
			}
		}
		return in.WrapExecutors(execs)
	}
	ea, eb := execsFor(a), execsFor(b)
	for id := range ea {
		for attempt := 0; attempt < 4; attempt++ {
			_, errA := ea[id](context.Background(), nil, nil)
			_, errB := eb[id](context.Background(), nil, nil)
			if (errA == nil) != (errB == nil) ||
				(errA != nil && errA.Error() != errB.Error()) {
				t.Fatalf("%s attempt %d: same seed disagrees: %v vs %v", id, attempt, errA, errB)
			}
		}
	}
	st := a.Stats()
	if st.Permanents == 0 || st.Transients == 0 || st.Latencies == 0 {
		t.Errorf("160 draws exercised no %+v class — probabilities miswired", st)
	}
	if st != b.Stats() {
		t.Errorf("stats diverge for the same seed: %+v vs %+v", st, b.Stats())
	}
}

// chaosRetry is the per-activity policy the engine suite runs under:
// enough attempts to ride out most transient streaks, tight enough to
// finish fast.
var chaosRetry = schedule.RetryPolicy{
	MaxAttempts: 5,
	Backoff:     200 * time.Microsecond,
	Multiplier:  2,
	MaxBackoff:  2 * time.Millisecond,
	Jitter:      true,
	PerAttempt:  5 * time.Second,
	MaxElapsed:  time.Second,
}

// TestChaosEngineInvariants: under seeded executor chaos (latency
// spikes, transient and permanent faults, possibly an external
// cancellation), every run — success, fault or cancel — must yield a
// trace that validates against the constraint set, attempt counts must
// respect the retry policy, a permanent fault must end its activity's
// attempts immediately, and no engine goroutine may outlive the run.
func TestChaosEngineInvariants(t *testing.T) {
	forEachSeed(t, func(t *testing.T, seed int64) {
		leak.Check(t)
		w := workload.Layered(4, 4, 0.3, seed).WithDecisions(2)
		sc, err := w.Constraints()
		if err != nil {
			t.Fatal(err)
		}
		inj := chaos.New(chaos.Config{
			Seed:       seed,
			PermanentP: 0.04, TransientP: 0.25,
			LatencyP: 0.3, MaxLatency: 2 * time.Millisecond,
			CancelP: 0.3, CancelWithin: 20 * time.Millisecond,
		})
		base := schedule.NoopExecutors(w.Proc, 0, func(core.ActivityID) string { return "T" })

		// Count executor attempts per activity, outside the injection, so
		// the counts include chaos-failed attempts.
		var mu sync.Mutex
		calls := map[core.ActivityID]int{}
		execs := map[core.ActivityID]schedule.Executor{}
		for id, inner := range inj.WrapExecutors(base) {
			id, inner := id, inner
			execs[id] = func(ctx context.Context, act *core.Activity, vars *schedule.Vars) (schedule.Outcome, error) {
				mu.Lock()
				calls[id]++
				mu.Unlock()
				return inner(ctx, act, vars)
			}
		}
		retry := map[core.ActivityID]schedule.RetryPolicy{}
		for _, act := range w.Proc.Activities() {
			retry[act.ID] = chaosRetry
		}
		eng, err := schedule.New(sc, execs, schedule.Options{
			Timeout:   30 * time.Second,
			Retry:     retry,
			RetrySeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if delay, ok := inj.CancelPlan("engine"); ok {
			cctx, cancel := context.WithCancel(ctx)
			defer cancel()
			timer := time.AfterFunc(delay, cancel)
			defer timer.Stop()
			ctx = cctx
		}
		tr, runErr := eng.Run(ctx)

		// Def.-5 validity of the (possibly partial) trace, whatever the
		// run outcome was.
		if err := tr.Validate(sc, nil); err != nil {
			t.Errorf("seed %d: trace invalid after runErr=%v: %v\n%s", seed, runErr, err, tr)
		}
		// Attempt-count discipline: never beyond MaxAttempts, and a
		// permanent chaos fault ends its activity's attempts on the spot
		// — even a mid-flight cancel cannot excuse an attempt after one.
		mu.Lock()
		defer mu.Unlock()
		for id, n := range calls {
			if n > chaosRetry.MaxAttempts {
				t.Errorf("seed %d: %s attempted %d times, policy caps at %d", seed, id, n, chaosRetry.MaxAttempts)
			}
			if at, ok := inj.PermanentAttempt("exec/" + string(id)); ok && n != at+1 {
				t.Errorf("seed %d: %s hit a permanent fault at attempt %d but made %d attempts, want %d",
					seed, id, at, n, at+1)
			}
		}
	})
}

// TestChaosMinimizeBitIdentical: stage-boundary latency chaos (no
// faults, no cancellation) must not change a single bit of the weave
// outcome — same minimal set, same removal order, same equivalence-
// check count as the chaos-free run.
func TestChaosMinimizeBitIdentical(t *testing.T) {
	forEachSeed(t, func(t *testing.T, seed int64) {
		run := func(hook func(context.Context, string) error) *weave.Result {
			t.Helper()
			w := workload.Layered(3, 4, 0.3, seed).WithShortcuts(4).WithDecisions(2)
			res, err := weave.Run(context.Background(),
				weave.Input{Parsed: &weave.Parsed{Proc: w.Proc, Deps: w.Deps}},
				weave.Options{StageHook: hook})
			if err != nil {
				t.Fatalf("seed %d: weave: %v", seed, err)
			}
			return res
		}
		base := run(nil)
		inj := chaos.New(chaos.Config{Seed: seed, LatencyP: 0.6, MaxLatency: time.Millisecond})
		jittered := run(inj.StageHook())

		if got, want := jittered.Minimize.Minimal.String(), base.Minimize.Minimal.String(); got != want {
			t.Errorf("seed %d: minimal set differs under stage latency:\nbase:\n%s\nchaos:\n%s", seed, want, got)
		}
		removed := func(r *weave.Result) string {
			var b bytes.Buffer
			for _, c := range r.Minimize.Removed {
				fmt.Fprintln(&b, c.String())
			}
			return b.String()
		}
		if removed(jittered) != removed(base) {
			t.Errorf("seed %d: removal order differs under stage latency", seed)
		}
		if jittered.Minimize.EquivalenceChecks != base.Minimize.EquivalenceChecks {
			t.Errorf("seed %d: EquivalenceChecks = %d, chaos-free run = %d",
				seed, jittered.Minimize.EquivalenceChecks, base.Minimize.EquivalenceChecks)
		}
	})
}

// TestChaosValidateParallelCancel: a seeded cancellation landing
// mid-exploration must abort the parallel soundness frontier cleanly —
// the run either completes with the correct verdict or fails with
// context.Canceled, and no worker goroutine survives either way. The
// net is wide and decision-free and the reduction and fast path are
// forced off, so the full graph takes long enough that nearly every
// seed's cancel fires while the frontier workers are live.
func TestChaosValidateParallelCancel(t *testing.T) {
	w := workload.Layered(3, 8, 0.3, 11)
	sc, err := w.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Desugar(); err != nil {
		t.Fatal(err)
	}
	asc, err := core.TranslateServices(sc)
	if err != nil {
		t.Fatal(err)
	}
	guards, err := core.DeriveGuards(asc)
	if err != nil {
		t.Fatal(err)
	}
	forEachSeed(t, func(t *testing.T, seed int64) {
		leak.Check(t)
		inj := chaos.New(chaos.Config{Seed: seed, CancelP: 1, CancelWithin: 50 * time.Millisecond})
		ctx := context.Background()
		if delay, ok := inj.CancelPlan("petri/parallel"); ok {
			cctx, cancel := context.WithCancel(ctx)
			defer cancel()
			timer := time.AfterFunc(delay, cancel)
			defer timer.Stop()
			ctx = cctx
		}
		rep, err := petri.ValidateOpt(ctx, asc, guards, petri.ExploreOptions{
			Parallel:     4,
			NoFastPath:   true,
			ReductionOff: true,
		})
		switch {
		case err == nil:
			if !rep.Sound {
				t.Errorf("seed %d: wide layered workload reported unsound: %+v", seed, rep)
			}
		case errors.Is(err, context.Canceled):
			// Aborted mid-frontier; leak.Check verifies the workers died.
		default:
			t.Fatalf("seed %d: unexpected error: %v", seed, err)
		}
	})
}

// TestChaosBusFaultStorm: a concurrent invocation storm against
// breaker-guarded chaotic services. Every accepted invocation must
// yield exactly one callback (success, fault, or breaker fast-fail),
// Close must drain cleanly, fast-fails imply a recorded trip, and no
// bus goroutine may survive.
func TestChaosBusFaultStorm(t *testing.T) {
	const (
		nServices = 4
		nClients  = 8
		perClient = 25
	)
	forEachSeed(t, func(t *testing.T, seed int64) {
		leak.Check(t)
		inj := chaos.New(chaos.Config{
			Seed:       seed,
			PermanentP: 0.1, TransientP: 0.25,
			LatencyP: 0.2, MaxLatency: time.Millisecond,
		})
		reg := obs.NewRegistry()
		bus := services.NewBus(0).Observe(reg, nil).
			WithBreaker(services.BreakerConfig{Threshold: 3, Cooldown: 2 * time.Millisecond})
		for i := 0; i < nServices; i++ {
			cfg := services.Config{
				Name:  fmt.Sprintf("S%d", i),
				Ports: []string{"1"},
				Handle: func(c *services.Call) ([]services.Emit, error) {
					return []services.Emit{{Tag: "t", Payload: c.Payload}}, nil
				},
			}
			if err := bus.Register(inj.WrapService(cfg)); err != nil {
				t.Fatal(err)
			}
		}
		drained := make(chan int, 1)
		go func() {
			n := 0
			for range bus.Inbox() {
				n++
			}
			drained <- n
		}()
		var wg sync.WaitGroup
		for c := 0; c < nClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					svc := fmt.Sprintf("S%d", (c+i)%nServices)
					if err := bus.Invoke(svc, "1", i); err != nil {
						t.Errorf("seed %d: invoke %s: %v", seed, svc, err)
					}
				}
			}(c)
		}
		wg.Wait()
		bus.Close()

		total := nClients * perClient
		if got := <-drained; got != total {
			t.Errorf("seed %d: %d callbacks drained for %d invocations", seed, got, total)
		}
		delivered, faults := bus.Stats()
		if delivered != total {
			t.Errorf("seed %d: delivered %d, want %d", seed, delivered, total)
		}
		st := inj.Stats()
		if st.Transients+st.Permanents > int64(faults) {
			t.Errorf("seed %d: injected %d faults but bus recorded only %d",
				seed, st.Transients+st.Permanents, faults)
		}
		for i := 0; i < nServices; i++ {
			name := fmt.Sprintf("S%d", i)
			fastFails := reg.Counter("bus_breaker_fastfail_total", "service", name, "port", "1").Value()
			trips := reg.Counter("bus_breaker_trips_total", "service", name, "port", "1").Value()
			if fastFails > 0 && trips == 0 {
				t.Errorf("seed %d: %s fast-failed %d times without a recorded trip", seed, name, fastFails)
			}
		}
	})
}

func purchasingSource(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "dscl", "testdata", "purchasing.dscl"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestChaosServerFaultStorm: dscweaverd under a concurrent storm of
// weave and simulate requests — some carrying injected service faults
// and an armed breaker, some cancelled mid-flight per the seed's plan
// — must keep /healthz green throughout, answer every surviving
// request with a well-defined status, drain cleanly on Shutdown, and
// leak nothing.
func TestChaosServerFaultStorm(t *testing.T) {
	forEachSeed(t, func(t *testing.T, seed int64) {
		leak.Check(t)
		t.Cleanup(http.DefaultClient.CloseIdleConnections)
		inj := chaos.New(chaos.Config{Seed: seed, CancelP: 0.3, CancelWithin: 10 * time.Millisecond})
		s, err := server.New(server.Config{
			WeaveConcurrency: 2,
			QueueWait:        5 * time.Second,
			RequestTimeout:   20 * time.Second,
			WeaveParallelism: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		src := purchasingSource(t)

		requests := []map[string]any{
			{"source": src},
			{"source": src},
			{"source": src, "branches": map[string]string{"if_au": "T"}},
			{"source": src, "branches": map[string]string{"if_au": "F"}},
			{"source": src, "branches": map[string]string{"if_au": "T"},
				"services": map[string]any{"Credit": map[string]any{"fail_on": map[string]string{"1": "chaos down"}}},
				"breaker":  map[string]any{"threshold": 1, "cooldown_ms": 60000}},
			{"source": src, "branches": map[string]string{"if_au": "T"},
				"services": map[string]any{"Credit": map[string]any{"fail_first": map[string]int{"1": 1}}}},
		}
		stop := make(chan struct{})
		healthErr := make(chan error, 1)
		go func() {
			defer close(healthErr)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/healthz")
				if err == nil {
					code := resp.StatusCode
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if code != http.StatusOK {
						healthErr <- fmt.Errorf("healthz %d mid-storm", code)
						return
					}
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()

		var wg sync.WaitGroup
		for i, q := range requests {
			wg.Add(1)
			go func(i int, q map[string]any) {
				defer wg.Done()
				route := "/v1/simulate"
				if i < 2 {
					route = "/v1/weave"
				}
				body, err := json.Marshal(q)
				if err != nil {
					t.Error(err)
					return
				}
				ctx := context.Background()
				if delay, ok := inj.CancelPlan(fmt.Sprintf("req/%d", i)); ok {
					cctx, cancel := context.WithCancel(ctx)
					defer cancel()
					timer := time.AfterFunc(delay, cancel)
					defer timer.Stop()
					ctx = cctx
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+route, bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					return // the seed's plan cancelled this request
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
				default:
					t.Errorf("seed %d: request %d returned %d", seed, i, resp.StatusCode)
				}
			}(i, q)
		}
		wg.Wait()
		close(stop)
		if err, ok := <-healthErr; ok && err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if err := s.Shutdown(); err != nil {
			t.Errorf("seed %d: Shutdown after storm: %v", seed, err)
		}
	})
}
