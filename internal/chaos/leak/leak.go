// Package leak provides a goroutine-leak check for test teardown. It
// deliberately depends on nothing but the standard library so every
// layer — core, schedule, services, server, chaos — can use it without
// import cycles.
package leak

import (
	"runtime"
	"testing"
	"time"
)

// grace bounds how long Check waits for stragglers after the test
// body: engine watchdogs, bus drains and HTTP keep-alive closers all
// wind down in milliseconds; anything alive past this is a leak.
const grace = 3 * time.Second

// Check snapshots the goroutine count and registers a cleanup that
// fails the test unless the count returns to the baseline within the
// grace window. Call it first in the test body, before anything the
// test spawns. The count-based check tolerates goroutines that existed
// before the test (other parallel tests, the runtime's own workers);
// it only flags a net increase that persists.
func Check(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		for {
			now := runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}
