// Rotating event-log chaos: the obs.RotatingJSONL sink writing
// through the injector's faulting file layer. The contract under
// disk faults is drop-and-continue, never latch-and-die: each faulted
// write loses exactly that one event (counted by Dropped and the
// log_dropped_total metric), every event whose write succeeded is on
// disk, and a daemon logging through the sink stays fully live.
package chaos_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dscweaver/internal/chaos"
	"dscweaver/internal/chaos/leak"
	"dscweaver/internal/obs"
	"dscweaver/internal/server"
)

// validLogLines counts the lines across the active file and every
// rotated generation that still parse as JSON. A torn half-line (and
// the one event a successful write glued onto it) parses as garbage
// and is excluded.
func validLogLines(t *testing.T, path string, maxFiles int) int {
	t.Helper()
	n := 0
	names := []string{path}
	for i := 1; i <= maxFiles; i++ {
		names = append(names, fmt.Sprintf("%s.%d", path, i))
	}
	for _, name := range names {
		f, err := os.Open(name)
		if err != nil {
			continue
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			if json.Valid(sc.Bytes()) {
				n++
			}
		}
		f.Close()
	}
	return n
}

func TestChaosRotatingLog(t *testing.T) {
	const total = 400
	sweptFaults := int64(0)
	forEachSeed(t, func(t *testing.T, seed int64) {
		inj := chaos.New(chaos.Config{
			Seed:            seed,
			DiskErrorP:      0.08,
			DiskShortWriteP: 0.05,
		})
		reg := obs.NewRegistry()
		path := filepath.Join(t.TempDir(), "events.jsonl")
		// MaxBytes small enough that rotation happens dozens of times,
		// MaxFiles large enough that retention never deletes a
		// generation — every non-dropped event must be accountable.
		r, err := obs.NewRotatingJSONL(path, obs.RotateOptions{
			MaxBytes: 2 << 10,
			MaxFiles: 64,
			OpenFile: inj.OpenLogFile(),
			Metrics:  reg,
		})
		if err != nil {
			t.Fatalf("seed %d: faulty disk must not fail sink construction: %v", seed, err)
		}
		for i := 0; i < total; i++ {
			r.Emit(obs.Event{Layer: obs.LayerEngine, Kind: obs.EvActivityStart,
				Activity: fmt.Sprintf("a_%03d", i), Seq: i + 1})
		}
		st := inj.Stats()
		faults := st.DiskErrors + st.DiskShortWrites
		sweptFaults += faults
		dropped := r.Dropped()

		// Drop-and-continue, exactly: one faulted write loses one event
		// and nothing else. A latched sink would instead lose every
		// event after the first fault, breaking the equality (and the
		// on-disk line count below).
		if dropped != faults {
			t.Errorf("seed %d: Dropped() = %d, want %d (one per injected fault)", seed, dropped, faults)
		}
		if got := reg.Counter("log_dropped_total").Value(); got != dropped {
			t.Errorf("seed %d: log_dropped_total = %d, want %d", seed, got, dropped)
		}

		// Everything that was not dropped or glued to a torn fragment is
		// on disk as clean JSONL.
		got := validLogLines(t, path, 64)
		min := total - int(dropped) - int(st.DiskShortWrites)
		if got < min {
			t.Errorf("seed %d: %d valid lines on disk, want >= %d (total %d, dropped %d, torn %d)",
				seed, got, min, total, dropped, st.DiskShortWrites)
		}

		// The first error still surfaces at Close for operators.
		if err := r.Close(); (err != nil) != (faults > 0) {
			t.Errorf("seed %d: Close() = %v with %d faults", seed, err, faults)
		}
	})
	if len(seeds()) > 1 && sweptFaults == 0 {
		t.Error("sweep injected no log faults — probabilities too low to test anything")
	}
}

// TestChaosRotatingLogServerLive routes a daemon's rotating event log
// through the faulting layer: requests must keep succeeding, /healthz
// must stay green, and the dropped events must be visible on /metrics.
func TestChaosRotatingLogServerLive(t *testing.T) {
	leak.Check(t)
	inj := chaos.New(chaos.Config{Seed: 1, DiskErrorP: 0.08, DiskShortWriteP: 0.05})
	s, err := server.New(server.Config{
		EventsPath:  filepath.Join(t.TempDir(), "events.jsonl"),
		LogMaxBytes: 4 << 10,
		LogOpenFile: inj.OpenLogFile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 6; i++ {
		body := fmt.Sprintf(`{"source": %q}`, purchasingSource(t))
		resp, err := http.Post(ts.URL+"/v1/weave", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("weave %d = %d, want 200 (log faults must not fail requests)", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d after log faults, want 200", resp.StatusCode)
	}

	st := inj.Stats()
	faults := st.DiskErrors + st.DiskShortWrites
	if got := s.Registry().Counter("log_dropped_total").Value(); got != faults {
		t.Errorf("log_dropped_total = %d, want %d (injected faults)", got, faults)
	}
	if faults == 0 {
		t.Skip("seed 1 injected no log faults at these probabilities")
	}
	if err := s.Shutdown(); err == nil {
		t.Error("Shutdown must surface the first log fault")
	}
}
