// Package chaos is a deterministic, seed-replayable fault injector
// for the execution layers: it wraps activity executors, service bus
// handlers and weave-pipeline stages with latency spikes, transient
// faults (services.ErrTransient — the retry loop's food) and permanent
// faults (services.ErrPermanent — exactly one attempt), plus a seeded
// plan for external run cancellation.
//
// Determinism: every injection decision is a pure function of (seed,
// operation key, attempt index), computed by hashing rather than drawn
// from a shared PRNG stream. Concurrent goroutines therefore cannot
// perturb each other's draws — the fault pattern for a seed is the
// same regardless of scheduling interleavings, which is what makes a
// failing chaos seed replayable (go test -chaos.seed=N).
package chaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"dscweaver/internal/core"
	"dscweaver/internal/schedule"
	"dscweaver/internal/services"
)

// Config tunes one injector. Probabilities are per operation (one
// executor attempt, one bus invocation, one pipeline stage); zero
// disables that fault class.
type Config struct {
	// Seed drives every decision; two injectors with the same seed and
	// config inject identically.
	Seed int64
	// PermanentP is the probability of a permanent fault (wrapped with
	// services.ErrPermanent): the operation fails and must not be
	// retried.
	PermanentP float64
	// TransientP is the probability of a transient fault (wrapped with
	// services.ErrTransient): a retry with the same key and the next
	// attempt index draws fresh.
	TransientP float64
	// LatencyP is the probability of a latency spike before the
	// operation, uniform in (0, MaxLatency].
	LatencyP   float64
	MaxLatency time.Duration
	// CancelP is the probability that CancelPlan schedules an external
	// cancellation for a run, uniform in (0, CancelWithin].
	CancelP      float64
	CancelWithin time.Duration
	// DiskErrorP / DiskShortWriteP / DiskSyncFaultP tune the disk-fault
	// file layer returned by OpenFile (see disk.go): per-write outright
	// failures, per-write torn writes (half the bytes land), and
	// per-sync fsync faults.
	DiskErrorP      float64
	DiskShortWriteP float64
	DiskSyncFaultP  float64
	// DiskHealAfter, when > 0, stops injecting disk faults once that
	// many have fired (summed across the three classes): the device
	// "recovers". The store's background re-probe heals from exactly
	// this scenario, which is what the heal tests drive.
	DiskHealAfter int64
}

// Stats counts what the injector actually did, for assertions that a
// chaos run exercised the paths it claims to.
type Stats struct {
	Latencies       int64
	Transients      int64
	Permanents      int64
	DiskErrors      int64
	DiskShortWrites int64
	DiskSyncFaults  int64
}

// Injector implements Config. Safe for concurrent use.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	attempts map[string]int // per-key attempt counter
	permAt   map[string]int // first attempt that drew a permanent fault

	latencies       atomic.Int64
	transients      atomic.Int64
	permanents      atomic.Int64
	diskErrors      atomic.Int64
	diskShortWrites atomic.Int64
	diskSyncFaults  atomic.Int64
}

// New builds an injector for one seed.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, attempts: map[string]int{}, permAt: map[string]int{}}
}

// Seed returns the injector's seed (tests print it on failure).
func (in *Injector) Seed() int64 { return in.cfg.Seed }

// Stats snapshots the injection counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Latencies:       in.latencies.Load(),
		Transients:      in.transients.Load(),
		Permanents:      in.permanents.Load(),
		DiskErrors:      in.diskErrors.Load(),
		DiskShortWrites: in.diskShortWrites.Load(),
		DiskSyncFaults:  in.diskSyncFaults.Load(),
	}
}

// draw returns a uniform [0, 1) float deterministic in (seed, domain,
// key, attempt). Distinct domains decorrelate the fault draw from the
// latency draw for the same operation.
func (in *Injector) draw(domain, key string, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s\x00%s\x00%d", in.cfg.Seed, domain, key, attempt)
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

// next claims the attempt index for one more operation on key.
func (in *Injector) next(key string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.attempts[key]
	in.attempts[key] = n + 1
	return n
}

// inject performs the seeded decision for one operation: an optional
// latency spike (interruptible by ctx), then nothing, a transient
// fault, or a permanent fault.
func (in *Injector) inject(ctx context.Context, key string) error {
	attempt := in.next(key)
	if in.cfg.LatencyP > 0 && in.cfg.MaxLatency > 0 &&
		in.draw("latency", key, attempt) < in.cfg.LatencyP {
		d := time.Duration(in.draw("latency_dur", key, attempt) * float64(in.cfg.MaxLatency))
		in.latencies.Add(1)
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	switch u := in.draw("fault", key, attempt); {
	case u < in.cfg.PermanentP:
		in.permanents.Add(1)
		in.mu.Lock()
		if _, ok := in.permAt[key]; !ok {
			in.permAt[key] = attempt
		}
		in.mu.Unlock()
		return services.Permanent(fmt.Errorf("chaos: permanent fault at %s attempt %d (seed %d)", key, attempt, in.cfg.Seed))
	case u < in.cfg.PermanentP+in.cfg.TransientP:
		in.transients.Add(1)
		return fmt.Errorf("chaos: %s attempt %d (seed %d): %w", key, attempt, in.cfg.Seed, services.ErrTransient)
	}
	return nil
}

// WrapExecutors returns executors that run the seeded injection before
// delegating: a latency spike delays the activity, an injected fault
// fails the attempt (and, for transient faults under a retry policy,
// the next attempt draws independently).
func (in *Injector) WrapExecutors(execs map[core.ActivityID]schedule.Executor) map[core.ActivityID]schedule.Executor {
	out := make(map[core.ActivityID]schedule.Executor, len(execs))
	for id, inner := range execs {
		id, inner := id, inner
		out[id] = func(ctx context.Context, act *core.Activity, vars *schedule.Vars) (schedule.Outcome, error) {
			if err := in.inject(ctx, "exec/"+string(id)); err != nil {
				return schedule.Outcome{}, err
			}
			return inner(ctx, act, vars)
		}
	}
	return out
}

// WrapService returns cfg with its handler wrapped in the seeded
// injection, keyed per (service, port) — the same key the bus's
// circuit breaker trips on. Handler latency spikes run inside the
// service goroutine, modeling a slow backend.
func (in *Injector) WrapService(cfg services.Config) services.Config {
	inner := cfg.Handle
	name := cfg.Name
	cfg.Handle = func(c *services.Call) ([]services.Emit, error) {
		if err := in.inject(context.Background(), "svc/"+name+"."+c.Port); err != nil {
			return nil, err
		}
		if inner == nil {
			return nil, nil
		}
		return inner(c)
	}
	return cfg
}

// WrapTransport wraps a transport's send path with the seeded
// injection, keyed per (service, port) like WrapService. Latency
// spikes delay the invoking goroutine — on the enactment fabric this
// models network delay on the cross-node note path — while fault
// draws fail the Invoke itself, modeling an unreachable peer.
func (in *Injector) WrapTransport(t services.Transport) services.Transport {
	return &chaosTransport{in: in, t: t}
}

type chaosTransport struct {
	in *Injector
	t  services.Transport
}

func (c *chaosTransport) Invoke(serviceName, port string, payload any) error {
	if err := c.in.inject(context.Background(), "transport/"+serviceName+"."+port); err != nil {
		return err
	}
	return c.t.Invoke(serviceName, port, payload)
}

func (c *chaosTransport) Inbox() <-chan services.Callback { return c.t.Inbox() }
func (c *chaosTransport) Close()                          { c.t.Close() }

// StageHook returns a weave.Options.StageHook injecting latency and
// faults at pipeline stage boundaries, keyed per stage name.
func (in *Injector) StageHook() func(ctx context.Context, stage string) error {
	return func(ctx context.Context, stage string) error {
		return in.inject(ctx, "stage/"+stage)
	}
}

// MinimizeHook returns a core.MinimizeOptions.CandidateHook injecting
// latency and faults into the minimizer's candidate engine, keyed per
// constraint — every evaluation attempt of one candidate (sequential,
// speculative, or a re-evaluation after an invalidation) advances that
// key's attempt index. Latency spikes land inside speculation windows
// and skew which worker claims which candidate; fault draws abort the
// run. Latency-only configs must leave the minimal set bit-identical,
// which is what the chaos property tests pin.
func (in *Injector) MinimizeHook() core.CandidateHook {
	return func(ctx context.Context, c core.Constraint) error {
		return in.inject(ctx, "minimize/"+c.String())
	}
}

// PermanentAttempt reports the first attempt index at which the
// injector actually returned a permanent fault for key. Tests use it
// to assert "permanent fault → no attempt past it": whatever retries
// a policy allows, the attempt count for key must be exactly the
// returned index plus one.
func (in *Injector) PermanentAttempt(key string) (int, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	at, ok := in.permAt[key]
	return at, ok
}

// CancelPlan decides, deterministically for this seed, whether the
// operation named key should be externally cancelled and after how
// long. Callers arm a timer with the returned delay against the run's
// context.
func (in *Injector) CancelPlan(key string) (time.Duration, bool) {
	if in.cfg.CancelP <= 0 || in.cfg.CancelWithin <= 0 {
		return 0, false
	}
	if in.draw("cancel", key, 0) >= in.cfg.CancelP {
		return 0, false
	}
	frac := in.draw("cancel_at", key, 0)
	return time.Duration(frac * float64(in.cfg.CancelWithin)), true
}
