// Store degrade re-probe chaos: a dscweaverd whose disk fails every
// write until the injector's heal threshold, then recovers. The store
// must latch degraded (memory-only) without failing requests, the
// background re-probe must clear the latch in place — no restart —
// and the runs that finished during the fault window must backfill
// from the in-memory ring into the healed store.
package chaos_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dscweaver/internal/chaos"
	"dscweaver/internal/chaos/leak"
	"dscweaver/internal/server"
	"dscweaver/internal/store"
)

func TestStoreReprobeHealsAfterFaults(t *testing.T) {
	leak.Check(t)
	inj := chaos.New(chaos.Config{
		Seed:          7,
		DiskErrorP:    1, // every write fails...
		DiskHealAfter: 2, // ...until two faults have fired, then the disk recovers
	})
	dir := t.TempDir()
	s, err := server.New(server.Config{
		StoreDir:      dir,
		StoreOpenFile: inj.OpenFile(nil),
		StoreReprobe:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	weave := func() {
		t.Helper()
		body := fmt.Sprintf(`{"source": %q}`, purchasingSource(t))
		resp, err := http.Post(ts.URL+"/v1/weave", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("weave = %d, want 200 (disk faults must not fail requests)", resp.StatusCode)
		}
	}

	// The first run's finish flush hits the dead disk: degrade latches,
	// the request still succeeds, the run lives only in the ring.
	weave()
	reg := s.Registry()
	if reg.Gauge("store_degraded").Value() != 1 {
		t.Fatal("store not degraded after a weave against a dead disk")
	}

	// The re-probe loop must heal without a restart once the injector's
	// fault budget is spent.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Gauge("store_degraded").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("store still degraded after %d reprobes; injector stats %+v",
				reg.Counter("store_reprobe_total").Value(), inj.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := reg.Counter("store_reprobe_total").Value(); got < 1 {
		t.Fatalf("store_reprobe_total = %d after a heal, want >= 1", got)
	}

	// The ring run that finished while degraded backfills into the
	// healed store.
	for reg.Counter("server_store_backfill_runs_total").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("memory-only run never backfilled into the healed store")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// New runs persist directly again.
	weave()

	// Both runs — the backfilled one and the post-heal one — survive a
	// real restart, proving they reached the disk.
	ts.Close()
	if err := s.Shutdown(); err != nil {
		t.Fatalf("healed server must shut down cleanly: %v", err)
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, id := range []string{"weave-000001", "weave-000002"} {
		m, ok := st.Get(id)
		if !ok {
			t.Errorf("run %s missing from the healed store after restart", id)
			continue
		}
		if !m.Done || !m.OK {
			t.Errorf("run %s not recorded finished-ok: %+v", id, m)
		}
		if evs, err := st.Events(id); err != nil || len(evs) == 0 {
			t.Errorf("run %s replay after restart: %d events, err %v", id, len(evs), err)
		}
	}
}
