// The network-chaos property suite: seeded fault plans on the
// enactment fabric — drops, lost responses, duplicates, delays,
// partitions that heal (or never do) and a peer crash — with a proven
// recovery envelope. Every seeded plan must end one of exactly two
// ways within the enactment timeout plus slack:
//
//   - a Def.-5-valid merged trace whose EdgeMessages equals the plan's
//     PredictedCrossEdges exactly (retransmits absorbed by the
//     (from, seq) idempotency cache, never double-counted), or
//   - a typed failure — a PartitionedPeerError naming the unreachable
//     peer, or a context deadline/cancellation — never a hang, never a
//     goroutine leak, never a duplicate note application.
//
// A failing seed replays with go test ./internal/chaos -chaos.seed=N.
package chaos_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	stdnet "net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dscweaver/internal/chaos"
	"dscweaver/internal/chaos/leak"
	"dscweaver/internal/core"
	"dscweaver/internal/decentral"
	"dscweaver/internal/enact"
	"dscweaver/internal/obs"
	"dscweaver/internal/schedule"
	"dscweaver/internal/server"
	"dscweaver/internal/weave"
	"dscweaver/internal/workload"
)

// newChaosServer boots a dscweaverd with the given fabric wrap and
// tears it down (listener, then maintenance loop and pools) in
// cleanup, so leak.Check holds.
func newChaosServer(t *testing.T, wrap func(string, http.RoundTripper) http.RoundTripper) *httptest.Server {
	t.Helper()
	s, err := server.New(server.Config{WeaveParallelism: 2, FabricWrap: wrap})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return ts
}

// postEnact posts one enactment and decodes the response. Run
// failures are in-band (Error set); only transport/encode failures
// return an error, so this is safe to call off the test goroutine.
func postEnact(url string, req *server.EnactRequest) (*server.EnactResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url+"/v1/enact", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("enact: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	var er server.EnactResponse
	if err := json.Unmarshal(data, &er); err != nil {
		return nil, err
	}
	return &er, nil
}

// scrapeCounterSum reads /metrics and sums every sample of one
// counter family across its label sets.
func scrapeCounterSum(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	total := 0.0
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		fields := strings.Fields(line)
		if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil {
			total += v
		}
	}
	return total
}

// typedFailure reports whether an in-band enactment error is one of
// the envelope's allowed shapes: a named partitioned peer, the engine
// deadline, or the cancellation cascade a failed peer triggers.
func typedFailure(msg string) bool {
	for _, want := range []string{"partitioned", "context deadline exceeded", "context canceled"} {
		if strings.Contains(msg, want) {
			return true
		}
	}
	return false
}

// TestChaosNetEnvelope is the recovery-envelope property: a 12-seed
// sweep of mixed fault plans (budgeted drops and losses, probabilistic
// duplicates and delays, partitions healing at 400ms on every fourth
// seed, never healing on every fifth) over a real two-process
// enactment. Whatever the seed injects, the run must end inside the
// envelope — valid-and-exact or typed — with no goroutine left behind.
func TestChaosNetEnvelope(t *testing.T) {
	forEachSeed(t, func(t *testing.T, seed int64) {
		leak.Check(t)
		t.Cleanup(http.DefaultClient.CloseIdleConnections)

		var f chaos.LinkFault
		switch seed % 3 {
		case 0:
			f.DropN, f.DupP = 2, 0.4
		case 1:
			f.LoseN, f.DelayP, f.MaxDelay = 2, 0.4, 15*time.Millisecond
		default:
			f.DropN, f.LoseN = 1, 1
			f.DupP, f.DelayP, f.MaxDelay = 0.25, 0.25, 10*time.Millisecond
		}
		if seed%4 == 0 {
			f.Partition = 400 * time.Millisecond
		}
		neverHeals := seed%5 == 0
		if neverHeals {
			f.Partition = -time.Second
		}
		net := chaos.NewNet(chaos.NetConfig{
			Seed:  seed,
			Links: map[chaos.Link]chaos.LinkFault{{From: "*", To: "*"}: f},
		})
		coord := newChaosServer(t, net.RoundTripper)
		peer := newChaosServer(t, net.RoundTripper)

		req := &server.EnactRequest{
			SimulateRequest: server.SimulateRequest{
				WeaveRequest: server.WeaveRequest{Source: purchasingSource(t)},
				Branches:     map[string]string{"if_au": "T"},
				TimeoutMS:    4000,
			},
			Peers:   []string{peer.URL},
			SelfURL: coord.URL,
		}
		start := time.Now()
		er, err := postEnact(coord.URL, req)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if elapsed > 12*time.Second {
			t.Errorf("seed %d: enactment took %v — outside the 4s timeout envelope", seed, elapsed)
		}

		st := net.Stats()
		t.Logf("seed %d: plan %s elapsed=%v stats=%+v error=%q",
			seed, net.Plan(), elapsed.Round(time.Millisecond), st, er.Error)
		if er.Error == "" {
			if !er.Valid {
				t.Errorf("seed %d: completed run failed Def. 5 validation", seed)
			}
			if er.EdgeMessages != er.PredictedCrossEdges {
				t.Errorf("seed %d: %d edge messages, plan predicts %d — retransmits leaked into the count",
					seed, er.EdgeMessages, er.PredictedCrossEdges)
			}
			seen := map[string]bool{}
			for _, id := range er.Executed {
				if seen[id] {
					t.Errorf("seed %d: activity %s executed twice — duplicate note applied", seed, id)
				}
				seen[id] = true
			}
			// A lost response forces a retransmit; a completed run proves
			// the receiver absorbed it via the (from, seq) cache — and the
			// metric must show it.
			if st.Lost > 0 {
				absorbed := scrapeCounterSum(t, coord.URL, "transport_retransmit_total") +
					scrapeCounterSum(t, peer.URL, "transport_retransmit_total")
				if absorbed == 0 {
					t.Errorf("seed %d: %d responses lost but transport_retransmit_total is 0", seed, st.Lost)
				}
			}
		} else if !typedFailure(er.Error) {
			t.Errorf("seed %d: failure is not typed (want partitioned peer or deadline): %s", seed, er.Error)
		}
		if neverHeals {
			if er.Error == "" {
				t.Errorf("seed %d: run completed across a never-healing partition (stats %+v)", seed, st)
			} else if !strings.Contains(er.Error, "partitioned") {
				t.Errorf("seed %d: want a PartitionedPeerError naming the peer, got: %s", seed, er.Error)
			}
		}
	})
}

// TestChaosNetPartitionHeal sweeps the heal time of a full partition
// (plus two lost responses per link, so recovery exercises the
// retransmit path) against a fixed 4s enactment timeout whose fabric
// retry budget is 3s. Healing inside the budget must complete with
// exact edge accounting; never healing must fail with the typed
// PartitionedPeerError inside the envelope. The logged rows are the
// EXPERIMENTS.md partition-heal table.
func TestChaosNetPartitionHeal(t *testing.T) {
	cases := []struct {
		name   string
		heal   time.Duration
		wantOK bool
	}{
		{"heal=300ms", 300 * time.Millisecond, true},
		{"heal=1200ms", 1200 * time.Millisecond, true},
		{"never", -time.Second, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			leak.Check(t)
			t.Cleanup(http.DefaultClient.CloseIdleConnections)
			net := chaos.NewNet(chaos.NetConfig{
				Seed: 1,
				Links: map[chaos.Link]chaos.LinkFault{
					{From: "*", To: "*"}: {Partition: tc.heal, LoseN: 2},
				},
			})
			coord := newChaosServer(t, net.RoundTripper)
			peer := newChaosServer(t, net.RoundTripper)
			req := &server.EnactRequest{
				SimulateRequest: server.SimulateRequest{
					WeaveRequest: server.WeaveRequest{Source: purchasingSource(t)},
					Branches:     map[string]string{"if_au": "T"},
					TimeoutMS:    4000,
				},
				Peers:   []string{peer.URL},
				SelfURL: coord.URL,
			}
			start := time.Now()
			er, err := postEnact(coord.URL, req)
			elapsed := time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			st := net.Stats()
			outcome := "completed"
			if er.Error != "" {
				outcome = "failed"
			}
			absorbed := scrapeCounterSum(t, coord.URL, "transport_retransmit_total") +
				scrapeCounterSum(t, peer.URL, "transport_retransmit_total")
			t.Logf("heal=%v outcome=%s elapsed=%v refused_sends=%d healed_links=%d retransmits_absorbed=%.0f edge_msgs=%d/%d",
				tc.heal, outcome, elapsed.Round(time.Millisecond),
				st.Partitioned, st.Healed, absorbed, er.EdgeMessages, er.PredictedCrossEdges)

			if tc.wantOK {
				if er.Error != "" {
					t.Fatalf("heal %v inside the 3s budget failed: %s", tc.heal, er.Error)
				}
				if !er.Valid {
					t.Error("healed run failed Def. 5 validation")
				}
				if er.EdgeMessages != er.PredictedCrossEdges {
					t.Errorf("healed run sent %d edge messages, plan predicts %d",
						er.EdgeMessages, er.PredictedCrossEdges)
				}
				if st.Partitioned == 0 {
					t.Error("partition refused no sends — the plan was never exercised")
				}
				if st.Healed == 0 {
					t.Error("no link recorded a heal")
				}
			} else {
				if er.Error == "" {
					t.Fatalf("never-healing partition completed (stats %+v)", st)
				}
				if !strings.Contains(er.Error, "partitioned") {
					t.Errorf("want a typed PartitionedPeerError, got: %s", er.Error)
				}
				if elapsed > 12*time.Second {
					t.Errorf("typed failure took %v — outside the timeout envelope", elapsed)
				}
			}
		})
	}
}

// memFabric is a direct-dispatch fabric for wrapping with net.Fabric:
// Send invokes the receiver inline, so every duplicate and delayed
// delivery the chaos layer injects lands on the board exactly as sent.
type memFabric struct {
	mu   sync.Mutex
	recv map[string]func(enact.Note)
}

func (m *memFabric) Register(host string, deliver func(enact.Note)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.recv == nil {
		m.recv = map[string]func(enact.Note){}
	}
	m.recv[host] = deliver
	return nil
}

func (m *memFabric) Send(host string, n enact.Note) error {
	m.mu.Lock()
	d := m.recv[host]
	m.mu.Unlock()
	if d == nil {
		return fmt.Errorf("memFabric: no receiver for %s", host)
	}
	d(n)
	return nil
}

func (m *memFabric) Close() {}

// TestChaosNetFabricDupReorder proves exactly-once note application at
// the board layer: every cross-partition note duplicated (DupP=1) and
// a quarter of them delayed out of order, yet the merged trace stays
// Def.-5-valid, EdgeMessages still equals the plan's CrossEdges (the
// counter charges intent, not deliveries), and the engines' idempotent
// applyRemote visibly absorbed the copies.
func TestChaosNetFabricDupReorder(t *testing.T) {
	leak.Check(t)
	w := workload.Layered(3, 3, 0.35, 7).WithDecisions(1).WithServices(2)
	res, err := weave.Run(context.Background(),
		weave.Input{Parsed: &weave.Parsed{Proc: w.Proc, Deps: w.Deps}}, weave.Options{})
	if err != nil {
		t.Fatal(err)
	}
	minimal := res.Minimize.Minimal
	plan, err := decentral.Place(minimal, decentral.Pin(w.Proc))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Hosts) < 2 {
		t.Fatal("placement produced one host; pick a seed with pinned services")
	}
	net := chaos.NewNet(chaos.NetConfig{
		Seed: 7,
		Links: map[chaos.Link]chaos.LinkFault{
			{From: "*", To: "*"}: {DupP: 1, DelayP: 0.25, MaxDelay: 5 * time.Millisecond},
		},
	})
	fab := net.Fabric(&memFabric{})
	defer fab.Close()
	reg := obs.NewRegistry()
	out, err := enact.Run(context.Background(), enact.Options{
		Plan:    plan,
		Set:     minimal,
		Guards:  res.Guards,
		Execs:   schedule.NoopExecutors(w.Proc, 0, func(core.ActivityID) string { return "T" }),
		Timeout: 30 * time.Second,
		Metrics: reg,
		Fabric:  fab,
	})
	if err != nil {
		t.Fatalf("enact under dup/reorder chaos: %v", err)
	}
	if out.Trace == nil {
		t.Fatal("no merged trace")
	}
	if err := out.Trace.Validate(res.Translated, res.Guards); err != nil {
		t.Errorf("merged trace fails Def. 5 under duplication: %v\n%s", err, out.Trace)
	}
	if out.Stats.EdgeMessages != out.Plan.CrossEdges {
		t.Errorf("EdgeMessages = %d, plan predicts %d — duplicates inflated the count",
			out.Stats.EdgeMessages, out.Plan.CrossEdges)
	}
	st := net.Stats()
	if st.Duplicated == 0 {
		t.Fatalf("DupP=1 injected no duplicates (stats %+v) — the fault layer is miswired", st)
	}
	if dups := reg.Counter("schedule_remote_dup_total").Value(); dups < st.Duplicated {
		t.Errorf("injected %d duplicate deliveries but boards absorbed only %d — a copy was applied twice",
			st.Duplicated, dups)
	}
}

// TestChaosNetPeerCrashRestart kills a peer mid-enactment — its
// listener and every live connection die — and requires the
// coordinator to fail typed within the envelope, not hang. A fresh
// peer on the same address then completes a clean enactment with exact
// edge accounting: the fabric recovers by construction, no state
// carries over.
func TestChaosNetPeerCrashRestart(t *testing.T) {
	leak.Check(t)
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	coord := newChaosServer(t, nil)

	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	peer1, err := server.New(server.Config{WeaveParallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := &http.Server{Handler: peer1.Handler()}
	go hs1.Serve(ln)
	t.Cleanup(func() {
		hs1.Close()
		if err := peer1.Shutdown(); err != nil {
			t.Errorf("crashed peer shutdown: %v", err)
		}
	})

	req := &server.EnactRequest{
		SimulateRequest: server.SimulateRequest{
			WeaveRequest: server.WeaveRequest{Source: purchasingSource(t)},
			Branches:     map[string]string{"if_au": "T"},
			TimeoutMS:    3000,
			WorkUS:       100000, // ~100ms per activity: the crash lands mid-run
		},
		Peers:   []string{"http://" + addr},
		SelfURL: coord.URL,
	}
	type outcome struct {
		er  *server.EnactResponse
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		er, err := postEnact(coord.URL, req)
		ch <- outcome{er, err}
	}()
	time.Sleep(300 * time.Millisecond)
	hs1.Close() // crash: the listener and every in-flight connection die

	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("coordinator request failed out of band: %v", o.err)
		}
		if o.er.Error == "" {
			t.Error("enactment reported success across a crashed peer")
		} else {
			t.Logf("crash outcome: %s", o.er.Error)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("enactment hung past the envelope after the peer crash")
	}

	// Restart on the same address; the next enactment must be clean.
	var ln2 stdnet.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln2, err = stdnet.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	peer2, err := server.New(server.Config{WeaveParallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := &http.Server{Handler: peer2.Handler()}
	go hs2.Serve(ln2)
	t.Cleanup(func() {
		hs2.Close()
		if err := peer2.Shutdown(); err != nil {
			t.Errorf("restarted peer shutdown: %v", err)
		}
	})

	clean := *req
	clean.WorkUS = 0
	clean.TimeoutMS = 8000
	er, err := postEnact(coord.URL, &clean)
	if err != nil {
		t.Fatal(err)
	}
	if er.Error != "" {
		t.Fatalf("enactment against the restarted peer failed: %s", er.Error)
	}
	if !er.Valid {
		t.Error("post-restart trace failed Def. 5 validation")
	}
	if er.EdgeMessages != er.PredictedCrossEdges {
		t.Errorf("post-restart run sent %d edge messages, plan predicts %d",
			er.EdgeMessages, er.PredictedCrossEdges)
	}
}

// TestNetSpecParse pins the -chaos-net CLI syntax.
func TestNetSpecParse(t *testing.T) {
	n, err := chaos.ParseNetSpec("*>*:partition=1500ms;lose=2,a>b:drop=1;dup=0.5;delayp=0.3;delay=20ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	if n.Seed() != 7 {
		t.Errorf("Seed() = %d, want 7", n.Seed())
	}
	plan := n.Plan()
	for _, want := range []string{"*>*:", "a>b:", "partition=1.5s", "lose=2", "drop=1", "dup=0.5", "delayp=0.3", "delay=20ms"} {
		if !strings.Contains(plan, want) {
			t.Errorf("Plan() = %q, missing %q", plan, want)
		}
	}
	for _, bad := range []string{
		"",              // no plans at all
		"nolink",        // missing fault list
		"a>b",           // ditto
		">b:drop=1",     // empty from
		"a>:drop=1",     // empty to
		"a>b:bogus=1",   // unknown fault
		"a>b:drop=x",    // unparsable value
		"a>b:partition", // fault without value
	} {
		if _, err := chaos.ParseNetSpec(bad, 1); err == nil {
			t.Errorf("ParseNetSpec(%q) accepted a malformed spec", bad)
		}
	}
}
