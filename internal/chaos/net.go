// Network chaos: a seeded, deterministic fault layer for the
// enactment fabric, injected at the transport seam. Two wrappers share
// one fault plan keyed by directed (from, to) host link:
//
//   - RoundTripper wraps HTTPTransport.Client for multi-process
//     enactments: drops fail the POST before it leaves (the sender's
//     retry loop classifies them transient), losses deliver the frame
//     but discard the response (forcing a retransmit the receiver's
//     (from, seq) idempotency cache must absorb), duplicates re-send a
//     delivered frame verbatim, delays stall the link, and a partition
//     blackholes it from the first send until the window elapses —
//     never, when the window is negative.
//   - Fabric wraps an enact.Fabric for in-process enactments: drops
//     lose the note outright (the run must fail by engine timeout, not
//     hang), duplicates deliver it twice (the board's idempotent
//     applyRemote must absorb the copy), delays deliver it late and
//     out of order, and a partitioned link fails sends with the typed
//     enact.PartitionedPeerError.
//
// Determinism follows the injector's rule: every decision is a pure
// function of (seed, domain, link, attempt), so a failing seed replays
// identically regardless of goroutine interleaving. Budgeted faults
// (drop-N, lose-N) consume per-link counters under a lock, which keeps
// the *count* exact even when the draw order races.
package chaos

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dscweaver/internal/enact"
)

// Link names one directed fabric link. "*" on either side is a
// wildcard; resolution prefers exact over wildcard, from-side over
// to-side.
type Link struct {
	From, To string
}

func (l Link) String() string { return l.From + ">" + l.To }

// LinkFault is the fault plan for one link. The zero value injects
// nothing.
type LinkFault struct {
	// DropN fails the first N sends outright: the frame never reaches
	// the peer and the sender sees a transient network fault.
	DropN int
	// LoseN delivers the frame but discards the first N responses: the
	// sender retransmits into the receiver's idempotency cache.
	LoseN int
	// DupP re-sends a delivered frame with this probability; the
	// duplicate's response is discarded. The receiver must treat the
	// copy as a replay, not a second invocation.
	DupP float64
	// DelayP delays a send with this probability, uniform in
	// (0, MaxDelay] — the reordering knob for concurrent notes.
	DelayP   float64
	MaxDelay time.Duration
	// Partition blackholes the link starting at its first send: every
	// send inside the window fails, the first send after it heals the
	// link. Zero = no partition; negative = never heals.
	Partition time.Duration
}

func (f LinkFault) active() bool {
	return f.DropN > 0 || f.LoseN > 0 || f.DupP > 0 ||
		(f.DelayP > 0 && f.MaxDelay > 0) || f.Partition != 0
}

// NetConfig is one seeded network-fault plan.
type NetConfig struct {
	Seed  int64
	Links map[Link]LinkFault
}

// NetStats counts what the layer actually injected, so tests can
// assert a chaos run exercised the faults its plan claims.
type NetStats struct {
	Dropped     int64 // sends failed before reaching the peer
	Lost        int64 // responses discarded after delivery
	Duplicated  int64 // delivered frames re-sent
	Delayed     int64 // sends stalled
	Partitioned int64 // sends refused inside a partition window
	Healed      int64 // links whose partition window elapsed
}

// linkState is the mutable per-link budget: how many drop/lose tokens
// remain and when the partition window armed.
type linkState struct {
	attempts  int
	dropsLeft int
	losesLeft int
	armed     bool
	partFrom  time.Time
	healed    bool
}

// Net implements one NetConfig. Safe for concurrent use; one instance
// may wrap any number of transports and fabrics so a plan spans every
// link of a run.
type Net struct {
	cfg NetConfig

	mu    sync.Mutex
	links map[Link]*linkState

	async sync.WaitGroup // delayed fabric deliveries in flight

	dropped     atomic.Int64
	lost        atomic.Int64
	duplicated  atomic.Int64
	delayed     atomic.Int64
	partitioned atomic.Int64
	healed      atomic.Int64
}

// NewNet builds the fault layer for one plan.
func NewNet(cfg NetConfig) *Net {
	return &Net{cfg: cfg, links: map[Link]*linkState{}}
}

// Seed returns the plan's seed (tests print it on failure).
func (n *Net) Seed() int64 { return n.cfg.Seed }

// Stats snapshots the injection counters.
func (n *Net) Stats() NetStats {
	return NetStats{
		Dropped:     n.dropped.Load(),
		Lost:        n.lost.Load(),
		Duplicated:  n.duplicated.Load(),
		Delayed:     n.delayed.Load(),
		Partitioned: n.partitioned.Load(),
		Healed:      n.healed.Load(),
	}
}

// resolve finds the fault plan for one directed link, most specific
// match first.
func (n *Net) resolve(from, to string) (LinkFault, bool) {
	for _, k := range []Link{
		{from, to}, {from, "*"}, {"*", to}, {"*", "*"},
	} {
		if f, ok := n.cfg.Links[k]; ok {
			return f, f.active()
		}
	}
	return LinkFault{}, false
}

// netDraw is the injector's determinism rule for the network layer: a
// uniform [0, 1) float that is a pure function of its inputs.
func netDraw(seed int64, domain string, l Link, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00net.%s\x00%s\x00%d", seed, domain, l, attempt)
	x := h.Sum64()
	// FNV-1a stirs a trailing byte into the low bits only, and the
	// [0, 1) scaling keeps the high 53 — without a finalizer every
	// attempt on a link would draw the same value. One splitmix64
	// round pushes the attempt counter through the whole word.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(uint64(1)<<53)
}

// verdict is one send's fate, decided under the link lock so budget
// counters stay exact.
type verdict struct {
	drop      bool // fail before the peer sees anything
	lose      bool // deliver, then discard the response
	dup       bool // deliver, then re-send
	partition bool // inside a partition window
	delay     time.Duration
}

// decide claims the next attempt on the link and resolves its fate.
func (n *Net) decide(from, to string) (verdict, bool) {
	f, ok := n.resolve(from, to)
	if !ok {
		return verdict{}, false
	}
	l := Link{From: from, To: to}
	now := time.Now()
	n.mu.Lock()
	st := n.links[l]
	if st == nil {
		st = &linkState{dropsLeft: f.DropN, losesLeft: f.LoseN}
		n.links[l] = st
	}
	attempt := st.attempts
	st.attempts++
	var v verdict
	if f.Partition != 0 {
		if !st.armed {
			st.armed = true
			st.partFrom = now
		}
		if f.Partition < 0 || now.Sub(st.partFrom) < f.Partition {
			v.partition = true
		} else if !st.healed {
			st.healed = true
			n.healed.Add(1)
		}
	}
	if !v.partition && st.dropsLeft > 0 {
		st.dropsLeft--
		v.drop = true
	}
	if !v.partition && !v.drop && st.losesLeft > 0 {
		st.losesLeft--
		v.lose = true
	}
	n.mu.Unlock()
	if v.partition {
		n.partitioned.Add(1)
		return v, true
	}
	if v.drop {
		n.dropped.Add(1)
		return v, true
	}
	if f.DelayP > 0 && f.MaxDelay > 0 && netDraw(n.cfg.Seed, "delay", l, attempt) < f.DelayP {
		v.delay = time.Duration(netDraw(n.cfg.Seed, "delay_dur", l, attempt) * float64(f.MaxDelay))
		if v.delay <= 0 {
			v.delay = time.Millisecond
		}
	}
	if !v.lose && f.DupP > 0 && netDraw(n.cfg.Seed, "dup", l, attempt) < f.DupP {
		v.dup = true
	}
	return v, true
}

// RoundTripper wraps an HTTP transport's round tripper with this
// plan's faults for every link from the named sender; the destination
// is the request's URL host. Pass the result via http.Client to
// services.HTTPConfig.Client (or server.Config.FabricWrap). Inner nil
// takes http.DefaultTransport.
func (n *Net) RoundTripper(from string, inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &netRoundTripper{net: n, from: from, inner: inner}
}

type netRoundTripper struct {
	net   *Net
	from  string
	inner http.RoundTripper
}

func (rt *netRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	v, ok := rt.net.decide(rt.from, req.URL.Host)
	if !ok {
		return rt.inner.RoundTrip(req)
	}
	seed := rt.net.cfg.Seed
	switch {
	case v.partition:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("chaos: link %s>%s partitioned (seed %d)", rt.from, req.URL.Host, seed)
	case v.drop:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("chaos: link %s>%s dropped send (seed %d)", rt.from, req.URL.Host, seed)
	}
	if v.delay > 0 {
		rt.net.delayed.Add(1)
		t := time.NewTimer(v.delay)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
	}
	// Duplication needs a replayable body; clone before the original
	// send consumes it.
	var dup *http.Request
	if v.dup && req.GetBody != nil {
		body, err := req.GetBody()
		if err == nil {
			dup = req.Clone(req.Context())
			dup.Body = body
		}
	}
	resp, err := rt.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if dup != nil {
		rt.net.duplicated.Add(1)
		if dresp, derr := rt.inner.RoundTrip(dup); derr == nil {
			io.Copy(io.Discard, io.LimitReader(dresp.Body, 1<<20))
			dresp.Body.Close()
		}
	}
	if v.lose {
		rt.net.lost.Add(1)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return nil, fmt.Errorf("chaos: link %s>%s lost response (seed %d)", rt.from, req.URL.Host, seed)
	}
	return resp, nil
}

// Fabric wraps an enact.Fabric with this plan's faults. The sending
// side of a link is the note's committing host, the receiving side the
// Send target. Close waits for delayed deliveries before closing the
// inner fabric, so a reordered note is late, never leaked.
func (n *Net) Fabric(inner enact.Fabric) enact.Fabric {
	return &netFabric{net: n, inner: inner}
}

type netFabric struct {
	net   *Net
	inner enact.Fabric
}

func (f *netFabric) Register(host string, deliver func(enact.Note)) error {
	return f.inner.Register(host, deliver)
}

func (f *netFabric) Send(host string, note enact.Note) error {
	v, ok := f.net.decide(note.Host, host)
	if !ok {
		return f.inner.Send(host, note)
	}
	switch {
	case v.partition:
		return &enact.PartitionedPeerError{Host: host,
			Err: fmt.Errorf("chaos: link %s>%s partitioned (seed %d)", note.Host, host, f.net.cfg.Seed)}
	case v.drop:
		// The note is gone; the gated engine must fail by its timeout,
		// not hang past it.
		return nil
	}
	if v.delay > 0 {
		f.net.delayed.Add(1)
		f.net.async.Add(1)
		go func() {
			defer f.net.async.Done()
			time.Sleep(v.delay)
			f.inner.Send(host, note)
		}()
		return nil
	}
	if err := f.inner.Send(host, note); err != nil {
		return err
	}
	if v.dup || v.lose {
		// Either fault makes the note arrive twice: a duplicate is an
		// extra delivery, a lost ack is a retransmit. The receiving
		// board's applyRemote must absorb the copy.
		f.net.duplicated.Add(1)
		return f.inner.Send(host, note)
	}
	return nil
}

func (f *netFabric) Close() {
	f.net.async.Wait()
	f.inner.Close()
}

// ParseNetSpec parses the -chaos-net CLI syntax into a plan:
//
//	spec  := plan ("," plan)*
//	plan  := from ">" to ":" fault (";" fault)*
//	fault := "drop=" N | "lose=" N | "dup=" P | "delayp=" P |
//	         "delay=" DUR | "partition=" DUR
//
// "*" wildcards either side of a link; a negative partition duration
// never heals. Example: '*>*:partition=1500ms;lose=2'.
func ParseNetSpec(spec string, seed int64) (*Net, error) {
	cfg := NetConfig{Seed: seed, Links: map[Link]LinkFault{}}
	for _, plan := range strings.Split(spec, ",") {
		plan = strings.TrimSpace(plan)
		if plan == "" {
			continue
		}
		link, faults, ok := strings.Cut(plan, ":")
		if !ok {
			return nil, fmt.Errorf("chaos net spec %q: missing ':' fault list", plan)
		}
		from, to, ok := strings.Cut(link, ">")
		if !ok || from == "" || to == "" {
			return nil, fmt.Errorf("chaos net spec %q: link must be from>to", plan)
		}
		var f LinkFault
		for _, fault := range strings.Split(faults, ";") {
			key, val, ok := strings.Cut(strings.TrimSpace(fault), "=")
			if !ok {
				return nil, fmt.Errorf("chaos net spec %q: fault %q must be key=value", plan, fault)
			}
			var err error
			switch key {
			case "drop":
				f.DropN, err = strconv.Atoi(val)
			case "lose":
				f.LoseN, err = strconv.Atoi(val)
			case "dup":
				f.DupP, err = strconv.ParseFloat(val, 64)
			case "delayp":
				f.DelayP, err = strconv.ParseFloat(val, 64)
			case "delay":
				f.MaxDelay, err = time.ParseDuration(val)
			case "partition":
				f.Partition, err = time.ParseDuration(val)
			default:
				return nil, fmt.Errorf("chaos net spec %q: unknown fault %q", plan, key)
			}
			if err != nil {
				return nil, fmt.Errorf("chaos net spec %q: %s: %w", plan, key, err)
			}
		}
		if f.DelayP > 0 && f.MaxDelay <= 0 {
			f.MaxDelay = 50 * time.Millisecond
		}
		cfg.Links[Link{From: from, To: to}] = f
	}
	if len(cfg.Links) == 0 {
		return nil, fmt.Errorf("chaos net spec %q: no link plans", spec)
	}
	return NewNet(cfg), nil
}

// Plan renders the config deterministically for logs.
func (n *Net) Plan() string {
	keys := make([]Link, 0, len(n.cfg.Links))
	for k := range n.cfg.Links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		f := n.cfg.Links[k]
		parts = append(parts, fmt.Sprintf("%s:drop=%d;lose=%d;dup=%g;delayp=%g;delay=%s;partition=%s",
			k, f.DropN, f.LoseN, f.DupP, f.DelayP, f.MaxDelay, f.Partition))
	}
	return strings.Join(parts, ",")
}
