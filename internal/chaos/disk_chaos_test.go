// Disk-fault chaos: dscweaverd with a persistent run store whose file
// layer injects seeded short writes, ENOSPC-style errors and fsync
// faults. Whatever a seed does to the disk, the daemon must stay live
// on /healthz, flip the store_degraded gauge (never crash) when a
// write fault lands, keep answering /v1/runs, and never serve a
// half-written event-log line. Replay one seed with
//
//	go test ./internal/chaos -run TestChaosDiskFaults -chaos.seed=<N>
package chaos_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dscweaver/internal/chaos"
	"dscweaver/internal/chaos/leak"
	"dscweaver/internal/server"
)

func TestChaosDiskFaults(t *testing.T) {
	const (
		nClients  = 4
		perClient = 6
	)
	src := purchasingSource(t)
	var sweepDegraded, sweepFaults int64
	forEachSeed(t, func(t *testing.T, seed int64) {
		leak.Check(t)
		inj := chaos.New(chaos.Config{
			Seed:            seed,
			DiskErrorP:      0.08,
			DiskShortWriteP: 0.08,
			DiskSyncFaultP:  0.25,
		})
		s, err := server.New(server.Config{
			StoreDir:          t.TempDir(),
			StoreSegmentBytes: 4 << 10, // rotate often: seals flush through the faulty layer
			StoreFsync:        true,    // run finishes sync, exposing fsync faults
			StoreOpenFile:     inj.OpenFile(nil),
			RunHistory:        4, // tiny ring: history answers depend on the store
		})
		if err != nil {
			t.Fatalf("seed %d: a faulty disk must not fail server boot: %v", seed, err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		healthz := func(when string) {
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				t.Fatalf("seed %d: healthz %s: %v", seed, when, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seed %d: healthz %s = %d, want 200", seed, when, resp.StatusCode)
			}
		}
		healthz("before storm")

		// Concurrent weave storm, each client polling liveness and the
		// run listing between writes.
		var wg sync.WaitGroup
		for c := 0; c < nClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					body := fmt.Sprintf(`{"source": %q}`, src)
					resp, err := http.Post(ts.URL+"/v1/weave", "application/json", strings.NewReader(body))
					if err != nil {
						t.Errorf("seed %d: weave: %v", seed, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("seed %d: weave = %d (disk faults must not fail requests)", seed, resp.StatusCode)
					}
					if resp, err := http.Get(ts.URL + "/v1/runs?limit=5"); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}(c)
		}
		wg.Wait()
		healthz("after storm")

		// Degradation accounting: a latched degrade requires at least one
		// injected fault, and every injected write error must be counted.
		reg := s.Registry()
		degraded := reg.Gauge("store_degraded").Value()
		writeErrs := reg.Counter("store_write_errors_total").Value()
		st := inj.Stats()
		injected := st.DiskErrors + st.DiskShortWrites + st.DiskSyncFaults
		if degraded != 0 && degraded != 1 {
			t.Errorf("seed %d: store_degraded = %d, want 0 or 1", seed, degraded)
		}
		if degraded == 1 && injected == 0 {
			t.Errorf("seed %d: store degraded without any injected fault", seed)
		}
		if degraded == 1 && writeErrs == 0 {
			t.Errorf("seed %d: store degraded but store_write_errors_total = 0", seed)
		}
		sweepDegraded += degraded
		sweepFaults += injected

		// Every run the server lists must replay as clean JSONL — a torn
		// or half-written line must never cross the API boundary.
		resp, err := http.Get(ts.URL + "/v1/runs")
		if err != nil {
			t.Fatalf("seed %d: runs: %v", seed, err)
		}
		var runs []server.RunSummary
		if err := json.NewDecoder(resp.Body).Decode(&runs); err != nil {
			t.Fatalf("seed %d: decode runs: %v", seed, err)
		}
		resp.Body.Close()
		if len(runs) == 0 {
			t.Fatalf("seed %d: no runs listed after %d weaves", seed, nClients*perClient)
		}
		for _, r := range runs {
			resp, err := http.Get(ts.URL + "/v1/runs/" + r.ID + "/events")
			if err != nil {
				t.Fatalf("seed %d: events %s: %v", seed, r.ID, err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("seed %d: events %s = %d, want 200", seed, r.ID, resp.StatusCode)
				continue
			}
			for i, line := range strings.Split(string(raw), "\n") {
				if line == "" {
					continue
				}
				if !json.Valid([]byte(line)) {
					t.Errorf("seed %d: run %s line %d is not valid JSON: %q", seed, r.ID, i+1, line)
				}
			}
		}

		if err := s.Shutdown(); err != nil && degraded == 0 {
			t.Errorf("seed %d: clean store must shut down cleanly: %v", seed, err)
		}
	})
	// The sweep as a whole must have exercised the fault paths; a
	// single-seed replay is exempt.
	if len(seeds()) > 1 && sweepFaults == 0 {
		t.Error("12-seed sweep injected no disk faults — probabilities too low to test anything")
	}
	if len(seeds()) > 1 && sweepDegraded == 0 {
		t.Error("12-seed sweep never degraded the store — degrade path untested")
	}
}
