// Disk-fault injection for the persistent run store: the injector
// substitutes store.Options.OpenFile with a wrapper whose writes and
// syncs fail deterministically in (seed, file, operation index) —
// short writes (a torn tail on disk), outright ENOSPC-style write
// errors, and fsync faults. The store must degrade to memory-only
// serving, never crash and never serve the torn bytes; the 12-seed
// suite in disk_chaos_test.go pins that contract end to end.
package chaos

import (
	"errors"
	"fmt"
	"path/filepath"

	"dscweaver/internal/obs"
	"dscweaver/internal/store"
)

// ErrDisk marks every injected disk fault; errors.Is detects them in
// assertions and distinguishes injected faults from real I/O errors.
var ErrDisk = errors.New("chaos: disk fault")

// OpenFile returns a store.Options.OpenFile whose files inject the
// configured disk faults. Each write claims one attempt index on the
// key "disk/<basename>", so the fault pattern for a seed is a pure
// function of the byte stream the store produces — replayable whatever
// goroutine interleaving drove the writes. Inner files come from open
// (nil = the real filesystem).
func (in *Injector) OpenFile(open func(path string) (store.File, error)) func(path string) (store.File, error) {
	if open == nil {
		open = store.OSOpenFile
	}
	return func(path string) (store.File, error) {
		f, err := open(path)
		if err != nil {
			return nil, err
		}
		return &chaosFile{in: in, key: "disk/" + filepath.Base(path), f: f}, nil
	}
}

// chaosFile wraps one store file with seeded write/sync faults.
type chaosFile struct {
	in  *Injector
	key string
	f   store.File
}

// diskHealed reports whether the configured heal threshold has been
// reached: past it the "device" works again and no disk fault class
// injects.
func (in *Injector) diskHealed() bool {
	if in.cfg.DiskHealAfter <= 0 {
		return false
	}
	total := in.diskErrors.Load() + in.diskShortWrites.Load() + in.diskSyncFaults.Load()
	return total >= in.cfg.DiskHealAfter
}

func (c *chaosFile) Write(p []byte) (int, error) {
	in := c.in
	attempt := in.next(c.key)
	if in.diskHealed() {
		return c.f.Write(p)
	}
	switch u := in.draw("disk", c.key, attempt); {
	case u < in.cfg.DiskErrorP:
		in.diskErrors.Add(1)
		return 0, fmt.Errorf("chaos: write %s attempt %d (seed %d): %w",
			c.key, attempt, in.cfg.Seed, ErrDisk)
	case u < in.cfg.DiskErrorP+in.cfg.DiskShortWriteP && len(p) > 1:
		// A torn write: half the bytes land on disk, then the device
		// gives out. Recovery must quarantine the half-line.
		in.diskShortWrites.Add(1)
		n, _ := c.f.Write(p[: len(p)/2 : len(p)/2])
		return n, fmt.Errorf("chaos: short write %s attempt %d (seed %d, %d/%d bytes): %w",
			c.key, attempt, in.cfg.Seed, n, len(p), ErrDisk)
	}
	return c.f.Write(p)
}

func (c *chaosFile) Sync() error {
	in := c.in
	if in.cfg.DiskSyncFaultP > 0 && !in.diskHealed() &&
		in.draw("disk_sync", c.key, in.next(c.key+"#sync")) < in.cfg.DiskSyncFaultP {
		in.diskSyncFaults.Add(1)
		return fmt.Errorf("chaos: fsync %s (seed %d): %w", c.key, in.cfg.Seed, ErrDisk)
	}
	return c.f.Sync()
}

// Close never injects: a store that cannot close files would leak
// descriptors across a 12-seed suite without testing anything new.
func (c *chaosFile) Close() error { return c.f.Close() }

// OpenLogFile returns an obs.RotateOptions.OpenFile injecting the same
// seeded disk faults as OpenFile, keyed "log/<basename>". The rotating
// JSONL sink must stay live under it: a faulted write drops (and
// counts) exactly that event, never latching the sink dead.
func (in *Injector) OpenLogFile() func(path string) (obs.LogFile, error) {
	return func(path string) (obs.LogFile, error) {
		f, err := store.OSOpenFile(path)
		if err != nil {
			return nil, err
		}
		return &chaosFile{in: in, key: "log/" + filepath.Base(path), f: f}, nil
	}
}
