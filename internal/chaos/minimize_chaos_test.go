// Chaos property suite for the minimizer's candidate/speculation pool:
// seeded latency injected per candidate evaluation attempt skews which
// worker claims which candidate and where speculation windows land, yet
// the canonical commit order must keep the minimal set bit-identical;
// seeded faults and cancellations must abort the run cleanly — typed
// error, no goroutine leaks, removals a prefix of the deterministic
// sequence. Replay a failing seed with -chaos.seed=N (see chaos_test.go).
package chaos_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"dscweaver/internal/chaos"
	"dscweaver/internal/chaos/leak"
	"dscweaver/internal/core"
	"dscweaver/internal/services"
	"dscweaver/internal/workload"
)

// chaosMinimizeWorkload is sized so every seed gets a few speculation
// windows at workers=8 (dozens of candidates) while keeping the
// 12-seed × configs sweep fast under -race.
func chaosMinimizeWorkload(t *testing.T, seed int64) *core.ConstraintSet {
	t.Helper()
	sc, err := workload.Layered(8, 4, 0.3, seed).WithShortcuts(8).WithDecisions(2).Constraints()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestChaosMinimizeCandidateLatencyBitIdentical: latency-only chaos in
// the candidate pool (no faults, no cancellation) must not change a
// single bit of the outcome for any engine configuration.
func TestChaosMinimizeCandidateLatencyBitIdentical(t *testing.T) {
	forEachSeed(t, func(t *testing.T, seed int64) {
		leak.Check(t)
		sc := chaosMinimizeWorkload(t, seed)
		base, err := core.MinimizeOpt(context.Background(), sc, core.MinimizeOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []struct {
			name string
			opts core.MinimizeOptions
		}{
			{"workers=2", core.MinimizeOptions{Parallelism: 2}},
			{"workers=8", core.MinimizeOptions{Parallelism: 8}},
			{"workers=8/nospec", core.MinimizeOptions{Parallelism: 8, NoSpeculation: true}},
		} {
			inj := chaos.New(chaos.Config{Seed: seed, LatencyP: 0.5, MaxLatency: 2 * time.Millisecond})
			opts := cfg.opts
			opts.CandidateHook = inj.MinimizeHook()
			res, err := core.MinimizeOpt(context.Background(), sc, opts)
			if err != nil {
				t.Fatalf("%s: %v", cfg.name, err)
			}
			if res.Minimal.String() != base.Minimal.String() {
				t.Errorf("seed %d %s: minimal set differs under candidate latency:\nbase:\n%s\nchaos:\n%s",
					seed, cfg.name, base.Minimal, res.Minimal)
			}
			if got, want := removedChaosString(res), removedChaosString(base); got != want {
				t.Errorf("seed %d %s: removal order differs under candidate latency:\nbase:\n%s\nchaos:\n%s",
					seed, cfg.name, want, got)
			}
			if res.EquivalenceChecks != base.EquivalenceChecks {
				t.Errorf("seed %d %s: EquivalenceChecks = %d, chaos-free = %d",
					seed, cfg.name, res.EquivalenceChecks, base.EquivalenceChecks)
			}
			if st := inj.Stats(); st.Latencies == 0 {
				t.Errorf("seed %d %s: no latency spike fired — the run was not actually jittered", seed, cfg.name)
			}
		}
	})
}

func removedChaosString(res *core.MinimizeResult) string {
	s := ""
	for _, c := range res.Removed {
		s += c.String() + "\n"
	}
	return s
}

// TestChaosMinimizeFaultsAbortCleanly: transient faults injected
// mid-pool plus a seeded external cancellation. Whatever a seed drew,
// the run either completes bit-identical, fails with the injected
// chaos fault, or aborts with a *core.CancelError whose progress
// counters are a sane prefix of the full run — and the worker pool
// never leaks a goroutine (leak.Check + -race).
func TestChaosMinimizeFaultsAbortCleanly(t *testing.T) {
	forEachSeed(t, func(t *testing.T, seed int64) {
		leak.Check(t)
		sc := chaosMinimizeWorkload(t, seed)
		base, err := core.MinimizeOpt(context.Background(), sc, core.MinimizeOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		inj := chaos.New(chaos.Config{
			Seed:       seed,
			TransientP: 0.02,
			LatencyP:   0.3, MaxLatency: time.Millisecond,
			CancelP: 0.5, CancelWithin: 5 * time.Millisecond,
		})
		ctx := context.Background()
		if delay, ok := inj.CancelPlan("minimize"); ok {
			cctx, cancel := context.WithCancel(ctx)
			defer cancel()
			timer := time.AfterFunc(delay, cancel)
			defer timer.Stop()
			ctx = cctx
		}
		res, err := core.MinimizeOpt(ctx, sc, core.MinimizeOptions{
			Parallelism:   8,
			CandidateHook: inj.MinimizeHook(),
		})
		var ce *core.CancelError
		switch {
		case err == nil:
			if res.Minimal.String() != base.Minimal.String() || removedChaosString(res) != removedChaosString(base) {
				t.Errorf("seed %d: surviving run not bit-identical to chaos-free run", seed)
			}
		case errors.As(err, &ce):
			if !core.ErrCanceled(err) {
				t.Errorf("seed %d: CancelError does not unwrap to a context error: %v", seed, err)
			}
			if ce.Removed > len(base.Removed) || ce.Checked > base.EquivalenceChecks {
				t.Errorf("seed %d: canceled progress checked=%d removed=%d exceeds full run's %d/%d",
					seed, ce.Checked, ce.Removed, base.EquivalenceChecks, len(base.Removed))
			}
		case errors.Is(err, services.ErrTransient):
			if inj.Stats().Transients == 0 {
				t.Errorf("seed %d: transient error surfaced but injector recorded none: %v", seed, err)
			}
		default:
			t.Errorf("seed %d: unexpected error class: %v", seed, err)
		}
	})
}
