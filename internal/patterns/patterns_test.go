package patterns

import (
	"context"
	"testing"
	"time"

	"dscweaver/internal/core"
	"dscweaver/internal/petri"
	"dscweaver/internal/schedule"
)

// runPattern executes a pattern with the given work duration and
// branch chooser and returns a validated trace.
func runPattern(t *testing.T, pat *Pattern, work time.Duration, branch func(core.ActivityID) string) *schedule.Trace {
	t.Helper()
	execs := schedule.NoopExecutors(pat.Proc, work, branch)
	eng, err := schedule.New(pat.SC, execs, schedule.Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("%s: %v\n%s", pat.Name, err, tr)
	}
	if err := tr.Validate(pat.SC, nil); err != nil {
		t.Fatalf("%s: %v", pat.Name, err)
	}
	return tr
}

func TestSequencePattern(t *testing.T) {
	tr := runPattern(t, Sequence(), 0, nil)
	a, _ := tr.Record("a")
	b, _ := tr.Record("b")
	if a.FinishSeq >= b.StartSeq {
		t.Error("sequence violated")
	}
}

func TestParallelSplitRealizesConcurrency(t *testing.T) {
	tr := runPattern(t, ParallelSplit(4), 10*time.Millisecond, nil)
	if tr.MaxParallel < 3 {
		t.Errorf("MaxParallel = %d, want ≥ 3", tr.MaxParallel)
	}
}

func TestSynchronizationJoinsAll(t *testing.T) {
	tr := runPattern(t, Synchronization(4), time.Millisecond, nil)
	j, _ := tr.Record("j")
	for i := 0; i < 4; i++ {
		b, _ := tr.Record(core.ActivityID("b" + string(rune('0'+i))))
		if b.FinishSeq >= j.StartSeq {
			t.Errorf("join started before branch %d finished", i)
		}
	}
}

func TestExclusiveChoiceRoutesOneBranch(t *testing.T) {
	for _, branch := range []string{"T", "F"} {
		pat := ExclusiveChoice()
		tr := runPattern(t, pat, 0, func(core.ActivityID) string { return branch })
		skipped := tr.SkippedActivities()
		if len(skipped) != 1 {
			t.Fatalf("branch %s: skipped = %v, want exactly one branch dead", branch, skipped)
		}
		want := core.ActivityID("right")
		if branch == "F" {
			want = "left"
		}
		if skipped[0] != want {
			t.Errorf("branch %s: skipped %v, want %v", branch, skipped[0], want)
		}
		if m, _ := tr.Record("m"); m.Skipped {
			t.Errorf("branch %s: merge skipped", branch)
		}
	}
}

func TestInterleavedParallelRoutingNeverOverlaps(t *testing.T) {
	pat := InterleavedParallelRouting(4)
	for trial := 0; trial < 5; trial++ {
		tr := runPattern(t, pat, time.Millisecond, nil)
		if tr.MaxParallel != 1 {
			t.Fatalf("interleaved activities overlapped: MaxParallel = %d", tr.MaxParallel)
		}
	}
}

func TestMilestoneOverlap(t *testing.T) {
	pat := Milestone()
	for trial := 0; trial < 5; trial++ {
		tr := runPattern(t, pat, time.Millisecond, nil)
		m, _ := tr.Record("m")
		b, _ := tr.Record("b")
		if !(m.StartSeq < b.StartSeq && b.FinishSeq < m.FinishSeq) {
			t.Fatalf("b [%d,%d] not inside m's span [%d,%d]",
				b.StartSeq, b.FinishSeq, m.StartSeq, m.FinishSeq)
		}
	}
}

func TestRendezvousReleasedTogether(t *testing.T) {
	pat, err := HappenTogetherRendezvous()
	if err != nil {
		t.Fatal(err)
	}
	tr := runPattern(t, pat, time.Millisecond, nil)
	// The coordinator must precede both starts.
	var coordFinish int
	for _, r := range tr.Records() {
		if r.Activity != "a" && r.Activity != "b" {
			coordFinish = r.FinishSeq
		}
	}
	a, _ := tr.Record("a")
	b, _ := tr.Record("b")
	if coordFinish == 0 || a.StartSeq < coordFinish || b.StartSeq < coordFinish {
		t.Errorf("rendezvous not coordinated: coord=%d a=%d b=%d", coordFinish, a.StartSeq, b.StartSeq)
	}
}

func TestAllPatternsSound(t *testing.T) {
	pats, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 7 {
		t.Fatalf("patterns = %d, want 7", len(pats))
	}
	for _, pat := range pats {
		guards, err := core.DeriveGuards(pat.SC)
		if err != nil {
			t.Fatalf("%s: %v", pat.Name, err)
		}
		rep, err := petri.Validate(context.Background(), pat.SC, guards)
		if err != nil {
			t.Fatalf("%s: %v", pat.Name, err)
		}
		if !rep.Sound {
			t.Errorf("%s: unsound (%v)", pat.Name, rep.Deadlocks)
		}
	}
}

func TestPatternsMinimizeToThemselves(t *testing.T) {
	// Every pattern encoding is already minimal — no redundancy to
	// remove.
	pats, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, pat := range pats {
		res, err := core.Minimize(pat.SC)
		if err != nil {
			t.Fatalf("%s: %v", pat.Name, err)
		}
		if len(res.Removed) != 0 {
			t.Errorf("%s: removed %v", pat.Name, res.Removed)
		}
	}
}
