// Package patterns encodes the classical workflow control-flow
// patterns (van der Aalst et al. [1]) as DSCL synchronization
// constraint sets — substantiating the paper's §4.1 claim that "DSCL
// can describe a wide variety of synchronization behavior, like
// sequence, parallel split, synchronization, interleave parallel
// routing, and milestone."
//
// Each constructor returns a ready-to-run process and constraint set;
// the tests execute them on the scheduling engine and assert the
// pattern's defining property on the traces. The milestone and
// interleaved-parallel-routing patterns are the ones that need DSCL's
// state granularity (S/R/F points) and the Exclusive relation — they
// cannot be expressed with activity-level happen-before edges alone.
package patterns

import (
	"fmt"

	"dscweaver/internal/cond"
	"dscweaver/internal/core"
)

// Pattern is a named workflow pattern instance.
type Pattern struct {
	// Name is the pattern's WCP designation.
	Name string
	Proc *core.Process
	SC   *core.ConstraintSet
}

func opaque(p *core.Process, ids ...core.ActivityID) {
	for _, id := range ids {
		p.MustAddActivity(&core.Activity{ID: id, Kind: core.KindOpaque})
	}
}

// Sequence is WCP-1: a runs strictly before b.
func Sequence() *Pattern {
	p := core.NewProcess("wcp1_sequence")
	opaque(p, "a", "b")
	sc := core.NewConstraintSet(p)
	sc.Before("a", "b", core.Cooperation)
	return &Pattern{Name: "WCP-1 Sequence", Proc: p, SC: sc}
}

// ParallelSplit is WCP-2: after a, the branches b1…bn run
// concurrently.
func ParallelSplit(n int) *Pattern {
	p := core.NewProcess("wcp2_parallel_split")
	opaque(p, "a")
	sc := core.NewConstraintSet(p)
	for i := 0; i < n; i++ {
		id := core.ActivityID(fmt.Sprintf("b%d", i))
		opaque(p, id)
		sc.Before("a", id, core.Cooperation)
	}
	return &Pattern{Name: "WCP-2 Parallel Split", Proc: p, SC: sc}
}

// Synchronization is WCP-3: the join j waits for every branch.
func Synchronization(n int) *Pattern {
	p := core.NewProcess("wcp3_synchronization")
	sc := core.NewConstraintSet(p)
	opaque(p, "j")
	for i := 0; i < n; i++ {
		id := core.ActivityID(fmt.Sprintf("b%d", i))
		opaque(p, id)
		sc.Before(id, "j", core.Cooperation)
	}
	return &Pattern{Name: "WCP-3 Synchronization", Proc: p, SC: sc}
}

// ExclusiveChoice is WCP-4 plus WCP-5 (simple merge): a decision
// routes to exactly one of two branches, which re-join at m.
func ExclusiveChoice() *Pattern {
	p := core.NewProcess("wcp4_exclusive_choice")
	p.MustAddActivity(&core.Activity{ID: "dec", Kind: core.KindDecision})
	opaque(p, "left", "right", "m")
	sc := core.NewConstraintSet(p)
	sc.Add(core.Constraint{Rel: core.HappenBefore, From: core.PointOf("dec", core.Finish),
		To: core.PointOf("left", core.Start), Cond: cond.Lit("dec", "T"), Origins: []core.Dimension{core.Control}})
	sc.Add(core.Constraint{Rel: core.HappenBefore, From: core.PointOf("dec", core.Finish),
		To: core.PointOf("right", core.Start), Cond: cond.Lit("dec", "F"), Origins: []core.Dimension{core.Control}})
	sc.Before("left", "m", core.Cooperation)
	sc.Before("right", "m", core.Cooperation)
	return &Pattern{Name: "WCP-4/5 Exclusive Choice + Simple Merge", Proc: p, SC: sc}
}

// InterleavedParallelRouting is WCP-17: the activities run in any
// order but never concurrently — pairwise Exclusive constraints, the
// relation §4.2 defers to run-time checking.
func InterleavedParallelRouting(n int) *Pattern {
	p := core.NewProcess("wcp17_interleaved")
	sc := core.NewConstraintSet(p)
	ids := make([]core.ActivityID, n)
	for i := 0; i < n; i++ {
		ids[i] = core.ActivityID(fmt.Sprintf("t%d", i))
		opaque(p, ids[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sc.Add(core.Constraint{Rel: core.Exclusive,
				From: core.PointOf(ids[i], core.Run), To: core.PointOf(ids[j], core.Run),
				Cond: cond.True(), Origins: []core.Dimension{core.Cooperation}})
		}
	}
	return &Pattern{Name: "WCP-17 Interleaved Parallel Routing", Proc: p, SC: sc}
}

// Milestone is WCP-18: b may only execute while m is active — b starts
// after m starts and finishes before m finishes. Both constraints are
// state-level: S(m) → S(b) and F(b) → F(m). This is the
// collectSurvey/closeOrder shape of §3.2 ("the life spans of two
// activities overlap with each other").
func Milestone() *Pattern {
	p := core.NewProcess("wcp18_milestone")
	opaque(p, "m", "b")
	sc := core.NewConstraintSet(p)
	sc.Add(core.Constraint{Rel: core.HappenBefore,
		From: core.PointOf("m", core.Start), To: core.PointOf("b", core.Start),
		Cond: cond.True(), Origins: []core.Dimension{core.Cooperation}})
	sc.Add(core.Constraint{Rel: core.HappenBefore,
		From: core.PointOf("b", core.Finish), To: core.PointOf("m", core.Finish),
		Cond: cond.True(), Origins: []core.Dimension{core.Cooperation}})
	return &Pattern{Name: "WCP-18 Milestone", Proc: p, SC: sc}
}

// HappenTogetherRendezvous exercises the ↔ relation through its
// coordinator desugaring ([21]): a and b are released together.
func HappenTogetherRendezvous() (*Pattern, error) {
	p := core.NewProcess("rendezvous")
	opaque(p, "a", "b")
	sc := core.NewConstraintSet(p)
	sc.Add(core.Constraint{Rel: core.HappenTogether,
		From: core.PointOf("a", core.Start), To: core.PointOf("b", core.Start),
		Cond: cond.True(), Origins: []core.Dimension{core.Cooperation}})
	if err := sc.Desugar(); err != nil {
		return nil, err
	}
	return &Pattern{Name: "HappenTogether rendezvous", Proc: p, SC: sc}, nil
}

// All returns one instance of every pattern.
func All() ([]*Pattern, error) {
	rendezvous, err := HappenTogetherRendezvous()
	if err != nil {
		return nil, err
	}
	return []*Pattern{
		Sequence(),
		ParallelSplit(3),
		Synchronization(3),
		ExclusiveChoice(),
		InterleavedParallelRouting(3),
		Milestone(),
		rendezvous,
	}, nil
}
