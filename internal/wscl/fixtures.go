package wscl

// The WSCL conversation documents of the Purchasing process's four
// services (§2). These are the inputs the paper assumes the services
// publish; the tests check that parsing them and joining them against
// the process reproduces the 15 service rows of Table 1.

// CreditWSCL describes the Credit service: one invocable port with an
// asynchronous authorization callback.
const CreditWSCL = `<?xml version="1.0"?>
<Conversation name="Credit" initialInteraction="1">
  <ConversationInteractions>
    <Interaction id="1" interactionType="Receive" document="PurchaseOrder"/>
    <Interaction id="d" interactionType="Send" document="CreditAuthorization"/>
  </ConversationInteractions>
  <ConversationTransitions>
    <Transition>
      <SourceInteraction href="1"/>
      <DestinationInteraction href="d"/>
    </Transition>
  </ConversationTransitions>
</Conversation>
`

// PurchaseWSCL describes the state-aware Purchase service: two ports
// that must be invoked in order (the purchase order must arrive before
// the shipping invoice), then an asynchronous order-invoice callback.
const PurchaseWSCL = `<?xml version="1.0"?>
<Conversation name="Purchase" initialInteraction="1">
  <ConversationInteractions>
    <Interaction id="1" interactionType="Receive" document="PurchaseOrder"/>
    <Interaction id="2" interactionType="Receive" document="ShippingInvoice"/>
    <Interaction id="d" interactionType="Send" document="OrderInvoice"/>
  </ConversationInteractions>
  <ConversationTransitions>
    <Transition>
      <SourceInteraction href="1"/>
      <DestinationInteraction href="2"/>
    </Transition>
    <Transition>
      <SourceInteraction href="1"/>
      <DestinationInteraction href="d"/>
    </Transition>
    <Transition>
      <SourceInteraction href="2"/>
      <DestinationInteraction href="d"/>
    </Transition>
  </ConversationTransitions>
</Conversation>
`

// ShipWSCL describes the Ship service: one port, with shipping invoice
// and shipping schedule sent back asynchronously.
const ShipWSCL = `<?xml version="1.0"?>
<Conversation name="Ship" initialInteraction="1">
  <ConversationInteractions>
    <Interaction id="1" interactionType="Receive" document="PurchaseOrder"/>
    <Interaction id="d" interactionType="Send" document="ShippingInvoiceAndSchedule"/>
  </ConversationInteractions>
  <ConversationTransitions>
    <Transition>
      <SourceInteraction href="1"/>
      <DestinationInteraction href="d"/>
    </Transition>
  </ConversationTransitions>
</Conversation>
`

// ProductionWSCL describes the Production service: two independent
// fire-and-forget ports, no callback, no ordering.
const ProductionWSCL = `<?xml version="1.0"?>
<Conversation name="Production">
  <ConversationInteractions>
    <Interaction id="1" interactionType="Receive" document="PurchaseOrder"/>
    <Interaction id="2" interactionType="Receive" document="ShippingSchedule"/>
  </ConversationInteractions>
  <ConversationTransitions/>
</Conversation>
`

// PurchasingConversations parses the four fixture documents.
func PurchasingConversations() ([]*Conversation, error) {
	var out []*Conversation
	for _, src := range []string{CreditWSCL, PurchaseWSCL, ShipWSCL, ProductionWSCL} {
		c, err := Parse([]byte(src))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
