// Package wscl reads Web Services Conversation Language documents and
// infers service dependencies from them — the paper's §3.2: "service
// dependency information is likely to be found in standard description
// documents like WSCL that specifies the XML documents being
// exchanged, and the allowed sequencing of these document exchanges."
//
// The dialect implemented here follows WSCL 1.0's structure —
// interactions plus transitions — with one convention: an interaction's
// id names the service port it represents. Receive-type interactions
// are invocable ports (the service receives the process's message);
// Send-type interactions are callback emissions, which surface to the
// process as the dummy port s_d. A transition between two interactions
// declares a sequencing constraint between the corresponding ports.
//
// From a conversation, Service derives the core.Service declaration
// (port list, asynchrony, sequential-port requirement) and
// Dependencies derives the →s rows of the process's dependency catalog
// by joining the conversation against the process's invoke/receive
// activities (§3.3, Table 1's service block).
package wscl

import (
	"encoding/xml"
	"fmt"

	"dscweaver/internal/core"
)

// Conversation is the document root.
type Conversation struct {
	XMLName            xml.Name      `xml:"Conversation"`
	Name               string        `xml:"name,attr"`
	InitialInteraction string        `xml:"initialInteraction,attr,omitempty"`
	Interactions       []Interaction `xml:"ConversationInteractions>Interaction"`
	Transitions        []Transition  `xml:"ConversationTransitions>Transition"`
}

// Interaction is one document exchange of the conversation. Its ID
// names the service port.
type Interaction struct {
	ID   string `xml:"id,attr"`
	Type string `xml:"interactionType,attr"` // "Receive" | "Send"
	// Document names the XML document type exchanged (informational).
	Document string `xml:"document,attr,omitempty"`
}

// Transition orders two interactions.
type Transition struct {
	Source      Ref `xml:"SourceInteraction"`
	Destination Ref `xml:"DestinationInteraction"`
}

// Ref references an interaction by href.
type Ref struct {
	Href string `xml:"href,attr"`
}

// Parse reads a WSCL document.
func Parse(data []byte) (*Conversation, error) {
	var c Conversation
	if err := xml.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("wscl: %w", err)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

func (c *Conversation) validate() error {
	if c.Name == "" {
		return fmt.Errorf("wscl: conversation without a name")
	}
	seen := map[string]string{}
	for _, i := range c.Interactions {
		if i.ID == "" {
			return fmt.Errorf("wscl: %s: interaction without id", c.Name)
		}
		if _, dup := seen[i.ID]; dup {
			return fmt.Errorf("wscl: %s: duplicate interaction %q", c.Name, i.ID)
		}
		if i.Type != "Receive" && i.Type != "Send" {
			return fmt.Errorf("wscl: %s: interaction %q has unsupported type %q", c.Name, i.ID, i.Type)
		}
		if i.Type == "Send" && i.ID != core.DummyPort {
			return fmt.Errorf("wscl: %s: Send interaction must use the dummy port id %q, got %q", c.Name, core.DummyPort, i.ID)
		}
		seen[i.ID] = i.Type
	}
	for _, t := range c.Transitions {
		for _, ref := range []string{t.Source.Href, t.Destination.Href} {
			if _, ok := seen[ref]; !ok {
				return fmt.Errorf("wscl: %s: transition references unknown interaction %q", c.Name, ref)
			}
		}
		if t.Source.Href == t.Destination.Href {
			return fmt.Errorf("wscl: %s: reflexive transition on %q", c.Name, t.Source.Href)
		}
	}
	return nil
}

// Service derives the core service declaration: the Receive
// interactions become the port list (declaration order), a Send
// interaction makes the service asynchronous, and a transition between
// two Receive ports marks the service state-aware (sequential ports).
func (c *Conversation) Service() *core.Service {
	s := &core.Service{Name: c.Name}
	recv := map[string]bool{}
	for _, i := range c.Interactions {
		switch i.Type {
		case "Receive":
			s.Ports = append(s.Ports, i.ID)
			recv[i.ID] = true
		case "Send":
			s.Async = true
		}
	}
	for _, t := range c.Transitions {
		if recv[t.Source.Href] && recv[t.Destination.Href] {
			s.SequentialPorts = true
		}
	}
	return s
}

// Dependencies derives the →s dependency rows contributed by the
// conversation, joined against the process's activities:
//
//   - every transition src → dst yields S.src →s S.dst;
//   - every invoke activity targeting a port of S yields act →s S.port;
//   - every receive activity on S's dummy port yields S.d →s act.
//
// The label records the conversation name for provenance.
func (c *Conversation) Dependencies(proc *core.Process) (*core.DependencySet, error) {
	if _, ok := proc.Service(c.Name); !ok {
		return nil, fmt.Errorf("wscl: process %s does not declare service %s", proc.Name, c.Name)
	}
	deps := core.NewDependencySet()
	label := "wscl:" + c.Name
	for _, t := range c.Transitions {
		deps.Add(core.Dependency{
			From:  core.ServiceNode(c.Name, t.Source.Href),
			To:    core.ServiceNode(c.Name, t.Destination.Href),
			Dim:   core.ServiceDim,
			Label: label,
		})
	}
	for _, a := range proc.Activities() {
		if a.Service != c.Name {
			continue
		}
		switch a.Kind {
		case core.KindInvoke:
			deps.Add(core.Dependency{
				From:  core.ActivityNode(a.ID),
				To:    core.ServiceNode(c.Name, a.Port),
				Dim:   core.ServiceDim,
				Label: label,
			})
		case core.KindReceive:
			if a.Port == core.DummyPort {
				deps.Add(core.Dependency{
					From:  core.ServiceNode(c.Name, core.DummyPort),
					To:    core.ActivityNode(a.ID),
					Dim:   core.ServiceDim,
					Label: label,
				})
			}
		}
	}
	return deps, nil
}

// DependenciesAll folds the service dependencies of several
// conversations into one set — the scheduling-engine scenario of §1
// where every participating service submits its conversation document.
func DependenciesAll(proc *core.Process, convs ...*Conversation) (*core.DependencySet, error) {
	all := core.NewDependencySet()
	for _, c := range convs {
		d, err := c.Dependencies(proc)
		if err != nil {
			return nil, err
		}
		all.AddAll(d)
	}
	return all, nil
}
