package wscl

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"dscweaver/internal/core"
	"dscweaver/internal/purchasing"
)

func TestParsePurchaseConversation(t *testing.T) {
	c, err := Parse([]byte(PurchaseWSCL))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "Purchase" {
		t.Errorf("name = %q", c.Name)
	}
	if len(c.Interactions) != 3 || len(c.Transitions) != 3 {
		t.Errorf("interactions = %d, transitions = %d", len(c.Interactions), len(c.Transitions))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no name", `<Conversation/>`, "without a name"},
		{"dup interaction", `<Conversation name="X"><ConversationInteractions><Interaction id="1" interactionType="Receive"/><Interaction id="1" interactionType="Receive"/></ConversationInteractions></Conversation>`, "duplicate interaction"},
		{"bad type", `<Conversation name="X"><ConversationInteractions><Interaction id="1" interactionType="Teleport"/></ConversationInteractions></Conversation>`, "unsupported type"},
		{"send not dummy", `<Conversation name="X"><ConversationInteractions><Interaction id="cb" interactionType="Send"/></ConversationInteractions></Conversation>`, "dummy port"},
		{"dangling transition", `<Conversation name="X"><ConversationInteractions><Interaction id="1" interactionType="Receive"/></ConversationInteractions><ConversationTransitions><Transition><SourceInteraction href="1"/><DestinationInteraction href="9"/></Transition></ConversationTransitions></Conversation>`, "unknown interaction"},
		{"reflexive transition", `<Conversation name="X"><ConversationInteractions><Interaction id="1" interactionType="Receive"/></ConversationInteractions><ConversationTransitions><Transition><SourceInteraction href="1"/><DestinationInteraction href="1"/></Transition></ConversationTransitions></Conversation>`, "reflexive"},
		{"not xml", `<<<`, "wscl:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestServiceDerivation(t *testing.T) {
	convs, err := PurchasingConversations()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]core.Service{
		"Credit":     {Name: "Credit", Ports: []string{"1"}, Async: true},
		"Purchase":   {Name: "Purchase", Ports: []string{"1", "2"}, Async: true, SequentialPorts: true},
		"Ship":       {Name: "Ship", Ports: []string{"1"}, Async: true},
		"Production": {Name: "Production", Ports: []string{"1", "2"}},
	}
	for _, c := range convs {
		got := c.Service()
		w := want[c.Name]
		if !reflect.DeepEqual(*got, w) {
			t.Errorf("Service(%s) = %+v, want %+v", c.Name, *got, w)
		}
	}
}

func TestDependenciesReproduceTable1ServiceRows(t *testing.T) {
	proc := purchasing.Process()
	convs, err := PurchasingConversations()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DependenciesAll(proc, convs...)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 15 {
		t.Errorf("derived service deps = %d, want 15", got.Len())
	}
	wantRows := purchasing.Dependencies().ByDimension(core.ServiceDim)
	wantKeys := make([]string, len(wantRows))
	for i, d := range wantRows {
		wantKeys[i] = d.From.String() + "→" + d.To.String()
	}
	gotKeys := make([]string, 0, got.Len())
	for _, d := range got.All() {
		if d.Dim != core.ServiceDim {
			t.Errorf("non-service dependency derived: %v", d)
		}
		gotKeys = append(gotKeys, d.From.String()+"→"+d.To.String())
	}
	sort.Strings(wantKeys)
	sort.Strings(gotKeys)
	if !reflect.DeepEqual(gotKeys, wantKeys) {
		t.Errorf("derived rows:\n%v\nwant:\n%v", gotKeys, wantKeys)
	}
	if err := got.Validate(proc); err != nil {
		t.Fatal(err)
	}
}

func TestDependenciesUnknownService(t *testing.T) {
	proc := core.NewProcess("empty")
	c, err := Parse([]byte(CreditWSCL))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Dependencies(proc); err == nil {
		t.Error("Dependencies accepted process without the service")
	}
}

func TestEndToEndWSCLPipeline(t *testing.T) {
	// Replace the fixture's hand-written service rows with
	// WSCL-derived ones and confirm the pipeline still lands on the
	// 17-constraint minimal set.
	proc := purchasing.Process()
	deps := core.NewDependencySet()
	for _, d := range purchasing.Dependencies().All() {
		if d.Dim != core.ServiceDim {
			deps.Add(d)
		}
	}
	convs, err := PurchasingConversations()
	if err != nil {
		t.Fatal(err)
	}
	svcDeps, err := DependenciesAll(proc, convs...)
	if err != nil {
		t.Fatal(err)
	}
	deps.AddAll(svcDeps)
	merged, err := core.Merge(proc, deps)
	if err != nil {
		t.Fatal(err)
	}
	asc, err := core.TranslateServices(merged)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Minimize(asc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Minimal.Len() != 17 {
		t.Errorf("minimal = %d constraints, want 17", res.Minimal.Len())
	}
}
