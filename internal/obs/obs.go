// Package obs is the runtime observability substrate of the weaver: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms with Prometheus text exposition) and a structured
// lifecycle-event interface (Sink) with a JSONL writer whose logs
// round-trip back into schedule traces.
//
// The paper's two claimed benefits — higher concurrency and lower
// maintenance cost — are runtime properties; obs is how the scheduling
// engine, the service bus and the minimizer surface them. Everything
// is nil-tolerant at the call sites: layers built against a nil
// *Registry or nil Sink pay only a pointer check, so the benches can
// quantify instrumentation overhead against an uninstrumented run of
// the same binary.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the value to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n exceeds the current value.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into a fixed cumulative bucket
// scheme (upper bounds in ascending order, implicit +Inf last).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	sum    atomic.Uint64  // float64 bits, updated by CAS
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count is the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum is the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets is the default bucket scheme for latencies, in
// seconds: 10µs … 10s, roughly log-spaced.
var DurationBuckets = []float64{1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10}

// CountBuckets is the default bucket scheme for small cardinalities
// (queue depths, retry counts).
var CountBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 1000}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metricEntry struct {
	name   string
	labels []string // alternating key, value
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry owns a process's metrics. Lookup methods are
// get-or-create and safe for concurrent use; handles should be cached
// by hot paths (one mutex acquisition per lookup).
type Registry struct {
	mu      sync.Mutex
	entries map[string]*metricEntry
	order   []string
	// bucketOverrides replaces the caller-supplied bounds for whole
	// histogram families — deployment-time tuning without touching the
	// instrumented call sites (see OverrideBuckets).
	bucketOverrides map[string][]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*metricEntry{}}
}

// metricKey builds the identity of a metric from its name and label
// pairs (order-sensitive: callers pass labels consistently).
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + strings.Join(labels, ",") + "}"
}

// lookup returns the entry for a metric, creating it (including the
// kind-specific instrument, via mk) under the registry mutex so
// concurrent first registrations of one metric agree on a single
// handle.
func (r *Registry) lookup(name string, kind metricKind, labels []string, mk func(e *metricEntry)) *metricEntry {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s: labels must be key/value pairs, got %d items", name, len(labels)))
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok {
		e = &metricEntry{name: name, labels: append([]string(nil), labels...), kind: kind}
		r.entries[key] = e
		r.order = append(r.order, key)
	}
	if e.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered twice with different kinds", key))
	}
	mk(e)
	return e
}

// Counter returns the counter with the given name and label pairs,
// creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	e := r.lookup(name, kindCounter, labels, func(e *metricEntry) {
		if e.c == nil {
			e.c = &Counter{}
		}
	})
	return e.c
}

// Gauge returns the gauge with the given name and label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	e := r.lookup(name, kindGauge, labels, func(e *metricEntry) {
		if e.g == nil {
			e.g = &Gauge{}
		}
	})
	return e.g
}

// Histogram returns the histogram with the given name, bucket bounds
// and label pairs. The bounds of the first registration win; bounds
// must be sorted ascending. A family-level override installed with
// OverrideBuckets replaces the caller's bounds.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	e := r.lookup(name, kindHistogram, labels, func(e *metricEntry) {
		if e.h != nil {
			return
		}
		if ov, ok := r.bucketOverrides[name]; ok {
			bounds = ov
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %s: bounds not ascending", name))
		}
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		e.h = h
	})
	return e.h
}

// OverrideBuckets installs replacement bucket bounds for a histogram
// family: every later Histogram call with that name uses these bounds
// instead of its own, so a deployment can re-bucket latency families
// (server config) without touching instrumented code. Bounds must be
// sorted ascending and non-empty. Overriding a family that already has
// a registered histogram returns an error — the series would silently
// mix two schemes.
func (r *Registry) OverrideBuckets(name string, bounds []float64) error {
	if len(bounds) == 0 {
		return fmt.Errorf("obs: override %s: empty bucket list", name)
	}
	if !sort.Float64sAreSorted(bounds) {
		return fmt.Errorf("obs: override %s: bounds not ascending", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.name == name && e.h != nil {
			return fmt.Errorf("obs: override %s: family already registered", name)
		}
	}
	if r.bucketOverrides == nil {
		r.bucketOverrides = map[string][]float64{}
	}
	r.bucketOverrides[name] = append([]float64(nil), bounds...)
	return nil
}

// labelString renders {k="v",...} (empty string when unlabeled).
func labelString(labels []string, extra ...string) string {
	all := append(append([]string(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(all); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", all[i], all[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value the way Prometheus text format
// expects (no exponent for integral values).
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format, grouped by family in name order with one # TYPE
// header per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := make([]*metricEntry, 0, len(r.order))
	for _, k := range r.order {
		entries = append(entries, r.entries[k])
	}
	r.mu.Unlock()
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	lastFamily := ""
	for _, e := range entries {
		if e.name != lastFamily {
			typ := "counter"
			switch e.kind {
			case kindGauge:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, typ); err != nil {
				return err
			}
			lastFamily = e.name
		}
		switch e.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", e.name, labelString(e.labels), e.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", e.name, labelString(e.labels), e.g.Value()); err != nil {
				return err
			}
		case kindHistogram:
			cum := int64(0)
			for i, bound := range e.h.bounds {
				cum += e.h.counts[i].Load()
				le := formatFloat(bound)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, labelString(e.labels, "le", le), cum); err != nil {
					return err
				}
			}
			cum += e.h.counts[len(e.h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, labelString(e.labels, "le", "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", e.name, labelString(e.labels), formatFloat(e.h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", e.name, labelString(e.labels), e.h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders the registry as Prometheus text (for logs and tests).
func (r *Registry) String() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}
