package obs

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// goldenRegistry builds a deterministic registry covering every
// exposition feature: plain and labeled counters, gauges (including a
// negative value), label values needing escaping, and histograms with
// populated, empty and overflow buckets.
func goldenRegistry() *Registry {
	r := NewRegistry()
	// Registered deliberately out of name order: the exposition must
	// sort families itself.
	r.Counter("zeta_total").Add(3)
	r.Counter("alpha_total", "kind", "plain").Add(12)
	r.Counter("alpha_total", "kind", `quoted"backslash\and
newline`).Inc()
	r.Gauge("depth").Set(-4)
	h := r.Histogram("latency_seconds", []float64{0.01, 0.1, 1}, "op", "weave")
	h.Observe(0.005)                                                      // first bucket
	h.Observe(0.5)                                                        // third bucket
	h.Observe(5)                                                          // +Inf overflow
	r.Histogram("latency_seconds", []float64{0.01, 0.1, 1}, "op", "idle") // zero observations
	return r
}

// TestWritePrometheusGolden pins the scrape format byte for byte so it
// cannot drift silently (ordering, escaping, histogram series).
func TestWritePrometheusGolden(t *testing.T) {
	got := goldenRegistry().String()
	path := filepath.Join("testdata", "prometheus.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusHistogramInvariants checks the structural
// guarantees scrapers rely on: buckets are cumulative, the +Inf bucket
// equals _count, and every histogram family carries _sum and _count.
func TestWritePrometheusHistogramInvariants(t *testing.T) {
	expo := goldenRegistry().String()
	lines := strings.Split(strings.TrimSpace(expo), "\n")

	var infCount, sum, count int
	prevCum := int64(-1)
	for _, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "latency_seconds_bucket") && strings.Contains(ln, `op="weave"`):
			fields := strings.Fields(ln)
			v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", ln, err)
			}
			if v < prevCum {
				t.Errorf("bucket counts not cumulative at %q", ln)
			}
			prevCum = v
			if strings.Contains(ln, `le="+Inf"`) {
				infCount++
				if v != 3 {
					t.Errorf("+Inf bucket = %d, want total observation count 3", v)
				}
			}
		case strings.HasPrefix(ln, "latency_seconds_sum"):
			sum++
		case strings.HasPrefix(ln, "latency_seconds_count"):
			count++
		}
	}
	if infCount != 1 {
		t.Errorf("got %d +Inf buckets for op=weave, want 1", infCount)
	}
	if sum != 2 || count != 2 {
		t.Errorf("got %d _sum and %d _count series, want 2 each (weave and idle)", sum, count)
	}
	// One TYPE header per family, even with several label sets.
	if n := strings.Count(expo, "# TYPE latency_seconds "); n != 1 {
		t.Errorf("latency_seconds has %d TYPE headers, want 1", n)
	}
	if n := strings.Count(expo, "# TYPE alpha_total "); n != 1 {
		t.Errorf("alpha_total has %d TYPE headers, want 1", n)
	}
}
