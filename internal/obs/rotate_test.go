package obs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRotatingJSONLSizeRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	r, err := NewRotatingJSONL(path, RotateOptions{MaxBytes: 256, MaxFiles: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r.Emit(Event{Layer: LayerEngine, Kind: EvActivityStart, Activity: fmt.Sprintf("a_%03d", i), Seq: i + 1})
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Rotations() == 0 {
		t.Fatal("no rotation despite 100 events at MaxBytes=256")
	}

	// Bounded retention: active file plus at most MaxFiles rotated.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 4 {
		t.Errorf("retention leak: %d files, want ≤ 4", len(entries))
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "events.jsonl") {
			t.Errorf("unexpected file %s", e.Name())
		}
	}

	// Every surviving file is valid JSONL, and the newest events live
	// in the active file (rotation shifts older generations up).
	var lastActive []Event
	for _, name := range []string{"events.jsonl", "events.jsonl.1", "events.jsonl.2", "events.jsonl.3"} {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		evs, err := ReadJSONL(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if name == "events.jsonl" {
			lastActive = evs
		}
	}
	if len(lastActive) == 0 || lastActive[len(lastActive)-1].Seq != 100 {
		t.Errorf("active file does not end at the newest event: %+v", lastActive)
	}
}

func TestRotatingJSONLAgeRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	r, err := NewRotatingJSONL(path, RotateOptions{MaxAge: time.Millisecond, MaxFiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	r.Emit(Event{Kind: EvRunBegin})
	time.Sleep(5 * time.Millisecond)
	r.Emit(Event{Kind: EvRunEnd})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Rotations() != 1 {
		t.Fatalf("rotations = %d, want 1 (age-triggered)", r.Rotations())
	}
}

func TestRotatingJSONLConcurrentEmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	r, err := NewRotatingJSONL(path, RotateOptions{MaxBytes: 512, MaxFiles: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Emit(Event{Layer: LayerBus, Kind: EvInvoke, Service: fmt.Sprintf("svc%d", g), Seq: i})
			}
		}(g)
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Emit after Close must be a silent no-op, not a panic.
	r.Emit(Event{Kind: EvRunEnd})
}

// TestReadJSONLMalformedLine is the regression test for the typed
// reader error: a corrupted line must surface a *LineError naming the
// line while the valid prefix is still returned.
func TestReadJSONLMalformedLine(t *testing.T) {
	log := `{"layer":"engine","kind":"run_begin"}
{"layer":"engine","kind":"activity_start","activity":"a","seq":1}
{not json at all
{"layer":"engine","kind":"run_end"}
`
	events, err := ReadJSONL(strings.NewReader(log))
	if err == nil {
		t.Fatal("corrupted log read without error")
	}
	var le *LineError
	if !errors.As(err, &le) {
		t.Fatalf("error %T is not a *LineError: %v", err, err)
	}
	if le.Line != 3 {
		t.Errorf("LineError.Line = %d, want 3", le.Line)
	}
	if !strings.Contains(le.Excerpt, "not json") {
		t.Errorf("LineError.Excerpt = %q, want offending input", le.Excerpt)
	}
	if le.Unwrap() == nil {
		t.Error("LineError.Unwrap() = nil, want underlying decode error")
	}
	if len(events) != 2 {
		t.Errorf("valid prefix = %d events, want 2", len(events))
	}
	if len(events) == 2 && events[1].Kind != EvActivityStart {
		t.Errorf("prefix content wrong: %+v", events)
	}
}

func TestReadJSONLOversizedLine(t *testing.T) {
	// A line past the scanner's 4 MiB cap is a scan error, which must
	// also arrive typed with a line number.
	big := `{"detail":"` + strings.Repeat("x", 5<<20) + `"}`
	log := "{\"kind\":\"run_begin\"}\n" + big + "\n"
	events, err := ReadJSONL(strings.NewReader(log))
	var le *LineError
	if !errors.As(err, &le) {
		t.Fatalf("error %T is not a *LineError: %v", err, err)
	}
	if le.Line != 2 {
		t.Errorf("LineError.Line = %d, want 2", le.Line)
	}
	if len(events) != 1 {
		t.Errorf("valid prefix = %d events, want 1", len(events))
	}
}

func TestOverrideBuckets(t *testing.T) {
	r := NewRegistry()
	if err := r.OverrideBuckets("weave_seconds", []float64{0.5, 1, 2}); err != nil {
		t.Fatal(err)
	}
	h := r.Histogram("weave_seconds", DurationBuckets)
	h.Observe(0.7)
	expo := r.String()
	if !strings.Contains(expo, `weave_seconds_bucket{le="0.5"} 0`) ||
		!strings.Contains(expo, `weave_seconds_bucket{le="1"} 1`) {
		t.Errorf("override not applied:\n%s", expo)
	}
	if strings.Contains(expo, `le="1e-05"`) {
		t.Errorf("default DurationBuckets leaked through the override:\n%s", expo)
	}

	// Too late: the family exists.
	if err := r.OverrideBuckets("weave_seconds", []float64{1}); err == nil {
		t.Error("overriding a registered family must fail")
	}
	// Invalid bounds.
	if err := r.OverrideBuckets("other", nil); err == nil {
		t.Error("empty override must fail")
	}
	if err := r.OverrideBuckets("other", []float64{2, 1}); err == nil {
		t.Error("unsorted override must fail")
	}
}
