package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "service", "Credit")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", "service", "Credit"); again != c {
		t.Fatal("lookup did not return the same counter")
	}
	other := r.Counter("requests_total", "service", "Ship")
	if other == c {
		t.Fatal("distinct labels shared a counter")
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	g.SetMax(2)
	if g.Value() != 4 {
		t.Fatal("SetMax lowered the gauge")
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatal("SetMax did not raise the gauge")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.001, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.561; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	text := r.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.01"} 2`, // 0.001 and the boundary value 0.01
		`latency_seconds_bucket{le="0.1"} 3`,
		`latency_seconds_bucket{le="1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_current").Set(1)
	r.Counter("b_total", "k", "v").Inc()
	text := r.String()
	// Families sorted by name, one TYPE header per family.
	if strings.Index(text, "# TYPE a_current gauge") > strings.Index(text, "# TYPE b_total counter") {
		t.Errorf("families not sorted:\n%s", text)
	}
	if strings.Count(text, "# TYPE b_total") != 1 {
		t.Errorf("duplicate TYPE header:\n%s", text)
	}
	if !strings.Contains(text, `b_total{k="v"} 1`) {
		t.Errorf("labeled sample missing:\n%s", text)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits_total").Inc()
				r.Histogram("lat", DurationBuckets).Observe(0.001)
				r.Gauge("g").SetMax(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
	if got := r.Histogram("lat", DurationBuckets).Count(); got != 8000 {
		t.Fatalf("observations = %d, want 8000", got)
	}
}

func TestStampMonotonic(t *testing.T) {
	a := Stamp(Event{Layer: LayerEngine, Kind: EvRunBegin})
	time.Sleep(time.Millisecond)
	b := Stamp(Event{Layer: LayerEngine, Kind: EvRunEnd})
	if b.Mono <= a.Mono {
		t.Fatalf("mono not increasing: %v then %v", a.Mono, b.Mono)
	}
	if a.Wall.IsZero() || b.Wall.IsZero() {
		t.Fatal("wall clock not stamped")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	in := []Event{
		Stamp(Event{Layer: LayerEngine, Kind: EvActivityStart, Activity: "a1", Seq: 3}),
		Stamp(Event{Layer: LayerBus, Kind: EvFault, Service: "Ship", Port: "1", Err: "boom"}),
		Stamp(Event{Layer: LayerMinimize, Kind: EvCandidateRemoved, Detail: "F(a)→S(b)", Value: 12}),
	}
	for _, e := range in {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Kind != in[i].Kind || out[i].Layer != in[i].Layer ||
			out[i].Activity != in[i].Activity || out[i].Seq != in[i].Seq ||
			out[i].Err != in[i].Err || out[i].Detail != in[i].Detail ||
			out[i].Mono != in[i].Mono || out[i].Value != in[i].Value {
			t.Errorf("event %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestMultiSinkAndMemSink(t *testing.T) {
	var a, b MemSink
	s := MultiSink(&a, nil, &b)
	s.Emit(Event{Kind: EvInvoke})
	s.Emit(Event{Kind: EvCallback})
	if len(a.Events()) != 2 || len(b.Events()) != 2 {
		t.Fatalf("fan-out lost events: %d / %d", len(a.Events()), len(b.Events()))
	}
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatalf("Len disagrees with Events: %d / %d", a.Len(), b.Len())
	}
}
