package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// RotateOptions tunes a RotatingJSONL sink. The zero value rotates at
// 64 MiB, keeps 8 rotated files and never rotates on age.
type RotateOptions struct {
	// MaxBytes rotates the active file before a write would push it
	// past this size (default 64 MiB).
	MaxBytes int64
	// MaxAge rotates the active file once it has been open this long
	// (0 = never). Age-based rotation bounds how stale the newest
	// rotated file can be on a quiet server.
	MaxAge time.Duration
	// MaxFiles is the number of rotated files kept as path.1 … path.N,
	// newest first (default 8). Older files are deleted.
	MaxFiles int
}

func (o RotateOptions) withDefaults() RotateOptions {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 64 << 20
	}
	if o.MaxFiles <= 0 {
		o.MaxFiles = 8
	}
	return o
}

// RotatingJSONL is a Sink writing one JSON object per line to a file
// that rotates by size and age: the active log lives at path, rotated
// generations at path.1 (newest) … path.N. Emit never fails the
// caller — the first error is latched (observability must not take
// the process down) and surfaces from Close.
type RotatingJSONL struct {
	mu        sync.Mutex
	path      string
	opts      RotateOptions
	f         *os.File
	size      int64
	born      time.Time
	err       error
	rotations int
}

// NewRotatingJSONL opens (appending) the active log file at path.
func NewRotatingJSONL(path string, opts RotateOptions) (*RotatingJSONL, error) {
	r := &RotatingJSONL{path: path, opts: opts.withDefaults()}
	if err := r.open(); err != nil {
		return nil, err
	}
	return r, nil
}

// open (re)opens the active file; callers hold r.mu (or are the
// constructor).
func (r *RotatingJSONL) open() error {
	f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: rotating log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("obs: rotating log: %w", err)
	}
	r.f = f
	r.size = st.Size()
	r.born = time.Now()
	return nil
}

// rotate shifts path.i → path.i+1 (dropping generation MaxFiles) and
// reopens a fresh active file; callers hold r.mu.
func (r *RotatingJSONL) rotate() error {
	if err := r.f.Close(); err != nil {
		return err
	}
	os.Remove(fmt.Sprintf("%s.%d", r.path, r.opts.MaxFiles))
	for i := r.opts.MaxFiles - 1; i >= 1; i-- {
		from := fmt.Sprintf("%s.%d", r.path, i)
		if _, err := os.Stat(from); err == nil {
			if err := os.Rename(from, fmt.Sprintf("%s.%d", r.path, i+1)); err != nil {
				return err
			}
		}
	}
	if err := os.Rename(r.path, r.path+".1"); err != nil {
		return err
	}
	r.rotations++
	return r.open()
}

// Emit appends one event, rotating first if the write would exceed
// MaxBytes or the active file outlived MaxAge.
func (r *RotatingJSONL) Emit(e Event) {
	data, err := json.Marshal(e)
	if err != nil {
		r.mu.Lock()
		if r.err == nil {
			r.err = err
		}
		r.mu.Unlock()
		return
	}
	data = append(data, '\n')
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil || r.f == nil { // errored or already closed
		return
	}
	needRotate := r.size > 0 && r.size+int64(len(data)) > r.opts.MaxBytes
	if !needRotate && r.opts.MaxAge > 0 && time.Since(r.born) > r.opts.MaxAge && r.size > 0 {
		needRotate = true
	}
	if needRotate {
		if err := r.rotate(); err != nil {
			r.err = fmt.Errorf("obs: rotating log: %w", err)
			return
		}
	}
	n, err := r.f.Write(data)
	r.size += int64(n)
	if err != nil {
		r.err = fmt.Errorf("obs: rotating log: %w", err)
	}
}

// Rotations reports how many rotations have happened (tests, metrics).
func (r *RotatingJSONL) Rotations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rotations
}

// Close closes the active file and returns the first error seen.
func (r *RotatingJSONL) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f != nil {
		if err := r.f.Close(); err != nil && r.err == nil {
			r.err = err
		}
		r.f = nil
	}
	return r.err
}
