package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// LogFile is the file surface the rotating sink writes through. Tests
// and the chaos injector substitute faulting implementations via
// RotateOptions.OpenFile.
type LogFile interface {
	io.Writer
	Sync() error
	Close() error
}

// osOpenLog is the default RotateOptions.OpenFile: create-or-append on
// the real filesystem.
func osOpenLog(path string) (LogFile, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// RotateOptions tunes a RotatingJSONL sink. The zero value rotates at
// 64 MiB, keeps 8 rotated files and never rotates on age.
type RotateOptions struct {
	// MaxBytes rotates the active file before a write would push it
	// past this size (default 64 MiB).
	MaxBytes int64
	// MaxAge rotates the active file once it has been open this long
	// (0 = never). Age-based rotation bounds how stale the newest
	// rotated file can be on a quiet server.
	MaxAge time.Duration
	// MaxFiles is the number of rotated files kept as path.1 … path.N,
	// newest first (default 8). Older files are deleted.
	MaxFiles int
	// OpenFile opens (appending) the active log file (nil = the real
	// filesystem). The chaos injector hooks fault injection here.
	OpenFile func(path string) (LogFile, error)
	// Metrics, when set, registers log_dropped_total and
	// log_rotations_total on the registry so dropped events are
	// observable, not just countable via Dropped().
	Metrics *Registry
}

func (o RotateOptions) withDefaults() RotateOptions {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 64 << 20
	}
	if o.MaxFiles <= 0 {
		o.MaxFiles = 8
	}
	if o.OpenFile == nil {
		o.OpenFile = osOpenLog
	}
	return o
}

// RotatingJSONL is a Sink writing one JSON object per line to a file
// that rotates by size and age: the active log lives at path, rotated
// generations at path.1 (newest) … path.N. Emit never fails the
// caller — observability must not take the process down — but it does
// not latch dead on the first fault either: a failed write, rotation
// or reopen drops exactly that event (counted by Dropped and the
// log_dropped_total metric), records the first error for Close, and
// the next Emit tries again, reopening the active file if the fault
// lost it.
type RotatingJSONL struct {
	mu        sync.Mutex
	path      string
	opts      RotateOptions
	f         LogFile
	size      int64
	born      time.Time
	err       error
	dropped   int64
	closed    bool
	rotations int

	mDropped   *Counter // nil without RotateOptions.Metrics
	mRotations *Counter
}

// NewRotatingJSONL opens (appending) the active log file at path.
func NewRotatingJSONL(path string, opts RotateOptions) (*RotatingJSONL, error) {
	r := &RotatingJSONL{path: path, opts: opts.withDefaults()}
	if m := r.opts.Metrics; m != nil {
		r.mDropped = m.Counter("log_dropped_total")
		r.mRotations = m.Counter("log_rotations_total")
	}
	if err := r.open(); err != nil {
		return nil, err
	}
	return r, nil
}

// open (re)opens the active file; callers hold r.mu (or are the
// constructor). The size resumes from the file on disk so rotation
// bounds hold across reopens.
func (r *RotatingJSONL) open() error {
	f, err := r.opts.OpenFile(r.path)
	if err != nil {
		return fmt.Errorf("obs: rotating log: %w", err)
	}
	size := int64(0)
	if st, err := os.Stat(r.path); err == nil {
		size = st.Size()
	}
	r.f = f
	r.size = size
	r.born = time.Now()
	return nil
}

// rotate shifts path.i → path.i+1 (dropping generation MaxFiles) and
// reopens a fresh active file; callers hold r.mu. Whatever step fails,
// r.f is left nil so the next Emit reopens rather than writing through
// a closed handle.
func (r *RotatingJSONL) rotate() error {
	err := r.f.Close()
	r.f = nil
	if err != nil {
		return err
	}
	os.Remove(fmt.Sprintf("%s.%d", r.path, r.opts.MaxFiles))
	for i := r.opts.MaxFiles - 1; i >= 1; i-- {
		from := fmt.Sprintf("%s.%d", r.path, i)
		if _, err := os.Stat(from); err == nil {
			if err := os.Rename(from, fmt.Sprintf("%s.%d", r.path, i+1)); err != nil {
				return err
			}
		}
	}
	if err := os.Rename(r.path, r.path+".1"); err != nil {
		return err
	}
	r.rotations++
	if r.mRotations != nil {
		r.mRotations.Inc()
	}
	return r.open()
}

// fail records one dropped event and the first error; callers hold
// r.mu.
func (r *RotatingJSONL) fail(err error) {
	r.dropped++
	if r.mDropped != nil {
		r.mDropped.Inc()
	}
	if r.err == nil {
		r.err = err
	}
}

// Emit appends one event, rotating first if the write would exceed
// MaxBytes or the active file outlived MaxAge. A fault drops this
// event only; the sink stays live for the next.
func (r *RotatingJSONL) Emit(e Event) {
	data, err := json.Marshal(e)
	if err != nil {
		r.mu.Lock()
		r.fail(err)
		r.mu.Unlock()
		return
	}
	data = append(data, '\n')
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if r.f == nil { // lost to an earlier fault: reopen before writing
		if err := r.open(); err != nil {
			r.fail(err)
			return
		}
	}
	needRotate := r.size > 0 && r.size+int64(len(data)) > r.opts.MaxBytes
	if !needRotate && r.opts.MaxAge > 0 && time.Since(r.born) > r.opts.MaxAge && r.size > 0 {
		needRotate = true
	}
	if needRotate {
		if err := r.rotate(); err != nil {
			r.fail(fmt.Errorf("obs: rotating log: %w", err))
			return
		}
	}
	n, err := r.f.Write(data)
	r.size += int64(n)
	if err != nil {
		r.fail(fmt.Errorf("obs: rotating log: %w", err))
	}
}

// Rotations reports how many rotations have happened (tests, metrics).
func (r *RotatingJSONL) Rotations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rotations
}

// Dropped reports how many events were lost to marshal, write, rotate
// or reopen faults.
func (r *RotatingJSONL) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Close closes the active file and returns the first error seen.
func (r *RotatingJSONL) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	if r.f != nil {
		if err := r.f.Close(); err != nil && r.err == nil {
			r.err = err
		}
		r.f = nil
	}
	return r.err
}
