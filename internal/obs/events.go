package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one typed lifecycle event. Mono is a monotonic offset from
// a per-process origin (first use of Stamp), so events merged from
// several layers of one process order correctly even across wall-clock
// adjustments; Wall is the human-readable counterpart.
type Event struct {
	Mono time.Duration `json:"mono_ns"`
	Wall time.Time     `json:"wall,omitempty"`
	// Layer identifies the emitting subsystem: LayerEngine, LayerBus
	// or LayerMinimize.
	Layer string `json:"layer"`
	// Kind is one of the Ev* constants.
	Kind     string `json:"kind"`
	Activity string `json:"activity,omitempty"`
	Service  string `json:"service,omitempty"`
	Port     string `json:"port,omitempty"`
	// Seq is the engine's global event sequence number (scheduler
	// events only); TraceFromEvents rebuilds traces from it.
	Seq     int    `json:"seq,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Branch  string `json:"branch,omitempty"`
	Err     string `json:"err,omitempty"`
	// Detail carries free-form context (process name, constraint
	// string, verdict).
	Detail string  `json:"detail,omitempty"`
	Value  float64 `json:"value,omitempty"`
	DurNS  int64   `json:"dur_ns,omitempty"`
}

// Layers.
const (
	LayerEngine   = "engine"
	LayerBus      = "bus"
	LayerMinimize = "minimize"
	LayerWeave    = "weave"
	// LayerTransport marks events from non-local transports (the HTTP
	// transport's invoke/callback/breaker lifecycle).
	LayerTransport = "transport"
)

// Event kinds.
const (
	// Engine lifecycle (§4.1's start/run/finish states: a start event
	// covers the S→R transition, which the engine performs atomically;
	// finish covers F).
	EvRunBegin       = "run_begin"
	EvRunEnd         = "run_end"
	EvActivityStart  = "activity_start"
	EvActivityFinish = "activity_finish"
	EvActivitySkip   = "activity_skip"
	EvActivityRetry  = "activity_retry"
	EvActivityFail   = "activity_fail"

	// Bus lifecycle.
	EvInvoke    = "invoke"
	EvCallback  = "callback"
	EvFault     = "fault"
	EvServiceUp = "service_up"
	EvBusClosed = "bus_closed"

	// Per-port circuit breaker transitions (Service/Port name the
	// port; Value carries the consecutive-fault count at the trip).
	EvBreakerOpen     = "breaker_open"
	EvBreakerHalfOpen = "breaker_half_open"
	EvBreakerClose    = "breaker_close"

	// Minimizer lifecycle.
	EvMinimizeBegin    = "minimize_begin"
	EvMinimizeEnd      = "minimize_end"
	EvCandidateKept    = "candidate_kept"
	EvCandidateRemoved = "candidate_removed"

	// Weave pipeline lifecycle (Detail = stage name for stage events,
	// process name for weave_end; Err carries the abort cause).
	EvWeaveBegin = "weave_begin"
	EvWeaveEnd   = "weave_end"
	EvStageBegin = "stage_begin"
	EvStageEnd   = "stage_end"

	// Inter-node fabric faults (Service names the peer host).
	// retransmit: the receiver absorbed a duplicate frame via the
	// (from, seq) idempotency cache. partition: a note send exhausted
	// its retry budget against an unreachable peer and failed the run.
	EvRetransmit = "retransmit"
	EvPartition  = "partition"
)

var (
	originOnce sync.Once
	origin     time.Time
)

// Stamp fills an event's clocks: Wall from the system clock, Mono as
// the offset from the process-wide origin (established on first use).
func Stamp(e Event) Event {
	originOnce.Do(func() { origin = time.Now() })
	now := time.Now()
	e.Wall = now
	e.Mono = now.Sub(origin) // uses the monotonic reading of both
	return e
}

// Sink receives lifecycle events. Implementations must be safe for
// concurrent use; Emit should not block the caller for long (the
// engine emits outside its scheduling lock, but executors wait on the
// same goroutines).
type Sink interface {
	Emit(Event)
}

// NopSink discards events; it exists so benches can price the
// event-construction overhead separately from serialization.
type NopSink struct{}

// Emit discards the event.
func (NopSink) Emit(Event) {}

// MultiSink fans an event out to several sinks.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(e)
		}
	}
}

// MemSink collects events in memory (tests, replay).
type MemSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (m *MemSink) Emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events copies the collected events.
func (m *MemSink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Len reports the number of collected events without copying them —
// counting a large run's log must not clone it.
func (m *MemSink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// JSONLWriter streams events as one JSON object per line. The zero
// value is not usable; construct with NewJSONLWriter. Emit never
// fails the caller: the first write error is latched and later emits
// are dropped (observability must not take the process down).
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// Emit writes one line.
func (j *JSONLWriter) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		j.err = err
	}
}

// Close flushes the buffer and returns the first error seen.
func (j *JSONLWriter) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// LineError reports a malformed line in a JSONL event log: the
// 1-based line number, a bounded excerpt of the offending bytes, and
// the underlying decode or scan error. Callers that tolerate partial
// logs (a reader racing a writer, a truncated rotation) can detect it
// with errors.As and keep the valid prefix ReadJSONL returns alongside
// it.
type LineError struct {
	// Line is the 1-based number of the malformed line (the line the
	// scanner was on, for scanner-level errors such as an oversized
	// line).
	Line int
	// Excerpt is the offending input, truncated to excerptLimit bytes.
	Excerpt string
	// Err is the underlying error.
	Err error
}

const excerptLimit = 128

func (e *LineError) Error() string {
	return fmt.Sprintf("obs: event log line %d: %v (input %q)", e.Line, e.Err, e.Excerpt)
}

// Unwrap exposes the underlying decode/scan error to errors.Is/As.
func (e *LineError) Unwrap() error { return e.Err }

func excerpt(b []byte) string {
	if len(b) > excerptLimit {
		b = b[:excerptLimit]
	}
	return string(b)
}

// ReadJSONL parses a JSONL event log back into events, preserving
// line order. On malformed input it returns the events decoded before
// the bad line together with a *LineError naming the line — a reader
// hitting a half-written tail keeps the valid prefix instead of
// losing the whole log.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return out, &LineError{Line: line, Excerpt: excerpt(sc.Bytes()), Err: err}
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, &LineError{Line: line + 1, Err: err}
	}
	return out, nil
}
