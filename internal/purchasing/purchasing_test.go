package purchasing

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"dscweaver/internal/core"
)

func TestProcessValidates(t *testing.T) {
	if err := Process().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Counts(t *testing.T) {
	deps := Dependencies()
	counts := deps.CountByDimension()
	want := map[core.Dimension]int{
		core.Data:        9,
		core.Control:     10,
		core.Cooperation: 6,
		core.ServiceDim:  15,
	}
	for dim, n := range want {
		if counts[dim] != n {
			t.Errorf("Table 1 %s count = %d, want %d", dim, counts[dim], n)
		}
	}
	if deps.Len() != 40 {
		t.Errorf("Table 1 total = %d, want 40", deps.Len())
	}
	if err := deps.Validate(Process()); err != nil {
		t.Fatal(err)
	}
}

func TestMergeFigure7(t *testing.T) {
	proc := Process()
	merged, err := core.Merge(proc, Dependencies())
	if err != nil {
		t.Fatal(err)
	}
	// The only duplicate pair across dimensions is
	// recPurchase_oi → replyClient_oi (data + cooperation), so the
	// merged P of Figure 7 has 39 constraints.
	if merged.Len() != 39 {
		t.Errorf("merged constraints = %d, want 39\n%s", merged.Len(), merged)
	}
	// The folded constraint must carry both origins.
	found := false
	for _, c := range merged.Constraints() {
		if c.From.Node.Activity == RecPurchaseOi && c.To.Node.Activity == ReplyClientOi {
			found = true
			if !c.HasOrigin(core.Data) || !c.HasOrigin(core.Cooperation) {
				t.Errorf("folded constraint origins = %v, want data+cooperation", c.Origins)
			}
		}
	}
	if !found {
		t.Error("recPurchase_oi → replyClient_oi missing from merged set")
	}
	if !merged.HasServiceNodes() {
		t.Error("merged set should still mention external nodes")
	}
}

func TestTranslateFigure8(t *testing.T) {
	proc := Process()
	merged, err := core.Merge(proc, Dependencies())
	if err != nil {
		t.Fatal(err)
	}
	asc, err := core.TranslateServices(merged)
	if err != nil {
		t.Fatal(err)
	}
	if asc.HasServiceNodes() {
		t.Fatalf("ASC still mentions external nodes: %v", asc.ServiceNodes())
	}
	// The paper's bold edges of Figure 8: the six service-derived
	// internal constraints.
	wantService := map[string]bool{
		"invCredit_po→recCredit_au":     false,
		"invPurchase_po→recPurchase_oi": false,
		"invPurchase_si→recPurchase_oi": false,
		"invPurchase_po→invPurchase_si": false, // Purchase₁ →s Purchase₂ anchored to the invokers
		"invShip_po→recShip_si":         false,
		"invShip_po→recShip_ss":         false,
	}
	serviceDerived := 0
	for _, c := range asc.Constraints() {
		if !c.HasOrigin(core.ServiceDim) {
			continue
		}
		serviceDerived++
		key := fmt.Sprintf("%s→%s", c.From.Node, c.To.Node)
		if _, ok := wantService[key]; !ok {
			t.Errorf("unexpected service-derived constraint %s", c)
			continue
		}
		wantService[key] = true
		if !c.Cond.IsTrue() {
			t.Errorf("service-derived constraint %s should be unconditional, got %v", c, c.Cond)
		}
	}
	for key, seen := range wantService {
		if !seen {
			t.Errorf("missing service-derived constraint %s", key)
		}
	}
	if serviceDerived != 6 {
		t.Errorf("service-derived constraints = %d, want 6", serviceDerived)
	}
	// ASC total: 24 internal constraints from data/control/cooperation
	// (9+10+6 minus the folded duplicate) + 6 translated = 30.
	if asc.Len() != 30 {
		t.Errorf("ASC constraints = %d, want 30\n%s", asc.Len(), asc)
	}
}

func TestMinimizeFigure9(t *testing.T) {
	_, _, res, err := Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, c := range res.Minimal.Constraints() {
		key := fmt.Sprintf("%s→%s", c.From.Node, c.To.Node)
		got[key] = true
	}
	var missing, extra []string
	want := map[string]bool{}
	for _, e := range MinimalEdges() {
		key := fmt.Sprintf("%s→%s", e.From, e.To)
		want[key] = true
		if !got[key] {
			missing = append(missing, key)
		}
	}
	for key := range got {
		if !want[key] {
			extra = append(extra, key)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 || len(extra) > 0 {
		t.Fatalf("Figure 9 mismatch\nmissing: %v\nextra: %v\nminimal set:\n%s", missing, extra, res.Minimal)
	}
	if res.Minimal.Len() != 17 {
		t.Errorf("minimal constraints = %d, want 17", res.Minimal.Len())
	}
}

func TestTable2Reduction(t *testing.T) {
	_, _, res, err := Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	before := Dependencies().Len()
	after := res.Minimal.Len()
	if removed := before - after; removed != 23 {
		t.Errorf("Table 2: removed = %d (before %d, after %d), want 23", removed, before, after)
	}
}

func TestMinimalIsEquivalentToASC(t *testing.T) {
	_, asc, res, err := Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	eq, err := core.Equivalent(asc, res.Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("minimal set is not transitive-equivalent to the ASC")
	}
}

func TestMinimalIsActuallyMinimal(t *testing.T) {
	_, asc, res, err := Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	// Definition 6, second property: no constraint of P* can be
	// removed while preserving equivalence with the original.
	cons := res.Minimal.Constraints()
	for i, c := range cons {
		if c.Rel != core.HappenBefore {
			continue
		}
		reduced := core.NewConstraintSet(res.Minimal.Proc)
		for j, d := range cons {
			if j != i {
				reduced.Add(d)
			}
		}
		eq, err := core.Equivalent(asc, reduced)
		if err != nil {
			t.Fatal(err)
		}
		if eq {
			t.Errorf("constraint %s is still redundant in the minimal set", c)
		}
	}
}

func TestExplainAllThirteenRemovals(t *testing.T) {
	// Every one of the 13 constraints removed from the ASC has a
	// witness: covering paths, or vacuousness. The headline case —
	// if_au → replyClient_oi — needs both branch paths.
	_, _, res, err := Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	removals, err := core.ExplainRemovals(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(removals) != 13 {
		t.Fatalf("explanations = %d, want 13", len(removals))
	}
	for _, r := range removals {
		if !r.Vacuous && len(r.Paths) == 0 {
			t.Errorf("unjustified removal: %s", r)
		}
		if r.Constraint.From.Node.Activity == IfAu && r.Constraint.To.Node.Activity == ReplyClientOi {
			if len(r.Paths) < 2 {
				t.Errorf("branch-folded removal cited %d paths, want ≥ 2:\n%s", len(r.Paths), r)
			}
		}
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	_, _, res, err := Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.MinimizeWithGuards(res.Minimal, res.Guards)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Removed) != 0 {
		t.Errorf("second minimization removed %v", res2.Removed)
	}
}

func TestAblationStrictAnnotationsStopsAt20(t *testing.T) {
	// DESIGN.md's key design choice: equivalence must be judged in the
	// guard context of the endpoints. With verbatim annotation
	// comparison (the ablation), the guard-subsumed edges —
	// recClient_po into the three T-guarded invokes, plus
	// invPurchase_po → recPurchase_oi's conditional detour — survive,
	// and the paper's own example stops at 20 constraints instead of
	// Figure 9's 17.
	_, asc, _, err := Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MinimizeOpt(context.Background(), asc, core.MinimizeOptions{StrictAnnotations: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Minimal.Len() != 20 {
		t.Errorf("strict-annotation minimal = %d constraints, want 20", res.Minimal.Len())
	}
	// The strict result is still equivalent — just not minimal.
	eq, err := core.Equivalent(asc, res.Minimal)
	if err != nil || !eq {
		t.Errorf("strict result not equivalent: %v %v", eq, err)
	}
	survivors := map[string]bool{}
	for _, c := range res.Minimal.Constraints() {
		survivors[fmt.Sprintf("%s→%s", c.From.Node, c.To.Node)] = true
	}
	for _, key := range []string{
		"recClient_po→invPurchase_po",
		"recClient_po→invShip_po",
		"recClient_po→invProduction_po",
	} {
		if !survivors[key] {
			t.Errorf("expected guard-subsumed edge %s to survive under strict annotations", key)
		}
	}
}

func TestConditionAnnotatedClosureOfRecClientPo(t *testing.T) {
	_, asc, _, err := Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	members, err := core.TransitiveClosure(asc, RecClientPo)
	if err != nil {
		t.Fatal(err)
	}
	byNode := map[string]string{}
	for _, m := range members {
		byNode[m.Node.String()] = m.Cond.String()
	}
	// Everything is reachable from the first activity.
	if len(byNode) != 13 {
		t.Errorf("closure size = %d, want 13 (%v)", len(byNode), byNode)
	}
	// Direct data edges make the T-branch activities unconditional in
	// the raw ASC closure (Definition 3 annotations change only after
	// minimization).
	for node, want := range map[string]string{
		"invCredit_po":   "⊤",
		"if_au":          "⊤",
		"invPurchase_po": "⊤", // direct data edge ∨ conditional path
		"set_oi":         "if_au=F",
		"recPurchase_oi": "⊤", // via direct invPurchase_po edge
	} {
		if got := byNode[node]; got != want {
			t.Errorf("closure annotation of %s = %s, want %s", node, got, want)
		}
	}
}

func TestClosureAnnotationsAfterMinimize(t *testing.T) {
	_, _, res, err := Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	members, err := core.TransitiveClosure(res.Minimal, core.ActivityID("if_au"))
	if err != nil {
		t.Fatal(err)
	}
	byNode := map[string]string{}
	for _, m := range members {
		byNode[m.Node.String()] = m.Cond.String()
	}
	for node, want := range map[string]string{
		"invPurchase_po": "if_au=T",
		"invPurchase_si": "if_au=T",
		"set_oi":         "if_au=F",
		"replyClient_oi": "⊤", // reachable on both branches: T ∨ F folds
	} {
		if got := byNode[node]; got != want {
			t.Errorf("minimal closure annotation of %s = %s, want %s", node, got, want)
		}
	}
}
