// Package purchasing encodes the paper's running example (§2,
// Figures 1–2): the Purchasing process, its four remote services, and
// the complete four-dimension dependency catalog of Table 1. Tests,
// examples and benchmarks all share this single fixture, and the
// repro harness regenerates the paper's tables and figures from it.
package purchasing

import (
	"dscweaver/internal/core"
)

// Activity ids of the Purchasing process, in Figure 1's order.
const (
	RecClientPo     = core.ActivityID("recClient_po")
	InvCreditPo     = core.ActivityID("invCredit_po")
	RecCreditAu     = core.ActivityID("recCredit_au")
	IfAu            = core.ActivityID("if_au")
	InvPurchasePo   = core.ActivityID("invPurchase_po")
	InvPurchaseSi   = core.ActivityID("invPurchase_si")
	RecPurchaseOi   = core.ActivityID("recPurchase_oi")
	InvShipPo       = core.ActivityID("invShip_po")
	RecShipSi       = core.ActivityID("recShip_si")
	RecShipSs       = core.ActivityID("recShip_ss")
	InvProductionPo = core.ActivityID("invProduction_po")
	InvProductionSs = core.ActivityID("invProduction_ss")
	SetOi           = core.ActivityID("set_oi")
	ReplyClientOi   = core.ActivityID("replyClient_oi")
)

// Service names.
const (
	Credit     = "Credit"
	Purchase   = "Purchase"
	Ship       = "Ship"
	Production = "Production"
)

// Process builds the Purchasing process of Figure 1: fourteen
// activities and four services. The Purchase service is state-aware
// (its two ports must be invoked sequentially); Credit, Purchase and
// Ship call back asynchronously through their dummy ports; Production
// accepts fire-and-forget invocations and never calls back.
func Process() *core.Process {
	p := core.NewProcess("Purchasing")

	p.MustAddService(&core.Service{Name: Credit, Ports: []string{"1"}, Async: true})
	p.MustAddService(&core.Service{Name: Purchase, Ports: []string{"1", "2"}, Async: true, SequentialPorts: true})
	p.MustAddService(&core.Service{Name: Ship, Ports: []string{"1"}, Async: true})
	p.MustAddService(&core.Service{Name: Production, Ports: []string{"1", "2"}})

	p.MustAddActivity(&core.Activity{ID: RecClientPo, Kind: core.KindReceive, Writes: []string{"po"}})
	p.MustAddActivity(&core.Activity{ID: InvCreditPo, Kind: core.KindInvoke, Service: Credit, Port: "1", Reads: []string{"po"}})
	p.MustAddActivity(&core.Activity{ID: RecCreditAu, Kind: core.KindReceive, Service: Credit, Port: core.DummyPort, Writes: []string{"au"}})
	p.MustAddActivity(&core.Activity{ID: IfAu, Kind: core.KindDecision, Reads: []string{"au"}})
	p.MustAddActivity(&core.Activity{ID: InvPurchasePo, Kind: core.KindInvoke, Service: Purchase, Port: "1", Reads: []string{"po"}})
	p.MustAddActivity(&core.Activity{ID: InvPurchaseSi, Kind: core.KindInvoke, Service: Purchase, Port: "2", Reads: []string{"si"}})
	p.MustAddActivity(&core.Activity{ID: RecPurchaseOi, Kind: core.KindReceive, Service: Purchase, Port: core.DummyPort, Writes: []string{"oi"}})
	p.MustAddActivity(&core.Activity{ID: InvShipPo, Kind: core.KindInvoke, Service: Ship, Port: "1", Reads: []string{"po"}})
	p.MustAddActivity(&core.Activity{ID: RecShipSi, Kind: core.KindReceive, Service: Ship, Port: core.DummyPort, Writes: []string{"si"}})
	p.MustAddActivity(&core.Activity{ID: RecShipSs, Kind: core.KindReceive, Service: Ship, Port: core.DummyPort, Writes: []string{"ss"}})
	p.MustAddActivity(&core.Activity{ID: InvProductionPo, Kind: core.KindInvoke, Service: Production, Port: "1", Reads: []string{"po"}})
	p.MustAddActivity(&core.Activity{ID: InvProductionSs, Kind: core.KindInvoke, Service: Production, Port: "2", Reads: []string{"ss"}})
	p.MustAddActivity(&core.Activity{ID: SetOi, Kind: core.KindOpaque, Writes: []string{"oi"}})
	p.MustAddActivity(&core.Activity{ID: ReplyClientOi, Kind: core.KindReply, Reads: []string{"oi"}})

	return p
}

// node helpers for Table 1 construction.
func act(id core.ActivityID) core.Node { return core.ActivityNode(id) }
func svc(name, port string) core.Node  { return core.ServiceNode(name, port) }

// Dependencies returns the complete Table 1 catalog: 9 data, 10
// control, 6 cooperation and 15 service dependencies (40 total).
func Dependencies() *core.DependencySet {
	s := core.NewDependencySet()

	// Data dependencies {→d} — definition-use pairs over po, au, si,
	// ss, oi (§3.1, Figure 5).
	data := []struct {
		from, to core.ActivityID
		variable string
	}{
		{RecClientPo, InvCreditPo, "po"},
		{RecCreditAu, IfAu, "au"},
		{RecClientPo, InvPurchasePo, "po"},
		{RecClientPo, InvShipPo, "po"},
		{RecClientPo, InvProductionPo, "po"},
		{RecShipSi, InvPurchaseSi, "si"},
		{RecShipSs, InvProductionSs, "ss"},
		{SetOi, ReplyClientOi, "oi"},
		{RecPurchaseOi, ReplyClientOi, "oi"},
	}
	for _, d := range data {
		s.Add(core.Dependency{From: act(d.from), To: act(d.to), Dim: core.Data, Label: d.variable})
	}

	// Control dependencies {→c} — if_au guards both branches; the
	// last entry carries the paper's NONE annotation (§3.1).
	control := []struct {
		to     core.ActivityID
		branch string
	}{
		{InvPurchasePo, "T"},
		{InvPurchaseSi, "T"},
		{RecPurchaseOi, "T"},
		{InvShipPo, "T"},
		{RecShipSi, "T"},
		{RecShipSs, "T"},
		{InvProductionPo, "T"},
		{InvProductionSs, "T"},
		{SetOi, "F"},
		{ReplyClientOi, ""},
	}
	for _, c := range control {
		s.Add(core.Dependency{From: act(IfAu), To: act(c.to), Dim: core.Control, Branch: c.branch})
	}

	// Cooperation dependencies {→o} — the invoice may only return to
	// the client after ShipSubprocess and ProductionSubprocess finish
	// (§3.2, specified by the process analyst).
	coop := []core.ActivityID{
		RecPurchaseOi, InvShipPo, RecShipSi, RecShipSs, InvProductionPo, InvProductionSs,
	}
	for _, from := range coop {
		s.Add(core.Dependency{From: act(from), To: act(ReplyClientOi), Dim: core.Cooperation, Label: "invoice after subprocesses"})
	}

	// Service dependencies {→s} — from the services' conversation
	// descriptions (§3.3, Table 1 bottom block).
	service := []struct{ from, to core.Node }{
		{act(InvCreditPo), svc(Credit, "1")},
		{svc(Credit, "1"), svc(Credit, core.DummyPort)},
		{svc(Credit, core.DummyPort), act(RecCreditAu)},
		{act(InvPurchasePo), svc(Purchase, "1")},
		{act(InvPurchaseSi), svc(Purchase, "2")},
		{svc(Purchase, core.DummyPort), act(RecPurchaseOi)},
		{svc(Purchase, "1"), svc(Purchase, core.DummyPort)},
		{svc(Purchase, "2"), svc(Purchase, core.DummyPort)},
		{svc(Purchase, "1"), svc(Purchase, "2")},
		{act(InvShipPo), svc(Ship, "1")},
		{svc(Ship, "1"), svc(Ship, core.DummyPort)},
		{svc(Ship, core.DummyPort), act(RecShipSi)},
		{svc(Ship, core.DummyPort), act(RecShipSs)},
		{act(InvProductionPo), svc(Production, "1")},
		{act(InvProductionSs), svc(Production, "2")},
	}
	for _, d := range service {
		s.Add(core.Dependency{From: d.from, To: d.to, Dim: core.ServiceDim, Label: "conversation"})
	}

	return s
}

// MinimalEdges lists the expected minimal synchronization constraint
// set of Figure 9 as (from, to, branch) triples: 17 constraints, i.e.
// Table 2's 23 removed out of the 40 of Table 1. The golden tests
// compare core.Minimize's output against this list.
func MinimalEdges() []struct {
	From, To core.ActivityID
	Branch   string
} {
	return []struct {
		From, To core.ActivityID
		Branch   string
	}{
		{RecClientPo, InvCreditPo, ""},
		{InvCreditPo, RecCreditAu, ""},
		{RecCreditAu, IfAu, ""},
		{IfAu, InvPurchasePo, "T"},
		{IfAu, InvShipPo, "T"},
		{IfAu, InvProductionPo, "T"},
		{IfAu, SetOi, "F"},
		{SetOi, ReplyClientOi, ""},
		{InvPurchasePo, InvPurchaseSi, ""},
		{RecShipSi, InvPurchaseSi, ""},
		{InvPurchaseSi, RecPurchaseOi, ""},
		{RecPurchaseOi, ReplyClientOi, ""},
		{InvShipPo, RecShipSi, ""},
		{InvShipPo, RecShipSs, ""},
		{RecShipSs, InvProductionSs, ""},
		{InvProductionSs, ReplyClientOi, ""},
		{InvProductionPo, ReplyClientOi, ""},
	}
}

// Pipeline runs the full optimization pipeline on the fixture:
// merge (Figure 7) → service translation (Figure 8) → minimization
// (Figure 9). It returns all three stages.
//
// The fixture deliberately stays below internal/weave in the import
// graph (the weave pipeline's own packages test against it), so this
// assembles the same stages by hand; weave's pipeline tests assert the
// two paths stay bit-identical.
func Pipeline() (merged, translated *core.ConstraintSet, result *core.MinimizeResult, err error) {
	proc := Process()
	merged, err = core.Merge(proc, Dependencies())
	if err != nil {
		return nil, nil, nil, err
	}
	translated, err = core.TranslateServices(merged)
	if err != nil {
		return nil, nil, nil, err
	}
	result, err = core.Minimize(translated)
	if err != nil {
		return nil, nil, nil, err
	}
	return merged, translated, result, nil
}
