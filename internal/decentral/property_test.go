package decentral

import (
	"fmt"
	"math/rand"
	"testing"

	"dscweaver/internal/core"
	"dscweaver/internal/workload"
)

// planFrom builds the minimal-set plan for one random layered
// workload.
func planFrom(t *testing.T, seed int64) (*core.ConstraintSet, *Plan) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := workload.Layered(3+rng.Intn(3), 3+rng.Intn(4), 0.2+0.3*rng.Float64(), seed).
		WithShortcuts(rng.Intn(5)).
		WithServices(1 + rng.Intn(4))
	sc, err := w.TranslatedConstraints()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Minimize(sc)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Place(res.Minimal, Pin(w.Proc))
	if err != nil {
		t.Fatal(err)
	}
	return res.Minimal, plan
}

// TestPlacePropertyTotalAndConsistent: across random workloads the
// partition is total (every activity on exactly one host), every
// constraint's endpoints are both placed, and the edge accounting adds
// up: local + cross = |HappenBefores|, and the per-pair message
// breakdown sums to the cross count with no same-host keys.
func TestPlacePropertyTotalAndConsistent(t *testing.T) {
	for seed := int64(1); seed <= 24; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sc, plan := planFrom(t, seed)
			for _, a := range sc.Proc.Activities() {
				if plan.Partition[a.ID] == "" {
					t.Errorf("activity %s has no host", a.ID)
				}
			}
			hostSet := map[string]bool{}
			for _, h := range plan.Hosts {
				hostSet[h] = true
			}
			for _, h := range plan.Partition {
				if !hostSet[h] {
					t.Errorf("host %q used by the partition but missing from Hosts", h)
				}
			}
			local, cross := 0, 0
			for _, c := range sc.HappenBefores() {
				f, ok1 := plan.Partition[c.From.Node.Activity]
				to, ok2 := plan.Partition[c.To.Node.Activity]
				if !ok1 || !ok2 {
					t.Fatalf("constraint %s has an unplaced endpoint", c)
				}
				if f == to {
					local++
				} else {
					cross++
				}
			}
			if local != plan.LocalEdges || cross != plan.CrossEdges {
				t.Errorf("recount: %d local, %d cross; plan says %d/%d",
					local, cross, plan.LocalEdges, plan.CrossEdges)
			}
			sum := 0
			for k, n := range plan.Messages {
				if k[0] == k[1] {
					t.Errorf("same-host message key %v", k)
				}
				if n <= 0 {
					t.Errorf("message key %v has non-positive count %d", k, n)
				}
				sum += n
			}
			if sum != plan.CrossEdges {
				t.Errorf("message breakdown sums to %d, cross edges %d", sum, plan.CrossEdges)
			}
		})
	}
}

// TestComparePropertySavingsNonNegative: minimization never adds
// cross-host messages — the minimal set is a subset of the unoptimized
// set, and the pinning is identical, so savings are >= 0 and the
// comparison numbers agree with independently computed plans.
func TestComparePropertySavingsNonNegative(t *testing.T) {
	for seed := int64(1); seed <= 24; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			w := workload.Layered(3+rng.Intn(3), 3+rng.Intn(4), 0.2+0.3*rng.Float64(), seed).
				WithShortcuts(rng.Intn(5)).
				WithServices(1 + rng.Intn(4))
			sc, err := w.TranslatedConstraints()
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Minimize(sc)
			if err != nil {
				t.Fatal(err)
			}
			pin := Pin(w.Proc)
			cmp, err := Compare(sc, res.Minimal, pin)
			if err != nil {
				t.Fatal(err)
			}
			if cmp.MessageSavings() < 0 {
				t.Errorf("MessageSavings = %d (unopt %d, minimal %d), want >= 0",
					cmp.MessageSavings(), cmp.Unoptimized.CrossEdges, cmp.Minimal.CrossEdges)
			}
			u, err := Place(sc, pin)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Place(res.Minimal, pin)
			if err != nil {
				t.Fatal(err)
			}
			if u.CrossEdges != cmp.Unoptimized.CrossEdges || m.CrossEdges != cmp.Minimal.CrossEdges {
				t.Errorf("Compare disagrees with direct Place: (%d,%d) vs (%d,%d)",
					cmp.Unoptimized.CrossEdges, cmp.Minimal.CrossEdges, u.CrossEdges, m.CrossEdges)
			}
		})
	}
}

func TestPlanForRejectsPartialPartition(t *testing.T) {
	sc, plan := planFrom(t, 3)
	part := Partition{}
	for id, h := range plan.Partition {
		part[id] = h
	}
	for id := range part {
		delete(part, id)
		break
	}
	if _, err := PlanFor(sc, part); err == nil {
		t.Error("PlanFor accepted a partial partition")
	}
}

func TestPlanForMatchesPlace(t *testing.T) {
	sc, plan := planFrom(t, 5)
	again, err := PlanFor(sc, plan.Partition)
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != plan.String() {
		t.Errorf("PlanFor(plan.Partition) differs from the plan:\n%s\nvs\n%s", again, plan)
	}
}

// exclusiveSet builds a small process with two exclusive activities
// pinned (via a data edge) to different hosts.
func exclusiveSet(t *testing.T) (*core.ConstraintSet, *Plan) {
	t.Helper()
	p := core.NewProcess("excl")
	p.MustAddService(&core.Service{Name: "A", Ports: []string{"1"}})
	p.MustAddService(&core.Service{Name: "B", Ports: []string{"1"}})
	p.MustAddActivity(&core.Activity{ID: "invA", Kind: core.KindInvoke, Service: "A", Port: "1"})
	p.MustAddActivity(&core.Activity{ID: "invB", Kind: core.KindInvoke, Service: "B", Port: "1"})
	p.MustAddActivity(&core.Activity{ID: "critA", Kind: core.KindOpaque})
	p.MustAddActivity(&core.Activity{ID: "critB", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	sc.Before("invA", "critA", core.Data)
	sc.Before("invB", "critB", core.Data)
	sc.Add(core.Constraint{Rel: core.Exclusive,
		From: core.PointOf("critA", core.Run), To: core.PointOf("critB", core.Run)})
	plan, err := Place(sc, Pin(p))
	if err != nil {
		t.Fatal(err)
	}
	return sc, plan
}

func TestCoLocateMergesExclusiveGroups(t *testing.T) {
	sc, plan := exclusiveSet(t)
	if plan.Partition["critA"] == plan.Partition["critB"] {
		t.Fatalf("test premise broken: greedy placement already co-located (%q)", plan.Partition["critA"])
	}
	merged, err := CoLocate(sc, plan)
	if err != nil {
		t.Fatal(err)
	}
	hA, hB := merged.Partition["critA"], merged.Partition["critB"]
	if hA != hB {
		t.Errorf("exclusive activities on %q and %q after CoLocate", hA, hB)
	}
	// Deterministic choice: the lexicographically smallest member host.
	want := plan.Partition["critA"]
	if plan.Partition["critB"] < want {
		want = plan.Partition["critB"]
	}
	if hA != want {
		t.Errorf("group landed on %q, want smallest member host %q", hA, want)
	}
	// Idempotent.
	again, err := CoLocate(sc, merged)
	if err != nil {
		t.Fatal(err)
	}
	if again != merged {
		t.Error("CoLocate of an already co-located plan rebuilt it")
	}
}

func TestCoLocateNoExclusivesIsIdentity(t *testing.T) {
	sc, plan := planFrom(t, 9)
	out, err := CoLocate(sc, plan)
	if err != nil {
		t.Fatal(err)
	}
	if out != plan {
		t.Error("CoLocate without exclusive constraints returned a new plan")
	}
}
