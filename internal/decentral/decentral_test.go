package decentral

import (
	"strings"
	"testing"

	"dscweaver/internal/core"
	"dscweaver/internal/purchasing"
)

func TestPinPlacesInteractions(t *testing.T) {
	pinned := Pin(purchasing.Process())
	want := map[core.ActivityID]string{
		purchasing.InvCreditPo:     "host:Credit",
		purchasing.RecCreditAu:     "host:Credit",
		purchasing.InvPurchaseSi:   "host:Purchase",
		purchasing.RecShipSs:       "host:Ship",
		purchasing.InvProductionPo: "host:Production",
	}
	for id, host := range want {
		if pinned[id] != host {
			t.Errorf("pin[%s] = %q, want %q", id, pinned[id], host)
		}
	}
	// Client-facing and local activities stay unpinned.
	for _, id := range []core.ActivityID{purchasing.RecClientPo, purchasing.IfAu, purchasing.SetOi, purchasing.ReplyClientOi} {
		if _, ok := pinned[id]; ok {
			t.Errorf("%s should be unpinned", id)
		}
	}
}

func TestPlacePurchasingMinimal(t *testing.T) {
	_, _, res, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Place(res.Minimal, Pin(res.Minimal.Proc))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Partition) != 14 {
		t.Errorf("partition covers %d activities, want 14", len(plan.Partition))
	}
	if plan.LocalEdges+plan.CrossEdges != 17 {
		t.Errorf("edges = %d local + %d cross, want 17 total", plan.LocalEdges, plan.CrossEdges)
	}
	if plan.CrossEdges == 0 {
		t.Error("a multi-service process must need some cross-host messages")
	}
	// Every host mentioned in Messages is in Hosts.
	hostSet := map[string]bool{}
	for _, h := range plan.Hosts {
		hostSet[h] = true
	}
	for k := range plan.Messages {
		if !hostSet[k[0]] || !hostSet[k[1]] {
			t.Errorf("message key %v references unknown host", k)
		}
	}
	if !strings.Contains(plan.String(), "cross-host messages") {
		t.Error("String output malformed")
	}
}

func TestMinimizationSavesMessages(t *testing.T) {
	_, asc, res, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(asc, res.Minimal, Pin(asc.Proc))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.MessageSavings() <= 0 {
		t.Errorf("minimization saved %d messages (unopt %d, minimal %d), want > 0",
			cmp.MessageSavings(), cmp.Unoptimized.CrossEdges, cmp.Minimal.CrossEdges)
	}
	t.Logf("cross-host messages: unoptimized=%d minimal=%d saved=%d",
		cmp.Unoptimized.CrossEdges, cmp.Minimal.CrossEdges, cmp.MessageSavings())
}

func TestPlaceRejectsUntranslated(t *testing.T) {
	proc := purchasing.Process()
	merged, err := core.Merge(proc, purchasing.Dependencies())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Place(merged, nil); err == nil {
		t.Error("Place accepted external nodes")
	}
}

func TestPlaceRejectsUnknownPin(t *testing.T) {
	_, _, res, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Place(res.Minimal, Partition{"ghost": "host:X"}); err == nil {
		t.Error("Place accepted pin for unknown activity")
	}
}

func TestPlaceDeterministic(t *testing.T) {
	_, _, res, err := purchasing.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Place(res.Minimal, Pin(res.Minimal.Proc))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(res.Minimal, Pin(res.Minimal.Proc))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Place not deterministic")
	}
}

func TestGreedyFollowsNeighbors(t *testing.T) {
	// One pinned activity and one unpinned neighbor: the neighbor
	// should join its host rather than the coordinator.
	p := core.NewProcess("greedy")
	p.MustAddService(&core.Service{Name: "S", Ports: []string{"1"}})
	p.MustAddActivity(&core.Activity{ID: "inv", Kind: core.KindInvoke, Service: "S", Port: "1"})
	p.MustAddActivity(&core.Activity{ID: "prep", Kind: core.KindOpaque})
	p.MustAddActivity(&core.Activity{ID: "loner", Kind: core.KindOpaque})
	sc := core.NewConstraintSet(p)
	sc.Before("prep", "inv", core.Data)
	plan, err := Place(sc, Pin(p))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Partition["prep"] != "host:S" {
		t.Errorf("prep placed on %q, want host:S", plan.Partition["prep"])
	}
	if plan.Partition["loner"] != CoordinatorHost {
		t.Errorf("loner placed on %q, want coordinator", plan.Partition["loner"])
	}
	if plan.CrossEdges != 0 {
		t.Errorf("cross edges = %d, want 0", plan.CrossEdges)
	}
}
