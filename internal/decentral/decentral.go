// Package decentral analyzes decentralized execution of an optimized
// constraint set — the §5 connection to Nanda et al. [12], which
// "uses PDG to analyze dataflow, control flow and constructs in a
// process to decentralize execution control with the goal of
// minimizing communication overhead."
//
// Activities are partitioned across hosts: interaction activities are
// pinned to the host fronting their service, and the remaining
// activities are placed greedily to minimize cross-host constraint
// edges. Every HappenBefore constraint whose endpoints land on
// different hosts costs one synchronization message at run time, so
// the message count of the minimal set versus the unoptimized set
// quantifies a second benefit of minimization: fewer cross-host
// synchronization messages, not just fewer monitored constraints.
package decentral

import (
	"fmt"
	"sort"
	"strings"

	"dscweaver/internal/core"
)

// CoordinatorHost is the partition that runs client-facing and local
// activities.
const CoordinatorHost = "coordinator"

// Partition maps every activity to a host.
type Partition map[core.ActivityID]string

// Plan is the result of a decentralization analysis.
type Plan struct {
	Partition Partition
	// Hosts lists the partition names, sorted.
	Hosts []string
	// LocalEdges counts constraints whose endpoints share a host.
	LocalEdges int
	// CrossEdges counts constraints that need a cross-host message.
	CrossEdges int
	// Messages breaks the cross edges down by (from-host, to-host).
	Messages map[[2]string]int
}

// Pin returns the fixed placement of interaction activities: every
// invoke or service-facing receive runs on the host fronting its
// service, everything else starts unpinned.
func Pin(proc *core.Process) Partition {
	p := Partition{}
	for _, a := range proc.Activities() {
		if (a.Kind == core.KindInvoke || a.Kind == core.KindReceive) && a.Service != "" {
			p[a.ID] = "host:" + a.Service
		}
	}
	return p
}

// Place partitions the process for the given constraint set: pinned
// activities keep their host; each remaining activity is assigned, in
// topological order, to the host with which it shares the most
// constraint edges (ties break toward the coordinator, then
// lexicographically). Returns the completed plan.
func Place(sc *core.ConstraintSet, pinned Partition) (*Plan, error) {
	if sc.HasServiceNodes() {
		return nil, fmt.Errorf("decentral: constraint set mentions external nodes; translate first")
	}
	proc := sc.Proc
	part := Partition{}
	for id, h := range pinned {
		if _, ok := proc.Activity(id); !ok {
			return nil, fmt.Errorf("decentral: pinned activity %s not in process", id)
		}
		part[id] = h
	}

	// Adjacency over HappenBefore constraints.
	neighbors := map[core.ActivityID][]core.ActivityID{}
	for _, c := range sc.HappenBefores() {
		u, v := c.From.Node.Activity, c.To.Node.Activity
		neighbors[u] = append(neighbors[u], v)
		neighbors[v] = append(neighbors[v], u)
	}

	for _, a := range proc.Activities() {
		if _, done := part[a.ID]; done {
			continue
		}
		votes := map[string]int{}
		for _, n := range neighbors[a.ID] {
			if h, ok := part[n]; ok {
				votes[h]++
			}
		}
		best := CoordinatorHost
		bestVotes := votes[CoordinatorHost]
		hosts := make([]string, 0, len(votes))
		for h := range votes {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		for _, h := range hosts {
			if votes[h] > bestVotes {
				best, bestVotes = h, votes[h]
			}
		}
		part[a.ID] = best
	}
	return PlanFor(sc, part)
}

// PlanFor completes a plan for an explicit, total partition: it counts
// the local and cross-host edges the assignment implies. Exported for
// the enactment layer, which rewrites partitions (host caps, exclusive
// co-location) and for remote nodes executing a partition shipped to
// them.
func PlanFor(sc *core.ConstraintSet, part Partition) (*Plan, error) {
	if sc.HasServiceNodes() {
		return nil, fmt.Errorf("decentral: constraint set mentions external nodes; translate first")
	}
	for _, a := range sc.Proc.Activities() {
		if part[a.ID] == "" {
			return nil, fmt.Errorf("decentral: activity %s has no host", a.ID)
		}
	}
	plan := &Plan{Partition: part, Messages: map[[2]string]int{}}
	hostSet := map[string]bool{}
	for _, h := range part {
		hostSet[h] = true
	}
	for h := range hostSet {
		plan.Hosts = append(plan.Hosts, h)
	}
	sort.Strings(plan.Hosts)

	for _, c := range sc.HappenBefores() {
		from, to := part[c.From.Node.Activity], part[c.To.Node.Activity]
		if from == to {
			plan.LocalEdges++
			continue
		}
		plan.CrossEdges++
		plan.Messages[[2]string{from, to}]++
	}
	return plan, nil
}

// Fold caps a plan at max hosts: the coordinator plus the first
// max-1 other hosts (sorted) keep their partitions, and every
// activity on a folded-away host moves to the coordinator. Folding is
// deterministic, so distributed nodes derive identical partitions
// from the same plan and cap. max <= 0 or a plan already within the
// cap comes back unchanged.
func Fold(sc *core.ConstraintSet, plan *Plan, max int) (*Plan, error) {
	if max <= 0 || len(plan.Hosts) <= max {
		return plan, nil
	}
	keep := map[string]bool{CoordinatorHost: true}
	budget := max - 1
	for _, h := range plan.Hosts {
		if h == CoordinatorHost {
			continue
		}
		if budget > 0 {
			keep[h] = true
			budget--
		}
	}
	part := Partition{}
	for id, h := range plan.Partition {
		if keep[h] {
			part[id] = h
		} else {
			part[id] = CoordinatorHost
		}
	}
	return PlanFor(sc, part)
}

// CoLocate rewrites a plan so both endpoints of every Exclusive
// constraint share a host: mutual exclusion is enforced with per-pair
// mutexes inside one engine, so exclusive-connected activity groups
// must not straddle partitions. Groups are merged with a union-find
// and land on the lexicographically smallest host any member was
// assigned — deterministic, so every node derives the same placement
// independently. Plans without exclusive constraints come back
// unchanged.
func CoLocate(sc *core.ConstraintSet, plan *Plan) (*Plan, error) {
	var excl []core.Constraint
	for _, c := range sc.Constraints() {
		if c.Rel == core.Exclusive {
			excl = append(excl, c)
		}
	}
	if len(excl) == 0 {
		return plan, nil
	}
	parent := map[core.ActivityID]core.ActivityID{}
	var find func(core.ActivityID) core.ActivityID
	find = func(x core.ActivityID) core.ActivityID {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	for _, c := range excl {
		a, b := find(c.From.Node.Activity), find(c.To.Node.Activity)
		if a != b {
			parent[a] = b
		}
	}
	// Pick each group's host: the smallest host string any member holds.
	groupHost := map[core.ActivityID]string{}
	for id := range parent {
		root := find(id)
		h := plan.Partition[id]
		if cur, ok := groupHost[root]; !ok || h < cur {
			groupHost[root] = h
		}
	}
	part := Partition{}
	for id, h := range plan.Partition {
		part[id] = h
	}
	changed := false
	for id := range parent {
		h := groupHost[find(id)]
		if part[id] != h {
			part[id] = h
			changed = true
		}
	}
	if !changed {
		return plan, nil
	}
	return PlanFor(sc, part)
}

// Compare runs Place on both an unoptimized and a minimal constraint
// set under the same pinning and reports the message savings.
type Comparison struct {
	Unoptimized *Plan
	Minimal     *Plan
}

// MessageSavings returns cross-host messages eliminated by
// minimization.
func (c Comparison) MessageSavings() int {
	return c.Unoptimized.CrossEdges - c.Minimal.CrossEdges
}

// Compare partitions both sets with the same pinned placement.
func Compare(unopt, minimal *core.ConstraintSet, pinned Partition) (*Comparison, error) {
	u, err := Place(unopt, pinned)
	if err != nil {
		return nil, err
	}
	m, err := Place(minimal, pinned)
	if err != nil {
		return nil, err
	}
	return &Comparison{Unoptimized: u, Minimal: m}, nil
}

// String renders the plan.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hosts: %s\n", strings.Join(p.Hosts, ", "))
	fmt.Fprintf(&b, "local edges: %d, cross-host messages: %d\n", p.LocalEdges, p.CrossEdges)
	var keys [][2]string
	for k := range p.Messages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "  %s → %s: %d\n", k[0], k[1], p.Messages[k])
	}
	return b.String()
}
