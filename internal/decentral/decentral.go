// Package decentral analyzes decentralized execution of an optimized
// constraint set — the §5 connection to Nanda et al. [12], which
// "uses PDG to analyze dataflow, control flow and constructs in a
// process to decentralize execution control with the goal of
// minimizing communication overhead."
//
// Activities are partitioned across hosts: interaction activities are
// pinned to the host fronting their service, and the remaining
// activities are placed greedily to minimize cross-host constraint
// edges. Every HappenBefore constraint whose endpoints land on
// different hosts costs one synchronization message at run time, so
// the message count of the minimal set versus the unoptimized set
// quantifies a second benefit of minimization: fewer cross-host
// synchronization messages, not just fewer monitored constraints.
package decentral

import (
	"fmt"
	"sort"
	"strings"

	"dscweaver/internal/core"
)

// CoordinatorHost is the partition that runs client-facing and local
// activities.
const CoordinatorHost = "coordinator"

// Partition maps every activity to a host.
type Partition map[core.ActivityID]string

// Plan is the result of a decentralization analysis.
type Plan struct {
	Partition Partition
	// Hosts lists the partition names, sorted.
	Hosts []string
	// LocalEdges counts constraints whose endpoints share a host.
	LocalEdges int
	// CrossEdges counts constraints that need a cross-host message.
	CrossEdges int
	// Messages breaks the cross edges down by (from-host, to-host).
	Messages map[[2]string]int
}

// Pin returns the fixed placement of interaction activities: every
// invoke or service-facing receive runs on the host fronting its
// service, everything else starts unpinned.
func Pin(proc *core.Process) Partition {
	p := Partition{}
	for _, a := range proc.Activities() {
		if (a.Kind == core.KindInvoke || a.Kind == core.KindReceive) && a.Service != "" {
			p[a.ID] = "host:" + a.Service
		}
	}
	return p
}

// Place partitions the process for the given constraint set: pinned
// activities keep their host; each remaining activity is assigned, in
// topological order, to the host with which it shares the most
// constraint edges (ties break toward the coordinator, then
// lexicographically). Returns the completed plan.
func Place(sc *core.ConstraintSet, pinned Partition) (*Plan, error) {
	if sc.HasServiceNodes() {
		return nil, fmt.Errorf("decentral: constraint set mentions external nodes; translate first")
	}
	proc := sc.Proc
	part := Partition{}
	for id, h := range pinned {
		if _, ok := proc.Activity(id); !ok {
			return nil, fmt.Errorf("decentral: pinned activity %s not in process", id)
		}
		part[id] = h
	}

	// Adjacency over HappenBefore constraints.
	neighbors := map[core.ActivityID][]core.ActivityID{}
	for _, c := range sc.HappenBefores() {
		u, v := c.From.Node.Activity, c.To.Node.Activity
		neighbors[u] = append(neighbors[u], v)
		neighbors[v] = append(neighbors[v], u)
	}

	for _, a := range proc.Activities() {
		if _, done := part[a.ID]; done {
			continue
		}
		votes := map[string]int{}
		for _, n := range neighbors[a.ID] {
			if h, ok := part[n]; ok {
				votes[h]++
			}
		}
		best := CoordinatorHost
		bestVotes := votes[CoordinatorHost]
		hosts := make([]string, 0, len(votes))
		for h := range votes {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		for _, h := range hosts {
			if votes[h] > bestVotes {
				best, bestVotes = h, votes[h]
			}
		}
		part[a.ID] = best
	}

	plan := &Plan{Partition: part, Messages: map[[2]string]int{}}
	hostSet := map[string]bool{}
	for _, h := range part {
		hostSet[h] = true
	}
	for h := range hostSet {
		plan.Hosts = append(plan.Hosts, h)
	}
	sort.Strings(plan.Hosts)

	for _, c := range sc.HappenBefores() {
		from, to := part[c.From.Node.Activity], part[c.To.Node.Activity]
		if from == to {
			plan.LocalEdges++
			continue
		}
		plan.CrossEdges++
		plan.Messages[[2]string{from, to}]++
	}
	return plan, nil
}

// Compare runs Place on both an unoptimized and a minimal constraint
// set under the same pinning and reports the message savings.
type Comparison struct {
	Unoptimized *Plan
	Minimal     *Plan
}

// MessageSavings returns cross-host messages eliminated by
// minimization.
func (c Comparison) MessageSavings() int {
	return c.Unoptimized.CrossEdges - c.Minimal.CrossEdges
}

// Compare partitions both sets with the same pinned placement.
func Compare(unopt, minimal *core.ConstraintSet, pinned Partition) (*Comparison, error) {
	u, err := Place(unopt, pinned)
	if err != nil {
		return nil, err
	}
	m, err := Place(minimal, pinned)
	if err != nil {
		return nil, err
	}
	return &Comparison{Unoptimized: u, Minimal: m}, nil
}

// String renders the plan.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hosts: %s\n", strings.Join(p.Hosts, ", "))
	fmt.Fprintf(&b, "local edges: %d, cross-host messages: %d\n", p.LocalEdges, p.CrossEdges)
	var keys [][2]string
	for k := range p.Messages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "  %s → %s: %d\n", k[0], k[1], p.Messages[k])
	}
	return b.String()
}
