// Package workload generates synthetic business processes for the
// scaling and concurrency benchmarks. The paper evaluates only its
// running example; these generators let the benches substantiate its
// two claimed benefits — higher concurrency and lower maintenance
// cost — across process sizes (see DESIGN.md's per-experiment index).
//
// The base shape is a layered DAG: `layers` ranks of `width` activities
// each, with definition-use data dependencies between adjacent ranks.
// On top of that:
//
//   - WithShortcuts adds transitively-redundant cooperation edges —
//     the fodder the minimal-set algorithm removes;
//   - WithDecisions converts interior activities into decisions whose
//     successors become branch-guarded — exercising the
//     condition-annotated closure;
//   - SequencingBaseline serializes each rank, modeling the
//     over-specification a sequence-construct implementation imposes
//     on logically parallel work (the paper's Figure 2 critique).
//
// All generation is deterministic in the seed.
package workload

import (
	"fmt"
	"math/rand"

	"dscweaver/internal/cond"
	"dscweaver/internal/core"
)

// Workload is a generated process plus its dependency catalog.
type Workload struct {
	Proc *core.Process
	Deps *core.DependencySet

	rng    *rand.Rand
	layers [][]core.ActivityID
}

// Layered generates the base layered DAG. Every activity in rank l+1
// receives at least one data dependency from rank l; additional edges
// appear with probability density. Activities are opaque; interior
// ones write one variable each, consumed by their dependents.
func Layered(layers, width int, density float64, seed int64) *Workload {
	if layers < 2 {
		panic("workload: need at least 2 layers")
	}
	if width < 1 {
		panic("workload: need positive width")
	}
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{
		Proc: core.NewProcess(fmt.Sprintf("synthetic_%dx%d", layers, width)),
		Deps: core.NewDependencySet(),
		rng:  rng,
	}
	w.layers = make([][]core.ActivityID, layers)
	for l := 0; l < layers; l++ {
		w.layers[l] = make([]core.ActivityID, width)
		for i := 0; i < width; i++ {
			id := core.ActivityID(fmt.Sprintf("a_%d_%d", l, i))
			w.layers[l][i] = id
			w.Proc.MustAddActivity(&core.Activity{
				ID: id, Kind: core.KindOpaque,
				Writes: []string{"v_" + string(id)},
			})
		}
	}
	for l := 0; l+1 < layers; l++ {
		for _, to := range w.layers[l+1] {
			// Guaranteed parent keeps the DAG connected.
			parent := w.layers[l][rng.Intn(width)]
			w.addData(parent, to)
			for _, from := range w.layers[l] {
				if from != parent && rng.Float64() < density {
					w.addData(from, to)
				}
			}
		}
	}
	return w
}

func (w *Workload) addData(from, to core.ActivityID) {
	w.Deps.Add(core.Dependency{
		From: core.ActivityNode(from), To: core.ActivityNode(to),
		Dim: core.Data, Label: "v_" + string(from),
	})
	if a, ok := w.Proc.Activity(to); ok {
		a.Reads = append(a.Reads, "v_"+string(from))
	}
}

// Layer returns the activity ids of one rank.
func (w *Workload) Layer(l int) []core.ActivityID { return w.layers[l] }

// Layers returns the number of ranks.
func (w *Workload) Layers() int { return len(w.layers) }

// WithShortcuts adds n cooperation dependencies between randomly
// chosen already-connected (source rank < target rank − 1) pairs.
// Each such edge parallels an existing multi-hop path with high
// probability and is therefore removable by minimization; the benches
// report the realized redundancy rather than assuming it.
func (w *Workload) WithShortcuts(n int) *Workload {
	L := len(w.layers)
	for k := 0; k < n; k++ {
		lFrom := w.rng.Intn(L - 1)
		lTo := lFrom + 2
		if lTo >= L {
			lTo = L - 1
		}
		if lTo <= lFrom {
			continue
		}
		from := w.layers[lFrom][w.rng.Intn(len(w.layers[lFrom]))]
		to := w.layers[lTo][w.rng.Intn(len(w.layers[lTo]))]
		w.Deps.Add(core.Dependency{
			From: core.ActivityNode(from), To: core.ActivityNode(to),
			Dim: core.Cooperation, Label: "shortcut",
		})
	}
	return w
}

// WithDecisions converts up to n interior activities (none in the
// first or last rank) into boolean decisions and adds branch-guarded
// control dependencies from each to next-rank activities it does not
// already feed data, alternating T and F. The resulting guards
// exercise the condition-annotated closure: unconditional edges into
// guarded activities become candidates for guard subsumption.
func (w *Workload) WithDecisions(n int) *Workload {
	converted := 0
	for l := 1; l < len(w.layers)-1 && converted < n; l++ {
		for _, id := range w.layers[l] {
			if converted >= n {
				break
			}
			a, _ := w.Proc.Activity(id)
			if a.Kind == core.KindDecision {
				continue
			}
			dataSucc := map[core.ActivityID]bool{}
			for _, d := range w.Deps.All() {
				if d.Dim == core.Data && d.From.Activity == id {
					dataSucc[d.To.Activity] = true
				}
			}
			a.Kind = core.KindDecision
			a.Branches = []string{"T", "F"}
			branch := "T"
			for _, to := range w.layers[l+1] {
				if dataSucc[to] {
					continue
				}
				w.Deps.Add(core.Dependency{
					From: core.ActivityNode(id), To: core.ActivityNode(to),
					Dim: core.Control, Branch: branch,
				})
				if branch == "T" {
					branch = "F"
				} else {
					branch = "T"
				}
			}
			converted++
		}
	}
	return w
}

// Constraints merges the catalog into a constraint set.
func (w *Workload) Constraints() (*core.ConstraintSet, error) {
	return core.Merge(w.Proc, w.Deps)
}

// SequencingBaseline returns the merged constraints plus a total order
// within every rank — the schedule a sequence-construct implementation
// imposes when a programmer writes each rank as a sequence instead of
// a flow. The extra edges are all redundant with respect to no
// dependency at all: pure over-specification.
func (w *Workload) SequencingBaseline() (*core.ConstraintSet, error) {
	sc, err := w.Constraints()
	if err != nil {
		return nil, err
	}
	for _, rank := range w.layers {
		for i := 0; i+1 < len(rank); i++ {
			sc.Add(core.Constraint{
				Rel:     core.HappenBefore,
				From:    core.PointOf(rank[i], core.Finish),
				To:      core.PointOf(rank[i+1], core.Start),
				Cond:    cond.True(),
				Origins: []core.Dimension{core.Control},
				Labels:  []string{"sequence construct"},
			})
		}
	}
	return sc, nil
}

// WithServices attaches n asynchronous remote services: for each, an
// existing activity of rank r becomes the invoker of the service's
// single port and a fresh receive activity (inserted as an extra
// member of rank r+1, feeding the guaranteed child of its rank) awaits
// the callback, contributing the invCredit_po → Credit.1 → Credit.d →
// recCredit_au shape of Table 1's service block. The resulting sets
// exercise TranslateServices at scale.
func (w *Workload) WithServices(n int) *Workload {
	L := len(w.layers)
	for k := 0; k < n; k++ {
		svcName := fmt.Sprintf("Svc%d", k)
		w.Proc.MustAddService(&core.Service{Name: svcName, Ports: []string{"1"}, Async: true})
		r := w.rng.Intn(L - 1)
		invoker := w.layers[r][w.rng.Intn(len(w.layers[r]))]
		inv, _ := w.Proc.Activity(invoker)
		if inv.Kind != core.KindOpaque {
			continue // keep decisions and prior invokers untouched
		}
		inv.Kind = core.KindInvoke
		inv.Service = svcName
		inv.Port = "1"

		recID := core.ActivityID(fmt.Sprintf("rec_%s", svcName))
		w.Proc.MustAddActivity(&core.Activity{
			ID: recID, Kind: core.KindReceive, Service: svcName, Port: core.DummyPort,
			Writes: []string{"cb_" + svcName},
		})
		w.layers[r+1] = append(w.layers[r+1], recID)

		w.Deps.Add(core.Dependency{From: core.ActivityNode(invoker), To: core.ServiceNode(svcName, "1"), Dim: core.ServiceDim})
		w.Deps.Add(core.Dependency{From: core.ServiceNode(svcName, "1"), To: core.ServiceNode(svcName, core.DummyPort), Dim: core.ServiceDim})
		w.Deps.Add(core.Dependency{From: core.ServiceNode(svcName, core.DummyPort), To: core.ActivityNode(recID), Dim: core.ServiceDim})
		// The callback feeds a consumer downstream so translation
		// produces a live internal constraint.
		if r+2 < L {
			consumer := w.layers[r+2][w.rng.Intn(len(w.layers[r+2]))]
			w.Deps.Add(core.Dependency{From: core.ActivityNode(recID), To: core.ActivityNode(consumer), Dim: core.Data, Label: "cb_" + svcName})
		}
	}
	return w
}

// TranslatedConstraints merges and service-translates the catalog.
func (w *Workload) TranslatedConstraints() (*core.ConstraintSet, error) {
	sc, err := w.Constraints()
	if err != nil {
		return nil, err
	}
	return core.TranslateServices(sc)
}

// Fan generates the pathological best case for dependency-driven
// scheduling: one source, n independent workers, one sink — the shape
// of the Purchasing process's three subprocesses generalized.
func Fan(n int, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{
		Proc: core.NewProcess(fmt.Sprintf("fan_%d", n)),
		Deps: core.NewDependencySet(),
		rng:  rng,
	}
	src := core.ActivityID("source")
	sink := core.ActivityID("sink")
	w.Proc.MustAddActivity(&core.Activity{ID: src, Kind: core.KindOpaque, Writes: []string{"v"}})
	mid := make([]core.ActivityID, n)
	for i := 0; i < n; i++ {
		mid[i] = core.ActivityID(fmt.Sprintf("worker_%d", i))
		w.Proc.MustAddActivity(&core.Activity{ID: mid[i], Kind: core.KindOpaque, Reads: []string{"v"}, Writes: []string{fmt.Sprintf("r%d", i)}})
	}
	w.Proc.MustAddActivity(&core.Activity{ID: sink, Kind: core.KindOpaque})
	w.layers = [][]core.ActivityID{{src}, mid, {sink}}
	for i := 0; i < n; i++ {
		w.addData(src, mid[i])
		w.Deps.Add(core.Dependency{
			From: core.ActivityNode(mid[i]), To: core.ActivityNode(sink),
			Dim: core.Data, Label: fmt.Sprintf("r%d", i),
		})
	}
	return w
}
