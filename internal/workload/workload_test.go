package workload

import (
	"testing"

	"dscweaver/internal/core"
)

func TestLayeredDeterministic(t *testing.T) {
	a := Layered(4, 3, 0.3, 7)
	b := Layered(4, 3, 0.3, 7)
	if a.Deps.Len() != b.Deps.Len() {
		t.Errorf("same seed, different dep counts: %d vs %d", a.Deps.Len(), b.Deps.Len())
	}
	ka, kb := a.Deps.SortedKeys(), b.Deps.SortedKeys()
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("same seed, different deps at %d: %s vs %s", i, ka[i], kb[i])
		}
	}
	c := Layered(4, 3, 0.3, 8)
	if cKeys := c.Deps.SortedKeys(); len(cKeys) == len(ka) {
		same := true
		for i := range ka {
			if ka[i] != cKeys[i] {
				same = false
			}
		}
		if same {
			t.Error("different seeds produced identical workloads")
		}
	}
}

func TestLayeredValidAndConnected(t *testing.T) {
	w := Layered(6, 4, 0.4, 11)
	if err := w.Proc.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Deps.Validate(w.Proc); err != nil {
		t.Fatal(err)
	}
	if got := len(w.Proc.Activities()); got != 24 {
		t.Errorf("activities = %d, want 24", got)
	}
	// Every non-root activity has at least one incoming data edge.
	incoming := map[core.ActivityID]int{}
	for _, d := range w.Deps.All() {
		incoming[d.To.Activity]++
	}
	for l := 1; l < w.Layers(); l++ {
		for _, id := range w.Layer(l) {
			if incoming[id] == 0 {
				t.Errorf("activity %s unreachable", id)
			}
		}
	}
	// The merged set must be acyclic and minimizable.
	sc, err := w.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.MinimizeUnconditional(sc); err != nil {
		t.Fatal(err)
	}
}

func TestShortcutsAreMostlyRedundant(t *testing.T) {
	w := Layered(6, 4, 0.5, 3).WithShortcuts(20)
	sc, err := w.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MinimizeUnconditional(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) == 0 {
		t.Error("no redundancy found despite 20 shortcuts")
	}
}

func TestWithDecisionsProducesValidConditionalSet(t *testing.T) {
	w := Layered(5, 3, 0.5, 5).WithDecisions(2)
	if err := w.Deps.Validate(w.Proc); err != nil {
		t.Fatal(err)
	}
	decisions := w.Proc.Decisions()
	if len(decisions) != 2 {
		t.Fatalf("decisions = %d, want 2", len(decisions))
	}
	sc, err := w.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Minimize(sc)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := core.Equivalent(sc, res.Minimal)
	if err != nil || !eq {
		t.Errorf("minimal not equivalent: %v, %v", eq, err)
	}
	// The conditional fast path must refuse this set.
	if _, err := core.MinimizeUnconditional(sc); err == nil {
		t.Error("MinimizeUnconditional accepted a conditional set")
	}
}

func TestSequencingBaselineAddsRedundantOrder(t *testing.T) {
	w := Layered(4, 5, 0.4, 9)
	min, err := w.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	base, err := w.SequencingBaseline()
	if err != nil {
		t.Fatal(err)
	}
	extra := base.Len() - min.Len()
	if extra != 4*(5-1) {
		t.Errorf("baseline added %d edges, want %d", extra, 4*4)
	}
	// Baseline still acyclic.
	if _, err := core.MinimizeUnconditional(base); err != nil {
		t.Fatal(err)
	}
}

func TestFanShape(t *testing.T) {
	w := Fan(8, 1)
	if err := w.Deps.Validate(w.Proc); err != nil {
		t.Fatal(err)
	}
	if got := len(w.Proc.Activities()); got != 10 {
		t.Errorf("activities = %d, want 10", got)
	}
	if w.Deps.Len() != 16 {
		t.Errorf("deps = %d, want 16", w.Deps.Len())
	}
	sc, err := w.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MinimizeUnconditional(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 0 {
		t.Errorf("fan should have no redundancy, removed %v", res.Removed)
	}
}

func TestWithServicesTranslates(t *testing.T) {
	w := Layered(6, 4, 0.4, 13).WithServices(4)
	if err := w.Proc.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Deps.Validate(w.Proc); err != nil {
		t.Fatal(err)
	}
	if got := len(w.Proc.Services()); got != 4 {
		t.Errorf("services = %d, want 4", got)
	}
	merged, err := w.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	if !merged.HasServiceNodes() {
		t.Fatal("merged set has no external nodes")
	}
	asc, err := w.TranslatedConstraints()
	if err != nil {
		t.Fatal(err)
	}
	if asc.HasServiceNodes() {
		t.Fatal("translation left external nodes")
	}
	// Each attached service contributes the projected invoker→receive
	// constraint.
	projected := 0
	for _, c := range asc.Constraints() {
		if c.HasOrigin(core.ServiceDim) {
			projected++
		}
	}
	if projected == 0 {
		t.Error("no service-derived constraints after translation")
	}
	// The translated set still minimizes.
	if _, err := core.Minimize(asc); err != nil {
		t.Fatal(err)
	}
}

func TestLayeredPanicsOnBadShape(t *testing.T) {
	for _, f := range []func(){
		func() { Layered(1, 3, 0.5, 0) },
		func() { Layered(3, 0, 0.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
