// Package cond implements a small boolean condition algebra over
// decision literals.
//
// A decision is a named choice point in a business process (for example
// the if_au activity of the Purchasing process) whose outcome ranges
// over a finite domain of branch values (usually "T"/"F", but switch
// constructs may declare any label set). A Literal asserts that a
// particular decision took a particular value. Expressions are kept in
// disjunctive normal form (DNF): a disjunction of conjunctive terms.
//
// The package exists to support the condition-annotated transitive
// closure of the dependency optimizer (paper Definition 3): every path
// through a dependency graph accumulates the conjunction of the branch
// conditions along it, and alternative paths between the same pair of
// activities combine by disjunction. Deciding whether a constraint is
// redundant then reduces to semantic equivalence of two expressions
// over the finite branch domains, which Equal performs by bounded
// enumeration.
package cond

import (
	"fmt"
	"sort"
	"strings"
)

// Literal asserts that decision Decision resolved to branch Value.
type Literal struct {
	Decision string
	Value    string
}

// String renders the literal as "decision=value".
func (l Literal) String() string { return l.Decision + "=" + l.Value }

func compareLiterals(a, b Literal) int {
	if a.Decision != b.Decision {
		if a.Decision < b.Decision {
			return -1
		}
		return 1
	}
	if a.Value != b.Value {
		if a.Value < b.Value {
			return -1
		}
		return 1
	}
	return 0
}

// term is a conjunction of literals, sorted by decision then value,
// with no duplicates. A term containing two different values for the
// same decision is contradictory and is never stored.
type term []Literal

// Expr is a boolean expression in canonical DNF. The zero value is
// False (no terms). Expressions are immutable; all operations return
// new values.
type Expr struct {
	terms []term
}

// True returns the expression satisfied by every assignment.
func True() Expr { return Expr{terms: []term{{}}} }

// False returns the unsatisfiable expression.
func False() Expr { return Expr{} }

// Lit returns the expression consisting of the single literal
// decision=value.
func Lit(decision, value string) Expr {
	return Expr{terms: []term{{Literal{Decision: decision, Value: value}}}}
}

// FromLiterals returns the conjunction of the given literals. It
// returns False if the literals are contradictory.
func FromLiterals(lits []Literal) Expr {
	t, ok := normalizeTerm(lits)
	if !ok {
		return False()
	}
	return Expr{terms: []term{t}}
}

// IsTrue reports whether the expression is syntactically the canonical
// True (a single empty term). Expressions built by And/Or are
// absorption-normalized, so tautologies that require domain knowledge
// (e.g. x=T ∨ x=F) are not detected here; use Equal with Domains for
// semantic checks, or Simplify to fold full-domain disjunctions.
func (e Expr) IsTrue() bool { return len(e.terms) == 1 && len(e.terms[0]) == 0 }

// IsFalse reports whether the expression has no satisfying terms.
func (e Expr) IsFalse() bool { return len(e.terms) == 0 }

// normalizeTerm sorts and deduplicates the literals of a conjunction.
// The second result is false if the term is contradictory.
func normalizeTerm(lits []Literal) (term, bool) {
	t := make(term, len(lits))
	copy(t, lits)
	sort.Slice(t, func(i, j int) bool { return compareLiterals(t[i], t[j]) < 0 })
	out := t[:0]
	for i, l := range t {
		if i > 0 && l == t[i-1] {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Decision == l.Decision {
			return nil, false // same decision, different value
		}
		out = append(out, l)
	}
	return out, true
}

// subsumes reports whether every literal of a also occurs in b, i.e.
// a is weaker (covers at least the assignments of b).
func (a term) subsumes(b term) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, l := range b {
		if i < len(a) && a[i] == l {
			i++
		}
	}
	return i == len(a)
}

func compareTerms(a, b term) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := compareLiterals(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// normalize sorts terms, removes duplicates, and applies absorption
// (a term subsumed by a weaker term is dropped).
func normalize(ts []term) Expr {
	// Absorption.
	kept := make([]term, 0, len(ts))
	for i, t := range ts {
		absorbed := false
		for j, u := range ts {
			if i == j {
				continue
			}
			if u.subsumes(t) && (!t.subsumes(u) || j < i) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			kept = append(kept, t)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return compareTerms(kept[i], kept[j]) < 0 })
	out := kept[:0]
	for i, t := range kept {
		if i > 0 && compareTerms(t, kept[i-1]) == 0 {
			continue
		}
		out = append(out, t)
	}
	return Expr{terms: out}
}

// Or returns the disjunction of the operands.
func Or(es ...Expr) Expr {
	var ts []term
	for _, e := range es {
		if e.IsTrue() {
			return True()
		}
		ts = append(ts, e.terms...)
	}
	return normalize(ts)
}

// And returns the conjunction of the operands, distributing over the
// DNF terms. Contradictory cross-terms are dropped.
func And(es ...Expr) Expr {
	acc := []term{{}}
	for _, e := range es {
		if e.IsFalse() {
			return False()
		}
		var next []term
		for _, a := range acc {
			for _, b := range e.terms {
				merged := make([]Literal, 0, len(a)+len(b))
				merged = append(merged, a...)
				merged = append(merged, b...)
				if t, ok := normalizeTerm(merged); ok {
					next = append(next, t)
				}
			}
		}
		if len(next) == 0 {
			return False()
		}
		acc = next
	}
	return normalize(acc)
}

// AndLit returns e ∧ decision=value.
func AndLit(e Expr, decision, value string) Expr {
	return And(e, Lit(decision, value))
}

// Assume returns the cofactor of e under the given partial assignment:
// literals satisfied by the assignment are dropped from their terms,
// and terms contradicted by it are removed. Decisions not mentioned in
// the assignment are untouched.
func (e Expr) Assume(assign map[string]string) Expr {
	var ts []term
	for _, t := range e.terms {
		keep := true
		var reduced []Literal
		for _, l := range t {
			if v, ok := assign[l.Decision]; ok {
				if v != l.Value {
					keep = false
					break
				}
				continue // satisfied, drop
			}
			reduced = append(reduced, l)
		}
		if keep {
			nt, _ := normalizeTerm(reduced)
			ts = append(ts, nt)
		}
	}
	return normalize(ts)
}

// Eval reports whether the expression is satisfied by the (total, with
// respect to the expression's decisions) assignment. A literal whose
// decision is missing from the assignment counts as unsatisfied.
func (e Expr) Eval(assign map[string]string) bool {
	for _, t := range e.terms {
		ok := true
		for _, l := range t {
			if assign[l.Decision] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Decisions returns the sorted set of decision names mentioned by the
// expression.
func (e Expr) Decisions() []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range e.terms {
		for _, l := range t {
			if !seen[l.Decision] {
				seen[l.Decision] = true
				out = append(out, l.Decision)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Terms exposes the DNF structure as a copy: one slice of literals per
// conjunctive term. An empty outer slice means False; a single empty
// inner slice means True.
func (e Expr) Terms() [][]Literal {
	out := make([][]Literal, len(e.terms))
	for i, t := range e.terms {
		out[i] = append([]Literal(nil), t...)
	}
	return out
}

// Same reports structural identity of two expressions: the same
// canonical DNF terms in the same order. Because And/Or/Simplify keep
// expressions normalized (sorted, deduplicated, absorbed), Same-equal
// expressions are always semantically equal; the converse requires
// Equal's domain enumeration (e.g. x=T ∨ x=F vs ⊤). Unlike comparing
// String() renderings, Same walks the terms without allocating — it is
// the fast path of the optimizer's closure comparisons.
func (e Expr) Same(o Expr) bool {
	if len(e.terms) != len(o.terms) {
		return false
	}
	for i, t := range e.terms {
		u := o.terms[i]
		if len(t) != len(u) {
			return false
		}
		for j, l := range t {
			if l != u[j] {
				return false
			}
		}
	}
	return true
}

// AppendKey appends a compact canonical encoding of the expression to
// dst and returns the extended slice. Two expressions produce the same
// key iff they are Same, so the key can index memo tables without
// holding on to the expressions themselves. The encoding opens every
// term with '(' (distinguishing True, one empty term, from False, no
// terms) and separates literals with '&'.
func (e Expr) AppendKey(dst []byte) []byte {
	for _, t := range e.terms {
		dst = append(dst, '(')
		for j, l := range t {
			if j > 0 {
				dst = append(dst, '&')
			}
			dst = append(dst, l.Decision...)
			dst = append(dst, '=')
			dst = append(dst, l.Value...)
		}
	}
	return dst
}

// String renders the expression, e.g. "(if_au=T) ∨ (if_au=F ∧ retry=T)".
// True renders as "⊤" and False as "⊥".
func (e Expr) String() string {
	if e.IsFalse() {
		return "⊥"
	}
	if e.IsTrue() {
		return "⊤"
	}
	parts := make([]string, len(e.terms))
	for i, t := range e.terms {
		lits := make([]string, len(t))
		for j, l := range t {
			lits[j] = l.String()
		}
		parts[i] = strings.Join(lits, " ∧ ")
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, ") ∨ (") + ")"
}

// Domains maps each decision name to its finite set of branch values.
type Domains map[string][]string

// DefaultDomain is assumed for decisions absent from a Domains map:
// the boolean branch labels used throughout the paper.
var DefaultDomain = []string{"T", "F"}

func (d Domains) valuesOf(decision string) []string {
	if vs, ok := d[decision]; ok && len(vs) > 0 {
		return vs
	}
	return DefaultDomain
}

// Values returns the branch domain of a decision, falling back to
// DefaultDomain for decisions the map does not mention.
func (d Domains) Values(decision string) []string {
	return append([]string(nil), d.valuesOf(decision)...)
}

// MaxEnumeration bounds the number of assignments Equal and Implies
// will enumerate before giving up with an error.
const MaxEnumeration = 1 << 20

// enumerate calls fn with every total assignment over the given
// decisions and returns false as soon as fn does.
func enumerate(decisions []string, doms Domains, fn func(map[string]string) bool) (bool, error) {
	total := 1
	for _, d := range decisions {
		total *= len(doms.valuesOf(d))
		if total > MaxEnumeration {
			return false, fmt.Errorf("cond: %d decisions exceed enumeration bound %d", len(decisions), MaxEnumeration)
		}
	}
	assign := make(map[string]string, len(decisions))
	var walk func(i int) bool
	walk = func(i int) bool {
		if i == len(decisions) {
			return fn(assign)
		}
		for _, v := range doms.valuesOf(decisions[i]) {
			assign[decisions[i]] = v
			if !walk(i + 1) {
				return false
			}
		}
		delete(assign, decisions[i])
		return true
	}
	return walk(0), nil
}

func unionDecisions(a, b Expr) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range []Expr{a, b} {
		for _, d := range e.Decisions() {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Equal reports semantic equivalence of a and b over the branch
// domains: the two expressions evaluate identically under every total
// assignment of the decisions either mentions.
func Equal(a, b Expr, doms Domains) (bool, error) {
	return enumerate(unionDecisions(a, b), doms, func(assign map[string]string) bool {
		return a.Eval(assign) == b.Eval(assign)
	})
}

// Implies reports whether every assignment satisfying a also
// satisfies b.
func Implies(a, b Expr, doms Domains) (bool, error) {
	return enumerate(unionDecisions(a, b), doms, func(assign map[string]string) bool {
		return !a.Eval(assign) || b.Eval(assign)
	})
}

// Tautology reports whether e is satisfied by every assignment over
// the branch domains.
func Tautology(e Expr, doms Domains) (bool, error) {
	return Equal(e, True(), doms)
}

// Simplify folds full-domain disjunctions: whenever the expression
// contains, for some decision d and context term t, one term
// t ∧ d=v for every v in d's domain, those terms are replaced by t.
// The result is semantically equal to the input and never larger.
// Unlike Equal, Simplify is purely syntactic and cheap; it is applied
// opportunistically to keep DNF sizes small during closure
// computation.
func Simplify(e Expr, doms Domains) Expr {
	ts := append([]term(nil), e.terms...)
	for changed := true; changed; {
		changed = false
	outer:
		for _, t := range ts {
			for _, l := range t {
				rest := make(term, 0, len(t)-1)
				for _, m := range t {
					if m != l {
						rest = append(rest, m)
					}
				}
				if coversDomain(ts, rest, l.Decision, doms) {
					ts = append(ts, rest)
					res := normalize(ts)
					ts = res.terms
					changed = true
					break outer
				}
			}
		}
	}
	return normalize(ts)
}

// coversDomain reports whether ts contains rest ∧ d=v (or something
// weaker) for every value v of decision d.
func coversDomain(ts []term, rest term, decision string, doms Domains) bool {
	for _, v := range doms.valuesOf(decision) {
		want := append(append(term{}, rest...), Literal{Decision: decision, Value: v})
		want, ok := normalizeTerm(want)
		if !ok {
			return false
		}
		covered := false
		for _, t := range ts {
			if t.subsumes(want) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}
