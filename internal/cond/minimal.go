package cond

import (
	"fmt"
	"sort"
)

// Minimal returns an expression semantically equal to e over the given
// branch domains with a greedily minimized DNF: implicants are
// enumerated most-general-first and chosen by set cover over e's
// satisfying assignments. Unlike Simplify (a cheap syntactic fold used
// in inner loops), Minimal performs full semantic minimization and is
// meant for presentation — rendering closure annotations and guard
// expressions in their most readable form.
//
// The enumeration is bounded: expressions over more than maxMinimalDecisions
// decisions are returned unchanged (after Simplify) rather than risking
// exponential work.
func Minimal(e Expr, doms Domains) (Expr, error) {
	decisions := e.Decisions()
	if len(decisions) == 0 {
		return e, nil
	}
	if len(decisions) > maxMinimalDecisions {
		return Simplify(e, doms), nil
	}

	// Enumerate the onset: all satisfying total assignments.
	var onset []map[string]string
	total := 1
	for _, d := range decisions {
		total *= len(doms.valuesOf(d))
		if total > MaxEnumeration {
			return Expr{}, fmt.Errorf("cond: Minimal: %d decisions exceed enumeration bound", len(decisions))
		}
	}
	all, err := enumerate(decisions, doms, func(assign map[string]string) bool {
		if e.Eval(assign) {
			cp := make(map[string]string, len(assign))
			for k, v := range assign {
				cp[k] = v
			}
			onset = append(onset, cp)
		}
		return true
	})
	_ = all
	if err != nil {
		return Expr{}, err
	}
	if len(onset) == 0 {
		return False(), nil
	}
	if len(onset) == total {
		return True(), nil
	}

	// Candidate implicants: conjunctions over decision subsets, most
	// general (fewest literals) first. A candidate is an implicant if
	// every assignment it covers satisfies e; it is useful if it
	// covers at least one uncovered onset row.
	type cand struct {
		t term
	}
	var cands []cand
	subsets := subsetsBySize(decisions)
	for _, subset := range subsets {
		var build func(i int, acc []Literal)
		build = func(i int, acc []Literal) {
			if i == len(subset) {
				t, _ := normalizeTerm(acc)
				cands = append(cands, cand{t: append(term(nil), t...)})
				return
			}
			for _, v := range doms.valuesOf(subset[i]) {
				build(i+1, append(acc, Literal{Decision: subset[i], Value: v}))
			}
		}
		build(0, nil)
	}

	covers := func(t term, assign map[string]string) bool {
		for _, l := range t {
			if assign[l.Decision] != l.Value {
				return false
			}
		}
		return true
	}
	isImplicant := func(t term) bool {
		// Every assignment consistent with t must satisfy e: check by
		// enumerating the free decisions of t.
		free := make([]string, 0, len(decisions))
		fixed := map[string]string{}
		for _, l := range t {
			fixed[l.Decision] = l.Value
		}
		for _, d := range decisions {
			if _, ok := fixed[d]; !ok {
				free = append(free, d)
			}
		}
		ok, err := enumerate(free, doms, func(assign map[string]string) bool {
			full := make(map[string]string, len(decisions))
			for k, v := range fixed {
				full[k] = v
			}
			for k, v := range assign {
				full[k] = v
			}
			return e.Eval(full)
		})
		return err == nil && ok
	}

	// Keep only (prime-ish) implicants.
	var implicants []term
	for _, c := range cands {
		if isImplicant(c.t) {
			implicants = append(implicants, c.t)
		}
	}

	// Best-gain greedy cover: each round pick the implicant covering
	// the most uncovered onset rows; ties break toward fewer literals,
	// then candidate order (most general first).
	covered := make([]bool, len(onset))
	remaining := len(onset)
	var chosen []term
	for remaining > 0 {
		bestIdx, bestGain := -1, 0
		for i, t := range implicants {
			gain := 0
			for j, assign := range onset {
				if !covered[j] && covers(t, assign) {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && gain > 0 && bestIdx >= 0 && len(t) < len(implicants[bestIdx])) {
				bestIdx, bestGain = i, gain
			}
		}
		if bestIdx < 0 {
			// Cannot happen (full terms are always implicants), but
			// never return something unequal.
			return Simplify(e, doms), nil
		}
		t := implicants[bestIdx]
		chosen = append(chosen, t)
		for j, assign := range onset {
			if !covered[j] && covers(t, assign) {
				covered[j] = true
				remaining--
			}
		}
	}

	// Irredundancy pass: drop any chosen term whose rows the rest
	// still cover.
	for i := 0; i < len(chosen); i++ {
		needed := false
		for _, assign := range onset {
			if !covers(chosen[i], assign) {
				continue
			}
			coveredByOther := false
			for j, o := range chosen {
				if j != i && covers(o, assign) {
					coveredByOther = true
					break
				}
			}
			if !coveredByOther {
				needed = true
				break
			}
		}
		if !needed {
			chosen = append(chosen[:i], chosen[i+1:]...)
			i--
		}
	}

	result := normalize(chosen)
	if s := Simplify(e, doms); len(s.terms) < len(result.terms) {
		return s, nil
	}
	return result, nil
}

// maxMinimalDecisions bounds Minimal's candidate enumeration (the
// candidate count is 3^n for boolean domains).
const maxMinimalDecisions = 8

// subsetsBySize returns all subsets of decisions ordered by size
// ascending, then lexicographically — so Minimal tries the most
// general implicants first.
func subsetsBySize(decisions []string) [][]string {
	n := len(decisions)
	var out [][]string
	for mask := 0; mask < 1<<n; mask++ {
		var s []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, decisions[i])
			}
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	return out
}
