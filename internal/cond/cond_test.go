package cond

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustEqual(t *testing.T, a, b Expr, doms Domains) {
	t.Helper()
	eq, err := Equal(a, b, doms)
	if err != nil {
		t.Fatalf("Equal(%v, %v): %v", a, b, err)
	}
	if !eq {
		t.Fatalf("expected %v == %v", a, b)
	}
}

func mustNotEqual(t *testing.T, a, b Expr, doms Domains) {
	t.Helper()
	eq, err := Equal(a, b, doms)
	if err != nil {
		t.Fatalf("Equal(%v, %v): %v", a, b, err)
	}
	if eq {
		t.Fatalf("expected %v != %v", a, b)
	}
}

func TestTrueFalseBasics(t *testing.T) {
	if !True().IsTrue() {
		t.Error("True().IsTrue() = false")
	}
	if !False().IsFalse() {
		t.Error("False().IsFalse() = false")
	}
	if True().IsFalse() || False().IsTrue() {
		t.Error("True/False confused")
	}
	if got := True().String(); got != "⊤" {
		t.Errorf("True().String() = %q", got)
	}
	if got := False().String(); got != "⊥" {
		t.Errorf("False().String() = %q", got)
	}
}

func TestLitEval(t *testing.T) {
	e := Lit("if_au", "T")
	if !e.Eval(map[string]string{"if_au": "T"}) {
		t.Error("literal not satisfied by matching assignment")
	}
	if e.Eval(map[string]string{"if_au": "F"}) {
		t.Error("literal satisfied by mismatching assignment")
	}
	if e.Eval(nil) {
		t.Error("literal satisfied by empty assignment")
	}
}

func TestAndContradiction(t *testing.T) {
	e := And(Lit("x", "T"), Lit("x", "F"))
	if !e.IsFalse() {
		t.Errorf("x=T ∧ x=F = %v, want ⊥", e)
	}
}

func TestAndIdempotent(t *testing.T) {
	e := And(Lit("x", "T"), Lit("x", "T"))
	if got := e.String(); got != "x=T" {
		t.Errorf("x=T ∧ x=T = %q", got)
	}
}

func TestOrAbsorption(t *testing.T) {
	// x=T ∨ (x=T ∧ y=F) should absorb to x=T.
	e := Or(Lit("x", "T"), And(Lit("x", "T"), Lit("y", "F")))
	if got := e.String(); got != "x=T" {
		t.Errorf("absorption failed: %q", got)
	}
}

func TestOrWithTrue(t *testing.T) {
	if !Or(Lit("x", "T"), True()).IsTrue() {
		t.Error("x=T ∨ ⊤ should be ⊤")
	}
}

func TestAndWithFalse(t *testing.T) {
	if !And(Lit("x", "T"), False()).IsFalse() {
		t.Error("x=T ∧ ⊥ should be ⊥")
	}
}

func TestFullDomainDisjunctionIsTautology(t *testing.T) {
	// The if_au → replyClient_oi removal hinges on T ∨ F ≡ ⊤.
	e := Or(Lit("if_au", "T"), Lit("if_au", "F"))
	if e.IsTrue() {
		t.Error("syntactic IsTrue should not detect domain tautology")
	}
	mustEqual(t, e, True(), nil) // nil Domains → DefaultDomain {T, F}
	taut, err := Tautology(e, nil)
	if err != nil || !taut {
		t.Errorf("Tautology = %v, %v", taut, err)
	}
}

func TestTernaryDomainNotTautology(t *testing.T) {
	doms := Domains{"sw": {"A", "B", "C"}}
	e := Or(Lit("sw", "A"), Lit("sw", "B"))
	mustNotEqual(t, e, True(), doms)
	full := Or(e, Lit("sw", "C"))
	mustEqual(t, full, True(), doms)
}

func TestSimplifyFoldsFullDomain(t *testing.T) {
	e := Or(Lit("x", "T"), Lit("x", "F"))
	if got := Simplify(e, nil); !got.IsTrue() {
		t.Errorf("Simplify(x=T ∨ x=F) = %v, want ⊤", got)
	}
}

func TestSimplifyFoldsNestedDomain(t *testing.T) {
	// (a=T ∧ x=T) ∨ (a=T ∧ x=F) → a=T
	e := Or(And(Lit("a", "T"), Lit("x", "T")), And(Lit("a", "T"), Lit("x", "F")))
	got := Simplify(e, nil)
	if got.String() != "a=T" {
		t.Errorf("Simplify = %v, want a=T", got)
	}
}

func TestSimplifyTernary(t *testing.T) {
	doms := Domains{"sw": {"A", "B", "C"}}
	e := Or(Lit("sw", "A"), Lit("sw", "B"), Lit("sw", "C"))
	if got := Simplify(e, doms); !got.IsTrue() {
		t.Errorf("Simplify over ternary domain = %v, want ⊤", got)
	}
	partial := Or(Lit("sw", "A"), Lit("sw", "B"))
	if got := Simplify(partial, doms); got.IsTrue() {
		t.Error("Simplify folded a partial domain")
	}
}

func TestAssume(t *testing.T) {
	e := Or(And(Lit("a", "T"), Lit("b", "T")), Lit("a", "F"))
	got := e.Assume(map[string]string{"a": "T"})
	if got.String() != "b=T" {
		t.Errorf("Assume(a=T) = %v, want b=T", got)
	}
	got = e.Assume(map[string]string{"a": "F"})
	if !got.IsTrue() {
		t.Errorf("Assume(a=F) = %v, want ⊤", got)
	}
}

func TestAssumeUnrelatedDecision(t *testing.T) {
	e := Lit("a", "T")
	got := e.Assume(map[string]string{"z": "F"})
	mustEqual(t, got, e, nil)
}

func TestFromLiterals(t *testing.T) {
	e := FromLiterals([]Literal{{"b", "T"}, {"a", "F"}})
	if got := e.String(); got != "a=F ∧ b=T" {
		t.Errorf("FromLiterals = %q", got)
	}
	if !FromLiterals([]Literal{{"a", "T"}, {"a", "F"}}).IsFalse() {
		t.Error("contradictory FromLiterals should be ⊥")
	}
}

func TestDecisions(t *testing.T) {
	e := Or(And(Lit("b", "T"), Lit("a", "T")), Lit("c", "F"))
	got := e.Decisions()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Decisions = %v, want %v", got, want)
	}
}

func TestImplies(t *testing.T) {
	a := And(Lit("x", "T"), Lit("y", "T"))
	b := Lit("x", "T")
	for _, tc := range []struct {
		p, q Expr
		want bool
	}{
		{a, b, true},
		{b, a, false},
		{False(), a, true},
		{a, True(), true},
		{True(), Lit("x", "T"), false},
	} {
		got, err := Implies(tc.p, tc.q, nil)
		if err != nil {
			t.Fatalf("Implies(%v, %v): %v", tc.p, tc.q, err)
		}
		if got != tc.want {
			t.Errorf("Implies(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
	}
}

func TestEnumerationBound(t *testing.T) {
	// 21 boolean decisions exceed the 2^20 bound.
	e := True()
	for i := 0; i < 21; i++ {
		e = And(e, Lit(string(rune('a'+i)), "T"))
	}
	if _, err := Equal(e, False(), nil); err == nil {
		t.Error("expected enumeration-bound error for 21 decisions")
	}
}

func TestStringDeterministic(t *testing.T) {
	a := Or(And(Lit("y", "F"), Lit("x", "T")), Lit("z", "T"))
	b := Or(Lit("z", "T"), And(Lit("x", "T"), Lit("y", "F")))
	if a.String() != b.String() {
		t.Errorf("canonical strings differ: %q vs %q", a, b)
	}
}

// --- randomized / property tests ---

var quickDecisions = []string{"d0", "d1", "d2", "d3"}

// randomExpr builds a random expression with up to depth nested ops.
func randomExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(6) {
		case 0:
			return True()
		case 1:
			return False()
		default:
			d := quickDecisions[r.Intn(len(quickDecisions))]
			v := "T"
			if r.Intn(2) == 0 {
				v = "F"
			}
			return Lit(d, v)
		}
	}
	a := randomExpr(r, depth-1)
	b := randomExpr(r, depth-1)
	if r.Intn(2) == 0 {
		return And(a, b)
	}
	return Or(a, b)
}

func allAssignments() []map[string]string {
	var out []map[string]string
	n := len(quickDecisions)
	for bits := 0; bits < 1<<n; bits++ {
		m := map[string]string{}
		for i, d := range quickDecisions {
			if bits&(1<<i) != 0 {
				m[d] = "T"
			} else {
				m[d] = "F"
			}
		}
		out = append(out, m)
	}
	return out
}

func TestQuickAndOrSemantics(t *testing.T) {
	assigns := allAssignments()
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomExpr(r, 3)
		b := randomExpr(r, 3)
		and, or := And(a, b), Or(a, b)
		for _, m := range assigns {
			if and.Eval(m) != (a.Eval(m) && b.Eval(m)) {
				return false
			}
			if or.Eval(m) != (a.Eval(m) || b.Eval(m)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSimplifyPreservesSemantics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	assigns := allAssignments()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 4)
		s := Simplify(e, nil)
		for _, m := range assigns {
			if e.Eval(m) != s.Eval(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAssumeMatchesEval(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 4)
		// Assume d0, then evaluate the rest; must match direct Eval.
		for _, v := range []string{"T", "F"} {
			cof := e.Assume(map[string]string{"d0": v})
			for bits := 0; bits < 8; bits++ {
				m := map[string]string{"d0": v}
				for i, d := range quickDecisions[1:] {
					if bits&(1<<i) != 0 {
						m[d] = "T"
					} else {
						m[d] = "F"
					}
				}
				if cof.Eval(m) != e.Eval(m) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualReflexiveAndCanonical(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomExpr(r, 3)
		b := randomExpr(r, 3)
		// Canonical DNF: commuted constructions are syntactically equal.
		if And(a, b).String() != And(b, a).String() {
			return false
		}
		if Or(a, b).String() != Or(b, a).String() {
			return false
		}
		eq, err := Equal(a, a, nil)
		return err == nil && eq
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorganStyleDistribution(t *testing.T) {
	// And distributes over Or: a ∧ (b ∨ c) ≡ (a∧b) ∨ (a∧c).
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomExpr(r, 2)
		b := randomExpr(r, 2)
		c := randomExpr(r, 2)
		lhs := And(a, Or(b, c))
		rhs := Or(And(a, b), And(a, c))
		eq, err := Equal(lhs, rhs, nil)
		return err == nil && eq
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSameMatchesStringEquality(t *testing.T) {
	// Same must agree with String() equality on canonical expressions:
	// it replaces the optimizer's render-and-compare fast path.
	r := rand.New(rand.NewSource(7))
	exprs := []Expr{True(), False(), Lit("a", "T"), Lit("a", "F")}
	for i := 0; i < 60; i++ {
		exprs = append(exprs, randomExpr(r, 3))
	}
	for _, a := range exprs {
		for _, b := range exprs {
			if got, want := a.Same(b), a.String() == b.String(); got != want {
				t.Errorf("Same(%v, %v) = %v, String equality = %v", a, b, got, want)
			}
		}
	}
}

func TestSameDistinguishesTrueFalse(t *testing.T) {
	if True().Same(False()) || False().Same(True()) {
		t.Error("Same confuses ⊤ and ⊥")
	}
	if !True().Same(True()) || !False().Same(False()) {
		t.Error("Same not reflexive on ⊤/⊥")
	}
}

func TestAppendKeyCanonical(t *testing.T) {
	// Keys must collide exactly when expressions are Same — in
	// particular True ("(") and False ("") must differ.
	r := rand.New(rand.NewSource(11))
	exprs := []Expr{True(), False(), Lit("a", "T"), Or(Lit("a", "T"), Lit("b", "F"))}
	for i := 0; i < 60; i++ {
		exprs = append(exprs, randomExpr(r, 3))
	}
	for _, a := range exprs {
		for _, b := range exprs {
			ka := string(a.AppendKey(nil))
			kb := string(b.AppendKey(nil))
			if (ka == kb) != a.Same(b) {
				t.Errorf("key(%v)=%q key(%v)=%q, Same=%v", a, ka, b, kb, a.Same(b))
			}
		}
	}
}

func TestAppendKeyAppends(t *testing.T) {
	dst := []byte("prefix:")
	out := Lit("d", "T").AppendKey(dst)
	if string(out) != "prefix:(d=T" {
		t.Errorf("AppendKey = %q", out)
	}
}

func BenchmarkAndOrSmall(b *testing.B) {
	x := Or(And(Lit("a", "T"), Lit("b", "F")), Lit("c", "T"))
	y := Or(Lit("a", "F"), And(Lit("b", "T"), Lit("c", "F")))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = And(Or(x, y), x)
	}
}

func BenchmarkEqualFourDecisions(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	x := randomExpr(r, 4)
	y := randomExpr(r, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Equal(x, y, nil); err != nil {
			b.Fatal(err)
		}
	}
}
