package cond

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinimalTautology(t *testing.T) {
	e := Or(Lit("x", "T"), Lit("x", "F"))
	m, err := Minimal(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsTrue() {
		t.Errorf("Minimal(x=T ∨ x=F) = %v, want ⊤", m)
	}
}

func TestMinimalAbsorbsSubsumption(t *testing.T) {
	// (a=T ∧ b=T) ∨ (a=T ∧ b=F) ∨ (a=F ∧ b=T) minimizes to a=T ∨ b=T.
	e := Or(
		And(Lit("a", "T"), Lit("b", "T")),
		And(Lit("a", "T"), Lit("b", "F")),
		And(Lit("a", "F"), Lit("b", "T")),
	)
	m, err := Minimal(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.String(); got != "(a=T) ∨ (b=T)" {
		t.Errorf("Minimal = %q, want (a=T) ∨ (b=T)", got)
	}
}

func TestMinimalFalse(t *testing.T) {
	e := And(Lit("x", "T"), Lit("x", "F"))
	m, err := Minimal(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsFalse() {
		t.Errorf("Minimal of contradiction = %v", m)
	}
}

func TestMinimalNoDecisionsPassthrough(t *testing.T) {
	for _, e := range []Expr{True(), False()} {
		m, err := Minimal(e, nil)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != e.String() {
			t.Errorf("Minimal(%v) = %v", e, m)
		}
	}
}

func TestMinimalTernaryDomain(t *testing.T) {
	doms := Domains{"sw": {"A", "B", "C"}}
	// sw≠C expressed as A ∨ B: already minimal over a ternary domain.
	e := Or(Lit("sw", "A"), Lit("sw", "B"))
	m, err := Minimal(e, doms)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := Equal(e, m, doms)
	if err != nil || !eq {
		t.Fatalf("Minimal changed semantics: %v vs %v", e, m)
	}
	if len(m.Terms()) != 2 {
		t.Errorf("Minimal = %v, want two terms", m)
	}
}

func TestQuickMinimalPreservesSemanticsAndShrinks(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	assigns := allAssignments()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 4)
		m, err := Minimal(e, nil)
		if err != nil {
			return false
		}
		for _, a := range assigns {
			if e.Eval(a) != m.Eval(a) {
				return false
			}
		}
		// Never larger than the Simplify form.
		s := Simplify(e, nil)
		return len(m.Terms()) <= len(s.Terms())
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMinimalIdempotent(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 3)
		m1, err := Minimal(e, nil)
		if err != nil {
			return false
		}
		m2, err := Minimal(m1, nil)
		if err != nil {
			return false
		}
		return m1.String() == m2.String()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
